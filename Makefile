# GRIPhoN — build, test and reproduce the paper's results.

GO ?= go

.PHONY: all build test vet lint cover bench profile reproduce examples daemon trace latency serve clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Domain-invariant static analysis (DESIGN.md §9) plus the flow-sensitive
# suite (DESIGN.md §14): wallclock, spanpair, txnrollback, emslayer,
# metricname, suppress, determinism, journaled, leakpath, loopblock. Also
# runnable as a vet tool:
#   go vet -vettool=$$(go env GOPATH)/bin/griphon-lint ./...
lint:
	$(GO) run ./cmd/griphon-lint ./...
	$(GO) test ./internal/analysis/...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper table/figure (plus microbenchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Profile the heaviest experiment; inspect with `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/griphon-bench -exp scale -cpuprofile cpu.prof -memprofile mem.prof

# Regenerate every table and figure as formatted text (EXPERIMENTS.md).
reproduce:
	$(GO) run ./cmd/griphon-bench

# Run all example programs.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/replication
	$(GO) run ./examples/restoration
	$(GO) run ./examples/maintenance
	$(GO) run ./examples/grooming
	$(GO) run ./examples/adaptive

# The customer-GUI backend on :8580 (drive it with griphonctl).
daemon:
	$(GO) run ./cmd/griphond

# Regenerate the setup-latency before/after distributions (BENCH_PR6.json):
# serial choreography vs graph + path cache + pre-arm, per service class.
latency:
	$(GO) run ./cmd/griphon-bench -latency 120

# Regenerate the journal/API hot-path numbers (BENCH_PR10.json): group commit
# vs per-commit fsync, fast vs legacy HTTP response path over a real listener.
serve:
	$(GO) run ./cmd/griphon-bench -serve 4000

# Record a setup -> cut -> restore demo trace; load trace.json in
# ui.perfetto.dev or chrome://tracing to see the EMS step ladder.
trace:
	$(GO) run ./cmd/griphon-bench -trace trace.json

clean:
	$(GO) clean ./...
