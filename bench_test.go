package griphon_test

// One benchmark per paper table/figure plus the extension studies, as indexed
// in DESIGN.md §4. Each runs the corresponding experiment end-to-end through
// the simulator and reports its headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates every result. The cmd/griphon-bench
// binary prints the same experiments as full tables.

import (
	"testing"

	"griphon/internal/experiments"
)

// runExp runs one experiment per iteration, varying the seed so the benchmark
// samples the jitter distributions rather than replaying one run.
func runExp(b *testing.B, run func(seed int64) (experiments.Result, error)) experiments.Result {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := run(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	return last
}

func BenchmarkTable2SetupVsHops(b *testing.B) {
	res := runExp(b, experiments.Table2)
	b.ReportMetric(res.Values["hops1_mean_s"], "setup1hop_s")
	b.ReportMetric(res.Values["hops2_mean_s"], "setup2hop_s")
	b.ReportMetric(res.Values["hops3_mean_s"], "setup3hop_s")
}

func BenchmarkTable1ServiceComparison(b *testing.B) {
	res := runExp(b, experiments.Table1)
	b.ReportMetric(res.Values["setup_s"], "setup_s")
	b.ReportMetric(res.Values["restore_outage_s"], "restore_s")
	b.ReportMetric(res.Values["manual_outage_s"], "manual_s")
}

func BenchmarkSetupTeardown(b *testing.B) {
	res := runExp(b, experiments.SetupTeardown)
	b.ReportMetric(res.Values["setup_mean_s"], "setup_s")
	b.ReportMetric(res.Values["teardown_mean_s"], "teardown_s")
}

func BenchmarkFig1CurrentLayers(b *testing.B) {
	runExp(b, experiments.Fig1)
}

func BenchmarkFig2RatePlacement(b *testing.B) {
	res := runExp(b, experiments.Fig2)
	b.ReportMetric(res.Values["composite"], "composites")
}

func BenchmarkFig3Composition(b *testing.B) {
	res := runExp(b, experiments.Fig3)
	b.ReportMetric(res.Values["composite_channel_links"], "channel_links")
}

func BenchmarkFig4Testbed(b *testing.B) {
	res := runExp(b, experiments.Fig4)
	b.ReportMetric(res.Values["pairs_connected"], "pairs")
}

func BenchmarkRestorationOutage(b *testing.B) {
	res := runExp(b, experiments.Restoration)
	b.ReportMetric(res.Values["GRIPhoN automated restoration_mean_s"], "griphon_s")
	b.ReportMetric(res.Values["1+1 protection_mean_s"], "oneplusone_s")
}

func BenchmarkBridgeAndRoll(b *testing.B) {
	res := runExp(b, experiments.BridgeRoll)
	b.ReportMetric(res.Values["roll_hit_s"]*1000, "roll_hit_ms")
}

func BenchmarkBlockingVsLoad(b *testing.B) {
	res := runExp(b, experiments.Blocking)
	b.ReportMetric(res.Values["shared_8"], "shared_blocking_at_8E")
	b.ReportMetric(res.Values["dedicated_8"], "dedicated_blocking_at_8E")
}

func BenchmarkBulkTransfer(b *testing.B) {
	res := runExp(b, experiments.Bulk)
	b.ReportMetric(res.Values["bod_s"]/3600, "bod_h")
	b.ReportMetric(res.Values["storeforward_s"]/3600, "storeforward_h")
}

func BenchmarkOTNSharedMesh(b *testing.B) {
	res := runExp(b, experiments.OTNRestore)
	b.ReportMetric(res.Values["otn_mean_s"]*1000, "otn_restore_ms")
	b.ReportMetric(res.Values["dwdm_mean_s"], "dwdm_restore_s")
}

func BenchmarkRegrooming(b *testing.B) {
	res := runExp(b, experiments.Regroom)
	b.ReportMetric(res.Values["hit_s"]*1000, "hit_ms")
}

func BenchmarkRWAAblation(b *testing.B) {
	res := runExp(b, experiments.RWAAblation)
	b.ReportMetric(res.Values["first-fit_k1"], "firstfit_carried")
	b.ReportMetric(res.Values["random_k1"], "random_carried")
}

func BenchmarkPlanning(b *testing.B) {
	res := runExp(b, experiments.Planning)
	b.ReportMetric(res.Values["measured_blocking"], "measured_blocking")
}

func BenchmarkDefrag(b *testing.B) {
	res := runExp(b, experiments.Defrag)
	b.ReportMetric(res.Values["moved"], "retuned")
}

func BenchmarkScale(b *testing.B) {
	res := runExp(b, experiments.Scale)
	b.ReportMetric(res.Values["completed"], "conns_month")
	b.ReportMetric(res.Values["mean_setup_s"], "mean_setup_s")
}
