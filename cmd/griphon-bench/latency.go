package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"griphon/internal/experiments"
)

// runLatencyBench runs the setup-latency benchmark and writes the JSON report
// CI commits as the regression baseline.
func runLatencyBench(seed int64, iters int, out string) error {
	rep, err := experiments.LatencyBench(seed, iters)
	if err != nil {
		return err
	}
	for _, name := range sortedClasses(rep) {
		c := rep.Classes[name]
		fmt.Printf("%-12s serial p50=%.1fs p95=%.1fs p99=%.1fs | fast p50=%.1fs p95=%.1fs p99=%.1fs (%.2fx)\n",
			name, c.Baseline.P50, c.Baseline.P95, c.Baseline.P99,
			c.Fast.P50, c.Fast.P95, c.Fast.P99, c.SpeedupP50)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (seed %d, %d setups per class per mode)\n", out, seed, iters)
	return nil
}

// runLatencyGate re-runs the benchmark at the committed baseline's seed and
// iteration count and fails if any class's fast-mode p95 regressed beyond the
// tolerance.
func runLatencyGate(path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want experiments.LatencyReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(want.Classes) == 0 || want.Iters <= 0 {
		return fmt.Errorf("%s holds no classes or a non-positive iteration count", path)
	}
	got, err := experiments.LatencyBench(want.Seed, want.Iters)
	if err != nil {
		return err
	}
	var violations []string
	for _, name := range sortedClasses(want) {
		w := want.Classes[name]
		g, ok := got.Classes[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("class %s missing from the re-run", name))
			continue
		}
		limit := w.Fast.P95 * (1 + tol)
		status := "ok"
		if g.Fast.P95 > limit {
			status = "REGRESSED"
			violations = append(violations,
				fmt.Sprintf("%s fast p95 %.1fs exceeds committed %.1fs by more than %.0f%%", name, g.Fast.P95, w.Fast.P95, tol*100))
		}
		fmt.Printf("%-12s fast p95 %.1fs vs committed %.1fs (limit %.1fs): %s\n", name, g.Fast.P95, w.Fast.P95, limit, status)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d regression(s): %v", len(violations), violations)
	}
	return nil
}

func sortedClasses(rep experiments.LatencyReport) []string {
	names := make([]string, 0, len(rep.Classes))
	for name := range rep.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
