// Command griphon-bench regenerates the paper's tables and figures (and the
// extension studies indexed in DESIGN.md §4) as formatted text.
//
// Usage:
//
//	griphon-bench                 # run everything
//	griphon-bench -exp table2     # one experiment
//	griphon-bench -list           # list experiment IDs
//	griphon-bench -seed 7         # different jitter/workload seed
//	griphon-bench -exp scale -cpuprofile cpu.prof -memprofile mem.prof
//	griphon-bench -trace trace.json   # record a setup→cut→restore demo trace
//	griphon-bench -chaos 2000         # chaos soak: N randomized ops under the fault model
//	griphon-bench -chaos 2000 -flight-out flight.json   # where a failing soak dumps the flight recorder
//	griphon-bench -crash 50           # crash-recovery soak: N random WAL truncations
//	griphon-bench -latency 120        # setup-latency benchmark: write BENCH_PR6.json
//	griphon-bench -latency-gate BENCH_PR6.json   # fail on fast-mode p95 regression
//	griphon-bench -tenants 1000       # multi-tenant scaling benchmark: write BENCH_PR9.json
//	griphon-bench -tenants-gate BENCH_PR9.json   # fail on speedup collapse or audit findings
//	griphon-bench -chaos 300 -tenants 50 -shards 4   # multi-tenant soak with cross-shard audit
//	griphon-bench -serve 4000         # journal/API hot-path benchmark: write BENCH_PR10.json
//	griphon-bench -serve-gate BENCH_PR10.json    # fail on group-commit or fast-path speedup collapse
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"griphon"
	"griphon/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (see -list)")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	traceOut := flag.String("trace", "", "record a scripted setup→cut→restore demo and write its Chrome trace to this file")
	chaos := flag.Int("chaos", 0, "run the chaos soak with this many randomized operations and exit")
	flightOut := flag.String("flight-out", "chaos-flight.json", "where a failing chaos soak writes the flight-recorder dump (empty disables)")
	crash := flag.Int("crash", 0, "run the crash-recovery soak with this many WAL truncation trials and exit")
	latency := flag.Int("latency", 0, "run the setup-latency benchmark with this many setups per class and write the JSON report")
	latencyOut := flag.String("latency-out", "BENCH_PR6.json", "where -latency writes the JSON report")
	latencyGate := flag.String("latency-gate", "", "re-run the latency benchmark at this committed baseline's seed/iters and fail on p95 regression")
	latencyTol := flag.Float64("latency-tol", 0.10, "relative tolerance for the -latency-gate p95 comparison")
	tenants := flag.Int("tenants", 0, "run the multi-tenant scaling benchmark with this many customers (or the sharded chaos soak with -chaos) and write the JSON report")
	tenantsOut := flag.String("tenants-out", "BENCH_PR9.json", "where -tenants writes the JSON report")
	tenantsGate := flag.String("tenants-gate", "", "re-run the tenant benchmark against this committed baseline and fail on correctness or speedup collapse")
	tenantsTol := flag.Float64("tenants-tol", 0.50, "relative tolerance for the -tenants-gate speedup comparison")
	shards := flag.Int("shards", 4, "shard count for the -chaos -tenants soak")
	serve := flag.Int("serve", 0, "run the journal/API hot-path benchmark with this many ops per mode and write the JSON report")
	serveOut := flag.String("serve-out", "BENCH_PR10.json", "where -serve writes the JSON report")
	serveGate := flag.String("serve-gate", "", "re-run the serve benchmark at this committed baseline's seed/iters and fail on speedup collapse")
	serveTol := flag.Float64("serve-tol", 0.50, "relative tolerance for the -serve-gate speedup comparison")
	flag.Parse()

	if *serveGate != "" {
		if err := runServeGate(*serveGate, *serveTol); err != nil {
			fmt.Fprintln(os.Stderr, "serve-gate:", err)
			os.Exit(1)
		}
		fmt.Printf("serve gate passed against %s (tolerance %.0f%%)\n", *serveGate, *serveTol*100)
		return
	}

	if *serve > 0 {
		if err := runServeBench(*seed, *serve, *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		return
	}

	if *tenantsGate != "" {
		if err := runTenantsGate(*tenantsGate, *tenantsTol); err != nil {
			fmt.Fprintln(os.Stderr, "tenants-gate:", err)
			os.Exit(1)
		}
		fmt.Printf("tenants gate passed against %s (tolerance %.0f%%)\n", *tenantsGate, *tenantsTol*100)
		return
	}

	if *tenants > 0 && *chaos > 0 {
		res, err := experiments.ChaosShardedN(*seed, *chaos, *tenants, *shards, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos-tenants:", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if res.Values["audit_findings"] != 0 {
			os.Exit(1)
		}
		return
	}

	if *tenants > 0 {
		if err := runTenantsBench(*seed, *tenants, *tenantsOut); err != nil {
			fmt.Fprintln(os.Stderr, "tenants:", err)
			os.Exit(1)
		}
		return
	}

	if *latencyGate != "" {
		if err := runLatencyGate(*latencyGate, *latencyTol); err != nil {
			fmt.Fprintln(os.Stderr, "latency-gate:", err)
			os.Exit(1)
		}
		fmt.Printf("latency gate passed against %s (tolerance %.0f%%)\n", *latencyGate, *latencyTol*100)
		return
	}

	if *latency > 0 {
		if err := runLatencyBench(*seed, *latency, *latencyOut); err != nil {
			fmt.Fprintln(os.Stderr, "latency:", err)
			os.Exit(1)
		}
		return
	}

	if *crash > 0 {
		res, err := experiments.CrashRecN(*seed, *crash)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash:", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if res.Values["findings"] != 0 {
			os.Exit(1)
		}
		return
	}

	if *chaos > 0 {
		res, err := experiments.ChaosN(*seed, *chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if b, ok := res.Artifacts["flight.json"]; ok && *flightOut != "" {
			if werr := os.WriteFile(*flightOut, b, 0o644); werr != nil {
				fmt.Fprintln(os.Stderr, "flight-out:", werr)
			} else {
				fmt.Printf("wrote flight-recorder dump to %s\n", *flightOut)
			}
		}
		if res.Values["audit_findings"] != 0 || res.Values["sla_findings"] != 0 {
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" {
		if err := writeDemoTrace(*traceOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s — load it in ui.perfetto.dev or chrome://tracing\n", *traceOut)
		return
	}

	if *list {
		for _, s := range experiments.All {
			fmt.Printf("%-16s %s\n", s.ID, s.Paper)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	var specs []experiments.Spec
	if *exp == "all" {
		specs = experiments.All
	} else {
		s, err := experiments.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []experiments.Spec{s}
	}

	for _, s := range specs {
		res, err := s.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		fmt.Println()
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(2)
		}
	}
}

// writeDemoTrace runs the paper's headline scenario — a 10G wavelength setup
// on the Fig. 4 testbed, a fiber cut on its working path, and the automated
// restoration — with the span recorder on, and writes the Chrome trace. In
// the viewer the setup renders as the EMS step ladder and the restoration as
// detect → localize → provision tiles under op:restore.
func writeDemoTrace(path string, seed int64) error {
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(seed), griphon.WithTracing())
	if err != nil {
		return err
	}
	conn, err := net.Connect("demo", "DC-A", "DC-C", griphon.Rate10G)
	if err != nil {
		return err
	}
	if err := net.CutFiber(string(conn.Route().Links[0])); err != nil {
		return err
	}
	net.Drain()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return net.TraceTo(f)
}
