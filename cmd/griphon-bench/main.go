// Command griphon-bench regenerates the paper's tables and figures (and the
// extension studies indexed in DESIGN.md §4) as formatted text.
//
// Usage:
//
//	griphon-bench                 # run everything
//	griphon-bench -exp table2     # one experiment
//	griphon-bench -list           # list experiment IDs
//	griphon-bench -seed 7         # different jitter/workload seed
package main

import (
	"flag"
	"fmt"
	"os"

	"griphon/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (see -list)")
	seed := flag.Int64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, s := range experiments.All {
			fmt.Printf("%-16s %s\n", s.ID, s.Paper)
		}
		return
	}

	var specs []experiments.Spec
	if *exp == "all" {
		specs = experiments.All
	} else {
		s, err := experiments.Find(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		specs = []experiments.Spec{s}
	}

	for _, s := range specs {
		res, err := s.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.ID, err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		fmt.Println()
	}
}
