package main

import (
	"encoding/json"
	"fmt"
	"os"

	"griphon/internal/experiments"
)

// Acceptance floors the committed baseline must demonstrate: group commit
// must beat per-commit fsync by 5x, the fast HTTP path must beat the legacy
// path by 2x.
const (
	serveJournalFloor = 5.0
	serveHTTPFloor    = 2.0
)

// runServeBench runs the journal/API hot-path benchmark and writes the JSON
// report CI commits as the regression baseline.
func runServeBench(seed int64, iters int, out string) error {
	rep, err := experiments.ServeBench(seed, iters)
	if err != nil {
		return err
	}
	fmt.Printf("journal  per-commit %.0f ops/s | group %.0f ops/s (%.1fx, %d fsyncs for %d appends)\n",
		rep.Journal.PerCommitOpsPerSec, rep.Journal.GroupOpsPerSec, rep.Journal.Speedup,
		rep.Journal.GroupFsyncs, rep.Journal.Appends)
	fmt.Printf("http     legacy %.0f ops/s p99=%.3fms | fast %.0f ops/s p99=%.3fms (%.1fx, p99 ratio %.2f)\n",
		rep.HTTP.Legacy.OpsPerSec, rep.HTTP.Legacy.P99Ms,
		rep.HTTP.Fast.OpsPerSec, rep.HTTP.Fast.P99Ms, rep.HTTP.Speedup, rep.HTTP.P99Ratio)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (seed %d, %d ops per mode)\n", out, seed, iters)
	if rep.Journal.Speedup < serveJournalFloor {
		return fmt.Errorf("journal group-commit speedup %.1fx is below the %.0fx acceptance floor", rep.Journal.Speedup, serveJournalFloor)
	}
	if rep.HTTP.Speedup < serveHTTPFloor {
		return fmt.Errorf("http fast-path speedup %.1fx is below the %.0fx acceptance floor", rep.HTTP.Speedup, serveHTTPFloor)
	}
	return nil
}

// runServeGate validates the committed baseline against the acceptance
// floors, re-runs the benchmark at its seed and iteration count, and fails if
// either speedup collapsed beyond the tolerance or the fast path's p99 is no
// longer flat relative to legacy. Tolerance is generous because both numbers
// are wall-clock and CI hosts vary.
func runServeGate(path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want experiments.ServeReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if want.Iters <= 0 {
		return fmt.Errorf("%s holds a non-positive iteration count", path)
	}
	if want.Journal.Speedup < serveJournalFloor {
		return fmt.Errorf("committed journal speedup %.1fx is below the %.0fx acceptance floor", want.Journal.Speedup, serveJournalFloor)
	}
	if want.HTTP.Speedup < serveHTTPFloor {
		return fmt.Errorf("committed http speedup %.1fx is below the %.0fx acceptance floor", want.HTTP.Speedup, serveHTTPFloor)
	}
	got, err := experiments.ServeBench(want.Seed, want.Iters)
	if err != nil {
		return err
	}
	var violations []string
	check := func(name string, gotV, wantV float64) {
		limit := wantV * (1 - tol)
		status := "ok"
		if gotV < limit {
			status = "REGRESSED"
			violations = append(violations,
				fmt.Sprintf("%s %.1fx fell below committed %.1fx by more than %.0f%%", name, gotV, wantV, tol*100))
		}
		fmt.Printf("%-16s %.1fx vs committed %.1fx (floor %.1fx): %s\n", name, gotV, wantV, limit, status)
	}
	check("journal-speedup", got.Journal.Speedup, want.Journal.Speedup)
	check("http-speedup", got.HTTP.Speedup, want.HTTP.Speedup)
	p99Limit := (1 + tol)
	status := "ok"
	if got.HTTP.P99Ratio > p99Limit {
		status = "REGRESSED"
		violations = append(violations,
			fmt.Sprintf("fast-path p99 is %.2fx legacy's, above the %.2fx flatness limit", got.HTTP.P99Ratio, p99Limit))
	}
	fmt.Printf("%-16s %.2fx of legacy p99 (limit %.2fx): %s\n", "http-p99-ratio", got.HTTP.P99Ratio, p99Limit, status)
	if len(violations) > 0 {
		return fmt.Errorf("%d regression(s): %v", len(violations), violations)
	}
	return nil
}
