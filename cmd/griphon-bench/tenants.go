package main

import (
	"encoding/json"
	"fmt"
	"os"

	"griphon/internal/experiments"
)

// tenantShardSweep is the shard-count ladder the scaling benchmark measures.
var tenantShardSweep = []int{1, 2, 4, 8}

// runTenantsBench runs the multi-tenant scaling benchmark and writes the JSON
// report CI commits as the throughput regression baseline.
func runTenantsBench(seed int64, tenants int, out string) error {
	rep, err := experiments.TenantsBench(seed, tenants, tenantShardSweep)
	if err != nil {
		return err
	}
	for _, pt := range rep.Points {
		status := ""
		if pt.Failed > 0 || pt.AuditFindings > 0 {
			status = fmt.Sprintf("  FAILED=%d AUDIT=%d", pt.Failed, pt.AuditFindings)
		}
		fmt.Printf("shards=%-2d wall=%8.1fms  cycles/s=%8.0f  events=%8d  bottleneck=%8d  projected=%.2fx  overhead=%.3f%s\n",
			pt.Shards, pt.WallMS, pt.CyclesPerSec, pt.EventsTotal, pt.EventsBottleneck,
			pt.ProjectedSpeedup, pt.Overhead, status)
	}
	for _, pt := range rep.Points {
		if pt.Failed > 0 || pt.AuditFindings > 0 {
			return fmt.Errorf("shards=%d: %d failed cycles, %d audit findings",
				pt.Shards, pt.Failed, pt.AuditFindings)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (seed %d, %d tenants, max speedup %.2fx)\n", out, seed, tenants, rep.MaxSpeedup)
	return nil
}

// runTenantsGate re-runs the scaling benchmark at the committed baseline's
// seed and fails on correctness violations or a collapse of the sharding
// speedup. Wall clock differs across machines, so the gate compares the
// deterministic projected speedup (event-partition ratio) within a tolerance
// that absorbs the shorter CI run's different tenant count.
func runTenantsGate(path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want experiments.TenantsReport
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(want.Points) == 0 || want.Tenants <= 0 {
		return fmt.Errorf("%s holds no points or a non-positive tenant count", path)
	}
	// CI smoke keeps the re-run short: the committed tenant count proves
	// 1000-customer scale, the gate proves the shape still holds.
	tenants := want.Tenants
	if tenants > 200 {
		tenants = 200
	}
	got, err := experiments.TenantsBench(want.Seed, tenants, want.ShardCounts)
	if err != nil {
		return err
	}
	var violations []string
	for _, pt := range got.Points {
		if pt.Failed > 0 {
			violations = append(violations, fmt.Sprintf("shards=%d: %d failed cycles", pt.Shards, pt.Failed))
		}
		if pt.AuditFindings > 0 {
			violations = append(violations, fmt.Sprintf("shards=%d: %d audit findings", pt.Shards, pt.AuditFindings))
		}
	}
	floor := want.MaxSpeedup * (1 - tol)
	fmt.Printf("max speedup %.2fx vs committed %.2fx (floor %.2fx), %d tenants per point\n",
		got.MaxSpeedup, want.MaxSpeedup, floor, tenants)
	if got.MaxSpeedup < floor {
		violations = append(violations, fmt.Sprintf(
			"max speedup %.2fx fell below %.2fx (committed %.2fx - %.0f%%)",
			got.MaxSpeedup, floor, want.MaxSpeedup, tol*100))
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d violation(s): %v", len(violations), violations)
	}
	return nil
}
