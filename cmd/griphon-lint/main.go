// Command griphon-lint runs GRIPhoN's domain-invariant analyzers across the
// repository: wallclock (virtual-time determinism), spanpair (every tracer
// span ends), txnrollback (reservations carry rollbacks), emslayer (hardware
// is only reached through internal/core), metricname (instrument naming) and
// suppress (//lint:allow hygiene), plus the flow-sensitive suite built on the
// internal CFG layer — determinism (map order must not reach serialized
// output unsorted), journaled (durable mutations reach a journalCommit on
// every non-error path), leakpath (Txn claims cannot escape through an error
// return unsettled) and loopblock (no blocking operations in controller
// event-loop code). See DESIGN.md §9 and §14 for each invariant.
//
// Usage:
//
//	griphon-lint [-wallclock=false ...] [-json|-sarif] [-github] [packages]
//
// With no packages, ./... is checked. Exit status is 0 when clean, 2 when
// diagnostics were reported, 1 on failure to load or analyze. -sarif emits a
// SARIF 2.1.0 log for code-scanning uploads; -github adds inline ::error
// workflow annotations on stderr.
//
// The binary is also a vet tool: it understands the go command's vet.cfg
// protocol (-V=full, -flags, and a single *.cfg argument), so the whole
// suite can run as
//
//	go vet -vettool=$(which griphon-lint) ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"griphon/internal/analysis"
	"griphon/internal/analysis/driver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes its vet tool before handing it a vet.cfg:
	// `-V=full` must print a stable version line, `-flags` must describe
	// the supported flags as JSON.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			return printVersion()
		}
		if a == "-flags" || a == "--flags" {
			return printFlags()
		}
	}

	fs := flag.NewFlagSet("griphon-lint", flag.ContinueOnError)
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, firstLine(a.Doc))
	}
	var jsonOut, sarifOut, githubOut bool
	fs.BoolVar(&jsonOut, "json", false, "emit diagnostics as JSON")
	fs.BoolVar(&sarifOut, "sarif", false, "emit diagnostics as SARIF 2.1.0")
	fs.BoolVar(&githubOut, "github", false, "also emit GitHub ::error workflow annotations")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: griphon-lint [flags] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var suite []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			suite = append(suite, a)
		}
	}

	// Vet-tool mode: the go command passes exactly one *.cfg argument.
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return driver.RunUnit(os.Stderr, rest[0], suite)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, pkgs, err := driver.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "griphon-lint: %v\n", err)
		return 1
	}
	// A package and its in-package test variant share source files; report
	// each finding once.
	seen := map[string]bool{}
	var all []driver.Diagnostic
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "griphon-lint: %s: type error: %v\n", pkg.Path, terr)
		}
		diags, err := driver.Analyze(l.Fset, pkg, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "griphon-lint: %v\n", err)
			return 1
		}
		for _, d := range diags {
			key := fmt.Sprintf("%s|%s|%s", d.Position, d.Analyzer, d.Message)
			if !seen[key] {
				seen[key] = true
				all = append(all, d)
			}
		}
	}
	root, _ := os.Getwd()
	switch {
	case sarifOut:
		if err := driver.WriteSARIF(os.Stdout, root, suite, all); err != nil {
			fmt.Fprintf(os.Stderr, "griphon-lint: %v\n", err)
			return 1
		}
	case jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(os.Stderr, "griphon-lint: %v\n", err)
			return 1
		}
	default:
		for _, d := range all {
			fmt.Printf("%s\n", d)
		}
	}
	if githubOut {
		driver.WriteGitHubAnnotations(os.Stderr, root, all)
	}
	if len(all) > 0 {
		return 2
	}
	return 0
}

// printVersion emits the `name version id` line cmd/go's toolID parsing
// expects, with a content hash of the executable so rebuilt tools bust the
// vet action cache.
func printVersion() int {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("griphon-lint version griphon-%x\n", h.Sum(nil)[:12])
	return 0
}

// printFlags describes the flag set as the JSON list `go vet` consumes.
func printFlags() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range analysis.All() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	flags = append(flags,
		jsonFlag{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"},
		jsonFlag{Name: "sarif", Bool: true, Usage: "emit diagnostics as SARIF 2.1.0"},
		jsonFlag{Name: "github", Bool: true, Usage: "also emit GitHub ::error workflow annotations"},
		jsonFlag{Name: "V", Bool: false, Usage: "print version and exit"},
	)
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		return 1
	}
	fmt.Println(string(data))
	return 0
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
