// Command griphonctl is the command-line customer GUI for griphond: set up
// and tear down connections on demand, inspect their status and fault
// history, and (as the operator) cut fibers, schedule maintenance and move
// the virtual clock.
//
// Usage:
//
//	griphonctl [-server URL] <command> [args]
//
//	connect    -customer C -from SITE -to SITE -rate 10G [-protect 1+1]
//	disconnect -customer C -id C0001
//	list       -customer C
//	adjust     -customer C -id C0001 -rate 2.5G
//	roll       -customer C -id C0001
//	regroom    -customer C -id C0001
//	defrag
//	cut        -link I-IV
//	repair     -link I-IV
//	maint      -link I-IV [-in 1m] [-window 2h]
//	advance    -for 1h
//	bill       -customer C
//	stats
//	events     [-conn C0001] [-since N]
//	alarms     [-customer C] [-since N]
//	sla        [-customer C] [-v]
//	topology
//	metrics    [-filter griphon_sla]
//	trace      [-format chrome|jsonl] [-o trace.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"griphon/internal/api"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "griphonctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("griphonctl", flag.ContinueOnError)
	server := global.String("server", "http://localhost:8580", "griphond base URL")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command (connect|disconnect|list|adjust|roll|regroom|defrag|cut|repair|maint|advance|bill|stats|events|alarms|sla|topology|metrics|trace)")
	}
	c := api.NewClient(*server)
	cmd, cmdArgs := rest[0], rest[1:]

	switch cmd {
	case "connect":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		from := fs.String("from", "", "source site")
		to := fs.String("to", "", "destination site")
		rate := fs.String("rate", "10G", "requested rate (1G..40G, composites allowed)")
		protect := fs.String("protect", "", "restore | 1+1 | unprotected | shared-mesh")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		resp, err := c.Connect(api.ConnectRequest{
			Customer: *customer, From: *from, To: *to, Rate: *rate, Protection: *protect,
		})
		if err != nil {
			return err
		}
		printConns(resp.Connections)
		return nil

	case "disconnect":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		id := fs.String("id", "", "connection ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if err := c.Disconnect(*customer, *id); err != nil {
			return err
		}
		fmt.Println("released", *id)
		return nil

	case "list":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		conns, err := c.Connections(*customer)
		if err != nil {
			return err
		}
		printConns(conns)
		return nil

	case "roll":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		id := fs.String("id", "", "connection ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		conn, err := c.Roll(*customer, *id)
		if err != nil {
			return err
		}
		printConns([]api.ConnectionJSON{conn})
		return nil

	case "regroom":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		id := fs.String("id", "", "connection ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		resp, err := c.Regroom(*customer, *id)
		if err != nil {
			return err
		}
		fmt.Println("moved:", resp.Moved)
		printConns([]api.ConnectionJSON{resp.Connection})
		return nil

	case "adjust":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		id := fs.String("id", "", "connection ID")
		rate := fs.String("rate", "", "new rate (same layer)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		conn, err := c.Adjust(*customer, *id, *rate)
		if err != nil {
			return err
		}
		printConns([]api.ConnectionJSON{conn})
		return nil

	case "defrag":
		d, err := c.Defrag()
		if err != nil {
			return err
		}
		fmt.Printf("retuned %d connections; highest channel now %d\n", d.Retuned, d.MaxChannelNow)
		return nil

	case "cut", "repair":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		link := fs.String("link", "", "fiber link ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if cmd == "cut" {
			if err := c.Cut(*link); err != nil {
				return err
			}
			fmt.Println("cut", *link)
		} else {
			if err := c.Repair(*link); err != nil {
				return err
			}
			fmt.Println("repaired", *link)
		}
		return nil

	case "maint":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		link := fs.String("link", "", "fiber link ID")
		in := fs.String("in", "1m", "delay before the window opens")
		window := fs.String("window", "2h", "window length")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		m, err := c.Maintenance(*link, *in, *window)
		if err != nil {
			return err
		}
		fmt.Printf("maintenance on %s finished=%v rolled=%v unmoved=%v\n", m.Link, m.Finished, m.Rolled, m.Unmoved)
		return nil

	case "advance":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		d := fs.String("for", "1h", "virtual duration to advance")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		return c.Advance(*d)

	case "bill":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		bill, err := c.Bill(*customer)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %.2f Gb-hours delivered\n", bill.Customer, bill.GbHours)
		return nil

	case "stats":
		st, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("now %s: %d active, %d pending, %d down, %d restoring, %d released\n",
			st.Now, st.Active, st.Pending, st.Down, st.Restoring, st.Released)
		fmt.Printf("plant: %d channel-links, OTs %d/%d, pipes %d (slots %d/%d)\n",
			st.ChannelsInUse, st.OTsInUse, st.OTsTotal, st.Pipes, st.SlotsInUse, st.SlotsTotal)
		if len(st.DownLinks) > 0 {
			fmt.Println("down links:", st.DownLinks)
		}
		return nil

	case "events":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		conn := fs.String("conn", "", "filter by connection ID")
		since := fs.Int("since", -1, "resume cursor (prints the next cursor)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if *since >= 0 {
			if *conn != "" {
				return fmt.Errorf("-since and -conn cannot be combined")
			}
			page, err := c.EventsSince(*since)
			if err != nil {
				return err
			}
			for _, e := range page.Events {
				fmt.Printf("[%s] %-6s %-16s %s\n", e.At, e.Conn, e.Kind, e.Text)
			}
			fmt.Printf("next cursor: %d\n", page.Next)
			return nil
		}
		evs, err := c.Events(*conn)
		if err != nil {
			return err
		}
		for _, e := range evs {
			fmt.Printf("[%s] %-6s %-16s %s\n", e.At, e.Conn, e.Kind, e.Text)
		}
		return nil

	case "alarms":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer view (empty = operator)")
		since := fs.Uint64("since", 0, "resume cursor (prints the next cursor)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		resp, err := c.Alarms(*customer, *since)
		if err != nil {
			return err
		}
		for _, g := range resp.Groups {
			fmt.Printf("#%d [%s] %s", g.Seq, g.At, g.Kind)
			if g.Link != "" {
				fmt.Printf(" link=%s", g.Link)
			}
			fmt.Printf(": %s\n", g.Root.Detail)
			for _, a := range g.Children {
				fmt.Printf("    [%s] %-4s at %-4s conn=%-6s %s\n", a.At, a.Type, a.Node, a.Conn, a.Detail)
			}
		}
		fmt.Printf("next cursor: %d\n", resp.Next)
		return nil

	case "sla":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer to report on (empty = operator view)")
		verbose := fs.Bool("v", false, "include per-outage attribution and phases")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		rep, err := c.SLA(*customer)
		if err != nil {
			return err
		}
		printSLA(rep, *verbose)
		return nil

	case "metrics":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		filter := fs.String("filter", "", "only print metric families whose name has this prefix")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		text, err := c.Metrics()
		if err != nil {
			return err
		}
		fmt.Print(filterMetrics(text, *filter))
		return nil

	case "trace":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		format := fs.String("format", "chrome", "chrome (trace_event JSON for ui.perfetto.dev) | jsonl")
		out := fs.String("o", "", "output file (default stdout)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		raw, err := c.Trace(*format)
		if err != nil {
			return err
		}
		if *out == "" {
			_, err = os.Stdout.Write(raw)
			return err
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes to %s (load in ui.perfetto.dev or chrome://tracing)\n", len(raw), *out)
		return nil

	case "topology":
		topo, err := c.Topology()
		if err != nil {
			return err
		}
		fmt.Println("PoPs:  ", topo.PoPs)
		fmt.Println("Fibers:")
		for _, f := range topo.Fibers {
			fmt.Println("  ", f)
		}
		fmt.Println("Sites:")
		for _, s := range topo.Sites {
			fmt.Println("  ", s)
		}
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// filterMetrics keeps only the Prometheus families whose metric name starts
// with prefix (HELP/TYPE comments included). Empty prefix passes everything.
func filterMetrics(text, prefix string) string {
	if prefix == "" {
		return text
	}
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		name := line
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name = rest
		} else if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name = rest
		}
		if strings.HasPrefix(name, prefix) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func printSLA(rep api.SLAJSON, verbose bool) {
	who := rep.Customer
	if who == "" {
		who = "(operator view)"
	}
	fmt.Printf("SLA report for %s at %s\n", who, rep.Now)
	fmt.Printf("availability %.6f  (%.0f s down of %.0f s observed), %d outages, %d unattributed\n",
		rep.Availability, rep.DowntimeS, rep.LifetimeS, rep.Outages, rep.Unattributed)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tCUSTOMER\tAVAILABILITY\tDOWNTIME\tOUTAGES\tSTATUS")
	for _, cj := range rep.Conns {
		status := "live"
		if cj.Released != "" {
			status = "released " + cj.Released
		}
		if cj.Degraded {
			status += " (degraded)"
		}
		fmt.Fprintf(w, "%s\t%s\t%.6f\t%.1fs\t%d\t%s\n",
			cj.ID, cj.Customer, cj.Availability, cj.DowntimeS, len(cj.Outages), status)
	}
	w.Flush()
	if !verbose {
		return
	}
	for _, cj := range rep.Conns {
		for _, o := range cj.Outages {
			end := o.End
			if o.Open {
				end = "open"
			}
			fmt.Printf("%s: [%s .. %s] %.3fs cause=%s", cj.ID, o.Start, end, o.Seconds, o.Cause)
			if o.Link != "" {
				fmt.Printf(" link=%s", o.Link)
			}
			if o.Resolution != "" {
				fmt.Printf(" resolution=%s", o.Resolution)
			}
			fmt.Println()
			for _, p := range o.Phases {
				open := ""
				if p.Open {
					open = " (open)"
				}
				fmt.Printf("    phase %-12s %.3fs%s\n", p.Name, p.Seconds, open)
			}
			for _, bl := range o.Blocks {
				fmt.Printf("    blocked at %s: %s\n", bl.At, bl.Reason)
			}
		}
	}
}

func printConns(conns []api.ConnectionJSON) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tSTATE\tRATE\tLAYER\tPROTECT\tROUTE\tSETUP\tOUTAGE\tRESTORES\tROLLS")
	for _, c := range conns {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\n",
			c.ID, c.State, c.Rate, c.Layer, c.Protection, c.Route, c.SetupTime, c.TotalOutage, c.Restorations, c.Rolls)
	}
	w.Flush()
}
