// Command griphonctl is the command-line customer GUI for griphond: set up
// and tear down connections on demand, inspect their status and fault
// history, and (as the operator) cut fibers, schedule maintenance and move
// the virtual clock.
//
// Usage:
//
//	griphonctl [-server URL] <command> [args]
//
//	connect    -customer C -from SITE -to SITE -rate 10G [-protect 1+1]
//	disconnect -customer C -id C0001
//	list       -customer C
//	adjust     -customer C -id C0001 -rate 2.5G
//	roll       -customer C -id C0001
//	regroom    -customer C -id C0001
//	defrag
//	cut        -link I-IV
//	repair     -link I-IV
//	maint      -link I-IV [-in 1m] [-window 2h]
//	advance    -for 1h
//	bill       -customer C
//	stats
//	events     [-conn C0001]
//	topology
//	metrics
//	trace      [-format chrome|jsonl] [-o trace.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"griphon/internal/api"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "griphonctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("griphonctl", flag.ContinueOnError)
	server := global.String("server", "http://localhost:8580", "griphond base URL")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing command (connect|disconnect|list|adjust|roll|regroom|defrag|cut|repair|maint|advance|bill|stats|events|topology|metrics|trace)")
	}
	c := api.NewClient(*server)
	cmd, cmdArgs := rest[0], rest[1:]

	switch cmd {
	case "connect":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		from := fs.String("from", "", "source site")
		to := fs.String("to", "", "destination site")
		rate := fs.String("rate", "10G", "requested rate (1G..40G, composites allowed)")
		protect := fs.String("protect", "", "restore | 1+1 | unprotected | shared-mesh")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		resp, err := c.Connect(api.ConnectRequest{
			Customer: *customer, From: *from, To: *to, Rate: *rate, Protection: *protect,
		})
		if err != nil {
			return err
		}
		printConns(resp.Connections)
		return nil

	case "disconnect":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		id := fs.String("id", "", "connection ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if err := c.Disconnect(*customer, *id); err != nil {
			return err
		}
		fmt.Println("released", *id)
		return nil

	case "list":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		conns, err := c.Connections(*customer)
		if err != nil {
			return err
		}
		printConns(conns)
		return nil

	case "roll":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		id := fs.String("id", "", "connection ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		conn, err := c.Roll(*customer, *id)
		if err != nil {
			return err
		}
		printConns([]api.ConnectionJSON{conn})
		return nil

	case "regroom":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		id := fs.String("id", "", "connection ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		resp, err := c.Regroom(*customer, *id)
		if err != nil {
			return err
		}
		fmt.Println("moved:", resp.Moved)
		printConns([]api.ConnectionJSON{resp.Connection})
		return nil

	case "adjust":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		id := fs.String("id", "", "connection ID")
		rate := fs.String("rate", "", "new rate (same layer)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		conn, err := c.Adjust(*customer, *id, *rate)
		if err != nil {
			return err
		}
		printConns([]api.ConnectionJSON{conn})
		return nil

	case "defrag":
		d, err := c.Defrag()
		if err != nil {
			return err
		}
		fmt.Printf("retuned %d connections; highest channel now %d\n", d.Retuned, d.MaxChannelNow)
		return nil

	case "cut", "repair":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		link := fs.String("link", "", "fiber link ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		if cmd == "cut" {
			if err := c.Cut(*link); err != nil {
				return err
			}
			fmt.Println("cut", *link)
		} else {
			if err := c.Repair(*link); err != nil {
				return err
			}
			fmt.Println("repaired", *link)
		}
		return nil

	case "maint":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		link := fs.String("link", "", "fiber link ID")
		in := fs.String("in", "1m", "delay before the window opens")
		window := fs.String("window", "2h", "window length")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		m, err := c.Maintenance(*link, *in, *window)
		if err != nil {
			return err
		}
		fmt.Printf("maintenance on %s finished=%v rolled=%v unmoved=%v\n", m.Link, m.Finished, m.Rolled, m.Unmoved)
		return nil

	case "advance":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		d := fs.String("for", "1h", "virtual duration to advance")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		return c.Advance(*d)

	case "bill":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		customer := fs.String("customer", "", "customer name")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		bill, err := c.Bill(*customer)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %.2f Gb-hours delivered\n", bill.Customer, bill.GbHours)
		return nil

	case "stats":
		st, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("now %s: %d active, %d pending, %d down, %d restoring, %d released\n",
			st.Now, st.Active, st.Pending, st.Down, st.Restoring, st.Released)
		fmt.Printf("plant: %d channel-links, OTs %d/%d, pipes %d (slots %d/%d)\n",
			st.ChannelsInUse, st.OTsInUse, st.OTsTotal, st.Pipes, st.SlotsInUse, st.SlotsTotal)
		if len(st.DownLinks) > 0 {
			fmt.Println("down links:", st.DownLinks)
		}
		return nil

	case "events":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		conn := fs.String("conn", "", "filter by connection ID")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		evs, err := c.Events(*conn)
		if err != nil {
			return err
		}
		for _, e := range evs {
			fmt.Printf("[%s] %-6s %-16s %s\n", e.At, e.Conn, e.Kind, e.Text)
		}
		return nil

	case "metrics":
		text, err := c.Metrics()
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil

	case "trace":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		format := fs.String("format", "chrome", "chrome (trace_event JSON for ui.perfetto.dev) | jsonl")
		out := fs.String("o", "", "output file (default stdout)")
		if err := fs.Parse(cmdArgs); err != nil {
			return err
		}
		raw, err := c.Trace(*format)
		if err != nil {
			return err
		}
		if *out == "" {
			_, err = os.Stdout.Write(raw)
			return err
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes to %s (load in ui.perfetto.dev or chrome://tracing)\n", len(raw), *out)
		return nil

	case "topology":
		topo, err := c.Topology()
		if err != nil {
			return err
		}
		fmt.Println("PoPs:  ", topo.PoPs)
		fmt.Println("Fibers:")
		for _, f := range topo.Fibers {
			fmt.Println("  ", f)
		}
		fmt.Println("Sites:")
		for _, s := range topo.Sites {
			fmt.Println("  ", s)
		}
		return nil
	}
	return fmt.Errorf("unknown command %q", cmd)
}

func printConns(conns []api.ConnectionJSON) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tSTATE\tRATE\tLAYER\tPROTECT\tROUTE\tSETUP\tOUTAGE\tRESTORES\tROLLS")
	for _, c := range conns {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\n",
			c.ID, c.State, c.Rate, c.Layer, c.Protection, c.Route, c.SetupTime, c.TotalOutage, c.Restorations, c.Rolls)
	}
	w.Flush()
}
