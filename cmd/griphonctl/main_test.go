package main

import (
	"net/http/httptest"
	"testing"

	"griphon"
	"griphon/internal/api"
)

func newServer(t *testing.T) string {
	t.Helper()
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(net).Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

func TestCLIEndToEnd(t *testing.T) {
	url := newServer(t)
	base := []string{"-server", url}
	steps := [][]string{
		{"topology"},
		{"connect", "-customer", "acme", "-from", "DC-A", "-to", "DC-C", "-rate", "10G"},
		{"list", "-customer", "acme"},
		{"cut", "-link", "I-IV"},
		{"advance", "-for", "10m"},
		{"repair", "-link", "I-IV"},
		{"roll", "-customer", "acme", "-id", "C0000"},
		{"regroom", "-customer", "acme", "-id", "C0000"},
		{"events", "-conn", "C0000"},
		{"stats"},
		{"connect", "-customer", "acme", "-from", "DC-A", "-to", "DC-B", "-rate", "1G"},
		{"adjust", "-customer", "acme", "-id", "C0001", "-rate", "2.5G"},
		{"defrag"},
		{"maint", "-link", "II-III", "-in", "1m", "-window", "1h"},
		{"disconnect", "-customer", "acme", "-id", "C0000"},
		{"events", "-since", "0"},
		{"alarms"},
		{"alarms", "-customer", "acme", "-since", "0"},
		{"sla"},
		{"sla", "-customer", "acme", "-v"},
		{"metrics", "-filter", "griphon_sla"},
	}
	for _, step := range steps {
		if err := run(append(append([]string{}, base...), step...)); err != nil {
			t.Fatalf("%v: %v", step, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	url := newServer(t)
	cases := [][]string{
		{},                // no command
		{"bogus-command"}, // unknown command
		{"connect", "-customer", "acme", "-from", "DC-A", "-to", "DC-A", "-rate", "10G"}, // same site
		{"disconnect", "-customer", "acme", "-id", "C9999"},                              // unknown conn
		{"cut", "-link", "nope"},   // unknown link
		{"advance", "-for", "wat"}, // bad duration
	}
	for _, args := range cases {
		full := append([]string{"-server", url}, args...)
		if err := run(full); err == nil {
			t.Errorf("%v: expected error", args)
		}
	}
}

func TestCLIUnreachableServer(t *testing.T) {
	if err := run([]string{"-server", "http://127.0.0.1:1", "stats"}); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestCLIBill(t *testing.T) {
	url := newServer(t)
	steps := [][]string{
		{"connect", "-customer", "acme", "-from", "DC-A", "-to", "DC-C", "-rate", "10G"},
		{"advance", "-for", "3h"},
		{"bill", "-customer", "acme"},
	}
	for _, step := range steps {
		if err := run(append([]string{"-server", url}, step...)); err != nil {
			t.Fatalf("%v: %v", step, err)
		}
	}
}
