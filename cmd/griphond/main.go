// Command griphond serves the GRIPhoN customer/operator API over HTTP — the
// paper's "customer GUI" backend (§2.2): connection management, fault status,
// plus operator controls (fiber cuts, repairs, maintenance windows, virtual-
// clock advancement) for driving demonstrations.
//
// The network inside is simulated on a virtual clock: each API call advances
// the simulation until its operation completes, so a 62-second wavelength
// setup returns immediately with its measured setup time.
//
// Usage:
//
//	griphond                         # Fig. 4 testbed on :8580
//	griphond -topo backbone          # 14-node US backbone
//	griphond -topo continental -pops 75 -sites 8
//	griphond -listen :9000 -seed 7
//	griphond -trace                  # record spans; GET /api/v1/trace
//	griphond -state-dir /var/lib/griphon   # durable state; restart-safe
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"griphon"
	"griphon/internal/api"
)

func main() {
	listen := flag.String("listen", ":8580", "listen address")
	topoName := flag.String("topo", "testbed", "topology: testbed | backbone | continental")
	pops := flag.Int("pops", 75, "PoP count for -topo continental")
	sites := flag.Int("sites", 8, "site count for -topo continental")
	seed := flag.Int64("seed", 1, "simulation seed")
	autoRepair := flag.Bool("auto-repair", true, "dispatch repair crews automatically after cuts")
	trace := flag.Bool("trace", false, "record virtual-time spans; export via GET /api/v1/trace")
	stateDir := flag.String("state-dir", "", "persist controller state in this directory (WAL + snapshots); recovers on restart")
	fsync := flag.Bool("fsync", false, "fsync the journal after every commit (with -state-dir)")
	walSegment := flag.Int64("wal-segment", 0, "WAL segment size in bytes (with -state-dir): 0 = 4 MiB default, negative = one unbounded segment")
	shards := flag.Int("shards", 1, "partition the control plane into N per-customer shards; GET /api/v1/shards")
	flag.Parse()

	net, desc, err := buildNetwork(*topoName, *pops, *sites, *seed, *autoRepair, *trace, *stateDir, *fsync, *walSegment, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv := api.NewServer(net)
	log.Printf("griphond: %s, listening on %s", desc, *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}

// buildNetwork assembles the simulated network for the chosen topology.
func buildNetwork(topoName string, pops, sites int, seed int64, autoRepair, trace bool, stateDir string, fsync bool, walSegment int64, shards int) (*griphon.Network, string, error) {
	var topo *griphon.Topology
	switch topoName {
	case "testbed":
		topo = griphon.Testbed()
	case "backbone":
		topo = griphon.Backbone()
	case "continental":
		var err error
		topo, err = griphon.Continental(pops, sites, seed)
		if err != nil {
			return nil, "", err
		}
	default:
		return nil, "", fmt.Errorf("unknown topology %q (testbed | backbone | continental)", topoName)
	}

	opts := []griphon.Option{griphon.WithSeed(seed)}
	if autoRepair {
		opts = append(opts, griphon.WithAutoRepair())
	}
	if trace {
		opts = append(opts, griphon.WithTracing())
	}
	if stateDir != "" {
		opts = append(opts, griphon.WithStateDir(stateDir))
		if fsync {
			opts = append(opts, griphon.WithFsync())
		}
		if walSegment != 0 {
			opts = append(opts, griphon.WithWALSegmentSize(walSegment))
		}
	}
	if shards > 1 {
		opts = append(opts, griphon.WithShards(shards))
	}
	net, err := griphon.New(topo, opts...)
	if err != nil {
		return nil, "", err
	}
	desc := fmt.Sprintf("%s topology (%d PoPs, %d sites)", topoName, len(topo.PoPs()), len(topo.Sites()))
	if shards > 1 {
		desc += fmt.Sprintf(", %d control-plane shards", shards)
	}
	return net, desc, nil
}
