package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"griphon/internal/api"
)

func TestBuildNetworkTopologies(t *testing.T) {
	cases := []struct {
		name      string
		wantPoPs  string
		wantSites int
	}{
		{"testbed", "4 PoPs", 3},
		{"backbone", "14 PoPs", 6},
		{"continental", "20 PoPs", 4},
	}
	for _, c := range cases {
		net, desc, err := buildNetwork(c.name, 20, 4, 1, true, false, "", false, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if net == nil || !strings.Contains(desc, c.wantPoPs) {
			t.Errorf("%s: desc = %q", c.name, desc)
		}
	}
}

func TestBuildNetworkErrors(t *testing.T) {
	if _, _, err := buildNetwork("bogus", 0, 0, 1, false, false, "", false, 0, 1); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, _, err := buildNetwork("continental", 2, 1, 1, false, false, "", false, 0, 1); err == nil {
		t.Error("invalid continental parameters accepted")
	}
}

// TestServedNetworkEndToEnd boots the same server main would and drives one
// connection through it.
func TestServedNetworkEndToEnd(t *testing.T) {
	net, _, err := buildNetwork("testbed", 0, 0, 9, true, true, "", false, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(net).Handler())
	defer srv.Close()
	client := api.NewClient(srv.URL)
	resp, err := client.Connect(api.ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Connections[0].State != "active" {
		t.Errorf("state = %s", resp.Connections[0].State)
	}
}

// TestServedShardedNetwork boots griphond with -shards 4 and checks tenants
// provision through their shards while /api/v1/shards reports the layout.
func TestServedShardedNetwork(t *testing.T) {
	net, desc, err := buildNetwork("testbed", 0, 0, 9, true, false, "", false, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "4 control-plane shards") {
		t.Errorf("desc = %q, want shard count", desc)
	}
	srv := httptest.NewServer(api.NewServer(net).Handler())
	defer srv.Close()
	client := api.NewClient(srv.URL)
	for _, cust := range []string{"acme", "globex", "initech"} {
		resp, err := client.Connect(api.ConnectRequest{Customer: cust, From: "DC-A", To: "DC-C", Rate: "10G"})
		if err != nil {
			t.Fatalf("%s: %v", cust, err)
		}
		if resp.Connections[0].State != "active" {
			t.Errorf("%s: state = %s", cust, resp.Connections[0].State)
		}
	}
	sh, err := client.Shards()
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards != 4 || len(sh.PerShard) != 4 {
		t.Fatalf("shards = %d (%d rows), want 4", sh.Shards, len(sh.PerShard))
	}
	total := 0
	for _, row := range sh.PerShard {
		total += row.Active
	}
	if total != 3 {
		t.Errorf("active across shards = %d, want 3", total)
	}
}
