package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"griphon/internal/api"
)

func TestBuildNetworkTopologies(t *testing.T) {
	cases := []struct {
		name      string
		wantPoPs  string
		wantSites int
	}{
		{"testbed", "4 PoPs", 3},
		{"backbone", "14 PoPs", 6},
		{"continental", "20 PoPs", 4},
	}
	for _, c := range cases {
		net, desc, err := buildNetwork(c.name, 20, 4, 1, true, false, "", false)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if net == nil || !strings.Contains(desc, c.wantPoPs) {
			t.Errorf("%s: desc = %q", c.name, desc)
		}
	}
}

func TestBuildNetworkErrors(t *testing.T) {
	if _, _, err := buildNetwork("bogus", 0, 0, 1, false, false, "", false); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, _, err := buildNetwork("continental", 2, 1, 1, false, false, "", false); err == nil {
		t.Error("invalid continental parameters accepted")
	}
}

// TestServedNetworkEndToEnd boots the same server main would and drives one
// connection through it.
func TestServedNetworkEndToEnd(t *testing.T) {
	net, _, err := buildNetwork("testbed", 0, 0, 9, true, true, "", false)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(net).Handler())
	defer srv.Close()
	client := api.NewClient(srv.URL)
	resp, err := client.Connect(api.ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Connections[0].State != "active" {
		t.Errorf("state = %s", resp.Connections[0].State)
	}
}
