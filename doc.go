// Package griphon is a faithful, simulation-backed implementation of
// GRIPhoN — the Globally Reconfigurable Intelligent Photonic Network of
// "Bandwidth on Demand for Inter-Data Center Communication" (AT&T Labs
// Research, ACM HotNets 2011).
//
// GRIPhoN gives cloud service providers bandwidth on demand between their
// data centers, at rates from 1 Gb/s (sub-wavelength circuits groomed by an
// OTN layer) to full wavelength rates of 10–40 Gb/s (switched by colorless,
// non-directional ROADMs in the DWDM layer). Connections that take carriers
// weeks to provision today are established in about a minute, restoration
// after fiber cuts is automated, and planned maintenance becomes nearly
// hitless through bridge-and-roll.
//
// The photonic hardware of the paper's laboratory testbed is replaced by a
// deterministic discrete-event simulation (see DESIGN.md for the
// substitution table); the control plane — the paper's actual contribution —
// is implemented in full: the GRIPhoN controller, vendor EMS models with
// latencies calibrated to the paper's Table 2, routing and wavelength
// assignment, the OTN grooming layer with shared-mesh restoration, fault
// correlation and localization, bridge-and-roll, re-grooming and
// multi-customer resource isolation.
//
// # Quick start
//
//	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(42))
//	if err != nil { ... }
//	conn, err := net.Connect("acme-cloud", "DC-A", "DC-C", griphon.Rate10G)
//	if err != nil { ... }
//	fmt.Println(conn.SetupTime()) // ≈ 62 s on a 1-hop path, as in Table 2
//	net.Disconnect("acme-cloud", conn.ID)
//
// Everything runs on a virtual clock: a three-week provisioning lead time or
// an eight-hour repair crew completes in microseconds of wall time, and runs
// replay bit-identically for a given seed.
package griphon
