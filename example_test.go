package griphon_test

import (
	"fmt"
	"time"

	"griphon"
)

// The basic BoD flow of the paper: request a wavelength, use it, release it.
func Example() {
	net, _ := griphon.New(griphon.Testbed(), griphon.WithSeed(42))
	conn, err := net.Connect("acme-cloud", "DC-A", "DC-C", griphon.Rate10G)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("route:", conn.Route())
	fmt.Println("setup in about a minute:", conn.SetupTime().Round(10*time.Second))
	net.Disconnect("acme-cloud", conn.ID) //lint:allow errcheck example
	// Output:
	// route: I-IV
	// setup in about a minute: 1m0s
}

// The paper's §2.2 composite example: 12G as one 10G wavelength plus two 1G
// OTN circuits, instead of a second stranded wavelength.
func ExampleNetwork_Connect_composite() {
	net, _ := griphon.New(griphon.Testbed(), griphon.WithSeed(1))
	if _, err := net.Connect("acme", "DC-A", "DC-B", 12*griphon.Gbps); err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range net.Connections("acme") {
		fmt.Println(c.Rate, c.Layer)
	}
	// Output:
	// 10G dwdm
	// 1G otn
	// 1G otn
}

// Automated restoration after a fiber cut: down for about a minute, not the
// 4-12 hours of a manual repair.
func ExampleNetwork_CutFiber() {
	net, _ := griphon.New(griphon.Testbed(), griphon.WithSeed(7))
	conn, _ := net.Connect("acme", "DC-A", "DC-C", griphon.Rate10G)
	net.CutFiber(string(conn.Route().Links[0])) //lint:allow errcheck example
	net.Drain()
	fmt.Println("state:", conn.State)
	fmt.Println("restorations:", conn.Restorations)
	fmt.Println("outage under two minutes:", conn.TotalOutage < 2*time.Minute)
	// Output:
	// state: active
	// restorations: 1
	// outage under two minutes: true
}

// Bandwidth adjustment in place: an OTN circuit grows hitlessly.
func ExampleNetwork_AdjustRate() {
	net, _ := griphon.New(griphon.Testbed(), griphon.WithSeed(3))
	conn, _ := net.Connect("acme", "DC-A", "DC-B", griphon.Rate1G)
	if err := net.AdjustRate("acme", conn.ID, griphon.Rate2G5); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rate:", conn.Rate)
	fmt.Println("hitless:", conn.TotalOutage == 0)
	// Output:
	// rate: 2.5G
	// hitless: true
}

// Planned maintenance with bridge-and-roll: the customer sees ~25 ms, not a
// two-hour outage.
func ExampleNetwork_ScheduleMaintenance() {
	net, _ := griphon.New(griphon.Testbed(), griphon.WithSeed(3))
	conn, _ := net.Connect("acme", "DC-A", "DC-C", griphon.Rate10G)
	m, _ := net.ScheduleMaintenance(string(conn.Route().Links[0]), time.Hour, 2*time.Hour)
	net.Drain()
	fmt.Println("rolled connections:", len(m.Rolled))
	fmt.Println("customer impact under 100ms:", conn.TotalOutage < 100*time.Millisecond)
	// Output:
	// rolled connections: 1
	// customer impact under 100ms: true
}

// Building a custom topology.
func ExampleNewTopology() {
	tp := griphon.NewTopology()
	tp.AddPoP("WEST", true)                  //lint:allow errcheck example
	tp.AddPoP("EAST", true)                  //lint:allow errcheck example
	tp.AddFiber("W-E", "WEST", "EAST", 1200) //lint:allow errcheck example
	tp.AddSite("DC-W", "WEST", 40)           //lint:allow errcheck example
	tp.AddSite("DC-E", "EAST", 40)           //lint:allow errcheck example
	fmt.Println(tp.Validate())
	fmt.Println(tp.PoPs())
	// Output:
	// <nil>
	// [EAST WEST]
}
