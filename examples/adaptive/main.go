// Adaptive: the paper's core promise in one day — "the inter-data center
// communication network which was previously statically provisioned can now
// be viewed as adjustable". A cloud provider follows its diurnal demand curve
// by resizing one OTN circuit hour by hour (hitless slot changes), and the
// usage-based bill shows what the elasticity is worth against static peak
// provisioning.
package main

import (
	"fmt"
	"log"
	"time"

	"griphon"
	"griphon/internal/sim"
	"griphon/internal/traffic"
)

func main() {
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}

	conn, err := net.Connect("acme-cloud", "DC-A", "DC-B", griphon.Rate1G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hour  demand  circuit   action")

	// Demand follows a diurnal curve peaking at 20:00; the circuit tracks
	// it in the OTN rate ladder 1G / 2.5G / 5G.
	ladder := []griphon.Rate{griphon.Rate1G, griphon.Rate2G5, 5 * griphon.Gbps}
	pick := func(demandGbps float64) griphon.Rate {
		for _, r := range ladder {
			if r.Gbps() >= demandGbps {
				return r
			}
		}
		return ladder[len(ladder)-1]
	}

	for hour := 0; hour < 24; hour++ {
		demand := 0.5 + 4.0*traffic.Diurnal(sim.Time(net.Now()), 20, 0.1)
		want := pick(demand)
		action := "-"
		if want != conn.Rate {
			if err := net.AdjustRate("acme-cloud", conn.ID, want); err != nil {
				log.Fatal(err)
			}
			action = "resized (hitless)"
		}
		fmt.Printf("%02d:00  %4.1fG  %7v   %s\n", hour, demand, conn.Rate, action)
		net.Advance(time.Hour)
	}

	bill := net.BillGbHours("acme-cloud")
	staticPeak := 5.0 * 24 // a static 5G circuit billed around the clock
	fmt.Printf("\nusage-billed:  %.1f Gb-hours\n", bill)
	fmt.Printf("static peak:   %.1f Gb-hours equivalent\n", staticPeak)
	fmt.Printf("elasticity saves %.0f%% — and the circuit never dropped a bit (outage %v)\n",
		100*(1-bill/staticPeak), conn.TotalOutage)

	if conn.TotalOutage != 0 {
		log.Fatal("adjustments were supposed to be hitless")
	}
}
