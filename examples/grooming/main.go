// Grooming: the paper's §2.2 example. A provider needs 12G between two data
// centers. Instead of burning a second 10G wavelength for the 2G overflow,
// GRIPhoN provisions 10G on the DWDM layer plus two 1G OTN circuits groomed
// into one shared wavelength pipe — and a second customer then grooms into
// the same pipe's spare slots for the price of an electronic cross-connect.
package main

import (
	"fmt"
	"log"
	"time"

	"griphon"
)

func main() {
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("acme-cloud requests 12G DC-A -> DC-B (paper: 10G + 2x1G, not 2x10G)")
	if _, err := net.Connect("acme-cloud", "DC-A", "DC-B", 12*griphon.Gbps); err != nil {
		log.Fatal(err)
	}
	for _, c := range net.Connections("acme-cloud") {
		switch c.Layer.String() {
		case "dwdm":
			fmt.Printf("  %s %v wavelength on %s (channel %v), setup %v\n",
				c.ID, c.Rate, c.Route(), c.Channels(), c.SetupTime().Round(time.Second))
		case "otn":
			fmt.Printf("  %s %v OTN circuit on pipes %v, setup %v\n",
				c.ID, c.Rate, c.PipeIDs(), c.SetupTime().Round(time.Second))
		}
	}

	st := net.Stats()
	fmt.Printf("\nplant: %d channel-links lit, %d OTN pipe(s), slots %d/%d used\n",
		st.ChannelsInUse, st.Pipes, st.SlotsInUse, st.SlotsTotal)

	fmt.Println("\ninitech requests 2.5G DC-A -> DC-B: grooms into the same pipe, no new wavelength")
	before := net.Now()
	conn, err := net.Connect("initech", "DC-A", "DC-B", griphon.Rate2G5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s %v up in %v (electronic cross-connects only)\n",
		conn.ID, conn.Rate, (net.Now() - before).Round(time.Second))

	st = net.Stats()
	fmt.Printf("\nplant after grooming: %d channel-links, %d pipe(s), slots %d/%d used\n",
		st.ChannelsInUse, st.Pipes, st.SlotsInUse, st.SlotsTotal)
	fmt.Println("  (a 2.5G private line in today's network would strand a whole wavelength)")

	// Isolation: initech cannot touch acme's circuits.
	acme := net.Connections("acme-cloud")
	if err := net.Disconnect("initech", acme[0].ID); err != nil {
		fmt.Printf("\nisolation check: initech tearing down %s -> %v\n", acme[0].ID, err)
	}
}
