// Maintenance: the carrier needs two hours on fiber I-IV. GRIPhoN
// bridge-and-rolls every affected wavelength onto a disjoint path first, so
// the customer sees a ~25 ms hit instead of a two-hour outage (paper §2.2 and
// Table 1's "minimal impact during maintenance").
package main

import (
	"fmt"
	"log"
	"time"

	"griphon"
)

func main() {
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}

	// Two customers, both routed over I-IV.
	c1, err := net.Connect("acme-cloud", "DC-A", "DC-C", griphon.Rate10G)
	if err != nil {
		log.Fatal(err)
	}
	c2, err := net.Connect("initech", "DC-A", "DC-C", griphon.Rate10G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before: %s on %s, %s on %s\n", c1.ID, c1.Route(), c2.ID, c2.Route())

	fmt.Println("\nscheduling 2 h of maintenance on I-IV, one hour from now ...")
	m, err := net.ScheduleMaintenance("I-IV", time.Hour, 2*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	net.Drain()

	fmt.Printf("maintenance finished: rolled=%v unmoved=%v\n", m.Rolled, m.Unmoved)
	fmt.Printf("after:  %s on %s (outage %v), %s on %s (outage %v)\n",
		c1.ID, c1.Route(), c1.TotalOutage.Round(time.Millisecond),
		c2.ID, c2.Route(), c2.TotalOutage.Round(time.Millisecond))
	fmt.Println("\nthe link is back in service; connections can be re-groomed onto it:")

	moved, err := net.Regroom("acme-cloud", c1.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regroom %s: moved=%v now on %s (total outage still %v)\n",
		c1.ID, moved, c1.Route(), c1.TotalOutage.Round(time.Millisecond))

	fmt.Println("\ncontroller timeline:")
	for _, e := range net.Events() {
		switch e.Kind {
		case "maintenance-start", "roll-bridge", "roll-done", "maintenance-done", "regroom":
			fmt.Printf("  %v\n", e)
		}
	}
}
