// Quickstart: bring up the paper's Fig. 4 testbed, request a 10G wavelength
// between two data centers, watch it come up in about a minute (paper Table
// 2), then tear it down in about ten seconds (paper §3).
package main

import (
	"fmt"
	"log"

	"griphon"
)

func main() {
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GRIPhoN testbed (paper Fig. 4)")
	fmt.Println("  PoPs:  ", griphon.Testbed().PoPs())
	fmt.Println("  Sites: ", griphon.Testbed().Sites())
	fmt.Println()

	fmt.Println("Requesting a 10G wavelength DC-A -> DC-C ...")
	conn, err := net.Connect("acme-cloud", "DC-A", "DC-C", griphon.Rate10G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  up after %v on path %s, wavelength channel %v\n",
		conn.SetupTime().Round(1e7), conn.Route(), conn.Channels())
	fmt.Println("  (today's carriers would have taken several weeks)")
	fmt.Println()

	before := net.Now()
	fmt.Println("Tearing it down ...")
	if err := net.Disconnect("acme-cloud", conn.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  released after %v\n", (net.Now() - before).Round(1e7))
	fmt.Println()

	fmt.Println("Connection event log:")
	for _, e := range net.EventsFor(conn.ID) {
		fmt.Printf("  %v\n", e)
	}
}
