// Replication: the paper's motivating workload (§1). A cloud provider
// replicates a 30 TB dataset nightly between three data centers. With
// GRIPhoN it requests a full wavelength just for the bulk window while a small
// OTN circuit carries interactive traffic around the clock; the example
// compares that against paying for a static wavelength 24/7.
package main

import (
	"fmt"
	"log"
	"time"

	"griphon"
	"griphon/internal/baseline"
	"griphon/internal/traffic"
)

const (
	datasetBytes = 30e12 // 30 TB nightly
	nights       = 3
)

func main() {
	net, err := griphon.New(griphon.Backbone(), griphon.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	k := net.Controller().Kernel()

	fmt.Println("Nightly 30 TB replication DC-SEA -> DC-CHI, three nights")
	fmt.Println()

	// Keep a small interactive circuit up permanently.
	interactive, err := net.Connect("acme-cloud", "DC-SEA", "DC-CHI", griphon.Rate1G)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interactive 1G OTN circuit up (pipes %v) after %v\n",
		interactive.PipeIDs(), interactive.SetupTime().Round(time.Second))

	var bodBusy time.Duration
	for night := 0; night < nights; night++ {
		// Advance to 22:00 of this night.
		target := time.Duration(night)*24*time.Hour + 22*time.Hour
		net.Advance(target - net.Now())

		start := net.Now()
		bulk, err := net.Connect("acme-cloud", "DC-SEA", "DC-CHI", griphon.Rate10G)
		if err != nil {
			log.Fatal(err)
		}
		flow, err := traffic.NewFlow(k, fmt.Sprintf("night-%d", night), datasetBytes)
		if err != nil {
			log.Fatal(err)
		}
		flow.SetRate(bulk.Rate)
		for !flow.Completed() {
			net.Advance(time.Minute)
		}
		if err := net.Disconnect("acme-cloud", bulk.ID); err != nil {
			log.Fatal(err)
		}
		busy := net.Now() - start
		bodBusy += busy
		fmt.Printf("night %d: 10G wavelength up %v total (setup %v + transfer %v + teardown)\n",
			night+1, busy.Round(time.Second), bulk.SetupTime().Round(time.Second),
			flow.Elapsed().Round(time.Second))
	}

	// Cost comparison: BoD pays for the hours used; static pays 24/7.
	total := net.Now()
	costs := baseline.DefaultCosts()
	g := net.Controller().Graph()
	km := interactive.Route().KM(g)
	if km == 0 {
		km = 2800 // OTN circuits ride pipes; use the SEA-CHI span
	}
	wavelengthMonthly := costs.WavelengthMonthly(km, 0)
	bodUtil := bodBusy.Hours() / total.Hours()
	fmt.Println()
	fmt.Printf("over %v: the bulk wavelength was held %v (%.0f%% of the time)\n",
		total.Round(time.Hour), bodBusy.Round(time.Minute), bodUtil*100)
	fmt.Printf("relative cost per month: static wavelength = %.0f units, BoD = %.0f units (%.1fx cheaper)\n",
		wavelengthMonthly, wavelengthMonthly*bodUtil, 1/bodUtil)
	fmt.Println("(plus the static line would have taken", baseline.StaticLeadTime, "to provision at all)")

}
