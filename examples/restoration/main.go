// Restoration: a backhoe cuts a fiber under three otherwise identical 10G
// wavelengths, one per survivability scheme. Watch 1+1 switch in
// milliseconds, GRIPhoN's automated restoration re-provision in about a
// minute, and the unprotected connection wait hours for the repair crew
// (paper Table 1's outage rows).
package main

import (
	"fmt"
	"log"
	"time"

	"griphon"
)

func main() {
	schemes := []struct {
		name    string
		protect griphon.Protection
		repair  bool
	}{
		{"1+1 protection (expensive)", griphon.OnePlusOne, false},
		{"GRIPhoN automated restoration", griphon.Restore, false},
		{"unprotected (wait for repair crew)", griphon.Unprotected, true},
	}

	fmt.Println("Fiber cut on the working path, by survivability scheme:")
	fmt.Println()
	for _, sc := range schemes {
		opts := []griphon.Option{griphon.WithSeed(11)}
		if sc.repair {
			opts = append(opts, griphon.WithAutoRepair())
		}
		net, err := griphon.New(griphon.Testbed(), opts...)
		if err != nil {
			log.Fatal(err)
		}
		conn, err := net.Connect("acme-cloud", "DC-A", "DC-C", griphon.Rate10G, sc.protect)
		if err != nil {
			log.Fatal(err)
		}
		route := conn.Route()
		if err := net.CutFiber(string(route.Links[0])); err != nil {
			log.Fatal(err)
		}
		net.Drain() // let detection, localization, restoration/repair play out

		fmt.Printf("%-36s outage %-14v", sc.name, conn.TotalOutage.Round(time.Millisecond))
		switch {
		case conn.Restorations > 0:
			fmt.Printf(" (re-provisioned onto %s)", conn.Route())
		case conn.Route().Equal(route):
			fmt.Printf(" (revived on the repaired path)")
		default:
			fmt.Printf(" (switched to standby %s)", conn.Route())
		}
		fmt.Println()

		fmt.Println("  controller timeline:")
		for _, e := range net.EventsFor(conn.ID) {
			if e.Kind == "request" || e.Kind == "active" {
				continue
			}
			fmt.Printf("    %v\n", e)
		}
		for _, e := range net.Events() {
			if e.Conn == "" && (e.Kind == "localized" || e.Kind == "repair-dispatch") {
				fmt.Printf("    %v\n", e)
			}
		}
		fmt.Println()
	}
}
