module griphon

go 1.22
