package griphon

import (
	"fmt"
	"io"
	"time"

	"griphon/internal/alarms"
	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/inventory"
	"griphon/internal/journal"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// Rate is a connection bandwidth in bits per second.
type Rate = bw.Rate

// The BoD rates the paper discusses. Any rate from 1G upward is accepted;
// these are the common points.
const (
	Rate1G  = bw.Rate1G
	Rate2G5 = bw.Rate2G5
	Rate10G = bw.Rate10G
	Rate40G = bw.Rate40G
	Gbps    = bw.Gbps
	Mbps    = bw.Mbps
)

// ParseRate converts "1G", "2.5G", "10G", "622M" into a Rate.
func ParseRate(s string) (Rate, error) { return bw.Parse(s) }

// Protection selects a connection's survivability scheme (paper Table 1).
type Protection = core.Protection

const (
	// Restore is GRIPhoN's automated dynamic restoration (default).
	Restore = core.Restore
	// OnePlusOne pre-provisions a disjoint hot standby (~50 ms switch,
	// double cost).
	OnePlusOne = core.OnePlusOne
	// Unprotected waits for fiber repair (4–12 h outages).
	Unprotected = core.Unprotected
	// SharedMesh is the OTN layer's sub-second restoration (circuits).
	SharedMesh = core.SharedMesh
)

// Connection is a customer connection's live record. Fields are maintained by
// the controller; treat them as read-only.
type Connection = core.Connection

// ConnID identifies a connection.
type ConnID = core.ConnID

// Event is one audit-log entry (what the customer GUI shows).
type Event = core.Event

// Stats is a network-wide resource snapshot.
type Stats = core.Stats

// Maintenance reports what a planned-work window did.
type Maintenance = core.Maintenance

// AlarmGroup is one correlated alarm group from the customer alarm stream:
// a synthesized root event (e.g. "fiber cut suspected on I-IV") plus the raw
// per-circuit children it explains.
type AlarmGroup = alarms.Group

// SLAReport is a customer's availability report: per-connection up/down
// accounting with every outage attributed to a root cause.
type SLAReport = slo.CustomerReport

// FlightDump is a flight-recorder snapshot: the bounded tails of recent
// events, commit records, alarm groups and spans, plus whatever findings
// tripped the dump.
type FlightDump = slo.Dump

// Option configures a Network.
type Option func(*config)

type config struct {
	seed     int64
	core     core.Config
	tracing  bool
	stateDir string
	fsync    bool
}

// WithSeed sets the simulation seed (default 1). Runs with equal seeds are
// bit-identical.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithChannels sets the DWDM grid size per fiber (default 80).
func WithChannels(n int) Option {
	return func(c *config) { c.core.Optics.Channels = n }
}

// WithReachKM sets the optical reach before regeneration (default 2500 km).
func WithReachKM(km float64) Option {
	return func(c *config) { c.core.Optics.ReachKM = km }
}

// WithOTsPerNode sets the transponder pool size at every PoP (default 8).
func WithOTsPerNode(n int) Option {
	return func(c *config) { c.core.Optics.OTsPerNode = n }
}

// WithRegensPerNode sets the regenerator pool size at every PoP (default 2).
func WithRegensPerNode(n int) Option {
	return func(c *config) { c.core.Optics.RegensPerNode = n }
}

// WithReachForRate overrides the optical reach for one line rate (e.g. 40G
// signals regenerate sooner than 10G ones).
func WithReachForRate(rate Rate, km float64) Option {
	return func(c *config) {
		if c.core.Optics.ReachByRate == nil {
			c.core.Optics.ReachByRate = map[Rate]float64{}
		}
		c.core.Optics.ReachByRate[rate] = km
	}
}

// WithAutoRepair dispatches a repair crew automatically after every fiber
// cut (4–12 h, drawn from the latency model).
func WithAutoRepair() Option {
	return func(c *config) { c.core.AutoRepair = true }
}

// WithAutoRevert re-grooms restored connections back onto their best path
// after repairs, via bridge-and-roll.
func WithAutoRevert() Option {
	return func(c *config) { c.core.AutoRevert = true }
}

// WithTracing records a virtual-time span for every controller operation, EMS
// command and RWA search. Export the trace with TraceTo / TraceJSONLTo. Off by
// default: the disabled path costs zero allocations on the hot paths.
func WithTracing() Option {
	return func(c *config) { c.tracing = true }
}

// WithFastSetup turns on the low-latency setup machinery: the dependency-graph
// EMS choreography (independent steps run concurrently instead of in the
// paper's serial ladder), a path cache for repeat customers (invalidated on
// any topology or link-state change), and speculative pre-arming — a warm
// pool of two pre-tuned transponders per PoP and two pre-opened EMS sessions,
// re-armed in the background after each claim. Roughly halves wavelength
// setup latency on the testbed; see DESIGN.md §12.
func WithFastSetup() Option {
	return func(c *config) {
		c.core.Choreography = core.ChoreoGraph
		c.core.PathCache = true
		c.core.PreArm = core.PreArm{WarmOTsPerNode: 2, WarmSessions: 2}
	}
}

// WithFlightRecorder keeps bounded rings of the last capacity events, commit
// records and alarm groups, dumpable as JSON via DumpFlight when an invariant
// audit or a soak assertion trips. Off by default (zero retained state).
func WithFlightRecorder(capacity int) Option {
	return func(c *config) { c.core.FlightRecorder = capacity }
}

// WithStateDir makes the controller's state durable in dir: every committed
// operation is appended to a checksummed write-ahead log with periodic full
// snapshots. If dir already holds state from a previous run, New recovers it —
// connections, pipes, bookings, quotas and fiber status come back exactly as
// last committed, with booking timers re-armed. Call Close when done.
func WithStateDir(dir string) Option {
	return func(c *config) { c.stateDir = dir }
}

// WithFsync forces a file sync after every journal append (only meaningful
// with WithStateDir). Durability against OS crashes at one fsync per commit.
func WithFsync() Option {
	return func(c *config) { c.fsync = true }
}

// Network is a GRIPhoN deployment: the photonic plant, the OTN overlay, the
// vendor EMSes and the GRIPhoN controller, all running on one virtual clock.
// Network is not safe for concurrent use; the simulation is single-threaded
// by design (determinism).
type Network struct {
	k     *sim.Kernel
	ctrl  *core.Controller
	store *journal.Store
}

// New builds a network over the given topology.
func New(t *Topology, opts ...Option) (*Network, error) {
	if t == nil {
		return nil, fmt.Errorf("griphon: nil topology")
	}
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	// Partially overridden optics configs inherit the remaining defaults.
	oc := &cfg.core.Optics
	if oc.Channels == 0 {
		oc.Channels = 80
	}
	if oc.ReachKM == 0 {
		oc.ReachKM = 2500
	}
	if oc.OTsPerNode == 0 {
		oc.OTsPerNode = 8
	}
	if oc.RegensPerNode == 0 {
		oc.RegensPerNode = 2
	}
	k := sim.NewKernel(cfg.seed)
	if cfg.tracing {
		cfg.core.Tracer = obs.NewTracer(k)
	}
	var store *journal.Store
	if cfg.stateDir != "" {
		var err error
		store, err = journal.Open(cfg.stateDir, journal.Options{Fsync: cfg.fsync})
		if err != nil {
			return nil, err
		}
		cfg.core.Journal = store
	}
	var ctrl *core.Controller
	var err error
	if store != nil && store.HasState() {
		ctrl, err = core.Rehydrate(k, t.g, cfg.core)
	} else {
		ctrl, err = core.New(k, t.g, cfg.core)
	}
	if err != nil {
		if store != nil {
			_ = store.Close() // construction already failed; surface that error
		}
		return nil, err
	}
	return &Network{k: k, ctrl: ctrl, store: store}, nil
}

// Close releases the journal (a no-op without WithStateDir). The network is
// unusable for durable operations afterwards.
func (n *Network) Close() error {
	if n.store == nil {
		return nil
	}
	return n.store.Close()
}

// Controller exposes the underlying GRIPhoN controller for advanced use
// (benchmark harnesses drive it directly).
func (n *Network) Controller() *core.Controller { return n.ctrl }

// Now returns the current virtual time as an offset from the start.
func (n *Network) Now() time.Duration { return time.Duration(n.k.Now()) }

// Advance runs the simulation for d of virtual time.
func (n *Network) Advance(d time.Duration) { n.k.RunFor(d) }

// Drain runs the simulation until no events remain.
func (n *Network) Drain() { n.k.Run() }

// await drives the clock until the job completes.
func (n *Network) await(job *sim.Job) error {
	for !job.Done() {
		if !n.k.Step() {
			return fmt.Errorf("griphon: simulation stalled waiting for job")
		}
	}
	return job.Err()
}

// Connect provisions a connection between two sites at the given rate and
// runs the simulation until it is active (or its setup fails). Rates above a
// single wavelength (e.g. 12G) are provisioned as composite services; the
// returned connection is then the first component — use Connections to see
// them all.
func (n *Network) Connect(customer, from, to string, rate Rate, protect ...Protection) (*Connection, error) {
	req := core.Request{
		Customer: inventory.Customer(customer),
		From:     topo.SiteID(from),
		To:       topo.SiteID(to),
		Rate:     rate,
	}
	if len(protect) > 0 {
		req.Protect = protect[0]
	}
	conns, job, err := n.ctrl.ConnectComposite(req)
	if err != nil {
		return nil, err
	}
	if err := n.await(job); err != nil {
		return nil, err
	}
	return conns[0], nil
}

// ConnectAsync submits the request and returns without advancing the clock;
// the connection is Pending until the caller advances time past its setup.
func (n *Network) ConnectAsync(customer, from, to string, rate Rate, protect ...Protection) (*Connection, error) {
	req := core.Request{
		Customer: inventory.Customer(customer),
		From:     topo.SiteID(from),
		To:       topo.SiteID(to),
		Rate:     rate,
	}
	if len(protect) > 0 {
		req.Protect = protect[0]
	}
	conn, _, err := n.ctrl.Connect(req)
	return conn, err
}

// Disconnect tears a connection down and runs until its resources are
// released.
func (n *Network) Disconnect(customer string, id ConnID) error {
	job, err := n.ctrl.Disconnect(inventory.Customer(customer), id)
	if err != nil {
		return err
	}
	return n.await(job)
}

// Connections lists a customer's connections (the GUI's connection view).
func (n *Network) Connections(customer string) []*Connection {
	return n.ctrl.CustomerConnections(inventory.Customer(customer))
}

// Conn returns one connection by ID, or nil.
func (n *Network) Conn(id ConnID) *Connection { return n.ctrl.Conn(id) }

// CutFiber fails a fiber link; detection, localization and restoration
// proceed as the simulation advances.
func (n *Network) CutFiber(link string) error {
	return n.ctrl.CutFiber(topo.LinkID(link))
}

// RepairFiber returns a failed link to service.
func (n *Network) RepairFiber(link string) error {
	return n.ctrl.RepairFiber(topo.LinkID(link))
}

// BridgeAndRoll moves an active wavelength connection to a disjoint path
// almost hitlessly and runs until the roll completes.
func (n *Network) BridgeAndRoll(customer string, id ConnID) error {
	job, err := n.ctrl.BridgeAndRoll(inventory.Customer(customer), id, nil)
	if err != nil {
		return err
	}
	return n.await(job)
}

// ScheduleMaintenance plans work on a link at a virtual time offset `in` from
// now, lasting `window`. It returns immediately; advance the clock to let it
// happen. The Maintenance record fills in as it proceeds.
func (n *Network) ScheduleMaintenance(link string, in, window time.Duration) (*Maintenance, error) {
	m, _, err := n.ctrl.ScheduleMaintenance(topo.LinkID(link), n.k.Now().Add(in), window)
	return m, err
}

// Regroom moves a connection onto a better path if one exists (reports
// whether it moved) and runs until done.
func (n *Network) Regroom(customer string, id ConnID) (bool, error) {
	moved, job, err := n.ctrl.Regroom(inventory.Customer(customer), id)
	if err != nil {
		return false, err
	}
	return moved, n.await(job)
}

// Booking is a calendar reservation for a future bandwidth window.
type Booking = core.Booking

// ScheduleConnect books a connection window starting `in` from now and
// lasting `hold`. Provisioning happens when the window opens; advance the
// clock to let it play out.
func (n *Network) ScheduleConnect(customer, from, to string, rate Rate, in, hold time.Duration) (*Booking, error) {
	return n.ctrl.ScheduleConnect(core.Request{
		Customer: inventory.Customer(customer),
		From:     topo.SiteID(from),
		To:       topo.SiteID(to),
		Rate:     rate,
	}, sim.Time(n.Now()+in), hold)
}

// AdjustRate resizes an active connection in place (OTN circuits: hitless
// slot changes; wavelengths: a brief re-tune) and runs until the adjustment
// completes. Moves across the OTN/DWDM boundary are rejected.
func (n *Network) AdjustRate(customer string, id ConnID, rate Rate) error {
	job, err := n.ctrl.AdjustRate(inventory.Customer(customer), id, rate)
	if err != nil {
		return err
	}
	return n.await(job)
}

// ReclaimIdlePipes retires OTN pipes that carry no circuits, returning their
// wavelengths and transponders to the shared pool. It reports how many pipes
// were reclaimed and runs until the teardowns complete.
func (n *Network) ReclaimIdlePipes() (int, error) {
	job, count := n.ctrl.ReclaimIdlePipes()
	return count, n.await(job)
}

// BillGbHours returns a customer's cumulative delivered gigabit-hours — the
// BoD billing unit (outages excluded).
func (n *Network) BillGbHours(customer string) float64 {
	return n.ctrl.BillGbHours(inventory.Customer(customer))
}

// SetQuota bounds a customer's simultaneous connections and total bandwidth
// (zero = unlimited).
func (n *Network) SetQuota(customer string, maxConns int, maxBandwidth Rate) {
	n.ctrl.SetQuota(inventory.Customer(customer), inventory.Quota{
		MaxConnections: maxConns,
		MaxBandwidth:   maxBandwidth,
	})
}

// Stats returns a resource snapshot.
func (n *Network) Stats() Stats { return n.ctrl.Snapshot() }

// Tracer returns the network's span recorder (nil unless WithTracing).
func (n *Network) Tracer() *obs.Tracer { return n.ctrl.Tracer() }

// Metrics returns the network's instrument registry (always non-nil); its
// Prometheus rendering is what GET /api/v1/metrics serves.
func (n *Network) Metrics() *obs.Registry { return n.ctrl.Metrics() }

// TraceTo writes the recorded spans in Chrome trace_event JSON — loadable in
// chrome://tracing or ui.perfetto.dev, with one track per EMS so a setup
// renders as the paper's step ladder. Fails unless WithTracing was set.
func (n *Network) TraceTo(w io.Writer) error {
	tr := n.ctrl.Tracer()
	if !tr.Enabled() {
		return fmt.Errorf("griphon: tracing is off; construct the network with WithTracing")
	}
	return tr.WriteChromeTrace(w)
}

// TraceJSONLTo writes the recorded spans as JSON Lines (one span per line).
func (n *Network) TraceJSONLTo(w io.Writer) error {
	tr := n.ctrl.Tracer()
	if !tr.Enabled() {
		return fmt.Errorf("griphon: tracing is off; construct the network with WithTracing")
	}
	return tr.WriteJSONL(w)
}

// MetricsTo writes every instrument in Prometheus text format.
func (n *Network) MetricsTo(w io.Writer) error {
	return n.ctrl.Metrics().WritePrometheus(w)
}

// Events returns the audit log.
func (n *Network) Events() []Event { return n.ctrl.Events() }

// EventsFor returns the audit log entries for one connection.
func (n *Network) EventsFor(id ConnID) []Event { return n.ctrl.EventsFor(id) }

// EventsSince returns audit-log entries after the cursor plus the next cursor
// (len of the log); resuming from it yields no gaps or repeats.
func (n *Network) EventsSince(cursor int) ([]Event, int) { return n.ctrl.EventsSince(cursor) }

// Alarms returns correlated alarm groups after the seq cursor, projected onto
// one customer's view ("" = operator sees everything), plus the cursor to
// resume from.
func (n *Network) Alarms(since uint64, customer string) ([]AlarmGroup, uint64) {
	return n.ctrl.AlarmsSince(since, customer)
}

// SLA assembles a customer's availability report as of the current virtual
// time. An empty customer is the operator view (every non-internal
// connection).
func (n *Network) SLA(customer string) SLAReport { return n.ctrl.SLAReport(customer) }

// DumpFlight snapshots the flight recorder (ok=false without
// WithFlightRecorder), folding findings into the dump.
func (n *Network) DumpFlight(reason string, findings []string) (FlightDump, bool) {
	return n.ctrl.DumpFlight(reason, findings)
}

// DefragmentSpectrum retunes active wavelengths down to the lowest free
// channels on their paths (brief per-connection hits), restoring first-fit
// packing after churn. It reports how many connections moved and runs until
// the retunes complete.
func (n *Network) DefragmentSpectrum() (int, error) {
	job, moved := n.ctrl.DefragmentSpectrum()
	return moved, n.await(job)
}
