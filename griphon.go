package griphon

import (
	"fmt"
	"io"
	"time"

	"griphon/internal/alarms"
	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/inventory"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// Rate is a connection bandwidth in bits per second.
type Rate = bw.Rate

// The BoD rates the paper discusses. Any rate from 1G upward is accepted;
// these are the common points.
const (
	Rate1G  = bw.Rate1G
	Rate2G5 = bw.Rate2G5
	Rate10G = bw.Rate10G
	Rate40G = bw.Rate40G
	Gbps    = bw.Gbps
	Mbps    = bw.Mbps
)

// ParseRate converts "1G", "2.5G", "10G", "622M" into a Rate.
func ParseRate(s string) (Rate, error) { return bw.Parse(s) }

// Protection selects a connection's survivability scheme (paper Table 1).
type Protection = core.Protection

const (
	// Restore is GRIPhoN's automated dynamic restoration (default).
	Restore = core.Restore
	// OnePlusOne pre-provisions a disjoint hot standby (~50 ms switch,
	// double cost).
	OnePlusOne = core.OnePlusOne
	// Unprotected waits for fiber repair (4–12 h outages).
	Unprotected = core.Unprotected
	// SharedMesh is the OTN layer's sub-second restoration (circuits).
	SharedMesh = core.SharedMesh
)

// Connection is a customer connection's live record. Fields are maintained by
// the controller; treat them as read-only.
type Connection = core.Connection

// ConnID identifies a connection.
type ConnID = core.ConnID

// Event is one audit-log entry (what the customer GUI shows).
type Event = core.Event

// Stats is a network-wide resource snapshot.
type Stats = core.Stats

// Maintenance reports what a planned-work window did.
type Maintenance = core.Maintenance

// AlarmGroup is one correlated alarm group from the customer alarm stream:
// a synthesized root event (e.g. "fiber cut suspected on I-IV") plus the raw
// per-circuit children it explains.
type AlarmGroup = alarms.Group

// SLAReport is a customer's availability report: per-connection up/down
// accounting with every outage attributed to a root cause.
type SLAReport = slo.CustomerReport

// FlightDump is a flight-recorder snapshot: the bounded tails of recent
// events, commit records, alarm groups and spans, plus whatever findings
// tripped the dump.
type FlightDump = slo.Dump

// Finding is one invariant violation reported by AuditInvariants.
type Finding = core.Finding

// Option configures a Network.
type Option func(*config)

type config struct {
	seed     int64
	core     core.Config
	tracing  bool
	stateDir string
	fsync    bool
	segSize  int64
	shards   int
	maxPipes int
}

// WithSeed sets the simulation seed (default 1). Runs with equal seeds are
// bit-identical.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithChannels sets the DWDM grid size per fiber (default 80).
func WithChannels(n int) Option {
	return func(c *config) { c.core.Optics.Channels = n }
}

// WithReachKM sets the optical reach before regeneration (default 2500 km).
func WithReachKM(km float64) Option {
	return func(c *config) { c.core.Optics.ReachKM = km }
}

// WithOTsPerNode sets the transponder pool size at every PoP (default 8).
func WithOTsPerNode(n int) Option {
	return func(c *config) { c.core.Optics.OTsPerNode = n }
}

// WithRegensPerNode sets the regenerator pool size at every PoP (default 2).
func WithRegensPerNode(n int) Option {
	return func(c *config) { c.core.Optics.RegensPerNode = n }
}

// WithReachForRate overrides the optical reach for one line rate (e.g. 40G
// signals regenerate sooner than 10G ones).
func WithReachForRate(rate Rate, km float64) Option {
	return func(c *config) {
		if c.core.Optics.ReachByRate == nil {
			c.core.Optics.ReachByRate = map[Rate]float64{}
		}
		c.core.Optics.ReachByRate[rate] = km
	}
}

// WithAutoRepair dispatches a repair crew automatically after every fiber
// cut (4–12 h, drawn from the latency model).
func WithAutoRepair() Option {
	return func(c *config) { c.core.AutoRepair = true }
}

// WithAutoRevert re-grooms restored connections back onto their best path
// after repairs, via bridge-and-roll.
func WithAutoRevert() Option {
	return func(c *config) { c.core.AutoRevert = true }
}

// WithTracing records a virtual-time span for every controller operation, EMS
// command and RWA search. Export the trace with TraceTo / TraceJSONLTo. Off by
// default: the disabled path costs zero allocations on the hot paths.
func WithTracing() Option {
	return func(c *config) { c.tracing = true }
}

// WithFastSetup turns on the low-latency setup machinery: the dependency-graph
// EMS choreography (independent steps run concurrently instead of in the
// paper's serial ladder), a path cache for repeat customers (invalidated on
// any topology or link-state change), and speculative pre-arming — a warm
// pool of two pre-tuned transponders per PoP and two pre-opened EMS sessions,
// re-armed in the background after each claim. Roughly halves wavelength
// setup latency on the testbed; see DESIGN.md §12.
func WithFastSetup() Option {
	return func(c *config) {
		c.core.Choreography = core.ChoreoGraph
		c.core.PathCache = true
		c.core.PreArm = core.PreArm{WarmOTsPerNode: 2, WarmSessions: 2}
	}
}

// WithFlightRecorder keeps bounded rings of the last capacity events, commit
// records and alarm groups, dumpable as JSON via DumpFlight when an invariant
// audit or a soak assertion trips. Off by default (zero retained state).
func WithFlightRecorder(capacity int) Option {
	return func(c *config) { c.core.FlightRecorder = capacity }
}

// WithStateDir makes the controller's state durable in dir: every committed
// operation is appended to a checksummed write-ahead log with periodic full
// snapshots. If dir already holds state from a previous run, New recovers it —
// connections, pipes, bookings, quotas and fiber status come back exactly as
// last committed, with booking timers re-armed. Call Close when done.
func WithStateDir(dir string) Option {
	return func(c *config) { c.stateDir = dir }
}

// WithFsync forces a file sync after every journal append (only meaningful
// with WithStateDir). Durability against OS crashes at one fsync per commit.
func WithFsync() Option {
	return func(c *config) { c.fsync = true }
}

// WithWALSegmentSize bounds each write-ahead-log segment to roughly n bytes
// (only meaningful with WithStateDir). The journal rotates to a fresh segment
// once the active one crosses the bound and compacts segments a snapshot
// fully covers in the background; smaller segments mean faster reclamation
// after snapshots at the cost of more files. 0 keeps the 4 MiB default,
// negative disables rotation (one unbounded segment, the historical layout).
func WithWALSegmentSize(n int64) Option {
	return func(c *config) { c.segSize = n }
}

// WithShards partitions the control plane into n shards, each a full
// controller (own event loop, own journal under <stateDir>/shard-<i>, own
// plant replica) serving the customers that hash to it. Spectrum on shared
// fibers and OTN pipe capacity are brokered by a cross-shard coordinator;
// everything else is shard-local. n <= 1 is the serial single-shard mode —
// the default, byte-compatible with unsharded deployments — and runs the
// same code path. See DESIGN.md §15.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithMaxPipesPerPair caps concurrent OTN pipes between one node pair across
// all shards (0 = unlimited; only meaningful with WithShards).
func WithMaxPipesPerPair(n int) Option {
	return func(c *config) { c.maxPipes = n }
}

// Network is a GRIPhoN deployment: the photonic plant, the OTN overlay, the
// vendor EMSes and the GRIPhoN controller, all running on one virtual clock.
// With WithShards the control plane is partitioned per customer into N such
// controllers coordinated over the shared plant (see DESIGN.md §15); without
// it everything runs on one controller, byte-compatible with earlier
// versions. Network is not safe for concurrent use; the simulation is
// single-threaded by design (determinism).
type Network struct {
	set  *core.ShardSet
	ctrl *core.Controller // shard 0, the whole plane when unsharded
}

// New builds a network over the given topology.
func New(t *Topology, opts ...Option) (*Network, error) {
	if t == nil {
		return nil, fmt.Errorf("griphon: nil topology")
	}
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	// Partially overridden optics configs inherit the remaining defaults.
	oc := &cfg.core.Optics
	if oc.Channels == 0 {
		oc.Channels = 80
	}
	if oc.ReachKM == 0 {
		oc.ReachKM = 2500
	}
	if oc.OTsPerNode == 0 {
		oc.OTsPerNode = 8
	}
	if oc.RegensPerNode == 0 {
		oc.RegensPerNode = 2
	}
	set, err := core.NewShardSet(t.g, core.ShardSetConfig{
		Shards:          cfg.shards,
		Seed:            cfg.seed,
		Core:            cfg.core,
		StateDir:        cfg.stateDir,
		Fsync:           cfg.fsync,
		SegmentSize:     cfg.segSize,
		Tracing:         cfg.tracing,
		MaxPipesPerPair: cfg.maxPipes,
	})
	if err != nil {
		return nil, err
	}
	return &Network{set: set, ctrl: set.Shard(0).Ctrl}, nil
}

// Close releases every shard's journal (a no-op without WithStateDir). The
// network is unusable for durable operations afterwards.
func (n *Network) Close() error { return n.set.Close() }

// Controller exposes the underlying GRIPhoN controller — shard 0's when
// sharded — for advanced use (benchmark harnesses drive it directly).
func (n *Network) Controller() *core.Controller { return n.ctrl }

// ShardSet exposes the sharded control plane itself: per-shard controllers,
// the cross-shard coordinator and the parallel drivers the multi-tenant
// benchmark uses.
func (n *Network) ShardSet() *core.ShardSet { return n.set }

// Shards returns the shard count (1 unless WithShards).
func (n *Network) Shards() int { return n.set.Len() }

// ShardFor returns the index of the shard owning a customer's state.
func (n *Network) ShardFor(customer string) int {
	return n.set.ShardFor(inventory.Customer(customer))
}

// forCust returns the controller owning a customer's state.
func (n *Network) forCust(customer string) *core.Controller {
	return n.set.For(inventory.Customer(customer))
}

// Now returns the current virtual time as an offset from the start (the
// latest shard clock when sharded).
func (n *Network) Now() time.Duration { return time.Duration(n.set.Now()) }

// Advance runs the simulation for d of virtual time, in lockstep across
// shards (deterministic).
func (n *Network) Advance(d time.Duration) { n.set.Advance(d) }

// Drain runs the simulation until no events remain on any shard.
func (n *Network) Drain() { n.set.Drain() }

// AuditInvariants sweeps every shard's resource books plus the cross-shard
// invariants (spectrum claims, pipe tokens, tenant placement). Empty means
// everything balances.
func (n *Network) AuditInvariants() []Finding { return n.set.AuditInvariants() }

// await drives the clock until the job completes.
func (n *Network) await(job *sim.Job) error {
	if err := n.set.Await(job); err != nil {
		if job.Done() {
			return err
		}
		return fmt.Errorf("griphon: simulation stalled waiting for job")
	}
	return nil
}

// Connect provisions a connection between two sites at the given rate and
// runs the simulation until it is active (or its setup fails). Rates above a
// single wavelength (e.g. 12G) are provisioned as composite services; the
// returned connection is then the first component — use Connections to see
// them all.
func (n *Network) Connect(customer, from, to string, rate Rate, protect ...Protection) (*Connection, error) {
	req := core.Request{
		Customer: inventory.Customer(customer),
		From:     topo.SiteID(from),
		To:       topo.SiteID(to),
		Rate:     rate,
	}
	if len(protect) > 0 {
		req.Protect = protect[0]
	}
	conns, job, err := n.forCust(customer).ConnectComposite(req)
	if err != nil {
		return nil, err
	}
	if err := n.await(job); err != nil {
		return nil, err
	}
	return conns[0], nil
}

// ConnectAsync submits the request and returns without advancing the clock;
// the connection is Pending until the caller advances time past its setup.
func (n *Network) ConnectAsync(customer, from, to string, rate Rate, protect ...Protection) (*Connection, error) {
	req := core.Request{
		Customer: inventory.Customer(customer),
		From:     topo.SiteID(from),
		To:       topo.SiteID(to),
		Rate:     rate,
	}
	if len(protect) > 0 {
		req.Protect = protect[0]
	}
	conn, _, err := n.forCust(customer).Connect(req)
	return conn, err
}

// Disconnect tears a connection down and runs until its resources are
// released.
func (n *Network) Disconnect(customer string, id ConnID) error {
	job, err := n.forCust(customer).Disconnect(inventory.Customer(customer), id)
	if err != nil {
		return err
	}
	return n.await(job)
}

// Connections lists a customer's connections (the GUI's connection view).
func (n *Network) Connections(customer string) []*Connection {
	return n.forCust(customer).CustomerConnections(inventory.Customer(customer))
}

// Conn returns one connection by ID, or nil (searched across shards).
func (n *Network) Conn(id ConnID) *Connection { return n.set.Conn(id) }

// CutFiber fails a fiber link on every shard's plant replica; detection,
// localization and restoration proceed as the simulation advances.
func (n *Network) CutFiber(link string) error {
	return n.set.CutFiber(topo.LinkID(link))
}

// RepairFiber returns a failed link to service on every shard.
func (n *Network) RepairFiber(link string) error {
	return n.set.RepairFiber(topo.LinkID(link))
}

// BridgeAndRoll moves an active wavelength connection to a disjoint path
// almost hitlessly and runs until the roll completes.
func (n *Network) BridgeAndRoll(customer string, id ConnID) error {
	job, err := n.forCust(customer).BridgeAndRoll(inventory.Customer(customer), id, nil)
	if err != nil {
		return err
	}
	return n.await(job)
}

// ScheduleMaintenance plans work on a link at a virtual time offset `in` from
// now, lasting `window`. It returns immediately; advance the clock to let it
// happen. The Maintenance record fills in as it proceeds.
func (n *Network) ScheduleMaintenance(link string, in, window time.Duration) (*Maintenance, error) {
	// Planned work is plant state, replicated like fiber cuts: every shard
	// schedules its own window so each drains and restores its own
	// customers. The operator watches shard 0's record.
	var first *Maintenance
	var firstErr error
	for _, sh := range n.set.Shards() {
		m, _, err := sh.Ctrl.ScheduleMaintenance(topo.LinkID(link), sh.Kernel.Now().Add(in), window)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if first == nil {
			first = m
		}
	}
	if first != nil {
		return first, nil
	}
	return nil, firstErr
}

// Regroom moves a connection onto a better path if one exists (reports
// whether it moved) and runs until done.
func (n *Network) Regroom(customer string, id ConnID) (bool, error) {
	moved, job, err := n.forCust(customer).Regroom(inventory.Customer(customer), id)
	if err != nil {
		return false, err
	}
	return moved, n.await(job)
}

// Booking is a calendar reservation for a future bandwidth window.
type Booking = core.Booking

// ScheduleConnect books a connection window starting `in` from now and
// lasting `hold`. Provisioning happens when the window opens; advance the
// clock to let it play out.
func (n *Network) ScheduleConnect(customer, from, to string, rate Rate, in, hold time.Duration) (*Booking, error) {
	c := n.forCust(customer)
	return c.ScheduleConnect(core.Request{
		Customer: inventory.Customer(customer),
		From:     topo.SiteID(from),
		To:       topo.SiteID(to),
		Rate:     rate,
	}, c.NowTime().Add(in), hold)
}

// Booking returns one of a customer's bookings by ID. IDs belonging to a
// different customer read as unknown.
func (n *Network) Booking(customer string, id int) (*Booking, error) {
	return n.forCust(customer).Booking(inventory.Customer(customer), id)
}

// Bookings lists a customer's bookings in ID order.
func (n *Network) Bookings(customer string) []*Booking {
	return n.forCust(customer).Bookings(inventory.Customer(customer))
}

// CancelBooking ends a customer's booking early — a pending window is
// descheduled, an open one has its components released — and runs until the
// release completes.
func (n *Network) CancelBooking(customer string, id int) error {
	job, err := n.forCust(customer).CancelBooking(inventory.Customer(customer), id)
	if err != nil {
		return err
	}
	return n.await(job)
}

// AdjustRate resizes an active connection in place (OTN circuits: hitless
// slot changes; wavelengths: a brief re-tune) and runs until the adjustment
// completes. Moves across the OTN/DWDM boundary are rejected.
func (n *Network) AdjustRate(customer string, id ConnID, rate Rate) error {
	job, err := n.forCust(customer).AdjustRate(inventory.Customer(customer), id, rate)
	if err != nil {
		return err
	}
	return n.await(job)
}

// ReclaimIdlePipes retires OTN pipes that carry no circuits, returning their
// wavelengths and transponders to the shared pool. It reports how many pipes
// were reclaimed and runs until the teardowns complete.
func (n *Network) ReclaimIdlePipes() (int, error) {
	total := 0
	for _, sh := range n.set.Shards() {
		job, count := sh.Ctrl.ReclaimIdlePipes()
		total += count
		if err := n.await(job); err != nil {
			return total, err
		}
	}
	return total, nil
}

// BillGbHours returns a customer's cumulative delivered gigabit-hours — the
// BoD billing unit (outages excluded).
func (n *Network) BillGbHours(customer string) float64 {
	return n.forCust(customer).BillGbHours(inventory.Customer(customer))
}

// SetQuota bounds a customer's simultaneous connections and total bandwidth
// (zero = unlimited). The quota lands on — and is journaled by — exactly the
// shard that owns the customer, so it is admission-safe while setups are in
// flight on other shards.
func (n *Network) SetQuota(customer string, maxConns int, maxBandwidth Rate) {
	n.set.SetQuota(inventory.Customer(customer), inventory.Quota{
		MaxConnections: maxConns,
		MaxBandwidth:   maxBandwidth,
	})
}

// Stats returns a resource snapshot (summed across shards).
func (n *Network) Stats() Stats { return n.set.Snapshot() }

// Tracer returns the network's span recorder (nil unless WithTracing).
func (n *Network) Tracer() *obs.Tracer { return n.ctrl.Tracer() }

// Metrics returns the network's instrument registry (always non-nil); its
// Prometheus rendering is what GET /api/v1/metrics serves.
func (n *Network) Metrics() *obs.Registry { return n.ctrl.Metrics() }

// TraceTo writes the recorded spans in Chrome trace_event JSON — loadable in
// chrome://tracing or ui.perfetto.dev, with one track per EMS so a setup
// renders as the paper's step ladder. Fails unless WithTracing was set.
func (n *Network) TraceTo(w io.Writer) error {
	tr := n.ctrl.Tracer()
	if !tr.Enabled() {
		return fmt.Errorf("griphon: tracing is off; construct the network with WithTracing")
	}
	return tr.WriteChromeTrace(w)
}

// TraceJSONLTo writes the recorded spans as JSON Lines (one span per line).
func (n *Network) TraceJSONLTo(w io.Writer) error {
	tr := n.ctrl.Tracer()
	if !tr.Enabled() {
		return fmt.Errorf("griphon: tracing is off; construct the network with WithTracing")
	}
	return tr.WriteJSONL(w)
}

// MetricsTo writes every instrument in Prometheus text format. When sharded,
// the per-shard registries are merged under an injected shard label.
func (n *Network) MetricsTo(w io.Writer) error {
	return n.set.WriteMetrics(w)
}

// Events returns the audit log (merged across shards).
func (n *Network) Events() []Event { return n.set.Events() }

// EventsFor returns the audit log entries for one connection.
func (n *Network) EventsFor(id ConnID) []Event { return n.set.EventsFor(id) }

// EventsSince returns audit-log entries after the cursor plus the next cursor
// (len of the log); resuming from it yields no gaps or repeats.
func (n *Network) EventsSince(cursor int) ([]Event, int) { return n.set.EventsSince(cursor) }

// Alarms returns correlated alarm groups after the seq cursor, projected onto
// one customer's view ("" = operator sees everything), plus the cursor to
// resume from. Customer cursors live in the owning shard's stream; the
// operator cursor in the merged stream.
func (n *Network) Alarms(since uint64, customer string) ([]AlarmGroup, uint64) {
	return n.set.AlarmsSince(since, customer)
}

// SLA assembles a customer's availability report as of the current virtual
// time. An empty customer is the operator view (every non-internal
// connection, read from shard 0 when sharded).
func (n *Network) SLA(customer string) SLAReport {
	if customer == "" {
		return n.ctrl.SLAReport("")
	}
	return n.forCust(customer).SLAReport(customer)
}

// DumpFlight snapshots the flight recorder (ok=false without
// WithFlightRecorder), folding findings into the dump.
func (n *Network) DumpFlight(reason string, findings []string) (FlightDump, bool) {
	return n.ctrl.DumpFlight(reason, findings)
}

// DefragmentSpectrum retunes active wavelengths down to the lowest free
// channels on their paths (brief per-connection hits), restoring first-fit
// packing after churn. It reports how many connections moved and runs until
// the retunes complete.
func (n *Network) DefragmentSpectrum() (int, error) {
	total := 0
	for _, sh := range n.set.Shards() {
		job, moved := sh.Ctrl.DefragmentSpectrum()
		total += moved
		if err := n.await(job); err != nil {
			return total, err
		}
	}
	return total, nil
}
