package griphon

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestFaultVisibilityFacade exercises the customer fault-visibility surface
// end to end: alarm stream, SLA ledger and flight recorder through the
// public API.
func TestFaultVisibilityFacade(t *testing.T) {
	n := newNet(t, WithSeed(44), WithTracing(), WithFlightRecorder(64))
	conn, err := n.Connect("acme", "DC-A", "DC-C", Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	evs, cursor := n.EventsSince(0)
	if len(evs) == 0 {
		t.Fatal("no events after connect")
	}
	if err := n.CutFiber(string(conn.Route().Links[0])); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	n.Advance(time.Hour)

	groups, next := n.Alarms(0, "acme")
	if len(groups) != 1 || groups[0].Kind.String() != "fiber-cut" {
		t.Fatalf("alarm groups = %+v", groups)
	}
	if again, _ := n.Alarms(next, "acme"); len(again) != 0 {
		t.Errorf("cursor replayed %d groups", len(again))
	}
	if more, _ := n.EventsSince(cursor); len(more) == 0 {
		t.Error("no new events after the cut")
	}

	rep := n.SLA("acme")
	if len(rep.Conns) != 1 || rep.Unattributed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Availability <= 0 || rep.Availability >= 1 {
		t.Errorf("availability = %v", rep.Availability)
	}
	if rep.Conns[0].Outages[0].Cause.String() != "fiber-cut" {
		t.Errorf("cause = %v", rep.Conns[0].Outages[0].Cause)
	}

	dump, ok := n.DumpFlight("facade-test", []string{"demo"})
	if !ok {
		t.Fatal("no flight recorder despite WithFlightRecorder")
	}
	var buf bytes.Buffer
	if err := dump.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if round["reason"] != "facade-test" {
		t.Errorf("dump reason = %v", round["reason"])
	}

	// Without the option there is no recorder.
	n2 := newNet(t, WithSeed(45))
	if _, ok := n2.DumpFlight("x", nil); ok {
		t.Error("flight recorder present without WithFlightRecorder")
	}
}
