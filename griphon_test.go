package griphon

import (
	"testing"
	"time"
)

func newNet(t *testing.T, opts ...Option) *Network {
	t.Helper()
	n, err := New(Testbed(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestQuickstartFlow(t *testing.T) {
	n := newNet(t, WithSeed(42))
	conn, err := n.Connect("acme", "DC-A", "DC-C", Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	st := conn.SetupTime()
	if st < 55*time.Second || st > 70*time.Second {
		t.Errorf("setup = %v, want ~62 s (Table 2, 1 hop)", st)
	}
	if got := n.Connections("acme"); len(got) != 1 || got[0] != conn {
		t.Errorf("Connections = %v", got)
	}
	if err := n.Disconnect("acme", conn.ID); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Active != 0 || s.ChannelsInUse != 0 {
		t.Errorf("leak after disconnect: %+v", s)
	}
}

// TestFastSetupViaFacade: WithFastSetup roughly halves the quickstart's
// wavelength setup time and leaves the resource books balanced.
func TestFastSetupViaFacade(t *testing.T) {
	n := newNet(t, WithSeed(42), WithFastSetup())
	conn, err := n.Connect("acme", "DC-A", "DC-C", Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	if st := conn.SetupTime(); st > 35*time.Second {
		t.Errorf("fast setup = %v, want well under the ~62 s serial baseline", st)
	}
	if err := n.Disconnect("acme", conn.ID); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Active != 0 || s.ChannelsInUse != 0 {
		t.Errorf("leak after disconnect: %+v", s)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(NewTopology()); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestTopologyBuilder(t *testing.T) {
	tp := NewTopology()
	if err := tp.AddPoP("A", true); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddPoP("B", true); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddFiber("A-B", "A", "B", 500); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSite("S1", "A", 40); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddSite("S2", "B", 40); err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tp.PoPs(); len(got) != 2 || got[0] != "A" {
		t.Errorf("PoPs = %v", got)
	}
	if got := tp.Sites(); len(got) != 2 {
		t.Errorf("Sites = %v", got)
	}
	if got := tp.Fibers(); len(got) != 1 || got[0] != "A-B" {
		t.Errorf("Fibers = %v", got)
	}
	n, err := New(tp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("c", "S1", "S2", Rate10G); err != nil {
		t.Fatal(err)
	}
	// Builder error paths.
	if err := tp.AddPoP("A", false); err == nil {
		t.Error("duplicate PoP accepted")
	}
	if err := tp.AddFiber("X", "A", "Z", 10); err == nil {
		t.Error("fiber to unknown PoP accepted")
	}
	if err := tp.AddSite("S3", "Z", 40); err == nil {
		t.Error("site at unknown PoP accepted")
	}
}

func TestCompositeViaConnect(t *testing.T) {
	n := newNet(t)
	conn, err := n.Connect("acme", "DC-A", "DC-B", 12*Gbps)
	if err != nil {
		t.Fatal(err)
	}
	if conn == nil {
		t.Fatal("nil connection")
	}
	comps := n.Connections("acme")
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3 (10G + 2x1G)", len(comps))
	}
	var total Rate
	for _, c := range comps {
		total += c.Rate
	}
	if total != 12*Gbps {
		t.Errorf("total = %v", total)
	}
}

func TestFailureRestorationViaFacade(t *testing.T) {
	n := newNet(t, WithSeed(7))
	conn, err := n.Connect("acme", "DC-A", "DC-C", Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	route := conn.Route()
	if err := n.CutFiber(string(route.Links[0])); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if conn.State.String() != "active" {
		t.Errorf("state = %v after restoration", conn.State)
	}
	if conn.Restorations != 1 {
		t.Errorf("restorations = %d", conn.Restorations)
	}
	if err := n.RepairFiber(string(route.Links[0])); err != nil {
		t.Fatal(err)
	}
	if err := n.CutFiber("no-such-link"); err == nil {
		t.Error("unknown link accepted")
	}
}

func TestMaintenanceViaFacade(t *testing.T) {
	n := newNet(t)
	conn, err := n.Connect("acme", "DC-A", "DC-C", Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	link := string(conn.Route().Links[0])
	m, err := n.ScheduleMaintenance(link, time.Hour, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if !m.Finished {
		t.Error("maintenance not finished")
	}
	if len(m.Rolled) != 1 {
		t.Errorf("rolled = %v", m.Rolled)
	}
	if conn.TotalOutage > 100*time.Millisecond {
		t.Errorf("outage = %v, want near-hitless", conn.TotalOutage)
	}
}

func TestBridgeAndRollAndRegroomViaFacade(t *testing.T) {
	n := newNet(t, WithSeed(3))
	conn, err := n.Connect("acme", "DC-A", "DC-C", Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	old := conn.Route()
	if err := n.BridgeAndRoll("acme", conn.ID); err != nil {
		t.Fatal(err)
	}
	if conn.Route().Equal(old) {
		t.Error("route unchanged")
	}
	// Now a regroom brings it back to the short path.
	moved, err := n.Regroom("acme", conn.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Error("regroom did not move back to the short path")
	}
	if !conn.Route().Equal(old) {
		t.Errorf("route = %v, want %v", conn.Route(), old)
	}
}

func TestQuotaViaFacade(t *testing.T) {
	n := newNet(t)
	n.SetQuota("acme", 1, 0)
	if _, err := n.Connect("acme", "DC-A", "DC-B", Rate10G); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("acme", "DC-A", "DC-C", Rate10G); err == nil {
		t.Error("quota not enforced")
	}
}

func TestEventsAndStatsViaFacade(t *testing.T) {
	n := newNet(t)
	conn, err := n.Connect("acme", "DC-A", "DC-B", Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Events()) == 0 {
		t.Error("no events")
	}
	evs := n.EventsFor(conn.ID)
	if len(evs) < 2 {
		t.Errorf("events for conn = %d", len(evs))
	}
	if n.Stats().Active != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
	if n.Conn(conn.ID) != conn {
		t.Error("Conn lookup failed")
	}
	if n.Conn("C9999") != nil {
		t.Error("unknown Conn returned non-nil")
	}
}

func TestAdvanceAndNow(t *testing.T) {
	n := newNet(t)
	if n.Now() != 0 {
		t.Errorf("Now = %v at start", n.Now())
	}
	n.Advance(90 * time.Second)
	if n.Now() != 90*time.Second {
		t.Errorf("Now = %v after Advance", n.Now())
	}
	// ConnectAsync leaves the connection pending until time passes.
	conn, err := n.ConnectAsync("acme", "DC-A", "DC-B", Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	if conn.State.String() != "pending" {
		t.Errorf("state right after async connect = %v", conn.State)
	}
	n.Advance(2 * time.Minute)
	if conn.State.String() != "active" {
		t.Errorf("state after 2 min = %v", conn.State)
	}
}

func TestParseRateFacade(t *testing.T) {
	r, err := ParseRate("2.5G")
	if err != nil || r != Rate2G5 {
		t.Errorf("ParseRate = %v, %v", r, err)
	}
	if _, err := ParseRate("bogus"); err == nil {
		t.Error("bogus rate accepted")
	}
}

func TestOnePlusOneViaFacade(t *testing.T) {
	n := newNet(t)
	conn, err := n.Connect("acme", "DC-A", "DC-C", Rate10G, OnePlusOne)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Protect != OnePlusOne {
		t.Errorf("protect = %v", conn.Protect)
	}
	n.CutFiber(string(conn.Route().Links[0]))
	n.Drain()
	if conn.TotalOutage > 200*time.Millisecond {
		t.Errorf("1+1 outage = %v", conn.TotalOutage)
	}
}

func TestAdjustRateViaFacade(t *testing.T) {
	n := newNet(t, WithSeed(12))
	conn, err := n.Connect("acme", "DC-A", "DC-B", Rate1G)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AdjustRate("acme", conn.ID, Rate2G5); err != nil {
		t.Fatal(err)
	}
	if conn.Rate != Rate2G5 {
		t.Errorf("rate = %v", conn.Rate)
	}
	if err := n.AdjustRate("evil", conn.ID, Rate1G); err == nil {
		t.Error("cross-customer adjust accepted")
	}
}

func TestScheduleConnectViaFacade(t *testing.T) {
	n := newNet(t, WithSeed(13))
	b, err := n.ScheduleConnect("acme", "DC-A", "DC-C", Rate10G, 2*time.Hour, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if b.Done.Err() != nil {
		t.Fatal(b.Done.Err())
	}
	if len(b.Conns) != 1 || b.Conns[0].State.String() != "released" {
		t.Errorf("booking = %+v", b.Conns)
	}
	if s := n.Stats(); s.ChannelsInUse != 0 {
		t.Errorf("leak: %+v", s)
	}
}

func TestReachForRateOptionViaFacade(t *testing.T) {
	n := newNet(t, WithSeed(14), WithReachForRate(Rate40G, 300), WithRegensPerNode(4))
	conn, err := n.Connect("acme", "DC-A", "DC-B", Rate40G)
	if err != nil {
		t.Fatal(err)
	}
	// DC-A (I) to DC-B (III): I-III is 310 km > 300 km 40G reach, so the
	// route must regenerate or detour.
	if conn.Route().KM(n.Controller().Graph()) <= 300 {
		return // a short path existed; nothing to check
	}
	if conn.SetupTime() == 0 {
		t.Error("no setup recorded")
	}
}
