package griphon_test

// Integration tests: long multi-customer scenarios across the whole stack —
// controller, photonic plant, ROADM layer, OTN overlay, EMSes, failures,
// maintenance — with resource-conservation invariants checked at every
// phase. These are the tests that catch cross-module accounting bugs no unit
// test sees.

import (
	"fmt"
	"testing"
	"time"

	"griphon"
	"griphon/internal/topo"
)

// checkConservation asserts the global accounting invariants: spectrum,
// transponders, regens, FXC ports and ROADM terminations all reconcile with
// the set of live connections.
func checkConservation(t *testing.T, net *griphon.Network, phase string) {
	t.Helper()
	ctrl := net.Controller()
	g := ctrl.Graph()

	type expect struct {
		channelLinks int
		ots          int
		regens       int
		terminations int
	}
	var want expect
	for _, conn := range ctrl.Connections() {
		switch conn.State.String() {
		case "released":
			continue
		case "pending", "active", "down", "restoring", "tearing-down":
		default:
			t.Fatalf("%s: unknown state %v", phase, conn.State)
		}
		if conn.Layer.String() != "dwdm" {
			continue
		}
		legs := 1
		if conn.Protect.String() == "1+1" {
			legs = 2
		}
		_ = legs
		// Working leg contributions (the protect leg is counted via
		// the snapshot instead; we just bound below).
		route := conn.Route()
		want.channelLinks += len(route.Links)
		want.ots += 2
		want.terminations += 2
	}

	s := net.Stats()
	// Exact equality only holds without 1+1/regens/mid-operation bridges,
	// so the scenarios below avoid asserting during transients and use
	// schemes where the bound is exact; otherwise we assert >=.
	if s.ChannelsInUse < want.channelLinks {
		t.Errorf("%s: channel-links %d < working demand %d", phase, s.ChannelsInUse, want.channelLinks)
	}
	if s.OTsInUse < want.ots {
		t.Errorf("%s: OTs %d < working demand %d", phase, s.OTsInUse, want.ots)
	}
	totalAD := 0
	for _, n := range g.Nodes() {
		totalAD += ctrl.ROADMs().Node(n.ID).AddDropUsed()
	}
	if totalAD < want.terminations {
		t.Errorf("%s: ROADM terminations %d < working demand %d", phase, totalAD, want.terminations)
	}
}

// checkEmpty asserts a fully drained network holds nothing at all.
func checkEmpty(t *testing.T, net *griphon.Network, phase string) {
	t.Helper()
	s := net.Stats()
	if s.Active != 0 || s.Pending != 0 || s.Down != 0 || s.Restoring != 0 {
		t.Errorf("%s: live connections remain: %+v", phase, s)
	}
	if s.ChannelsInUse != 0 || s.OTsInUse != 0 || s.RegensInUse != 0 || s.SlotsInUse != 0 {
		t.Errorf("%s: resources leaked: %+v", phase, s)
	}
	ctrl := net.Controller()
	for _, n := range ctrl.Graph().Nodes() {
		if used := ctrl.ROADMs().Node(n.ID).AddDropUsed(); used != 0 {
			t.Errorf("%s: ROADM %s still holds %d terminations", phase, n.ID, used)
		}
		if conns := ctrl.FXC(n.ID).Connections(); conns != 0 {
			t.Errorf("%s: FXC %s still holds %d cross-connects", phase, n.ID, conns)
		}
	}
	for _, site := range ctrl.Graph().Sites() {
		if used := ctrl.AccessUsed(site.ID); used != 0 {
			t.Errorf("%s: site %s access still used: %v", phase, site.ID, used)
		}
	}
}

func TestIntegrationMonthOfChurn(t *testing.T) {
	net, err := griphon.New(griphon.Backbone(), griphon.WithSeed(1001), griphon.WithAutoRepair())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := net.Controller()
	rng := ctrl.Kernel().Rand()
	sites := []string{"DC-SEA", "DC-PAO", "DC-HOU", "DC-CHI", "DC-NYC", "DC-ATL"}
	customers := []string{"acme", "initech", "globex"}
	rates := []griphon.Rate{griphon.Rate1G, griphon.Rate2G5, griphon.Rate10G}

	var live []*griphon.Connection
	connects, blocks := 0, 0

	for day := 0; day < 30; day++ {
		// A few connects per day.
		for i := 0; i < 3; i++ {
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			if a == b {
				continue
			}
			cust := customers[rng.Intn(len(customers))]
			rate := rates[rng.Intn(len(rates))]
			conn, err := net.Connect(cust, a, b, rate)
			if err != nil {
				blocks++
				continue
			}
			connects++
			live = append(live, conn)
		}
		// Some disconnects.
		for len(live) > 12 {
			conn := live[0]
			live = live[1:]
			if conn.State.String() != "active" && conn.State.String() != "down" {
				continue
			}
			if err := net.Disconnect(string(conn.Customer), conn.ID); err != nil {
				t.Fatalf("day %d disconnect %s: %v", day, conn.ID, err)
			}
		}
		// Occasional fiber cut (auto-repaired hours later).
		if day%7 == 3 {
			links := ctrl.Graph().Links()
			link := links[rng.Intn(len(links))]
			if ctrl.Plant().LinkUp(link.ID) {
				if err := net.CutFiber(string(link.ID)); err != nil {
					t.Fatal(err)
				}
			}
		}
		net.Advance(24 * time.Hour)
		checkConservation(t, net, fmt.Sprintf("day %d", day))
	}
	if connects < 30 {
		t.Errorf("only %d connects in a month (blocked %d)", connects, blocks)
	}

	// Drain: disconnect everything, reclaim pipes, expect a clean plant.
	net.Drain()
	for _, conn := range live {
		st := conn.State.String()
		if st == "active" || st == "down" {
			if err := net.Disconnect(string(conn.Customer), conn.ID); err != nil {
				t.Fatalf("final disconnect %s (%s): %v", conn.ID, st, err)
			}
		}
	}
	if _, err := net.ReclaimIdlePipes(); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	checkEmpty(t, net, "after drain")
}

func TestIntegrationFailureStorm(t *testing.T) {
	net, err := griphon.New(griphon.Backbone(), griphon.WithSeed(1002),
		griphon.WithRegensPerNode(6), griphon.WithOTsPerNode(12))
	if err != nil {
		t.Fatal(err)
	}
	// Six protected wavelengths across the backbone.
	var conns []*griphon.Connection
	pairs := [][2]string{
		{"DC-SEA", "DC-NYC"}, {"DC-SEA", "DC-ATL"}, {"DC-PAO", "DC-CHI"},
		{"DC-HOU", "DC-NYC"}, {"DC-CHI", "DC-ATL"}, {"DC-PAO", "DC-NYC"},
	}
	for _, p := range pairs {
		conn, err := net.Connect("acme", p[0], p[1], griphon.Rate10G)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		conns = append(conns, conn)
	}

	// Cut three distinct links in quick succession (a conduit cut).
	cut := []string{"SEA-CHI", "CHI-ANN", "NYC-DCX"}
	for _, l := range cut {
		if err := net.CutFiber(l); err != nil {
			t.Fatal(err)
		}
		net.Advance(10 * time.Second)
	}
	net.Drain()

	// Every connection must end up active (restored or untouched) since
	// the mesh remains connected.
	for _, conn := range conns {
		if conn.State.String() != "active" {
			t.Errorf("conn %s %s->%s is %v after storm", conn.ID, conn.From, conn.To, conn.State)
		}
		for _, l := range cut {
			if conn.Route().HasLink(topo.LinkID(l)) {
				t.Errorf("conn %s still routed over cut link %s", conn.ID, l)
			}
		}
	}
	// Repair everything; network stays consistent.
	for _, l := range cut {
		if err := net.RepairFiber(l); err != nil {
			t.Fatal(err)
		}
	}
	net.Drain()
	checkConservation(t, net, "after repairs")
}

func TestIntegrationMixedLayersUnderMaintenance(t *testing.T) {
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(1003))
	if err != nil {
		t.Fatal(err)
	}
	// A composite 12G plus an extra OTN circuit from another customer.
	if _, err := net.Connect("acme", "DC-A", "DC-B", 12*griphon.Gbps); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Connect("initech", "DC-A", "DC-B", griphon.Rate2G5); err != nil {
		t.Fatal(err)
	}

	// Maintenance on the link carrying most of it.
	acme := net.Connections("acme")
	var wavelength *griphon.Connection
	for _, c := range acme {
		if c.Layer.String() == "dwdm" {
			wavelength = c
		}
	}
	if wavelength == nil {
		t.Fatal("no wavelength component")
	}
	link := string(wavelength.Route().Links[0])
	m, err := net.ScheduleMaintenance(link, 30*time.Minute, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	net.Drain()
	if !m.Finished {
		t.Fatal("maintenance unfinished")
	}
	// The wavelength must have been rolled; OTN circuits ride pipes that
	// may or may not touch the link — either way everything is active.
	for _, cust := range []string{"acme", "initech"} {
		for _, c := range net.Connections(cust) {
			if c.State.String() != "active" {
				t.Errorf("%s conn %s is %v after maintenance", cust, c.ID, c.State)
			}
		}
	}
	checkConservation(t, net, "after maintenance")

	// Full teardown leaves a clean network.
	for _, cust := range []string{"acme", "initech"} {
		for _, c := range net.Connections(cust) {
			if err := net.Disconnect(cust, c.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := net.ReclaimIdlePipes(); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	checkEmpty(t, net, "after teardown")
}

func TestIntegrationDeterministicReplay(t *testing.T) {
	run := func() string {
		net, err := griphon.New(griphon.Backbone(), griphon.WithSeed(777), griphon.WithAutoRepair())
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range [][2]string{{"DC-SEA", "DC-NYC"}, {"DC-HOU", "DC-CHI"}} {
			if _, err := net.Connect("acme", p[0], p[1], griphon.Rate10G); err != nil {
				t.Fatalf("connect %d: %v", i, err)
			}
		}
		net.CutFiber("SEA-CHI") //lint:allow errcheck exists
		net.Drain()
		var sig string
		for _, e := range net.Events() {
			sig += e.String() + "\n"
		}
		return sig
	}
	if a, b := run(), run(); a != b {
		t.Error("identical seeds produced different event logs")
	}
}
