// Package alarms implements GRIPhoN's fault pipeline: alarm events raised by
// network elements, a correlation window that batches the alarm storm a fiber
// cut produces, and localization that maps alarmed connections back to the
// failed link (paper §2.2: the controller handles "failure detection,
// localization and automated restorations").
package alarms

import (
	"fmt"
	"sort"

	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Type classifies an alarm.
type Type int

const (
	// LOS is loss of signal at a terminating or intermediate port.
	LOS Type = iota
	// LOF is loss of frame (digital layers).
	LOF
	// EquipmentFail is a transponder/regenerator hardware failure.
	EquipmentFail
)

func (t Type) String() string {
	switch t {
	case LOS:
		return "LOS"
	case LOF:
		return "LOF"
	case EquipmentFail:
		return "EQPT"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Alarm is one event raised by a network element.
type Alarm struct {
	// At is when the element raised it.
	At sim.Time
	// Node is the reporting element's location.
	Node topo.NodeID
	// Conn is the affected connection's ID ("" for connection-less
	// equipment alarms).
	Conn string
	// Customer owns the affected connection ("" for connection-less or
	// carrier-internal alarms). Customer-facing streams filter on it.
	Customer string
	// Type classifies the alarm.
	Type Type
	// Detail is free-form context for operators.
	Detail string
}

func (a Alarm) String() string {
	return fmt.Sprintf("[%v] %s at %s conn=%s %s", a.At, a.Type, a.Node, a.Conn, a.Detail)
}

// Correlator batches the alarms of one failure event. A fiber cut makes every
// connection on the fiber alarm within milliseconds of each other; operating
// on them one-by-one would trigger one localization per alarm. The correlator
// opens a window at the first alarm and hands the whole batch to the sink
// when it closes.
type Correlator struct {
	k      *sim.Kernel
	window sim.Duration
	sink   func([]Alarm)

	pending []Alarm
	timer   *sim.Timer
	batches int
}

// NewCorrelator returns a correlator feeding batches to sink after window.
func NewCorrelator(k *sim.Kernel, window sim.Duration, sink func([]Alarm)) *Correlator {
	if sink == nil {
		panic("alarms: nil sink")
	}
	return &Correlator{k: k, window: window, sink: sink}
}

// Observe feeds one alarm in. The first alarm of a batch opens the window.
func (c *Correlator) Observe(a Alarm) {
	c.pending = append(c.pending, a)
	if c.timer == nil {
		c.timer = c.k.After(c.window, c.flush)
	}
}

// Pending returns the number of alarms waiting in the open window.
func (c *Correlator) Pending() int { return len(c.pending) }

// Batches returns the number of batches emitted so far.
func (c *Correlator) Batches() int { return c.batches }

func (c *Correlator) flush() {
	batch := c.pending
	c.pending = nil
	c.timer = nil
	c.batches++
	c.sink(batch)
}

// Candidate is a suspect link produced by localization.
type Candidate struct {
	Link topo.LinkID
	// Score is the number of alarmed connections whose path crosses the
	// link; the true failed link scores highest.
	Score int
}

// Localize identifies suspect links from the paths of alarmed connections,
// exonerating links still carrying healthy connections. It returns candidates
// ranked by score (descending), ties broken by link ID. With a single fiber
// cut and at least one alarmed connection, the failed link always ranks
// first among non-exonerated links.
func Localize(alarmed, healthy []topo.Path) []Candidate {
	score := map[topo.LinkID]int{}
	for _, p := range alarmed {
		for _, l := range p.Links {
			score[l]++
		}
	}
	// A link carrying a healthy connection cannot be the failure.
	for _, p := range healthy {
		for _, l := range p.Links {
			delete(score, l)
		}
	}
	out := make([]Candidate, 0, len(score))
	for l, s := range score {
		out = append(out, Candidate{Link: l, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// PrimarySuspects returns the top-scoring candidates (all ties included) —
// the minimal set restoration must route around when the exact cut cannot be
// narrowed to one link.
func PrimarySuspects(cands []Candidate) []topo.LinkID {
	if len(cands) == 0 {
		return nil
	}
	best := cands[0].Score
	var out []topo.LinkID
	for _, c := range cands {
		if c.Score == best {
			out = append(out, c.Link)
		}
	}
	return out
}
