package alarms

import (
	"testing"
	"time"

	"griphon/internal/sim"
	"griphon/internal/topo"
)

func TestCorrelatorBatchesWindow(t *testing.T) {
	k := sim.NewKernel(1)
	var batches [][]Alarm
	c := NewCorrelator(k, 2*time.Second, func(b []Alarm) { batches = append(batches, b) })

	// Three alarms inside one window.
	k.After(0, func() { c.Observe(Alarm{Node: "I", Conn: "c1", Type: LOS}) })
	k.After(100*time.Millisecond, func() { c.Observe(Alarm{Node: "III", Conn: "c2", Type: LOS}) })
	k.After(900*time.Millisecond, func() { c.Observe(Alarm{Node: "IV", Conn: "c3", Type: LOS}) })
	// A fourth alarm after the window closes opens a second batch.
	k.After(10*time.Second, func() { c.Observe(Alarm{Node: "II", Conn: "c4", Type: EquipmentFail}) })
	k.Run()

	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	if len(batches[0]) != 3 {
		t.Errorf("first batch = %d alarms, want 3", len(batches[0]))
	}
	if len(batches[1]) != 1 {
		t.Errorf("second batch = %d alarms, want 1", len(batches[1]))
	}
	if c.Batches() != 2 || c.Pending() != 0 {
		t.Errorf("Batches=%d Pending=%d", c.Batches(), c.Pending())
	}
}

func TestCorrelatorNilSinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil sink did not panic")
		}
	}()
	NewCorrelator(sim.NewKernel(1), time.Second, nil)
}

func TestLocalizeSingleCut(t *testing.T) {
	g := topo.Testbed()
	// Cut I-III: connections I-III-IV and I-III alarm; I-IV stays healthy.
	a1, _ := topo.PathVia(g, "I", "III", "IV")
	a2, _ := topo.PathVia(g, "I", "III")
	h1, _ := topo.PathVia(g, "I", "IV")

	cands := Localize([]topo.Path{a1, a2}, []topo.Path{h1})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].Link != "I-III" || cands[0].Score != 2 {
		t.Errorf("top candidate = %+v, want I-III score 2", cands[0])
	}
	suspects := PrimarySuspects(cands)
	if len(suspects) != 1 || suspects[0] != "I-III" {
		t.Errorf("suspects = %v", suspects)
	}
}

func TestLocalizeExoneratesHealthyLinks(t *testing.T) {
	g := topo.Testbed()
	// Alarmed path I-II-III-IV; II-III and III-IV carry healthy traffic,
	// so only I-II remains suspect.
	a, _ := topo.PathVia(g, "I", "II", "III", "IV")
	h1, _ := topo.PathVia(g, "II", "III", "IV")

	cands := Localize([]topo.Path{a}, []topo.Path{h1})
	if len(cands) != 1 || cands[0].Link != "I-II" {
		t.Errorf("candidates = %v, want only I-II", cands)
	}
}

func TestLocalizeNoAlarms(t *testing.T) {
	if got := Localize(nil, nil); len(got) != 0 {
		t.Errorf("candidates without alarms = %v", got)
	}
	if PrimarySuspects(nil) != nil {
		t.Error("suspects without candidates")
	}
}

func TestLocalizeAmbiguousTie(t *testing.T) {
	g := topo.Testbed()
	// One alarmed connection, no healthy ones: every link on its path ties.
	a, _ := topo.PathVia(g, "I", "III", "IV")
	cands := Localize([]topo.Path{a}, nil)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	suspects := PrimarySuspects(cands)
	if len(suspects) != 2 {
		t.Errorf("ambiguous suspects = %v, want both links", suspects)
	}
	// Deterministic tie order by link ID.
	if suspects[0] != "I-III" || suspects[1] != "III-IV" {
		t.Errorf("tie order = %v", suspects)
	}
}

func TestAlarmStrings(t *testing.T) {
	a := Alarm{At: sim.Time(time.Second), Node: "I", Conn: "c1", Type: LOS, Detail: "loss of light"}
	s := a.String()
	for _, want := range []string{"LOS", "I", "c1", "loss of light"} {
		if !contains(s, want) {
			t.Errorf("alarm string %q missing %q", s, want)
		}
	}
	if LOF.String() != "LOF" || EquipmentFail.String() != "EQPT" {
		t.Error("type strings")
	}
	if Type(9).String() == "" {
		t.Error("unknown type string empty")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
