package alarms

import (
	"fmt"
	"sort"

	"griphon/internal/sim"
	"griphon/internal/topo"
)

// GroupKind classifies a correlation group's root event.
type GroupKind int

const (
	// GroupFiberCut is a localized fiber failure: one root event owning the
	// per-circuit children the cut produced.
	GroupFiberCut GroupKind = iota
	// GroupEquipment is a node-local equipment problem reported without an
	// affected connection. Equipment alarms never join a fiber-cut root: a
	// transponder failing at node X during an unrelated cut is its own event.
	GroupEquipment
	// GroupService covers connection alarms that localization could not pin
	// to a link (ambiguous or no suspects).
	GroupService
)

func (k GroupKind) String() string {
	switch k {
	case GroupFiberCut:
		return "fiber-cut"
	case GroupEquipment:
		return "equipment"
	case GroupService:
		return "service"
	}
	return fmt.Sprintf("GroupKind(%d)", int(k))
}

// Group is one correlated alarm group: a synthesized root event plus the raw
// per-element children it explains. One fiber cut produces exactly one
// fiber-cut group regardless of how many circuits alarmed.
type Group struct {
	// Seq is the group's position in the alarm log, assigned by Log.Append
	// (0 until appended). Seqs increase monotonically and survive ring
	// eviction, so they work as resume cursors.
	Seq  uint64
	At   sim.Time
	Kind GroupKind
	// Link names the suspected fiber for fiber-cut groups.
	Link topo.LinkID
	// Root is the synthesized root-cause event.
	Root Alarm
	// Children are the raw element alarms the root explains.
	Children []Alarm
}

// Customers returns the distinct customers affected by the group, sorted.
func (g Group) Customers() []string {
	set := map[string]bool{}
	for _, a := range g.Children {
		if a.Customer != "" {
			set[a.Customer] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ForCustomer projects the group onto one customer's view: children owned by
// other tenants are hidden, and ok reports whether anything remains. An empty
// customer is the operator view and sees everything. Equipment groups carry no
// customer children and are operator-only.
func (g Group) ForCustomer(customer string) (Group, bool) {
	if customer == "" {
		return g, true
	}
	var kept []Alarm
	for _, a := range g.Children {
		if a.Customer == customer {
			kept = append(kept, a)
		}
	}
	if len(kept) == 0 {
		return Group{}, false
	}
	out := g
	out.Children = kept
	return out, true
}

// GroupBatch correlates one flushed correlator batch into groups. Connection
// alarms form a single group: a fiber-cut group rooted on the top localization
// suspect when one exists, a service group otherwise. Connection-less
// equipment alarms are grouped per reporting node and are never parented
// under the fiber-cut root, even when both land in the same window.
func GroupBatch(at sim.Time, batch []Alarm, suspects []topo.LinkID) []Group {
	var connAlarms []Alarm
	equipByNode := map[topo.NodeID][]Alarm{}
	var nodeOrder []topo.NodeID
	for _, a := range batch {
		if a.Conn != "" {
			connAlarms = append(connAlarms, a)
			continue
		}
		if _, seen := equipByNode[a.Node]; !seen {
			nodeOrder = append(nodeOrder, a.Node)
		}
		equipByNode[a.Node] = append(equipByNode[a.Node], a)
	}

	var out []Group
	if len(connAlarms) > 0 {
		g := Group{At: at, Children: connAlarms}
		conns := map[string]bool{}
		for _, a := range connAlarms {
			conns[a.Conn] = true
		}
		if len(suspects) > 0 {
			g.Kind = GroupFiberCut
			g.Link = suspects[0]
			g.Root = Alarm{
				At:     at,
				Node:   connAlarms[0].Node,
				Type:   LOS,
				Detail: fmt.Sprintf("fiber cut suspected on %s (%d circuits affected)", g.Link, len(conns)),
			}
		} else {
			g.Kind = GroupService
			g.Root = Alarm{
				At:     at,
				Node:   connAlarms[0].Node,
				Type:   connAlarms[0].Type,
				Detail: fmt.Sprintf("service-affecting event, no link localized (%d circuits)", len(conns)),
			}
		}
		out = append(out, g)
	}
	for _, node := range nodeOrder {
		children := equipByNode[node]
		out = append(out, Group{
			At:   at,
			Kind: GroupEquipment,
			Root: Alarm{
				At:     at,
				Node:   node,
				Type:   EquipmentFail,
				Detail: fmt.Sprintf("equipment trouble at %s (%d alarms)", node, len(children)),
			},
			Children: children,
		})
	}
	return out
}

// Log is a bounded in-memory ring of correlation groups with monotonically
// increasing sequence numbers — the backing store for the customer alarm
// stream and its `since` cursor. Old groups are evicted once capacity is
// exceeded, but seqs keep counting, so a stale cursor simply skips the
// evicted span.
type Log struct {
	capacity int
	groups   []Group
	next     uint64
	dropped  uint64
}

// NewLog returns a log retaining at most capacity groups (minimum 1).
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{capacity: capacity, next: 1}
}

// Append stores the group, assigns its seq, and returns the stored value.
func (l *Log) Append(g Group) Group {
	g.Seq = l.next
	l.next++
	l.groups = append(l.groups, g)
	if len(l.groups) > l.capacity {
		evict := len(l.groups) - l.capacity
		l.dropped += uint64(evict)
		l.groups = append(l.groups[:0:0], l.groups[evict:]...)
	}
	return g
}

// GroupAndAppend correlates one batch and appends every resulting group,
// returning them with their assigned seqs.
func (l *Log) GroupAndAppend(at sim.Time, batch []Alarm, suspects []topo.LinkID) []Group {
	groups := GroupBatch(at, batch, suspects)
	for i, g := range groups {
		groups[i] = l.Append(g)
	}
	return groups
}

// Since returns retained groups with Seq > seq, oldest first. Since(0) returns
// everything retained.
func (l *Log) Since(seq uint64) []Group {
	i := sort.Search(len(l.groups), func(i int) bool { return l.groups[i].Seq > seq })
	return append([]Group(nil), l.groups[i:]...)
}

// NextSeq returns the seq the next appended group will get; callers can use
// NextSeq()-1 as a "caught up" cursor.
func (l *Log) NextSeq() uint64 { return l.next }

// Len returns the number of retained groups.
func (l *Log) Len() int { return len(l.groups) }

// Dropped returns how many groups have been evicted by the ring bound.
func (l *Log) Dropped() uint64 { return l.dropped }
