package alarms

import (
	"testing"
	"time"

	"griphon/internal/sim"
	"griphon/internal/topo"
)

func at(d sim.Duration) sim.Time { return sim.Time(0).Add(d) }

func TestGroupBatchFiberCut(t *testing.T) {
	batch := []Alarm{
		{At: at(time.Second), Node: "I", Conn: "c1", Customer: "acme", Type: LOS},
		{At: at(time.Second), Node: "III", Conn: "c1", Customer: "acme", Type: LOS},
		{At: at(time.Second), Node: "I", Conn: "c2", Customer: "bob", Type: LOS},
	}
	groups := GroupBatch(at(2*time.Second), batch, []topo.LinkID{"I-III"})
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	g := groups[0]
	if g.Kind != GroupFiberCut || g.Link != "I-III" {
		t.Errorf("kind=%v link=%s", g.Kind, g.Link)
	}
	if len(g.Children) != 3 {
		t.Errorf("children = %d", len(g.Children))
	}
	custs := g.Customers()
	if len(custs) != 2 || custs[0] != "acme" || custs[1] != "bob" {
		t.Errorf("customers = %v", custs)
	}
}

// Connection-less equipment alarms landing in the same correlation window as
// a fiber cut must NOT be parented under the fiber-cut root: a transponder
// failing at an unrelated node is its own event.
func TestGroupBatchEquipmentNotUnderFiberCutRoot(t *testing.T) {
	batch := []Alarm{
		{At: at(time.Second), Node: "I", Conn: "c1", Customer: "acme", Type: LOS},
		{At: at(time.Second), Node: "IV", Conn: "", Type: EquipmentFail, Detail: "transponder fail"},
		{At: at(time.Second), Node: "IV", Conn: "", Type: EquipmentFail, Detail: "regen fail"},
		{At: at(time.Second), Node: "II", Conn: "", Type: EquipmentFail, Detail: "fan tray"},
	}
	groups := GroupBatch(at(2*time.Second), batch, []topo.LinkID{"I-III"})
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (one cut + two equipment nodes)", len(groups))
	}
	cut := groups[0]
	if cut.Kind != GroupFiberCut || len(cut.Children) != 1 {
		t.Fatalf("cut group = kind %v with %d children, want fiber-cut with only the conn alarm", cut.Kind, len(cut.Children))
	}
	for _, c := range cut.Children {
		if c.Conn == "" {
			t.Error("equipment alarm grouped under fiber-cut root")
		}
	}
	seen := map[topo.NodeID]int{}
	for _, g := range groups[1:] {
		if g.Kind != GroupEquipment {
			t.Errorf("kind = %v, want equipment", g.Kind)
		}
		if g.Link != "" {
			t.Errorf("equipment group inherited link %s", g.Link)
		}
		seen[g.Root.Node] = len(g.Children)
	}
	if seen["IV"] != 2 || seen["II"] != 1 {
		t.Errorf("equipment grouping by node = %v", seen)
	}
}

func TestGroupBatchServiceWhenNoSuspects(t *testing.T) {
	batch := []Alarm{
		{At: at(time.Second), Node: "I", Conn: "c1", Customer: "acme", Type: LOF},
	}
	groups := GroupBatch(at(2*time.Second), batch, nil)
	if len(groups) != 1 || groups[0].Kind != GroupService {
		t.Fatalf("groups = %+v, want one service group", groups)
	}
	if groups[0].Link != "" {
		t.Error("service group has a link")
	}
}

func TestGroupForCustomer(t *testing.T) {
	g := Group{
		Kind: GroupFiberCut,
		Children: []Alarm{
			{Conn: "c1", Customer: "acme"},
			{Conn: "c2", Customer: "bob"},
		},
	}
	acme, ok := g.ForCustomer("acme")
	if !ok || len(acme.Children) != 1 || acme.Children[0].Customer != "acme" {
		t.Errorf("acme view = %+v ok=%v", acme, ok)
	}
	if _, ok := g.ForCustomer("carol"); ok {
		t.Error("unaffected customer sees the group")
	}
	op, ok := g.ForCustomer("")
	if !ok || len(op.Children) != 2 {
		t.Error("operator view filtered")
	}
	// Equipment groups have no customer children: operator-only.
	eq := Group{Kind: GroupEquipment, Children: []Alarm{{Node: "I", Type: EquipmentFail}}}
	if _, ok := eq.ForCustomer("acme"); ok {
		t.Error("equipment group visible to a customer")
	}
}

func TestLogSeqAndEviction(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 4; i++ {
		g := l.Append(Group{Kind: GroupService})
		if g.Seq != uint64(i+1) {
			t.Errorf("seq = %d, want %d", g.Seq, i+1)
		}
	}
	if l.Len() != 2 || l.Dropped() != 2 {
		t.Errorf("len=%d dropped=%d", l.Len(), l.Dropped())
	}
	all := l.Since(0)
	if len(all) != 2 || all[0].Seq != 3 || all[1].Seq != 4 {
		t.Errorf("Since(0) = %+v", all)
	}
	if got := l.Since(3); len(got) != 1 || got[0].Seq != 4 {
		t.Errorf("Since(3) = %+v", got)
	}
	if got := l.Since(4); len(got) != 0 {
		t.Errorf("Since(4) = %+v", got)
	}
	if l.NextSeq() != 5 {
		t.Errorf("NextSeq = %d", l.NextSeq())
	}
	if NewLog(0).capacity != 1 {
		t.Error("capacity floor")
	}
}

func TestGroupKindStrings(t *testing.T) {
	if GroupFiberCut.String() != "fiber-cut" || GroupEquipment.String() != "equipment" || GroupService.String() != "service" {
		t.Error("kind strings")
	}
	if GroupKind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}
