// Package analysis is GRIPhoN's domain-invariant static analysis suite: a
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus the analyzers that
// machine-check the conventions the compiler cannot see.
//
// The controller's correctness rests on invariants that are purely
// conventional: all time flows through the internal/sim virtual clock, every
// reservation carries a rollback closure inside an inventory.Txn, every
// tracer span is ended on every path, hardware is only touched through the
// EMS layer, and instrument names follow one naming scheme. The paper's
// architecture (§2.2) is explicit that the controller "never talks to
// hardware directly" and that the resource database is the single source of
// truth — the analyzers in this package are those sentences as code.
//
// The x/tools module is deliberately not imported: the suite runs on the
// standard library alone (go/ast, go/types, go/parser) so `make lint` works
// in hermetic build environments. The driver subpackage loads and
// type-checks packages via `go list -export`; the analysistest subpackage
// runs fixture packages with `// want` expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker. It mirrors the x/tools
// go/analysis Analyzer surface that the suite needs: a name (used in
// diagnostics and //lint:allow suppressions), one paragraph of doc, and a Run
// function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags and suppressions.
	// It must be a valid identifier.
	Name string
	// Doc states the invariant, first line summary style.
	Doc string
	// Run performs the check and reports findings via pass.Report.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package. Its Path() is the normalized import
	// path (test variants report the path of the package under test).
	Pkg *types.Package
	// TypesInfo holds the type-checker's findings for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver fills it in; analyzers
	// should prefer Reportf.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver attaches
// the analyzer name when rendering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// NormalizePkgPath maps the package paths go list reports for test variants
// onto the path of the package under test, so allow/deny lists written
// against "griphon/internal/sim" also cover "griphon/internal/sim
// [griphon/internal/sim.test]" and "griphon/internal/sim_test".
func NormalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, "_test")
	return path
}

// PathIsOrUnder reports whether the (normalized) package path is the given
// package or nested below it.
func PathIsOrUnder(path, root string) bool {
	path = NormalizePkgPath(path)
	return path == root || strings.HasPrefix(path, root+"/")
}

// funcFromUse resolves an identifier use to a *types.Func declared in the
// package with the given import path, or nil.
func funcFromUse(info *types.Info, id *ast.Ident, pkgPath string) *types.Func {
	obj := info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	return fn
}

// calleeFunc resolves the called function of a call expression, seeing
// through parentheses and generic instantiation (F[T](...)).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// methodOn reports whether fn is a method named name whose receiver's named
// type is typeName declared in package pkgPath (pointer or value receiver).
func methodOn(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// namedType unwraps pointers and aliases to the named type underneath.
func namedType(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// isNil reports whether the expression is the predeclared nil.
func isNil(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj || (id.Name == "nil" && info.Uses[id] == nil)
}

// inTestFile reports whether pos lies in a _test.go file.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
