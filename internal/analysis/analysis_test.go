package analysis

import "testing"

func TestNormalizePkgPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"griphon/internal/sim", "griphon/internal/sim"},
		{"griphon/internal/sim [griphon/internal/sim.test]", "griphon/internal/sim"},
		{"griphon/internal/sim_test", "griphon/internal/sim"},
		{"griphon/internal/api_test [griphon/internal/api.test]", "griphon/internal/api"},
	}
	for _, c := range cases {
		if got := NormalizePkgPath(c.in); got != c.want {
			t.Errorf("NormalizePkgPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPathIsOrUnder(t *testing.T) {
	cases := []struct {
		path, root string
		want       bool
	}{
		{"griphon/internal/sim", "griphon/internal/sim", true},
		{"griphon/internal/sim/fixture", "griphon/internal/sim", true},
		{"griphon/internal/sim [griphon/internal/sim.test]", "griphon/internal/sim", true},
		{"griphon/internal/simulator", "griphon/internal/sim", false},
		{"griphon/internal/core", "griphon/internal/sim", false},
	}
	for _, c := range cases {
		if got := PathIsOrUnder(c.path, c.root); got != c.want {
			t.Errorf("PathIsOrUnder(%q, %q) = %v, want %v", c.path, c.root, got, c.want)
		}
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text             string
		analyzer, reason string
		ok               bool
	}{
		{"//lint:allow errcheck best effort", "errcheck", "best effort", true},
		{"//lint:allow errcheck", "errcheck", "", true},
		{"//lint:allow", "", "", true},
		{"//nolint:errcheck", "", "", false},
		{"// ordinary comment", "", "", false},
	}
	for _, c := range cases {
		an, reason, ok := parseAllow(c.text)
		if an != c.analyzer || reason != c.reason || ok != c.ok {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, an, reason, ok, c.analyzer, c.reason, c.ok)
		}
	}
}

func TestKnownSuppressTargetsCoversAllAnalyzers(t *testing.T) {
	known := KnownSuppressTargets()
	for _, a := range All() {
		if !known[a.Name] {
			t.Errorf("KnownSuppressTargets is missing analyzer %q", a.Name)
		}
	}
}
