// Package analysistest runs one analyzer over a fixture package and checks
// its diagnostics against `want` expectations embedded in the fixture source,
// in the style of golang.org/x/tools/go/analysis/analysistest (which is
// deliberately not imported — see the analysis package doc).
//
// A fixture is a directory of .go files under testdata. An expectation is a
// comment on the line the diagnostic is reported at:
//
//	time.Sleep(d) // want `time\.Sleep reads the wall clock`
//
// The payload is one or more regular expressions, each backquoted or
// double-quoted, matched against the diagnostic message. When the flagged
// construct is itself a line comment (the suppress analyzer's fixtures), a
// block comment on the same line carries the expectation instead:
//
//	/* want `bare nolint suppression` */ //nolint:errcheck
//
// Every diagnostic must match an expectation on its exact line, and every
// expectation must be matched by a diagnostic; //lint:allow suppressions are
// honored exactly as in the real driver, so negative fixtures can exercise
// them.
//
// Fixtures are type-checked for real — against the repository's own packages
// (griphon/internal/obs, .../inventory, .../ems) and the standard library —
// so analyzers see the same go/types world they see in production. The
// package path the fixture is checked under is the caller's choice, which is
// how path-scoped exemptions (internal/sim for wallclock, internal/core for
// emslayer) get both sides tested from the same analyzer code.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"griphon/internal/analysis"
	"griphon/internal/analysis/driver"
)

// sharedLoader indexes export data once per test binary: the go list walk
// covers every repository package plus the std packages fixtures import.
var (
	loaderOnce sync.Once
	loader     *driver.Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *driver.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = driver.LoadIndex(".", []string{
			"griphon/...", "time", "math/rand", "math/rand/v2", "errors",
			"sort", "slices", "sync", "encoding/json",
		})
	})
	if loaderErr != nil {
		t.Fatalf("analysistest: indexing packages: %v", loaderErr)
	}
	return loader
}

// Run type-checks the fixture directory as a package imported as pkgPath,
// runs the analyzer (with //lint:allow suppression applied), and compares
// diagnostics against the fixture's want expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	l := sharedLoader(t)

	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}
	sort.Strings(files)
	pkg, err := l.CheckFiles(pkgPath, files, nil)
	if err != nil {
		t.Fatalf("analysistest: %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("analysistest: fixture does not type-check: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	diags, err := driver.Analyze(l.Fset, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	wants := expectations(t, l, pkg.Files)
	for _, d := range diags {
		if !claim(wants, d.Position.Filename, d.Position.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Position, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.re)
		}
	}
}

// expectation is one parsed want pattern, anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched expectation covering (file, line, msg).
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantArgRE matches one backquoted or double-quoted pattern argument.
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectations collects every want comment in the fixture files.
func expectations(t *testing.T, l *driver.Loader, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := commentBody(c.Text)
				if !ok {
					continue
				}
				payload, ok := strings.CutPrefix(strings.TrimSpace(body), "want ")
				if !ok {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				args := wantArgRE.FindAllString(payload, -1)
				if len(args) == 0 {
					t.Fatalf("%s: want comment with no pattern: %s", pos, c.Text)
				}
				for _, arg := range args {
					pat, err := unquoteArg(arg)
					if err == nil {
						var re *regexp.Regexp
						re, err = regexp.Compile(pat)
						if err == nil {
							out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
							continue
						}
					}
					t.Fatalf("%s: bad want pattern %s: %v", pos, arg, err)
				}
			}
		}
	}
	return out
}

// commentBody strips the comment markers, reporting ok=false for comments
// that cannot carry an expectation.
func commentBody(text string) (string, bool) {
	if body, ok := strings.CutPrefix(text, "//"); ok {
		return body, true
	}
	if body, ok := strings.CutPrefix(text, "/*"); ok {
		return strings.TrimSuffix(body, "*/"), true
	}
	return "", false
}

func unquoteArg(arg string) (string, error) {
	if strings.HasPrefix(arg, "`") {
		return strings.Trim(arg, "`"), nil
	}
	s, err := strconv.Unquote(arg)
	if err != nil {
		return "", fmt.Errorf("unquoting %s: %w", arg, err)
	}
	return s, nil
}
