package analysis

// All returns the full griphon-lint suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Emslayer,
		Journaled,
		Leakpath,
		Loopblock,
		Metricname,
		Spanpair,
		Suppress,
		Txnrollback,
		Wallclock,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
