package analysis

// Function-level control-flow graphs for the flow-sensitive analyzers
// (determinism, journaled, leakpath, loopblock). The builder covers the
// statement forms the repo actually uses — if/else chains, for and range
// loops, switch/type-switch/select, labeled break/continue, goto, defer,
// return, panic — and deliberately nothing exotic beyond that. Like the rest
// of the package it depends only on the standard library.
//
// Conventions:
//
//   - Block.Nodes holds, in execution order, the simple statements plus the
//     condition/tag expressions evaluated in that block. Control statements
//     themselves (if/for/switch/...) are decomposed into blocks and edges and
//     never appear whole, so walking a block's nodes with nodeScan visits
//     each executable node exactly once.
//   - A block ending in `return` records the statement in Block.Return and
//     has the synthetic Exit block as its only successor. A block ending in
//     panic (or os.Exit) has no successors at all: paths through it never
//     reach Exit, so "on all paths to exit" obligations hold vacuously.
//   - Deferred statements are collected in CFG.Defers rather than threaded
//     through the graph; analyzers that care about at-exit effects (leakpath's
//     `defer txn.Rollback()`) consult that list explicitly.

import (
	"go/ast"
)

// Block is one straight-line run of nodes with explicit control edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Return is the statement that terminates this block, when it is an
	// explicit return; nil for fallthrough-to-Exit and all interior blocks.
	Return *ast.ReturnStmt
	// Cond and Then are set on blocks that end by branching on an if
	// condition: Cond is the condition expression and Then the successor
	// taken when it is true. Path queries use this to treat `if err != nil`
	// then-branches as error paths.
	Cond ast.Expr
	Then *Block
}

// CFG is the control-flow graph of one function body (FuncDecl or FuncLit).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in the body, in source order. Their
	// payloads run at function exit, not at the registration point.
	Defers []*ast.DeferStmt

	follow map[ast.Stmt]*Block
}

// Follow returns the join/exit block of a control statement (the block
// execution continues in after an if, for, range, switch or select), or nil
// if the statement is not part of this graph.
func (g *CFG) Follow(s ast.Stmt) *Block { return g.follow[s] }

// Locate finds the block and node index holding n (or the smallest block
// node positionally containing n, for sub-expressions). Returns (nil, -1)
// when n is not in the graph — e.g. it lives in a nested function literal,
// which gets its own CFG.
func (g *CFG) Locate(n ast.Node) (*Block, int) {
	for _, b := range g.Blocks {
		for i, bn := range b.Nodes {
			if bn == n || (bn.Pos() <= n.Pos() && n.End() <= bn.End()) {
				return b, i
			}
		}
	}
	return nil, -1
}

// Reachable reports whether b can be reached from Entry.
func (g *CFG) Reachable(b *Block) bool {
	seen := make(map[*Block]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if cur == b {
			return true
		}
		stack = append(stack, cur.Succs...)
	}
	return false
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{follow: make(map[ast.Stmt]*Block)}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	// Implicit fallthrough off the end of the body.
	b.edge(b.cur, g.Exit)
	b.resolveGotos()
	return g
}

// loopFrame tracks the break/continue targets of one enclosing loop, switch
// or select, together with its label (empty for unlabeled statements).
type loopFrame struct {
	label          string
	breakTarget    *Block
	continueTarget *Block // nil for switch/select frames
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*Block
	gotos  []pendingGoto

	// pendingLabel carries a label down to the loop/switch statement it
	// annotates, so `break L` and `continue L` resolve.
	pendingLabel string
	// ftTargets is a stack of fallthrough targets: while clause i of a
	// switch is being built, the top is clause i+1's entry block (nil for
	// the final clause).
	ftTargets []*Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes to the current block, linking from the present one when
// it is still live. A nil cur means the previous statement terminated flow
// (return/branch/panic); the new block starts unreachable but is still built
// so Locate works on dead code.
func (b *cfgBuilder) startBlock(to *Block) {
	if b.cur != nil {
		b.edge(b.cur, to)
	}
	b.cur = to
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock() // dead code after return/branch
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(f loopFrame) { b.frames = append(b.frames, f) }
func (b *cfgBuilder) popFrame()             { b.frames = b.frames[:len(b.frames)-1] }

func (b *cfgBuilder) findFrame(label string, needContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needContinue && f.continueTarget == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		follow := b.newBlock()
		b.g.follow[s] = follow

		then := b.newBlock()
		condBlk.Cond = s.Cond
		condBlk.Then = then
		b.cur = then
		b.edge(condBlk, then)
		b.stmtList(s.Body.List)
		b.edge(b.cur, follow)

		if s.Else != nil {
			els := b.newBlock()
			b.cur = els
			b.edge(condBlk, els)
			b.stmt(s.Else)
			b.edge(b.cur, follow)
		} else {
			b.edge(condBlk, follow)
		}
		b.cur = follow

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		follow := b.newBlock()
		b.g.follow[s] = follow
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, follow) // cond false
		}
		b.pushFrame(loopFrame{label: label, breakTarget: follow, continueTarget: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.popFrame()
		b.edge(b.cur, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		}
		b.cur = follow

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.startBlock(head)
		head.Nodes = append(head.Nodes, s.X)
		follow := b.newBlock()
		b.g.follow[s] = follow
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, follow) // range exhausted
		b.pushFrame(loopFrame{label: label, breakTarget: follow, continueTarget: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.popFrame()
		b.edge(b.cur, head)
		b.cur = follow

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s, label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s, label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		// The select statement itself is an executable node (it may block);
		// loopblock keys on it. Its comm statements stay inside that node —
		// only the clause bodies become blocks.
		b.add(s)
		b.switchBody(s, label, s.Body.List)

	case *ast.LabeledStmt:
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		target := b.newBlock()
		b.startBlock(target)
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.Return = s
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.cur = nil // panic/os.Exit: flow never continues
		}

	case nil:
		// nothing

	default:
		// Assignments, declarations, sends, incdec, go statements, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

// switchBody builds the clause blocks shared by switch, type switch and
// select. Every clause is a successor of the head block; absent a default
// clause the head also flows straight to the join.
func (b *cfgBuilder) switchBody(s ast.Stmt, label string, clauses []ast.Stmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	follow := b.newBlock()
	b.g.follow[s] = follow

	// Pre-create clause entry blocks so fallthrough can target clause i+1.
	entries := make([]*Block, len(clauses))
	for i := range clauses {
		entries[i] = b.newBlock()
		b.edge(head, entries[i])
	}
	hasDefault := false
	_, isSelect := s.(*ast.SelectStmt)
	for i, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			body = c.Body
		}
		b.pushFrame(loopFrame{label: label, breakTarget: follow})
		var next *Block
		if i+1 < len(entries) {
			next = entries[i+1]
		}
		b.ftTargets = append(b.ftTargets, next)
		b.cur = entries[i]
		b.stmtList(body)
		b.ftTargets = b.ftTargets[:len(b.ftTargets)-1]
		b.popFrame()
		// A clause ending in fallthrough already redirected flow.
		b.edge(b.cur, follow)
	}
	if !hasDefault && !isSelect {
		// No case matched: execution skips the whole statement. (A select
		// without default blocks until some clause is ready, so its head has
		// no direct edge to the join.)
		b.edge(head, follow)
	}
	b.cur = follow
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if f := b.findFrame(label, false); f != nil {
			b.edge(b.cur, f.breakTarget)
		}
	case "continue":
		if f := b.findFrame(label, true); f != nil {
			b.edge(b.cur, f.continueTarget)
		}
	case "goto":
		if b.cur != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		}
	case "fallthrough":
		if n := len(b.ftTargets); n > 0 && b.ftTargets[n-1] != nil {
			b.edge(b.cur, b.ftTargets[n-1])
		}
	}
	b.cur = nil
}

// resolveGotos wires goto edges once all labels are known. Unresolved labels
// (impossible in type-checked code) fall back to the exit block so path
// queries stay conservative.
func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t)
		} else {
			b.edge(g.from, b.g.Exit)
		}
	}
}
