package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// cfgWorld parses and type-checks one source string and returns the tools
// the tests need: the CFG of the named function, the type info, and a node
// finder keyed on called-function names.
type cfgWorld struct {
	t    *testing.T
	fset *token.FileSet
	file *ast.File
	info *types.Info
	fn   *ast.FuncDecl
	cfg  *CFG
}

func buildWorld(t *testing.T, src, fnName string) *cfgWorld {
	t.Helper()
	w := &cfgWorld{t: t, fset: token.NewFileSet()}
	f, err := parser.ParseFile(w.fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	w.file = f
	w.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Error: func(error) {}}
	if _, err := conf.Check("cfgtest", w.fset, []*ast.File{f}, w.info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fnName {
			w.fn = fd
			w.cfg = BuildCFG(fd.Body)
			return w
		}
	}
	t.Fatalf("no function %q in fixture", fnName)
	return nil
}

// call returns the nth (0-based) call to a function with the given name.
func (w *cfgWorld) call(name string, nth int) *ast.CallExpr {
	w.t.Helper()
	var out *ast.CallExpr
	seen := 0
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
			if seen == nth {
				out = call
				return false
			}
			seen++
		}
		return true
	})
	if out == nil {
		w.t.Fatalf("no call #%d to %q in fixture", nth, name)
	}
	return out
}

// barrierOn matches calls to the named function.
func (w *cfgWorld) barrierOn(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func anyExitKind(*ast.ReturnStmt) bool { return true }

const cfgCommonDecls = `
func mark()    {}
func barrier() {}
func sink()    {}
func work()    {}
func cleanup() {}
`

func TestCFGBranches(t *testing.T) {
	w := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f(a bool) {
	mark()
	if a {
		work()
	} else {
		barrier()
	}
	sink()
}
`, "f")
	// The then-branch path from mark to sink avoids the barrier in else.
	if !w.cfg.PathTo(w.call("mark", 0), w.call("sink", 0), w.barrierOn("barrier")) {
		t.Errorf("expected a barrier-free path via the then branch")
	}
	// From inside the else branch, every path to sink passes the barrier...
	// except none: the barrier is *before* the join on that path, so starting
	// after work() the else branch is unreachable and sink is reached freely.
	if !w.cfg.PathTo(w.call("work", 0), w.call("sink", 0), w.barrierOn("barrier")) {
		t.Errorf("expected then-branch to reach the join without the else barrier")
	}
	// With the barrier on both branches there is no clean path.
	w2 := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f(a bool) {
	mark()
	if a {
		barrier()
	} else {
		barrier()
	}
	sink()
}
`, "f")
	if w2.cfg.PathTo(w2.call("mark", 0), w2.call("sink", 0), w2.barrierOn("barrier")) {
		t.Errorf("both branches carry the barrier; no clean path should exist")
	}
	// An if without else leaks a clean path around a then-only barrier.
	w3 := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f(a bool) {
	mark()
	if a {
		barrier()
	}
	sink()
}
`, "f")
	if !w3.cfg.PathTo(w3.call("mark", 0), w3.call("sink", 0), w3.barrierOn("barrier")) {
		t.Errorf("expected the implicit else edge to bypass the barrier")
	}
}

func TestCFGLoops(t *testing.T) {
	w := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f(n int) {
	mark()
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		work()
	}
	sink()
}
`, "f")
	// The loop may run zero times: mark reaches sink without entering it.
	if !w.cfg.PathTo(w.call("mark", 0), w.call("sink", 0), w.barrierOn("work")) {
		t.Errorf("expected the zero-iteration path to skip the loop body")
	}
	// Back edge: work reaches itself on the next iteration.
	if !w.cfg.PathTo(w.call("work", 0), w.call("work", 0), nil) {
		t.Errorf("expected the loop back edge to make work reachable from itself")
	}
	// A barrier placed after the loop blocks the only way to sink.
	w2 := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f(m map[string]int) {
	mark()
	for range m {
		work()
	}
	barrier()
	sink()
}
`, "f")
	if w2.cfg.PathTo(w2.call("work", 0), w2.call("sink", 0), w2.barrierOn("barrier")) {
		t.Errorf("the only path from the range body to sink passes the barrier")
	}
	// break jumps past the rest of the body to the follow block.
	w3 := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f(m map[string]int) {
	for range m {
		work()
		break
	}
	sink()
}
`, "f")
	if !w3.cfg.PathTo(w3.call("work", 0), w3.call("sink", 0), nil) {
		t.Errorf("break should reach the loop follow block")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	w := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
type boom struct{}

func (boom) Error() string { return "boom" }

func mkerr() error { return boom{} }

func f(fail bool) error {
	mark()
	if fail {
		err := mkerr()
		if err != nil {
			return err
		}
	}
	barrier()
	return nil
}
`, "f")
	nonError := func(ret *ast.ReturnStmt) bool { return !returnsNonNilError(w.info, ret, false) }
	errorExit := func(ret *ast.ReturnStmt) bool { return returnsNonNilError(w.info, ret, false) }
	// All non-error exits pass the barrier.
	if esc, _ := w.cfg.EscapesExit(w.call("mark", 0), w.barrierOn("barrier"), nonError); esc {
		t.Errorf("the only non-error return is behind the barrier")
	}
	// The early error return escapes the barrier.
	if esc, _ := w.cfg.EscapesExit(w.call("mark", 0), w.barrierOn("barrier"), errorExit); !esc {
		t.Errorf("expected the early `return err` to escape barrier-free")
	}
	// With error then-branches skipped, that escape disappears.
	if esc, _ := w.cfg.EscapesExitSkipErr(w.info, w.call("mark", 0), w.barrierOn("barrier"), anyExitKind); esc {
		t.Errorf("skip-err traversal must not follow the `err != nil` branch")
	}
}

func TestCFGDefer(t *testing.T) {
	w := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f() {
	defer cleanup()
	work()
	sink()
}
`, "f")
	if len(w.cfg.Defers) != 1 {
		t.Fatalf("expected 1 collected defer, got %d", len(w.cfg.Defers))
	}
	// The deferred payload is not an inline barrier: paths from work to the
	// exit do not "pass" cleanup at the registration point.
	if esc, _ := w.cfg.EscapesExit(w.call("work", 0), w.barrierOn("cleanup"), anyExitKind); !esc {
		t.Errorf("defer payloads must not satisfy inline path barriers")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	w := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f() {
	work()
	panic("unreachable exit")
}
`, "f")
	if esc, _ := w.cfg.EscapesExit(w.call("work", 0), nil, anyExitKind); esc {
		t.Errorf("a panic-terminated path must not reach the function exit")
	}
}

func TestCFGSwitch(t *testing.T) {
	w := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f(n int) {
	mark()
	switch n {
	case 1:
		barrier()
	case 2:
		work()
	}
	sink()
}
`, "f")
	// Case 2 and the no-match edge both bypass the barrier.
	if !w.cfg.PathTo(w.call("mark", 0), w.call("sink", 0), w.barrierOn("barrier")) {
		t.Errorf("expected barrier-free paths through case 2 and the no-match edge")
	}
	// With a default, all paths are enumerated; barrier everywhere blocks.
	w2 := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f(n int) {
	mark()
	switch n {
	case 1:
		barrier()
	default:
		barrier()
	}
	sink()
}
`, "f")
	if w2.cfg.PathTo(w2.call("mark", 0), w2.call("sink", 0), w2.barrierOn("barrier")) {
		t.Errorf("every switch arm carries the barrier; no clean path should exist")
	}
}

func TestCFGReachable(t *testing.T) {
	w := buildWorld(t, `package cfgtest
`+cfgCommonDecls+`
func f() {
	work()
	return
	sink() //lint:ignore this is intentionally dead
}
`, "f")
	deadBlk, _ := w.cfg.Locate(w.call("sink", 0))
	if deadBlk == nil {
		t.Fatalf("dead code should still be located in the graph")
	}
	if w.cfg.Reachable(deadBlk) {
		t.Errorf("code after return must be unreachable")
	}
	liveBlk, _ := w.cfg.Locate(w.call("work", 0))
	if liveBlk == nil || !w.cfg.Reachable(liveBlk) {
		t.Errorf("entry statements must be reachable")
	}
}
