package analysis

// Path queries and def-use chains over the CFGs built in cfg.go. Three
// primitives carry all four flow-sensitive analyzers:
//
//   - PathTo: can execution get from node A to node B without passing a
//     barrier? (determinism: loop exit -> sink avoiding sort.*)
//   - EscapesExit: can execution get from node A to a function exit of a
//     given kind without passing a barrier? (journaled: mutation -> non-error
//     return avoiding journalCommit; leakpath: claim -> error return avoiding
//     rollback/commit)
//   - defUse: which objects does a function assign and read, where?
//
// Traversal is block-level breadth-first with the barrier predicate applied
// to every executable sub-node (nodeScan); cycles terminate because each
// block is expanded once.

import (
	"go/ast"
	"go/types"
)

// nodeScan calls f on n and its executable sub-nodes in source order. It
// does not descend into nested function literals (they run on their own
// schedule and get their own CFG), defer payloads (they run at exit, not at
// the registration point) or select clause bodies (those have their own CFG
// blocks; scanning them here would credit one clause's effects to paths
// through another). The pruned node itself is still passed to f. f returning
// false prunes the subtree.
func nodeScan(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil {
			return true
		}
		if !f(sub) {
			return false
		}
		switch sub.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.SelectStmt:
			return false
		}
		return true
	})
}

// nodeContains reports whether outer positionally contains inner.
func nodeContains(outer, inner ast.Node) bool {
	return outer == inner || (outer.Pos() <= inner.Pos() && inner.End() <= outer.End())
}

// blockScan walks b.Nodes from index start. For each node it first checks
// found (positional containment of the target or a predicate hit), then
// barrier. It returns (hit, blocked): hit when the target was found before
// any barrier, blocked when a barrier fired first.
func blockScan(b *Block, start int, found func(ast.Node) bool, barrier func(ast.Node) bool) (bool, bool) {
	for i := start; i < len(b.Nodes); i++ {
		n := b.Nodes[i]
		if found != nil && found(n) {
			return true, false
		}
		if barrier != nil {
			hit := false
			nodeScan(n, func(sub ast.Node) bool {
				if hit {
					return false
				}
				if barrier(sub) {
					hit = true
					return false
				}
				return true
			})
			if hit {
				return false, true
			}
		}
	}
	return false, false
}

// PathTo reports whether some execution path starting immediately after
// `from` can reach `to` without first passing a node for which barrier is
// true. Both nodes must be locatable in g (sub-expressions resolve to their
// enclosing block node). When `to` cannot be located the answer is false.
func (g *CFG) PathTo(from, to ast.Node, barrier func(ast.Node) bool) bool {
	fb, fi := g.Locate(from)
	tb, _ := g.Locate(to)
	if fb == nil || tb == nil {
		return false
	}
	found := func(n ast.Node) bool { return nodeContains(n, to) }
	// Scan the remainder of the start block.
	if hit, blocked := blockScan(fb, fi+1, found, barrier); hit {
		return true
	} else if blocked {
		return false
	}
	seen := map[*Block]bool{}
	queue := append([]*Block{}, fb.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if hit, blocked := blockScan(b, 0, found, barrier); hit {
			return true
		} else if blocked {
			continue
		}
		queue = append(queue, b.Succs...)
	}
	return false
}

// EscapesExit reports whether some execution path starting immediately after
// `from` reaches a function exit matching exitMatters without first passing
// a barrier node. exitMatters is called with the terminating return
// statement (nil for the implicit fallthrough off the end of the body); it
// returns true when that kind of exit counts. The second result is the
// return statement of the first counting escape found (nil for fallthrough
// exits), for diagnostics.
func (g *CFG) EscapesExit(from ast.Node, barrier func(ast.Node) bool, exitMatters func(*ast.ReturnStmt) bool) (bool, *ast.ReturnStmt) {
	fb, fi := g.Locate(from)
	if fb == nil {
		return false, nil
	}
	return g.escapes(fb, fi+1, barrier, exitMatters, nil)
}

// EscapesExitSkipErr is EscapesExit restricted to non-error paths: edges
// into the then-branch of an `<errish> != nil` condition are not followed.
// This is the journaled analyzer's traversal — a durable mutation whose only
// uncommitted continuations run error handling is not a finding.
func (g *CFG) EscapesExitSkipErr(info *types.Info, from ast.Node, barrier func(ast.Node) bool, exitMatters func(*ast.ReturnStmt) bool) (bool, *ast.ReturnStmt) {
	fb, fi := g.Locate(from)
	if fb == nil {
		return false, nil
	}
	return g.escapes(fb, fi+1, barrier, exitMatters, info)
}

// EscapesFromEntry is EscapesExit measured from the top of the function: can
// any path from entry reach a matching exit without passing a barrier node?
// Its negation is the "always on every path" summary the journaled analyzer
// uses for helper functions. errInfo, when non-nil, skips error then-branches
// as in EscapesExitSkipErr.
func (g *CFG) EscapesFromEntry(errInfo *types.Info, barrier func(ast.Node) bool, exitMatters func(*ast.ReturnStmt) bool) (bool, *ast.ReturnStmt) {
	return g.escapes(g.Entry, 0, barrier, exitMatters, errInfo)
}

func (g *CFG) escapes(fb *Block, fi int, barrier func(ast.Node) bool, exitMatters func(*ast.ReturnStmt) bool, errInfo *types.Info) (bool, *ast.ReturnStmt) {
	type item struct {
		b     *Block
		start int
	}
	seen := map[*Block]bool{}
	queue := []item{{fb, fi}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.start == 0 {
			if seen[it.b] {
				continue
			}
			seen[it.b] = true
		}
		if _, blocked := blockScan(it.b, it.start, nil, barrier); blocked {
			continue
		}
		for _, s := range it.b.Succs {
			if errInfo != nil && s == it.b.Then && it.b.Cond != nil && errNilCond(errInfo, it.b.Cond) {
				continue // error-handling branch: exempt path
			}
			if s == g.Exit {
				if exitMatters(it.b.Return) {
					return true, it.b.Return
				}
				continue
			}
			queue = append(queue, item{s, 0})
		}
	}
	return false, nil
}

// returnsNonNilError reports whether ret carries an error that is not the
// nil literal: `return err`, `return fmt.Errorf(...)`, `return nil, err` and
// friends. A nil ret (implicit fallthrough exit) and `return nil` yield
// false. Naked returns in functions with a named error result are treated as
// error-carrying only if conservative is true.
func returnsNonNilError(info *types.Info, ret *ast.ReturnStmt, conservative bool) bool {
	if ret == nil {
		return false
	}
	if len(ret.Results) == 0 {
		return conservative
	}
	for _, r := range ret.Results {
		if isNil(info, r) {
			continue
		}
		t := info.Types[ast.Unparen(r)].Type
		if t == nil {
			continue
		}
		if types.Implements(t, errorInterface()) || t.String() == "error" {
			return true
		}
	}
	return false
}

// defUse records where a function reads and writes program objects.
type defUse struct {
	// writes maps an object to the nodes that assign it (AssignStmt LHS,
	// IncDecStmt, range key/value).
	writes map[types.Object][]ast.Node
	// reads maps an object to the identifiers that use it.
	reads map[types.Object][]*ast.Ident
}

// defUseOf builds the def-use chains of one function body. Nested function
// literals are included: a closure reading or appending to an outer variable
// is exactly the flow the determinism analyzer must see.
func defUseOf(info *types.Info, body *ast.BlockStmt) *defUse {
	du := &defUse{
		writes: map[types.Object][]ast.Node{},
		reads:  map[types.Object][]*ast.Ident{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						du.writes[obj] = append(du.writes[obj], n)
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					du.writes[obj] = append(du.writes[obj], n)
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				du.reads[obj] = append(du.reads[obj], n)
			}
		}
		return true
	})
	return du
}

// objOf resolves an identifier to its object whether the site is a
// definition (`:=`) or a use (`=`).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isTerminalCall reports whether the expression is a call that never
// returns: the panic builtin or os.Exit.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

// funcBodies yields every function body in the file — declarations and
// literals — along with the declaration it belongs to (nil for literals) so
// analyzers can build one CFG per executable scope.
type funcBody struct {
	decl *ast.FuncDecl // nil for function literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, funcBody{decl: n, body: n.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{lit: n, body: n.Body})
		}
		return true
	})
	return out
}
