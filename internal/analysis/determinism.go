package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Determinism is the replay-exactness analyzer. The WAL rehydrate check (DESIGN.md
// §10) demands that a journal replayed from byte zero reproduce the
// controller byte-for-byte, and the flight recorder diffs JSON dumps across
// runs — both break the moment Go's randomized map iteration order leaks
// into a serialized record or an API response. The rule: a `range` over a
// map whose body appends into a slice that then reaches an ordered sink — a
// return value, a json-tagged record field (stateRec, commitRec, slo.Dump,
// API responses), or an encoding/json call — must pass a sort (sort.*,
// slices.Sort*) on every path between the append and the sink. Loops that
// only count, sum or look up are order-insensitive and never flagged.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "map iteration feeding a return value, json-tagged record or marshal " +
		"call must sort on all paths; map order is randomized and breaks replay",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, fb := range funcBodies(f) {
			determinismFunc(pass, fb)
		}
	}
	return nil
}

// mapTaint is one append that records map-iteration order: either into a
// local slice object (obj != nil) or into a field selector rendered as sel.
type mapTaint struct {
	obj  types.Object
	sel  string   // canonical selector text for field appends ("x.F")
	node ast.Node // the append (or closure call) inside the loop body
}

func determinismFunc(pass *Pass, fb funcBody) {
	info := pass.TypesInfo
	var ranges []*ast.RangeStmt
	ownStmts(fb.body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := info.Types[rs.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	if len(ranges) == 0 {
		return
	}
	g := BuildCFG(fb.body)
	closures := localClosureAppends(info, fb.body)
	for _, rs := range ranges {
		for _, t := range appendTargets(info, rs.Body, closures) {
			determinismCheck(pass, fb, g, rs, t)
		}
	}
}

// ownStmts walks the body without descending into nested function literals
// (each literal is analyzed as its own funcBody).
func ownStmts(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return f(n)
	})
}

// localClosureAppends maps objects bound to function literals (`report :=
// func(...) {...}`) to the outer objects and field selectors their bodies
// append to. Calling such a closure from a map-range body taints those
// targets — the exact shape of a local report/add helper.
func localClosureAppends(info *types.Info, body *ast.BlockStmt) map[types.Object][]mapTaint {
	out := map[types.Object][]mapTaint{}
	ast.Inspect(body, func(n ast.Node) bool {
		var id *ast.Ident
		var lit *ast.FuncLit
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if l, ok := n.Rhs[0].(*ast.FuncLit); ok {
					id, _ = n.Lhs[0].(*ast.Ident)
					lit = l
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == 1 && len(n.Values) == 1 {
				if l, ok := n.Values[0].(*ast.FuncLit); ok {
					id = n.Names[0]
					lit = l
				}
			}
		}
		if id == nil || lit == nil {
			return true
		}
		obj := objOf(info, id)
		if obj == nil {
			return true
		}
		for _, t := range directAppends(info, lit.Body) {
			// Only appends to objects living outside the literal escape it.
			if t.obj != nil && insideNode(lit, t.obj) {
				continue
			}
			out[obj] = append(out[obj], t)
		}
		return true
	})
	return out
}

// insideNode reports whether obj is declared within n's source range.
func insideNode(n ast.Node, obj types.Object) bool {
	return n.Pos() <= obj.Pos() && obj.Pos() <= n.End()
}

// directAppends collects `v = append(v, ...)` and `x.F = append(x.F, ...)`
// sites in a statement tree, without descending into nested literals.
func directAppends(info *types.Info, body ast.Node) []mapTaint {
	var out []mapTaint
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) {
			return true
		}
		switch lhs := ast.Unparen(as.Lhs[0]).(type) {
		case *ast.Ident:
			if obj := objOf(info, lhs); obj != nil {
				out = append(out, mapTaint{obj: obj, node: as})
			}
		case *ast.SelectorExpr:
			out = append(out, mapTaint{sel: types.ExprString(lhs), node: as})
		}
		return true
	})
	return out
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// appendTargets collects the taints created inside one map-range body:
// direct appends plus appends performed by called local closures.
func appendTargets(info *types.Info, body *ast.BlockStmt, closures map[types.Object][]mapTaint) []mapTaint {
	taints := directAppends(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		for _, t := range closures[obj] {
			taints = append(taints, mapTaint{obj: t.obj, sel: t.sel, node: call})
		}
		return true
	})
	return taints
}

// determinismCheck reports the range statement if taint t reaches an ordered
// sink with some path lacking a sort between the append and the sink.
func determinismCheck(pass *Pass, fb funcBody, g *CFG, rs *ast.RangeStmt, t mapTaint) {
	info := pass.TypesInfo
	barrier := func(n ast.Node) bool { return sortsTaint(info, n, t) }
	for _, sink := range taintSinks(pass, fb, t) {
		if nodeContains(rs, sink.node) && sink.kind != "return" {
			// The sink is the append itself (field append into a record
			// inside the loop): order is already baked in unless a sort
			// runs before the record escapes the function.
			if esc, _ := g.EscapesExit(t.node, barrier, func(*ast.ReturnStmt) bool { return true }); esc {
				reportDeterminism(pass, rs, t, sink)
				return
			}
			continue
		}
		if g.PathTo(t.node, sink.node, barrier) {
			reportDeterminism(pass, rs, t, sink)
			return
		}
	}
}

func reportDeterminism(pass *Pass, rs *ast.RangeStmt, t mapTaint, s taintSink) {
	name := t.sel
	if t.obj != nil {
		name = t.obj.Name()
	}
	pass.Reportf(rs.For,
		"map iteration order flows into %s which reaches %s without a sort on "+
			"every path; Go randomizes map order, so this breaks replay byte-exactness "+
			"(sort the keys first, or sort %s before it escapes)",
		name, s.what, name)
}

type taintSink struct {
	node ast.Node
	kind string // "return", "marshal", "field"
	what string // human description for the diagnostic
}

// taintSinks finds the ordered sinks of one taint within the function body:
// return statements mentioning the object, encoding/json calls consuming it,
// and stores into json-tagged struct fields. Field taints sink at their own
// append (the record field is itself the ordered output).
func taintSinks(pass *Pass, fb funcBody, t mapTaint) []taintSink {
	info := pass.TypesInfo
	var out []taintSink
	if t.sel != "" {
		if as, ok := t.node.(*ast.AssignStmt); ok {
			if sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr); ok && serializedField(info, sel) {
				out = append(out, taintSink{node: t.node, kind: "field",
					what: fmt.Sprintf("serialized record field %s", t.sel)})
			}
		}
		return out
	}
	obj := t.obj
	if !sliceTyped(obj) {
		return nil
	}
	named := namedResult(info, fb, obj)
	ownStmts(fb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if named || nodeReadsObj(info, n, obj) {
				out = append(out, taintSink{node: n, kind: "return", what: "a return value"})
			}
		case *ast.CallExpr:
			if isMarshalCall(info, n) && nodeReadsObj(info, n, obj) {
				out = append(out, taintSink{node: n, kind: "marshal", what: "a json encode call"})
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !serializedField(info, sel) {
					continue
				}
				if i < len(n.Rhs) && nodeReadsObj(info, n.Rhs[i], obj) {
					out = append(out, taintSink{node: n, kind: "field",
						what: fmt.Sprintf("serialized record field %s", types.ExprString(sel))})
				} else if len(n.Rhs) == 1 && len(n.Lhs) > 1 && nodeReadsObj(info, n.Rhs[0], obj) {
					out = append(out, taintSink{node: n, kind: "field",
						what: fmt.Sprintf("serialized record field %s", types.ExprString(sel))})
				}
			}
		}
		return true
	})
	return out
}

func sliceTyped(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	_, ok := obj.Type().Underlying().(*types.Slice)
	return ok
}

// namedResult reports whether obj is a named result parameter of the
// function, in which case every return statement (naked included) reads it.
func namedResult(info *types.Info, fb funcBody, obj types.Object) bool {
	var ft *ast.FuncType
	switch {
	case fb.decl != nil:
		ft = fb.decl.Type
	case fb.lit != nil:
		ft = fb.lit.Type
	}
	if ft == nil || ft.Results == nil {
		return false
	}
	for _, fld := range ft.Results.List {
		for _, name := range fld.Names {
			if objOf(info, name) == obj {
				return true
			}
		}
	}
	return false
}

func nodeReadsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(sub ast.Node) bool {
		if found {
			return false
		}
		if id, ok := sub.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// isMarshalCall matches encoding/json entry points: json.Marshal,
// json.MarshalIndent and (*json.Encoder).Encode.
func isMarshalCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return false
	}
	switch fn.Name() {
	case "Marshal", "MarshalIndent", "Encode":
		return true
	}
	return false
}

// serializedField reports whether sel names a field that ends up in
// serialized output: its struct tag mentions json, or the owning struct is
// one of the journal record types (which encode/gob via exported fields).
func serializedField(info *types.Info, sel *ast.SelectorExpr) bool {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return false
	}
	owner, ok := namedType(selection.Recv())
	if !ok {
		return false
	}
	name := owner.Obj().Name()
	if strings.HasSuffix(name, "Rec") || name == "stateRec" || name == "commitRec" {
		return true
	}
	st, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == field || st.Field(i).Name() == field.Name() {
			return strings.Contains(st.Tag(i), "json:")
		}
	}
	return false
}

// sortsTaint reports whether n is a node that fixes or erases the taint's
// order: a sort.*/slices.Sort* call over it, or a plain reassignment that
// overwrites the slice wholesale.
func sortsTaint(info *types.Info, n ast.Node, t mapTaint) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(info, n)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return false
		}
		for _, arg := range n.Args {
			if t.obj != nil && nodeReadsObj(info, arg, t.obj) {
				return true
			}
			if t.sel != "" && types.ExprString(ast.Unparen(arg)) == t.sel {
				return true
			}
		}
	case *ast.AssignStmt:
		if t.obj == nil || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return false
		}
		id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident)
		if !ok || objOf(info, id) != t.obj {
			return false
		}
		// v = append(v, ...) extends the taint; anything else overwrites it.
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
			return false
		}
		return true
	}
	return false
}
