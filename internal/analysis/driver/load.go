// Package driver loads and type-checks Go packages for the griphon-lint
// analyzers using only the standard library and the go command — no
// golang.org/x/tools dependency, so the suite runs in hermetic build
// environments with an empty module cache.
//
// Loading works the way the real analysis drivers do under the hood:
// `go list -e -export -deps -test -json` enumerates every package in the
// build graph and compiles export data for each into the build cache; the
// driver then parses each target package's source and type-checks it with a
// gc-export-data importer (importer.ForCompiler with a lookup function), so
// dependencies resolve from compiled summaries rather than from source.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"griphon/internal/analysis"
)

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the normalized import path (test variants report the path of
	// the package under test).
	Path string
	// Files are the parsed sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type-checker's fact tables for Files.
	Info *types.Info
	// TypeErrors holds any (tolerated) type-check errors.
	TypeErrors []error
}

// Loader owns the file set and the package index shared by every
// type-check it performs.
type Loader struct {
	Fset *token.FileSet
	// index maps ImportPath (including test-variant spellings) to the list
	// entry, for export-data lookup.
	index map[string]*listPkg
	// targets are the non-dep packages matched by the load patterns, in
	// go list order.
	targets []*listPkg
}

// Load runs go list over the patterns and returns a loader plus the matched
// (non-dependency) packages, parsed and type-checked.
func Load(dir string, patterns []string) (*Loader, []*Package, error) {
	l := &Loader{Fset: token.NewFileSet(), index: map[string]*listPkg{}}
	if err := l.list(dir, patterns); err != nil {
		return nil, nil, err
	}
	var out []*Package
	for _, lp := range l.targets {
		pkg, err := l.check(lp)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		out = append(out, pkg)
	}
	return l, out, nil
}

// LoadIndex runs go list over the patterns to populate the export-data index
// without type-checking any matched package. CheckFiles can then type-check
// arbitrary source files — analysistest fixture packages in particular —
// against the indexed dependencies.
func LoadIndex(dir string, patterns []string) (*Loader, error) {
	l := &Loader{Fset: token.NewFileSet(), index: map[string]*listPkg{}}
	if err := l.list(dir, patterns); err != nil {
		return nil, err
	}
	return l, nil
}

// list populates the loader's index from one `go list` invocation.
func (l *Loader) list(dir string, patterns []string) error {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("go list: %w", err)
	}
	dec := json.NewDecoder(stdout)
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list output: %w", err)
		}
		p := lp
		l.index[p.ImportPath] = &p
		if !p.DepOnly && !p.Standard &&
			!strings.HasSuffix(p.ImportPath, ".test") && len(p.GoFiles) > 0 {
			l.targets = append(l.targets, &p)
		}
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	return nil
}

// check parses and type-checks one listed package.
func (l *Loader) check(lp *listPkg) (*Package, error) {
	var files []string
	for _, f := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
		if !filepath.IsAbs(f) {
			f = filepath.Join(lp.Dir, f)
		}
		files = append(files, f)
	}
	return l.CheckFiles(analysis.NormalizePkgPath(lp.ImportPath), files, lp.ImportMap)
}

// CheckFiles parses the given files and type-checks them as a package with
// the given path. importMap (may be nil) translates source import strings to
// the ImportPath spellings in the loader's index — go list emits it for
// vendoring and test variants.
func (l *Loader) CheckFiles(pkgPath string, filenames []string, importMap map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg := &Package{Path: pkgPath, Files: files, Info: info}
	conf := types.Config{
		Importer: l.importerFor(importMap),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	return pkg, nil
}

// importerFor builds a gc-export-data importer whose lookup resolves import
// paths through the per-package import map and then the loader's index.
func (l *Loader) importerFor(importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		lp, ok := l.index[path]
		if !ok {
			return nil, fmt.Errorf("driver: no package %q in load graph", path)
		}
		if lp.Export == "" {
			msg := "no export data"
			if lp.Error != nil {
				msg = lp.Error.Err
			}
			return nil, fmt.Errorf("driver: package %q: %s", path, msg)
		}
		return os.Open(lp.Export)
	}
	return importer.ForCompiler(l.Fset, "gc", lookup)
}

// Analyze runs the analyzers over the package, applies //lint:allow
// suppressions, and returns the surviving diagnostics.
func Analyze(fset *token.FileSet, pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		var diags []analysis.Diagnostic
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range diags {
			if analysis.Suppressed(fset, pkg.Files, a.Name, d) {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: a.Name,
				Package:  pkg.Path,
				Position: fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}
	sortDiagnostics(out)
	return out, nil
}

// Diagnostic is one rendered finding.
type Diagnostic struct {
	Analyzer string
	Package  string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool { return diagLess(ds[i], ds[j]) })
}

func diagLess(a, b Diagnostic) bool {
	if a.Position.Filename != b.Position.Filename {
		return a.Position.Filename < b.Position.Filename
	}
	if a.Position.Line != b.Position.Line {
		return a.Position.Line < b.Position.Line
	}
	if a.Position.Column != b.Position.Column {
		return a.Position.Column < b.Position.Column
	}
	return a.Analyzer < b.Analyzer
}
