package driver

// SARIF 2.1.0 encoding of analyzer diagnostics, hand-rolled against the
// subset the GitHub code-scanning ingester reads: one run, one rule per
// analyzer, one result per diagnostic with a physical location. Paths are
// emitted relative to the repository root so the upload maps onto the
// checkout regardless of the runner's absolute paths.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strconv"
	"strings"

	"griphon/internal/analysis"
)

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifToolDriver `json:"driver"`
}

type sarifToolDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes the diagnostics as one SARIF run. Rules cover every
// analyzer in suite (so a clean run still advertises what was checked), and
// file paths are made relative to root when they live under it.
func WriteSARIF(w io.Writer, root string, suite []*analysis.Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(suite))
	for _, a := range suite {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: firstSentence(a.Doc)},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relativeURI(root, d.Position.Filename)},
				Region:           sarifRegion{StartLine: d.Position.Line, StartColumn: d.Position.Column},
			}}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifToolDriver{Name: "griphon-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}

// WriteGitHubAnnotations emits one ::error workflow command per diagnostic,
// which the Actions runner turns into inline PR annotations without any
// upload step.
func WriteGitHubAnnotations(w io.Writer, root string, diags []Diagnostic) {
	for _, d := range diags {
		// Workflow-command values must not contain raw newlines or percents.
		msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(d.Message)
		io.WriteString(w, "::error file="+relativeURI(root, d.Position.Filename)+
			",line="+strconv.Itoa(d.Position.Line)+
			",col="+strconv.Itoa(d.Position.Column)+
			",title=griphon-lint/"+d.Analyzer+"::"+msg+"\n")
	}
}

func relativeURI(root, name string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return filepath.ToSlash(name)
}

func firstSentence(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
