package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"griphon/internal/analysis"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "determinism",
			Package:  "griphon/internal/core",
			Position: token.Position{Filename: "/repo/internal/core/audit.go", Line: 152, Column: 2},
			Message:  "map iteration order flows into out",
		},
		{
			Analyzer: "journaled",
			Package:  "griphon/internal/core",
			Position: token.Position{Filename: "/elsewhere/gen.go", Line: 7, Column: 1},
			Message:  "mutation with 100% certainty\nsecond line",
		},
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	suite := []*analysis.Analyzer{analysis.Determinism, analysis.Journaled}
	if err := WriteSARIF(&buf, "/repo", suite, sampleDiags()); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want one 2.1.0 run, got version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "griphon-lint" {
		t.Errorf("tool name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 {
		t.Errorf("want a rule per analyzer in the suite, got %d", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "determinism" || first.Level != "error" {
		t.Errorf("result 0 = %s/%s", first.RuleID, first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	// Under the root: relative, slash-separated.
	if loc.ArtifactLocation.URI != "internal/core/audit.go" {
		t.Errorf("in-repo path not relativized: %q", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 152 {
		t.Errorf("startLine = %d", loc.Region.StartLine)
	}
	// Outside the root: left absolute rather than mangled with "..".
	out := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if strings.HasPrefix(out, "..") {
		t.Errorf("out-of-repo path escaped the root: %q", out)
	}
}

func TestWriteGitHubAnnotations(t *testing.T) {
	var buf bytes.Buffer
	WriteGitHubAnnotations(&buf, "/repo", sampleDiags())
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want one annotation per diagnostic, got %d: %q", len(lines), buf.String())
	}
	if want := "::error file=internal/core/audit.go,line=152,col=2,title=griphon-lint/determinism::map iteration order flows into out"; lines[0] != want {
		t.Errorf("annotation 0:\n got %q\nwant %q", lines[0], want)
	}
	// Workflow-command escaping: newlines and percents must not break the
	// single-line protocol.
	if strings.Contains(lines[1], "\n") || !strings.Contains(lines[1], "100%25 certainty%0Asecond line") {
		t.Errorf("annotation 1 not escaped: %q", lines[1])
	}
}
