package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"

	"griphon/internal/analysis"
)

// VetConfig mirrors the JSON configuration cmd/go writes for each package
// when a vet tool runs under `go vet -vettool=...` (cmd/go/internal/work's
// vetConfig). Field names must match exactly.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes the suite in unitchecker mode: one package described by a
// vet.cfg file, export data supplied by the go command. It returns the
// process exit code: 0 clean, 1 on tool failure, 2 when diagnostics were
// reported (go vet treats any non-zero exit as a failed check).
func RunUnit(w io.Writer, cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "griphon-lint: %v\n", err)
		return 1
	}
	// The go command expects the facts ("vetx") output to exist after a
	// successful run so it can cache and replay it for dependents. The
	// suite's analyzers are all package-local — no facts — so an empty
	// file is the correct output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(w, "griphon-lint: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	l := &Loader{Fset: token.NewFileSet(), index: map[string]*listPkg{}}
	for path, exportFile := range cfg.PackageFile {
		l.index[path] = &listPkg{ImportPath: path, Export: exportFile}
	}
	pkg, err := l.CheckFiles(analysis.NormalizePkgPath(cfg.ImportPath), cfg.GoFiles, cfg.ImportMap)
	if err != nil || len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		if err == nil {
			err = pkg.TypeErrors[0]
		}
		fmt.Fprintf(w, "griphon-lint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := Analyze(l.Fset, pkg, analyzers)
	if err != nil {
		fmt.Fprintf(w, "griphon-lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s\n", d.Position, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return &cfg, nil
}
