package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

const emsPkg = "griphon/internal/ems"

// emsAllowed are the packages that may construct or enqueue EMS commands:
// the EMS layer itself and the controller core that orchestrates it. The
// paper's controller "never talks to hardware directly" (§2.2) — and in this
// codebase the inverse also holds: the device-model packages (rwa, optics,
// roadm, fxc, otn) never reach up into the management plane. Keeping the
// dependency one-directional is what lets the RWA engine stay a pure
// function and the EMS latency model stay swappable.
var emsAllowed = []string{
	"griphon/internal/core",
	emsPkg,
}

// Emslayer enforces the management-plane boundary: only internal/core and
// internal/ems may import the ems package, construct ems.Command values, or
// submit to an ems.Manager.
var Emslayer = &Analyzer{
	Name: "emslayer",
	Doc: "only internal/core and internal/ems may construct or enqueue EMS " +
		"commands; device packages stay device-side",
	Run: runEmslayer,
}

func runEmslayer(pass *Pass) error {
	path := NormalizePkgPath(pass.Pkg.Path())
	for _, allowed := range emsAllowed {
		if PathIsOrUnder(path, allowed) {
			return nil
		}
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p != emsPkg {
				continue
			}
			pass.Reportf(imp.Pos(),
				"package %s must not import %s: the EMS layer is reached only "+
					"through internal/core (allowed: %s)",
				path, emsPkg, strings.Join(emsAllowed, ", "))
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// Constructing an ems.Command outside the management plane —
				// caught even when the type is reached without an import
				// (e.g. via a type alias).
				t := pass.TypesInfo.Types[n].Type
				if named, ok := namedType(t); ok &&
					named.Obj().Name() == "Command" &&
					named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == emsPkg {
					pass.Reportf(n.Pos(),
						"package %s constructs ems.Command: EMS work is "+
							"submitted only by internal/core", path)
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.TypesInfo, n)
				for _, m := range []string{"Submit", "SubmitBatch", "InjectFailures"} {
					if methodOn(fn, emsPkg, "Manager", m) {
						pass.Reportf(n.Pos(),
							"package %s calls (*ems.Manager).%s: EMS queues are "+
								"driven only by internal/core", path, m)
					}
				}
				if fn != nil && fn.Name() == "NewManager" &&
					fn.Pkg() != nil && fn.Pkg().Path() == emsPkg {
					pass.Reportf(n.Pos(),
						"package %s constructs an ems.Manager: EMS sessions are "+
							"owned by internal/core", path)
				}
			}
			return true
		})
	}
	return nil
}
