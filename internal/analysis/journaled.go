package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

const (
	otnPkg    = "griphon/internal/otn"
	opticsPkg = "griphon/internal/optics"
)

// Journaled enforces DESIGN.md §10's commit-point discipline: every mutation
// of durable controller state must reach a journalCommit on all non-error
// paths before the kernel event ends, or the WAL silently diverges from the
// live controller — the PR 5 SetQuota gap, where quota changes survived in
// memory but vanished on replay. Durable state is exactly what commitRec
// serializes unconditionally: Connection.stable (the stable-state mirror),
// Rate, Rolls, Restorations, carries and onProtect; Booking.phase; the
// bookings and pipeCarrier maps; pipe add/remove/up-down (otn.Fabric,
// otn.Pipe.SetUp); link state (optics.Plant.SetLinkUp); and customer quotas
// (inventory.Ledger.SetQuota). Phase-gated fields (a pending connection's
// path, slots or Conns list) are excluded: they become durable only when the
// gating stable-state/phase transition commits.
//
// A mutation inside a helper is fine when every caller commits after the
// call on all non-error paths (coverage is transitive: CutFiber commits for
// hitByCut, which commits for protectionSwitch). A mutation inside a closure
// must commit within the closure — callbacks run in their own kernel event,
// where no caller can commit for them.
var Journaled = &Analyzer{
	Name: "journaled",
	Doc: "durable controller state mutations must reach journalCommit on all " +
		"non-error paths; un-journaled commits diverge the WAL from memory",
	Run: runJournaled,
}

// journaledExemptFiles are the journal's own consumers: replay applies
// records to state by construction and must not re-commit while folding.
func journaledExemptFile(name string) bool {
	return filepath.Base(name) == "rehydrate.go"
}

type jmutation struct {
	node ast.Node
	what string
}

// jfunc is one executable scope (declaration or literal) with its CFG.
type jfunc struct {
	fb        funcBody
	cfg       *CFG
	mutations []jmutation
	calls     []*ast.CallExpr
	// summaryCommits: every non-error path from entry to exit passes a
	// commit node (fixpoint over callee summaries).
	summaryCommits bool
	// covered: every call site is followed by a commit on all non-error
	// paths, or its caller is itself covered.
	covered bool
}

func runJournaled(pass *Pass) error {
	if NormalizePkgPath(pass.Pkg.Path()) != corePkg {
		return nil
	}
	info := pass.TypesInfo

	var funcs []*jfunc
	declOf := map[*types.Func]*jfunc{}
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if inTestFile(pass.Fset, f.Pos()) || journaledExemptFile(pos.Filename) {
			continue
		}
		for _, fb := range funcBodies(f) {
			jf := &jfunc{fb: fb, cfg: BuildCFG(fb.body)}
			jf.mutations = durableMutations(pass, fb)
			ownStmts(fb.body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					jf.calls = append(jf.calls, call)
				}
				return true
			})
			funcs = append(funcs, jf)
			if fb.decl != nil {
				if fn, ok := info.Defs[fb.decl.Name].(*types.Func); ok {
					declOf[fn] = jf
				}
			}
		}
	}

	// isCommit: a journalCommit call, or a call to a helper whose summary
	// says it commits on every non-error path.
	isCommit := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return false
		}
		if methodOn(fn, corePkg, "Controller", "journalCommit") {
			return true
		}
		callee := declOf[fn]
		return callee != nil && callee.summaryCommits
	}
	anyExit := func(ret *ast.ReturnStmt) bool { return !returnsNonNilError(info, ret, false) }

	// Fixpoint 1: commit summaries (grows monotonically as helpers whose
	// only "commit" is a call to another committing helper flip true).
	for changed := true; changed; {
		changed = false
		for _, jf := range funcs {
			if jf.summaryCommits {
				continue
			}
			if esc, _ := jf.cfg.EscapesFromEntry(info, isCommit, anyExit); !esc {
				jf.summaryCommits = true
				changed = true
			}
		}
	}

	// Call sites of each declared function, for coverage.
	type site struct {
		caller *jfunc
		call   *ast.CallExpr
	}
	sites := map[*jfunc][]site{}
	for _, jf := range funcs {
		for _, call := range jf.calls {
			if callee := declOf[calleeFunc(info, call)]; callee != nil {
				sites[callee] = append(sites[callee], site{caller: jf, call: call})
			}
		}
	}

	// Fixpoint 2: caller coverage (least fixpoint from false, so mutual
	// recursion without a commit stays uncovered).
	commitsAfter := func(s site) bool {
		esc, _ := s.caller.cfg.EscapesExitSkipErr(info, s.call, isCommit, anyExit)
		return !esc
	}
	for changed := true; changed; {
		changed = false
		for _, jf := range funcs {
			if jf.covered || len(sites[jf]) == 0 {
				continue
			}
			ok := true
			for _, s := range sites[jf] {
				if !commitsAfter(s) && !s.caller.covered {
					ok = false
					break
				}
			}
			if ok {
				jf.covered = true
				changed = true
			}
		}
	}

	for _, jf := range funcs {
		if jf.covered {
			continue
		}
		for _, m := range jf.mutations {
			if esc, ret := jf.cfg.EscapesExitSkipErr(info, m.node, isCommit, anyExit); esc {
				where := "function exit"
				if ret != nil {
					where = "a non-error return"
				}
				pass.Reportf(m.node.Pos(),
					"durable state mutation (%s) can reach %s without a journalCommit "+
						"on a non-error path: the WAL will diverge from memory and replay "+
						"will not reproduce this state", m.what, where)
			}
		}
	}
	return nil
}

// durableMutations collects the journal-relevant mutations in one function
// body (nested literals excluded — they are their own scope).
func durableMutations(pass *Pass, fb funcBody) []jmutation {
	info := pass.TypesInfo
	var out []jmutation
	add := func(n ast.Node, what string) { out = append(out, jmutation{node: n, what: what}) }
	ownStmts(fb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch lhs := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if w := durableField(info, lhs); w != "" {
						add(n, w)
					}
				case *ast.IndexExpr:
					if w := durableMap(info, lhs.X); w != "" {
						add(n, w+" entry")
					}
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				if w := durableField(info, sel); w != "" {
					add(n, w)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 2 {
					if w := durableMap(info, n.Args[0]); w != "" {
						add(n, w+" delete")
					}
				}
				return true
			}
			fn := calleeFunc(info, n)
			switch {
			case methodOn(fn, otnPkg, "Fabric", "AddPipe"),
				methodOn(fn, otnPkg, "Fabric", "RemovePipe"):
				add(n, "otn.Fabric."+fn.Name())
			case methodOn(fn, otnPkg, "Pipe", "SetUp"):
				add(n, "otn.Pipe.SetUp")
			case methodOn(fn, opticsPkg, "Plant", "SetLinkUp"):
				add(n, "optics.Plant.SetLinkUp")
			case methodOn(fn, inventoryPkg, "Ledger", "SetQuota"):
				add(n, "inventory.Ledger.SetQuota")
			}
		}
		return true
	})
	return out
}

// durableField matches selectors of the unconditionally-serialized fields of
// core.Connection and core.Booking, returning a description or "".
func durableField(info *types.Info, sel *ast.SelectorExpr) string {
	owner, field, ok := fieldOf(info, sel)
	if !ok {
		return ""
	}
	switch {
	case owner == "Connection":
		switch field {
		case "stable", "Rate", "Rolls", "Restorations", "carries", "onProtect":
			return "Connection." + field
		}
	case owner == "Booking" && field == "phase":
		return "Booking.phase"
	}
	return ""
}

// durableMap matches the Controller's journaled map fields.
func durableMap(info *types.Info, x ast.Expr) string {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	owner, field, ok := fieldOf(info, sel)
	if !ok || owner != "Controller" {
		return ""
	}
	if field == "bookings" || field == "pipeCarrier" {
		return "Controller." + field
	}
	return ""
}

// fieldOf resolves a selector to (owning core type name, field name).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) (string, string, bool) {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", "", false
	}
	owner, ok := namedType(selection.Recv())
	if !ok {
		return "", "", false
	}
	obj := owner.Obj()
	if obj.Pkg() == nil || NormalizePkgPath(obj.Pkg().Path()) != corePkg {
		return "", "", false
	}
	return obj.Name(), selection.Obj().Name(), true
}
