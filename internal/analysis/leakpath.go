package analysis

import (
	"go/ast"
	"go/types"
)

// Leakpath is the path-sensitive successor of txnrollback's lexical check: a
// function that creates an inventory.Txn and claims resources through it
// (Txn.Do, inventory.Reserve, or a helper handed the txn — interprocedural
// one level) must not be able to reach a `return` carrying a non-nil error
// while the transaction is still open. On such a path every reservation made
// so far is stranded: the caller sees a failure, the pool sees a claim, and
// nothing will ever release it. A function-wide `defer txn.Rollback()`
// (harmless after Commit, the repo's standard idiom) discharges every path
// at once; otherwise each error return downstream of a claim needs an
// explicit Rollback or Commit before it.
var Leakpath = &Analyzer{
	Name: "leakpath",
	Doc: "a Txn claim must not reach a `return err` without Rollback/Commit " +
		"on that path; stranded reservations leak pool capacity",
	Run: runLeakpath,
}

func runLeakpath(pass *Pass) error {
	if NormalizePkgPath(pass.Pkg.Path()) != corePkg {
		return nil
	}
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, fb := range funcBodies(f) {
			leakpathFunc(pass, fb)
		}
	}
	return nil
}

func leakpathFunc(pass *Pass, fb funcBody) {
	info := pass.TypesInfo
	// Transactions created in this scope. A *Txn received as a parameter is
	// caller-owned: the creator's defer/rollback discipline covers it.
	var txns []types.Object
	ownStmts(fb.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Name() != "NewTxn" || fn.Pkg() == nil || fn.Pkg().Path() != inventoryPkg {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				txns = append(txns, obj)
			}
		}
		return true
	})
	if len(txns) == 0 {
		return
	}
	g := BuildCFG(fb.body)
	for _, txn := range txns {
		leakpathTxn(pass, fb, g, txn)
	}
}

func leakpathTxn(pass *Pass, fb funcBody, g *CFG, txn types.Object) {
	info := pass.TypesInfo
	// `defer txn.Rollback()` anywhere in the function discharges all paths:
	// rollback after commit is a no-op, so the idiom is uniformly safe.
	for _, d := range g.Defers {
		if isTxnSettle(info, d.Call, txn) {
			return
		}
	}
	settles := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isTxnSettle(info, call, txn)
	}
	errReturn := func(ret *ast.ReturnStmt) bool {
		// Implicit fallthrough and plain returns do not surface a failure;
		// naked returns with named error results are treated as errors
		// (conservative=true) since the error variable may be live.
		return returnsNonNilError(info, ret, true)
	}
	// Every call that hands the txn to something — Txn.Do, Reserve(txn,..),
	// or a core helper — may register claims.
	ownStmts(fb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isTxnSettle(info, call, txn) || !callUsesTxn(info, call, txn) {
			return true
		}
		if esc, ret := g.EscapesExit(call, settles, errReturn); esc {
			line := 0
			if ret != nil {
				line = pass.Fset.Position(ret.Pos()).Line
			}
			pass.Reportf(call.Pos(),
				"claim on %s can reach the error return on line %d with the "+
					"transaction still open: reservations made so far leak; add "+
					"`defer %s.Rollback()` after NewTxn or settle the txn on that path",
				txn.Name(), line, txn.Name())
			return false // one report per claim site
		}
		return true
	})
}

// isTxnSettle matches txn.Rollback() / txn.Commit() on this transaction.
func isTxnSettle(info *types.Info, call *ast.CallExpr, txn types.Object) bool {
	fn := calleeFunc(info, call)
	if !methodOn(fn, inventoryPkg, "Txn", "Rollback") && !methodOn(fn, inventoryPkg, "Txn", "Commit") {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == txn
}

// callUsesTxn reports whether the call's receiver or arguments mention the
// transaction — claiming through it or handing it to a helper.
func callUsesTxn(info *types.Info, call *ast.CallExpr, txn types.Object) bool {
	uses := false
	ast.Inspect(call, func(n ast.Node) bool {
		if uses {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure bodies run later; passing one is not a claim
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == txn {
			uses = true
		}
		return true
	})
	return uses
}
