package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Loopblock guards the controller's concurrency model ahead of the sharded
// multi-tenant refactor: everything in internal/core runs inside kernel
// events on the single-threaded virtual-time loop (DESIGN.md §3), and a
// per-shard event loop inherits the same contract. Code on that loop must
// never park or fork: no channel sends/receives, no select, no sync.Mutex /
// WaitGroup / Cond waits, no goroutines, and no re-entering the kernel
// (Kernel.Run/RunUntil/RunFor/Step) from inside an event. Long-running work
// — EMS programming, graph choreography — must be expressed as sim.Jobs and
// continuations (Job.OnDone, Kernel.After), which is also why EMS submits
// are asynchronous by construction: a synchronous submit would be a blocking
// wait on hardware and shows up here as the kernel re-entry needed to drive
// it. Unreachable code is not flagged.
var Loopblock = &Analyzer{
	Name: "loopblock",
	Doc: "no blocking operations (channels, select, sync waits, kernel " +
		"re-entry, goroutines) inside controller event-loop code",
	Run: runLoopblock,
}

// loopblockExemptRecv names the cross-shard layer that sits above the
// per-shard event loops rather than on them: the ShardSet drives the shard
// kernels from outside (its parallel mode is goroutine-per-shard by design),
// and the Coordinator — with its per-shard broker views — is the one
// mutex-guarded structure shared between shard drivers. Methods on these
// receivers, including closures nested inside them, are the deliberate
// exception to the no-blocking rule; everything they call back into (the
// controllers themselves) stays covered.
var loopblockExemptRecv = map[string]bool{
	"ShardSet":    true,
	"Coordinator": true,
	"shardBroker": true,
}

func runLoopblock(pass *Pass) error {
	if NormalizePkgPath(pass.Pkg.Path()) != corePkg {
		return nil
	}
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		exempt := loopblockExemptRanges(f)
		for _, fb := range funcBodies(f) {
			if posInRanges(fb.body.Pos(), exempt) {
				continue
			}
			loopblockFunc(pass, fb)
		}
	}
	return nil
}

// loopblockExemptRanges returns the source span of every exempt-receiver
// method in the file. Position containment also exempts function literals
// nested inside those methods (the merged-log observers, the per-shard drain
// goroutines).
func loopblockExemptRanges(f *ast.File) [][2]token.Pos {
	var out [][2]token.Pos
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
			continue
		}
		if loopblockExemptRecv[recvTypeName(fd.Recv.List[0].Type)] {
			out = append(out, [2]token.Pos{fd.Pos(), fd.End()})
		}
	}
	return out
}

func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

func posInRanges(p token.Pos, ranges [][2]token.Pos) bool {
	for _, r := range ranges {
		if p >= r[0] && p < r[1] {
			return true
		}
	}
	return false
}

func loopblockFunc(pass *Pass, fb funcBody) {
	g := BuildCFG(fb.body)
	seen := map[*Block]bool{}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		for _, n := range b.Nodes {
			nodeScan(n, func(sub ast.Node) bool {
				return loopblockNode(pass, sub)
			})
		}
		stack = append(stack, b.Succs...)
	}
	// Deferred payloads run at exit, still on the event loop.
	for _, d := range g.Defers {
		if blk, _ := g.Locate(d); blk != nil && !seen[blk] {
			continue // defer in unreachable code
		}
		loopblockNode(pass, d.Call)
	}
	// Range statements are decomposed into blocks, so catch channel ranges
	// at the statement level (the range expression anchors reachability).
	ownStmts(fb.body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.Types[rs.X].Type; t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				if blk, _ := g.Locate(rs.X); blk == nil || seen[blk] {
					pass.Reportf(rs.For, "ranging over a channel blocks the controller event loop")
				}
			}
		}
		return true
	})
}

// loopblockNode reports one blocking construct; returning false prunes the
// walk below a reported node.
func loopblockNode(pass *Pass, n ast.Node) bool {
	info := pass.TypesInfo
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" {
			pass.Reportf(n.Pos(), "channel receive blocks the controller event loop; "+
				"use a sim.Job continuation instead")
			return false
		}
	case *ast.SendStmt:
		pass.Reportf(n.Pos(), "channel send blocks the controller event loop; "+
			"use a sim.Job continuation instead")
		return false
	case *ast.SelectStmt:
		if !selectHasDefault(n) {
			pass.Reportf(n.Pos(), "select without default blocks the controller event loop")
		}
		// Clause bodies are walked via their own CFG blocks.
		return false
	case *ast.GoStmt:
		pass.Reportf(n.Pos(), "goroutine launched from controller event-loop code; "+
			"the loop owns all state single-threaded — schedule kernel events instead")
		return false
	case *ast.CallExpr:
		fn := calleeFunc(info, n)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "sync" &&
			(fn.Name() == "Wait" || fn.Name() == "Lock" || fn.Name() == "RLock"):
			pass.Reportf(n.Pos(), "sync.%s blocks the controller event loop; core state "+
				"is single-threaded by design and needs no locks", fn.Name())
		case methodOn(fn, simPkg, "Kernel", "Run"),
			methodOn(fn, simPkg, "Kernel", "RunUntil"),
			methodOn(fn, simPkg, "Kernel", "RunFor"),
			methodOn(fn, simPkg, "Kernel", "Step"):
			pass.Reportf(n.Pos(), "Kernel.%s re-enters the event loop from inside an event "+
				"(a synchronous wait in disguise); return a sim.Job and continue in OnDone",
				fn.Name())
		case fn.Name() == "Wait" && fn.Pkg().Path() == simPkg:
			pass.Reportf(n.Pos(), "%s.Wait blocks the controller event loop; use OnDone", fn.Pkg().Name())
		}
	}
	return true
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
