package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

const obsPkg = "griphon/internal/obs"

// registryMethods maps the obs.Registry instrument constructors to the index
// of their name argument (always 0) and their kind for suffix rules.
var registryMethods = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

var (
	metricNameRE = regexp.MustCompile(`^griphon_[a-z0-9]+(_[a-z0-9]+)*$`)
	labelKeyRE   = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// histogramUnits are the unit suffixes a histogram name may end with.
// Everything this simulator observes is virtual seconds or bytes.
var histogramUnits = []string{"_seconds", "_bytes"}

// Metricname enforces the instrument naming scheme: names are compile-time
// string constants (so the /api/v1/metrics surface is greppable), prefixed
// griphon_, snake_case, counters end in _total, histograms carry a unit
// suffix, and gauges never masquerade as counters.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc: "obs registry instrument names must be griphon_-prefixed snake_case " +
		"string literals with _total/_seconds unit-suffix conventions",
	Run: runMetricname,
}

func runMetricname(pass *Pass) error {
	// The registry's own package (and its tests) exercises the instrument
	// mechanics with deliberately minimal names; the naming scheme governs
	// the product metrics registered everywhere else.
	if PathIsOrUnder(pass.Pkg.Path(), obsPkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			kind, ok := registryMethods[fn.Name()]
			if !ok || !methodOn(fn, obsPkg, "Registry", fn.Name()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			checkMetricName(pass, call, fn.Name(), kind)
			checkLabelKeys(pass, call, fn.Name())
			return true
		})
	}
	return nil
}

func checkMetricName(pass *Pass, call *ast.CallExpr, method, kind string) {
	arg := call.Args[0]
	name, ok := constString(pass.TypesInfo, arg)
	if !ok {
		pass.Reportf(arg.Pos(),
			"instrument name passed to Registry.%s must be a string literal "+
				"(constant), not a computed value", method)
		return
	}
	if !metricNameRE.MatchString(name) {
		pass.Reportf(arg.Pos(),
			"instrument name %q must be griphon_-prefixed snake_case "+
				"(matching %s)", name, metricNameRE)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(),
				"counter %q must end in _total (Prometheus counter convention)", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(arg.Pos(),
				"gauge %q must not end in _total: monotone values belong to "+
					"Counter/CounterFunc", name)
		}
	case "histogram":
		ok := false
		for _, u := range histogramUnits {
			if strings.HasSuffix(name, u) {
				ok = true
			}
		}
		if !ok {
			pass.Reportf(arg.Pos(),
				"histogram %q must end in a unit suffix (%s)",
				name, strings.Join(histogramUnits, ", "))
		}
	}
}

// checkLabelKeys validates the variadic "k1", "v1", ... tail: keys must be
// snake_case string constants. Values may be computed (layer names, states).
func checkLabelKeys(pass *Pass, call *ast.CallExpr, method string) {
	// The labels tail starts after (name, help) for Counter/Gauge and their
	// Func variants (fn sits between), and after (name, help, buckets) for
	// Histogram. Rather than hard-coding positions, walk from the end: the
	// variadic tail is whatever trailing arguments are typed string — keys
	// at even offsets within that tail.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	fixed := sig.Params().Len() - 1
	if len(call.Args) <= fixed {
		return
	}
	tail := call.Args[fixed:]
	if len(tail)%2 != 0 {
		pass.Reportf(tail[0].Pos(),
			"Registry.%s label arguments must be key/value pairs (odd count)", method)
		return
	}
	for i := 0; i < len(tail); i += 2 {
		key, ok := constString(pass.TypesInfo, tail[i])
		if !ok {
			pass.Reportf(tail[i].Pos(),
				"Registry.%s label keys must be string literals", method)
			continue
		}
		if !labelKeyRE.MatchString(key) {
			pass.Reportf(tail[i].Pos(),
				"label key %q must be lower snake_case (matching %s)", key, labelKeyRE)
		}
	}
}

// constString returns the compile-time string value of e, if it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
