package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanpair enforces the tracer contract: a span obtained from
// (*obs.Tracer).Start or StartTrack must be ended — End, EndErr or
// EndOutcome — on every path out of the function that started it. An open
// span is not just a cosmetic leak: TestTraceTimeline proves restoration
// phases tile op:restore exactly, and the Chrome-trace exporter reports open
// spans as "open" slices stretching to the end of the run, which corrupts
// the per-step latency ladder the paper's Table 2 is reproduced from.
//
// The check is lexical, not a full CFG analysis. A span variable is
// considered safe when any of the following holds:
//
//   - a defer ends it (directly or via a deferred closure);
//   - it is captured by a function literal that ends it (the async pattern:
//     job.OnDone(func(err error) { sp.EndErr(err) }));
//   - it escapes the function — returned, stored in a field or composite
//     literal, reassigned, or handed to another function — in which case
//     ownership moved and the callee/holder is responsible;
//   - otherwise, every lexical exit of the variable's scope (each return or
//     break/continue/goto after the Start, and falling off the end of the
//     scope block) must be preceded by an End call in a block that encloses
//     that exit.
var Spanpair = &Analyzer{
	Name: "spanpair",
	Doc: "a span returned by obs.Tracer Start/StartTrack must be ended on " +
		"all paths (defer, capturing closure, or an End before every exit)",
	Run: runSpanpair,
}

var spanEndMethods = map[string]bool{
	"End":        true,
	"EndErr":     true,
	"EndOutcome": true,
}

func runSpanpair(pass *Pass) error {
	if PathIsOrUnder(pass.Pkg.Path(), obsPkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSpanFunc(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					checkSpanFunc(pass, fn.Type, fn.Body)
				}
			}
			return true
		})
	}
	return nil
}

// spanDecl is one `sp := tracer.Start(...)` site in the function under
// check, with the statement and block it belongs to.
type spanDecl struct {
	obj   types.Object
	ident *ast.Ident
	stmt  ast.Stmt
}

func checkSpanFunc(pass *Pass, ftyp *ast.FuncType, body *ast.BlockStmt) {
	decls := spanDeclsShallow(pass, body)
	if len(decls) == 0 {
		return
	}
	parents := buildParents(body)
	for _, d := range decls {
		checkSpanDecl(pass, ftyp, body, parents, d)
	}
}

// spanDeclsShallow finds span declarations directly in this function,
// skipping nested function literals (they are checked on their own visit).
func spanDeclsShallow(pass *Pass, body *ast.BlockStmt) []spanDecl {
	var out []spanDecl
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if !methodOn(fn, obsPkg, "Tracer", "Start") &&
			!methodOn(fn, obsPkg, "Tracer", "StartTrack") {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		out = append(out, spanDecl{obj: obj, ident: id, stmt: as})
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// checkSpanDecl gathers the evidence for one span variable and reports if
// some exit of its scope is uncovered.
func checkSpanDecl(pass *Pass, ftyp *ast.FuncType, body *ast.BlockStmt, parents map[ast.Node]ast.Node, d spanDecl) {
	var endCalls []ast.Node // plain End calls in this function's own body
	safe := false           // defer / capturing closure / escape

	ast.Inspect(body, func(n ast.Node) bool {
		if safe {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != d.obj {
			return true
		}
		use := classifySpanUse(pass, parents, id)
		switch use {
		case useEnd:
			endCalls = append(endCalls, enclosingCall(parents, id))
		case useDeferEnd, useClosureEnd, useEscape:
			safe = true
		}
		return true
	})
	if safe {
		return
	}

	declBlock := blockOf(parents, d.stmt)
	if declBlock == nil {
		declBlock = body
	}
	for _, exit := range scopeExits(ftyp, body, declBlock, d.stmt) {
		if exitCovered(parents, endCalls, exit) {
			continue
		}
		pass.Reportf(d.ident.Pos(),
			"span %s from Tracer.%s is not ended on every path: exit at %s "+
				"has no preceding End/EndErr/EndOutcome (defer the End, end "+
				"it in the completion callback, or end it before this exit)",
			d.ident.Name, startName(pass, d.stmt), pass.Fset.Position(exit.pos))
		return
	}
}

func startName(pass *Pass, stmt ast.Stmt) string {
	as := stmt.(*ast.AssignStmt)
	if fn := calleeFunc(pass.TypesInfo, as.Rhs[0].(*ast.CallExpr)); fn != nil {
		return fn.Name()
	}
	return "Start"
}

type spanUse int

const (
	useOther spanUse = iota
	useEnd
	useDeferEnd
	useClosureEnd
	useEscape
)

// classifySpanUse decides what one identifier occurrence of the span
// variable means for the analysis.
func classifySpanUse(pass *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) spanUse {
	// sp.End(...)? — the parent chain is Ident <- SelectorExpr <- CallExpr.
	if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.X == id {
		if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
			if spanEndMethods[sel.Sel.Name] {
				if underDefer(parents, call) {
					return useDeferEnd
				}
				if underFuncLit(parents, call) {
					return useClosureEnd
				}
				return useEnd
			}
			// sp.SetConn(...), sp.Active() — neutral method call.
			return useOther
		}
		// Selector not called (method value `sp.End` passed around): the
		// receiver escaped with it.
		if spanEndMethods[sel.Sel.Name] {
			return useEscape
		}
		return useOther
	}
	if underFuncLit(parents, id) {
		// Captured by a closure that never ends it: the closure may stash
		// it anywhere — treat as escaped rather than guess.
		return useEscape
	}
	// Walk outward to see where the value flows.
	for n := parents[id]; n != nil; n = parents[n] {
		switch p := n.(type) {
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			return useEscape
		case *ast.AssignStmt:
			for _, r := range p.Rhs {
				if containsNode(r, id) {
					return useEscape
				}
			}
			return useOther
		case *ast.CallExpr:
			// An argument position (not the callee) hands the span to
			// another function — including tracer.Start(sp, ...) child
			// spans; conservatively the holder owns ending it.
			if !containsNode(p.Fun, id) {
				return useEscape
			}
			return useOther
		case ast.Stmt:
			return useOther
		}
	}
	return useOther
}

// exit is one lexical way out of the span variable's scope.
type exitPoint struct {
	node ast.Node
	pos  token.Pos
}

// scopeExits enumerates the lexical exits of the block the span is declared
// in: returns and branch statements after the declaration (outside nested
// function literals), plus falling off the end of the block. Falling off the
// end of the function body is only an exit when the function can actually
// end there (no result list — with results, the compiler already requires a
// return or panic).
func scopeExits(ftyp *ast.FuncType, body *ast.BlockStmt, declBlock ast.Node, declStmt ast.Stmt) []exitPoint {
	var exits []exitPoint
	ast.Inspect(declBlock, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			if s.Pos() > declStmt.End() {
				exits = append(exits, exitPoint{s, s.Pos()})
			}
		case *ast.BranchStmt:
			if s.Tok != token.FALLTHROUGH && s.Pos() > declStmt.End() {
				exits = append(exits, exitPoint{s, s.Pos()})
			}
		}
		return true
	})
	end := declBlock.End()
	if bs, ok := declBlock.(*ast.BlockStmt); ok {
		end = bs.Rbrace
	}
	hasResults := ftyp != nil && ftyp.Results != nil && len(ftyp.Results.List) > 0
	if !(hasResults && declBlock == ast.Node(body)) {
		exits = append(exits, exitPoint{declBlock, end})
	}
	return exits
}

// exitCovered reports whether some recorded End call lexically dominates the
// exit: the call appears before it, in a block that encloses it.
func exitCovered(parents map[ast.Node]ast.Node, endCalls []ast.Node, e exitPoint) bool {
	for _, c := range endCalls {
		if c == nil || c.Pos() >= e.pos {
			continue
		}
		cb := blockOf(parents, c)
		for n := e.node; n != nil; n = parents[n] {
			if n == cb {
				return true
			}
		}
		// The virtual end-of-block exit carries the block itself as node.
		if cb == e.node {
			return true
		}
	}
	return false
}

// --- small tree utilities -------------------------------------------------

// buildParents records each node's parent within root.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// blockOf returns the nearest enclosing statement-list node (block or
// switch/select clause).
func blockOf(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return p
		}
	}
	return nil
}

// enclosingCall returns the CallExpr the identifier's method call belongs to.
func enclosingCall(parents map[ast.Node]ast.Node, id *ast.Ident) ast.Node {
	sel, ok := parents[id].(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	call, _ := parents[sel].(*ast.CallExpr)
	return call
}

// underDefer reports whether n sits directly under a defer statement
// (without an intervening function literal that would defer the End to the
// closure's own execution).
func underDefer(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			// defer func() { sp.End() }() — the DeferStmt is above the
			// FuncLit; keep climbing, a plain closure is handled by the
			// caller as useClosureEnd which is just as safe.
			continue
		}
	}
	return false
}

// underFuncLit reports whether n is inside a function literal nested in the
// function under check.
func underFuncLit(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
