package analysis_test

import (
	"testing"

	"griphon/internal/analysis"
	"griphon/internal/analysis/analysistest"
)

// Each analyzer runs over at least one flagging and one non-flagging fixture.
// The package path a fixture is checked under is part of the test: it is how
// the path-scoped exemptions (sim for wallclock, core for emslayer and
// txnrollback, obs for metricname) get exercised from both sides.

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysis.Wallclock, "testdata/wallclock/flag", "example/fixture")
	analysistest.Run(t, analysis.Wallclock, "testdata/wallclock/clean", "example/fixture")
	analysistest.Run(t, analysis.Wallclock, "testdata/wallclock/sim", "griphon/internal/sim/fixture")
	// The durable state store does real file I/O but earns no clock
	// exemption: journal records carry virtual time or replay diverges.
	analysistest.Run(t, analysis.Wallclock, "testdata/wallclock/journal", "griphon/internal/journal/fixture")
	// The background segment compactor does file I/O on a goroutine but may
	// not pace or age anything off the host clock: retention keys off
	// sequence numbers so replayed directories compact like live ones.
	analysistest.Run(t, analysis.Wallclock, "testdata/wallclock/compactor", "griphon/internal/journal/fixture")
	// sim.Graph node closures run on the virtual clock; choreography code
	// (which lives outside the sim exemption) must not smuggle the host
	// clock into a node body.
	analysistest.Run(t, analysis.Wallclock, "testdata/wallclock/graph", "griphon/internal/core/fixture")
}

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, analysis.Spanpair, "testdata/spanpair/flag", "example/fixture")
	analysistest.Run(t, analysis.Spanpair, "testdata/spanpair/clean", "example/fixture")
}

func TestTxnrollback(t *testing.T) {
	analysistest.Run(t, analysis.Txnrollback, "testdata/txnrollback/flag", "griphon/internal/core")
	analysistest.Run(t, analysis.Txnrollback, "testdata/txnrollback/clean", "griphon/internal/core")
}

func TestEmslayer(t *testing.T) {
	analysistest.Run(t, analysis.Emslayer, "testdata/emslayer/flag", "example/fixture")
	analysistest.Run(t, analysis.Emslayer, "testdata/emslayer/clean", "griphon/internal/core/fixture")
}

func TestMetricname(t *testing.T) {
	analysistest.Run(t, analysis.Metricname, "testdata/metricname/flag", "example/fixture")
	analysistest.Run(t, analysis.Metricname, "testdata/metricname/clean", "example/fixture")
	analysistest.Run(t, analysis.Metricname, "testdata/metricname/obspkg", "griphon/internal/obs/fixture")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "testdata/determinism/flag", "example/fixture")
	analysistest.Run(t, analysis.Determinism, "testdata/determinism/clean", "example/fixture")
}

func TestJournaled(t *testing.T) {
	analysistest.Run(t, analysis.Journaled, "testdata/journaled/flag", "griphon/internal/core")
	analysistest.Run(t, analysis.Journaled, "testdata/journaled/clean", "griphon/internal/core")
}

func TestLeakpath(t *testing.T) {
	analysistest.Run(t, analysis.Leakpath, "testdata/leakpath/flag", "griphon/internal/core")
	analysistest.Run(t, analysis.Leakpath, "testdata/leakpath/clean", "griphon/internal/core")
}

func TestLoopblock(t *testing.T) {
	analysistest.Run(t, analysis.Loopblock, "testdata/loopblock/flag", "griphon/internal/core")
	analysistest.Run(t, analysis.Loopblock, "testdata/loopblock/clean", "griphon/internal/core")
}

func TestSuppress(t *testing.T) {
	analysistest.Run(t, analysis.Suppress, "testdata/suppress/flag", "example/fixture")
	analysistest.Run(t, analysis.Suppress, "testdata/suppress/clean", "example/fixture")
}
