package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The one accepted suppression form is
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. Anything
// else — golangci-style //nolint tags in particular — is itself a diagnostic:
// an unexplained suppression is exactly the kind of silent convention decay
// this suite exists to stop.

const allowPrefix = "lint:allow"

// Allow is one parsed //lint:allow directive.
type Allow struct {
	// Analyzer is the suppressed analyzer's name.
	Analyzer string
	// Reason is the free-text justification (never empty for a valid
	// directive).
	Reason string
	// Line is the 1-based line the directive appears on.
	Line int
	// Pos is the directive comment's position.
	Pos token.Pos
}

// KnownSuppressTargets lists the names //lint:allow may name: every analyzer
// in this suite plus external tools whose suppressions we standardize
// (errcheck, from the repo's earlier //nolint:errcheck comments). Names are
// spelled out rather than derived from All to avoid an initialization cycle
// with the Suppress analyzer itself.
func KnownSuppressTargets() map[string]bool {
	return map[string]bool{
		"determinism": true,
		"errcheck":    true,
		"emslayer":    true,
		"journaled":   true,
		"leakpath":    true,
		"loopblock":   true,
		"metricname":  true,
		"spanpair":    true,
		"suppress":    true,
		"txnrollback": true,
		"wallclock":   true,
	}
}

// parseAllow splits a comment's text into a directive, reporting ok=false if
// the comment is not a lint:allow directive at all. A directive with a
// missing analyzer or reason is returned with those fields empty; the
// suppress analyzer turns that into a diagnostic and the driver ignores it.
func parseAllow(text string) (analyzer, reason string, ok bool) {
	body, found := strings.CutPrefix(text, "//"+allowPrefix)
	if !found {
		return "", "", false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// allowsInFile collects every well-formed //lint:allow directive in f,
// including malformed ones (empty Analyzer/Reason) so callers can validate.
func allowsInFile(fset *token.FileSet, f *ast.File) []Allow {
	var out []Allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			an, reason, ok := parseAllow(c.Text)
			if !ok {
				continue
			}
			out = append(out, Allow{
				Analyzer: an,
				Reason:   reason,
				Line:     fset.Position(c.Pos()).Line,
				Pos:      c.Pos(),
			})
		}
	}
	return out
}

// suppressedLines returns the set of lines on which diagnostics from the
// named analyzer are suppressed in f: a valid directive covers its own line
// and the line below it (for directives placed above a long statement).
func suppressedLines(fset *token.FileSet, f *ast.File, analyzer string, known map[string]bool) map[int]bool {
	lines := map[int]bool{}
	for _, a := range allowsInFile(fset, f) {
		if a.Analyzer != analyzer || a.Reason == "" || !known[a.Analyzer] {
			continue
		}
		lines[a.Line] = true
		lines[a.Line+1] = true
	}
	return lines
}

// Suppressed reports whether diag (from the named analyzer) is covered by a
// valid //lint:allow directive in files.
func Suppressed(fset *token.FileSet, files []*ast.File, analyzer string, diag Diagnostic) bool {
	known := KnownSuppressTargets()
	pos := fset.Position(diag.Pos)
	for _, f := range files {
		ff := fset.File(f.Pos())
		if ff == nil || ff.Name() != pos.Filename {
			continue
		}
		return suppressedLines(fset, f, analyzer, known)[pos.Line]
	}
	return false
}

// Suppress is the directive-hygiene analyzer: it reports every //nolint
// comment (any form) and every //lint:allow directive that names an unknown
// analyzer or omits a reason.
var Suppress = &Analyzer{
	Name: "suppress",
	Doc: "suppressions must be `//lint:allow <analyzer> <reason>`: bare or " +
		"unjustified //nolint comments are reported",
	Run: runSuppress,
}

func runSuppress(pass *Pass) error {
	known := KnownSuppressTargets()
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				// Reject the whole golangci family: //nolint,
				// //nolint:errcheck // reason, // nolint:all, ...
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "nolint") {
					pass.Reportf(c.Pos(),
						"bare nolint suppression; use //lint:allow <analyzer> <reason>")
					continue
				}
				an, reason, ok := parseAllow(text)
				if !ok {
					continue
				}
				switch {
				case an == "":
					pass.Reportf(c.Pos(),
						"lint:allow needs an analyzer and a reason: //lint:allow <analyzer> <reason>")
				case !known[an]:
					pass.Reportf(c.Pos(),
						"lint:allow names unknown analyzer %q (known: %s)",
						an, strings.Join(sortedKeys(known), ", "))
				case reason == "":
					pass.Reportf(c.Pos(),
						"lint:allow %s needs a reason: //lint:allow %s <why this is safe>", an, an)
				}
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
