package fixture

import (
	"slices"
	"sort"
)

// sortedKeys is the canonical fix: a sort sits between every append and the
// return on all paths.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// slicesSorted: the slices package counts as a sort barrier too.
func slicesSorted(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

// counting loops are order-insensitive.
func counting(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// summing reads values but appends nothing.
func summing(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// neverEscapes: the slice is consumed locally and reaches no ordered sink.
func neverEscapes(m map[string]int) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	_ = len(out)
}

// overwritten: a wholesale reassignment erases the tainted order before the
// slice escapes (canonicalize sorts internally).
func overwritten(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	out = canonicalize(out)
	return out
}

func canonicalize(in []string) []string {
	sort.Strings(in)
	return in
}

// bothBranchesSort: every path between the append and the return sorts.
func bothBranchesSort(m map[string]int, desc bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	if desc {
		sort.Sort(sort.Reverse(sort.StringSlice(out)))
	} else {
		sort.Strings(out)
	}
	return out
}
