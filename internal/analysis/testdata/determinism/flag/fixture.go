package fixture

import (
	"encoding/json"
	"sort"
)

// returnSink: the classic shape — collect map keys, return them unsorted.
func returnSink(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order flows into out which reaches a return value`
		out = append(out, k)
	}
	return out
}

// marshalSink: the slice feeds a json encode call outside a return.
func marshalSink(m map[string]bool) []byte {
	var names []string
	for k := range m { // want `map iteration order flows into names which reaches a json encode call`
		names = append(names, k)
	}
	blob, _ := json.Marshal(names)
	return blob
}

// connRec's name marks it as a journal record type: appending into one of
// its fields inside a map range bakes the random order into the WAL.
type connRec struct{ Peers []string }

func recordSink(m map[string]int) connRec {
	var r connRec
	for k := range m { // want `map iteration order flows into r\.Peers which reaches serialized record field r\.Peers`
		r.Peers = append(r.Peers, k)
	}
	return r
}

// listResp is an API response shape: the json tag makes Items ordered output.
type listResp struct {
	Items []string `json:"items"`
}

func taggedFieldSink(m map[string]int, resp *listResp) {
	var items []string
	for k := range m { // want `map iteration order flows into items which reaches serialized record field resp\.Items`
		items = append(items, k)
	}
	resp.Items = items
}

// viaClosure: the append hides inside a local report helper; calling it from
// the range body taints the outer slice all the same.
func viaClosure(m map[string]int) []string {
	var out []string
	report := func(k string) { out = append(out, k) }
	for k := range m { // want `map iteration order flows into out which reaches a return value`
		report(k)
	}
	return out
}

// halfSorted sorts on only one path; the fast path leaks raw map order.
func halfSorted(m map[string]int, fast bool) []string {
	var out []string
	for k := range m { // want `map iteration order flows into out which reaches a return value`
		out = append(out, k)
	}
	if !fast {
		sort.Strings(out)
	}
	return out
}
