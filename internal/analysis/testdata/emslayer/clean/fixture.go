package fixture

import (
	"griphon/internal/ems"
	"griphon/internal/sim"
)

// This fixture is checked under griphon/internal/core/..., where owning EMS
// sessions and enqueuing commands is exactly the job.
func controller(k *sim.Kernel) {
	m := ems.NewManager("roadm-1", k)
	m.Submit(ems.Command{Name: "crs-create"})
}
