package fixture

import (
	"griphon/internal/ems" // want `must not import griphon/internal/ems`
	"griphon/internal/sim"
)

// rogue drives the management plane from outside internal/core: every touch
// point is a boundary violation.
func rogue(k *sim.Kernel, m *ems.Manager) {
	cmd := ems.Command{Name: "crs-create"} // want `constructs ems\.Command`
	m.Submit(cmd)                          // want `calls \(\*ems\.Manager\)\.Submit`
	m.SubmitBatch(nil)                     // want `calls \(\*ems\.Manager\)\.SubmitBatch`
	_ = ems.NewManager("roadm-9", k)       // want `constructs an ems\.Manager`
}
