package fixture

import (
	"errors"

	"griphon/internal/inventory"
)

type Connection struct {
	stable int
	Rate   int
}

type Booking struct{ phase int }

type Controller struct {
	bookings map[string]*Booking
	led      *inventory.Ledger
}

func (c *Controller) journalCommit(reason string) {}

var errEmpty = errors.New("empty id")

func (c *Controller) validate(id string) error {
	if id == "" {
		return errEmpty
	}
	return nil
}

// book commits unconditionally after the mutation.
func (c *Controller) book(id string, b *Booking) {
	c.bookings[id] = b
	c.journalCommit("book")
}

// tryBook's mutation can reach `return err`, but error paths are exempt: the
// caller unwinds, and only the committed path becomes durable.
func (c *Controller) tryBook(id string, b *Booking) error {
	c.bookings[id] = b
	if err := c.validate(id); err != nil {
		return err
	}
	c.journalCommit("book")
	return nil
}

// setStable is covered by its callers: every call site commits afterwards on
// all non-error paths, so the helper itself owes no commit.
func (c *Controller) setStable(conn *Connection, st int) {
	conn.stable = st
}

func (c *Controller) promote(conn *Connection) {
	c.setStable(conn, 3)
	c.journalCommit("promote")
}

// commitAll commits on every path, so calling it is itself a commit point.
func (c *Controller) commitAll() {
	c.journalCommit("all")
}

func (c *Controller) retire(conn *Connection) {
	conn.stable = 4
	c.commitAll()
}

// deferred commits inside the closure, where the callback's own kernel event
// can see it.
func (c *Controller) deferred(conn *Connection) {
	cb := func() {
		conn.Rate = 9
		c.journalCommit("rate")
	}
	cb()
}
