package fixture

// Replay folds journal records back into state by construction; the
// rehydrate file is exempt from the commit obligation (re-committing while
// folding would double-write the WAL).

func (c *Controller) fold(id string, b *Booking) {
	c.bookings[id] = b
}
