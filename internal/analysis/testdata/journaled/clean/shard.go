package fixture

import "griphon/internal/inventory"

// Per-shard journal discipline. The cross-shard coordinator's ledger claims
// are derived state — re-claimed during rehydration from the journaled
// connections and pipes — so Claim/Release carry no commit obligation. The
// quota, by contrast, is journaled by exactly the owning shard.

type Coordinator struct {
	led *inventory.Ledger
}

// claimPipe registers shared capacity to a shard without journaling: the
// claim is rebuilt on replay, never replayed itself.
func (co *Coordinator) claimPipe(shard inventory.Customer, token string) error {
	return co.led.Claim(shard, token)
}

// releasePipe likewise retires derived state only.
func (co *Coordinator) releasePipe(shard inventory.Customer, token string) error {
	return co.led.Release(shard, token)
}

// setQuotaOnOwner lands the quota on the owning shard's controller, which
// commits it to that shard's journal — the durable home of admission state.
func (c *Controller) setQuotaOnOwner(cust inventory.Customer, q inventory.Quota) {
	c.led.SetQuota(cust, q)
	c.journalCommit("quota")
}
