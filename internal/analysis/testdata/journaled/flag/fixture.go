package fixture

import "griphon/internal/inventory"

// The fixture is checked under the griphon/internal/core package path, so
// these mirrors of the controller types carry the real journal obligations.

type Connection struct {
	stable int
	Rate   int
}

type Booking struct{ phase int }

type Controller struct {
	bookings    map[string]*Booking
	pipeCarrier map[string]string
	led         *inventory.Ledger
}

func (c *Controller) journalCommit(reason string) {}

// drop mutates stable state and never commits; with no caller to commit for
// it, the WAL never sees the transition.
func (c *Controller) drop(conn *Connection) {
	conn.stable = 2 // want `durable state mutation \(Connection\.stable\) can reach function exit without a journalCommit`
}

// book commits only on the urgent branch; the quiet path escapes.
func (c *Controller) book(id string, b *Booking, urgent bool) {
	c.bookings[id] = b // want `durable state mutation \(Controller\.bookings entry\) can reach function exit`
	if urgent {
		c.journalCommit("book")
	}
}

// forget deletes a journaled map entry and returns success uncommitted.
func (c *Controller) forget(id string) error {
	delete(c.bookings, id) // want `durable state mutation \(Controller\.bookings delete\) can reach a non-error return`
	return nil
}

// later shows the closure rule: callbacks run in their own kernel event, so
// the outer commit cannot cover a mutation inside the literal.
func (c *Controller) later(conn *Connection) {
	cb := func() {
		conn.Rate = 40 // want `durable state mutation \(Connection\.Rate\) can reach function exit`
	}
	cb()
	c.journalCommit("later")
}

// setQuota reproduces the PR 5 gap: quota changes survive in memory but
// vanish on replay.
func (c *Controller) setQuota(cust inventory.Customer, q inventory.Quota) {
	c.led.SetQuota(cust, q) // want `durable state mutation \(inventory\.Ledger\.SetQuota\) can reach function exit`
}

// advance moves a booking through its lifecycle without journaling it.
func (c *Controller) advance(b *Booking) {
	b.phase = 1 // want `durable state mutation \(Booking\.phase\) can reach function exit`
}
