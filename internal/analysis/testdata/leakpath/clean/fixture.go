package fixture

import "griphon/internal/inventory"

type pool struct{ free []int }

type leakErr string

func (e leakErr) Error() string { return string(e) }

const (
	errExhausted = leakErr("pool exhausted")
	errBadID     = leakErr("bad id")
)

func (p *pool) acquire() (int, error) {
	if len(p.free) == 0 {
		return 0, errExhausted
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return id, nil
}

func (p *pool) release(id int) { p.free = append(p.free, id) }

// allocDefer uses the house idiom: a function-wide deferred Rollback is a
// no-op after Commit and discharges every error path at once.
func allocDefer(p *pool) (int, error) {
	txn := inventory.NewTxn()
	defer txn.Rollback()
	id, err := inventory.Reserve(txn, p.acquire, p.release)
	if err != nil {
		return 0, err
	}
	if id < 0 {
		return 0, errBadID
	}
	txn.Commit()
	return id, nil
}

// allocExplicit settles the txn before every error return by hand.
func allocExplicit(p *pool) (int, error) {
	txn := inventory.NewTxn()
	id, err := inventory.Reserve(txn, p.acquire, p.release)
	if err != nil {
		txn.Rollback()
		return 0, err
	}
	if id < 0 {
		txn.Rollback()
		return 0, errBadID
	}
	txn.Commit()
	return id, nil
}

// claimInto receives a caller-owned txn: the creator's defer/rollback
// discipline covers claims made here.
func claimInto(t *inventory.Txn, p *pool) (int, error) {
	return inventory.Reserve(t, p.acquire, p.release)
}
