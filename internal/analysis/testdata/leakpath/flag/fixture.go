package fixture

import "griphon/internal/inventory"

type pool struct{ free []int }

type leakErr string

func (e leakErr) Error() string { return string(e) }

const (
	errExhausted = leakErr("pool exhausted")
	errBadID     = leakErr("bad id")
)

func (p *pool) acquire() (int, error) {
	if len(p.free) == 0 {
		return 0, errExhausted
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return id, nil
}

func (p *pool) release(id int) { p.free = append(p.free, id) }

// allocate settles the txn on the Reserve failure path but not on the
// validation failure: that return strands the reservation in the pool.
func allocate(p *pool) (int, error) {
	txn := inventory.NewTxn()
	id, err := inventory.Reserve(txn, p.acquire, p.release) // want `claim on txn can reach the error return on line \d+ with the transaction still open`
	if err != nil {
		txn.Rollback()
		return 0, err
	}
	if id < 0 {
		return 0, errBadID
	}
	txn.Commit()
	return id, nil
}

// build hands the txn to a helper (interprocedural claim, one level) and
// then returns the helper's error with the transaction still open.
func build(p *pool) error {
	txn := inventory.NewTxn()
	err := claimPair(txn, p) // want `claim on txn can reach the error return on line \d+`
	if err != nil {
		return err
	}
	txn.Commit()
	return nil
}

// claimPair itself is caller-owned (*Txn parameter): the leak is charged to
// the creator, not here.
func claimPair(t *inventory.Txn, p *pool) error {
	if _, err := inventory.Reserve(t, p.acquire, p.release); err != nil {
		return err
	}
	_, err := inventory.Reserve(t, p.acquire, p.release)
	return err
}
