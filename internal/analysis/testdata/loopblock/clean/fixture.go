package fixture

import "griphon/internal/sim"

// poll uses select-with-default: a non-parking probe is allowed.
func poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// schedule expresses delay as a kernel continuation instead of sleeping or
// re-entering the loop.
func schedule(k *sim.Kernel, fn func()) {
	k.After(5, fn)
}

// chain runs long work as a job with an OnDone continuation.
func chain(k *sim.Kernel, next func(error)) {
	job := k.AfterJob(10, nil)
	job.OnDone(next)
}

// dead receives on a channel only in unreachable code; the analyzer walks
// reachable blocks and stays quiet.
func dead(ch chan int) {
	return
	<-ch
}

// mapWork: plain computation on the loop is fine.
func mapWork(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
