package fixture

import (
	"sync"

	"griphon/internal/sim"
)

// The cross-shard layer sits above the per-shard event loops, not on them:
// methods on ShardSet, Coordinator and shardBroker — including closures
// nested inside them — are exempt from the no-blocking rule.

type ShardSet struct {
	mu      sync.Mutex
	kernels []*sim.Kernel
	events  []int
}

// Drive re-enters shard kernels; it IS the driver, not event-loop code.
func (s *ShardSet) Drive() {
	for _, k := range s.kernels {
		for k.Step() {
		}
	}
}

// DrainParallel forks one goroutine per shard and joins them.
func (s *ShardSet) DrainParallel() {
	var wg sync.WaitGroup
	for _, k := range s.kernels {
		wg.Add(1)
		go func(k *sim.Kernel) {
			defer wg.Done()
			k.Run()
		}(k)
	}
	wg.Wait()
}

// attach installs observers whose nested closures take the merged-log lock;
// position containment inside the exempt method covers them.
func (s *ShardSet) attach(register func(func(int))) {
	register(func(v int) {
		s.mu.Lock()
		s.events = append(s.events, v)
		s.mu.Unlock()
	})
}

type Coordinator struct {
	mu     sync.Mutex
	claims map[string]int
}

func (co *Coordinator) claim(key string, shard int) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	if _, taken := co.claims[key]; taken {
		return false
	}
	co.claims[key] = shard
	return true
}

type shardBroker struct {
	co    *Coordinator
	shard int
}

func (b shardBroker) Claim(key string) bool { return b.co.claim(key, b.shard) }
