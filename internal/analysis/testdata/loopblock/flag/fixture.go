package fixture

import (
	"sync"

	"griphon/internal/sim"
)

// Checked under the griphon/internal/core package path: everything here runs
// inside kernel events on the single-threaded virtual-time loop.

func recv(ch chan int) int {
	return <-ch // want `channel receive blocks the controller event loop`
}

func send(ch chan int, v int) {
	ch <- v // want `channel send blocks the controller event loop`
}

func wait(ch, done chan int) {
	select { // want `select without default blocks the controller event loop`
	case <-ch:
	case <-done:
	}
}

func fork(fn func()) {
	go fn() // want `goroutine launched from controller event-loop code`
}

func locked(mu *sync.Mutex) {
	mu.Lock() // want `sync\.Lock blocks the controller event loop`
	defer mu.Unlock()
}

func reenter(k *sim.Kernel) {
	k.Run() // want `Kernel\.Run re-enters the event loop from inside an event`
}

func stepwise(k *sim.Kernel) {
	for k.Step() { // want `Kernel\.Step re-enters the event loop`
	}
}

func drain(ch chan int) int {
	n := 0
	for v := range ch { // want `ranging over a channel blocks the controller event loop`
		n += v
	}
	return n
}

func deferredWait(wg *sync.WaitGroup) {
	defer wg.Wait() // want `sync\.Wait blocks the controller event loop`
}
