package fixture

import (
	"sync"

	"griphon/internal/sim"
)

// The receiver exemption is scoped to the cross-shard layer by name: the
// same constructs on any other receiver are still event-loop code and still
// flagged.

type perShardController struct {
	mu sync.Mutex
	k  *sim.Kernel
}

func (c *perShardController) locked() {
	c.mu.Lock() // want `sync\.Lock blocks the controller event loop`
	defer c.mu.Unlock()
}

func (c *perShardController) reenter() {
	for c.k.Step() { // want `Kernel\.Step re-enters the event loop`
	}
}

func (c *perShardController) fork(fn func()) {
	go fn() // want `goroutine launched from controller event-loop code`
}

// A closure outside an exempt method gets no exemption either.
func observerOutsideShardSet(mu *sync.Mutex) func() {
	return func() {
		mu.Lock() // want `sync\.Lock blocks the controller event loop`
		mu.Unlock()
	}
}
