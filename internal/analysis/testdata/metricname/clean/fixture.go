package fixture

import "griphon/internal/obs"

// Conforming registrations: constant griphon_ snake_case names, counters end
// _total, histograms carry a unit suffix, label keys are snake_case pairs.
func register(r *obs.Registry) {
	r.Counter("griphon_setups_total", "Connection setups.", "layer", "och")
	r.CounterFunc("griphon_sim_events_total", "Kernel events.", func() float64 { return 0 })
	r.Gauge("griphon_queue_depth", "EMS queue depth.")
	r.GaugeFunc("griphon_connections", "Connections in service.", func() float64 { return 0 })
	r.Histogram("griphon_setup_seconds", "Setup latency.", obs.DefaultLatencyBuckets())
	r.Histogram("griphon_frame_bytes", "Frame sizes.", []float64{64, 1500})
}
