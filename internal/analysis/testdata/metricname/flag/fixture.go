package fixture

import "griphon/internal/obs"

func register(r *obs.Registry, suffix string) {
	r.Counter("requests_"+suffix, "dynamic name")                      // want `must be a string literal`
	r.Counter("setupsTotal", "camel case")                             // want `must be griphon_-prefixed snake_case`
	r.Counter("griphon_setups", "missing suffix")                      // want `counter "griphon_setups" must end in _total`
	r.Gauge("griphon_conns_total", "gauge as counter")                 // want `gauge "griphon_conns_total" must not end in _total`
	r.Histogram("griphon_setup_latency", "no unit", nil)               // want `histogram "griphon_setup_latency" must end in a unit suffix`
	r.Counter("griphon_blocked_total", "bad label", "Reason", "route") // want `label key "Reason" must be lower snake_case`
	r.Counter("griphon_rolls_total", "odd labels", "layer")            // want `label arguments must be key/value pairs`
}
