package fixture

import "griphon/internal/obs"

// Checked under griphon/internal/obs/...: the registry's own package tests
// instrument mechanics with minimal names, and the naming scheme does not
// apply there.
func register(r *obs.Registry) {
	r.Counter("c_total", "mechanics")
	r.Gauge("g", "mechanics")
}
