package fixture

import (
	"errors"

	"griphon/internal/obs"
)

// deferred ends via defer: covered on every path.
func deferred(tr *obs.Tracer, parent obs.SpanRef, fail bool) error {
	sp := tr.Start(parent, "op:setup")
	defer sp.End()
	if fail {
		return errors.New("blocked")
	}
	return nil
}

// callback hands the span to a completion closure — the async EMS pattern:
// the job ends the span when it finishes.
func callback(tr *obs.Tracer, parent obs.SpanRef, onDone func(func(error))) {
	sp := tr.Start(parent, "op:xc")
	onDone(func(err error) { sp.EndErr(err) })
}

// escapes returns the span: ownership (and the duty to End) moves to the
// caller.
func escapes(tr *obs.Tracer, parent obs.SpanRef) obs.SpanRef {
	sp := tr.Start(parent, "op:child")
	return sp
}

// endedOnAllPaths ends explicitly before each exit.
func endedOnAllPaths(tr *obs.Tracer, parent obs.SpanRef, fail bool) error {
	sp := tr.Start(parent, "op:roll")
	if fail {
		sp.EndOutcome("blocked")
		return errors.New("blocked")
	}
	sp.End()
	return nil
}
