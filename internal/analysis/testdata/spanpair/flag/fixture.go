package fixture

import (
	"errors"

	"griphon/internal/obs"
)

// leakOnError ends the span on the happy path only: the early return leaks
// an open span into the trace.
func leakOnError(tr *obs.Tracer, parent obs.SpanRef, fail bool) error {
	sp := tr.Start(parent, "op:flaky") // want `span sp from Tracer\.Start is not ended on every path`
	if fail {
		return errors.New("ems timeout")
	}
	sp.End()
	return nil
}

// neverEnded starts a track span and never closes it at all.
func neverEnded(tr *obs.Tracer, parent obs.SpanRef) bool {
	sp := tr.StartTrack(parent, "op:idle", "ems") // want `span sp from Tracer\.StartTrack is not ended on every path`
	return sp.Active()
}
