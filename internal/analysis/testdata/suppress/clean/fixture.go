package fixture

func emit() error { return nil }

func telemetry() {
	//lint:allow errcheck audit write is best-effort by design
	_ = emit()
}
