package fixture

func emit() error { return nil }

func telemetry() {
	/* want `bare nolint suppression` */ //nolint:errcheck
	_ = emit()

	/* want `bare nolint suppression` */ // nolint: best effort
	_ = emit()

	/* want `lint:allow names unknown analyzer "deadlock"` */ //lint:allow deadlock held across both pools
	_ = emit()

	/* want `lint:allow errcheck needs a reason` */ //lint:allow errcheck
	_ = emit()

	/* want `needs an analyzer and a reason` */ //lint:allow
	_ = emit()
}
