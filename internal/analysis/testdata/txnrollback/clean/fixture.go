package fixture

import "griphon/internal/inventory"

type pool struct{ free []int }

func (p *pool) Acquire() (int, error) {
	if len(p.free) == 0 {
		return 0, errExhausted
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return id, nil
}

func (p *pool) Release(id int) { p.free = append(p.free, id) }

type poolError string

func (e poolError) Error() string { return string(e) }

const errExhausted = poolError("pool exhausted")

// reserveProperly threads a live Txn and registers the undo.
func reserveProperly(t *inventory.Txn, p *pool) (int, error) {
	return inventory.Reserve(t, p.Acquire, p.Release)
}

// txnCoordinated drives a whole multi-step setup through one transaction;
// rollback, not hand-sequenced releases, undoes partial work.
func txnCoordinated(p *pool) error {
	t := inventory.NewTxn()
	id, err := inventory.Reserve(t, p.Acquire, p.Release)
	if err != nil {
		t.Rollback()
		return err
	}
	if err := push(id); err != nil {
		t.Rollback()
		return err
	}
	t.Commit()
	return nil
}

// coordinated has the Txn in play, so a direct error-path Release is taken
// to be deliberate coordination with the transaction.
func coordinated(t *inventory.Txn, p *pool, id int) error {
	if err := push(id); err != nil {
		p.Release(id)
		return err
	}
	return t.Do(func() error { return nil }, func() { p.Release(id) })
}

func push(int) error { return nil }
