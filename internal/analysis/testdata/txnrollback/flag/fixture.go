package fixture

import "griphon/internal/inventory"

type pool struct{ free []int }

func (p *pool) Acquire() (int, error) {
	if len(p.free) == 0 {
		return 0, errExhausted
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return id, nil
}

func (p *pool) Release(id int) { p.free = append(p.free, id) }

type poolError string

func (e poolError) Error() string { return string(e) }

const errExhausted = poolError("pool exhausted")

// nilTxn reserves outside any transaction: nothing can roll it back.
func nilTxn(p *pool) (int, error) {
	return inventory.Reserve(nil, p.Acquire, p.Release) // want `inventory\.Reserve with a nil Txn`
}

// nilRelease registers no rollback: a leak the moment a later step fails.
func nilRelease(t *inventory.Txn, p *pool) (int, error) {
	return inventory.Reserve(t, p.Acquire, nil) // want `inventory\.Reserve with a nil release closure`
}

// handRolledUndo sequences its own undo on the error path instead of letting
// a Txn keep the LIFO order.
func handRolledUndo(p *pool) error {
	id, err := p.Acquire()
	if err != nil {
		return err
	}
	if err := push(id); err != nil {
		p.Release(id) // want `Release on an error path outside a Txn`
		return err
	}
	return nil
}

func push(int) error { return nil }
