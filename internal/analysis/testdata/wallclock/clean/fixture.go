package fixture

import "time"

// Duration arithmetic and the unit constants are fine: sim.Duration is an
// alias of time.Duration precisely so latencies read naturally. Only reading
// the clock is banned.
const pollInterval = 250 * time.Millisecond

func totalLatency(ds []time.Duration) time.Duration {
	total := pollInterval
	for _, d := range ds {
		total += d
	}
	return total
}

func operatorStopwatch() time.Time {
	//lint:allow wallclock operator-facing stopwatch, measured outside the simulation
	return time.Now()
}
