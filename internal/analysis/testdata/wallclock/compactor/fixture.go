package fixture

import (
	"os"
	"sync"
	"time"
)

// This fixture is checked under griphon/internal/journal/..., the shape of
// the background WAL compactor. The compactor goroutine unlinks sealed
// segments off the commit path; that is pure file I/O and needs no clock at
// all. What the analyzer must keep out is the tempting pattern of pacing or
// debouncing the compactor with host-clock timers — retention decisions must
// key off sequence numbers in the records, never elapsed host time, or a
// replayed directory would compact differently than the live one did.

// compactCovered is the legal shape: claim the covered segments under the
// lock, unlink on a goroutine, no clock anywhere.
func compactCovered(mu *sync.Mutex, wg *sync.WaitGroup, covered []string) {
	mu.Lock()
	claimed := append([]string(nil), covered...)
	mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, path := range claimed {
			_ = os.Remove(path)
		}
	}()
}

// debounceCompaction is the bug: pacing the compactor off the host clock
// makes on-disk layout depend on scheduling, not on the journal's contents.
func debounceCompaction(pending <-chan string) {
	for {
		select {
		case path := <-pending:
			_ = os.Remove(path)
		case <-time.After(time.Second): // want `time\.After reads the wall clock`
			return
		}
	}
}

// ageBasedRetention keeps segments younger than a host-clock horizon — the
// same bug in accounting form: two replays of one directory would disagree.
func ageBasedRetention(modTime time.Time) bool {
	return time.Since(modTime) < time.Hour // want `time\.Since reads the wall clock`
}
