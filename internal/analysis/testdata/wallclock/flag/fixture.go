package fixture

import (
	"math/rand" // want `import of math/rand outside griphon/internal/sim`
	"time"
)

// wall samples the host clock three ways; every one of them makes a run
// unreplayable.
func wall() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	_ = rand.Int()
	return time.Since(start) // want `time\.Since reads the wall clock`
}
