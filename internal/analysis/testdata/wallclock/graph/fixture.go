package fixture

import (
	"time"

	"griphon/internal/sim"
)

// Graph-choreography code lives OUTSIDE internal/sim, so the wallclock
// exemption does not cover it: node run closures execute on the virtual
// clock and must never read the host one — a single time.Now inside a node
// would differ between a live run and a journal replay.
func buildSetup(k *sim.Kernel) *sim.Job {
	g := sim.NewGraph(k)
	a := g.Node("fxc-a", func() *sim.Job {
		return k.AfterJob(1500*time.Millisecond, nil) // duration literals are fine
	})
	b := g.Node("stamp", func() *sim.Job {
		_ = time.Now() // want `time\.Now reads the wall clock`
		return k.AfterJob(time.Second, nil)
	})
	g.Edge(a, b)
	return g.Go()
}
