package fixture

import (
	"os"
	"time"
)

// This fixture is checked under griphon/internal/journal/..., the durable
// state store. Real file I/O is fine — durability needs the filesystem — but
// the package gets no wall-clock exemption: journal entries are stamped with
// the *virtual* time carried in the records, never the host clock, or a
// recovered run would diverge from the run that wrote the log.

// appendFrame is the legal shape: os calls plus a virtual timestamp the
// caller read from the kernel.
func appendFrame(f *os.File, virtualNow int64, payload []byte) error {
	if _, err := f.Write(payload); err != nil {
		return err
	}
	_ = virtualNow
	return f.Sync()
}

// stampWithHostClock is the bug the analyzer exists to catch in this
// package: a host-clock stamp in a durable record.
func stampWithHostClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// retryBackoff blocking on the host clock would stall the single-threaded
// kernel and desynchronize replay.
func retryBackoff() {
	time.Sleep(10 * time.Millisecond) // want `time\.Sleep reads the wall clock`
}
