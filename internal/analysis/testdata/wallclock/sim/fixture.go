package fixture

import "time"

// This fixture is checked under griphon/internal/sim/..., the one subtree
// where the wall clock is legal: the virtual-time kernel (and its stopwatch
// helpers) must be able to read the host clock to exist at all.
func hostNow() time.Time { return time.Now() }
