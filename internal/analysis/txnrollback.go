package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

const (
	inventoryPkg = "griphon/internal/inventory"
	corePkg      = "griphon/internal/core"
)

// Txnrollback enforces the reservation discipline from DESIGN.md §5 / paper
// §2.2: the resource database is only mutated through reversible steps. A
// connection setup reserves transponders, regen chains, wavelengths, FXC
// ports and ODU slots; any step can fail, and everything already taken must
// come back. Concretely:
//
//   - inventory.Reserve must be given a live transaction (not a nil *Txn)
//     and a non-nil release closure — a Reserve with no release is a leak
//     the moment any later step fails;
//   - in internal/core, a resource release on an `if err != nil` path that
//     is not a transaction rollback is reported: the release belongs inside
//     the Txn as a rollback closure, where it runs in LIFO order with every
//     other undo instead of being hand-sequenced.
var Txnrollback = &Analyzer{
	Name: "txnrollback",
	Doc: "inventory.Reserve needs a live Txn and a non-nil rollback closure; " +
		"error-path releases outside a Txn are reported",
	Run: runTxnrollback,
}

func runTxnrollback(pass *Pass) error {
	path := NormalizePkgPath(pass.Pkg.Path())
	if path == inventoryPkg {
		// The transaction mechanics themselves (and their tests) exercise
		// nil undos and direct releases on purpose.
		return nil
	}
	for _, f := range pass.Files {
		checkReserveCalls(pass, f)
		if path == corePkg && !inTestFile(pass.Fset, f.Pos()) {
			checkErrorPathReleases(pass, f)
		}
	}
	return nil
}

// checkReserveCalls validates every inventory.Reserve call site.
func checkReserveCalls(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Name() != "Reserve" ||
			fn.Pkg() == nil || fn.Pkg().Path() != inventoryPkg {
			return true
		}
		// Reserve[T](txn, alloc, release): a method named Reserve on some
		// other type (spectrum pools, ledgers) is not this invariant.
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true
		}
		if len(call.Args) != 3 {
			return true
		}
		if isNil(pass.TypesInfo, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(),
				"inventory.Reserve with a nil Txn: reservations must run inside "+
					"a live transaction so they can be rolled back")
		}
		if isNil(pass.TypesInfo, call.Args[2]) {
			pass.Reportf(call.Args[2].Pos(),
				"inventory.Reserve with a nil release closure: every reservation "+
					"must register its rollback")
		}
		return true
	})
}

// errNilCond reports whether cond is `<errish> != nil`.
func errNilCond(info *types.Info, cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" {
		return false
	}
	var val ast.Expr
	switch {
	case isNil(info, bin.Y):
		val = bin.X
	case isNil(info, bin.X):
		val = bin.Y
	default:
		return false
	}
	t := info.Types[ast.Unparen(val)].Type
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface()) || t.String() == "error"
}

var errIface *types.Interface

func errorInterface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}

// releaseMethodNames are the resource-returning methods the error-path check
// looks for. They return capacity to a pool or ledger; on a failure path
// that return must be a Txn rollback, not a hand-written call.
func isReleaseName(name string) bool {
	return name == "Release" || name == "ReleasePath" || name == "ReleaseSlots" ||
		name == "ReleaseShared" || strings.HasPrefix(name, "Release")
}

// checkErrorPathReleases walks core functions looking for Release* calls
// lexically inside `if err != nil` blocks that are not themselves rollback
// closures and whose enclosing function has no *inventory.Txn in play.
func checkErrorPathReleases(pass *Pass, f *ast.File) {
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !isReleaseName(fn.Name()) {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
			return true
		}
		if !inErrPath(pass, stack) || txnInPlay(pass, stack) {
			return true
		}
		pass.Reportf(call.Pos(),
			"%s on an error path outside a Txn: register the release as a "+
				"rollback closure (inventory.Reserve / Txn.Do) so undo order "+
				"stays LIFO", fn.Name())
		return true
	}
	ast.Inspect(f, visit)
}

// inErrPath reports whether the innermost enclosing branch of the node stack
// is the then-block of an `if err != nil`.
func inErrPath(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			// Stop at function boundaries: a closure declared on an error
			// path is not itself error-path code (it may be a deferred
			// cleanup or a scheduled callback).
			if _, isFn := stack[i].(*ast.FuncLit); isFn {
				return false
			}
			continue
		}
		// Only the then-branch is the error path; the node must be inside
		// Body, not Else or Cond.
		if !errNilCond(pass.TypesInfo, ifs.Cond) {
			continue
		}
		if i+1 < len(stack) && stack[i+1] == ifs.Body {
			return true
		}
	}
	return false
}

// txnInPlay reports whether any enclosing function in the stack declares,
// receives or uses an *inventory.Txn — in that case the release is assumed
// to be coordinated with the transaction (or to *be* its rollback closure).
func txnInPlay(pass *Pass, stack []ast.Node) bool {
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fnUsesTxn(pass, fn.Type, fn.Body) {
				return true
			}
		case *ast.FuncLit:
			if fnUsesTxn(pass, fn.Type, fn.Body) {
				return true
			}
		}
	}
	return false
}

func fnUsesTxn(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) bool {
	if ft.Params != nil {
		for _, fld := range ft.Params.List {
			if isTxnType(pass.TypesInfo.Types[fld.Type].Type) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != nil && isTxnType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isTxnType(t types.Type) bool {
	n, ok := namedType(t)
	return ok && n.Obj().Name() == "Txn" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == inventoryPkg
}
