package analysis

import (
	"go/ast"
	"strconv"
)

// simPkg is the one package allowed to touch the wall clock and the global
// math/rand source: the virtual-time kernel itself.
const simPkg = "griphon/internal/sim"

// wallClockFuncs are the package-level time functions that read or wait on
// the wall clock. time.Duration arithmetic and the unit constants are fine —
// sim.Duration is an alias of time.Duration precisely so latencies read
// naturally — but sampling the host clock breaks the determinism that makes
// TestTraceTimeline's nanosecond-exact restoration phases (and bit-identical
// replays of a simulated month) possible.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Since":     true,
	"Until":     true,
}

// bannedRandImports are the global-source random packages. Every kernel owns
// one seeded sim.Rand; package-global rand would make runs depend on import
// order and process state.
var bannedRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Wallclock enforces virtual-time determinism: no wall-clock reads or global
// randomness outside internal/sim.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "no time.Now/Sleep/After/Since (or math/rand imports) outside " +
		"internal/sim: all time and randomness flow through the virtual kernel",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if PathIsOrUnder(pass.Pkg.Path(), simPkg) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if bannedRandImports[path] {
				pass.Reportf(imp.Pos(),
					"import of %s outside %s: use the kernel's seeded sim.Rand "+
						"(k.Rand()) so runs stay replayable", path, simPkg)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := funcFromUse(pass.TypesInfo, sel.Sel, "time")
			if fn == nil || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock outside %s: use the sim.Kernel "+
					"virtual clock (k.Now, k.After) or sim.NewStopwatch for "+
					"operator-facing wall timings", fn.Name(), simPkg)
			return true
		})
	}
	return nil
}
