package api

import (
	"net/http/httptest"
	"strings"
	"testing"

	"griphon"
)

func newTestServer(t *testing.T) (*Client, *griphon.Network) {
	t.Helper()
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(net).Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), net
}

func TestConnectDisconnectRoundTrip(t *testing.T) {
	c, _ := newTestServer(t)
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Connections) != 1 {
		t.Fatalf("connections = %d", len(resp.Connections))
	}
	conn := resp.Connections[0]
	if conn.State != "active" || conn.Layer != "dwdm" || conn.Rate != "10G" {
		t.Errorf("conn = %+v", conn)
	}
	if conn.SetupSeconds < 55 || conn.SetupSeconds > 70 {
		t.Errorf("setup = %v s", conn.SetupSeconds)
	}
	if conn.Route == "" {
		t.Error("route missing")
	}

	list, err := c.Connections("acme")
	if err != nil || len(list) != 1 {
		t.Fatalf("list = %v, %v", list, err)
	}
	if err := c.Disconnect("acme", conn.ID); err != nil {
		t.Fatal(err)
	}
	list, _ = c.Connections("acme")
	if len(list) != 1 || list[0].State != "released" {
		t.Errorf("after disconnect: %+v", list)
	}
}

func TestConnectComposite(t *testing.T) {
	c, _ := newTestServer(t)
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-B", Rate: "12G"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Connections) != 3 {
		t.Fatalf("composite components = %d, want 3", len(resp.Connections))
	}
}

func TestConnectValidation(t *testing.T) {
	c, _ := newTestServer(t)
	if _, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-B", Rate: "bogus"}); err == nil {
		t.Error("bogus rate accepted")
	}
	if _, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-B", Rate: "10G", Protection: "wat"}); err == nil {
		t.Error("bogus protection accepted")
	}
	if _, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-Z", Rate: "10G"}); err == nil {
		t.Error("unknown site accepted")
	}
	// Cross-customer disconnect refused.
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-B", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Disconnect("evil", resp.Connections[0].ID); err == nil {
		t.Error("cross-customer disconnect accepted")
	} else if !strings.Contains(err.Error(), "belongs to") {
		t.Errorf("isolation error should mention ownership: %v", err)
	}
}

func TestCutRepairAndEvents(t *testing.T) {
	c, net := newTestServer(t)
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Connections[0].ID
	link := strings.Split(resp.Connections[0].Route, "-")
	_ = link
	route := resp.Connections[0].Route // e.g. "I-IV"
	if err := c.Cut(route); err != nil {
		t.Fatal(err)
	}
	// Advance so restoration completes.
	if err := c.Advance("10m"); err != nil {
		t.Fatal(err)
	}
	list, _ := c.Connections("acme")
	if list[0].State != "active" || list[0].Restorations != 1 {
		t.Errorf("after cut+advance: %+v", list[0])
	}
	if err := c.Repair(route); err != nil {
		t.Fatal(err)
	}
	if err := c.Repair(route); err == nil {
		t.Error("double repair accepted")
	}
	evs, err := c.Events(id)
	if err != nil || len(evs) < 3 {
		t.Fatalf("events = %d, %v", len(evs), err)
	}
	all, err := c.Events("")
	if err != nil || len(all) < len(evs) {
		t.Fatalf("all events = %d, %v", len(all), err)
	}
	_ = net
}

func TestRollAndRegroom(t *testing.T) {
	c, _ := newTestServer(t)
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Connections[0].ID
	oldRoute := resp.Connections[0].Route
	rolled, err := c.Roll("acme", id)
	if err != nil {
		t.Fatal(err)
	}
	if rolled.Route == oldRoute {
		t.Error("roll did not change route")
	}
	if rolled.Rolls != 1 {
		t.Errorf("rolls = %d", rolled.Rolls)
	}
	rg, err := c.Regroom("acme", id)
	if err != nil {
		t.Fatal(err)
	}
	if !rg.Moved || rg.Connection.Route != oldRoute {
		t.Errorf("regroom = %+v", rg)
	}
}

func TestStatsAndTopology(t *testing.T) {
	c, _ := newTestServer(t)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.OTsTotal == 0 {
		t.Errorf("stats = %+v", st)
	}
	topoJSON, err := c.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(topoJSON.PoPs) != 4 || len(topoJSON.Fibers) != 5 || len(topoJSON.Sites) != 3 {
		t.Errorf("topology = %+v", topoJSON)
	}
}

func TestMaintenanceEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Maintenance(resp.Connections[0].Route, "1m", "1h")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Finished || len(m.Rolled) != 1 {
		t.Errorf("maintenance = %+v", m)
	}
	if _, err := c.Maintenance("nope", "1m", "1h"); err == nil {
		t.Error("unknown link accepted")
	}
	if _, err := c.Maintenance(resp.Connections[0].Route, "bogus", "1h"); err == nil {
		t.Error("bogus duration accepted")
	}
}

func TestAdvanceValidation(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.Advance("wat"); err == nil {
		t.Error("bogus duration accepted")
	}
	if err := c.Advance("-5s"); err == nil {
		t.Error("negative duration accepted")
	}
	if err := c.Advance("1h"); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Stats()
	if st.Now != "1h0m0s" {
		t.Errorf("now = %s", st.Now)
	}
}

func TestConnectionsRequiresCustomer(t *testing.T) {
	c, _ := newTestServer(t)
	if _, err := c.Connections(""); err == nil {
		t.Error("missing customer accepted")
	}
}

func TestAdjustEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-B", Rate: "1G"})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Connections[0].ID
	adjusted, err := c.Adjust("acme", id, "2.5G")
	if err != nil {
		t.Fatal(err)
	}
	if adjusted.Rate != "2.5G" {
		t.Errorf("rate = %s", adjusted.Rate)
	}
	if _, err := c.Adjust("acme", id, "bogus"); err == nil {
		t.Error("bogus rate accepted")
	}
	if _, err := c.Adjust("evil", id, "1G"); err == nil {
		t.Error("cross-customer adjust accepted")
	}
	if _, err := c.Adjust("acme", id, "10G"); err == nil {
		t.Error("layer-crossing adjust accepted")
	}
}

func TestDefragEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	// Fragment: 2 wavelengths, drop the first.
	r1, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-B", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-B", Rate: "10G"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Disconnect("acme", r1.Connections[0].ID); err != nil {
		t.Fatal(err)
	}
	d, err := c.Defrag()
	if err != nil {
		t.Fatal(err)
	}
	if d.Retuned != 1 || d.MaxChannelNow != 1 {
		t.Errorf("defrag = %+v", d)
	}
}

func TestBillEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	if _, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance("2h"); err != nil {
		t.Fatal(err)
	}
	bill, err := c.Bill("acme")
	if err != nil {
		t.Fatal(err)
	}
	if bill.GbHours < 19.9 || bill.GbHours > 20.1 {
		t.Errorf("bill = %.2f Gb-h, want ~20", bill.GbHours)
	}
	if _, err := c.Bill(""); err == nil {
		t.Error("missing customer accepted")
	}
}
