package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Client talks to a griphond server.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the given base URL (e.g.
// "http://localhost:8580").
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{}}
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr ErrorJSON
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("griphond: %s", apiErr.Error)
		}
		return fmt.Errorf("griphond: HTTP %d: %s", resp.StatusCode, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Connect provisions a connection (composites return several components).
func (c *Client) Connect(req ConnectRequest) (ConnectResponse, error) {
	var out ConnectResponse
	err := c.do(http.MethodPost, "/api/v1/connect", req, &out)
	return out, err
}

// Disconnect tears a connection down.
func (c *Client) Disconnect(customer, id string) error {
	return c.do(http.MethodPost, "/api/v1/disconnect", DisconnectRequest{Customer: customer, ID: id}, nil)
}

// Connections lists a customer's connections.
func (c *Client) Connections(customer string) ([]ConnectionJSON, error) {
	var out ConnectResponse
	err := c.do(http.MethodGet, "/api/v1/connections?customer="+url.QueryEscape(customer), nil, &out)
	return out.Connections, err
}

// Roll triggers bridge-and-roll on a connection.
func (c *Client) Roll(customer, id string) (ConnectionJSON, error) {
	var out ConnectionJSON
	err := c.do(http.MethodPost, "/api/v1/roll", RollRequest{Customer: customer, ID: id}, &out)
	return out, err
}

// Regroom re-grooms a connection if a better path exists.
func (c *Client) Regroom(customer, id string) (RegroomResponse, error) {
	var out RegroomResponse
	err := c.do(http.MethodPost, "/api/v1/regroom", RollRequest{Customer: customer, ID: id}, &out)
	return out, err
}

// Adjust resizes a connection in place.
func (c *Client) Adjust(customer, id, rate string) (ConnectionJSON, error) {
	var out ConnectionJSON
	err := c.do(http.MethodPost, "/api/v1/adjust", AdjustRequest{Customer: customer, ID: id, Rate: rate}, &out)
	return out, err
}

// Defrag runs a spectrum-defragmentation sweep.
func (c *Client) Defrag() (DefragResponse, error) {
	var out DefragResponse
	err := c.do(http.MethodPost, "/api/v1/defrag", struct{}{}, &out)
	return out, err
}

// Cut fails a fiber link.
func (c *Client) Cut(link string) error {
	return c.do(http.MethodPost, "/api/v1/cut", LinkRequest{Link: link}, nil)
}

// Repair returns a fiber link to service.
func (c *Client) Repair(link string) error {
	return c.do(http.MethodPost, "/api/v1/repair", LinkRequest{Link: link}, nil)
}

// Maintenance schedules (and plays out) a maintenance window.
func (c *Client) Maintenance(link, in, window string) (MaintenanceJSON, error) {
	var out MaintenanceJSON
	err := c.do(http.MethodPost, "/api/v1/maintenance", LinkRequest{Link: link, In: in, Window: window}, &out)
	return out, err
}

// Advance moves the virtual clock.
func (c *Client) Advance(d string) error {
	return c.do(http.MethodPost, "/api/v1/advance", AdvanceRequest{Duration: d}, nil)
}

// Stats fetches a resource snapshot.
func (c *Client) Stats() (StatsJSON, error) {
	var out StatsJSON
	err := c.do(http.MethodGet, "/api/v1/stats", nil, &out)
	return out, err
}

// Shards describes the control-plane sharding and per-shard load.
func (c *Client) Shards() (ShardsResponse, error) {
	var out ShardsResponse
	err := c.do(http.MethodGet, "/api/v1/shards", nil, &out)
	return out, err
}

// Events fetches the audit log, optionally filtered by connection.
func (c *Client) Events(conn string) ([]EventJSON, error) {
	path := "/api/v1/events"
	if conn != "" {
		path += "?conn=" + url.QueryEscape(conn)
	}
	var out []EventJSON
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// EventsSince fetches audit-log entries after the cursor plus the cursor to
// resume from.
func (c *Client) EventsSince(since int) (EventsPage, error) {
	var out EventsPage
	err := c.do(http.MethodGet, fmt.Sprintf("/api/v1/events?since=%d", since), nil, &out)
	return out, err
}

// Alarms fetches the correlated alarm stream after the seq cursor, filtered
// to one customer's view ("" = operator).
func (c *Client) Alarms(customer string, since uint64) (AlarmsResponse, error) {
	path := fmt.Sprintf("/api/v1/alarms?since=%d", since)
	if customer != "" {
		path += "&customer=" + url.QueryEscape(customer)
	}
	var out AlarmsResponse
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// SLA fetches a customer's availability report ("" = operator view).
func (c *Client) SLA(customer string) (SLAJSON, error) {
	path := "/api/v1/sla"
	if customer != "" {
		path += "?customer=" + url.QueryEscape(customer)
	}
	var out SLAJSON
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Bill fetches a customer's cumulative usage.
func (c *Client) Bill(customer string) (BillJSON, error) {
	var out BillJSON
	err := c.do(http.MethodGet, "/api/v1/bill?customer="+url.QueryEscape(customer), nil, &out)
	return out, err
}

// raw fetches a non-JSON endpoint body verbatim.
func (c *Client) raw(path string) ([]byte, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr ErrorJSON
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("griphond: %s", apiErr.Error)
		}
		return nil, fmt.Errorf("griphond: HTTP %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

// Metrics fetches the instrument registry in Prometheus text format.
func (c *Client) Metrics() (string, error) {
	body, err := c.raw("/api/v1/metrics")
	return string(body), err
}

// Trace fetches the recorded spans. format is "" or "chrome" for Chrome
// trace_event JSON, "jsonl" for JSON Lines. Fails when the server runs
// without tracing.
func (c *Client) Trace(format string) ([]byte, error) {
	path := "/api/v1/trace"
	if format != "" {
		path += "?format=" + url.QueryEscape(format)
	}
	return c.raw(path)
}

// Topology fetches the network description.
func (c *Client) Topology() (TopologyJSON, error) {
	var out TopologyJSON
	err := c.do(http.MethodGet, "/api/v1/topology", nil, &out)
	return out, err
}
