package api

// Response-path machinery: pooled encode buffers, pre-encoded static bodies,
// and a version-invalidated GET response cache. The API fronts a
// single-threaded simulation, so every byte saved on the marshal path is
// throughput; the benchmark harness (griphon-bench -serve) drives this path
// over real HTTP and gates it in CI. WithLegacyEncoding preserves the
// original allocate-per-response behavior so the benchmark compares the two
// honestly inside one binary.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Option tunes a Server at construction.
type Option func(*Server)

// WithLegacyEncoding restores the pre-optimization response path: one
// json.Marshal allocation per response, no buffer pooling, no static bodies,
// no GET cache. It exists so the serve benchmark can measure the fast path
// against the original inside the same binary.
func WithLegacyEncoding() Option {
	return func(s *Server) { s.legacy = true }
}

// encState is a pooled response encoder: a reusable buffer with a JSON
// encoder bound to it. json.Encoder.Encode emits exactly json.Marshal's bytes
// plus a trailing newline — the same wire format the marshal path produced.
type encState struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &encState{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// bufPool holds request-body read buffers.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Pre-encoded bodies for the fixed-shape mutation responses.
var (
	bodyReleased = []byte("{\"status\":\"released\"}\n")
	bodyCut      = []byte("{\"status\":\"cut\"}\n")
	bodyRepaired = []byte("{\"status\":\"repaired\"}\n")
)

// jsonContentType is the shared Content-Type header value — assigned, never
// mutated, so hot responses skip the per-call slice Header().Set allocates.
var jsonContentType = []string{"application/json"}

// writeStatic sends a pre-encoded JSON body. Under legacy encoding it falls
// back to marshaling the equivalent map, as the original handlers did.
func (s *Server) writeStatic(w http.ResponseWriter, body []byte, legacyStatus string) {
	if s.legacy {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": legacyStatus})
		return
	}
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		s.encodeErrs.Inc() // client gone; record it and move on
	}
}

// encode renders v into e's buffer (reset first).
func (s *Server) encode(e *encState, v any) error {
	if s.testEncodeErr != nil {
		if err := s.testEncodeErr(v); err != nil {
			return err
		}
	}
	e.buf.Reset()
	if s.legacy {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		e.buf.Write(b) //lint:allow errcheck bytes.Buffer never errors
		e.buf.WriteByte('\n')
		return nil
	}
	return e.enc.Encode(v)
}

// cachedResp is one cached GET response.
type cachedResp struct {
	status int
	ctype  string
	body   []byte
}

// respCache memoizes GET responses keyed by request URI, invalidated whole
// whenever any mutation lands. The version counter closes the race between a
// GET rendering under the server mutex and a concurrent mutation: a response
// computed against version N is only stored if the cache is still at N.
type respCache struct {
	mu      sync.Mutex
	version uint64
	entries map[string]cachedResp
}

// maxCacheEntries bounds the cache between invalidations; distinct query
// strings past the cap simply go uncached.
const maxCacheEntries = 1024

func (c *respCache) snapshot() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

func (c *respCache) get(key string) (cachedResp, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[key]
	return r, ok
}

func (c *respCache) putIfVersion(key string, version uint64, r cachedResp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != version || len(c.entries) >= maxCacheEntries {
		return
	}
	if c.entries == nil {
		c.entries = make(map[string]cachedResp)
	}
	c.entries[key] = r
}

// bump invalidates everything: the state changed.
func (c *respCache) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	c.entries = nil
}

// cacheable reports whether a GET path's response is a pure function of the
// committed state. The metrics and trace endpoints are excluded: metrics move
// on scrapes themselves (cache counters, scrape timestamps) and traces
// accumulate outside the mutation path.
func cacheable(path string) bool {
	switch path {
	case "/api/v1/metrics", "/api/v1/trace":
		return false
	}
	return true
}

// teeWriter duplicates a handler's response into a buffer so a cache fill
// costs no extra render.
type teeWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (t *teeWriter) WriteHeader(status int) {
	t.status = status
	t.ResponseWriter.WriteHeader(status)
}

func (t *teeWriter) Write(p []byte) (int, error) {
	t.buf.Write(p) //lint:allow errcheck bytes.Buffer never errors
	return t.ResponseWriter.Write(p)
}

// withCache wraps the routing table: GETs on cacheable paths are served from
// (and fill) the response cache; every POST invalidates it.
func (s *Server) withCache(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			// Deferred so a handler that panics mid-mutation (net/http
			// recovers per connection) still invalidates: the state may have
			// changed before the panic.
			defer s.cache.bump()
			next.ServeHTTP(w, r)
			return
		}
		if s.legacy || r.Method != http.MethodGet || !cacheable(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		key := r.URL.RequestURI()
		if resp, ok := s.cache.get(key); ok {
			s.cacheHits.Inc()
			w.Header().Set("Content-Type", resp.ctype)
			w.WriteHeader(resp.status)
			if _, err := w.Write(resp.body); err != nil {
				s.encodeErrs.Inc()
			}
			return
		}
		s.cacheMisses.Inc()
		version := s.cache.snapshot()
		tee := &teeWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(tee, r)
		if tee.status == http.StatusOK {
			s.cache.putIfVersion(key, version, cachedResp{
				status: tee.status,
				ctype:  tee.Header().Get("Content-Type"),
				body:   append([]byte(nil), tee.buf.Bytes()...),
			})
		}
	})
}

// writeJSON encodes v fully before touching the ResponseWriter, so an encode
// failure still yields a well-formed 500 instead of a truncated 200 body.
// If even the error envelope refuses to encode, the terminal fallback is
// plain text — the response is never silently empty. Encode and write
// failures both count in griphon_api_encode_errors_total.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	e := encPool.Get().(*encState)
	defer encPool.Put(e)
	if err := s.encode(e, v); err != nil {
		s.encodeErrs.Inc()
		if encErr := s.encode(e, ErrorJSON{Error: fmt.Sprintf("encoding response: %s", err)}); encErr != nil {
			// Terminal fallback: the error envelope itself would not encode.
			s.encodeErrs.Inc()
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, "encoding response: %s\n", err) //lint:allow errcheck best effort on the terminal error path
			return
		}
		status = http.StatusInternalServerError
	}
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(status)
	if _, err := w.Write(e.buf.Bytes()); err != nil {
		s.encodeErrs.Inc() // client gone; record it and move on
	}
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, ErrorJSON{Error: err.Error()})
}

// readJSON decodes the request body through a pooled buffer, keeping the
// strict unknown-field rejection of the original decoder path.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}
