package api

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"griphon"
)

func newNet(t *testing.T) *griphon.Network {
	t.Helper()
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestWriteJSONTerminalFallback pins the fix for the silent error-path
// recursion: when even the error envelope cannot be encoded, the response
// must degrade to plain text — never an empty 500 body.
func TestWriteJSONTerminalFallback(t *testing.T) {
	s := NewServer(newNet(t))
	s.testEncodeErr = func(any) error { return fmt.Errorf("boom") }
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]string{"fine": "value"})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain fallback", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "encoding response: boom") {
		t.Fatalf("terminal fallback body = %q", body)
	}
	if got := s.encodeErrs.Value(); got != 2 {
		t.Errorf("encode errors = %v, want 2 (value + envelope)", got)
	}
}

// TestStaticBodiesMatchLegacy pins the pre-encoded mutation responses to the
// bytes the legacy marshal path produces.
func TestStaticBodiesMatchLegacy(t *testing.T) {
	legacy := NewServer(newNet(t), WithLegacyEncoding())
	for _, c := range []struct {
		body   []byte
		status string
	}{
		{bodyReleased, "released"},
		{bodyCut, "cut"},
		{bodyRepaired, "repaired"},
	} {
		rec := httptest.NewRecorder()
		legacy.writeJSON(rec, http.StatusOK, map[string]string{"status": c.status})
		if rec.Body.String() != string(c.body) {
			t.Errorf("static %q = %q, legacy renders %q", c.status, c.body, rec.Body.String())
		}
	}
}

// TestGETResponseCache: repeated GETs serve from the cache, any POST
// invalidates it, and the cached bytes match a fresh render.
func TestGETResponseCache(t *testing.T) {
	s := NewServer(newNet(t))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, b)
		}
		return string(b)
	}

	first := get("/api/v1/stats")
	second := get("/api/v1/stats")
	if first != second {
		t.Fatalf("cached stats differ:\n%s\n%s", first, second)
	}
	if hits := s.cacheHits.Value(); hits != 1 {
		t.Fatalf("cache hits = %v, want 1", hits)
	}

	// A mutation invalidates: the next GET re-renders and sees the new state.
	resp, err := http.Post(srv.URL+"/api/v1/advance", "application/json",
		strings.NewReader(`{"duration":"1h"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance = %d", resp.StatusCode)
	}
	misses := s.cacheMisses.Value()
	third := get("/api/v1/stats")
	if third == first {
		t.Fatal("stats unchanged after advancing the clock: stale cache")
	}
	if s.cacheMisses.Value() != misses+1 {
		t.Fatal("post-mutation GET did not re-render")
	}

	// The metrics endpoint is never cached (its counters move on scrapes).
	get("/api/v1/metrics")
	get("/api/v1/metrics")
	if s.cacheHits.Value() != 1 {
		t.Fatalf("metrics GETs hit the cache: hits = %v", s.cacheHits.Value())
	}
}

// TestPanickingMutationStillInvalidates pins the deferred cache bump: a POST
// handler that panics after mutating state (net/http recovers the panic per
// connection, so the process survives) must still invalidate the response
// cache, or cached GETs keep serving the pre-mutation state indefinitely.
func TestPanickingMutationStillInvalidates(t *testing.T) {
	s := NewServer(newNet(t))
	state := "v1"
	h := s.withCache(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			state = "v2"                          // the mutation lands...
			panic("handler blew up mid-mutation") // ...then the handler dies
		}
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, state) //lint:allow errcheck recorder never errors
	}))
	get := func() string {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil))
		return rec.Body.String()
	}
	if got := get(); got != "v1" {
		t.Fatalf("first GET = %q, want v1", got)
	}
	if got := get(); got != "v1" { // served from cache
		t.Fatalf("cached GET = %q, want v1", got)
	}
	func() {
		defer func() {
			if recover() == nil { // stand in for net/http's per-connection recovery
				t.Fatal("mutation handler did not panic: test is not exercising the panic path")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/api/v1/advance", nil))
	}()
	if got := get(); got != "v2" {
		t.Fatalf("GET after panicking mutation = %q, want v2 (stale cache not invalidated)", got)
	}
}

// TestLegacyServerServesIdenticalBytes runs the same scripted session against
// a fast and a legacy server over the same-seed network and requires
// byte-identical responses: the fast path is an optimization, not a behavior
// change.
func TestLegacyServerServesIdenticalBytes(t *testing.T) {
	run := func(opts ...Option) []string {
		t.Helper()
		s := NewServer(newNet(t), opts...)
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		var out []string
		do := func(method, path, body string) {
			t.Helper()
			var resp *http.Response
			var err error
			if method == http.MethodGet {
				resp, err = http.Get(srv.URL + path)
			} else {
				resp, err = http.Post(srv.URL+path, "application/json", strings.NewReader(body))
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fmt.Sprintf("%d %s", resp.StatusCode, b))
		}
		do("POST", "/api/v1/connect", `{"customer":"acme","from":"DC-A","to":"DC-C","rate":"10G"}`)
		do("GET", "/api/v1/connections?customer=acme", "")
		do("GET", "/api/v1/connections?customer=acme", "") // cache hit on the fast server
		do("GET", "/api/v1/stats", "")
		do("GET", "/api/v1/topology", "")
		do("GET", "/api/v1/bill?customer=acme", "")
		do("POST", "/api/v1/connect", `{"customer":"acme","from":"bogus","to":"DC-C","rate":"10G"}`) // error path
		do("POST", "/api/v1/advance", `{"duration":"30m"}`)
		do("GET", "/api/v1/stats", "")
		return out
	}
	fast := run()
	legacy := run(WithLegacyEncoding())
	if len(fast) != len(legacy) {
		t.Fatalf("response counts differ: %d vs %d", len(fast), len(legacy))
	}
	for i := range fast {
		if fast[i] != legacy[i] {
			t.Errorf("response %d differs:\nfast:   %s\nlegacy: %s", i, fast[i], legacy[i])
		}
	}
}

// discardResponseWriter is a ResponseWriter with no buffer behind it, so the
// alloc gates measure only the encode path.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// TestWriteJSONAllocGate gates the pooled response encoder. The exact figure
// depends on encoding/json internals; what is pinned is the absence of the
// per-response buffer copies the legacy path made.
func TestWriteJSONAllocGate(t *testing.T) {
	s := NewServer(newNet(t))
	w := &discardResponseWriter{}
	v := &StatsJSON{Now: "t", Active: 3, ChannelsInUse: 7}
	s.writeJSON(w, http.StatusOK, v) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		s.writeJSON(w, http.StatusOK, v)
	})
	if allocs > 2 {
		t.Fatalf("writeJSON allocates %.1f objects per response, want <= 2", allocs)
	}
}

// TestWriteStaticAllocGate: fixed-shape mutation responses must not allocate
// at all.
func TestWriteStaticAllocGate(t *testing.T) {
	s := NewServer(newNet(t))
	w := &discardResponseWriter{}
	w.Header().Set("Content-Type", "application/json")
	allocs := testing.AllocsPerRun(200, func() {
		s.writeStatic(w, bodyReleased, "released")
	})
	if allocs > 0 {
		t.Fatalf("writeStatic allocates %.1f objects per response, want 0", allocs)
	}
}
