package api

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"griphon"
)

func newTracingServer(t *testing.T) (*Client, *griphon.Network) {
	t.Helper()
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(5), griphon.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(net).Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), net
}

// TestWriteJSONEncodeError exercises the 500 path: a value json.Marshal cannot
// encode must yield a well-formed error body (not a truncated 200) and bump
// the encode-error counter.
func TestWriteJSONEncodeError(t *testing.T) {
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(net)
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, map[string]float64{"oops": math.NaN()})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var apiErr ErrorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil {
		t.Fatalf("error body is not valid JSON: %v (%q)", err, rec.Body.String())
	}
	if !strings.Contains(apiErr.Error, "encoding response") {
		t.Errorf("error = %q", apiErr.Error)
	}
	if got := s.encodeErrs.Value(); got != 1 {
		t.Errorf("griphon_api_encode_errors_total = %v, want 1", got)
	}
	// The counter is the controller's instrument, so the failure shows up in
	// the metrics export too.
	var b strings.Builder
	if err := net.MetricsTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "griphon_api_encode_errors_total 1") {
		t.Error("encode error not visible in metrics export")
	}
}

func TestEventsEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Connections[0].ID
	all, err := c.Events("")
	if err != nil || len(all) == 0 {
		t.Fatalf("events = %d, %v", len(all), err)
	}
	kinds := map[string]bool{}
	for _, e := range all {
		if e.At == "" || e.Kind == "" {
			t.Errorf("malformed event %+v", e)
		}
		kinds[e.Kind] = true
	}
	if !kinds["request"] || !kinds["active"] {
		t.Errorf("kinds = %v, want request and active", kinds)
	}
	filtered, err := c.Events(id)
	if err != nil || len(filtered) == 0 || len(filtered) > len(all) {
		t.Fatalf("filtered events = %d of %d, %v", len(filtered), len(all), err)
	}
	for _, e := range filtered {
		if e.Conn != id {
			t.Errorf("filter leaked event for %q", e.Conn)
		}
	}
	none, err := c.Events("no-such-conn")
	if err != nil || len(none) != 0 {
		t.Errorf("events for unknown conn = %d, %v", len(none), err)
	}
}

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9].*$`)

// TestMetricsEndpoint scripts setup -> cut -> restore and checks the
// Prometheus rendering: valid text format, at least 10 distinct instruments,
// and exact values for the counters the script must have moved.
func TestMetricsEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	resp, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cut(resp.Connections[0].Route); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance("10m"); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}

	// Structural validity: every line is a comment or a sample, every sample
	// is preceded by its family's HELP and TYPE.
	families := map[string]bool{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("bad sample line %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i > 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !families[name] && !families[base] {
			t.Errorf("sample %q has no preceding TYPE", name)
		}
		typed[base] = true
	}
	if len(families) < 10 {
		t.Errorf("distinct instruments = %d, want >= 10", len(families))
	}

	// Golden lines the scripted setup -> cut -> restore must produce
	// (deterministic under WithSeed(5)).
	for _, want := range []string{
		`griphon_setups_total{layer="dwdm",outcome="ok"} 1`,
		`griphon_fiber_cuts_total 1`,
		`griphon_restorations_total{outcome="restored"} 1`,
		`griphon_restoration_seconds_count{layer="dwdm"} 1`,
		`griphon_connections{state="active"} 1`,
		`griphon_down_links 1`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The restoration latency histogram saw a DWDM restoration somewhere in
	// the tens of seconds, so the +Inf bucket and the 600 s bucket both hold
	// the observation while the 50 ms one does not.
	if !strings.Contains(text, `griphon_restoration_seconds_bucket{layer="dwdm",le="600"} 1`) {
		t.Error("restoration histogram missing 600 s bucket observation")
	}
	if !strings.Contains(text, `griphon_restoration_seconds_bucket{layer="dwdm",le="0.05"} 0`) {
		t.Error("restoration histogram should have empty 50 ms bucket")
	}
}

func TestTraceEndpoint(t *testing.T) {
	c, _ := newTracingServer(t)
	if _, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"}); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Trace("")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"op:setup", "lightpath:setup", "rwa:search"} {
		if !names[want] {
			t.Errorf("trace missing span %q", want)
		}
	}

	lines, err := c.Trace("jsonl")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(strings.TrimSpace(string(lines)), "\n") {
		var span map[string]any
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		n++
	}
	if n == 0 {
		t.Error("empty JSONL trace")
	}

	if _, err := c.Trace("bogus"); err == nil || !strings.Contains(err.Error(), "unknown trace format") {
		t.Errorf("bogus format err = %v", err)
	}
}

func TestTraceEndpointRequiresTracing(t *testing.T) {
	c, _ := newTestServer(t)
	if _, err := c.Trace(""); err == nil || !strings.Contains(err.Error(), "tracing is off") {
		t.Errorf("trace without tracing err = %v", err)
	}
}
