package api

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"griphon"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Server adapts a griphon.Network to HTTP. The simulation is single-threaded,
// so one mutex serializes all requests; each mutating call advances the
// virtual clock until its operation completes (a 62 s setup returns in
// microseconds of wall time).
type Server struct {
	mu  sync.Mutex
	net *griphon.Network
	// encodeErrs counts responses that failed to encode or write — the same
	// instrument the controller registers, fetched from the shared registry.
	encodeErrs *obs.Counter

	// legacy restores the pre-optimization response path (WithLegacyEncoding).
	legacy bool
	cache  respCache
	cacheHits,
	cacheMisses *obs.Counter

	// testEncodeErr, when set, overrides response encoding — the seam the
	// terminal plain-text fallback test uses.
	testEncodeErr func(v any) error
}

// NewServer wraps a network.
func NewServer(net *griphon.Network, opts ...Option) *Server {
	s := &Server{
		net: net,
		encodeErrs: net.Metrics().Counter("griphon_api_encode_errors_total",
			"HTTP API responses that failed to encode or write."),
		cacheHits: net.Metrics().Counter("griphon_api_cache_hits_total",
			"GET responses served from the invalidation-versioned response cache."),
		cacheMisses: net.Metrics().Counter("griphon_api_cache_misses_total",
			"Cacheable GET responses rendered from state."),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the API's routing table, wrapped in the GET response cache.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/connections", s.handleConnections)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /api/v1/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/topology", s.handleTopology)
	mux.HandleFunc("GET /api/v1/bill", s.handleBill)
	mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/v1/trace", s.handleTrace)
	mux.HandleFunc("GET /api/v1/alarms", s.handleAlarms)
	mux.HandleFunc("GET /api/v1/sla", s.handleSLA)
	mux.HandleFunc("GET /api/v1/shards", s.handleShards)
	mux.HandleFunc("POST /api/v1/connect", s.handleConnect)
	mux.HandleFunc("POST /api/v1/disconnect", s.handleDisconnect)
	mux.HandleFunc("POST /api/v1/roll", s.handleRoll)
	mux.HandleFunc("POST /api/v1/regroom", s.handleRegroom)
	mux.HandleFunc("POST /api/v1/adjust", s.handleAdjust)
	mux.HandleFunc("POST /api/v1/defrag", s.handleDefrag)
	mux.HandleFunc("POST /api/v1/cut", s.handleCut)
	mux.HandleFunc("POST /api/v1/repair", s.handleRepair)
	mux.HandleFunc("POST /api/v1/maintenance", s.handleMaintenance)
	mux.HandleFunc("POST /api/v1/advance", s.handleAdvance)
	return s.withCache(mux)
}

func (s *Server) now() sim.Time { return sim.Time(s.net.Now()) }

func (s *Server) graph() *topo.Graph { return s.net.Controller().Graph() }

func (s *Server) handleConnections(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cust := r.URL.Query().Get("customer")
	if cust == "" {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("customer query parameter required"))
		return
	}
	var out []ConnectionJSON
	for _, c := range s.net.Connections(cust) {
		out = append(out, FromConnection(c, s.now(), s.graph()))
	}
	s.writeJSON(w, http.StatusOK, ConnectResponse{Connections: out})
}

func (s *Server) handleConnect(w http.ResponseWriter, r *http.Request) {
	var req ConnectRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rate, err := griphon.ParseRate(req.Rate)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	protect, err := parseProtection(req.Protection)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	before := len(s.net.Connections(req.Customer))
	if _, err := s.net.Connect(req.Customer, req.From, req.To, rate, protect); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	var out []ConnectionJSON
	for _, c := range s.net.Connections(req.Customer)[before:] {
		out = append(out, FromConnection(c, s.now(), s.graph()))
	}
	s.writeJSON(w, http.StatusOK, ConnectResponse{Connections: out})
}

func parseProtection(s string) (griphon.Protection, error) {
	switch s {
	case "", "restore":
		return griphon.Restore, nil
	case "1+1", "oneplusone":
		return griphon.OnePlusOne, nil
	case "unprotected":
		return griphon.Unprotected, nil
	case "shared-mesh", "sharedmesh":
		return griphon.SharedMesh, nil
	}
	return 0, fmt.Errorf("unknown protection %q", s)
}

func (s *Server) handleDisconnect(w http.ResponseWriter, r *http.Request) {
	var req DisconnectRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.net.Disconnect(req.Customer, griphon.ConnID(req.ID)); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeStatic(w, bodyReleased, "released")
}

func (s *Server) handleRoll(w http.ResponseWriter, r *http.Request) {
	var req RollRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.net.BridgeAndRoll(req.Customer, griphon.ConnID(req.ID)); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	conn := s.net.Conn(griphon.ConnID(req.ID))
	s.writeJSON(w, http.StatusOK, FromConnection(conn, s.now(), s.graph()))
}

func (s *Server) handleRegroom(w http.ResponseWriter, r *http.Request) {
	var req RollRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	moved, err := s.net.Regroom(req.Customer, griphon.ConnID(req.ID))
	if err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	conn := s.net.Conn(griphon.ConnID(req.ID))
	s.writeJSON(w, http.StatusOK, RegroomResponse{Moved: moved, Connection: FromConnection(conn, s.now(), s.graph())})
}

func (s *Server) handleAdjust(w http.ResponseWriter, r *http.Request) {
	var req AdjustRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rate, err := griphon.ParseRate(req.Rate)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.net.AdjustRate(req.Customer, griphon.ConnID(req.ID), rate); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	conn := s.net.Conn(griphon.ConnID(req.ID))
	s.writeJSON(w, http.StatusOK, FromConnection(conn, s.now(), s.graph()))
}

func (s *Server) handleDefrag(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	moved, err := s.net.DefragmentSpectrum()
	if err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, DefragResponse{
		Retuned:       moved,
		MaxChannelNow: s.net.Controller().MaxChannelInUse(),
	})
}

func (s *Server) handleCut(w http.ResponseWriter, r *http.Request) {
	var req LinkRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.net.CutFiber(req.Link); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeStatic(w, bodyCut, "cut")
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req LinkRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.net.RepairFiber(req.Link); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	s.writeStatic(w, bodyRepaired, "repaired")
}

func (s *Server) handleMaintenance(w http.ResponseWriter, r *http.Request) {
	var req LinkRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	in, err := time.ParseDuration(valueOr(req.In, "1m"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	window, err := time.ParseDuration(valueOr(req.Window, "2h"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.net.ScheduleMaintenance(req.Link, in, window)
	if err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	// Let the whole window play out so the response is conclusive.
	s.net.Advance(in + window + time.Hour)
	out := MaintenanceJSON{Link: string(m.Link), Finished: m.Finished}
	for _, id := range m.Rolled {
		out.Rolled = append(out.Rolled, string(id))
	}
	for _, id := range m.Unmoved {
		out.Unmoved = append(out.Unmoved, string(id))
	}
	s.writeJSON(w, http.StatusOK, out)
}

func valueOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req AdvanceRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := time.ParseDuration(req.Duration)
	if err != nil || d < 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad duration %q", req.Duration))
		return
	}
	s.net.Advance(d)
	s.writeJSON(w, http.StatusOK, map[string]string{"now": s.net.Now().String()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.net.Stats()
	out := StatsJSON{
		Now:           s.net.Now().String(),
		Active:        st.Active,
		Pending:       st.Pending,
		Down:          st.Down,
		Restoring:     st.Restoring,
		Released:      st.Released,
		InternalConns: st.InternalConns,
		ChannelsInUse: st.ChannelsInUse,
		OTsInUse:      st.OTsInUse,
		OTsTotal:      st.OTsTotal,
		Pipes:         st.Pipes,
		SlotsInUse:    st.SlotsInUse,
		SlotsTotal:    st.SlotsTotal,
	}
	for _, l := range st.DownLinks {
		out.DownLinks = append(out.DownLinks, string(l))
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := r.URL.Query()

	// With a since cursor the response is a page ({events, next}); resuming
	// from next yields no gaps or repeats. The cursor is positional over the
	// whole log, so it composes with the conn filter only trivially (reject
	// the combination rather than silently mis-paginate).
	if sinceStr := q.Get("since"); sinceStr != "" {
		if q.Get("conn") != "" {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("since and conn cannot be combined"))
			return
		}
		since, err := strconv.Atoi(sinceStr)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since cursor %q", sinceStr))
			return
		}
		evs, next := s.net.EventsSince(since)
		page := EventsPage{Events: make([]EventJSON, 0, len(evs)), Next: next}
		for _, e := range evs {
			page.Events = append(page.Events, EventJSON{
				At: e.At.String(), Conn: string(e.Conn), Kind: e.Kind, Text: e.Text,
			})
		}
		s.writeJSON(w, http.StatusOK, page)
		return
	}

	connFilter := q.Get("conn")
	var evs []griphon.Event
	if connFilter != "" {
		evs = s.net.EventsFor(griphon.ConnID(connFilter))
	} else {
		evs = s.net.Events()
	}
	out := make([]EventJSON, 0, len(evs))
	for _, e := range evs {
		out = append(out, EventJSON{
			At: e.At.String(), Conn: string(e.Conn), Kind: e.Kind, Text: e.Text,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := r.URL.Query()
	var since uint64
	if sinceStr := q.Get("since"); sinceStr != "" {
		v, err := strconv.ParseUint(sinceStr, 10, 64)
		if err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since cursor %q", sinceStr))
			return
		}
		since = v
	}
	groups, next := s.net.Alarms(since, q.Get("customer"))
	out := AlarmsResponse{Groups: make([]AlarmGroupJSON, 0, len(groups)), Next: next}
	for _, g := range groups {
		out.Groups = append(out.Groups, FromGroup(g))
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSLA(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, FromSLAReport(s.net.SLA(r.URL.Query().Get("customer"))))
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.net.ShardSet()
	out := ShardsResponse{Shards: set.Len()}
	for i := 0; i < set.Len(); i++ {
		st := set.Shard(i).Ctrl.Snapshot()
		out.PerShard = append(out.PerShard, ShardJSON{
			Index:         i,
			Active:        st.Active,
			Pending:       st.Pending,
			Down:          st.Down,
			ChannelsInUse: st.ChannelsInUse,
			Pipes:         st.Pipes,
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.net.MetricsTo(w); err != nil {
		s.encodeErrs.Inc()
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.net.Tracer().Enabled() {
		s.writeErr(w, http.StatusConflict,
			fmt.Errorf("tracing is off; start the network with tracing enabled"))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := s.net.TraceTo(w); err != nil {
			s.encodeErrs.Inc()
		}
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.net.TraceJSONLTo(w); err != nil {
			s.encodeErrs.Inc()
		}
	default:
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown trace format %q", format))
	}
}

func (s *Server) handleBill(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cust := r.URL.Query().Get("customer")
	if cust == "" {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("customer query parameter required"))
		return
	}
	s.writeJSON(w, http.StatusOK, BillJSON{Customer: cust, GbHours: s.net.BillGbHours(cust)})
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.net.Controller().Graph()
	out := TopologyJSON{}
	for _, n := range g.Nodes() {
		out.PoPs = append(out.PoPs, string(n.ID))
	}
	for _, l := range g.Links() {
		out.Fibers = append(out.Fibers, fmt.Sprintf("%s (%.0f km)", l.ID, l.KM))
	}
	for _, site := range g.Sites() {
		out.Sites = append(out.Sites, fmt.Sprintf("%s @ %s (%.0fG access)", site.ID, site.Home, site.AccessGbps))
	}
	s.writeJSON(w, http.StatusOK, out)
}
