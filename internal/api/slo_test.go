package api

import (
	"strings"
	"testing"

	"griphon"
)

// cutAndRestore provisions a 10G restore-mode connection for cust, cuts its
// working fiber and drains the restoration.
func cutAndRestore(t *testing.T, c *Client, net *griphon.Network, cust string) ConnectionJSON {
	t.Helper()
	resp, err := c.Connect(ConnectRequest{Customer: cust, From: "DC-A", To: "DC-C", Rate: "10G"})
	if err != nil {
		t.Fatal(err)
	}
	conn := resp.Connections[0]
	if err := c.Cut(strings.Split(conn.Route, " ")[0]); err != nil && !strings.Contains(err.Error(), "already down") {
		t.Fatal(err)
	}
	net.Drain()
	return conn
}

func TestSLAEndpoint(t *testing.T) {
	c, net := newTestServer(t)
	conn := cutAndRestore(t, c, net, "acme")
	if err := c.Advance("1h"); err != nil {
		t.Fatal(err)
	}

	rep, err := c.SLA("acme")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Customer != "acme" || len(rep.Conns) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	row := rep.Conns[0]
	if row.ID != conn.ID {
		t.Errorf("row id = %s, want %s", row.ID, conn.ID)
	}
	if row.Availability <= 0 || row.Availability >= 1 {
		t.Errorf("availability = %v, want (0,1)", row.Availability)
	}
	if len(row.Outages) != 1 {
		t.Fatalf("outages = %d", len(row.Outages))
	}
	o := row.Outages[0]
	if o.Cause != "fiber-cut" || o.Resolution != "restored" || o.Open {
		t.Errorf("outage = %+v", o)
	}
	var phaseSum float64
	for _, p := range o.Phases {
		phaseSum += p.Seconds
	}
	if diff := phaseSum - o.Seconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("phases sum to %v s, outage is %v s", phaseSum, o.Seconds)
	}
	if rep.Unattributed != 0 {
		t.Errorf("unattributed = %d", rep.Unattributed)
	}

	// Another tenant sees an empty report, not acme's outages.
	other, err := c.SLA("rival")
	if err != nil {
		t.Fatal(err)
	}
	if len(other.Conns) != 0 {
		t.Errorf("rival sees %d connections", len(other.Conns))
	}
	// The operator view includes acme's connection.
	op, err := c.SLA("")
	if err != nil {
		t.Fatal(err)
	}
	if len(op.Conns) != 1 {
		t.Errorf("operator view = %d conns", len(op.Conns))
	}
}

func TestAlarmsEndpoint(t *testing.T) {
	c, net := newTestServer(t)
	cutAndRestore(t, c, net, "acme")

	resp, err := c.Alarms("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 for one cut", len(resp.Groups))
	}
	g := resp.Groups[0]
	if g.Kind != "fiber-cut" || g.Link == "" {
		t.Errorf("group = %+v", g)
	}
	if len(g.Children) != 2 {
		t.Errorf("children = %d, want 2 LOS", len(g.Children))
	}
	if !strings.Contains(g.Root.Detail, "fiber cut suspected") {
		t.Errorf("root detail = %q", g.Root.Detail)
	}

	// Customer filtering and cursor resume.
	mine, err := c.Alarms("acme", 0)
	if err != nil || len(mine.Groups) != 1 {
		t.Fatalf("acme view = %+v, %v", mine, err)
	}
	none, err := c.Alarms("rival", 0)
	if err != nil || len(none.Groups) != 0 {
		t.Fatalf("rival view = %+v, %v", none, err)
	}
	caught, err := c.Alarms("", resp.Next)
	if err != nil || len(caught.Groups) != 0 {
		t.Fatalf("resume = %+v, %v", caught, err)
	}
}

func TestEventsSinceEndpoint(t *testing.T) {
	c, net := newTestServer(t)
	if _, err := c.Connect(ConnectRequest{Customer: "acme", From: "DC-A", To: "DC-C", Rate: "10G"}); err != nil {
		t.Fatal(err)
	}
	page, err := c.EventsSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Events) == 0 || page.Next != len(page.Events) {
		t.Fatalf("page = %d events next %d", len(page.Events), page.Next)
	}
	// The bare-array response (no since) still works for old clients.
	evs, err := c.Events("")
	if err != nil || len(evs) != len(page.Events) {
		t.Fatalf("bare events = %d, %v", len(evs), err)
	}
	// Resume picks up only new activity.
	cutAndRestore(t, c, net, "bob")
	more, err := c.EventsSince(page.Next)
	if err != nil || len(more.Events) == 0 {
		t.Fatalf("resume = %+v, %v", more, err)
	}
	for _, e := range more.Events {
		if e.Kind == "connect" && strings.Contains(e.Text, "acme") {
			t.Errorf("resumed page replays old event %+v", e)
		}
	}
	// since + conn is ambiguous and rejected.
	if err := c.do("GET", "/api/v1/events?since=0&conn=C0001", nil, nil); err == nil {
		t.Error("since+conn accepted")
	}
	// Bad cursors are a 400, not a panic.
	if err := c.do("GET", "/api/v1/events?since=wat", nil, nil); err == nil {
		t.Error("bad cursor accepted")
	}
	if err := c.do("GET", "/api/v1/alarms?since=wat", nil, nil); err == nil {
		t.Error("bad alarm cursor accepted")
	}
}
