// Package api defines the wire protocol of griphond — the HTTP/JSON service
// that plays the role of the paper's customer GUI backend (§2.2): per-
// customer connection management (set up / tear down on demand) and simple
// fault visibility (connection status, affected-by-outage, restoration
// progress), hiding the network's internals from the customer. It also
// carries the operator-side endpoints (fiber cuts, repairs, maintenance,
// clock control) that a lab GUI would expose.
package api

import (
	"time"

	"griphon/internal/core"
	"griphon/internal/rwa"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// ConnectionJSON is the customer-visible view of a connection.
type ConnectionJSON struct {
	ID           string        `json:"id"`
	Customer     string        `json:"customer"`
	From         string        `json:"from"`
	To           string        `json:"to"`
	Rate         string        `json:"rate"`
	Layer        string        `json:"layer"`
	Protection   string        `json:"protection"`
	State        string        `json:"state"`
	Route        string        `json:"route,omitempty"`
	SetupTime    string        `json:"setup_time,omitempty"`
	TotalOutage  string        `json:"total_outage,omitempty"`
	Restorations int           `json:"restorations"`
	Rolls        int           `json:"rolls"`
	SetupSeconds float64       `json:"setup_seconds"`
	OutageNanos  time.Duration `json:"outage_nanos"`
	// PropagationMS is the one-way light propagation delay of the current
	// route in milliseconds (zero for OTN circuits, whose fiber path is
	// the pipes' concern).
	PropagationMS float64 `json:"propagation_ms,omitempty"`
}

// FromConnection converts a controller record; now is the current virtual
// time (for still-open outages) and g the topology (for propagation delay;
// nil skips it).
func FromConnection(c *core.Connection, now sim.Time, g *topo.Graph) ConnectionJSON {
	j := ConnectionJSON{
		ID:           string(c.ID),
		Customer:     string(c.Customer),
		From:         string(c.From),
		To:           string(c.To),
		Rate:         c.Rate.String(),
		Layer:        c.Layer.String(),
		Protection:   c.Protect.String(),
		State:        c.State.String(),
		Restorations: c.Restorations,
		Rolls:        c.Rolls,
	}
	if r := c.Route(); len(r.Nodes) > 0 {
		j.Route = r.String()
		if g != nil {
			j.PropagationMS = rwa.PropagationDelay(g, r) * 1000
		}
	}
	if st := c.SetupTime(); st > 0 {
		j.SetupTime = st.String()
		j.SetupSeconds = st.Seconds()
	}
	if outage := c.Outage(now); outage > 0 {
		j.TotalOutage = outage.String()
		j.OutageNanos = outage
	}
	return j
}

// ConnectRequest asks for a new connection.
type ConnectRequest struct {
	Customer string `json:"customer"`
	From     string `json:"from"`
	To       string `json:"to"`
	// Rate is textual: "1G", "2.5G", "10G", "12G", "40G".
	Rate string `json:"rate"`
	// Protection: "restore" (default), "1+1", "unprotected",
	// "shared-mesh".
	Protection string `json:"protection,omitempty"`
}

// ConnectResponse lists the provisioned components (composites have several).
type ConnectResponse struct {
	Connections []ConnectionJSON `json:"connections"`
}

// DisconnectRequest tears a connection down.
type DisconnectRequest struct {
	Customer string `json:"customer"`
	ID       string `json:"id"`
}

// RollRequest triggers bridge-and-roll or re-grooming.
type RollRequest struct {
	Customer string `json:"customer"`
	ID       string `json:"id"`
}

// AdjustRequest resizes a connection in place.
type AdjustRequest struct {
	Customer string `json:"customer"`
	ID       string `json:"id"`
	Rate     string `json:"rate"`
}

// DefragResponse reports a defragmentation sweep.
type DefragResponse struct {
	Retuned       int `json:"retuned"`
	MaxChannelNow int `json:"max_channel_now"`
}

// RegroomResponse reports whether re-grooming moved the connection.
type RegroomResponse struct {
	Moved      bool           `json:"moved"`
	Connection ConnectionJSON `json:"connection"`
}

// LinkRequest names a fiber link (cut / repair / maintenance).
type LinkRequest struct {
	Link string `json:"link"`
	// In and Window apply to maintenance scheduling only.
	In     string `json:"in,omitempty"`
	Window string `json:"window,omitempty"`
}

// AdvanceRequest moves the virtual clock forward.
type AdvanceRequest struct {
	Duration string `json:"duration"`
}

// StatsJSON mirrors core.Stats for the wire.
type StatsJSON struct {
	Now           string   `json:"now"`
	Active        int      `json:"active"`
	Pending       int      `json:"pending"`
	Down          int      `json:"down"`
	Restoring     int      `json:"restoring"`
	Released      int      `json:"released"`
	InternalConns int      `json:"internal_conns"`
	ChannelsInUse int      `json:"channels_in_use"`
	OTsInUse      int      `json:"ots_in_use"`
	OTsTotal      int      `json:"ots_total"`
	Pipes         int      `json:"pipes"`
	SlotsInUse    int      `json:"slots_in_use"`
	SlotsTotal    int      `json:"slots_total"`
	DownLinks     []string `json:"down_links,omitempty"`
}

// EventJSON is one audit-log entry.
type EventJSON struct {
	At   string `json:"at"`
	Conn string `json:"conn,omitempty"`
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// TopologyJSON describes the network for display.
type TopologyJSON struct {
	PoPs   []string `json:"pops"`
	Fibers []string `json:"fibers"`
	Sites  []string `json:"sites"`
}

// BillJSON reports a customer's usage bill.
type BillJSON struct {
	Customer string  `json:"customer"`
	GbHours  float64 `json:"gb_hours"`
}

// ErrorJSON carries an API error.
type ErrorJSON struct {
	Error string `json:"error"`
}

// MaintenanceJSON reports a maintenance outcome.
type MaintenanceJSON struct {
	Link     string   `json:"link"`
	Rolled   []string `json:"rolled"`
	Unmoved  []string `json:"unmoved"`
	Finished bool     `json:"finished"`
}
