// Package api defines the wire protocol of griphond — the HTTP/JSON service
// that plays the role of the paper's customer GUI backend (§2.2): per-
// customer connection management (set up / tear down on demand) and simple
// fault visibility (connection status, affected-by-outage, restoration
// progress), hiding the network's internals from the customer. It also
// carries the operator-side endpoints (fiber cuts, repairs, maintenance,
// clock control) that a lab GUI would expose.
package api

import (
	"time"

	"griphon/internal/alarms"
	"griphon/internal/core"
	"griphon/internal/rwa"
	"griphon/internal/sim"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// ConnectionJSON is the customer-visible view of a connection.
type ConnectionJSON struct {
	ID           string        `json:"id"`
	Customer     string        `json:"customer"`
	From         string        `json:"from"`
	To           string        `json:"to"`
	Rate         string        `json:"rate"`
	Layer        string        `json:"layer"`
	Protection   string        `json:"protection"`
	State        string        `json:"state"`
	Route        string        `json:"route,omitempty"`
	SetupTime    string        `json:"setup_time,omitempty"`
	TotalOutage  string        `json:"total_outage,omitempty"`
	Restorations int           `json:"restorations"`
	Rolls        int           `json:"rolls"`
	SetupSeconds float64       `json:"setup_seconds"`
	OutageNanos  time.Duration `json:"outage_nanos"`
	// PropagationMS is the one-way light propagation delay of the current
	// route in milliseconds (zero for OTN circuits, whose fiber path is
	// the pipes' concern).
	PropagationMS float64 `json:"propagation_ms,omitempty"`
}

// FromConnection converts a controller record; now is the current virtual
// time (for still-open outages) and g the topology (for propagation delay;
// nil skips it).
func FromConnection(c *core.Connection, now sim.Time, g *topo.Graph) ConnectionJSON {
	j := ConnectionJSON{
		ID:           string(c.ID),
		Customer:     string(c.Customer),
		From:         string(c.From),
		To:           string(c.To),
		Rate:         c.Rate.String(),
		Layer:        c.Layer.String(),
		Protection:   c.Protect.String(),
		State:        c.State.String(),
		Restorations: c.Restorations,
		Rolls:        c.Rolls,
	}
	if r := c.Route(); len(r.Nodes) > 0 {
		j.Route = r.String()
		if g != nil {
			j.PropagationMS = rwa.PropagationDelay(g, r) * 1000
		}
	}
	if st := c.SetupTime(); st > 0 {
		j.SetupTime = st.String()
		j.SetupSeconds = st.Seconds()
	}
	if outage := c.Outage(now); outage > 0 {
		j.TotalOutage = outage.String()
		j.OutageNanos = outage
	}
	return j
}

// ConnectRequest asks for a new connection.
type ConnectRequest struct {
	Customer string `json:"customer"`
	From     string `json:"from"`
	To       string `json:"to"`
	// Rate is textual: "1G", "2.5G", "10G", "12G", "40G".
	Rate string `json:"rate"`
	// Protection: "restore" (default), "1+1", "unprotected",
	// "shared-mesh".
	Protection string `json:"protection,omitempty"`
}

// ConnectResponse lists the provisioned components (composites have several).
type ConnectResponse struct {
	Connections []ConnectionJSON `json:"connections"`
}

// DisconnectRequest tears a connection down.
type DisconnectRequest struct {
	Customer string `json:"customer"`
	ID       string `json:"id"`
}

// RollRequest triggers bridge-and-roll or re-grooming.
type RollRequest struct {
	Customer string `json:"customer"`
	ID       string `json:"id"`
}

// AdjustRequest resizes a connection in place.
type AdjustRequest struct {
	Customer string `json:"customer"`
	ID       string `json:"id"`
	Rate     string `json:"rate"`
}

// DefragResponse reports a defragmentation sweep.
type DefragResponse struct {
	Retuned       int `json:"retuned"`
	MaxChannelNow int `json:"max_channel_now"`
}

// RegroomResponse reports whether re-grooming moved the connection.
type RegroomResponse struct {
	Moved      bool           `json:"moved"`
	Connection ConnectionJSON `json:"connection"`
}

// LinkRequest names a fiber link (cut / repair / maintenance).
type LinkRequest struct {
	Link string `json:"link"`
	// In and Window apply to maintenance scheduling only.
	In     string `json:"in,omitempty"`
	Window string `json:"window,omitempty"`
}

// AdvanceRequest moves the virtual clock forward.
type AdvanceRequest struct {
	Duration string `json:"duration"`
}

// StatsJSON mirrors core.Stats for the wire.
type StatsJSON struct {
	Now           string   `json:"now"`
	Active        int      `json:"active"`
	Pending       int      `json:"pending"`
	Down          int      `json:"down"`
	Restoring     int      `json:"restoring"`
	Released      int      `json:"released"`
	InternalConns int      `json:"internal_conns"`
	ChannelsInUse int      `json:"channels_in_use"`
	OTsInUse      int      `json:"ots_in_use"`
	OTsTotal      int      `json:"ots_total"`
	Pipes         int      `json:"pipes"`
	SlotsInUse    int      `json:"slots_in_use"`
	SlotsTotal    int      `json:"slots_total"`
	DownLinks     []string `json:"down_links,omitempty"`
}

// EventJSON is one audit-log entry.
type EventJSON struct {
	At   string `json:"at"`
	Conn string `json:"conn,omitempty"`
	Kind string `json:"kind"`
	Text string `json:"text"`
}

// EventsPage is the cursored events response (GET /api/v1/events?since=N).
// Resuming from Next yields no gaps or repeats.
type EventsPage struct {
	Events []EventJSON `json:"events"`
	Next   int         `json:"next"`
}

// AlarmJSON is one element alarm in a customer's stream.
type AlarmJSON struct {
	At       string `json:"at"`
	Node     string `json:"node"`
	Conn     string `json:"conn,omitempty"`
	Customer string `json:"customer,omitempty"`
	Type     string `json:"type"`
	Detail   string `json:"detail"`
}

// AlarmGroupJSON is one correlated alarm group: the synthesized root event
// plus the per-circuit children it explains.
type AlarmGroupJSON struct {
	Seq      uint64      `json:"seq"`
	At       string      `json:"at"`
	Kind     string      `json:"kind"`
	Link     string      `json:"link,omitempty"`
	Root     AlarmJSON   `json:"root"`
	Children []AlarmJSON `json:"children"`
}

// AlarmsResponse is the alarm stream page; resume from Next.
type AlarmsResponse struct {
	Groups []AlarmGroupJSON `json:"groups"`
	Next   uint64           `json:"next"`
}

func fromAlarm(a alarms.Alarm) AlarmJSON {
	return AlarmJSON{
		At: a.At.String(), Node: string(a.Node), Conn: a.Conn,
		Customer: a.Customer, Type: a.Type.String(), Detail: a.Detail,
	}
}

// FromGroup converts a correlated alarm group for the wire.
func FromGroup(g alarms.Group) AlarmGroupJSON {
	out := AlarmGroupJSON{
		Seq: g.Seq, At: g.At.String(), Kind: g.Kind.String(),
		Link: string(g.Link), Root: fromAlarm(g.Root),
	}
	for _, a := range g.Children {
		out.Children = append(out.Children, fromAlarm(a))
	}
	return out
}

// SLAPhaseJSON is one phase of an outage (phases tile the interval).
type SLAPhaseJSON struct {
	Name    string  `json:"name"`
	Start   string  `json:"start"`
	Seconds float64 `json:"seconds"`
	Open    bool    `json:"open,omitempty"`
}

// SLABlockJSON is one blocked restoration attempt inside an outage.
type SLABlockJSON struct {
	At     string `json:"at"`
	Reason string `json:"reason"`
}

// SLAOutageJSON is one attributed down interval.
type SLAOutageJSON struct {
	Start      string         `json:"start"`
	End        string         `json:"end,omitempty"`
	Open       bool           `json:"open,omitempty"`
	Seconds    float64        `json:"seconds"`
	Cause      string         `json:"cause"`
	Link       string         `json:"link,omitempty"`
	Detail     string         `json:"detail,omitempty"`
	Resolution string         `json:"resolution,omitempty"`
	Phases     []SLAPhaseJSON `json:"phases,omitempty"`
	Blocks     []SLABlockJSON `json:"blocks,omitempty"`
}

// SLAConnJSON is one connection's row in the availability report.
type SLAConnJSON struct {
	ID           string          `json:"id"`
	Customer     string          `json:"customer"`
	Activated    string          `json:"activated"`
	Released     string          `json:"released,omitempty"`
	Degraded     bool            `json:"degraded,omitempty"`
	LifetimeS    float64         `json:"lifetime_seconds"`
	DowntimeS    float64         `json:"downtime_seconds"`
	Availability float64         `json:"availability"`
	Outages      []SLAOutageJSON `json:"outages,omitempty"`
}

// SLAJSON is a customer's availability report.
type SLAJSON struct {
	Customer     string        `json:"customer,omitempty"`
	Now          string        `json:"now"`
	LifetimeS    float64       `json:"lifetime_seconds"`
	DowntimeS    float64       `json:"downtime_seconds"`
	Availability float64       `json:"availability"`
	Outages      int           `json:"outages"`
	Unattributed int           `json:"unattributed"`
	Conns        []SLAConnJSON `json:"connections"`
}

// FromSLAReport converts a ledger report for the wire.
func FromSLAReport(rep slo.CustomerReport) SLAJSON {
	out := SLAJSON{
		Customer:     rep.Customer,
		Now:          rep.Now.String(),
		LifetimeS:    rep.TotalLifetime.Seconds(),
		DowntimeS:    rep.TotalDowntime.Seconds(),
		Availability: rep.Availability,
		Outages:      rep.OutageCount,
		Unattributed: rep.Unattributed,
	}
	for _, cr := range rep.Conns {
		cj := SLAConnJSON{
			ID:           cr.Conn,
			Customer:     cr.Customer,
			Activated:    cr.ActivatedAt.String(),
			Degraded:     cr.Degraded,
			LifetimeS:    cr.Lifetime.Seconds(),
			DowntimeS:    cr.Downtime.Seconds(),
			Availability: cr.Availability,
		}
		if cr.Released {
			cj.Released = cr.ReleasedAt.String()
		}
		for _, o := range cr.Outages {
			oj := SLAOutageJSON{
				Start:      o.Start.String(),
				Open:       o.Open,
				Seconds:    o.Duration(rep.Now).Seconds(),
				Cause:      o.Cause.String(),
				Link:       string(o.Link),
				Detail:     o.Detail,
				Resolution: o.Resolution,
			}
			if !o.Open {
				oj.End = o.End.String()
			}
			for _, p := range o.Phases {
				pj := SLAPhaseJSON{Name: p.Name, Start: p.Start.String(), Open: p.Open}
				if !p.Open {
					pj.Seconds = p.Duration().Seconds()
				} else {
					pj.Seconds = rep.Now.Sub(p.Start).Seconds()
				}
				oj.Phases = append(oj.Phases, pj)
			}
			for _, b := range o.Blocks {
				oj.Blocks = append(oj.Blocks, SLABlockJSON{At: b.At.String(), Reason: b.Reason})
			}
			cj.Outages = append(cj.Outages, oj)
		}
		out.Conns = append(out.Conns, cj)
	}
	return out
}

// TopologyJSON describes the network for display.
type TopologyJSON struct {
	PoPs   []string `json:"pops"`
	Fibers []string `json:"fibers"`
	Sites  []string `json:"sites"`
}

// ShardJSON reports one control-plane shard's load.
type ShardJSON struct {
	Index         int `json:"index"`
	Active        int `json:"active"`
	Pending       int `json:"pending"`
	Down          int `json:"down"`
	ChannelsInUse int `json:"channels_in_use"`
	Pipes         int `json:"pipes"`
}

// ShardsResponse describes the sharded control plane.
type ShardsResponse struct {
	Shards   int         `json:"shards"`
	PerShard []ShardJSON `json:"per_shard"`
}

// BillJSON reports a customer's usage bill.
type BillJSON struct {
	Customer string  `json:"customer"`
	GbHours  float64 `json:"gb_hours"`
}

// ErrorJSON carries an API error.
type ErrorJSON struct {
	Error string `json:"error"`
}

// MaintenanceJSON reports a maintenance outcome.
type MaintenanceJSON struct {
	Link     string   `json:"link"`
	Rolled   []string `json:"rolled"`
	Unmoved  []string `json:"unmoved"`
	Finished bool     `json:"finished"`
}
