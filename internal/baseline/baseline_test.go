package baseline

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
)

func TestOrderStaticLeadTime(t *testing.T) {
	c := OrderStatic(sim.Time(0), bw.Rate10G)
	if c.ProvisionedAt != sim.Time(StaticLeadTime) {
		t.Errorf("provisioned at %v, want %v", c.ProvisionedAt, StaticLeadTime)
	}
	// 1 TB at 10G = 800 s, plus three weeks of waiting.
	d, err := c.TransferTime(sim.Time(0), 1e12)
	if err != nil {
		t.Fatal(err)
	}
	want := StaticLeadTime + 800*time.Second
	if d != want {
		t.Errorf("transfer = %v, want %v", d, want)
	}
	// After provisioning there is no wait.
	d, err = c.TransferTime(sim.Time(30*24*time.Hour), 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if d != 800*time.Second {
		t.Errorf("post-provision transfer = %v", d)
	}
}

func TestTransferTimeValidation(t *testing.T) {
	c := StaticCircuit{}
	if _, err := c.TransferTime(0, 100); err == nil {
		t.Error("zero-rate circuit accepted")
	}
	c = OrderStatic(0, bw.Rate10G)
	if _, err := c.TransferTime(0, 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestCostModelOrdering(t *testing.T) {
	c := DefaultCosts()
	km, regens := 1000.0, 0
	work := c.WavelengthMonthly(km, regens)
	oneplus := c.OnePlusOneMonthly(km, regens, 1500, 0)
	shared := c.SharedRestoreMonthly(km, regens, 0.25)
	// Table 1 economics: restoration via a shared pool is far less
	// expensive than 1+1, and costs more than an unprotected wavelength.
	if !(work < shared && shared < oneplus) {
		t.Errorf("cost ordering broken: work=%v shared=%v 1+1=%v", work, shared, oneplus)
	}
	if oneplus < 2*work {
		t.Errorf("1+1 (%v) should cost at least double a working path (%v)", oneplus, work)
	}
	// Regens add cost.
	if c.WavelengthMonthly(km, 2) <= work {
		t.Error("regens free")
	}
	// Negative share ratio clamps.
	if c.SharedRestoreMonthly(km, 0, -1) != work {
		t.Error("negative share ratio not clamped")
	}
	// Sub-wavelength circuits are cheap.
	if c.CircuitMonthly(1, 1) >= work {
		t.Error("one ODU0 slot-hop costs as much as a wavelength")
	}
}

func TestUtilizationCost(t *testing.T) {
	// A static 10G circuit 10% utilized costs 10x per delivered bit vs
	// a fully used BoD wavelength.
	if got := UtilizationCost(100, 0.1); got != 1000 {
		t.Errorf("cost at 10%% = %v", got)
	}
	if got := UtilizationCost(100, 1); got != 100 {
		t.Errorf("cost at 100%% = %v", got)
	}
	if !math.IsInf(UtilizationCost(100, 0), 1) {
		t.Error("zero utilization should be infinite cost")
	}
	if got := UtilizationCost(100, 2); got != 100 {
		t.Error("utilization above 1 not clamped")
	}
}

func TestManualRestoreBounds(t *testing.T) {
	if ManualRestoreMin >= ManualRestoreMax {
		t.Error("manual restore bounds inverted")
	}
	if ManualRestoreMin != 4*time.Hour || ManualRestoreMax != 12*time.Hour {
		t.Error("manual restore bounds do not match the paper")
	}
}

func constantLeftover(bits float64) func(int, int) float64 {
	return func(int, int) float64 { return bits }
}

func TestStoreForwardConstantCapacity(t *testing.T) {
	sf := StoreForward{
		SlotLen:  time.Hour,
		Hops:     2,
		Leftover: constantLeftover(1e12), // 1 Tb per slot per hop
	}
	// 1 TB = 8e12 bits: 8 slots to leave the source, +1 pipeline fill.
	res, err := sf.Schedule(1e12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 9 {
		t.Errorf("slots = %d, want 9", res.Slots)
	}
	if res.Duration != 9*time.Hour {
		t.Errorf("duration = %v", res.Duration)
	}
	if res.PeakBuffered <= 0 {
		t.Error("no buffering recorded on a 2-hop chain")
	}
}

func TestStoreForwardBeatsDirectWithPhaseShift(t *testing.T) {
	// Hop 0 has capacity in even slots, hop 1 in odd slots (time-zone
	// phase shift): direct transfers get zero end-to-end capacity in
	// every slot, store-and-forward pipelines through the buffer. This is
	// NetStitcher's core claim.
	leftover := func(hop, slot int) float64 {
		if (slot+hop)%2 == 0 {
			return 1e12
		}
		return 0
	}
	sf := StoreForward{SlotLen: time.Hour, Hops: 2, Leftover: leftover, MaxSlots: 1000}
	res, err := sf.Schedule(1e12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sf.DirectOnly(1e12); err == nil {
		t.Fatal("direct transfer should never complete with anti-phased capacity")
	}
	if res.Slots > 20 {
		t.Errorf("store-and-forward took %d slots", res.Slots)
	}
}

func TestDirectOnlyMatchesWhenCapacityUniform(t *testing.T) {
	sf := StoreForward{SlotLen: time.Hour, Hops: 3, Leftover: constantLeftover(1e12)}
	d, err := sf.DirectOnly(1e12)
	if err != nil {
		t.Fatal(err)
	}
	if d.Slots != 8 {
		t.Errorf("direct slots = %d, want 8", d.Slots)
	}
	s, err := sf.Schedule(1e12)
	if err != nil {
		t.Fatal(err)
	}
	// Store-and-forward pays pipeline fill on a chain.
	if s.Slots < d.Slots {
		t.Errorf("SF (%d) beat direct (%d) under uniform capacity", s.Slots, d.Slots)
	}
}

func TestStoreForwardValidation(t *testing.T) {
	good := StoreForward{SlotLen: time.Hour, Hops: 1, Leftover: constantLeftover(1)}
	cases := []StoreForward{
		{SlotLen: time.Hour, Hops: 0, Leftover: constantLeftover(1)},
		{SlotLen: 0, Hops: 1, Leftover: constantLeftover(1)},
		{SlotLen: time.Hour, Hops: 1},
	}
	for i, sf := range cases {
		if _, err := sf.Schedule(100); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := good.Schedule(0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := good.DirectOnly(0); err == nil {
		t.Error("direct zero size accepted")
	}
	// Incompletable transfer errors out.
	dead := StoreForward{SlotLen: time.Hour, Hops: 1, Leftover: constantLeftover(0), MaxSlots: 10}
	if _, err := dead.Schedule(100); err == nil {
		t.Error("zero-capacity transfer completed")
	}
}

// Property: store-and-forward conserves data — it delivers everything and
// never takes longer than MaxSlots claims, and negative leftovers are
// treated as zero.
func TestStoreForwardConservationProperty(t *testing.T) {
	prop := func(size uint16, capSeed uint8) bool {
		bytes := float64(size%1000+1) * 1e9
		caps := []float64{1e10, 5e10, 1e11, -1e10}
		sf := StoreForward{
			SlotLen: time.Hour,
			Hops:    2,
			Leftover: func(hop, slot int) float64 {
				return caps[(hop+slot+int(capSeed))%len(caps)]
			},
			MaxSlots: 100000,
		}
		res, err := sf.Schedule(bytes)
		if err != nil {
			return false
		}
		return res.Slots > 0 && res.Duration == time.Duration(res.Slots)*time.Hour
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
