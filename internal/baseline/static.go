// Package baseline implements the comparison points of paper Table 1 and the
// related work: today's statically provisioned private lines (weeks of lead
// time, paid at peak), 1+1 protection economics, manual restoration, and a
// NetStitcher-style store-and-forward bulk scheduler that squeezes transfers
// into the leftover capacity of static circuits. These make GRIPhoN's wins
// quantitative on identical workloads.
package baseline

import (
	"fmt"
	"math"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
)

// StaticLeadTime is how long carriers take today to provision a private line
// at the highest data rates ("several weeks", paper Table 1).
const StaticLeadTime = 21 * 24 * time.Hour

// ManualRestoreMin and ManualRestoreMax bound today's manual restoration
// outage for full-wavelength services (paper: "4 to 12 hours typically").
const (
	ManualRestoreMin = 4 * time.Hour
	ManualRestoreMax = 12 * time.Hour
)

// StaticCircuit models today's statically provisioned private line: a fixed
// rate bought for the worst case and paid for around the clock.
type StaticCircuit struct {
	// Rate is the provisioned (peak) rate.
	Rate bw.Rate
	// ProvisionedAt is when the circuit finally came up, LeadTime after
	// the order.
	ProvisionedAt sim.Time
}

// OrderStatic simulates ordering a static circuit at order time: it is usable
// from order+StaticLeadTime.
func OrderStatic(order sim.Time, rate bw.Rate) StaticCircuit {
	return StaticCircuit{Rate: rate, ProvisionedAt: order.Add(StaticLeadTime)}
}

// TransferTime returns how long a transfer of sizeBytes takes on the static
// circuit, counted from the order: lead time first (if not yet provisioned),
// then size/rate.
func (s StaticCircuit) TransferTime(start sim.Time, sizeBytes float64) (sim.Duration, error) {
	if s.Rate <= 0 {
		return 0, fmt.Errorf("baseline: circuit has no rate")
	}
	if sizeBytes <= 0 {
		return 0, fmt.Errorf("baseline: non-positive size")
	}
	wait := sim.Duration(0)
	if start.Before(s.ProvisionedAt) {
		wait = s.ProvisionedAt.Sub(start)
	}
	xfer := sim.Duration(sizeBytes * 8 / float64(s.Rate) * float64(time.Second))
	return wait + xfer, nil
}

// Costs is a simple relative cost model for Table 1-style comparisons. Units
// are arbitrary "cost units"; only ratios matter.
type Costs struct {
	// OTMonthly is the monthly cost of one transponder.
	OTMonthly float64
	// RegenMonthly is the monthly cost of one regenerator.
	RegenMonthly float64
	// WavelengthKmMonthly is the monthly cost of one wavelength over one
	// km of fiber.
	WavelengthKmMonthly float64
	// ODU0Monthly is the monthly cost of one 1.25G OTN tributary.
	ODU0Monthly float64
}

// DefaultCosts returns ratios in line with published transport-economics
// studies: transponders dominate, regens cost roughly a transponder pair,
// and sub-wavelength grooming is cheap per unit.
func DefaultCosts() Costs {
	return Costs{
		OTMonthly:           10,
		RegenMonthly:        18,
		WavelengthKmMonthly: 0.01,
		ODU0Monthly:         1.5,
	}
}

// WavelengthMonthly returns the monthly cost of one wavelength connection
// over the given distance with the given regen count: two OTs, the regens,
// and the per-km charge.
func (c Costs) WavelengthMonthly(km float64, regens int) float64 {
	return 2*c.OTMonthly + float64(regens)*c.RegenMonthly + km*c.WavelengthKmMonthly
}

// OnePlusOneMonthly returns the 1+1 cost: both legs fully equipped.
func (c Costs) OnePlusOneMonthly(workKM float64, workRegens int, protKM float64, protRegens int) float64 {
	return c.WavelengthMonthly(workKM, workRegens) + c.WavelengthMonthly(protKM, protRegens)
}

// SharedRestoreMonthly returns the cost of GRIPhoN-style restoration: one
// working leg plus a fractional share of a restoration pool. shareRatio is
// the pool oversubscription (e.g. 0.25 = four working paths share one spare).
func (c Costs) SharedRestoreMonthly(km float64, regens int, shareRatio float64) float64 {
	if shareRatio < 0 {
		shareRatio = 0
	}
	return c.WavelengthMonthly(km, regens) * (1 + shareRatio)
}

// CircuitMonthly returns the monthly cost of an n-slot OTN circuit across
// hops pipes (each slot-hop bills one ODU0 unit).
func (c Costs) CircuitMonthly(slots, pipeHops int) float64 {
	return float64(slots*pipeHops) * c.ODU0Monthly
}

// UtilizationCost returns the effective cost per delivered bit-month for a
// circuit of the given monthly cost and average utilization in [0,1]. Static
// peak provisioning has low utilization; BoD approaches 1.
func UtilizationCost(monthly, utilization float64) float64 {
	if utilization <= 0 {
		return math.Inf(1)
	}
	if utilization > 1 {
		utilization = 1
	}
	return monthly / utilization
}
