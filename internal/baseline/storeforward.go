package baseline

import (
	"fmt"
	"math"
	"time"
)

// StoreForward is a NetStitcher-style bulk scheduler over a chain of data
// centers connected by statically provisioned circuits: data moves hop by hop
// in time slots, using only each hop's *leftover* capacity (what interactive
// traffic is not using that slot), and is stored at intermediate sites until
// the next hop has room. The paper cites this approach ([22]) as the
// state of the art it takes a different path from.
type StoreForward struct {
	// SlotLen is the scheduling granularity.
	SlotLen time.Duration
	// Leftover returns the usable bits of capacity on hop h (0-based)
	// during slot t. Diurnal patterns and time zones live in here.
	Leftover func(hop, slot int) float64
	// Hops is the number of circuits between source and destination.
	Hops int
	// MaxSlots bounds the search (a transfer not done by then fails).
	MaxSlots int
}

// Result describes a scheduled bulk transfer.
type Result struct {
	// Slots is the number of slots until the last bit reached the
	// destination.
	Slots int
	// Duration is Slots * SlotLen.
	Duration time.Duration
	// PeakBuffered is the largest amount (bits) parked at any
	// intermediate site at once — the storage requirement.
	PeakBuffered float64
}

// Schedule pushes sizeBytes through the chain and returns when the transfer
// completes. It fails if the transfer does not finish within MaxSlots.
func (sf StoreForward) Schedule(sizeBytes float64) (Result, error) {
	if sf.Hops < 1 {
		return Result{}, fmt.Errorf("baseline: need at least one hop")
	}
	if sf.SlotLen <= 0 {
		return Result{}, fmt.Errorf("baseline: non-positive slot length")
	}
	if sf.Leftover == nil {
		return Result{}, fmt.Errorf("baseline: nil Leftover function")
	}
	if sizeBytes <= 0 {
		return Result{}, fmt.Errorf("baseline: non-positive size")
	}
	maxSlots := sf.MaxSlots
	if maxSlots <= 0 {
		maxSlots = 1 << 20
	}

	bits := sizeBytes * 8
	// buffer[0] = at source, buffer[Hops] = delivered.
	buffer := make([]float64, sf.Hops+1)
	buffer[0] = bits
	var peak float64

	for t := 0; t < maxSlots; t++ {
		// Drain from the last hop backwards so data moved this slot
		// does not traverse two hops in one slot.
		for h := sf.Hops - 1; h >= 0; h-- {
			room := sf.Leftover(h, t)
			if room < 0 {
				room = 0
			}
			m := math.Min(buffer[h], room)
			buffer[h] -= m
			buffer[h+1] += m
		}
		var buffered float64
		for i := 1; i < sf.Hops; i++ {
			buffered += buffer[i]
		}
		if buffered > peak {
			peak = buffered
		}
		if buffer[sf.Hops] >= bits-1e-6 {
			return Result{
				Slots:        t + 1,
				Duration:     time.Duration(t+1) * sf.SlotLen,
				PeakBuffered: peak,
			}, nil
		}
	}
	return Result{}, fmt.Errorf("baseline: transfer incomplete after %d slots", maxSlots)
}

// DirectOnly schedules the same transfer WITHOUT store-and-forward: in each
// slot only min over all hops of the leftover capacity can flow end to end
// (what you get when intermediate sites cannot buffer). Always at least as
// slow as Schedule.
func (sf StoreForward) DirectOnly(sizeBytes float64) (Result, error) {
	if sf.Hops < 1 || sf.SlotLen <= 0 || sf.Leftover == nil || sizeBytes <= 0 {
		return Result{}, fmt.Errorf("baseline: bad direct-only inputs")
	}
	maxSlots := sf.MaxSlots
	if maxSlots <= 0 {
		maxSlots = 1 << 20
	}
	left := sizeBytes * 8
	for t := 0; t < maxSlots; t++ {
		room := math.Inf(1)
		for h := 0; h < sf.Hops; h++ {
			room = math.Min(room, math.Max(0, sf.Leftover(h, t)))
		}
		left -= room
		if left <= 1e-6 {
			return Result{Slots: t + 1, Duration: time.Duration(t+1) * sf.SlotLen}, nil
		}
	}
	return Result{}, fmt.Errorf("baseline: transfer incomplete after %d slots", maxSlots)
}
