// Package bw defines bandwidth rates shared by every layer: the DWDM layer
// switches whole wavelengths (10G/40G), the OTN layer grooms ODU0 (1.25G)
// tributaries, and customer requests range from 1G to 40G (paper §1).
package bw

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Rate is a bandwidth in bits per second.
type Rate int64

// Common rates. ODU payload rates are rounded to their nominal client rates;
// the simulator does not model OTN framing overhead.
const (
	Mbps Rate = 1e6
	Gbps Rate = 1e9

	// Rate1G is the lowest BoD rate the paper offers (one ODU0 client).
	Rate1G = 1 * Gbps
	// Rate2G5 is a SONET/muxponder sub-wavelength rate.
	Rate2G5 = Rate(2.5e9)
	// Rate10G is the prototype's wavelength rate.
	Rate10G = 10 * Gbps
	// Rate40G is the target wavelength rate ("with plans to go to 40 Gbps").
	Rate40G = 40 * Gbps
	// Rate100G is the upper end of modern DWDM channels (paper §2.1).
	Rate100G = 100 * Gbps
)

// GbpsOf returns a Rate from a (possibly fractional) number of Gb/s.
func GbpsOf(g float64) Rate { return Rate(math.Round(g * 1e9)) }

// Gbps returns the rate as a floating-point number of Gb/s.
func (r Rate) Gbps() float64 { return float64(r) / 1e9 }

// Bps returns the rate in bits per second.
func (r Rate) Bps() float64 { return float64(r) }

// String renders the rate compactly: "1G", "2.5G", "10G", "622M".
func (r Rate) String() string {
	switch {
	case r <= 0:
		return "0"
	case r%Gbps == 0:
		return fmt.Sprintf("%dG", r/Gbps)
	case r >= Gbps:
		s := strconv.FormatFloat(float64(r)/1e9, 'f', -1, 64)
		return s + "G"
	case r%Mbps == 0:
		return fmt.Sprintf("%dM", r/Mbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Parse converts strings like "1G", "2.5G", "10G", "622M" into a Rate. The
// unit suffix (G or M) is required: bandwidth without a unit is ambiguous.
func Parse(s string) (Rate, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("bw: empty rate")
	}
	var mult Rate
	switch t[len(t)-1] {
	case 'G':
		mult = Gbps
	case 'M':
		mult = Mbps
	default:
		return 0, fmt.Errorf("bw: rate %q needs a G or M unit suffix", s)
	}
	v, err := strconv.ParseFloat(t[:len(t)-1], 64)
	if err != nil {
		return 0, fmt.Errorf("bw: bad rate %q: %v", s, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("bw: rate %q is not positive", s)
	}
	return Rate(math.Round(v * float64(mult))), nil
}
