package bw

import (
	"testing"
	"testing/quick"
)

func TestString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{Rate1G, "1G"},
		{Rate2G5, "2.5G"},
		{Rate10G, "10G"},
		{Rate40G, "40G"},
		{Rate100G, "100G"},
		{622 * Mbps, "622M"},
		{0, "0"},
		{-5, "0"},
		{1234, "1234bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.r), got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rate
	}{
		{"1G", Rate1G},
		{"2.5G", Rate2G5},
		{"10g", Rate10G},
		{"40G", Rate40G},
		{"622M", 622 * Mbps},
		{" 10G ", Rate10G},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "G", "abc", "-1G", "0G", "0"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestGbpsRoundTrip(t *testing.T) {
	prop := func(n uint8) bool {
		g := float64(n%100) + 0.5
		return GbpsOf(g).Gbps() == g
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, r := range []Rate{Rate1G, Rate2G5, Rate10G, Rate40G, Rate100G, 622 * Mbps} {
		back, err := Parse(r.String())
		if err != nil {
			t.Errorf("Parse(%v): %v", r, err)
			continue
		}
		if back != r {
			t.Errorf("round trip %v -> %q -> %v", r, r.String(), back)
		}
	}
}

func FuzzParse(f *testing.F) {
	for _, seed := range []string{"1G", "2.5G", "622M", "0", "-3G", "G", "10g ", "1e9", "9999999G"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		if r <= 0 {
			t.Fatalf("Parse(%q) succeeded with non-positive rate %d", s, int64(r))
		}
		// A successfully parsed rate must round-trip through String for
		// the canonical formats.
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("re-Parse(%q) of Parse(%q): %v", r.String(), s, err)
		}
		if back != r {
			t.Fatalf("round trip %q -> %v -> %v", s, r, back)
		}
	})
}
