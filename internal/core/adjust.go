package core

import (
	"fmt"

	"griphon/internal/bw"
	"griphon/internal/ems"
	"griphon/internal/inventory"
	"griphon/internal/obs"
	"griphon/internal/otn"
	"griphon/internal/sim"
	"griphon/internal/slo"
)

// AdjustRate changes an active connection's bandwidth in place — the paper's
// core promise: "the inter-data center communication network which was
// previously statically provisioned can now be viewed as adjustable".
//
// OTN circuits resize by adding or releasing tributary slots on their
// existing pipes (electronic, seconds, hitless). Wavelength connections
// re-tune to another wavelength rate when their transponders support it
// (brief hit while the line re-frames). Moves that cross the OTN/DWDM
// boundary (e.g. 1G -> 10G) are rejected: that is a new connection, not an
// adjustment.
func (c *Controller) AdjustRate(cust inventory.Customer, id ConnID, newRate bw.Rate) (*sim.Job, error) {
	conn := c.conns[id]
	if conn == nil {
		return nil, fmt.Errorf("core: unknown connection %s", id)
	}
	if err := c.ledger.Verify(cust, connKey(id)); err != nil {
		return nil, err
	}
	if conn.State != StateActive {
		return nil, fmt.Errorf("core: connection %s is %v; adjust needs an active connection", id, conn.State)
	}
	if newRate == conn.Rate {
		return c.k.CompletedJob(nil), nil
	}
	parts, err := PlaceRate(newRate)
	if err != nil {
		return nil, err
	}
	if len(parts) > 1 {
		return nil, fmt.Errorf("core: %v needs a composite service; adjust cannot split a connection", newRate)
	}
	if layerFor(newRate) != conn.Layer {
		return nil, fmt.Errorf("core: %v -> %v crosses the %v/%v boundary; tear down and reconnect",
			conn.Rate, newRate, conn.Layer, layerFor(newRate))
	}

	// Admission deltas: access pipes and quota, atomically.
	txn := inventory.NewTxn()
	defer txn.Rollback()
	delta := newRate - conn.Rate
	if delta > 0 {
		siteA, siteB := c.g.Site(conn.From), c.g.Site(conn.To)
		if err := txn.Do(
			func() error { return c.reserveAccess(siteA, siteB, delta) },
			func() { c.releaseAccess(conn.From, conn.To, delta) },
		); err != nil {
			return nil, err
		}
		if err := txn.Do(
			func() error { return c.ledger.Admit(cust, delta) },
			func() { c.ledger.Discharge(cust, delta) }, //lint:allow errcheck rollback
		); err != nil {
			return nil, err
		}
	}

	adjSp := c.tr.Start(obs.SpanRef{}, "op:adjust")
	adjSp.SetConn(string(conn.ID), string(conn.Customer), conn.Layer.String())
	var job *sim.Job
	switch conn.Layer {
	case LayerOTN:
		job, err = c.adjustCircuit(txn, conn, newRate, adjSp)
	case LayerDWDM:
		job, err = c.adjustWavelength(conn, newRate, adjSp)
	}
	if err != nil {
		adjSp.EndErr(err)
		return nil, err
	}
	job.OnDone(func(err error) { adjSp.EndErr(err) })
	c.ins.adjusts.Inc()

	conn.settleUsage(c.k.Now()) // bill the old rate up to this instant
	oldRate := conn.Rate
	if delta < 0 {
		// Shrinks cannot fail admission; settle the books directly.
		c.releaseAccess(conn.From, conn.To, -delta)
		c.ledger.Discharge(cust, -delta) //lint:allow errcheck symmetric
	}
	conn.Rate = newRate
	txn.Commit()
	c.log(id, "adjust", "rate %v -> %v", oldRate, newRate)
	c.journalCommit(commitSet{reason: "adjust", conns: []*Connection{conn}})
	return job, nil
}

// adjustCircuit resizes an OTN circuit on its existing pipes.
func (c *Controller) adjustCircuit(txn *inventory.Txn, conn *Connection, newRate bw.Rate, parent obs.SpanRef) (*sim.Job, error) {
	newSlots, err := otn.SlotsFor(newRate)
	if err != nil {
		return nil, err
	}
	delta := newSlots - conn.slots
	owner := string(conn.ID)
	switch {
	case delta > 0:
		for _, p := range conn.pipes {
			p := p
			if err := txn.Do(
				func() error { _, err := p.Reserve(owner, delta); return err },
				func() { p.ReleaseSlots(owner, delta) }, //lint:allow errcheck rollback
			); err != nil {
				return nil, fmt.Errorf("core: cannot grow %s on pipe %s: %w", conn.ID, p.ID(), err)
			}
		}
	case delta < 0:
		for _, p := range conn.pipes {
			p := p
			if err := txn.Do(
				func() error { return p.ReleaseSlots(owner, -delta) },
				func() { p.Reserve(owner, -delta) }, //lint:allow errcheck rollback
			); err != nil {
				return nil, err
			}
		}
	}
	conn.slots = newSlots
	// Resize the shared-mesh backup to match; if the backup cannot grow,
	// drop it (the circuit continues unprotected rather than fail the
	// adjustment, and the event log says so).
	if len(conn.backup) > 0 {
		owner := string(conn.ID)
		for _, p := range conn.backup {
			p.ReleaseShared(owner) //lint:allow errcheck re-registering below
		}
		if err := otn.ReserveSharedPath(conn.backup, owner, newSlots); err != nil {
			c.log(conn.ID, "no-backup", "shared-mesh backup lost on resize: %v", err)
			conn.backup = nil
		}
	}
	// Reprogram the switches (hitless: make-before-break inside the
	// switch fabric).
	return c.otnEMS.SubmitBatch(c.circuitProgramCmds(len(conn.pipes)+1, parent)), nil
}

// adjustWavelength re-tunes a wavelength connection to a different line rate
// on its existing transponders and path.
func (c *Controller) adjustWavelength(conn *Connection, newRate bw.Rate, parent obs.SpanRef) (*sim.Job, error) {
	lp := conn.working()
	for _, ot := range lp.ots {
		if ot != nil && ot.MaxRate < newRate {
			return nil, fmt.Errorf("core: transponder %s tops out at %v; %v needs a new connection", ot.ID, ot.MaxRate, newRate)
		}
	}
	if conn.protect != nil {
		for _, ot := range conn.protect.ots {
			if ot != nil && ot.MaxRate < newRate {
				return nil, fmt.Errorf("core: protect transponder %s tops out at %v", ot.ID, ot.MaxRate)
			}
		}
	}
	// The new rate's optical reach must still cover every transparent
	// segment of the existing path (higher rates reach less far).
	reach := c.plant.ReachFor(newRate)
	for _, seg := range lp.route.Plan.Segments {
		if seg.KM > reach {
			return nil, fmt.Errorf("core: %v reach (%.0f km) cannot cover the %.0f km transparent segment; re-provision instead", newRate, reach, seg.KM)
		}
	}
	// Re-framing the line briefly interrupts traffic.
	hit := c.jit(c.lat.ProtectionSwitch)
	c.connDown(conn, slo.CauseAdjust, "", "rate re-frame hit", "hit")
	out := c.k.NewJob()
	c.k.After(hit, func() {
		c.connUp(conn, "adjust-done")
		batch := c.roadmEMS.SubmitBatch([]ems.Command{
			{Name: "rate-retune", Dur: c.jit(c.lat.LaserTune), Span: parent},
			{Name: "verify", Dur: c.jit(c.lat.VerifyEndToEnd), Span: parent},
		})
		batch.OnDone(func(err error) { out.Complete(err) })
	})
	return out, nil
}
