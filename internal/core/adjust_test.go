package core

import (
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func TestAdjustCircuitGrow(t *testing.T) {
	k, c := newTestbed(t, 90)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	pipe := conn.pipes[0]
	if pipe.UsedSlots() != 1 {
		t.Fatalf("slots = %d", pipe.UsedSlots())
	}
	job, err := c.AdjustRate("x", conn.ID, bw.Rate2G5)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if conn.Rate != bw.Rate2G5 || conn.slots != 2 {
		t.Errorf("rate=%v slots=%d", conn.Rate, conn.slots)
	}
	if pipe.UsedSlots() != 2 {
		t.Errorf("pipe slots = %d, want 2", pipe.UsedSlots())
	}
	// Growing is hitless.
	if conn.TotalOutage != 0 {
		t.Errorf("grow caused outage %v", conn.TotalOutage)
	}
	// Accounting followed.
	if c.AccessUsed("DC-A") != bw.Rate2G5 {
		t.Errorf("access = %v", c.AccessUsed("DC-A"))
	}
	if u := c.Ledger().UsageOf("x"); u.Bandwidth != bw.Rate2G5 {
		t.Errorf("ledger = %+v", u)
	}
}

func TestAdjustCircuitShrink(t *testing.T) {
	k, c := newTestbed(t, 91)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: 5 * bw.Gbps})
	pipe := conn.pipes[0]
	if pipe.UsedSlots() != 8 { // 5G -> ODU2 -> 8 slots
		t.Fatalf("slots = %d", pipe.UsedSlots())
	}
	job, err := c.AdjustRate("x", conn.ID, bw.Rate1G)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if pipe.UsedSlots() != 1 {
		t.Errorf("pipe slots after shrink = %d", pipe.UsedSlots())
	}
	if c.AccessUsed("DC-A") != bw.Rate1G {
		t.Errorf("access = %v", c.AccessUsed("DC-A"))
	}
	// Freed slots are usable by someone else immediately (2.5G = 2 slots
	// fits the 7 now free).
	conn2 := mustConnect(t, k, c, Request{Customer: "y", From: "DC-A", To: "DC-B", Rate: bw.Rate2G5})
	if conn2.pipes[0] != pipe {
		t.Error("new circuit did not groom into the freed slots")
	}
}

func TestAdjustCircuitGrowBlockedByFullPipe(t *testing.T) {
	k, c := newTestbed(t, 92)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	// Fill the rest of the pipe.
	hog := mustConnect(t, k, c, Request{Customer: "y", From: "DC-A", To: "DC-B", Rate: 5 * bw.Gbps})
	_ = hog
	pipe := conn.pipes[0]
	free := pipe.FreeSlots()
	if _, err := c.AdjustRate("x", conn.ID, bw.Rate10G); err == nil {
		t.Fatal("grow beyond pipe capacity accepted")
	}
	// Nothing changed.
	if conn.Rate != bw.Rate1G || pipe.FreeSlots() != free {
		t.Errorf("failed grow mutated state: rate=%v free=%d", conn.Rate, pipe.FreeSlots())
	}
	if c.AccessUsed("DC-A") != bw.Rate1G+5*bw.Gbps {
		t.Errorf("access leaked: %v", c.AccessUsed("DC-A"))
	}
}

func TestAdjustWavelengthRetune(t *testing.T) {
	k, c := newTestbed(t, 93)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	// Best-fit allocation gave this 10G request 10G OTs, which cannot
	// carry 40G.
	if _, err := c.AdjustRate("x", conn.ID, bw.Rate40G); err == nil {
		t.Fatal("40G on 10G transponders accepted")
	}

	// A 40G connection CAN drop to 10G (transponders support both).
	k, c = newTestbed(t, 193)
	conn40 := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate40G})
	job, err := c.AdjustRate("x", conn40.ID, bw.Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if conn40.Rate != bw.Rate10G {
		t.Errorf("rate = %v", conn40.Rate)
	}
	// Re-framing caused only a brief hit.
	if conn40.TotalOutage == 0 || conn40.TotalOutage > 200*time.Millisecond {
		t.Errorf("retune hit = %v", conn40.TotalOutage)
	}
	// And back up to 40G works on these transponders.
	job, err = c.AdjustRate("x", conn40.ID, bw.Rate40G)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil || conn40.Rate != bw.Rate40G {
		t.Errorf("re-grow failed: %v rate=%v", job.Err(), conn40.Rate)
	}
}

func TestAdjustValidation(t *testing.T) {
	k, c := newTestbed(t, 94)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if _, err := c.AdjustRate("y", conn.ID, bw.Rate2G5); err == nil {
		t.Error("cross-customer adjust accepted")
	}
	if _, err := c.AdjustRate("x", "C9999", bw.Rate2G5); err == nil {
		t.Error("unknown connection accepted")
	}
	if _, err := c.AdjustRate("x", conn.ID, bw.Rate10G); err == nil {
		t.Error("OTN->DWDM boundary crossing accepted")
	}
	if _, err := c.AdjustRate("x", conn.ID, 12*bw.Gbps); err == nil {
		t.Error("composite target accepted")
	}
	if _, err := c.AdjustRate("x", conn.ID, 500*bw.Mbps); err == nil {
		t.Error("sub-1G target accepted")
	}
	// No-op adjust succeeds trivially.
	job, err := c.AdjustRate("x", conn.ID, bw.Rate1G)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Error(job.Err())
	}
	// Down connections cannot be adjusted.
	wave := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: Unprotected})
	c.CutFiber(wave.Route().Links[0])
	if _, err := c.AdjustRate("x", wave.ID, bw.Rate10G); err == nil {
		t.Error("adjust of a down connection accepted")
	}
	k.Run()
}

func TestAdjustAccessPipeLimit(t *testing.T) {
	k := sim.NewKernel(95)
	// A site with a tiny 2G access pipe.
	g := topo.Testbed()
	g.AddSite(topo.Site{ID: "DC-TINY", Home: "III", AccessGbps: 2})
	c, err := New(k, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-TINY", To: "DC-C", Rate: bw.Rate1G})
	// Growing to 2.5G exceeds the 2G access pipe.
	if _, err := c.AdjustRate("x", conn.ID, bw.Rate2G5); err == nil {
		t.Error("grow beyond access pipe accepted")
	}
	if conn.Rate != bw.Rate1G || c.AccessUsed("DC-TINY") != bw.Rate1G {
		t.Errorf("failed grow mutated state: rate=%v access=%v", conn.Rate, c.AccessUsed("DC-TINY"))
	}
}

func TestAdjustResizesSharedBackup(t *testing.T) {
	k, c := newTestbed(t, 96)
	// Pipe triangle for a disjoint backup.
	for _, pair := range [][2]topo.NodeID{{"I", "III"}, {"III", "IV"}, {"I", "IV"}} {
		job, err := c.EnsurePipe(pair[0], pair[1], 2) // otn.ODU2
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		if job.Err() != nil {
			t.Fatal(job.Err())
		}
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if len(conn.backup) == 0 {
		t.Fatal("no backup")
	}
	job, err := c.AdjustRate("x", conn.ID, bw.Rate2G5)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	for _, p := range conn.backup {
		if p.SharedDemand() != 2 {
			t.Errorf("backup shared demand = %d, want 2 after resize", p.SharedDemand())
		}
	}
}

func TestRateDependentReach(t *testing.T) {
	k := sim.NewKernel(97)
	cfg := Config{}
	cfg.Optics.Channels = 80
	cfg.Optics.ReachKM = 2500
	cfg.Optics.OTsPerNode = 8
	cfg.Optics.RegensPerNode = 2
	cfg.Optics.ReachByRate = map[bw.Rate]float64{bw.Rate40G: 300}
	// Testbed with roomy access pipes so both connections fit.
	src := topo.Testbed()
	g := topo.New()
	for _, n := range src.Nodes() {
		g.AddNode(*n)
	}
	for _, l := range src.Links() {
		g.AddLink(*l)
	}
	for _, s := range src.Sites() {
		site := *s
		site.AccessGbps = 100
		g.AddSite(site)
	}
	c, err := New(k, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10G: full reach, takes the 1-hop 320 km path transparently.
	c10 := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if c10.Route().Hops() != 1 || len(c10.path.regens) != 0 {
		t.Errorf("10G: route %s regens %d", c10.Route(), len(c10.path.regens))
	}
	// 40G: 300 km reach cannot cross I-IV (320 km) or I-III (310 km)
	// transparently; the controller must take I-II-III-IV with regens.
	c40 := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate40G})
	if c40.Route().String() != "I-II-III-IV" {
		t.Errorf("40G route = %s, want the regenerable 3-hop path", c40.Route())
	}
	if len(c40.path.regens) != 2 {
		t.Errorf("40G regens = %d, want 2 (at II and III)", len(c40.path.regens))
	}
	// The 40G setup costs more (regen configuration steps).
	if c40.SetupTime() <= c10.SetupTime() {
		t.Errorf("40G setup %v not slower than 10G %v", c40.SetupTime(), c10.SetupTime())
	}
	// Upgrading the 10G connection in place to 40G must be refused: its
	// 320 km transparent segment exceeds the 40G reach.
	if _, err := c.AdjustRate("x", c10.ID, bw.Rate40G); err == nil {
		t.Error("40G adjust over a segment beyond 40G reach accepted")
	}
}
