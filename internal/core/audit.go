package core

import (
	"fmt"
	"sort"
	"strings"

	"griphon/internal/bw"
)

// Finding is one invariant violation reported by AuditInvariants.
type Finding struct {
	// Kind names the broken invariant ("spectrum-owner", "ot-count", ...).
	Kind string
	// Detail says what exactly is wrong, with identifiers.
	Detail string
}

func (f Finding) String() string { return f.Kind + ": " + f.Detail }

// AuditInvariants sweeps the whole resource database for cross-layer
// accounting drift: orphaned spectrum, leaked transponders, OTN slot books
// that do not sum, over-subscribed access pipes, ROADM or FXC state owned by
// dead connections, and ledger claims with no connection behind them. It
// returns every violation found (empty means the books balance). The chaos
// soak calls it after every operation; tests call it through checkInvariants.
//
// The check is read-only and safe at any instant of virtual time: every
// mutation in the controller happens atomically within one event, so between
// events the books must always balance, even with setups and teardowns in
// flight.
func (c *Controller) AuditInvariants() []Finding {
	var out []Finding
	report := func(kind, format string, args ...any) {
		out = append(out, Finding{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}

	// Live (resource-holding) connections index every ownership check below.
	live := map[string]*Connection{}
	for _, conn := range c.conns {
		if conn.State != StateReleased {
			live[string(conn.ID)] = conn
		}
	}

	// 1. Every occupied (link, wavelength) pair is owned by a live connection.
	for _, l := range c.g.Links() {
		sp := c.plant.Spectrum(l.ID)
		for _, ch := range sp.UsedChannels() {
			if _, ok := live[sp.Owner(ch)]; !ok {
				report("spectrum-owner", "channel %d on %s owned by dead %q", ch, l.ID, sp.Owner(ch))
			}
		}
	}

	// 2. Transponders in use: exactly two per live DWDM lightpath (working
	// and 1+1 protect legs count separately).
	wantOTs := 0
	for _, conn := range live {
		if conn.Layer != LayerDWDM {
			continue
		}
		wantOTs += 2
		if conn.Protect == OnePlusOne {
			wantOTs += 2
		}
	}
	gotOTs := 0
	for _, n := range c.g.Nodes() {
		pool := c.plant.OTs(n.ID)
		gotOTs += pool.InUse()
		if pool.InUse() < 0 || pool.InUse() > pool.Total() {
			report("ot-pool", "node %s transponder pool %d/%d out of range", n.ID, pool.InUse(), pool.Total())
		}
		rp := c.plant.Regens(n.ID)
		if rp.InUse() < 0 || rp.InUse() > rp.Total() {
			report("regen-pool", "node %s regen pool %d/%d out of range", n.ID, rp.InUse(), rp.Total())
		}
	}
	if gotOTs != wantOTs {
		report("ot-count", "transponders in use = %d, want %d for the live lightpaths", gotOTs, wantOTs)
	}

	// 3. OTN pipes: slot books sum, and every slot or shared reservation is
	// owned by a live connection.
	for _, p := range c.fabric.Pipes() {
		if p.UsedSlots()+p.FreeSlots() != p.TotalSlots() {
			report("pipe-slots", "pipe %s books broken: %d used + %d free != %d total",
				p.ID(), p.UsedSlots(), p.FreeSlots(), p.TotalSlots())
		}
		for _, owner := range p.Owners() {
			if _, ok := live[owner]; !ok {
				report("pipe-owner", "pipe %s slots owned by dead %q", p.ID(), owner)
			}
		}
		for _, owner := range p.SharedOwners() {
			if _, ok := live[owner]; !ok {
				report("pipe-shared-owner", "pipe %s shared reservation by dead %q", p.ID(), owner)
			}
		}
	}

	// 4. Access pipes never oversubscribed or negative.
	for _, site := range c.g.Sites() {
		if used := c.accessUsed[site.ID]; used > bw.GbpsOf(site.AccessGbps) || used < 0 {
			report("access", "site %s access used %v of %dG", site.ID, used, site.AccessGbps)
		}
	}

	// 5. ROADM add/drop accounting in range, and every configured segment is
	// owned by a live connection (segment owners are "<conn>#lpN.segM").
	for _, n := range c.g.Nodes() {
		node := c.roadms.Node(n.ID)
		if node.AddDropUsed() < 0 || node.AddDropFree() < 0 {
			report("roadm-ports", "ROADM %s port accounting negative (%d used, %d free)",
				n.ID, node.AddDropUsed(), node.AddDropFree())
		}
		for _, owner := range node.Owners() {
			id := owner
			if i := strings.IndexByte(owner, '#'); i >= 0 {
				id = owner[:i]
			}
			if _, ok := live[id]; !ok {
				report("roadm-owner", "ROADM %s holds state for dead %q", n.ID, owner)
			}
		}
	}

	// 6. Every FXC cross-connect is owned by a live connection.
	for _, n := range c.g.Nodes() {
		sw := c.fxcs[n.ID]
		if sw == nil {
			continue
		}
		for _, owner := range sw.Owners() {
			if _, ok := live[owner]; !ok {
				report("fxc-owner", "FXC %s cross-connect owned by dead %q", n.ID, owner)
			}
		}
	}

	// 7. Ledger: claims and live connections match one-to-one, and billed
	// bandwidth equals the live rates — customers' and the carrier's.
	claimed := map[string]bool{}
	for _, key := range c.ledger.Claims() {
		claimed[key] = true
		if id, ok := strings.CutPrefix(key, "conn:"); ok {
			if _, isLive := live[id]; !isLive {
				report("ledger-claim", "claim %q has no live connection", key)
			}
		}
	}
	liveIDs := make([]string, 0, len(live))
	for id := range live {
		liveIDs = append(liveIDs, id)
	}
	sort.Strings(liveIDs)
	for _, id := range liveIDs {
		if !claimed[connKey(ConnID(id))] {
			report("ledger-claim", "live connection %s holds no ledger claim", id)
		}
	}
	var wantCust, wantCarrier bw.Rate
	for _, conn := range live {
		if conn.Internal {
			wantCarrier += conn.Rate
		} else {
			wantCust += conn.Rate
		}
	}
	var gotCust, gotCarrier bw.Rate
	for _, cust := range c.ledger.Customers() {
		if cust == CarrierCustomer {
			gotCarrier += c.ledger.UsageOf(cust).Bandwidth
		} else {
			gotCust += c.ledger.UsageOf(cust).Bandwidth
		}
	}
	if gotCust != wantCust {
		report("ledger-bandwidth", "customer bandwidth %v, want %v", gotCust, wantCust)
	}
	if gotCarrier != wantCarrier {
		report("ledger-bandwidth", "carrier bandwidth %v, want %v", gotCarrier, wantCarrier)
	}
	return out
}
