package core

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"testing"

	"griphon/internal/bw"
	"griphon/internal/fxc"
	"griphon/internal/optics"
	"griphon/internal/otn"
)

// TestAuditInvariantsDetectsLeaks plants one deliberate leak of each kind
// directly in the resource layers — behind the controller's back — and checks
// the auditor names it, then undoes the leak and checks the books balance
// again. This is the auditor's own regression test: a checker that cannot see
// a planted leak would give the chaos soak false confidence.
func TestAuditInvariantsDetectsLeaks(t *testing.T) {
	k, c := newTestbed(t, 501)
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	pj, err := c.EnsurePipe("I", "III", otn.ODU2)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if pj.Err() != nil {
		t.Fatal(pj.Err())
	}
	auditClean(t, c)

	expectFinding := func(kind string) {
		t.Helper()
		for _, f := range c.AuditInvariants() {
			if f.Kind == kind {
				return
			}
		}
		t.Errorf("planted %s leak not detected; findings: %v", kind, c.AuditInvariants())
	}

	// 1. A wavelength reserved by nobody the controller knows.
	sp := c.Plant().Spectrum("I-II")
	if err := sp.Reserve(optics.Channel(5), "ghost"); err != nil {
		t.Fatal(err)
	}
	expectFinding("spectrum-owner")
	sp.Release(optics.Channel(5)) //lint:allow errcheck undoing the planted leak

	// 2. A transponder allocated outside any lightpath.
	ot, err := c.Plant().OTs("II").Alloc(bw.Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	expectFinding("ot-count")
	c.Plant().OTs("II").Release(ot) //lint:allow errcheck undoing the planted leak

	// 3. OTN tributary slots held by a dead owner.
	pipe := c.Fabric().Pipes()[0]
	if _, err := pipe.Reserve("ghost", 2); err != nil {
		t.Fatal(err)
	}
	expectFinding("pipe-owner")
	if _, err := pipe.ReleaseOwner("ghost"); err != nil {
		t.Fatal(err)
	}

	// 4. An FXC cross-connect with no connection behind it.
	sw := c.FXC("I")
	cp, err := sw.FreePort(fxc.Client)
	if err != nil {
		t.Fatal(err)
	}
	lnp, err := sw.FreePort(fxc.Line)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(cp, lnp, "ghost"); err != nil {
		t.Fatal(err)
	}
	expectFinding("fxc-owner")
	sw.Disconnect(cp) //lint:allow errcheck undoing the planted leak

	// 5. A ledger claim whose connection is gone.
	if err := c.Ledger().Claim("x", "conn:ghost"); err != nil {
		t.Fatal(err)
	}
	expectFinding("ledger-claim")
	c.Ledger().Release("x", "conn:ghost") //lint:allow errcheck undoing the planted leak

	// Every leak undone: the books balance again.
	auditClean(t, c)
}

// TestAuditFindingsDeterministicOrder pins the auditor's output order: the
// flight recorder diffs findings across runs, so two audits of the same state
// must produce identical, sorted reports. With a dozen planted violations the
// pre-fix map-order iteration produced a different permutation per call.
func TestAuditFindingsDeterministicOrder(t *testing.T) {
	_, c := newTestbed(t, 502)

	// A dozen live connections that hold no ledger claim, planted directly in
	// the connection index behind the controller's back.
	for i := 0; i < 12; i++ {
		id := ConnID(fmt.Sprintf("ghost-%02d", i))
		c.conns[id] = &Connection{ID: id, State: StateActive, Layer: LayerOTN}
	}

	claimFindings := func() []string {
		var out []string
		for _, f := range c.AuditInvariants() {
			if f.Kind == "ledger-claim" {
				out = append(out, f.Detail)
			}
		}
		return out
	}

	first := claimFindings()
	if len(first) != 12 {
		t.Fatalf("planted 12 claimless connections, auditor reported %d: %v", len(first), first)
	}
	if !sort.StringsAreSorted(first) {
		t.Errorf("ledger-claim findings not sorted by connection ID:\n%s", strings.Join(first, "\n"))
	}
	second := claimFindings()
	if !slices.Equal(first, second) {
		t.Errorf("two audits of identical state disagree on order:\n%v\nvs\n%v", first, second)
	}
}
