package core

import (
	"testing"

	"griphon/internal/bw"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// BenchmarkConnectDisconnect measures one full wavelength lifecycle
// (admission, reservation, EMS choreography, teardown) in wall time.
func BenchmarkConnectDisconnect(b *testing.B) {
	k := sim.NewKernel(1)
	c, err := New(k, topo.Testbed(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		conn, job, err := c.Connect(Request{Customer: "b", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
		if err != nil {
			b.Fatal(err)
		}
		k.Run()
		if job.Err() != nil {
			b.Fatal(job.Err())
		}
		td, err := c.Disconnect("b", conn.ID)
		if err != nil {
			b.Fatal(err)
		}
		k.Run()
		if td.Err() != nil {
			b.Fatal(td.Err())
		}
	}
}

// BenchmarkSetupNoTrace measures the full wavelength lifecycle with tracing
// disabled — the allocation baseline CI watches: the nil-tracer span calls on
// this path must cost nothing (internal/obs's TestDisabledObsZeroAllocs is
// the direct zero-allocation proof; this benchmark catches regressions in
// context).
func BenchmarkSetupNoTrace(b *testing.B) { benchSetupLifecycle(b, false) }

// BenchmarkSetupTraced is the same lifecycle with the span recorder on, for
// measuring what tracing costs when enabled.
func BenchmarkSetupTraced(b *testing.B) { benchSetupLifecycle(b, true) }

func benchSetupLifecycle(b *testing.B, traced bool) {
	k := sim.NewKernel(1)
	cfg := Config{}
	if traced {
		cfg.Tracer = obs.NewTracer(k)
	}
	c, err := New(k, topo.Testbed(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		conn, job, err := c.Connect(Request{Customer: "b", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
		if err != nil {
			b.Fatal(err)
		}
		k.Run()
		if job.Err() != nil {
			b.Fatal(job.Err())
		}
		td, err := c.Disconnect("b", conn.ID)
		if err != nil {
			b.Fatal(err)
		}
		k.Run()
		if td.Err() != nil {
			b.Fatal(td.Err())
		}
		// Keep the traced run's memory bounded so both variants measure the
		// per-lifecycle cost, not an ever-growing span log.
		c.tr.Reset()
	}
}

// BenchmarkCutAndRestore measures a cut -> localize -> restore cycle.
func BenchmarkCutAndRestore(b *testing.B) {
	k := sim.NewKernel(1)
	c, err := New(k, topo.Testbed(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	conn, job, err := c.Connect(Request{Customer: "b", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		b.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		b.Fatal(job.Err())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link := conn.Route().Links[0]
		if err := c.CutFiber(link); err != nil {
			b.Fatal(err)
		}
		k.Run()
		if conn.State != StateActive {
			b.Fatalf("state = %v", conn.State)
		}
		if err := c.RepairFiber(link); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}

// BenchmarkGroomedCircuit measures sub-wavelength circuit churn once a pipe
// exists (the electronic-only fast path).
func BenchmarkGroomedCircuit(b *testing.B) {
	k := sim.NewKernel(1)
	c, err := New(k, topo.Testbed(), Config{})
	if err != nil {
		b.Fatal(err)
	}
	seed, job, err := c.Connect(Request{Customer: "b", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if err != nil {
		b.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		b.Fatal(job.Err())
	}
	_ = seed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, job, err := c.Connect(Request{Customer: "b", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
		if err != nil {
			b.Fatal(err)
		}
		k.Run()
		if job.Err() != nil {
			b.Fatal(job.Err())
		}
		if _, err := c.Disconnect("b", conn.ID); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}
