package core

import (
	"math"
	"testing"
	"time"

	"griphon/internal/bw"
)

func TestBillingAccruesAtRate(t *testing.T) {
	k, c := newTestbed(t, 130)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	k.RunFor(10 * time.Hour)
	got := c.BillGbHours("x")
	want := 10.0 * 10 // 10G for 10 h
	if math.Abs(got-want) > 0.01 {
		t.Errorf("bill = %.3f Gb-h, want %.1f", got, want)
	}
	// Released connections keep their historical usage.
	if _, err := c.Disconnect("x", conn.ID); err != nil {
		t.Fatal(err)
	}
	k.Run()
	k.RunFor(5 * time.Hour)
	after := c.BillGbHours("x")
	if math.Abs(after-got) > 0.01 {
		t.Errorf("bill kept accruing after release: %.3f -> %.3f", got, after)
	}
}

func TestBillingExcludesOutage(t *testing.T) {
	k, c := newTestbed(t, 131)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: Unprotected})
	k.RunFor(2 * time.Hour)
	c.CutFiber(conn.Route().Links[0])
	k.RunFor(6 * time.Hour) // down the whole time
	bill := c.BillGbHours("x")
	want := 10.0 * 2 // only the 2 pre-cut hours billed
	if math.Abs(bill-want) > 0.1 {
		t.Errorf("bill = %.2f Gb-h, want %.1f (outage unbilled)", bill, want)
	}
	c.RepairFiber(conn.Route().Links[0])
	k.RunFor(1 * time.Hour)
	bill = c.BillGbHours("x")
	want = 10.0 * 3 // billing resumed after revival
	if math.Abs(bill-want) > 0.1 {
		t.Errorf("bill after repair = %.2f, want ~%.1f", bill, want)
	}
}

func TestBillingFollowsAdjustedRate(t *testing.T) {
	k, c := newTestbed(t, 132)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	k.RunFor(4 * time.Hour) // 4 Gb-h at 1G
	job, err := c.AdjustRate("x", conn.ID, bw.Rate2G5)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	k.RunFor(4 * time.Hour) // 10 Gb-h at 2.5G
	bill := c.BillGbHours("x")
	want := 1.0*4 + 2.5*4
	if math.Abs(bill-want) > 0.05 {
		t.Errorf("bill = %.2f Gb-h, want %.1f", bill, want)
	}
}

func TestBillingPerCustomerAndInternalFree(t *testing.T) {
	k, c := newTestbed(t, 133)
	mustConnect(t, k, c, Request{Customer: "a", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	mustConnect(t, k, c, Request{Customer: "b", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	// Measure one clean hour (the two setups finished at different
	// times, so compare deltas, not totals).
	a0, b0 := c.BillGbHours("a"), c.BillGbHours("b")
	k.RunFor(time.Hour)
	billA := c.BillGbHours("a") - a0
	billB := c.BillGbHours("b") - b0
	if math.Abs(billA-1) > 0.01 || math.Abs(billB-10) > 0.01 {
		t.Errorf("bills: a=%.2f b=%.2f", billA, billB)
	}
	// The carrier's own pipe wavelength (supporting a's OTN circuit) is
	// not billed to anyone.
	if got := c.BillGbHours(CarrierCustomer); got != 0 {
		t.Errorf("carrier billed %.2f to itself", got)
	}
}

func TestBillingIgnoresRollHit(t *testing.T) {
	k, c := newTestbed(t, 134)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	k.RunFor(time.Hour)
	job, err := c.BridgeAndRoll("x", conn.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	k.RunFor(time.Hour)
	bill := c.BillGbHours("x")
	// Two hours of 10G minus a ~25 ms roll hit plus the bridge build time
	// (~1 min, still billed: traffic flows on the old path during it).
	if bill < 19.5 || bill > 20.5 {
		t.Errorf("bill = %.3f Gb-h, want ~20", bill)
	}
}
