package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/faults"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// TestBookingCloseErrorSurfaced pins the closeBooking bugfix: a component
// whose Disconnect keeps refusing must surface the error through the booking
// after the retry policy is exhausted — not complete the window as if nothing
// happened — and every refusal must hit the close-error counter.
func TestBookingCloseErrorSurfaced(t *testing.T) {
	k, c := newTestbed(t, 90)
	at := k.Now().Add(time.Hour)
	b, err := c.ScheduleConnect(Request{
		Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G,
	}, at, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(at.Add(30 * time.Minute))
	if len(b.Conns) != 1 || b.Conns[0].State != StateActive {
		t.Fatalf("booking not active inside window: %+v", b.Conns)
	}
	conn := b.Conns[0]
	// Sabotage the close: steal the ledger claim so Disconnect persistently
	// refuses (models an operator or API consumer racing the window).
	if err := c.Ledger().Release("x", connKey(conn.ID)); err != nil {
		t.Fatal(err)
	}
	before := c.ins.bookingCloseErrs.Value()
	k.Run()
	if !b.Done.Done() {
		t.Fatal("booking never resolved")
	}
	if b.Done.Err() == nil || b.CloseErr == nil {
		t.Fatal("close failure was swallowed: booking reported clean close")
	}
	if b.phase != bookingClosed {
		t.Errorf("phase = %d, want closed", b.phase)
	}
	if got := c.ins.bookingCloseErrs.Value() - before; got != float64(c.Retry().MaxAttempts) {
		t.Errorf("close error counter advanced by %v, want %d (one per attempt)", got, c.Retry().MaxAttempts)
	}
	// The leak is real and visible: the component still holds its resources.
	if conn.State != StateActive {
		t.Errorf("sabotaged component = %v, want still active", conn.State)
	}
	// An operator can repair the books and release it normally.
	if err := c.Ledger().Claim("x", connKey(conn.ID)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Disconnect("x", conn.ID); err != nil {
		t.Fatal(err)
	}
	k.Run()
	checkInvariants(t, c, -1)
}

// TestBookingSetupFailureReleasesSiblings pins the openBooking bugfix: when
// one component of a composite window fails to provision, the components that
// did come up must be released — not stranded holding capacity for a window
// that will never open.
func TestBookingSetupFailureReleasesSiblings(t *testing.T) {
	k, c := newTestbed(t, 91)
	at := k.Now().Add(time.Hour)
	// 12G = one 10G wavelength + two 1G circuits: three components whose
	// setups race. One EMS failure kills exactly one of them.
	b, err := c.ScheduleConnect(Request{
		Customer: "x", From: "DC-A", To: "DC-B", Rate: 12 * bw.Gbps,
	}, at, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(at.Add(-time.Second))
	c.ROADMEMS().InjectFailures(1, errors.New("vendor EMS rejected add-drop"))
	k.Run()
	if b.Done.Err() == nil || b.SetupErr == nil {
		t.Fatal("booking reported success despite component setup failure")
	}
	if b.phase != bookingFailed {
		t.Errorf("phase = %d, want failed", b.phase)
	}
	for _, conn := range b.Conns {
		if conn.State != StateReleased {
			t.Errorf("component %s = %v after failed window, want released", conn.ID, conn.State)
		}
	}
	if u := c.Ledger().UsageOf("x"); u.Connections != 0 || u.Bandwidth != 0 {
		t.Errorf("failed booking still billing the customer: %+v", u)
	}
	s := c.Snapshot()
	if s.SlotsInUse != 0 {
		t.Errorf("ODU slots leaked: %+v", s)
	}
	checkInvariants(t, c, -1)
	// The pool is whole: the same request succeeds once the EMS behaves.
	b2, err := c.ScheduleConnect(Request{
		Customer: "x", From: "DC-A", To: "DC-B", Rate: 12 * bw.Gbps,
	}, k.Now().Add(time.Hour), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if b2.Done.Err() != nil {
		t.Fatalf("clean retry failed: %v", b2.Done.Err())
	}
	checkInvariants(t, c, -2)
}

// TestBookingChaosSoak drives a calendar of overlapping bookings — simple and
// composite — through the probabilistic EMS fault model with fiber cuts mixed
// in, on a journaled controller. Every booking must resolve exactly once with
// coherent phase/error semantics, resources must never leak, and the survivor
// journal must still rehydrate to the live state.
func TestBookingChaosSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			profile := faults.DefaultProfile()
			dir := t.TempDir()
			store := openJournal(t, dir)
			k := sim.NewKernel(seed)
			c, err := New(k, topo.Testbed(), Config{
				AutoRepair: true, Faults: &profile, Journal: store, SnapshotEvery: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := k.Rand()
			sites := []topo.SiteID{"DC-A", "DC-B", "DC-C"}
			var books []*Booking
			for i := 0; i < 40; i++ {
				a := sites[rng.Intn(len(sites))]
				b := sites[rng.Intn(len(sites))]
				if a == b {
					continue
				}
				rate := []bw.Rate{bw.Rate1G, bw.Rate10G, bw.GbpsOf(12)}[rng.Intn(3)]
				at := k.Now().Add(time.Duration(rng.Intn(180)) * time.Minute)
				hold := time.Duration(10+rng.Intn(120)) * time.Minute
				bk, err := c.ScheduleConnect(Request{Customer: "csp", From: a, To: b, Rate: rate}, at, hold)
				if err != nil {
					t.Fatal(err)
				}
				books = append(books, bk)
				if rng.Intn(6) == 0 {
					links := c.Graph().Links()
					l := links[rng.Intn(len(links))]
					if c.Plant().LinkUp(l.ID) {
						c.CutFiber(l.ID) //lint:allow errcheck verified up
					}
				}
				k.RunFor(time.Duration(rng.Intn(45)) * time.Minute)
				checkInvariants(t, c, i)
				if t.Failed() {
					t.FailNow()
				}
			}
			k.Run()
			checkInvariants(t, c, -1)
			for _, bk := range books {
				if !bk.Done.Done() {
					t.Fatalf("booking %d never resolved", bk.ID)
				}
				switch bk.phase {
				case bookingClosed:
					if bk.SetupErr != nil {
						t.Errorf("booking %d closed but has a setup error: %v", bk.ID, bk.SetupErr)
					}
					if (bk.Done.Err() != nil) != (bk.CloseErr != nil) {
						t.Errorf("booking %d: Done.Err=%v but CloseErr=%v", bk.ID, bk.Done.Err(), bk.CloseErr)
					}
				case bookingFailed:
					if bk.SetupErr == nil || bk.Done.Err() == nil {
						t.Errorf("booking %d failed without an error", bk.ID)
					}
				default:
					t.Errorf("booking %d resolved in phase %d", bk.ID, bk.phase)
				}
				for _, conn := range bk.Conns {
					if conn.State != StateReleased {
						t.Errorf("booking %d component %s = %v after soak, want released", bk.ID, conn.ID, conn.State)
					}
				}
			}
			// The journal written under chaos still rehydrates to the live state.
			want, err := c.DurableState()
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}
			store2 := openJournal(t, dir)
			defer store2.Close()
			k2 := sim.NewKernel(seed + 500)
			c2, err := Rehydrate(k2, topo.Testbed(), Config{
				AutoRepair: true, Faults: &profile, Journal: store2, SnapshotEvery: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := c2.DurableState()
			if err != nil {
				t.Fatal(err)
			}
			if string(want) != string(got) {
				t.Errorf("post-soak recovery diverges:\nlive:      %s\nrecovered: %s", want, got)
			}
		})
	}
}
