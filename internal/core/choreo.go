package core

import (
	"fmt"

	"griphon/internal/ems"
	"griphon/internal/obs"
	"griphon/internal/sim"
)

// Choreography selects how a lightpath's EMS work is ordered
// (Config.Choreography).
type Choreography int

const (
	// ChoreoSerial reproduces the paper's fully serialized choreography —
	// every EMS step waits for the previous one, which is where the 60–70 s
	// setup times come from. It is the default so the Table 2 calibration
	// holds unless a deployment opts in to the fast path.
	ChoreoSerial Choreography = iota
	// ChoreoGraph runs the dependency-graph choreography: only real
	// happens-before constraints are kept (see graphSetupJob), so
	// independent elements configure concurrently and setup latency drops
	// to the critical path.
	ChoreoGraph
)

func (ch Choreography) String() string {
	switch ch {
	case ChoreoSerial:
		return "serial"
	case ChoreoGraph:
		return "graph"
	}
	return fmt.Sprintf("Choreography(%d)", int(ch))
}

// lightpathSetupJob runs the EMS choreography for one lightpath and returns
// the job completing when light is verified end to end. Both choreographies
// are built on sim.Graph; they differ only in which edges they declare.
// Every EMS step is wrapped in the retry policy, sharing one backoff budget
// for the whole choreography; the commands are pure latency (no Apply), so a
// resubmitted step re-runs the vendor dialogue without double-mutating state.
func (c *Controller) lightpathSetupJob(lp *lightpath, parent obs.SpanRef) *sim.Job {
	if c.choreo == ChoreoGraph {
		return c.graphSetupJob(lp, parent)
	}
	return c.serialSetupJob(lp, parent)
}

// lightpathTeardownJob runs the EMS choreography for releasing a lightpath
// (paper §3: "around 10 seconds"; the graph choreography halves that).
func (c *Controller) lightpathTeardownJob(lp *lightpath, parent obs.SpanRef) *sim.Job {
	if c.choreo == ChoreoGraph {
		return c.graphTeardownJob(lp, parent)
	}
	return c.serialTeardownJob(lp, parent)
}

// overheadNode is the choreography root: the controller's own admission /
// path-computation / database time. A cache-hit lightpath pays the (much
// smaller) cached overhead — the route came out of the path cache instead of
// a fresh K-shortest search.
func (c *Controller) overheadNode(lp *lightpath, sp obs.SpanRef) func() *sim.Job {
	return func() *sim.Job {
		d := c.lat.ControllerOverhead
		if lp.cached && c.lat.ControllerOverheadCached > 0 {
			d = c.lat.ControllerOverheadCached
		}
		osp := c.tr.Start(sp, "controller-overhead")
		j := c.k.AfterJob(c.jit(d), nil)
		j.OnDone(func(err error) { osp.EndErr(err) })
		return j
	}
}

// serialSetupJob is the paper-faithful choreography as a linear chain:
// controller overhead, FXC A, FXC B, then one serialized ROADM-EMS batch. A
// linear sim.Graph chain is event-for-event identical to the sim.Sequence
// this replaces — jitter draws stay lazy inside each node, in the same order.
func (c *Controller) serialSetupJob(lp *lightpath, parent obs.SpanRef) *sim.Job {
	path := lp.route.Path
	a, b := path.Src(), path.Dst()
	hops := path.Hops()
	sp := c.tr.Start(parent, "lightpath:setup")
	bud := &opBudget{}
	claim := c.claimWarm(a, b)

	g := sim.NewGraph(c.k)
	overhead := g.Node("controller-overhead", c.overheadNode(lp, sp))
	fxcA := g.Node("fxc-connect:a", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.fxcEMS[a].Submit(ems.Command{Name: "fxc-connect", Dur: c.jit(c.lat.FXCConnect), Span: sp})
		})
	})
	fxcB := g.Node("fxc-connect:b", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.fxcEMS[b].Submit(ems.Command{Name: "fxc-connect", Dur: c.jit(c.lat.FXCConnect), Span: sp})
		})
	})
	batch := g.Node("roadm-batch", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			var cmds []ems.Command
			if !claim.session {
				cmds = append(cmds, ems.Command{Name: "ems-session", Dur: c.jit(c.lat.EMSSession), Span: sp})
			}
			cmds = append(cmds,
				ems.Command{Name: "add-drop:" + string(a), Dur: c.jit(c.lat.ROADMAddDrop), Span: sp},
				ems.Command{Name: "add-drop:" + string(b), Dur: c.jit(c.lat.ROADMAddDrop), Span: sp},
			)
			for _, n := range path.Intermediate() {
				cmds = append(cmds, ems.Command{Name: "express:" + string(n), Dur: c.jit(c.lat.ROADMExpress), Span: sp})
			}
			for _, rg := range lp.regens {
				cmds = append(cmds, ems.Command{Name: "regen:" + rg.ID, Dur: c.jit(c.lat.RegenConfig), Span: sp})
			}
			if d := laserTuneFor(claim, c.lat.LaserTune); d > 0 {
				cmds = append(cmds, ems.Command{Name: "laser-tune", Dur: c.jit(d), Span: sp})
			}
			for i := 0; i < hops; i++ {
				cmds = append(cmds, ems.Command{Name: fmt.Sprintf("power-balance:%d", i), Dur: c.jit(c.lat.PowerBalancePerHop), Span: sp})
			}
			cmds = append(cmds,
				ems.Command{Name: "link-equalize", Dur: c.jit(c.lat.LinkEqualize), Span: sp},
				ems.Command{Name: "verify", Dur: c.jit(c.lat.VerifyEndToEnd), Span: sp},
			)
			return c.roadmEMS.SubmitBatch(cmds)
		})
	})
	g.Edge(overhead, fxcA)
	g.Edge(fxcA, fxcB)
	g.Edge(fxcB, batch)
	job := g.Go()
	job.OnDone(func(err error) { sp.EndErr(err) })
	return job
}

// laserTuneFor scales laser-tune work by the warm-transponder claim: each
// warm end already sits on the assigned wavelength, so two warm ends need no
// tuning at all and one warm end needs half.
func laserTuneFor(claim warmClaim, full sim.Duration) sim.Duration {
	switch claim.warmEnds {
	case 0:
		return full
	case 1:
		return full / 2
	default:
		return 0
	}
}

// graphSetupJob encodes only the real happens-before constraints of a
// wavelength setup:
//
//	overhead ─┬─ fxc-connect:a ──────────────────────────┐
//	          ├─ fxc-connect:b ──────────────────────────┤
//	          └─ ems-session ─┬─ elements (batch) ─┐     │
//	                          └─ laser-tune ───────┴─ power ─ equalize ─ verify
//
// Both FXC connects run concurrently (separate per-PoP controllers); the
// per-element ROADM configuration is one atomic SubmitBatch whose commands
// land on per-element lanes, so independent ROADMs configure concurrently;
// laser tuning overlaps element configuration; and only the optical chain —
// per-hop power balance, link equalization, end-to-end verification — stays
// ordered, serialized on the EMS's optical lane. Warm claims shrink the
// critical path further: a pre-opened session turns the session node into an
// instantaneous barrier, warm transponders shrink or remove laser-tune.
func (c *Controller) graphSetupJob(lp *lightpath, parent obs.SpanRef) *sim.Job {
	path := lp.route.Path
	a, b := path.Src(), path.Dst()
	hops := path.Hops()
	sp := c.tr.Start(parent, "lightpath:setup")
	bud := &opBudget{}
	claim := c.claimWarm(a, b)

	g := sim.NewGraph(c.k)
	overhead := g.Node("controller-overhead", c.overheadNode(lp, sp))
	fxcA := g.Node("fxc-connect:a", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.fxcEMS[a].Submit(ems.Command{Name: "fxc-connect", Dur: c.jit(c.lat.FXCConnect), Span: sp})
		})
	})
	fxcB := g.Node("fxc-connect:b", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.fxcEMS[b].Submit(ems.Command{Name: "fxc-connect", Dur: c.jit(c.lat.FXCConnect), Span: sp})
		})
	})
	var session sim.NodeID
	if claim.session {
		// Pre-opened session claimed from the warm pool: nothing to wait
		// for, but the barrier keeps the dependency structure uniform.
		session = g.Node("ems-session:warm", nil)
	} else {
		session = g.Node("ems-session", func() *sim.Job {
			return c.retrying(sp, bud, func() *sim.Job {
				return c.roadmEMS.Submit(ems.Command{Name: "ems-session", Elem: "session", Dur: c.jit(c.lat.EMSSession), Span: sp})
			})
		})
	}
	elements := g.Node("elements", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			cmds := []ems.Command{
				{Name: "add-drop:" + string(a), Elem: "roadm:" + string(a), Dur: c.jit(c.lat.ROADMAddDrop), Span: sp},
				{Name: "add-drop:" + string(b), Elem: "roadm:" + string(b), Dur: c.jit(c.lat.ROADMAddDrop), Span: sp},
			}
			for _, n := range path.Intermediate() {
				cmds = append(cmds, ems.Command{Name: "express:" + string(n), Elem: "roadm:" + string(n), Dur: c.jit(c.lat.ROADMExpress), Span: sp})
			}
			for _, rg := range lp.regens {
				cmds = append(cmds, ems.Command{Name: "regen:" + rg.ID, Elem: "roadm:" + string(rg.Node), Dur: c.jit(c.lat.RegenConfig), Span: sp})
			}
			return c.roadmEMS.SubmitBatch(cmds)
		})
	})
	var laser sim.NodeID
	if d := laserTuneFor(claim, c.lat.LaserTune); d > 0 {
		laser = g.Node("laser-tune", func() *sim.Job {
			return c.retrying(sp, bud, func() *sim.Job {
				return c.roadmEMS.Submit(ems.Command{Name: "laser-tune", Elem: "laser", Dur: c.jit(d), Span: sp})
			})
		})
	} else {
		laser = g.Node("laser-tune:warm", nil)
	}
	power := g.Node("power-balance", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			cmds := make([]ems.Command, 0, hops)
			for i := 0; i < hops; i++ {
				cmds = append(cmds, ems.Command{Name: fmt.Sprintf("power-balance:%d", i), Elem: "optical", Dur: c.jit(c.lat.PowerBalancePerHop), Span: sp})
			}
			return c.roadmEMS.SubmitBatch(cmds)
		})
	})
	equalize := g.Node("link-equalize", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.roadmEMS.Submit(ems.Command{Name: "link-equalize", Elem: "optical", Dur: c.jit(c.lat.LinkEqualize), Span: sp})
		})
	})
	verify := g.Node("verify", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.roadmEMS.Submit(ems.Command{Name: "verify", Elem: "optical", Dur: c.jit(c.lat.VerifyEndToEnd), Span: sp})
		})
	})

	g.Edge(overhead, fxcA)
	g.Edge(overhead, fxcB)
	g.Edge(overhead, session)
	g.Edge(session, elements)
	g.Edge(session, laser)
	g.Edge(elements, power)
	g.Edge(laser, power)
	g.Edge(power, equalize)
	g.Edge(equalize, verify)
	// Verification needs light end to end: the client-side FXC mappings
	// must be in place too.
	g.Edge(fxcA, verify)
	g.Edge(fxcB, verify)

	job := g.Go()
	job.OnDone(func(err error) { sp.EndErr(err) })
	return job
}

// serialTeardownJob is the paper-faithful teardown as a linear chain.
func (c *Controller) serialTeardownJob(lp *lightpath, parent obs.SpanRef) *sim.Job {
	path := lp.route.Path
	a, b := path.Src(), path.Dst()
	sp := c.tr.Start(parent, "lightpath:teardown")
	bud := &opBudget{}

	g := sim.NewGraph(c.k)
	ctl := g.Node("teardown-controller", func() *sim.Job {
		return c.k.AfterJob(c.jit(c.lat.TeardownController), nil)
	})
	fxcA := g.Node("fxc-disconnect:a", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.fxcEMS[a].Submit(ems.Command{Name: "fxc-disconnect", Dur: c.jit(c.lat.FXCDisconnect), Span: sp})
		})
	})
	fxcB := g.Node("fxc-disconnect:b", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.fxcEMS[b].Submit(ems.Command{Name: "fxc-disconnect", Dur: c.jit(c.lat.FXCDisconnect), Span: sp})
		})
	})
	batch := g.Node("roadm-release", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.roadmEMS.SubmitBatch([]ems.Command{
				{Name: "teardown-session", Dur: c.jit(c.lat.TeardownEMSSession), Span: sp},
				{Name: "release:" + string(a), Dur: c.jit(c.lat.ROADMRelease), Span: sp},
				{Name: "release:" + string(b), Dur: c.jit(c.lat.ROADMRelease), Span: sp},
			})
		})
	})
	g.Edge(ctl, fxcA)
	g.Edge(fxcA, fxcB)
	g.Edge(fxcB, batch)
	job := g.Go()
	job.OnDone(func(err error) { sp.EndErr(err) })
	return job
}

// graphTeardownJob releases a lightpath with only the real constraints: both
// FXC disconnects and the teardown session run concurrently after the
// controller's bookkeeping, and the per-end ROADM releases run concurrently
// (per-element lanes) once the session is up.
func (c *Controller) graphTeardownJob(lp *lightpath, parent obs.SpanRef) *sim.Job {
	path := lp.route.Path
	a, b := path.Src(), path.Dst()
	sp := c.tr.Start(parent, "lightpath:teardown")
	bud := &opBudget{}

	g := sim.NewGraph(c.k)
	ctl := g.Node("teardown-controller", func() *sim.Job {
		return c.k.AfterJob(c.jit(c.lat.TeardownController), nil)
	})
	fxcA := g.Node("fxc-disconnect:a", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.fxcEMS[a].Submit(ems.Command{Name: "fxc-disconnect", Dur: c.jit(c.lat.FXCDisconnect), Span: sp})
		})
	})
	fxcB := g.Node("fxc-disconnect:b", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.fxcEMS[b].Submit(ems.Command{Name: "fxc-disconnect", Dur: c.jit(c.lat.FXCDisconnect), Span: sp})
		})
	})
	session := g.Node("teardown-session", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.roadmEMS.Submit(ems.Command{Name: "teardown-session", Elem: "session", Dur: c.jit(c.lat.TeardownEMSSession), Span: sp})
		})
	})
	releases := g.Node("roadm-release", func() *sim.Job {
		return c.retrying(sp, bud, func() *sim.Job {
			return c.roadmEMS.SubmitBatch([]ems.Command{
				{Name: "release:" + string(a), Elem: "roadm:" + string(a), Dur: c.jit(c.lat.ROADMRelease), Span: sp},
				{Name: "release:" + string(b), Elem: "roadm:" + string(b), Dur: c.jit(c.lat.ROADMRelease), Span: sp},
			})
		})
	})
	g.Edge(ctl, fxcA)
	g.Edge(ctl, fxcB)
	g.Edge(ctl, session)
	g.Edge(session, releases)
	job := g.Go()
	job.OnDone(func(err error) { sp.EndErr(err) })
	return job
}
