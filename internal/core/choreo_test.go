package core

import (
	"sort"
	"testing"

	"griphon/internal/bw"
	"griphon/internal/ems"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// flatLatencies is the calibrated table with jitter off, so choreography
// timings are exact.
func flatLatencies() ems.Latencies {
	lat := ems.Default()
	lat.JitterRel = 0
	return lat
}

func newChoreoTestbed(t *testing.T, seed int64, cfg Config) (*sim.Kernel, *Controller) {
	t.Helper()
	k := sim.NewKernel(seed)
	cfg.Latencies = flatLatencies()
	c, err := New(k, topo.Testbed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, c
}

// oneHop is the Testbed's DC-A -> DC-C request: home PoPs I and IV, direct
// 1-hop fiber, no regeneration.
var oneHop = Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G}

func TestSerialChoreographyMatchesTable2(t *testing.T) {
	k, c := newChoreoTestbed(t, 1, Config{})
	conn := mustConnect(t, k, c, oneHop)
	if want := c.Latencies().WavelengthSetupMean(1, 0); conn.SetupTime() != want {
		t.Errorf("serial setup = %v, want exactly %v", conn.SetupTime(), want)
	}
}

func TestGraphChoreographyCriticalPath(t *testing.T) {
	k, c := newChoreoTestbed(t, 1, Config{Choreography: ChoreoGraph})
	conn := mustConnect(t, k, c, oneHop)
	want := c.Latencies().WavelengthSetupGraphMean(1, 0)
	if conn.SetupTime() != want {
		t.Errorf("graph setup = %v, want exactly %v (the critical path)", conn.SetupTime(), want)
	}
	serial := c.Latencies().WavelengthSetupMean(1, 0)
	if 2*conn.SetupTime() >= 3*serial {
		t.Errorf("graph setup %v is not meaningfully below serial %v", conn.SetupTime(), serial)
	}
}

func TestGraphChoreographyWithPreArm(t *testing.T) {
	k, c := newChoreoTestbed(t, 1, Config{
		Choreography: ChoreoGraph,
		PreArm:       PreArm{WarmOTsPerNode: 2, WarmSessions: 2},
	})
	conn := mustConnect(t, k, c, oneHop)
	// Warm session skips EMS-session establishment; two warm ends skip
	// laser tuning entirely: overhead + elements + power + equalize + verify
	// = 2 + 7 + 3.2 + 9 + 8 s.
	lat := c.Latencies()
	want := lat.ControllerOverhead + lat.ROADMAddDrop +
		lat.PowerBalancePerHop + lat.LinkEqualize + lat.VerifyEndToEnd
	if conn.SetupTime() != want {
		t.Errorf("pre-armed graph setup = %v, want exactly %v", conn.SetupTime(), want)
	}
	// Background re-arming refilled the pools before the kernel drained.
	if got := c.WarmSessions(); got != 2 {
		t.Errorf("warm sessions after drain = %d, want 2 (re-armed)", got)
	}
	for _, n := range []topo.NodeID{"I", "IV"} {
		if got := c.WarmOTs(n); got != 2 {
			t.Errorf("warm OTs at %s = %d, want 2 (re-armed)", n, got)
		}
	}
	if got := metricValue(t, c, "griphon_prearm_claims_total", ""); got != 3 {
		t.Errorf("pre-arm claims = %v, want 3 (one session, two transponders)", got)
	}
	if got := metricValue(t, c, "griphon_prearm_rearms_total", `outcome="ok"`); got != 3 {
		t.Errorf("re-arms ok = %v, want 3", got)
	}
}

func TestGraphTeardownHalvesTeardownTime(t *testing.T) {
	k, c := newChoreoTestbed(t, 1, Config{Choreography: ChoreoGraph})
	conn := mustConnect(t, k, c, oneHop)
	job, err := c.Disconnect("x", conn.ID)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	// ctl 1 s, then max(FXC disconnects 1.5 s, session 2 s + releases 2 s).
	lat := c.Latencies()
	want := lat.TeardownController + lat.TeardownEMSSession + lat.ROADMRelease
	if job.Elapsed() != want {
		t.Errorf("graph teardown = %v, want exactly %v", job.Elapsed(), want)
	}
	if serial := lat.WavelengthTeardownMean(); 2*job.Elapsed() > serial {
		t.Errorf("graph teardown %v not at least 2x under serial %v", job.Elapsed(), serial)
	}
	auditClean(t, c)
}

// TestGraphChoreographySpanTiling: with jitter off and no contention, the
// union of a lightpath:setup span's child spans (controller overhead plus
// every EMS command, which execute concurrently across lanes) must cover the
// whole setup interval with no gaps — every simulated second is accounted
// for, PR 4's tracing guarantee carried over to the graph choreography.
func TestGraphChoreographySpanTiling(t *testing.T) {
	k := sim.NewKernel(1)
	tr := obs.NewTracer(k)
	cfg := Config{Choreography: ChoreoGraph, Latencies: flatLatencies(), Tracer: tr}
	c, err := New(k, topo.Testbed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, k, c, oneHop)

	setups := tr.SpansNamed("lightpath:setup")
	if len(setups) != 1 {
		t.Fatalf("lightpath:setup spans = %d, want 1", len(setups))
	}
	sp := setups[0]
	kids := tr.Children(sp.ID)
	if len(kids) == 0 {
		t.Fatal("no child spans under lightpath:setup")
	}
	// Merge child intervals and verify they tile [sp.Start, sp.End].
	sort.Slice(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })
	if kids[0].Start != sp.Start {
		t.Errorf("first child starts at %v, setup at %v: leading gap", kids[0].Start, sp.Start)
	}
	covered := kids[0].End
	for _, kd := range kids[1:] {
		if kd.Start > covered {
			t.Errorf("gap in span coverage: %v .. %v unaccounted", covered, kd.Start)
		}
		if kd.End > covered {
			covered = kd.End
		}
	}
	if covered != sp.End {
		t.Errorf("children cover up to %v, setup ends at %v", covered, sp.End)
	}
	if sp.Duration() != c.Latencies().WavelengthSetupGraphMean(1, 0) {
		t.Errorf("setup span duration = %v, want %v", sp.Duration(), c.Latencies().WavelengthSetupGraphMean(1, 0))
	}
}

// TestChoreographyModesAgreeOnOutcome: both choreographies configure the
// same elements — only the ordering differs — so the resulting network state
// must be identical and the audit clean in both modes.
func TestChoreographyModesAgreeOnOutcome(t *testing.T) {
	for _, mode := range []Choreography{ChoreoSerial, ChoreoGraph} {
		k, c := newChoreoTestbed(t, 7, Config{Choreography: mode})
		conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
		if conn.Route().String() != "I-III" {
			t.Errorf("%v: route = %s, want I-III", mode, conn.Route())
		}
		if _, err := c.Disconnect("x", conn.ID); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		k.Run()
		auditClean(t, c)
	}
}

// TestGraphChoreographyMultiHop pins the hop scaling: power balancing stays
// serialized on the optical lane, so a 2-hop setup costs one more
// PowerBalancePerHop plus the express configuration overlapping add-drops.
func TestGraphChoreographyMultiHop(t *testing.T) {
	k, c := newChoreoTestbed(t, 1, Config{Choreography: ChoreoGraph})
	// Fail the direct I-III fiber so DC-A -> DC-B rides I-II-III (2 hops).
	if err := c.CutFiber("I-III"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	if conn.Route().String() != "I-II-III" {
		t.Fatalf("route = %s, want I-II-III", conn.Route())
	}
	if want := c.Latencies().WavelengthSetupGraphMean(2, 0); conn.SetupTime() != want {
		t.Errorf("2-hop graph setup = %v, want exactly %v", conn.SetupTime(), want)
	}
}

// TestSerialChoreographyPreArmStillSerial: pre-arm claims also shrink the
// serialized choreography (the batch simply omits paid-for steps), without
// reordering anything.
func TestSerialChoreographyPreArmStillSerial(t *testing.T) {
	k, c := newChoreoTestbed(t, 1, Config{
		PreArm: PreArm{WarmOTsPerNode: 1, WarmSessions: 1},
	})
	conn := mustConnect(t, k, c, oneHop)
	lat := c.Latencies()
	// Serial sum minus the skipped EMS session and laser tune (two warm
	// ends -> no tuning at all).
	want := lat.WavelengthSetupMean(1, 0) - lat.EMSSession - lat.LaserTune
	if conn.SetupTime() != want {
		t.Errorf("pre-armed serial setup = %v, want exactly %v", conn.SetupTime(), want)
	}
}
