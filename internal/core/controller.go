package core

import (
	"fmt"
	"sort"
	"time"

	"griphon/internal/alarms"
	"griphon/internal/bw"
	"griphon/internal/ems"
	"griphon/internal/faults"
	"griphon/internal/fxc"
	"griphon/internal/inventory"
	"griphon/internal/journal"
	"griphon/internal/obs"
	"griphon/internal/optics"
	"griphon/internal/otn"
	"griphon/internal/roadm"
	"griphon/internal/rwa"
	"griphon/internal/sim"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// Config tunes a controller. Zero fields take defaults.
type Config struct {
	// Optics sizes the photonic plant (DefaultConfig if zero).
	Optics optics.Config
	// Latencies is the EMS latency table (ems.Default if zero).
	Latencies ems.Latencies
	// RWA tunes route search.
	RWA rwa.Options
	// CorrelationWindow batches alarms of one failure event.
	CorrelationWindow sim.Duration
	// AutoRepair dispatches a repair crew automatically on every fiber
	// cut (crew time drawn from Latencies.FiberRepair).
	AutoRepair bool
	// AutoRevert re-grooms restored connections back onto their best path
	// after a repair, via bridge-and-roll (the paper's "reversion
	// following a failure restoration").
	AutoRevert bool
	// FXCClientPorts and FXCLinePorts size each PoP's fiber
	// cross-connect (defaults 16/16; groom ports always 16).
	FXCClientPorts int
	FXCLinePorts   int
	// AddDropPorts sizes each ROADM's colorless/directionless add-drop
	// bank. Default: one port per transponder plus two per regenerator,
	// so the transponder pool is the binding constraint.
	AddDropPorts int
	// Faults, when non-nil, enables the probabilistic EMS fault model
	// (internal/faults) on every EMS: transient/persistent failures,
	// latency inflation and per-EMS brownout windows, all driven by the
	// kernel's seeded random source.
	Faults *faults.Profile
	// Retry bounds transient-fault retries of EMS steps. Nil takes
	// DefaultRetryPolicy; a policy with MaxAttempts 1 disables retries.
	Retry *RetryPolicy
	// Choreography selects how lightpath EMS work is ordered: ChoreoSerial
	// (the default) reproduces the paper's fully serialized steps and its
	// 60–70 s setup times; ChoreoGraph keeps only real happens-before
	// constraints, cutting setup to the critical path.
	Choreography Choreography
	// PathCache caches computed routes by (src, dst, rate, protection),
	// flushed on every link-state or topology change; a hit skips the
	// K-shortest search and pays the reduced cached controller overhead.
	PathCache bool
	// PreArm sizes the speculative warm pools — pre-opened EMS sessions and
	// pre-tuned spare transponders per PoP — claimed at setup time and
	// refilled in the background. The zero value disables pre-arming.
	PreArm PreArm
	// DegradeToOTN lets a 10G full-wavelength request degrade to a groomed
	// OTN sub-wavelength circuit when the DWDM layer cannot deliver it —
	// no route or wavelength at admission, or persistent EMS failures on
	// every candidate path — instead of hard-blocking.
	DegradeToOTN bool
	// Tracer records virtual-time spans around every controller operation
	// and EMS command. Nil (the default) disables tracing at zero cost.
	Tracer *obs.Tracer
	// Metrics is the instrument registry the controller populates. Nil
	// means a fresh private registry; pass one to share instruments with
	// an embedding harness.
	Metrics *obs.Registry
	// Journal, when non-nil, makes every committed state change durable:
	// one WAL record per commit point plus periodic full snapshots. Use
	// Rehydrate to rebuild a controller from a journal's contents.
	Journal *journal.Store
	// SnapshotEvery sets the snapshot cadence in WAL appends (default 256;
	// negative disables snapshots). Ignored without Journal.
	SnapshotEvery int
	// FlightRecorder, when positive, keeps bounded rings of that many recent
	// events, journal commit records and alarm groups, dumpable to JSON when
	// an invariant audit or the chaos soak trips (Controller.DumpFlight).
	// Zero disables it.
	FlightRecorder int
	// AlarmLogSize bounds the correlated alarm-group log backing the
	// customer alarm stream (default 512).
	AlarmLogSize int
	// Shard identifies this controller's slice of a sharded control plane
	// (see ShardSet). The zero value is the unsharded default: no
	// coordinator, plain connection IDs, identical behavior to every
	// release before sharding existed.
	Shard ShardInfo
}

// ShardInfo places a controller inside a ShardSet. Count <= 1 means
// unsharded.
type ShardInfo struct {
	// Index is this shard's position in [0, Count).
	Index int
	// Count is the total number of shards.
	Count int
	// Coordinator brokers cross-shard spectrum and pipe capacity; nil when
	// unsharded.
	Coordinator *Coordinator
}

// sharded reports whether this controller is one shard of several.
func (s ShardInfo) sharded() bool { return s.Count > 1 }

// Controller is the GRIPhoN controller: the only component that talks to the
// network elements, always through their EMSes, and the keeper of the
// resource database.
type Controller struct {
	k      *sim.Kernel
	g      *topo.Graph
	plant  *optics.Plant
	fabric *otn.Fabric
	roadms *roadm.Layer
	fxcs   map[topo.NodeID]*fxc.Switch
	lat    ems.Latencies
	rwaOpt rwa.Options
	ledger *inventory.Ledger

	roadmEMS *ems.Manager
	otnEMS   *ems.Manager
	fxcEMS   map[topo.NodeID]*ems.Manager

	conns      map[ConnID]*Connection
	nextConn   int
	lpSeq      int
	accessUsed map[topo.SiteID]bw.Rate

	bookings    map[int]*Booking
	nextBooking int

	jrnl          *journal.Store
	snapshotEvery int

	correlator *alarms.Correlator
	autoRepair bool
	autoRevert bool
	repairing  map[topo.LinkID]bool
	// maint marks links being cut by a maintenance window, so the hits they
	// cause attribute to planned work rather than a plant failure.
	maint map[topo.LinkID]bool

	sla      *slo.Ledger
	alarmLog *alarms.Log
	flight   *slo.FlightRecorder

	retry        RetryPolicy
	faultModel   *faults.Model
	degradeToOTN bool

	choreo Choreography
	pcache *pathCache
	prearm *prearmPools

	events []Event

	tr  *obs.Tracer
	reg *obs.Registry
	ins instruments

	// pipeCarrier maps an OTN pipe to the internal wavelength connection
	// that carries it.
	pipeCarrier map[otn.PipeID]ConnID
	// pendingPipes tracks in-flight pipe builds by canonical node pair so
	// concurrent circuit setups share them.
	pendingPipes map[string]*sim.Job

	shard ShardInfo
	// pipeTokens maps a live OTN pipe to its cross-shard capacity token.
	// Derived state: rebuilt by re-claiming during rehydration, never
	// journaled.
	pipeTokens map[otn.PipeID]string

	// onEvent / onAlarmGroup, when set, observe every audit-log append and
	// alarm-group append — a ShardSet merges per-shard streams through
	// them.
	onEvent      func(Event)
	onAlarmGroup func(alarms.Group)
}

// New builds a controller over the given topology.
func New(k *sim.Kernel, g *topo.Graph, cfg Config) (*Controller, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	ocfg := cfg.Optics
	if ocfg.Channels == 0 && ocfg.ReachKM == 0 {
		ocfg = optics.DefaultConfig()
	}
	plant, err := optics.NewPlant(g, ocfg)
	if err != nil {
		return nil, err
	}
	lat := cfg.Latencies
	if lat.ControllerOverhead == 0 && lat.LaserTune == 0 {
		lat = ems.Default()
	}
	nClient, nLine := cfg.FXCClientPorts, cfg.FXCLinePorts
	if nClient <= 0 {
		nClient = 16
	}
	if nLine <= 0 {
		nLine = 16
	}
	window := cfg.CorrelationWindow
	if window <= 0 {
		window = time.Second
	}
	rwaOpt := cfg.RWA
	if rwaOpt.Rand == nil {
		rwaOpt.Rand = k.Rand()
	}
	addDrop := cfg.AddDropPorts
	if addDrop <= 0 {
		addDrop = ocfg.OTsPerNode + 2*ocfg.RegensPerNode
		if addDrop <= 0 {
			addDrop = 16
		}
	}
	roadms, err := roadm.NewLayer(g, addDrop)
	if err != nil {
		return nil, err
	}

	c := &Controller{
		k:            k,
		g:            g,
		plant:        plant,
		fabric:       otn.FabricFrom(g),
		roadms:       roadms,
		fxcs:         make(map[topo.NodeID]*fxc.Switch),
		lat:          lat,
		rwaOpt:       rwaOpt,
		ledger:       inventory.NewLedger(),
		roadmEMS:     ems.NewManager("roadm-ems", k),
		otnEMS:       ems.NewManager("otn-ems", k),
		fxcEMS:       make(map[topo.NodeID]*ems.Manager),
		conns:        make(map[ConnID]*Connection),
		bookings:     make(map[int]*Booking),
		accessUsed:   make(map[topo.SiteID]bw.Rate),
		autoRepair:   cfg.AutoRepair,
		autoRevert:   cfg.AutoRevert,
		repairing:    make(map[topo.LinkID]bool),
		maint:        make(map[topo.LinkID]bool),
		pipeCarrier:  make(map[otn.PipeID]ConnID),
		pendingPipes: make(map[string]*sim.Job),
		shard:        cfg.Shard,
		pipeTokens:   make(map[otn.PipeID]string),
		degradeToOTN: cfg.DegradeToOTN,
		choreo:       cfg.Choreography,
		tr:           cfg.Tracer,
		reg:          cfg.Metrics,
	}
	if cfg.Shard.Coordinator != nil {
		// Installed before any reservation so rehydration's spectrum
		// replays re-register their cross-shard claims automatically.
		plant.SetBroker(cfg.Shard.Coordinator.Broker(cfg.Shard.Index))
	}
	if cfg.PathCache {
		c.pcache = &pathCache{entries: make(map[pathKey]pathEntry), version: g.Version()}
		// Any link-state change — cut or restore — invalidates every cached
		// route: restores make cached detours stale too.
		plant.SetOnLinkState(func(topo.LinkID, bool) { c.pcacheFlush() })
	}
	if cfg.PreArm.enabled() {
		c.prearm = newPrearmPools(cfg.PreArm, g)
	}
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	c.jrnl = cfg.Journal
	c.snapshotEvery = cfg.SnapshotEvery
	if c.snapshotEvery == 0 {
		c.snapshotEvery = 256
	}
	c.retry = DefaultRetryPolicy()
	if cfg.Retry != nil {
		c.retry = *cfg.Retry
	}
	if cfg.Faults != nil {
		c.faultModel = faults.NewModel(k, *cfg.Faults)
		c.roadmEMS.SetFaults(c.faultModel)
		c.otnEMS.SetFaults(c.faultModel)
	}
	c.roadmEMS.SetTracer(c.tr)
	c.otnEMS.SetTracer(c.tr)
	for _, n := range g.Nodes() {
		c.fxcs[n.ID] = fxc.Standard(n.ID, nClient, nLine, 16)
		m := ems.NewManager(fmt.Sprintf("fxc-ctl-%s", n.ID), k)
		m.SetTracer(c.tr)
		if c.faultModel != nil {
			m.SetFaults(c.faultModel)
		}
		c.fxcEMS[n.ID] = m
	}
	c.initObs()
	c.sla = slo.New(c.reg)
	logSize := cfg.AlarmLogSize
	if logSize <= 0 {
		logSize = 512
	}
	c.alarmLog = alarms.NewLog(logSize)
	if cfg.FlightRecorder > 0 {
		c.flight = slo.NewFlightRecorder(cfg.FlightRecorder, c.reg)
		c.flight.AttachLedger(c.sla)
		tail := cfg.FlightRecorder
		c.flight.AttachSpans(func() []slo.SpanRecord { return c.spanTail(tail) })
	}
	c.correlator = alarms.NewCorrelator(k, window, c.onAlarmBatch)
	return c, nil
}

// Kernel returns the controller's simulation kernel.
func (c *Controller) Kernel() *sim.Kernel { return c.k }

// Graph returns the topology.
func (c *Controller) Graph() *topo.Graph { return c.g }

// Plant returns the photonic plant.
func (c *Controller) Plant() *optics.Plant { return c.plant }

// Fabric returns the OTN overlay.
func (c *Controller) Fabric() *otn.Fabric { return c.fabric }

// ROADMs returns the ROADM-layer switching state.
func (c *Controller) ROADMs() *roadm.Layer { return c.roadms }

// ROADMEMS returns the ROADM vendor EMS (exposed for queue inspection and
// fault injection).
func (c *Controller) ROADMEMS() *ems.Manager { return c.roadmEMS }

// OTNEMS returns the OTN vendor EMS.
func (c *Controller) OTNEMS() *ems.Manager { return c.otnEMS }

// Ledger returns the customer ledger (quotas, isolation).
func (c *Controller) Ledger() *inventory.Ledger { return c.ledger }

// SetQuota installs a customer quota through the controller so the change is
// journaled. Callers holding the Ledger directly bypass durability.
func (c *Controller) SetQuota(cust inventory.Customer, q inventory.Quota) {
	c.ledger.SetQuota(cust, q)
	c.journalCommit(commitSet{reason: "quota", quotas: true})
}

// Journal returns the journal store (nil when durability is disabled).
func (c *Controller) Journal() *journal.Store { return c.jrnl }

// Booking returns cust's booking by ID. Booking IDs are small guessable
// integers, so the lookup itself is the isolation gate: a booking owned by a
// different customer is indistinguishable from one that does not exist.
func (c *Controller) Booking(cust inventory.Customer, id int) (*Booking, error) {
	b := c.bookings[id]
	if b == nil || b.Req.Customer != cust {
		return nil, fmt.Errorf("core: no booking %d for %s", id, cust)
	}
	return b, nil
}

// Bookings returns cust's bookings sorted by ID.
func (c *Controller) Bookings(cust inventory.Customer) []*Booking {
	var out []*Booking
	for _, b := range c.sortedBookings() {
		if b.Req.Customer == cust {
			out = append(out, b)
		}
	}
	return out
}

// AllBookings returns every booking sorted by ID — the operator view; the
// customer-facing path is Bookings.
func (c *Controller) AllBookings() []*Booking { return c.sortedBookings() }

// FaultModel returns the EMS fault model (nil when chaos is disabled).
func (c *Controller) FaultModel() *faults.Model { return c.faultModel }

// Retry returns the retry policy in force.
func (c *Controller) Retry() RetryPolicy { return c.retry }

// SetupChoreography returns the choreography mode in force.
func (c *Controller) SetupChoreography() Choreography { return c.choreo }

// Latencies returns the EMS latency table in force.
func (c *Controller) Latencies() ems.Latencies { return c.lat }

// FXC returns the fiber cross-connect at a PoP (nil if unknown).
func (c *Controller) FXC(n topo.NodeID) *fxc.Switch { return c.fxcs[n] }

// Conn returns a connection by ID, or nil.
func (c *Controller) Conn(id ConnID) *Connection { return c.conns[id] }

// Connections returns all connections (including released and internal),
// sorted by ID.
func (c *Controller) Connections() []*Connection {
	out := make([]*Connection, 0, len(c.conns))
	for _, conn := range c.conns {
		out = append(out, conn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CustomerConnections returns cust's non-internal connections sorted by ID —
// what the customer GUI shows.
func (c *Controller) CustomerConnections(cust inventory.Customer) []*Connection {
	var out []*Connection
	for _, conn := range c.Connections() {
		if conn.Customer == cust && !conn.Internal {
			out = append(out, conn)
		}
	}
	return out
}

// Events returns the audit log (oldest first).
func (c *Controller) Events() []Event { return append([]Event(nil), c.events...) }

// EventsFor returns the audit entries mentioning a connection.
func (c *Controller) EventsFor(id ConnID) []Event {
	var out []Event
	for _, e := range c.events {
		if e.Conn == id {
			out = append(out, e)
		}
	}
	return out
}

func (c *Controller) log(conn ConnID, kind, format string, args ...any) {
	e := Event{
		At:   c.k.Now(),
		Conn: conn,
		Kind: kind,
		Text: fmt.Sprintf(format, args...),
	}
	c.events = append(c.events, e)
	if c.flight != nil {
		c.flight.Event(e.At, string(e.Conn), e.Kind, e.Text)
	}
	if c.onEvent != nil {
		c.onEvent(e)
	}
}

// SetOnEvent installs an observer called after every audit-log append (nil
// detaches). A ShardSet uses it to maintain a merged cross-shard log.
func (c *Controller) SetOnEvent(fn func(Event)) { c.onEvent = fn }

// SetOnAlarmGroup installs an observer called after every alarm-group append
// (nil detaches).
func (c *Controller) SetOnAlarmGroup(fn func(alarms.Group)) { c.onAlarmGroup = fn }

// Shard returns this controller's placement in its ShardSet (zero when
// unsharded).
func (c *Controller) Shard() ShardInfo { return c.shard }

// NowTime returns the controller's kernel clock.
func (c *Controller) NowTime() sim.Time { return c.k.Now() }

// EventsSince returns audit entries from index cursor on, plus the cursor to
// resume from — the incremental form of Events for polling clients.
func (c *Controller) EventsSince(cursor int) ([]Event, int) {
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(c.events) {
		cursor = len(c.events)
	}
	return append([]Event(nil), c.events[cursor:]...), len(c.events)
}

func (c *Controller) newConnID() ConnID {
	var id ConnID
	if c.shard.sharded() {
		// Shard-prefixed so IDs are unique across the ShardSet; unsharded
		// controllers keep the historical plain form byte-for-byte.
		id = ConnID(fmt.Sprintf("S%d.C%04d", c.shard.Index, c.nextConn))
	} else {
		id = ConnID(fmt.Sprintf("C%04d", c.nextConn))
	}
	c.nextConn++
	return id
}

// BillGbHours returns the customer's cumulative delivered gigabit-hours —
// the BoD billing unit: usage-based instead of calendar-based, with outages
// excluded. Internal carrier connections are never billed.
func (c *Controller) BillGbHours(cust inventory.Customer) float64 {
	now := c.k.Now()
	var total float64
	// Sum in ID order: float addition is not associative, and map-order
	// iteration made the last decimals of an invoice vary run to run.
	for _, conn := range c.Connections() {
		if conn.Customer != cust || conn.Internal {
			continue
		}
		total += conn.UsageGbHours(now)
	}
	return total
}

// ProbeRoute dry-runs route-and-wavelength assignment between two PoPs at
// the given rate without reserving anything — the planning/what-if query the
// GUI and experiments use. The returned route reflects current spectrum and
// failure state.
func (c *Controller) ProbeRoute(a, b topo.NodeID, rate bw.Rate) (rwa.Route, error) {
	opt := c.rwaOpt
	opt.Rate = rate
	return rwa.FindRoute(c.plant, a, b, opt)
}

// AccessUsed returns the bandwidth currently consumed on a site's access
// pipe.
func (c *Controller) AccessUsed(s topo.SiteID) bw.Rate { return c.accessUsed[s] }

// jit applies the configured jitter to a latency table entry.
func (c *Controller) jit(d sim.Duration) sim.Duration {
	return c.lat.Jitter(c.k.Rand(), d)
}

// siteHome resolves a site and its home PoP.
func (c *Controller) siteHome(id topo.SiteID) (*topo.Site, error) {
	s := c.g.Site(id)
	if s == nil {
		return nil, fmt.Errorf("core: unknown site %s", id)
	}
	return s, nil
}

// reserveAccess admits rate onto both sites' access pipes, or fails without
// partial effect.
func (c *Controller) reserveAccess(a, b *topo.Site, rate bw.Rate) error {
	if c.accessUsed[a.ID]+rate > bw.GbpsOf(a.AccessGbps) {
		return fmt.Errorf("core: site %s access pipe full (%v of %vG in use)", a.ID, c.accessUsed[a.ID], a.AccessGbps)
	}
	if c.accessUsed[b.ID]+rate > bw.GbpsOf(b.AccessGbps) {
		return fmt.Errorf("core: site %s access pipe full (%v of %vG in use)", b.ID, c.accessUsed[b.ID], b.AccessGbps)
	}
	c.accessUsed[a.ID] += rate
	c.accessUsed[b.ID] += rate
	return nil
}

func (c *Controller) releaseAccess(a, b topo.SiteID, rate bw.Rate) {
	c.accessUsed[a] -= rate
	c.accessUsed[b] -= rate
}
