package core

// Cross-shard coordination for the sharded control plane. Each shard of a
// ShardSet is a full Controller over its own replica of the photonic plant,
// so two shards could light the same wavelength on the same fiber or groom
// onto more OTN pipes than the node pair supports. The Coordinator is the
// single arbiter for those two genuinely shared resources — spectrum on
// shared links and OTN pipes per node pair — and nothing else: quotas,
// connections, transponders and bookings are wholly shard-local.
//
// Claims go through an inventory.Ledger keyed "spectrum:<link>:<ch>" and
// "pipe:<pair>#<seq>", each owned by the synthetic customer "shard-<i>", so
// the same claim/verify/release discipline (and the same audit sweeps) that
// protect customer isolation protect shard isolation. The Coordinator is the
// only mutex-guarded state shared between shard event loops; every method
// holds the lock for a few map operations and never blocks on the simulation.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"griphon/internal/inventory"
	"griphon/internal/optics"
	"griphon/internal/topo"
)

// Coordinator brokers spectrum and OTN pipe capacity between the shards of a
// ShardSet. Safe for concurrent use by multiple shard drivers.
type Coordinator struct {
	mu     sync.Mutex
	ledger *inventory.Ledger

	channels int // grid size; sizes the per-link claim masks

	// all[link] is the union of claimed channels on a link across every
	// shard; own[shard][link] is one shard's slice of it. MaskForeign
	// computes all&^own so a shard's continuity searches skip channels the
	// gate would veto anyway.
	all map[topo.LinkID][]uint64
	own map[int]map[topo.LinkID][]uint64

	// pipeSeq hands out monotonic per-pair pipe tokens; pipeOwner maps a
	// live token to its shard; pipePair counts live pipes per node pair.
	pipeSeq   map[string]int
	pipeOwner map[string]int
	pipePair  map[string]int

	// maxPipesPerPair caps concurrent OTN pipes between one node pair
	// across all shards (0 = unlimited) — the shared-fabric capacity the
	// shards would otherwise oversubscribe independently.
	maxPipesPerPair int

	// violations records release/claim inconsistencies (a shard releasing
	// a channel it never claimed, a token released twice); surfaced by the
	// cross-shard audit sweep.
	violations []string
}

// NewCoordinator returns a coordinator for plants with the given DWDM grid
// size. maxPipesPerPair caps live OTN pipes per node pair across shards
// (0 = unlimited).
func NewCoordinator(channels, maxPipesPerPair int) *Coordinator {
	return &Coordinator{
		ledger:          inventory.NewLedger(),
		channels:        channels,
		all:             make(map[topo.LinkID][]uint64),
		own:             make(map[int]map[topo.LinkID][]uint64),
		pipeSeq:         make(map[string]int),
		pipeOwner:       make(map[string]int),
		pipePair:        make(map[string]int),
		maxPipesPerPair: maxPipesPerPair,
	}
}

func shardCustomer(shard int) inventory.Customer {
	return inventory.Customer(fmt.Sprintf("shard-%d", shard))
}

func spectrumKey(link topo.LinkID, ch optics.Channel) string {
	return fmt.Sprintf("spectrum:%s:%d", link, ch)
}

func (co *Coordinator) words(m map[topo.LinkID][]uint64, link topo.LinkID) []uint64 {
	w := m[link]
	if w == nil {
		w = make([]uint64, (co.channels+63)/64)
		m[link] = w
	}
	return w
}

// claimChannel registers (link, ch) to a shard, failing if another shard
// holds it.
func (co *Coordinator) claimChannel(shard int, link topo.LinkID, ch optics.Channel) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if err := co.ledger.Claim(shardCustomer(shard), spectrumKey(link, ch)); err != nil {
		return fmt.Errorf("core: cross-shard spectrum conflict: %w", err)
	}
	ownm := co.own[shard]
	if ownm == nil {
		ownm = make(map[topo.LinkID][]uint64)
		co.own[shard] = ownm
	}
	w, bit := (ch-1)>>6, uint64(1)<<uint((ch-1)&63)
	co.words(co.all, link)[w] |= bit
	co.words(ownm, link)[w] |= bit
	return nil
}

// releaseChannel retires a shard's claim on (link, ch). A release that does
// not match a claim is recorded as a violation for the audit sweep.
func (co *Coordinator) releaseChannel(shard int, link topo.LinkID, ch optics.Channel) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if err := co.ledger.Release(shardCustomer(shard), spectrumKey(link, ch)); err != nil {
		co.violations = append(co.violations, fmt.Sprintf("shard-%d release %s: %s", shard, spectrumKey(link, ch), err))
		return
	}
	w, bit := (ch-1)>>6, uint64(1)<<uint((ch-1)&63)
	co.words(co.all, link)[w] &^= bit
	if ownm := co.own[shard]; ownm != nil {
		co.words(ownm, link)[w] &^= bit
	}
}

// maskForeign clears, from a continuity bitset, every channel on link that a
// different shard has claimed.
func (co *Coordinator) maskForeign(shard int, link topo.LinkID, words []uint64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	all := co.all[link]
	if all == nil {
		return
	}
	var own []uint64
	if ownm := co.own[shard]; ownm != nil {
		own = ownm[link]
	}
	for w := range words {
		if w >= len(all) {
			break
		}
		foreign := all[w]
		if own != nil && w < len(own) {
			foreign &^= own[w]
		}
		words[w] &^= foreign
	}
}

// ClaimPipe reserves one unit of OTN pipe capacity between a node pair for a
// shard, returning an opaque token to release later. It fails when the
// per-pair cap is reached.
func (co *Coordinator) ClaimPipe(shard int, a, b topo.NodeID) (string, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	pair := pipePairKey(a, b)
	if co.maxPipesPerPair > 0 && co.pipePair[pair] >= co.maxPipesPerPair {
		return "", fmt.Errorf("core: pipe capacity %s exhausted (%d live across shards)", pair, co.pipePair[pair])
	}
	co.pipeSeq[pair]++
	token := fmt.Sprintf("pipe:%s#%d", pair, co.pipeSeq[pair])
	if err := co.ledger.Claim(shardCustomer(shard), token); err != nil {
		return "", err // unreachable: seq is monotonic, but keep the ledger authoritative
	}
	co.pipeOwner[token] = shard
	co.pipePair[pair]++
	return token, nil
}

// ReleasePipe retires a pipe token. Mismatched or double releases are
// recorded as violations.
func (co *Coordinator) ReleasePipe(shard int, token string) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if owner, ok := co.pipeOwner[token]; !ok || owner != shard {
		co.violations = append(co.violations, fmt.Sprintf("shard-%d release %s: not the owner", shard, token))
		return
	}
	if err := co.ledger.Release(shardCustomer(shard), token); err != nil {
		co.violations = append(co.violations, fmt.Sprintf("shard-%d release %s: %s", shard, token, err))
		return
	}
	delete(co.pipeOwner, token)
	if pair, ok := pipePairOfToken(token); ok {
		co.pipePair[pair]--
	}
}

func pipePairKey(a, b topo.NodeID) string {
	if b < a {
		a, b = b, a
	}
	return string(a) + "~" + string(b)
}

func pipePairOfToken(token string) (string, bool) {
	rest, ok := strings.CutPrefix(token, "pipe:")
	if !ok {
		return "", false
	}
	pair, _, ok := strings.Cut(rest, "#")
	return pair, ok
}

// ownsChannel reports whether a shard holds the coordinator claim on
// (link, ch) — the backing the cross-shard audit demands for every channel a
// shard's plant has lit.
func (co *Coordinator) ownsChannel(shard int, link topo.LinkID, ch optics.Channel) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	ownm := co.own[shard]
	if ownm == nil {
		return false
	}
	w := ownm[link]
	wi, bit := int(ch-1)>>6, uint64(1)<<uint((ch-1)&63)
	return wi < len(w) && w[wi]&bit != 0
}

// shardClaims returns a shard's live claim keys, sorted.
func (co *Coordinator) shardClaims(shard int) []string {
	co.mu.Lock()
	defer co.mu.Unlock()
	cust := shardCustomer(shard)
	var out []string
	for _, key := range co.ledger.Claims() {
		if co.ledger.OwnerOf(key) == cust {
			out = append(out, key)
		}
	}
	return out
}

// Violations returns the recorded claim/release inconsistencies, sorted.
func (co *Coordinator) Violations() []string {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := append([]string(nil), co.violations...)
	sort.Strings(out)
	return out
}

// shardBroker is one shard's view of the coordinator, implementing
// optics.Broker for that shard's plant.
type shardBroker struct {
	co    *Coordinator
	shard int
}

func (b shardBroker) ClaimChannel(link topo.LinkID, ch optics.Channel, owner string) error {
	return b.co.claimChannel(b.shard, link, ch)
}

func (b shardBroker) ReleaseChannel(link topo.LinkID, ch optics.Channel) {
	b.co.releaseChannel(b.shard, link, ch)
}

func (b shardBroker) MaskForeign(link topo.LinkID, words []uint64) {
	b.co.maskForeign(b.shard, link, words)
}

// Broker returns the optics.Broker view of the coordinator for one shard.
func (co *Coordinator) Broker(shard int) optics.Broker {
	return shardBroker{co: co, shard: shard}
}
