package core

import (
	"strings"
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func TestFXCPortExhaustionBlocks(t *testing.T) {
	k := sim.NewKernel(140)
	cfg := Config{FXCClientPorts: 1, FXCLinePorts: 1}
	c, err := New(k, topo.Testbed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	// The single client/line pair at I is taken.
	if _, _, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G}); err == nil {
		t.Error("connect beyond FXC ports accepted")
	}
	// The failure rolled back: OTs free again beyond the first conn.
	if got := c.Snapshot().OTsInUse; got != 2 {
		t.Errorf("OTs in use = %d, want 2", got)
	}
	// Releasing the first connection frees the ports for the next.
	conn := c.CustomerConnections("x")[0]
	if _, err := c.Disconnect("x", conn.ID); err != nil {
		t.Fatal(err)
	}
	k.Run()
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
}

func TestPipeBuildFailsWhenNoSpectrum(t *testing.T) {
	k := sim.NewKernel(141)
	cfg := Config{}
	cfg.Optics.Channels = 1
	cfg.Optics.ReachKM = 2500
	cfg.Optics.OTsPerNode = 8
	c, err := New(k, topo.Testbed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the single channel everywhere between I and III.
	c.Plant().Spectrum("I-III").Reserve(1, "hog")
	c.Plant().Spectrum("I-II").Reserve(1, "hog")
	c.Plant().Spectrum("I-IV").Reserve(1, "hog")
	// The OTN circuit needs a pipe, the pipe needs a wavelength, and
	// there is none: setup must fail asynchronously and clean up.
	conn, job, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if err != nil {
		t.Fatalf("synchronous failure, want async: %v", err)
	}
	k.Run()
	if job.Err() == nil {
		t.Fatal("circuit setup succeeded without spectrum")
	}
	if conn.State != StateReleased {
		t.Errorf("state = %v", conn.State)
	}
	if c.AccessUsed("DC-A") != 0 {
		t.Error("access leaked")
	}
	if u := c.Ledger().UsageOf("x"); u.Connections != 0 {
		t.Errorf("ledger leaked: %+v", u)
	}
}

func TestProbeRouteIsPure(t *testing.T) {
	k, c := newTestbed(t, 142)
	r, err := c.ProbeRoute("I", "IV", bw.Rate10G)
	if err != nil {
		t.Fatal(err)
	}
	if r.Path.String() != "I-IV" {
		t.Errorf("probe path = %s", r.Path)
	}
	// Probing reserves nothing.
	if got := c.Snapshot().ChannelsInUse; got != 0 {
		t.Errorf("probe reserved %d channel-links", got)
	}
	if _, err := c.ProbeRoute("I", "I", bw.Rate10G); err == nil {
		t.Error("self probe accepted")
	}
	_ = k
}

func TestAccessorsAndStrings(t *testing.T) {
	k, c := newTestbed(t, 143)
	if c.Kernel() != k {
		t.Error("Kernel accessor")
	}
	if c.Latencies().LaserTune == 0 {
		t.Error("Latencies accessor")
	}
	if c.OTNEMS() == nil || c.ROADMEMS() == nil {
		t.Error("EMS accessors")
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if got := conn.PipeIDs(); len(got) != 1 {
		t.Errorf("PipeIDs = %v", got)
	}
	evs := c.EventsFor(conn.ID)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	found := false
	for _, e := range evs {
		s := e.String()
		if strings.Contains(s, string(conn.ID)) && strings.Contains(s, "request") {
			found = true
		}
	}
	if !found {
		t.Errorf("no request event rendered for %s: %v", conn.ID, evs)
	}
	got := c.CustomerConnections("x")
	if len(got) != 1 || got[0] != conn {
		t.Errorf("CustomerConnections = %v", got)
	}
	// Internal carrier conns never appear in a customer's view.
	if carrier := c.CustomerConnections(CarrierCustomer); len(carrier) != 0 {
		t.Errorf("carrier view shows %d conns", len(carrier))
	}
}

func TestSetupTimeZeroWhilePending(t *testing.T) {
	_, c := newTestbed(t, 144)
	conn, _, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	if err != nil {
		t.Fatal(err)
	}
	if conn.SetupTime() != 0 {
		t.Errorf("pending SetupTime = %v, want 0", conn.SetupTime())
	}
}

func TestReclaimSkipsBusyAndDownPipes(t *testing.T) {
	k, c := newTestbed(t, 145)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	// Busy pipe is not reclaimed.
	job, n := c.ReclaimIdlePipes()
	k.Run()
	if n != 0 || job.Err() != nil {
		t.Errorf("reclaimed %d busy pipes (err %v)", n, job.Err())
	}
	// A down pipe is not reclaimed either.
	carrier := c.Conn(c.PipeCarrier(conn.pipes[0].ID()))
	if _, err := c.Disconnect("x", conn.ID); err != nil {
		t.Fatal(err)
	}
	k.Run()
	link := carrier.Route().Links[0]
	c.CutFiber(link)
	// Immediately after the cut (pipe down, carrier restoring).
	_, n = c.ReclaimIdlePipes()
	if n != 0 {
		t.Errorf("reclaimed %d down pipes", n)
	}
	k.Run() // restoration brings the pipe back
	job, n = c.ReclaimIdlePipes()
	k.Run()
	if n != 1 || job.Err() != nil {
		t.Errorf("post-restore reclaim = %d (err %v)", n, job.Err())
	}
}

func TestDisconnectDuringRestoration(t *testing.T) {
	k, c := newTestbed(t, 146)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	c.CutFiber(conn.Route().Links[0])
	// Advance until restoration is underway but not finished.
	k.RunFor(30 * time.Second)
	if conn.State != StateRestoring {
		t.Skipf("state = %v at 30 s; timing shifted", conn.State)
	}
	job, err := c.Disconnect("x", conn.ID)
	if err != nil {
		t.Fatalf("cancel during restoration rejected: %v", err)
	}
	k.Run()
	if job.Err() != nil || conn.State != StateReleased {
		t.Fatalf("err=%v state=%v", job.Err(), conn.State)
	}
	// Both the old path's and the abandoned restoration path's resources
	// must be home.
	s := c.Snapshot()
	if s.ChannelsInUse != 0 || s.OTsInUse != 0 || s.RegensInUse != 0 {
		t.Errorf("leak after mid-restoration cancel: %+v", s)
	}
	total := 0
	for _, n := range c.Graph().Nodes() {
		total += c.ROADMs().Node(n.ID).AddDropUsed()
	}
	if total != 0 {
		t.Errorf("ROADM state leaked: %d", total)
	}
}

func TestAdjustPendingRejected(t *testing.T) {
	_, c := newTestbed(t, 147)
	conn, _, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdjustRate("x", conn.ID, bw.Rate2G5); err == nil {
		t.Error("adjust of a pending connection accepted")
	}
}

func TestMaintenanceWithOnePlusOneStandbyOnLink(t *testing.T) {
	k, c := newTestbed(t, 148)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: OnePlusOne})
	// Maintain a link only the STANDBY leg uses: traffic must ride
	// through the whole window unharmed (the standby takes the hit).
	standby := conn.protect.route.Path
	var link topo.LinkID
	for _, l := range standby.Links {
		if !conn.path.route.Path.HasLink(l) {
			link = l
			break
		}
	}
	if link == "" {
		t.Fatal("no standby-only link")
	}
	m, job, err := c.ScheduleMaintenance(link, k.Now().Add(time.Hour), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil || !m.Finished {
		t.Fatalf("maintenance err=%v finished=%v", job.Err(), m.Finished)
	}
	if conn.State != StateActive || conn.onProtect {
		t.Errorf("state=%v onProtect=%v", conn.State, conn.onProtect)
	}
	if conn.TotalOutage != 0 {
		t.Errorf("working traffic took a hit: %v", conn.TotalOutage)
	}
}
