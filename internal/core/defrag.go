package core

import (
	"fmt"

	"griphon/internal/ems"
	"griphon/internal/inventory"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/slo"
)

// DefragmentSpectrum re-tunes active wavelengths down to the lowest channels
// free on their own paths. Months of connection churn leave the spectrum
// fragmented — high channels busy, low channels free in non-aligned patterns
// — which blocks future first-fit assignments; periodic defragmentation is
// standard carrier practice and a natural companion to the paper's §4
// re-grooming. Each move is a retune on the same path (no bridge needed):
// reserve the lower channel, reprogram the ROADMs, brief re-tune hit, release
// the old channel. It returns a job completing when all retunes finish and
// the number of connections moved.
func (c *Controller) DefragmentSpectrum() (*sim.Job, int) {
	sp := c.tr.Start(obs.SpanRef{}, "op:defrag")
	var jobs []*sim.Job
	var movedConns []*Connection
	moved := 0
	for _, conn := range c.Connections() {
		if conn.Layer != LayerDWDM || conn.State != StateActive {
			continue
		}
		if c.retuneDown(conn) {
			moved++
			c.ins.retunes.Inc()
			movedConns = append(movedConns, conn)
			jobs = append(jobs, c.retuneJob(conn, sp))
		}
	}
	if moved > 0 {
		// The channel moves are synchronous; one commit covers the sweep.
		c.journalCommit(commitSet{reason: "defrag", conns: movedConns})
	}
	job := sim.All(c.k, jobs...)
	job.OnDone(func(err error) { sp.EndErr(err) })
	return job, moved
}

// retuneDown moves every segment of conn's working lightpath to the lowest
// common free channel below its current one. It mutates resource state
// synchronously and reports whether anything moved.
func (c *Controller) retuneDown(conn *Connection) bool {
	lp := conn.working()
	if lp == nil {
		return false
	}
	movedAny := false
	for i, seg := range lp.route.Plan.Segments {
		cur := lp.route.Channels[i]
		free := c.plant.ContinuityChannels(seg.Links)
		if len(free) == 0 || free[0] >= cur {
			continue
		}
		target := free[0]
		// Reserve the new channel on every link of the segment, each link a
		// transaction step so a partial grab rolls back in LIFO order.
		txn := inventory.NewTxn()
		ok := true
		for _, link := range seg.Links {
			if err := txn.Do(
				func() error { return c.plant.Spectrum(link).Reserve(target, string(conn.ID)) },
				func() { c.plant.Spectrum(link).Release(target) }, //lint:allow errcheck undoing our own reserve
			); err != nil {
				txn.Rollback()
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Re-point the ROADM layer at the new channel.
		owner := lp.segOwners[i]
		nodes := lp.segNodes[i]
		c.roadms.ReleaseSegment(nodes, owner)
		if err := c.roadms.ConfigureSegment(nodes, seg.Links, target, owner); err != nil {
			// Restore the old configuration (ports were just freed,
			// so this cannot fail) and let the txn drop the new spectrum.
			c.roadms.ConfigureSegment(nodes, seg.Links, cur, owner) //lint:allow errcheck restoring freed state
			txn.Rollback()
			continue
		}
		txn.Commit()
		// Release the old channel.
		for _, link := range seg.Links {
			c.plant.Spectrum(link).Release(cur) //lint:allow errcheck owned
		}
		c.log(conn.ID, "retune", "segment %d channel %d -> %d", i, cur, target)
		lp.route.Channels[i] = target
		movedAny = true
	}
	return movedAny
}

// retuneJob models the EMS work and brief hit of re-tuning a live wavelength.
func (c *Controller) retuneJob(conn *Connection, parent obs.SpanRef) *sim.Job {
	out := c.k.NewJob()
	hit := c.jit(c.lat.ProtectionSwitch)
	c.connDown(conn, slo.CauseDefrag, "", "defrag retune hit", "hit")
	c.k.After(hit, func() {
		c.connUp(conn, "retune-done")
		c.roadmEMS.SubmitBatch([]ems.Command{
			{Name: fmt.Sprintf("defrag-retune:%s", conn.ID), Dur: c.jit(c.lat.LaserTune), Span: parent},
			{Name: "verify", Dur: c.jit(c.lat.VerifyEndToEnd), Span: parent},
		}).OnDone(func(err error) { out.Complete(err) })
	})
	return out
}

// MaxChannelInUse returns the highest occupied channel across the plant (0
// when the spectrum is empty) — the defragmentation experiment's metric.
func (c *Controller) MaxChannelInUse() int {
	max := 0
	for _, l := range c.g.Links() {
		used := c.plant.Spectrum(l.ID).UsedChannels()
		if len(used) > 0 && int(used[len(used)-1]) > max {
			max = int(used[len(used)-1])
		}
	}
	return max
}
