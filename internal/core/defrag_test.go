package core

import (
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
)

// fragmentSpectrum creates churn that leaves survivors on high channels:
// connect several wavelengths (taking channels 1..n first-fit), then release
// the low-channel ones.
func fragmentSpectrum(t *testing.T, k *sim.Kernel, c *Controller) []*Connection {
	t.Helper()
	var conns []*Connection
	for i := 0; i < 4; i++ {
		conns = append(conns, mustConnect(t, k, c, Request{
			Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G,
		}))
	}
	// Release the first three: channels 1..3 free up, the survivor sits
	// on channel 4.
	for _, conn := range conns[:3] {
		job, err := c.Disconnect("x", conn.ID)
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		if job.Err() != nil {
			t.Fatal(job.Err())
		}
	}
	return conns[3:]
}

func TestDefragmentSpectrum(t *testing.T) {
	k, c := newTestbed(t, 120)
	survivors := fragmentSpectrum(t, k, c)
	conn := survivors[0]
	if got := conn.Channels()[0]; got != 4 {
		t.Fatalf("survivor on channel %d, want 4 (fragmented)", got)
	}
	if c.MaxChannelInUse() != 4 {
		t.Fatalf("max channel = %d", c.MaxChannelInUse())
	}

	job, moved := c.DefragmentSpectrum()
	if moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if got := conn.Channels()[0]; got != 1 {
		t.Errorf("channel after defrag = %d, want 1", got)
	}
	if c.MaxChannelInUse() != 1 {
		t.Errorf("max channel after defrag = %d", c.MaxChannelInUse())
	}
	// The hit is a brief retune, not an outage.
	if conn.TotalOutage == 0 || conn.TotalOutage > 200*time.Millisecond {
		t.Errorf("defrag hit = %v", conn.TotalOutage)
	}
	// ROADM state moved with the channel.
	ch := conn.Channels()[0]
	link := conn.Route().Links[0]
	if owner := c.ROADMs().Node(conn.Route().Src()).OwnerAt(ch, link); owner == "" {
		t.Error("ROADM termination not re-pointed to the new channel")
	}
	// A second sweep is a no-op.
	_, moved = c.DefragmentSpectrum()
	if moved != 0 {
		t.Errorf("second sweep moved %d", moved)
	}
	k.Run()
}

func TestDefragSkipsNonMovable(t *testing.T) {
	k, c := newTestbed(t, 121)
	// Channel 1 is the lowest and already in use by the only connection.
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	if conn.Channels()[0] != 1 {
		t.Fatalf("channel = %d", conn.Channels()[0])
	}
	_, moved := c.DefragmentSpectrum()
	if moved != 0 {
		t.Errorf("moved = %d on an already packed spectrum", moved)
	}
	// Down connections are skipped.
	c.CutFiber(conn.Route().Links[0])
	_, moved = c.DefragmentSpectrum()
	if moved != 0 {
		t.Errorf("moved a down connection")
	}
	k.Run()
}

func TestDefragAccountsSpectrumExactly(t *testing.T) {
	k, c := newTestbed(t, 122)
	fragmentSpectrum(t, k, c)
	job, _ := c.DefragmentSpectrum()
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	// Exactly one channel-link in use (the 1-hop survivor).
	if got := c.Snapshot().ChannelsInUse; got != 1 {
		t.Errorf("channel-links = %d, want 1", got)
	}
}
