package core

import (
	"testing"

	"griphon/internal/bw"
	"griphon/internal/faults"
	"griphon/internal/optics"
	"griphon/internal/otn"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func newDegradingTestbed(t *testing.T, seed int64, opt optics.Config) (*sim.Kernel, *Controller) {
	t.Helper()
	k := sim.NewKernel(seed)
	c, err := New(k, topo.Testbed(), Config{DegradeToOTN: true, Optics: opt})
	if err != nil {
		t.Fatal(err)
	}
	return k, c
}

// TestSetupDegradesToGroomedCircuit: when every DWDM route keeps failing, a
// 10G request is delivered as a groomed OTN circuit over existing overlay
// capacity instead of hard-blocking.
func TestSetupDegradesToGroomedCircuit(t *testing.T) {
	k, c := newDegradingTestbed(t, 401, optics.Config{})
	// Pre-groom: an ODU2 pipe between the request's home PoPs, built while
	// the ROADM EMS is still healthy.
	pj, err := c.EnsurePipe("I", "IV", otn.ODU2)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if pj.Err() != nil {
		t.Fatal(pj.Err())
	}

	c.ROADMEMS().InjectFailures(1000, &faults.Error{
		EMS: "roadm-ems", Cmd: "add-drop", Class: faults.Persistent, Reason: "config-rejected",
	})
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if conn.Layer != LayerOTN || !conn.Degraded {
		t.Errorf("layer=%v degraded=%v, want a degraded OTN circuit", conn.Layer, conn.Degraded)
	}
	if conn.Protect != SharedMesh {
		t.Errorf("protect = %v, want shared-mesh after degradation", conn.Protect)
	}
	if got := metricValue(t, c, "griphon_setup_degraded_total", `mode="groomed"`); got != 1 {
		t.Errorf("groomed metric = %v, want 1", got)
	}
	// Cumulative avoidance leaves a single viable alternate before the
	// grooming rung (see TestRerouteAvoidAccumulates).
	if got := metricValue(t, c, "griphon_setup_degraded_total", `mode="reroute"`); got != 1 {
		t.Errorf("reroute metric = %v, want 1 before grooming", got)
	}
	auditClean(t, c)
}

// TestSetupDegradesWhenNoWavelengthAvailable: the sync rung — when admission
// finds no free wavelength resources at all, the request degrades immediately.
func TestSetupDegradesWhenNoWavelengthAvailable(t *testing.T) {
	// One transponder per node: the pre-groomed pipe consumes the only OTs
	// at I and IV, so no further wavelength can terminate there.
	k, c := newDegradingTestbed(t, 402, optics.Config{
		Channels: 80, ReachKM: 2500, OTsPerNode: 1, RegensPerNode: 2,
	})
	pj, err := c.EnsurePipe("I", "IV", otn.ODU2)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if pj.Err() != nil {
		t.Fatal(pj.Err())
	}

	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if conn.Layer != LayerOTN || !conn.Degraded {
		t.Errorf("layer=%v degraded=%v, want a degraded OTN circuit", conn.Layer, conn.Degraded)
	}
	if got := metricValue(t, c, "griphon_setup_degraded_total", `mode="groomed"`); got != 1 {
		t.Errorf("groomed metric = %v, want 1", got)
	}
	auditClean(t, c)
}

// TestNoDegradeWithoutOptIn: without Config.DegradeToOTN the ladder ends at
// route fallback and the request fails cleanly.
func TestNoDegradeWithoutOptIn(t *testing.T) {
	k, c := newTestbed(t, 403)
	c.ROADMEMS().InjectFailures(1000, &faults.Error{
		EMS: "roadm-ems", Cmd: "add-drop", Class: faults.Persistent, Reason: "config-rejected",
	})
	conn, job, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() == nil {
		t.Fatal("setup succeeded; expected a hard failure without DegradeToOTN")
	}
	if conn.State != StateReleased || conn.Degraded {
		t.Errorf("state=%v degraded=%v, want a clean release", conn.State, conn.Degraded)
	}
	if got := metricValue(t, c, "griphon_setup_degraded_total", `mode="groomed"`); got != 0 {
		t.Errorf("groomed metric = %v, want 0", got)
	}
	auditClean(t, c)
}

// TestNoDegradeFor40G: a 40G wavelength cannot be groomed into ODU2 pipes
// (it would need an ODU3), so the ladder never degrades it.
func TestNoDegradeFor40G(t *testing.T) {
	k, c := newDegradingTestbed(t, 404, optics.Config{})
	pj, err := c.EnsurePipe("I", "IV", otn.ODU2)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if pj.Err() != nil {
		t.Fatal(pj.Err())
	}
	c.ROADMEMS().InjectFailures(1000, &faults.Error{
		EMS: "roadm-ems", Cmd: "add-drop", Class: faults.Persistent, Reason: "config-rejected",
	})
	conn, job, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate40G})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() == nil {
		t.Fatal("40G setup succeeded; expected failure (no ODU3 grooming)")
	}
	if conn.Degraded || conn.Layer != LayerDWDM {
		t.Errorf("40G request degraded (layer=%v); must not", conn.Layer)
	}
	auditClean(t, c)
}
