package core

import (
	"fmt"
	"time"

	"griphon/internal/alarms"
	"griphon/internal/obs"
	"griphon/internal/otn"
	"griphon/internal/topo"
)

// CutFiber fails a fiber link: every wavelength on it loses light, affected
// connections alarm, and — per the paper's automation story — detection,
// localization and restoration proceed without operator involvement. With
// Config.AutoRepair a repair crew is dispatched automatically (4–12 h).
func (c *Controller) CutFiber(link topo.LinkID) error {
	l := c.g.Link(link)
	if l == nil {
		return fmt.Errorf("core: unknown link %s", link)
	}
	if !c.plant.LinkUp(link) {
		return fmt.Errorf("core: link %s is already down", link)
	}
	c.plant.SetLinkUp(link, false)
	c.ins.cuts.Inc()
	c.log("", "fiber-cut", "link %s cut", link)

	for _, conn := range c.Connections() {
		c.hitByCut(conn, link)
	}

	if c.autoRepair && !c.repairing[link] {
		c.repairing[link] = true
		crew := c.lat.FiberRepair(c.k.Rand())
		c.log("", "repair-dispatch", "crew for %s, ETA %v", link, crew)
		c.k.After(crew, func() { c.RepairFiber(link) }) //lint:allow errcheck best-effort auto repair
	}
	// One commit for the whole synchronous blast radius: downed connections,
	// failed pipes, and the authoritative down-link set.
	c.journalCommit(commitSet{reason: "fiber-cut", conns: c.Connections(), pipes: c.fabric.Pipes(), links: true})
	return nil
}

// hitByCut applies a fiber cut to one connection.
func (c *Controller) hitByCut(conn *Connection, link topo.LinkID) {
	if conn.Layer != LayerDWDM {
		return // OTN circuits fail via their pipes, handled below
	}
	if conn.State != StateActive {
		return
	}
	lp := conn.working()
	if lp == nil || !lp.route.Path.HasLink(link) {
		// A 1+1 standby leg can die while traffic rides the other leg;
		// traffic is unaffected but the loss is worth surfacing.
		if conn.Protect == OnePlusOne {
			standby := conn.protect
			if conn.onProtect {
				standby = conn.path
			}
			if standby != nil && standby.route.Path.HasLink(link) {
				c.log(conn.ID, "standby-hit", "standby leg lost on %s", link)
			}
		}
		return
	}

	if conn.Protect == OnePlusOne {
		c.protectionSwitch(conn, link)
		return
	}

	phase := "detect"
	if conn.Protect != Restore {
		phase = "repair-wait" // unprotected: down until the fiber is repaired
	}
	c.connDown(conn, c.cutCause(link), link, fmt.Sprintf("working path lost on %s", link), phase)
	conn.State = StateDown
	conn.stable = StateDown
	if conn.Protect == Restore {
		// op:restore spans the whole outage; its children tile it:
		// detect (cut -> correlated alarms), localize, provision.
		conn.opSpan = c.tr.Start(obs.SpanRef{}, "op:restore")
		conn.opSpan.SetConn(string(conn.ID), string(conn.Customer), conn.Layer.String())
		conn.phaseSpan = c.tr.Start(conn.opSpan, "restore:detect")
	}
	c.log(conn.ID, "down", "working path lost on %s", link)
	c.failCarriedPipe(conn, link)

	// LOS alarms from both terminating ROADMs reach the controller after
	// the alarm latency and enter the correlation window.
	path := lp.route.Path
	c.k.After(c.jit(c.lat.AlarmLatency), func() {
		c.correlator.Observe(alarms.Alarm{
			At: c.k.Now(), Node: path.Src(), Conn: string(conn.ID),
			Customer: string(conn.Customer), Type: alarms.LOS, Detail: "loss of light",
		})
		c.correlator.Observe(alarms.Alarm{
			At: c.k.Now(), Node: path.Dst(), Conn: string(conn.ID),
			Customer: string(conn.Customer), Type: alarms.LOS, Detail: "loss of light",
		})
	})
}

// protectionSwitch performs the autonomous 1+1 tail-end switch: if the other
// leg is healthy, traffic moves to it in ~50 ms with no controller handshake.
func (c *Controller) protectionSwitch(conn *Connection, link topo.LinkID) {
	var target *lightpath
	if conn.onProtect {
		target = conn.path
	} else {
		target = conn.protect
	}
	c.connDown(conn, c.cutCause(link), link, fmt.Sprintf("1+1 working leg lost on %s", link), "switch")
	if target == nil || !c.plant.PathUp(target.route.Path) {
		conn.State = StateDown
		conn.stable = StateDown
		c.slaPhase(conn, "repair-wait")
		c.log(conn.ID, "down", "both 1+1 legs lost")
		c.failCarriedPipe(conn, link)
		return
	}
	conn.opSpan = c.tr.Start(obs.SpanRef{}, "op:protect-switch")
	conn.opSpan.SetConn(string(conn.ID), string(conn.Customer), conn.Layer.String())
	c.k.After(c.jit(c.lat.ProtectionSwitch), func() {
		if conn.State != StateActive && conn.State != StateDown {
			// Torn down (or released) during the switch window: the
			// teardown path owns the connection now; do not revive it.
			return
		}
		// The standby leg may itself have been cut during the ~50 ms
		// window. Switching traffic onto a dead leg and declaring the
		// connection Active would mask a real outage.
		if !c.plant.PathUp(target.route.Path) {
			if conn.State == StateActive {
				conn.State = StateDown
				conn.stable = StateDown
				c.slaPhase(conn, "repair-wait")
				c.slaBlock(conn, "standby leg lost during switch window")
				c.log(conn.ID, "down", "both 1+1 legs lost")
				c.failCarriedPipe(conn, link)
				conns, pipes := c.carriedEntities(conn)
				c.journalCommit(commitSet{reason: "protect-switch-failed", conns: conns, pipes: pipes})
			}
			conn.opSpan.EndOutcome("blocked")
			return
		}
		conn.onProtect = !conn.onProtect
		conn.State = StateActive
		conn.stable = StateActive
		c.connUp(conn, "protect-switch")
		conn.opSpan.End()
		c.ins.protSwitches.Inc()
		c.log(conn.ID, "protect-switch", "traffic on %s leg", map[bool]string{true: "protect", false: "working"}[conn.onProtect])
		c.journalCommit(commitSet{reason: "protect-switch", conns: []*Connection{conn}})
	})
}

// failCarriedPipe propagates a carrier wavelength failure into the OTN layer.
// link names the cut fiber that killed the carrier, for outage attribution.
func (c *Controller) failCarriedPipe(conn *Connection, link topo.LinkID) {
	if !conn.Internal || conn.carries == "" {
		return
	}
	pipe := c.fabric.Pipe(conn.carries)
	if pipe == nil || !pipe.Up() {
		return
	}
	pipe.SetUp(false)
	c.log(conn.ID, "pipe-down", "pipe %s lost its wavelength", pipe.ID())
	for _, circuit := range c.circuitsOnPipe(pipe.ID()) {
		c.failCircuit(circuit, pipe.ID(), link)
	}
}

// failCircuit handles an OTN circuit losing one of its pipes: shared-mesh
// activation when a backup exists (sub-second), otherwise the circuit waits
// for the pipe to be restored.
func (c *Controller) failCircuit(conn *Connection, pipe otn.PipeID, link topo.LinkID) {
	if conn.State != StateActive {
		return
	}
	c.connDown(conn, c.cutCause(link), link, fmt.Sprintf("pipe %s failed", pipe), "detect")
	conn.State = StateDown
	conn.stable = StateDown
	conn.opSpan = c.tr.Start(obs.SpanRef{}, "op:restore")
	conn.opSpan.SetConn(string(conn.ID), string(conn.Customer), conn.Layer.String())
	conn.phaseSpan = c.tr.Start(conn.opSpan, "restore:detect")
	c.log(conn.ID, "down", "pipe %s failed", pipe)

	if len(conn.backup) == 0 {
		// op:restore stays open: it closes when the DWDM layer restores
		// the pipe and the circuit revives.
		conn.phaseSpan.EndOutcome("no-backup")
		c.slaPhase(conn, "repair-wait")
		return // wait for DWDM-layer restoration of the pipe
	}
	// Backup must itself be alive.
	for _, p := range conn.backup {
		if !p.Up() {
			conn.phaseSpan.EndOutcome("blocked")
			c.slaPhase(conn, "repair-wait")
			c.slaBlock(conn, fmt.Sprintf("shared-mesh backup pipe %s also down", p.ID()))
			c.ins.restoreBlocked.Inc()
			c.log(conn.ID, "restore-blocked", "shared-mesh backup pipe %s also down", p.ID())
			return
		}
	}
	detect := c.jit(c.lat.OTNDetect)
	c.k.After(detect, func() {
		if conn.State != StateDown {
			return
		}
		conn.phaseSpan.End()
		conn.phaseSpan = c.tr.Start(conn.opSpan, "restore:activate")
		c.slaPhase(conn, "activate")
		if err := otn.ActivatePath(conn.backup, string(conn.ID)); err != nil {
			conn.phaseSpan.EndOutcome("blocked")
			conn.opSpan.EndOutcome("blocked")
			c.slaPhase(conn, "repair-wait")
			c.slaBlock(conn, fmt.Sprintf("shared-mesh activation failed: %v", err))
			c.ins.restoreBlocked.Inc()
			c.log(conn.ID, "restore-blocked", "shared-mesh activation failed: %v", err)
			return
		}
		// Reprogram the switches along the backup (sub-second total).
		nSwitches := len(conn.backup) + 1
		total := c.jit(time.Duration(nSwitches) * c.lat.OTNActivatePerSwitch)
		c.k.After(total, func() {
			if conn.State != StateDown {
				return
			}
			otn.ReleasePath(conn.pipes, string(conn.ID)) //lint:allow errcheck leaving old path
			conn.pipes = conn.backup
			conn.backup = nil
			d := c.k.Now().Sub(conn.outageStart)
			conn.State = StateActive
			conn.stable = StateActive
			c.connUp(conn, "mesh-restored")
			conn.Restorations++
			conn.phaseSpan.End()
			conn.opSpan.End()
			c.ins.restored.Inc()
			c.ins.restoreSecs[LayerOTN].Observe(d.Seconds())
			c.log(conn.ID, "restored", "shared-mesh restoration in %v", conn.TotalOutage)
			c.journalCommit(commitSet{reason: "mesh-restore", conns: []*Connection{conn}})
		})
	})
}

// RepairFiber returns a link to service and revives connections whose
// working path is whole again (the "wait for repair" recovery of unprotected
// services, and restore-mode connections that found no alternate capacity).
func (c *Controller) RepairFiber(link topo.LinkID) error {
	l := c.g.Link(link)
	if l == nil {
		return fmt.Errorf("core: unknown link %s", link)
	}
	if c.plant.LinkUp(link) {
		return fmt.Errorf("core: link %s is not down", link)
	}
	c.plant.SetLinkUp(link, true)
	delete(c.repairing, link)
	c.ins.repairs.Inc()
	c.log("", "repair", "link %s repaired", link)

	for _, conn := range c.Connections() {
		if conn.State != StateDown {
			continue
		}
		switch conn.Layer {
		case LayerDWDM:
			lp := conn.working()
			if lp != nil && c.plant.PathUp(lp.route.Path) {
				conn.State = StateActive
				conn.stable = StateActive
				c.connUp(conn, "revived")
				conn.phaseSpan.EndOutcome("revived")
				conn.opSpan.EndOutcome("revived")
				c.log(conn.ID, "revived", "working path whole again after repair")
				c.revivePipe(conn)
				continue
			}
			// A 1+1 connection revives on whichever leg is whole.
			if conn.Protect == OnePlusOne {
				other := conn.protect
				if conn.onProtect {
					other = conn.path
				}
				if other != nil && c.plant.PathUp(other.route.Path) {
					conn.onProtect = !conn.onProtect
					conn.State = StateActive
					conn.stable = StateActive
					c.connUp(conn, "revived")
					c.log(conn.ID, "revived", "switched to repaired leg")
				}
			}
		case LayerOTN:
			c.reviveCircuitIfWhole(conn)
		}
	}

	if c.autoRevert {
		// Reversion: restored connections sitting on detour paths move
		// back to the best route via bridge-and-roll (paper §2.2).
		for _, conn := range c.Connections() {
			if conn.Layer != LayerDWDM || conn.State != StateActive || conn.Protect != Restore {
				continue
			}
			if conn.Restorations == 0 && conn.Rolls == 0 {
				continue // never moved; nothing to revert
			}
			if moved, _, err := c.regroom(conn); err == nil && moved {
				c.log(conn.ID, "revert", "moving back after repair of %s", link)
			}
		}
	}
	// One commit for the synchronous revival sweep (reversion rolls commit on
	// their own schedule as their bridge-and-roll events resolve).
	c.journalCommit(commitSet{reason: "repair", conns: c.Connections(), pipes: c.fabric.Pipes(), links: true})
	return nil
}

// revivePipe brings a carrier connection's pipe back and revives circuits.
func (c *Controller) revivePipe(conn *Connection) {
	if !conn.Internal || conn.carries == "" {
		return
	}
	pipe := c.fabric.Pipe(conn.carries)
	if pipe == nil || pipe.Up() {
		return
	}
	pipe.SetUp(true)
	c.log(conn.ID, "pipe-up", "pipe %s back in service", pipe.ID())
	for _, circuit := range c.circuitsOnPipe(pipe.ID()) {
		c.reviveCircuitIfWhole(circuit)
	}
}

// reviveCircuitIfWhole returns a down OTN circuit to service when every pipe
// it rides is up again.
func (c *Controller) reviveCircuitIfWhole(conn *Connection) {
	if conn.State != StateDown {
		return
	}
	for _, p := range conn.pipes {
		if !p.Up() {
			return
		}
	}
	conn.State = StateActive
	conn.stable = StateActive
	c.connUp(conn, "revived")
	conn.phaseSpan.EndOutcome("revived")
	conn.opSpan.EndOutcome("revived")
	c.log(conn.ID, "revived", "all pipes whole again")
}

// carriedEntities returns the commit entities affected when a carrier
// wavelength's state change propagates into the OTN layer: the carrier
// itself, its pipe, and every circuit riding that pipe.
func (c *Controller) carriedEntities(conn *Connection) ([]*Connection, []*otn.Pipe) {
	conns := []*Connection{conn}
	if !conn.Internal || conn.carries == "" {
		return conns, nil
	}
	pipe := c.fabric.Pipe(conn.carries)
	if pipe == nil {
		return conns, nil
	}
	return append(conns, c.circuitsOnPipe(pipe.ID())...), []*otn.Pipe{pipe}
}

// onAlarmBatch is the correlation-window sink: localize the fault, then
// launch automated restoration for every restorable connection in the batch.
func (c *Controller) onAlarmBatch(batch []alarms.Alarm) {
	seen := map[ConnID]bool{}
	var alarmedConns []*Connection
	for _, a := range batch {
		id := ConnID(a.Conn)
		if id == "" || seen[id] {
			continue
		}
		seen[id] = true
		if conn := c.conns[id]; conn != nil {
			alarmedConns = append(alarmedConns, conn)
		}
	}

	var alarmedPaths, healthyPaths []topo.Path
	for _, conn := range alarmedConns {
		if lp := conn.working(); lp != nil {
			alarmedPaths = append(alarmedPaths, lp.route.Path)
		}
	}
	for _, conn := range c.Connections() {
		if conn.Layer == LayerDWDM && conn.State == StateActive {
			if lp := conn.working(); lp != nil {
				healthyPaths = append(healthyPaths, lp.route.Path)
			}
		}
	}
	suspects := alarms.PrimarySuspects(alarms.Localize(alarmedPaths, healthyPaths))
	c.log("", "localized", "%d alarms -> suspects %v", len(batch), suspects)
	c.recordAlarmBatch(batch, suspects)

	// The correlated alarms have arrived: detection is over, localization
	// begins — the phase spans tile the op:restore interval exactly.
	for _, conn := range alarmedConns {
		if conn.State == StateDown && conn.Protect == Restore {
			conn.phaseSpan.End()
			conn.phaseSpan = c.tr.Start(conn.opSpan, "restore:localize")
			c.slaPhase(conn, "localize")
		}
	}

	c.k.After(c.jit(c.lat.Localize), func() {
		for _, conn := range alarmedConns {
			if conn.State == StateDown && conn.Protect == Restore {
				c.startRestoration(conn, suspects)
			}
		}
	})
}

// startRestoration re-provisions a down connection onto a new route that
// avoids the suspect links, reusing its terminating OTs and FXC ports. The
// new path needs the full wavelength-setup choreography, so restoration takes
// on the order of a setup time — minutes, not the hours of manual repair
// (paper Table 1).
func (c *Controller) startRestoration(conn *Connection, suspects []topo.LinkID) {
	old := conn.working()
	if old == nil {
		return
	}
	// Localization done; the provisioning phase covers route search, EMS
	// choreography and verification until the outage ends.
	conn.phaseSpan.End()
	conn.phaseSpan = c.tr.Start(conn.opSpan, "restore:provision")
	c.slaPhase(conn, "provision")
	avoid := map[topo.LinkID]bool{}
	for _, l := range suspects {
		avoid[l] = true
	}
	a, b := old.route.Path.Src(), old.route.Path.Dst()
	newlp, err := c.reserveLightpath(conn.ID, a, b, conn.Rate, conn.Protect, avoid, old, false, conn.phaseSpan)
	if err != nil {
		conn.phaseSpan.EndOutcome("blocked")
		conn.opSpan.EndOutcome("blocked")
		c.slaPhase(conn, "repair-wait")
		c.slaBlock(conn, fmt.Sprintf("no restoration path: %v", err))
		c.ins.restoreBlocked.Inc()
		c.log(conn.ID, "restore-blocked", "no restoration path: %v", err)
		return // stays Down; revived on repair
	}
	conn.State = StateRestoring
	c.log(conn.ID, "restore-start", "re-provisioning onto %s", newlp.route.Path)

	c.lightpathSetupJob(newlp, conn.phaseSpan).OnDone(func(err error) {
		if conn.State != StateRestoring {
			// Torn down mid-restoration; return the new resources.
			c.releaseLightpathMiddle(newlp)
			return
		}
		if err != nil {
			c.releaseLightpathMiddle(newlp)
			conn.State = StateDown
			conn.phaseSpan.EndOutcome("blocked")
			conn.opSpan.EndOutcome("blocked")
			c.slaPhase(conn, "repair-wait")
			c.slaBlock(conn, fmt.Sprintf("EMS failure: %v", err))
			c.ins.restoreBlocked.Inc()
			c.log(conn.ID, "restore-blocked", "EMS failure: %v", err)
			return
		}
		if !c.plant.PathUp(newlp.route.Path) {
			// The restoration path itself was cut while being built.
			c.releaseLightpathMiddle(newlp)
			conn.State = StateDown
			conn.phaseSpan.EndOutcome("blocked")
			conn.opSpan.EndOutcome("blocked")
			c.slaPhase(conn, "repair-wait")
			c.slaBlock(conn, "restoration path failed during setup")
			c.ins.restoreBlocked.Inc()
			c.log(conn.ID, "restore-blocked", "restoration path failed during setup")
			return
		}
		c.releaseLightpathMiddle(old)
		conn.path = newlp
		conn.onProtect = false
		d := c.k.Now().Sub(conn.outageStart)
		conn.State = StateActive
		conn.stable = StateActive
		c.connUp(conn, "restored")
		conn.Restorations++
		conn.phaseSpan.End()
		conn.opSpan.End()
		c.ins.restored.Inc()
		c.ins.restoreSecs[LayerDWDM].Observe(d.Seconds())
		c.log(conn.ID, "restored", "outage %v", conn.TotalOutage)
		c.revivePipe(conn)
		conns, pipes := c.carriedEntities(conn)
		c.journalCommit(commitSet{reason: "restore", conns: conns, pipes: pipes})
	})
}
