package core

import (
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/otn"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func TestCutFiberValidation(t *testing.T) {
	_, c := newTestbed(t, 30)
	if err := c.CutFiber("nope"); err == nil {
		t.Error("unknown link cut accepted")
	}
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	if err := c.CutFiber("I-IV"); err == nil {
		t.Error("double cut accepted")
	}
	if err := c.RepairFiber("nope"); err == nil {
		t.Error("unknown link repair accepted")
	}
	if err := c.RepairFiber("I-III"); err == nil {
		t.Error("repair of healthy link accepted")
	}
	if err := c.RepairFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
}

func TestAutomatedRestorationAfterCut(t *testing.T) {
	k, c := newTestbed(t, 31)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if conn.Route().String() != "I-IV" {
		t.Fatalf("route = %s", conn.Route())
	}
	cutAt := k.Now()
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	if conn.State != StateDown {
		t.Fatalf("state after cut = %v", conn.State)
	}
	k.Run()

	if conn.State != StateActive {
		t.Fatalf("state after restoration = %v", conn.State)
	}
	if conn.Restorations != 1 {
		t.Errorf("restorations = %d", conn.Restorations)
	}
	if conn.Route().HasLink("I-IV") {
		t.Errorf("restored route still uses the cut link: %s", conn.Route())
	}
	// Outage = alarm + correlation + localization + one setup: minutes,
	// not the 4-12 hours of manual repair (paper Table 1).
	outage := conn.Outage(k.Now())
	if outage < 30*time.Second || outage > 3*time.Minute {
		t.Errorf("restoration outage = %v, want ~70-80 s", outage)
	}
	_ = cutAt
	// The old path's wavelength was released during re-provisioning.
	wantCh := conn.Channels()[0]
	if got := c.Plant().Spectrum(conn.Route().Links[0]).Owner(wantCh); got != string(conn.ID) {
		t.Error("new spectrum not owned by connection")
	}
	used := 0
	for _, l := range c.Graph().Links() {
		used += c.Plant().Spectrum(l.ID).Used()
	}
	if used != conn.Route().Hops() {
		t.Errorf("spectrum in use on %d links, want %d (old path released)", used, conn.Route().Hops())
	}
}

func TestUnprotectedWaitsForRepair(t *testing.T) {
	k := sim.NewKernel(32)
	c, err := New(k, topo.Testbed(), Config{AutoRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: Unprotected})
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if conn.State != StateActive {
		t.Fatalf("state = %v after auto-repair", conn.State)
	}
	// Outage equals the repair-crew time: 4 to 12 hours (paper Table 1).
	if conn.TotalOutage < 4*time.Hour || conn.TotalOutage > 12*time.Hour {
		t.Errorf("unprotected outage = %v, want 4-12 h", conn.TotalOutage)
	}
	if conn.Restorations != 0 {
		t.Errorf("unprotected connection restored %d times", conn.Restorations)
	}
}

func TestOnePlusOneSwitchesInMilliseconds(t *testing.T) {
	k, c := newTestbed(t, 33)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: OnePlusOne})
	working := conn.Route()
	if err := c.CutFiber(working.Links[0]); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if conn.State != StateActive {
		t.Fatalf("state = %v", conn.State)
	}
	if !conn.onProtect {
		t.Error("traffic not on protect leg")
	}
	if conn.TotalOutage > 200*time.Millisecond {
		t.Errorf("1+1 outage = %v, want ~50 ms", conn.TotalOutage)
	}
	if conn.Route().Equal(working) {
		t.Error("route unchanged after protection switch")
	}
}

func TestOnePlusOneBothLegsDown(t *testing.T) {
	k, c := newTestbed(t, 34)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: OnePlusOne})
	// Kill both legs: working I-IV, protect I-III-IV.
	c.CutFiber(conn.path.route.Path.Links[0])
	k.RunFor(time.Second)
	c.CutFiber(conn.protect.route.Path.Links[0])
	k.RunFor(time.Hour)
	if conn.State != StateDown {
		t.Fatalf("state = %v, want down with both legs cut", conn.State)
	}
	// Repair one leg: traffic revives on it.
	c.RepairFiber("I-IV")
	k.Run()
	if conn.State != StateActive {
		t.Errorf("state after repair = %v", conn.State)
	}
}

func TestRevertProtect(t *testing.T) {
	k, c := newTestbed(t, 35)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: OnePlusOne})
	cutLink := conn.path.route.Path.Links[0]
	c.CutFiber(cutLink)
	k.Run()
	if !conn.onProtect {
		t.Fatal("not on protect leg")
	}
	// Revert before repair must fail (working leg still dark).
	if _, err := c.RevertProtect("x", conn.ID); err == nil {
		t.Error("revert onto a dead working leg accepted")
	}
	c.RepairFiber(cutLink)
	k.Run()
	job, err := c.RevertProtect("x", conn.ID)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil || conn.onProtect {
		t.Errorf("revert failed: err=%v onProtect=%v", job.Err(), conn.onProtect)
	}
	// Authorization and state checks.
	if _, err := c.RevertProtect("y", conn.ID); err == nil {
		t.Error("cross-customer revert accepted")
	}
	if _, err := c.RevertProtect("x", conn.ID); err == nil {
		t.Error("revert while on working leg accepted")
	}
}

func TestSharedMeshRestorationSubSecond(t *testing.T) {
	k, c := newTestbed(t, 36)
	// Pre-build a triangle of pipes for disjoint backup paths.
	for _, pair := range [][2]topo.NodeID{{"I", "III"}, {"III", "IV"}, {"I", "IV"}} {
		job, err := c.EnsurePipe(pair[0], pair[1], otn.ODU2)
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		if job.Err() != nil {
			t.Fatal(job.Err())
		}
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if len(conn.backup) == 0 {
		t.Fatal("no shared-mesh backup")
	}
	// Find the fiber link under the circuit's working pipe and cut it.
	carrier := c.Conn(c.PipeCarrier(conn.pipes[0].ID()))
	link := carrier.Route().Links[0]
	c.CutFiber(link)
	k.RunFor(10 * time.Second) // well before any DWDM restoration finishes

	if conn.State != StateActive {
		t.Fatalf("circuit state = %v, want restored via shared mesh", conn.State)
	}
	if conn.TotalOutage >= time.Second {
		t.Errorf("shared-mesh outage = %v, want sub-second (paper §2.1)", conn.TotalOutage)
	}
	if conn.Restorations != 1 {
		t.Errorf("restorations = %d", conn.Restorations)
	}
	k.Run()
}

func TestCircuitWithoutBackupWaitsForPipeRestoration(t *testing.T) {
	k, c := newTestbed(t, 37)
	// Single pipe only: no disjoint backup exists.
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if len(conn.backup) != 0 {
		t.Fatal("unexpected backup")
	}
	carrier := c.Conn(c.PipeCarrier(conn.pipes[0].ID()))
	link := carrier.Route().Links[0]
	c.CutFiber(link)
	if conn.State != StateDown {
		t.Fatalf("circuit state = %v after pipe loss", conn.State)
	}
	k.Run()
	// The carrier wavelength restores automatically (DWDM layer), the
	// pipe comes back, and the circuit revives — outage in the minutes.
	if conn.State != StateActive {
		t.Fatalf("circuit state = %v after carrier restoration", conn.State)
	}
	if carrier.Restorations != 1 {
		t.Errorf("carrier restorations = %d", carrier.Restorations)
	}
	if conn.TotalOutage < 30*time.Second || conn.TotalOutage > 5*time.Minute {
		t.Errorf("circuit outage = %v", conn.TotalOutage)
	}
}

func TestRestorationBlockedThenRepairRevives(t *testing.T) {
	k := sim.NewKernel(38)
	// Two-node topology: no alternate route exists at all.
	g := topo.New()
	g.AddNode(topo.Node{ID: "A", HasOTN: true})
	g.AddNode(topo.Node{ID: "B", HasOTN: true})
	g.AddLink(topo.Link{ID: "A-B", A: "A", B: "B", KM: 100})
	g.AddSite(topo.Site{ID: "S1", Home: "A", AccessGbps: 40})
	g.AddSite(topo.Site{ID: "S2", Home: "B", AccessGbps: 40})
	c, err := New(k, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "S1", To: "S2", Rate: bw.Rate10G})
	c.CutFiber("A-B")
	k.Run()
	if conn.State != StateDown {
		t.Fatalf("state = %v, want down (no restoration path)", conn.State)
	}
	c.RepairFiber("A-B")
	k.Run()
	if conn.State != StateActive {
		t.Errorf("state after repair = %v", conn.State)
	}
	if conn.Restorations != 0 {
		t.Errorf("restorations = %d, want 0 (revived by repair)", conn.Restorations)
	}
}

func TestMultipleConnectionsRestoredAfterOneCut(t *testing.T) {
	k, c := newBackbone(t, 39)
	var conns []*Connection
	for _, pair := range [][2]topo.SiteID{
		{"DC-SEA", "DC-CHI"}, {"DC-SEA", "DC-NYC"}, {"DC-SEA", "DC-ATL"},
	} {
		conns = append(conns, mustConnect(t, k, c, Request{Customer: "x", From: pair[0], To: pair[1], Rate: bw.Rate10G}))
	}
	// All three routes leave Seattle over SEA-CHI (hop-shortest).
	for _, conn := range conns {
		if !conn.Route().HasLink("SEA-CHI") {
			t.Skipf("route %s avoids SEA-CHI; topology changed", conn.Route())
		}
	}
	c.CutFiber("SEA-CHI")
	k.Run()
	for _, conn := range conns {
		if conn.State != StateActive {
			t.Errorf("conn %s state = %v", conn.ID, conn.State)
		}
		if conn.Route().HasLink("SEA-CHI") {
			t.Errorf("conn %s still routed over the cut", conn.ID)
		}
		if conn.Restorations != 1 {
			t.Errorf("conn %s restorations = %d", conn.ID, conn.Restorations)
		}
	}
	// One correlation batch served all alarms.
	found := false
	for _, e := range c.Events() {
		if e.Kind == "localized" {
			found = true
			if !contains(e.Text, "SEA-CHI") {
				t.Errorf("localization missed the cut link: %s", e.Text)
			}
		}
	}
	if !found {
		t.Error("no localization event")
	}
}

func TestDisconnectWhileDown(t *testing.T) {
	k, c := newTestbed(t, 40)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: Unprotected})
	c.CutFiber("I-IV")
	k.RunFor(time.Minute)
	job, err := c.Disconnect("x", conn.ID)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil || conn.State != StateReleased {
		t.Fatalf("err=%v state=%v", job.Err(), conn.State)
	}
	// Outage accounting closed at release.
	if conn.inOutage {
		t.Error("outage still open after release")
	}
	if conn.TotalOutage <= 0 {
		t.Error("no outage recorded")
	}
	s := c.Snapshot()
	if s.ChannelsInUse != 0 || s.OTsInUse != 0 {
		t.Errorf("leak after down-disconnect: %+v", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestTeardownDuringProtectionSwitch pins the race between a customer
// disconnect and the ~50 ms 1+1 tail-end switch: the switch completion
// callback must not flip a connection that left Active/Down in the meantime
// back to life.
func TestTeardownDuringProtectionSwitch(t *testing.T) {
	k, c := newTestbed(t, 36)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: OnePlusOne})
	if err := c.CutFiber(conn.path.route.Path.Links[0]); err != nil {
		t.Fatal(err)
	}
	// Mid-window: the switch is in flight, the connection still reads Active.
	k.RunFor(10 * time.Millisecond)
	if _, err := c.Disconnect("x", conn.ID); err != nil {
		t.Fatal(err)
	}
	k.RunFor(200 * time.Millisecond) // the switch callback fires in here
	if conn.State == StateActive {
		t.Fatal("switch callback revived a connection being torn down")
	}
	k.Run()
	if conn.State != StateReleased {
		t.Errorf("state = %v, want released", conn.State)
	}
	for _, f := range c.AuditInvariants() {
		t.Errorf("audit: %s", f)
	}
}

// TestSecondCutDuringProtectionSwitch: the standby leg dies inside the switch
// window. Completing the switch would put traffic on a dead leg and declare
// the connection Active while delivering nothing.
func TestSecondCutDuringProtectionSwitch(t *testing.T) {
	k, c := newTestbed(t, 37)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: OnePlusOne})
	protectLink := conn.protect.route.Path.Links[0]
	if err := c.CutFiber(conn.path.route.Path.Links[0]); err != nil {
		t.Fatal(err)
	}
	k.RunFor(10 * time.Millisecond)
	// Inside the window, the standby leg goes too.
	if err := c.CutFiber(protectLink); err != nil {
		t.Fatal(err)
	}
	k.RunFor(time.Minute)
	if conn.State == StateActive {
		t.Fatal("connection Active on a dead protect leg")
	}
	if conn.State != StateDown {
		t.Errorf("state = %v, want down with both legs cut", conn.State)
	}
	// Repairing the standby leg revives the connection on it.
	if err := c.RepairFiber(protectLink); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if conn.State != StateActive {
		t.Errorf("state after repair = %v, want active", conn.State)
	}
	if !conn.onProtect {
		t.Error("traffic should ride the repaired protect leg")
	}
	for _, f := range c.AuditInvariants() {
		t.Errorf("audit: %s", f)
	}
}
