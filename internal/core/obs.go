package core

import (
	"sort"

	"griphon/internal/alarms"
	"griphon/internal/ems"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// instruments bundles the controller's metric handles. Every handle is
// created once at construction; updates on the hot paths are plain field
// increments and never allocate.
type instruments struct {
	// Indexed by Layer (LayerDWDM, LayerOTN).
	setupOK     [2]*obs.Counter
	setupFailed [2]*obs.Counter
	setupSecs   [2]*obs.Histogram
	restoreSecs [2]*obs.Histogram

	blockedAdmission *obs.Counter
	blockedRoute     *obs.Counter
	teardowns        *obs.Counter
	teardownSecs     *obs.Histogram
	restored         *obs.Counter
	restoreBlocked   *obs.Counter
	protSwitches     *obs.Counter
	rolls            *obs.Counter
	rollHitSecs      *obs.Histogram
	adjusts          *obs.Counter
	retunes          *obs.Counter
	pipeBuilds       *obs.Counter
	cuts             *obs.Counter
	repairs          *obs.Counter
	apiEncodeErrs    *obs.Counter
	emsRetries       *obs.Counter
	setupRerouted    *obs.Counter
	setupGroomed     *obs.Counter
	bookingCloseErrs *obs.Counter
	journalErrs      *obs.Counter

	// Indexed by alarms.Type and alarms.GroupKind respectively.
	alarmsObserved [3]*obs.Counter
	alarmGroups    [3]*obs.Counter

	pathcacheHits          *obs.Counter
	pathcacheMisses        *obs.Counter
	pathcacheInvalidations *obs.Counter
	pathcacheEvictDeadLink *obs.Counter
	pathcacheEvictBlocked  *obs.Counter
	prearmClaimsSession    *obs.Counter
	prearmClaimsOT         *obs.Counter
	prearmRearmOK          *obs.Counter
	prearmRearmFailed      *obs.Counter
}

// Tracer returns the controller's tracer (nil when tracing is disabled).
func (c *Controller) Tracer() *obs.Tracer { return c.tr }

// Metrics returns the controller's instrument registry. It is always
// non-nil; the HTTP API serves it at GET /api/v1/metrics and the experiments
// harness reads it instead of keeping ad-hoc tallies.
func (c *Controller) Metrics() *obs.Registry { return c.reg }

// initObs creates every instrument and registers the live-state gauges.
// Gauge functions are evaluated only at export (scrape) time, so steady-state
// operation pays nothing for them.
func (c *Controller) initObs() {
	r := c.reg
	layers := [2]string{LayerDWDM.String(), LayerOTN.String()}
	for l, name := range layers {
		c.ins.setupOK[l] = r.Counter("griphon_setups_total",
			"Connection setups completed, by layer and outcome.", "layer", name, "outcome", "ok")
		c.ins.setupFailed[l] = r.Counter("griphon_setups_total",
			"Connection setups completed, by layer and outcome.", "layer", name, "outcome", "failed")
		c.ins.setupSecs[l] = r.Histogram("griphon_setup_seconds",
			"Connection establishment latency in virtual seconds (paper Table 2).", nil, "layer", name)
		c.ins.restoreSecs[l] = r.Histogram("griphon_restoration_seconds",
			"Failure-to-restored latency in virtual seconds, by layer.", nil, "layer", name)
	}
	c.ins.blockedAdmission = r.Counter("griphon_blocked_total",
		"Connection requests refused, by reason.", "reason", "admission")
	c.ins.blockedRoute = r.Counter("griphon_blocked_total",
		"Connection requests refused, by reason.", "reason", "route")
	c.ins.teardowns = r.Counter("griphon_teardowns_total", "Connection teardowns completed.")
	c.ins.teardownSecs = r.Histogram("griphon_teardown_seconds",
		"Teardown latency in virtual seconds (paper: ~10 s).", nil)
	c.ins.restored = r.Counter("griphon_restorations_total",
		"Automated restorations, by outcome.", "outcome", "restored")
	c.ins.restoreBlocked = r.Counter("griphon_restorations_total",
		"Automated restorations, by outcome.", "outcome", "blocked")
	c.ins.protSwitches = r.Counter("griphon_protection_switches_total",
		"1+1 tail-end protection switches.")
	c.ins.rolls = r.Counter("griphon_rolls_total", "Bridge-and-roll operations completed.")
	c.ins.rollHitSecs = r.Histogram("griphon_roll_hit_seconds",
		"Traffic hit of the bridge-and-roll roll step.",
		[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1})
	c.ins.adjusts = r.Counter("griphon_adjusts_total", "In-place rate adjustments.")
	c.ins.retunes = r.Counter("griphon_defrag_retunes_total",
		"Connections retuned by spectrum defragmentation.")
	c.ins.pipeBuilds = r.Counter("griphon_pipe_builds_total",
		"Carrier wavelengths lit to create OTN overlay pipes.")
	c.ins.cuts = r.Counter("griphon_fiber_cuts_total", "Fiber cuts observed.")
	c.ins.repairs = r.Counter("griphon_fiber_repairs_total", "Fiber repairs completed.")
	c.ins.apiEncodeErrs = r.Counter("griphon_api_encode_errors_total",
		"HTTP API responses that failed to encode or write.")
	c.ins.emsRetries = r.Counter("griphon_ems_retries_total",
		"EMS steps resubmitted after a transient fault.")
	c.ins.setupRerouted = r.Counter("griphon_setup_degraded_total",
		"Setups that fell down the degradation ladder, by mode.", "mode", "reroute")
	c.ins.setupGroomed = r.Counter("griphon_setup_degraded_total",
		"Setups that fell down the degradation ladder, by mode.", "mode", "groomed")
	c.ins.bookingCloseErrs = r.Counter("griphon_booking_close_errors_total",
		"Disconnect errors hit while closing booking windows (including retried ones).")
	c.ins.journalErrs = r.Counter("griphon_journal_errors_total",
		"Journal writes that failed; the controller keeps running on memory.")
	c.ins.alarmsObserved[alarms.LOS] = r.Counter("griphon_alarms_total",
		"Element alarms entering the correlator, by type.", "type", "los")
	c.ins.alarmsObserved[alarms.LOF] = r.Counter("griphon_alarms_total",
		"Element alarms entering the correlator, by type.", "type", "lof")
	c.ins.alarmsObserved[alarms.EquipmentFail] = r.Counter("griphon_alarms_total",
		"Element alarms entering the correlator, by type.", "type", "eqpt")
	c.ins.alarmGroups[alarms.GroupFiberCut] = r.Counter("griphon_alarms_groups_total",
		"Correlated alarm groups emitted, by root-cause kind.", "kind", "fiber_cut")
	c.ins.alarmGroups[alarms.GroupEquipment] = r.Counter("griphon_alarms_groups_total",
		"Correlated alarm groups emitted, by root-cause kind.", "kind", "equipment")
	c.ins.alarmGroups[alarms.GroupService] = r.Counter("griphon_alarms_groups_total",
		"Correlated alarm groups emitted, by root-cause kind.", "kind", "service")
	c.ins.pathcacheHits = r.Counter("griphon_pathcache_lookups_total",
		"Path-cache lookups on cache-eligible route requests, by result.", "result", "hit")
	c.ins.pathcacheMisses = r.Counter("griphon_pathcache_lookups_total",
		"Path-cache lookups on cache-eligible route requests, by result.", "result", "miss")
	c.ins.pathcacheInvalidations = r.Counter("griphon_pathcache_invalidations_total",
		"Path-cache flushes triggered by link-state or topology changes.")
	c.ins.pathcacheEvictDeadLink = r.Counter("griphon_pathcache_evictions_total",
		"Single entries evicted on the lookup hit path, by reason.", "reason", "dead_link")
	c.ins.pathcacheEvictBlocked = r.Counter("griphon_pathcache_evictions_total",
		"Single entries evicted on the lookup hit path, by reason.", "reason", "wavelength_blocked")
	c.ins.prearmClaimsSession = r.Counter("griphon_prearm_claims_total",
		"Warm resources claimed by setups, by kind.", "kind", "session")
	c.ins.prearmClaimsOT = r.Counter("griphon_prearm_claims_total",
		"Warm resources claimed by setups, by kind.", "kind", "transponder")
	c.ins.prearmRearmOK = r.Counter("griphon_prearm_rearms_total",
		"Background warm-pool refills, by outcome.", "outcome", "ok")
	c.ins.prearmRearmFailed = r.Counter("griphon_prearm_rearms_total",
		"Background warm-pool refills, by outcome.", "outcome", "failed")
	if c.jrnl != nil {
		r.CounterFunc("griphon_journal_appends_total", "WAL records appended.",
			func() float64 { return float64(c.jrnl.Stats().Appends) })
		r.CounterFunc("griphon_journal_bytes_total", "WAL bytes written.",
			func() float64 { return float64(c.jrnl.Stats().Bytes) })
		r.CounterFunc("griphon_journal_fsyncs_total", "Journal fsync calls issued.",
			func() float64 { return float64(c.jrnl.Stats().Fsyncs) })
		r.CounterFunc("griphon_journal_snapshots_total", "Full state snapshots written.",
			func() float64 { return float64(c.jrnl.Stats().Snapshots) })
		r.CounterFunc("griphon_journal_replayed_total", "WAL entries replayed at the last open.",
			func() float64 { return float64(c.jrnl.Stats().Replayed) })
		r.CounterFunc("griphon_journal_torn_bytes_total", "Bytes discarded from a torn WAL tail.",
			func() float64 { return float64(c.jrnl.Stats().TornBytes) })
		r.CounterFunc("griphon_journal_group_commits_total", "Fsync batches that covered more than one append.",
			func() float64 { return float64(c.jrnl.Stats().GroupCommits) })
		r.CounterFunc("griphon_journal_rotations_total", "WAL segment rotations.",
			func() float64 { return float64(c.jrnl.Stats().Rotations) })
		r.CounterFunc("griphon_journal_compacted_total", "Snapshot-covered WAL files unlinked by the compactor.",
			func() float64 { return float64(c.jrnl.Stats().Compacted) })
		r.CounterFunc("griphon_journal_dup_seqs_total", "Duplicate WAL sequence numbers resolved last-write-wins at open.",
			func() float64 { return float64(c.jrnl.Stats().DupSeqs) })
	}

	// Live-state gauges, computed at scrape time from the resource database.
	for _, st := range []State{StatePending, StateActive, StateDown, StateRestoring} {
		st := st
		r.GaugeFunc("griphon_connections",
			"Customer connections by state.", func() float64 {
				n := 0
				for _, conn := range c.conns {
					if !conn.Internal && conn.State == st {
						n++
					}
				}
				return float64(n)
			}, "state", st.String())
	}
	r.GaugeFunc("griphon_spectrum_channels_in_use",
		"Occupied (link, wavelength) pairs across the plant.", func() float64 {
			n := 0
			for _, l := range c.g.Links() {
				n += c.plant.Spectrum(l.ID).Used()
			}
			return float64(n)
		})
	r.GaugeFunc("griphon_transponders_in_use", "Transponders allocated across all PoPs.",
		func() float64 { return float64(c.Snapshot().OTsInUse) })
	r.GaugeFunc("griphon_transponders_capacity", "Transponder pool size across all PoPs.",
		func() float64 { return float64(c.Snapshot().OTsTotal) })
	r.GaugeFunc("griphon_regens_in_use", "Regenerators allocated across all PoPs.",
		func() float64 { return float64(c.Snapshot().RegensInUse) })
	r.GaugeFunc("griphon_otn_pipes", "OTN overlay pipes in service.",
		func() float64 { return float64(len(c.fabric.Pipes())) })
	r.GaugeFunc("griphon_otn_slots_in_use", "Tributary slots reserved across all pipes.",
		func() float64 { return float64(c.Snapshot().SlotsInUse) })
	r.GaugeFunc("griphon_down_links", "Fiber links currently out of service.",
		func() float64 { return float64(len(c.plant.DownLinks())) })
	r.CounterFunc("griphon_events_total", "Audit-log entries recorded.",
		func() float64 { return float64(len(c.events)) })
	r.GaugeFunc("griphon_sim_virtual_seconds", "Virtual time since the simulation epoch.",
		func() float64 { return c.k.Now().Seconds() })
	r.CounterFunc("griphon_sim_events_total", "Discrete events executed by the kernel.",
		func() float64 { return float64(c.k.Processed()) })

	// Per-EMS instruments: the two vendor EMSes by name, the per-PoP FXC
	// controllers aggregated.
	fxcManagers := func() []*ems.Manager {
		ids := make([]string, 0, len(c.fxcEMS))
		for id := range c.fxcEMS {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		out := make([]*ems.Manager, 0, len(ids))
		for _, id := range ids {
			out = append(out, c.fxcEMS[topo.NodeID(id)])
		}
		return out
	}
	for _, grp := range []struct {
		label string
		mgrs  func() []*ems.Manager
	}{
		{"roadm", func() []*ems.Manager { return []*ems.Manager{c.roadmEMS} }},
		{"otn", func() []*ems.Manager { return []*ems.Manager{c.otnEMS} }},
		{"fxc", fxcManagers},
	} {
		grp := grp
		r.GaugeFunc("griphon_ems_queue_depth",
			"Commands waiting behind the in-flight one, by EMS.", func() float64 {
				n := 0
				for _, m := range grp.mgrs() {
					n += m.QueueLen()
				}
				return float64(n)
			}, "ems", grp.label)
		r.CounterFunc("griphon_ems_commands_total",
			"EMS configuration commands executed, by EMS.", func() float64 {
				n := uint64(0)
				for _, m := range grp.mgrs() {
					n += m.Served()
				}
				return float64(n)
			}, "ems", grp.label)
		r.CounterFunc("griphon_ems_busy_seconds_total",
			"Cumulative virtual time each EMS spent executing commands.", func() float64 {
				var d sim.Duration
				for _, m := range grp.mgrs() {
					d += m.BusyTime()
				}
				return d.Seconds()
			}, "ems", grp.label)
	}
}
