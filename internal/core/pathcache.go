package core

import (
	"griphon/internal/bw"
	"griphon/internal/optics"
	"griphon/internal/rwa"
	"griphon/internal/topo"
)

// pathKey identifies one cacheable routing question. Protection is part of
// the key because 1+1 requests route differently downstream (the protect leg
// avoids the primary), and a future policy may bias primaries of protected
// services toward shorter paths.
type pathKey struct {
	a, b    topo.NodeID
	rate    bw.Rate
	protect Protection
}

// pathEntry is a cached answer: the fiber path and its regeneration split.
// Wavelengths are NOT cached — spectrum occupancy changes with every setup
// and teardown, so channels are re-assigned fresh on every hit.
type pathEntry struct {
	path topo.Path
	plan optics.RegenPlan
}

// pathCache fronts reserveLightpath's route computation (Config.PathCache).
// Validity is belt and braces:
//   - the whole cache is flushed on every link-state change, via the plant's
//     SetOnLinkState observer (covers FailLink/RestoreLink and direct
//     SetLinkUp calls alike);
//   - the whole cache is flushed when the topology's mutation counter moves
//     (nodes or links added);
//   - every hit still verifies each link of the cached path is up before any
//     reservation happens, so even a stale entry can never reserve spectrum
//     on a failed link.
type pathCache struct {
	entries map[pathKey]pathEntry
	// version is the topo.Graph.Version the entries were computed against.
	version uint64
}

// pcacheFlush drops every cached route. Counted once per flush event, not per
// entry — the signal of interest is "how often does state churn evict". The
// flush also syncs the cache's topology version, so a flush triggered by the
// link-state observer is not re-counted by the next lookup's version check.
func (c *Controller) pcacheFlush() {
	if c.pcache == nil {
		return
	}
	c.pcache.version = c.g.Version()
	if len(c.pcache.entries) == 0 {
		return
	}
	c.pcache.entries = make(map[pathKey]pathEntry)
	c.ins.pathcacheInvalidations.Inc()
}

// pcacheLookup answers a routing question from the cache, re-assigning fresh
// wavelengths along the cached path. A miss — or a hit whose path no longer
// survives the link-state check or wavelength assignment — returns false,
// dropping the dead entry so the caller's full search repopulates it.
func (c *Controller) pcacheLookup(key pathKey) (rwa.Route, bool) {
	if c.pcache.version != c.g.Version() {
		c.pcacheFlush()
	}
	e, ok := c.pcache.entries[key]
	if !ok {
		return rwa.Route{}, false
	}
	for _, l := range e.path.Links {
		if !c.plant.LinkUp(l) {
			// Should have been flushed by the link-state observer; this
			// is the last line of defense against reserving on a dead
			// fiber. Counted apart from whole-cache invalidations — a
			// rising dead_link rate means the observer is being bypassed.
			delete(c.pcache.entries, key)
			c.ins.pathcacheEvictDeadLink.Inc()
			return rwa.Route{}, false
		}
	}
	channels := make([]optics.Channel, 0, len(e.plan.Segments))
	for _, seg := range e.plan.Segments {
		ch, err := rwa.AssignWavelength(c.plant, seg.Links, c.rwaOpt.Policy, c.rwaOpt.Rand)
		if err != nil {
			// Cached path is wavelength-blocked right now; a full search
			// may find a different path, so evict and miss.
			delete(c.pcache.entries, key)
			c.ins.pathcacheEvictBlocked.Inc()
			return rwa.Route{}, false
		}
		channels = append(channels, ch)
	}
	return rwa.Route{Path: e.path, Plan: e.plan, Channels: channels}, true
}

// pcacheStore remembers a freshly computed route for its key.
func (c *Controller) pcacheStore(key pathKey, route rwa.Route) {
	if c.pcache.version != c.g.Version() {
		c.pcacheFlush()
	}
	c.pcache.entries[key] = pathEntry{path: route.Path, plan: route.Plan}
}

// PathCacheSize returns the number of cached routes (0 when the cache is
// disabled). Exposed for tests and the experiments harness.
func (c *Controller) PathCacheSize() int {
	if c.pcache == nil {
		return 0
	}
	return len(c.pcache.entries)
}
