package core

import (
	"testing"

	"griphon/internal/bw"
	"griphon/internal/optics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func newCacheTestbed(t *testing.T, seed int64, cfg Config) (*sim.Kernel, *Controller) {
	t.Helper()
	cfg.PathCache = true
	return newChoreoTestbed(t, seed, cfg)
}

// connectAndRelease provisions a connection, waits for it, tears it down and
// drains — the repeat-customer cycle the cache accelerates.
func connectAndRelease(t *testing.T, k *sim.Kernel, c *Controller, req Request) *Connection {
	t.Helper()
	conn := mustConnect(t, k, c, req)
	if _, err := c.Disconnect(req.Customer, conn.ID); err != nil {
		t.Fatal(err)
	}
	k.Run()
	return conn
}

func TestPathCacheHitSkipsSearchAndCutsOverhead(t *testing.T) {
	k, c := newCacheTestbed(t, 1, Config{})
	first := connectAndRelease(t, k, c, oneHop)
	if got := metricValue(t, c, "griphon_pathcache_lookups_total", `result="miss"`); got != 1 {
		t.Fatalf("misses after first setup = %v, want 1", got)
	}
	if c.PathCacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1", c.PathCacheSize())
	}

	second := mustConnect(t, k, c, oneHop)
	if got := metricValue(t, c, "griphon_pathcache_lookups_total", `result="hit"`); got != 1 {
		t.Errorf("hits after second setup = %v, want 1", got)
	}
	if second.Route().String() != "I-IV" {
		t.Errorf("cached route = %s, want the original direct I-IV", second.Route())
	}
	// A hit pays the reduced cached controller overhead instead of the full
	// path-computation overhead.
	lat := c.Latencies()
	want := first.SetupTime() - lat.ControllerOverhead + lat.ControllerOverheadCached
	if second.SetupTime() != want {
		t.Errorf("cache-hit setup = %v, want %v", second.SetupTime(), want)
	}
	auditClean(t, c)
}

func TestPathCacheInvalidatedOnCutAndRepair(t *testing.T) {
	k, c := newCacheTestbed(t, 1, Config{})
	connectAndRelease(t, k, c, oneHop)
	if c.PathCacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1", c.PathCacheSize())
	}

	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if c.PathCacheSize() != 0 {
		t.Errorf("cache size after cut = %d, want 0 (flushed)", c.PathCacheSize())
	}
	if got := metricValue(t, c, "griphon_pathcache_invalidations_total", ""); got != 1 {
		t.Errorf("invalidations = %v, want 1", got)
	}

	// While the direct fiber is down, the same request routes around it and
	// caches the detour.
	detour := connectAndRelease(t, k, c, oneHop)
	if r := detour.Route().String(); r == "I-IV" {
		t.Fatalf("route = %s uses the cut fiber", r)
	}
	if c.PathCacheSize() != 1 {
		t.Fatalf("cache size after detour = %d, want 1", c.PathCacheSize())
	}

	// Repair flushes again: the cached detour is stale once the short path
	// is back.
	if err := c.RepairFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if c.PathCacheSize() != 0 {
		t.Errorf("cache size after repair = %d, want 0 (restores invalidate too)", c.PathCacheSize())
	}
	back := mustConnect(t, k, c, oneHop)
	if back.Route().String() != "I-IV" {
		t.Errorf("route after repair = %s, want the direct I-IV", back.Route())
	}
	auditClean(t, c)
}

func TestPathCacheInvalidatedOnTopologyMutation(t *testing.T) {
	k, c := newCacheTestbed(t, 1, Config{})
	connectAndRelease(t, k, c, oneHop)
	if c.PathCacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1", c.PathCacheSize())
	}

	// Growing the fiber plant bumps the topology version; the next lookup
	// must flush and recompute rather than serve a pre-mutation route.
	if err := c.Graph().AddNode(topo.Node{ID: "V"}); err != nil {
		t.Fatal(err)
	}
	mustConnect(t, k, c, oneHop)
	if got := metricValue(t, c, "griphon_pathcache_lookups_total", `result="hit"`); got != 0 {
		t.Errorf("hits after topology mutation = %v, want 0", got)
	}
	if got := metricValue(t, c, "griphon_pathcache_lookups_total", `result="miss"`); got != 2 {
		t.Errorf("misses = %v, want 2 (both setups searched)", got)
	}
}

// TestPathCacheStaleHitNeverReservesOnFailedLink is the belt-and-braces
// case: even if an entry somehow survives past a link failure (here it is
// force-fed back into the cache after the flush), the per-link liveness
// check on the hit path must reject it before any spectrum is reserved.
func TestPathCacheStaleHitNeverReservesOnFailedLink(t *testing.T) {
	k, c := newCacheTestbed(t, 1, Config{})
	connectAndRelease(t, k, c, oneHop)
	key := pathKey{a: "I", b: "IV", rate: bw.Rate10G, protect: Restore}
	stale, ok := c.pcache.entries[key]
	if !ok {
		t.Fatal("expected a cached entry for I->IV")
	}

	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	// Simulate a missed invalidation: resurrect the stale entry pointing
	// over the dead fiber.
	c.pcache.entries[key] = stale
	c.pcache.version = c.Graph().Version()

	conn := mustConnect(t, k, c, oneHop)
	if r := conn.Route().String(); r == "I-IV" {
		t.Fatalf("stale cache hit reserved on the failed link (route %s)", r)
	}
	for _, l := range []topo.LinkID{"I-IV"} {
		if used := c.Plant().Spectrum(l).Used(); used != 0 {
			t.Errorf("spectrum on failed link %s: %d channels in use, want 0", l, used)
		}
	}
	// The dead entry was evicted on the failed hit — and that eviction is
	// visible on its own counter, not silently folded into flushes.
	if got := metricValue(t, c, "griphon_pathcache_lookups_total", `result="hit"`); got != 0 {
		t.Errorf("hits = %v, want 0 (stale entry must not count as a hit)", got)
	}
	if got := metricValue(t, c, "griphon_pathcache_evictions_total", `reason="dead_link"`); got != 1 {
		t.Errorf("dead_link evictions = %v, want 1", got)
	}
	auditClean(t, c)
}

// TestPathCacheEvictsWavelengthBlockedEntry: a cached path whose spectrum is
// exhausted right now is evicted on the hit path and counted under its own
// reason, while the full search routes around it.
func TestPathCacheEvictsWavelengthBlockedEntry(t *testing.T) {
	opt := optics.DefaultConfig()
	opt.Channels = 1
	k, c := newCacheTestbed(t, 1, Config{Optics: opt})

	// First setup stays up, pinning the single channel on the cached path.
	first := mustConnect(t, k, c, oneHop)
	if first.Route().String() != "I-IV" {
		t.Fatalf("first route = %s, want the direct I-IV", first.Route())
	}
	// Second identical request hits the cache, finds the path wavelength-
	// blocked, evicts the entry and succeeds via the full search's detour.
	second := mustConnect(t, k, c, oneHop)
	if r := second.Route().String(); r == "I-IV" {
		t.Fatalf("second route = %s reuses the exhausted fiber", r)
	}
	if got := metricValue(t, c, "griphon_pathcache_evictions_total", `reason="wavelength_blocked"`); got != 1 {
		t.Errorf("wavelength_blocked evictions = %v, want 1", got)
	}
	if got := metricValue(t, c, "griphon_pathcache_lookups_total", `result="hit"`); got != 0 {
		t.Errorf("hits = %v, want 0 (blocked entry must not count as a hit)", got)
	}
	auditClean(t, c)
}

// TestPathCacheObserverFlushSyncsVersion pins the flush/version alignment:
// a flush triggered by the link-state observer must leave the cache's
// topology version current, so the next lookup does not flush — and wipe a
// freshly repopulated cache — a second time.
func TestPathCacheObserverFlushSyncsVersion(t *testing.T) {
	k, c := newCacheTestbed(t, 1, Config{})
	connectAndRelease(t, k, c, oneHop)
	key := pathKey{a: "I", b: "IV", rate: bw.Rate10G, protect: Restore}
	entry, ok := c.pcache.entries[key]
	if !ok {
		t.Fatal("expected a cached entry for I->IV")
	}

	// Bump the topology version without a lookup in between...
	if err := c.Graph().AddNode(topo.Node{ID: "V"}); err != nil {
		t.Fatal(err)
	}
	// ...then let the link-state observer trigger the flush.
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if err := c.RepairFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if c.pcache.version != c.Graph().Version() {
		t.Fatalf("observer flush left cache at version %d, graph at %d",
			c.pcache.version, c.Graph().Version())
	}

	// Work repopulating the cache between the flush and the next lookup
	// must survive that lookup.
	c.pcache.entries[key] = entry
	conn := mustConnect(t, k, c, oneHop)
	if conn.Route().String() != "I-IV" {
		t.Errorf("route = %s, want the cached direct I-IV", conn.Route())
	}
	if got := metricValue(t, c, "griphon_pathcache_lookups_total", `result="hit"`); got != 1 {
		t.Errorf("hits = %v, want 1 (repopulated entry served)", got)
	}
	if got := metricValue(t, c, "griphon_pathcache_invalidations_total", ""); got != 1 {
		t.Errorf("invalidations = %v, want 1 (the observer flush only)", got)
	}
}

// TestPathCacheKeyedByProtection: a 1+1 request and a restorable request
// between the same PoPs are distinct cache lines.
func TestPathCacheKeyedByProtection(t *testing.T) {
	k, c := newCacheTestbed(t, 1, Config{})
	connectAndRelease(t, k, c, oneHop)
	prot := oneHop
	prot.Protect = OnePlusOne
	connectAndRelease(t, k, c, prot)
	// The 1+1 primary is cache-eligible (protect leg is not: it carries an
	// avoid set), so two entries coexist.
	if c.PathCacheSize() != 2 {
		t.Errorf("cache size = %d, want 2 (keyed by protection)", c.PathCacheSize())
	}
	auditClean(t, c)
}
