package core

// Durable state: the serialized form of the controller's resource & inventory
// database (paper §2.2, Fig. 3) and the journal plumbing that keeps it on
// disk. Every committed mutation appends one commit record to the WAL at the
// end of the kernel event that performed it; a full snapshot is written every
// Config.SnapshotEvery appends. Rehydrate (rehydrate.go) folds snapshot+WAL
// back into a live controller.
//
// What is durable is exactly the *committed* state: resources held by an
// in-flight choreography (a Pending setup, a Restoring re-provision, a
// bridge-and-roll bridge) are not recorded until the choreography resolves,
// so recovery rolls half-done operations back by construction — the torn-tail
// guarantee of the WAL extended up into the controller's transaction
// boundaries. Billing meters and outage clocks mutate outside commit points
// (mid-roll traffic hits, adjustment freezes) and are deliberately excluded;
// recovery restarts them fresh, trading exact usage continuity for a state
// representation that is byte-comparable against a live shadow.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"griphon/internal/journal"
	"griphon/internal/obs"
	"griphon/internal/otn"
	"griphon/internal/rwa"
)

// recKindCommit is the WAL record kind for commit records.
const recKindCommit = "commit"

// quotaRec serializes one customer quota.
type quotaRec struct {
	Customer       string `json:"customer"`
	MaxConnections int    `json:"max_connections,omitempty"`
	MaxBandwidth   int64  `json:"max_bandwidth,omitempty"`
}

// lightpathRec serializes one provisioned wavelength path. Segment node
// sequences are not stored: they are a pure function of Route.Path and
// Route.Plan (segmentNodes), recomputed on rehydrate.
type lightpathRec struct {
	Route     rwa.Route `json:"route"`
	OTs       [2]string `json:"ots"`
	Regens    []string  `json:"regens,omitempty"`
	PortsA    [2]string `json:"ports_a"`
	PortsB    [2]string `json:"ports_b"`
	SegOwners []string  `json:"seg_owners,omitempty"`
}

// connRec serializes one connection at its last stable state.
type connRec struct {
	ID           string        `json:"id"`
	Customer     string        `json:"customer"`
	From         string        `json:"from,omitempty"`
	To           string        `json:"to,omitempty"`
	Rate         int64         `json:"rate"`
	Layer        int           `json:"layer"`
	Protect      int           `json:"protect"`
	State        int           `json:"state"`
	Internal     bool          `json:"internal,omitempty"`
	Degraded     bool          `json:"degraded,omitempty"`
	Carries      string        `json:"carries,omitempty"`
	OnProtect    bool          `json:"on_protect,omitempty"`
	Path         *lightpathRec `json:"path,omitempty"`
	ProtectPath  *lightpathRec `json:"protect_path,omitempty"`
	Pipes        []string      `json:"pipes,omitempty"`
	Slots        int           `json:"slots,omitempty"`
	Backup       []string      `json:"backup,omitempty"`
	RequestedAt  int64         `json:"requested_at"`
	ActiveAt     int64         `json:"active_at,omitempty"`
	ReleasedAt   int64         `json:"released_at,omitempty"`
	Restorations int           `json:"restorations,omitempty"`
	Rolls        int           `json:"rolls,omitempty"`
}

// pipeRec serializes one OTN pipe. Slot occupancy is deliberately NOT stored:
// the pipe's live slot book can hold reservations made by a still-Pending
// setup (connectCircuit reserves slots before the EMS choreography runs), and
// those must evaporate on recovery exactly like every other uncommitted
// resource. Rehydrate re-reserves slots from the committed connection records,
// which are the authoritative ownership statement.
type pipeRec struct {
	ID string `json:"id"`
	A  string `json:"a"`
	B  string `json:"b"`
	// Level is the ODU level as an int.
	Level   int    `json:"level"`
	Up      bool   `json:"up"`
	Carrier string `json:"carrier,omitempty"`
}

// Booking phases, recorded in bookingRec.Phase.
const (
	bookingPending = iota // scheduled, window not yet open (or setup running)
	bookingOpen           // components active, close timer armed
	bookingClosed         // window closed, components released
	bookingFailed         // setup failed, window abandoned
)

// bookingRec serializes one calendar booking.
type bookingRec struct {
	ID       int      `json:"id"`
	Customer string   `json:"customer"`
	From     string   `json:"from"`
	To       string   `json:"to"`
	Rate     int64    `json:"rate"`
	Protect  int      `json:"protect"`
	At       int64    `json:"at"`
	Hold     int64    `json:"hold"`
	CloseAt  int64    `json:"close_at,omitempty"`
	Conns    []string `json:"conns,omitempty"`
	Phase    int      `json:"phase"`
	SetupErr string   `json:"setup_err,omitempty"`
	CloseErr string   `json:"close_err,omitempty"`
}

// stateRec is the canonical full-state serialization: every slice sorted by
// ID, every map flattened, so equal states marshal to equal bytes.
type stateRec struct {
	Now         int64        `json:"now"`
	NextConn    int          `json:"next_conn"`
	LpSeq       int          `json:"lp_seq"`
	NextBooking int          `json:"next_booking"`
	NextPipe    int          `json:"next_pipe"`
	Quotas      []quotaRec   `json:"quotas,omitempty"`
	DownLinks   []string     `json:"down_links,omitempty"`
	Conns       []connRec    `json:"conns,omitempty"`
	Pipes       []pipeRec    `json:"pipes,omitempty"`
	Bookings    []bookingRec `json:"bookings,omitempty"`
}

// commitRec is one WAL record: the entities a commit point touched, plus the
// monotonic counters. DownLinks and Quotas are pointer-slices: nil means
// unchanged, non-nil is the authoritative full set.
type commitRec struct {
	Reason      string       `json:"reason"`
	Now         int64        `json:"now"`
	NextConn    int          `json:"next_conn"`
	LpSeq       int          `json:"lp_seq"`
	NextBooking int          `json:"next_booking"`
	NextPipe    int          `json:"next_pipe"`
	Conns       []connRec    `json:"conns,omitempty"`
	Pipes       []pipeRec    `json:"pipes,omitempty"`
	DelPipes    []string     `json:"del_pipes,omitempty"`
	Bookings    []bookingRec `json:"bookings,omitempty"`
	DownLinks   *[]string    `json:"down_links,omitempty"`
	Quotas      *[]quotaRec  `json:"quotas,omitempty"`
}

// connRecOf captures a connection's last stable state. Pending connections
// are skipped entirely: their resources belong to an uncommitted setup and
// must evaporate on recovery. Mid-operation states map back to the last
// stable one (TearingDown still holds its resources; Restoring is recorded
// Down on its old path, the replacement being uncommitted).
func (c *Controller) connRecOf(conn *Connection) (connRec, bool) {
	st := conn.State
	switch st {
	case StatePending:
		return connRec{}, false
	case StateTearingDown, StateRestoring:
		st = conn.stable
	}
	r := connRec{
		ID:           string(conn.ID),
		Customer:     string(conn.Customer),
		From:         string(conn.From),
		To:           string(conn.To),
		Rate:         int64(conn.Rate),
		Layer:        int(conn.Layer),
		Protect:      int(conn.Protect),
		State:        int(st),
		Internal:     conn.Internal,
		Degraded:     conn.Degraded,
		Carries:      string(conn.carries),
		RequestedAt:  int64(conn.RequestedAt),
		ActiveAt:     int64(conn.ActiveAt),
		ReleasedAt:   int64(conn.ReleasedAt),
		Restorations: conn.Restorations,
		Rolls:        conn.Rolls,
	}
	if st != StateReleased {
		r.OnProtect = conn.onProtect
		r.Path = lpRecOf(conn.path)
		r.ProtectPath = lpRecOf(conn.protect)
		for _, p := range conn.pipes {
			r.Pipes = append(r.Pipes, string(p.ID()))
		}
		r.Slots = conn.slots
		for _, p := range conn.backup {
			r.Backup = append(r.Backup, string(p.ID()))
		}
	}
	return r, true
}

func lpRecOf(lp *lightpath) *lightpathRec {
	if lp == nil {
		return nil
	}
	r := &lightpathRec{Route: lp.route}
	for i, ot := range lp.ots {
		if ot != nil {
			r.OTs[i] = ot.ID
		}
	}
	for _, rg := range lp.regens {
		r.Regens = append(r.Regens, rg.ID)
	}
	for i := range lp.portsA {
		r.PortsA[i] = string(lp.portsA[i])
	}
	for i := range lp.portsB {
		r.PortsB[i] = string(lp.portsB[i])
	}
	r.SegOwners = append([]string(nil), lp.segOwners...)
	return r
}

func (c *Controller) pipeRecOf(p *otn.Pipe) pipeRec {
	a, b := p.Ends()
	return pipeRec{
		ID:      string(p.ID()),
		A:       string(a),
		B:       string(b),
		Level:   int(p.Level()),
		Up:      p.Up(),
		Carrier: string(c.pipeCarrier[p.ID()]),
	}
}

func bookingRecOf(b *Booking) bookingRec {
	r := bookingRec{
		ID:       b.ID,
		Customer: string(b.Req.Customer),
		From:     string(b.Req.From),
		To:       string(b.Req.To),
		Rate:     int64(b.Req.Rate),
		Protect:  int(b.Req.Protect),
		At:       int64(b.At),
		Hold:     int64(b.Hold),
		CloseAt:  int64(b.closeAt),
		Phase:    b.phase,
	}
	// Components are durable only once the window's outcome commits: while
	// the booking is pending its setups are in flight and uncommitted, so a
	// recovered pending booking re-provisions from scratch instead of
	// pointing at connections the journal never recorded.
	if b.phase != bookingPending {
		for _, conn := range b.Conns {
			r.Conns = append(r.Conns, string(conn.ID))
		}
	}
	if b.SetupErr != nil {
		r.SetupErr = b.SetupErr.Error()
	}
	if b.CloseErr != nil {
		r.CloseErr = b.CloseErr.Error()
	}
	return r
}

func (c *Controller) quotaRecs() []quotaRec {
	var out []quotaRec
	for _, cust := range c.ledger.Customers() {
		q := c.ledger.QuotaOf(cust)
		if q.MaxConnections == 0 && q.MaxBandwidth == 0 {
			continue
		}
		out = append(out, quotaRec{
			Customer:       string(cust),
			MaxConnections: q.MaxConnections,
			MaxBandwidth:   int64(q.MaxBandwidth),
		})
	}
	return out
}

func (c *Controller) downLinkRecs() []string {
	// Non-nil even when empty: commitRec carries this behind a pointer, and a
	// pointer to a nil slice marshals as JSON null, which unmarshals back to a
	// nil pointer — the fold would read "unchanged" where the truth is "all
	// links repaired".
	out := []string{}
	for _, l := range c.plant.DownLinks() {
		out = append(out, string(l))
	}
	return out
}

func (c *Controller) sortedBookings() []*Booking {
	ids := make([]int, 0, len(c.bookings))
	for id := range c.bookings {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*Booking, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.bookings[id])
	}
	return out
}

// captureState serializes the whole committed state.
func (c *Controller) captureState() stateRec {
	st := stateRec{
		Now:         int64(c.k.Now()),
		NextConn:    c.nextConn,
		LpSeq:       c.lpSeq,
		NextBooking: c.nextBooking,
		NextPipe:    c.fabric.NextID(),
		Quotas:      c.quotaRecs(),
		DownLinks:   c.downLinkRecs(),
	}
	for _, conn := range c.Connections() {
		if r, ok := c.connRecOf(conn); ok {
			st.Conns = append(st.Conns, r)
		}
	}
	for _, p := range c.fabric.Pipes() {
		st.Pipes = append(st.Pipes, c.pipeRecOf(p))
	}
	for _, b := range c.sortedBookings() {
		st.Bookings = append(st.Bookings, bookingRecOf(b))
	}
	return st
}

// DurableState returns the canonical serialization of the committed state
// with the clock zeroed — the byte-comparable form the crash-injection
// harness diffs between a recovered controller and its live shadow.
func (c *Controller) DurableState() ([]byte, error) {
	st := c.captureState()
	st.Now = 0
	return json.Marshal(&st)
}

// foldState folds a snapshot and subsequent WAL entries into one stateRec:
// entity records upsert by ID, DelPipes remove, pointer fields replace whole
// sets, counters last-write-wins.
func foldState(snapshot []byte, entries []journal.Entry) (stateRec, error) {
	var st stateRec
	if snapshot != nil {
		if err := json.Unmarshal(snapshot, &st); err != nil {
			return st, fmt.Errorf("core: corrupt state snapshot: %w", err)
		}
	}
	conns := map[string]connRec{}
	for _, r := range st.Conns {
		conns[r.ID] = r
	}
	pipes := map[string]pipeRec{}
	for _, r := range st.Pipes {
		pipes[r.ID] = r
	}
	books := map[int]bookingRec{}
	for _, r := range st.Bookings {
		books[r.ID] = r
	}
	for _, e := range entries {
		if e.Kind != recKindCommit {
			return st, fmt.Errorf("core: unknown journal record kind %q at seq %d", e.Kind, e.Seq)
		}
		var rec commitRec
		if err := json.Unmarshal(e.Data, &rec); err != nil {
			return st, fmt.Errorf("core: corrupt commit record at seq %d: %w", e.Seq, err)
		}
		st.Now = rec.Now
		st.NextConn = rec.NextConn
		st.LpSeq = rec.LpSeq
		st.NextBooking = rec.NextBooking
		st.NextPipe = rec.NextPipe
		for _, r := range rec.Conns {
			conns[r.ID] = r
		}
		for _, r := range rec.Pipes {
			pipes[r.ID] = r
		}
		for _, id := range rec.DelPipes {
			delete(pipes, id)
		}
		for _, r := range rec.Bookings {
			books[r.ID] = r
		}
		if rec.DownLinks != nil {
			st.DownLinks = *rec.DownLinks
		}
		if rec.Quotas != nil {
			st.Quotas = *rec.Quotas
		}
	}
	st.Conns = nil
	for _, id := range sortedKeys(conns) {
		st.Conns = append(st.Conns, conns[id])
	}
	st.Pipes = nil
	for _, id := range sortedKeys(pipes) {
		st.Pipes = append(st.Pipes, pipes[id])
	}
	st.Bookings = nil
	bids := make([]int, 0, len(books))
	for id := range books {
		bids = append(bids, id)
	}
	sort.Ints(bids)
	for _, id := range bids {
		st.Bookings = append(st.Bookings, books[id])
	}
	return st, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ReplayDurable folds a recovered snapshot+WAL and returns the canonical
// clock-zeroed serialization, without building a controller — the pure-replay
// reference the crash harness compares both the shadow and the rehydrated
// controller against.
func ReplayDurable(snapshot []byte, entries []journal.Entry) ([]byte, error) {
	st, err := foldState(snapshot, entries)
	if err != nil {
		return nil, err
	}
	st.Now = 0
	return json.Marshal(&st)
}

// commitSet names the entities one commit point touched.
type commitSet struct {
	reason   string
	conns    []*Connection
	pipes    []*otn.Pipe
	delPipes []otn.PipeID
	bookings []*Booking
	links    bool // record the authoritative down-link set
	quotas   bool // record the authoritative quota set
}

// journalCommit appends one commit record for cs and snapshots on cadence.
// With no journal configured it is a no-op (except for feeding the flight
// recorder, which tails commit records whether or not they hit disk).
// Journal write failures are surfaced as a counter and an audit-log event,
// never a crash: the network keeps running on the in-memory database, as the
// paper's controller would.
func (c *Controller) journalCommit(cs commitSet) {
	if c.jrnl == nil && c.flight == nil {
		return
	}
	rec := commitRec{
		Reason:      cs.reason,
		Now:         int64(c.k.Now()),
		NextConn:    c.nextConn,
		LpSeq:       c.lpSeq,
		NextBooking: c.nextBooking,
		NextPipe:    c.fabric.NextID(),
	}
	seenConn := map[ConnID]bool{}
	for _, conn := range cs.conns {
		if conn == nil || seenConn[conn.ID] {
			continue
		}
		seenConn[conn.ID] = true
		if r, ok := c.connRecOf(conn); ok {
			rec.Conns = append(rec.Conns, r)
		}
	}
	sort.Slice(rec.Conns, func(i, j int) bool { return rec.Conns[i].ID < rec.Conns[j].ID })
	seenPipe := map[otn.PipeID]bool{}
	for _, p := range cs.pipes {
		if p == nil || seenPipe[p.ID()] {
			continue
		}
		seenPipe[p.ID()] = true
		if c.fabric.Pipe(p.ID()) == nil {
			// Retired since the caller captured it.
			rec.DelPipes = append(rec.DelPipes, string(p.ID()))
			continue
		}
		rec.Pipes = append(rec.Pipes, c.pipeRecOf(p))
	}
	sort.Slice(rec.Pipes, func(i, j int) bool { return rec.Pipes[i].ID < rec.Pipes[j].ID })
	for _, id := range cs.delPipes {
		if !seenPipe[id] {
			seenPipe[id] = true
			rec.DelPipes = append(rec.DelPipes, string(id))
		}
	}
	sort.Strings(rec.DelPipes)
	for _, b := range cs.bookings {
		rec.Bookings = append(rec.Bookings, bookingRecOf(b))
	}
	sort.Slice(rec.Bookings, func(i, j int) bool { return rec.Bookings[i].ID < rec.Bookings[j].ID })
	if cs.links {
		dl := c.downLinkRecs()
		rec.DownLinks = &dl
	}
	if cs.quotas {
		q := c.quotaRecs()
		rec.Quotas = &q
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		c.ins.journalErrs.Inc()
		c.log("", "journal-error", "encoding %s commit: %v", cs.reason, err)
		return
	}
	if c.flight != nil {
		c.flight.Commit(c.k.Now(), cs.reason, data)
	}
	if c.jrnl == nil {
		return
	}
	if _, err := c.jrnl.Append(recKindCommit, data); err != nil {
		c.ins.journalErrs.Inc()
		c.log("", "journal-error", "appending %s commit: %v", cs.reason, err)
		return
	}
	if c.snapshotEvery > 0 && c.jrnl.AppendsSinceSnapshot() >= c.snapshotEvery {
		c.snapshotNow()
	}
}

// snapshotNow streams a full state snapshot, record by record, after which
// the journal rotates the WAL and compacts the covered segments. Streaming
// keeps the snapshot's memory cost at one entity record, not one full copy of
// the serialized database.
func (c *Controller) snapshotNow() {
	if c.jrnl == nil {
		return
	}
	sp := c.tr.Start(obs.SpanRef{}, "journal:snapshot")
	st := c.captureState()
	w, err := c.jrnl.BeginSnapshot()
	if err == nil {
		if serr := streamState(w, &st); serr != nil {
			w.Abort()
			err = serr
		} else {
			err = w.Commit()
		}
	}
	sp.EndErr(err)
	if err != nil {
		c.ins.journalErrs.Inc()
		c.log("", "journal-error", "snapshot: %v", err)
	}
}

// streamState writes st's canonical serialization to w one record at a time,
// byte-identical to json.Marshal(&st): the scalar header first, then each
// entity array element-by-element in struct field order.
func streamState(w io.Writer, st *stateRec) error {
	hdr := *st
	hdr.Quotas, hdr.DownLinks, hdr.Conns, hdr.Pipes, hdr.Bookings = nil, nil, nil, nil, nil
	b, err := json.Marshal(&hdr)
	if err != nil {
		return err
	}
	// Hold the closing brace: the arrays splice in before it.
	if _, err := w.Write(b[:len(b)-1]); err != nil {
		return err
	}
	if err := streamField(w, "quotas", len(st.Quotas), func(i int) any { return &st.Quotas[i] }); err != nil {
		return err
	}
	if err := streamField(w, "down_links", len(st.DownLinks), func(i int) any { return &st.DownLinks[i] }); err != nil {
		return err
	}
	if err := streamField(w, "conns", len(st.Conns), func(i int) any { return &st.Conns[i] }); err != nil {
		return err
	}
	if err := streamField(w, "pipes", len(st.Pipes), func(i int) any { return &st.Pipes[i] }); err != nil {
		return err
	}
	if err := streamField(w, "bookings", len(st.Bookings), func(i int) any { return &st.Bookings[i] }); err != nil {
		return err
	}
	_, err = w.Write([]byte{'}'})
	return err
}

// streamField writes one omitempty JSON array field, one element per marshal.
func streamField(w io.Writer, name string, n int, elem func(int) any) error {
	if n == 0 {
		return nil
	}
	if _, err := io.WriteString(w, `,"`+name+`":[`); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			if _, err := w.Write([]byte{','}); err != nil {
				return err
			}
		}
		b, err := json.Marshal(elem(i))
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]")
	return err
}
