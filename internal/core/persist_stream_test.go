package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"griphon/internal/journal"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// TestStreamStateMatchesMarshal pins the streamed snapshot encoder to the
// canonical one-shot marshal: same state, byte-identical serialization. The
// replay and crash-harness comparisons all assume this equivalence.
func TestStreamStateMatchesMarshal(t *testing.T) {
	k := sim.NewKernel(21)
	store := openJournal(t, t.TempDir())
	defer store.Close()
	c, err := New(k, topo.Testbed(), Config{AutoRepair: true, Journal: store})
	if err != nil {
		t.Fatal(err)
	}
	runJournaledOps(t, k, c, 80)
	k.Run()

	st := c.captureState()
	want, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := streamState(&got, &st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Fatalf("streamed state differs from marshal:\nmarshal: %s\nstream:  %s", want, got.Bytes())
	}

	// The empty state must stream identically too (all arrays omitted).
	empty := stateRec{}
	want2, _ := json.Marshal(&empty)
	var got2 bytes.Buffer
	if err := streamState(&got2, &empty); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want2, got2.Bytes()) {
		t.Fatalf("empty state streams as %s, want %s", got2.Bytes(), want2)
	}
}

// TestLegacyJSONDirUpgradesInPlace is the cross-era compatibility contract: a
// state directory written entirely in the legacy JSON encoding (snapshot and
// WAL records) keeps accepting binary appends after an upgrade, and the
// resulting mixed-format directory rehydrates byte-equal to the live state.
func TestLegacyJSONDirUpgradesInPlace(t *testing.T) {
	dir := t.TempDir()
	legacyStore, err := journal.Open(dir, journal.Options{LegacyJSON: true})
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(31)
	c, err := New(k, topo.Testbed(), Config{AutoRepair: true, Journal: legacyStore, SnapshotEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	runJournaledOps(t, k, c, 60)
	k.Run()
	if legacyStore.Stats().Snapshots == 0 {
		t.Fatal("workload too small: no legacy snapshot written")
	}
	legacyFrozen, err := c.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	if err := legacyStore.Close(); err != nil {
		t.Fatal(err)
	}

	// Upgrade: same directory, binary format. Snapshotting is disabled so the
	// legacy JSON snapshot stays on disk and the new records land as binary
	// WAL frames behind it — the mixed-format directory of interest.
	binStore, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k2 := sim.NewKernel(32)
	c2, err := Rehydrate(k2, topo.Testbed(), Config{AutoRepair: true, Journal: binStore, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyFrozen, got) {
		t.Fatalf("legacy JSON dir rehydrated differently:\nlive:      %s\nrecovered: %s", legacyFrozen, got)
	}
	runJournaledOps(t, k2, c2, 40)
	k2.Run()
	checkInvariants(t, c2, -1)
	want, err := c2.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	if err := binStore.Close(); err != nil {
		t.Fatal(err)
	}

	// Third era: recover the mixed directory.
	store3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	replayed, err := ReplayDurable(store3.Recovered())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, replayed) {
		t.Fatalf("mixed-format replay diverges:\nlive:   %s\nreplay: %s", want, replayed)
	}
	k3 := sim.NewKernel(33)
	c3, err := Rehydrate(k3, topo.Testbed(), Config{AutoRepair: true, Journal: store3})
	if err != nil {
		t.Fatal(err)
	}
	got3, err := c3.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got3) {
		t.Fatalf("mixed-format dir rehydrated differently:\nlive:      %s\nrecovered: %s", want, got3)
	}
	checkInvariants(t, c3, -2)
}
