package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/inventory"
	"griphon/internal/journal"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// openJournal opens a journal store in a fresh temp dir (or an existing one).
func openJournal(t *testing.T, dir string) *journal.Store {
	t.Helper()
	store, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// runJournaledOps drives a mixed random workload — connects (both layers, all
// protection schemes), disconnects, adjusts, cuts, rolls, housekeeping,
// bookings, quota changes — against a journaled controller.
func runJournaledOps(t *testing.T, k *sim.Kernel, c *Controller, steps int) {
	t.Helper()
	rng := k.Rand()
	sites := []topo.SiteID{"DC-A", "DC-B", "DC-C"}
	rates := []bw.Rate{bw.Rate1G, bw.Rate2G5, bw.Rate10G}
	protects := []Protection{Restore, Unprotected, OnePlusOne, Restore}
	var live []*Connection

	for step := 0; step < steps; step++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			if a == b {
				break
			}
			rate := rates[rng.Intn(len(rates))]
			p := protects[rng.Intn(len(protects))]
			if layerFor(rate) == LayerOTN && p == OnePlusOne {
				p = Restore
			}
			conn, _, err := c.Connect(Request{Customer: "fuzz", From: a, To: b, Rate: rate, Protect: p})
			if err == nil {
				live = append(live, conn)
			}
		case 3, 4:
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			conn := live[i]
			if conn.State == StateActive || conn.State == StateDown {
				c.Disconnect("fuzz", conn.ID) //lint:allow errcheck may race with teardown
			}
			live = append(live[:i], live[i+1:]...)
		case 5:
			for _, conn := range live {
				if conn.Layer == LayerOTN && conn.State == StateActive {
					c.AdjustRate("fuzz", conn.ID, rates[rng.Intn(2)]) //lint:allow errcheck may be blocked
					break
				}
			}
		case 6:
			links := c.Graph().Links()
			l := links[rng.Intn(len(links))]
			if c.Plant().LinkUp(l.ID) {
				c.CutFiber(l.ID) //lint:allow errcheck verified up
			}
		case 7:
			for _, conn := range live {
				if conn.Layer == LayerDWDM && conn.State == StateActive && conn.Protect != OnePlusOne {
					if rng.Intn(2) == 0 {
						c.BridgeAndRoll("fuzz", conn.ID, nil) //lint:allow errcheck may lack disjoint path
					} else {
						c.Regroom("fuzz", conn.ID) //lint:allow errcheck may be optimal already
					}
					break
				}
			}
		case 8:
			if rng.Intn(2) == 0 {
				c.DefragmentSpectrum()
			} else {
				c.ReclaimIdlePipes()
			}
		case 9:
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			if a == b {
				break
			}
			at := c.Kernel().Now().Add(time.Duration(rng.Intn(60)) * time.Minute)
			hold := time.Duration(1+rng.Intn(120)) * time.Minute
			rate := rates[rng.Intn(len(rates))]
			if rng.Intn(4) == 0 {
				rate = bw.GbpsOf(12) // composite: 10G wavelength + 2x1G circuits
			}
			c.ScheduleConnect(Request{Customer: "fuzz", From: a, To: b, Rate: rate}, at, hold) //lint:allow errcheck may be blocked
		case 10:
			c.SetQuota("fuzz", inventory.Quota{MaxBandwidth: bw.GbpsOf(float64(100 + rng.Intn(400)))})
		case 11:
			k.RunFor(time.Duration(rng.Intn(120)) * time.Minute)
		}
		checkInvariants(t, c, step)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestJournalRoundTrip drives the random workload against a journaled
// controller, then rebuilds a second controller from the journal alone and
// requires the recovered state to be byte-identical to the live one — the
// durability tentpole's core contract.
func TestJournalRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			store := openJournal(t, dir)
			k := sim.NewKernel(seed)
			c, err := New(k, topo.Testbed(), Config{AutoRepair: true, Journal: store, SnapshotEvery: 16})
			if err != nil {
				t.Fatal(err)
			}
			runJournaledOps(t, k, c, 120)
			k.Run() // drain: teardowns, repairs, booking windows
			checkInvariants(t, c, -1)

			want, err := c.DurableState()
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover in a brand new process-worth of state.
			store2 := openJournal(t, dir)
			defer store2.Close()

			// The pure fold of snapshot+WAL must already match the live state.
			replayed, err := ReplayDurable(store2.Recovered())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, replayed) {
				t.Errorf("pure replay diverges from live state:\nlive:   %s\nreplay: %s", want, replayed)
			}

			k2 := sim.NewKernel(seed + 9999)
			c2, err := Rehydrate(k2, topo.Testbed(), Config{AutoRepair: true, Journal: store2, SnapshotEvery: 16})
			if err != nil {
				t.Fatal(err)
			}
			got, err := c2.DurableState()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Errorf("recovered state diverges:\nlive:      %s\nrecovered: %s", want, got)
			}
			if k2.Now() != k.Now() {
				t.Errorf("recovered clock = %v, want %v", k2.Now(), k.Now())
			}
			checkInvariants(t, c2, -2)
		})
	}
}

// TestDurableStateByteStable pins satellite determinism: the serialization is
// a pure function of the state — repeated calls and same-seed re-runs yield
// identical bytes (no map-iteration order leaks).
func TestDurableStateByteStable(t *testing.T) {
	build := func() []byte {
		k := sim.NewKernel(42)
		store := openJournal(t, t.TempDir())
		defer store.Close()
		c, err := New(k, topo.Testbed(), Config{AutoRepair: true, Journal: store})
		if err != nil {
			t.Fatal(err)
		}
		runJournaledOps(t, k, c, 80)
		k.Run()
		b1, err := c.DurableState()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := c.DurableState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("two DurableState calls on the same controller differ")
		}
		return b1
	}
	if !bytes.Equal(build(), build()) {
		t.Error("same-seed runs serialize differently")
	}
}

// TestRehydrateReArmsPendingBooking crashes a controller between scheduling a
// booking and its window opening: the recovered controller must open the
// window at the booked time, provision, hold, and close it.
func TestRehydrateReArmsPendingBooking(t *testing.T) {
	dir := t.TempDir()
	store := openJournal(t, dir)
	k := sim.NewKernel(7)
	c, err := New(k, topo.Testbed(), Config{Journal: store})
	if err != nil {
		t.Fatal(err)
	}
	at := k.Now().Add(2 * time.Hour)
	b, err := c.ScheduleConnect(Request{Customer: "csp1", From: "DC-A", To: "DC-C", Rate: bw.Rate10G}, at, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// "Crash" before the window opens: only the booking commit is on disk.
	k.RunFor(time.Minute)
	if b.Done.Done() {
		t.Fatal("booking resolved prematurely")
	}
	store.Close()

	store2 := openJournal(t, dir)
	defer store2.Close()
	k2 := sim.NewKernel(8)
	c2, err := Rehydrate(k2, topo.Testbed(), Config{Journal: store2})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c2.Booking("csp1", b.ID)
	if err != nil {
		t.Fatalf("booking not recovered: %v", err)
	}
	k2.Run()
	if !b2.Done.Done() {
		t.Fatal("recovered booking never resolved")
	}
	if err := b2.Done.Err(); err != nil {
		t.Fatalf("recovered booking failed: %v", err)
	}
	if b2.phase != bookingClosed {
		t.Errorf("booking phase = %d, want closed", b2.phase)
	}
	if len(b2.Conns) == 0 {
		t.Fatal("recovered booking provisioned nothing")
	}
	for _, conn := range b2.Conns {
		if conn.State != StateReleased {
			t.Errorf("component %s = %v after window close, want released", conn.ID, conn.State)
		}
	}
	checkInvariants(t, c2, -1)
}

// TestRehydrateRestartMidWorkload stops a run mid-flight (events still
// queued), recovers, and checks the committed prefix matches the pure replay:
// in-flight choreography rolls back, committed state survives exactly.
func TestRehydrateRestartMidWorkload(t *testing.T) {
	dir := t.TempDir()
	store := openJournal(t, dir)
	k := sim.NewKernel(11)
	c, err := New(k, topo.Testbed(), Config{AutoRepair: true, Journal: store, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	runJournaledOps(t, k, c, 60)
	// Do NOT drain: whatever is mid-flight is abandoned, as in a crash.
	store.Close()

	store2 := openJournal(t, dir)
	defer store2.Close()
	replayed, err := ReplayDurable(store2.Recovered())
	if err != nil {
		t.Fatal(err)
	}
	k2 := sim.NewKernel(12)
	c2, err := Rehydrate(k2, topo.Testbed(), Config{AutoRepair: true, Journal: store2, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.DurableState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayed, got) {
		t.Errorf("recovered state diverges from replay:\nreplay:    %s\nrecovered: %s", replayed, got)
	}
	checkInvariants(t, c2, -1)
	// The recovered controller keeps working: drain its queue, then land one
	// more connection end to end.
	k2.Run()
	checkInvariants(t, c2, -2)
	mustConnect(t, k2, c2, Request{Customer: "csp9", From: "DC-A", To: "DC-B", Rate: bw.Rate2G5})
	checkInvariants(t, c2, -3)
}
