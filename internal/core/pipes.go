package core

import (
	"fmt"

	"griphon/internal/ems"
	"griphon/internal/inventory"
	"griphon/internal/obs"
	"griphon/internal/otn"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// connectCircuit reserves and configures a sub-wavelength OTN circuit. When
// the overlay lacks capacity between the two PoPs, the controller first
// lights a new wavelength between their OTN switches (a "pipe") — this is the
// integrated multi-layer behaviour of paper Fig. 3: the FXC steers the
// customer into the OTN switch, and the OTN switch's line side rides the
// DWDM layer.
func (c *Controller) connectCircuit(conn *Connection, a, b topo.NodeID) (*sim.Job, error) {
	if !c.fabric.HasSwitch(a) {
		return nil, fmt.Errorf("core: no OTN switch at PoP %s", a)
	}
	if !c.fabric.HasSwitch(b) {
		return nil, fmt.Errorf("core: no OTN switch at PoP %s", b)
	}
	slots, err := otn.SlotsFor(conn.Rate)
	if err != nil {
		return nil, err
	}
	conn.slots = slots

	var pipes []*otn.Pipe
	seq := sim.NewSequence(c.k).
		// Ensure overlay capacity, building a pipe if grooming cannot
		// fit the circuit into existing ones. Concurrent circuits
		// between the same PoPs share one in-flight build instead of
		// each lighting a wavelength.
		Then(func() *sim.Job {
			p, err := c.fabric.FindPath(a, b, slots, nil)
			if err == nil {
				pipes = p
				return nil
			}
			if pending := c.pendingPipe(a, b); pending != nil {
				sp := c.tr.Start(conn.opSpan, "pipe:wait")
				pending.OnDone(func(err error) { sp.EndErr(err) })
				c.log(conn.ID, "pipe-wait", "waiting for in-flight pipe %s-%s", a, b)
				return pending
			}
			c.log(conn.ID, "pipe-build", "no OTN capacity %s->%s, lighting a new wavelength", a, b)
			sp := c.tr.Start(conn.opSpan, "pipe:wait")
			j := c.startPipeBuild(a, b, otn.ODU2)
			j.OnDone(func(err error) { sp.EndErr(err) })
			return j
		}).
		// Reserve tributary slots (and a best-effort shared-mesh backup).
		ThenDo(func() error {
			// The path was found in an earlier kernel event; housekeeping may
			// have retired one of its pipes in between (an idle pipe carries
			// no hint that a setup intends to use it). Reserving on such a
			// ghost would strand the circuit on a pipe whose wavelength is
			// being torn down — re-resolve instead.
			for _, p := range pipes {
				if c.fabric.Pipe(p.ID()) == nil {
					c.log(conn.ID, "pipe-stale", "pipe %s retired mid-setup, re-routing", p.ID())
					pipes = nil
					break
				}
			}
			if pipes == nil {
				p, err := c.fabric.FindPath(a, b, slots, nil)
				if err != nil {
					return err
				}
				pipes = p
			}
			if err := otn.ReservePath(pipes, string(conn.ID), slots); err != nil {
				return err
			}
			conn.pipes = pipes
			if conn.Protect == SharedMesh {
				c.reserveSharedBackup(conn, a, b)
			}
			return nil
		}).
		// Program the electronic cross-connects.
		Then(func() *sim.Job {
			osp := c.tr.Start(conn.opSpan, "controller-overhead")
			j := c.k.AfterJob(c.jit(c.lat.ControllerOverhead), nil)
			j.OnDone(func(err error) { osp.EndErr(err) })
			return j
		}).
		Then(func() *sim.Job {
			bud := &opBudget{}
			return c.retrying(conn.opSpan, bud, func() *sim.Job {
				return c.otnEMS.SubmitBatch(c.circuitProgramCmds(len(pipes)+1, conn.opSpan))
			})
		})

	job := seq.Go()
	job.OnDone(func(err error) { c.finishSetup(conn, err) })
	return job, nil
}

// reserveSharedBackup books a pipe-disjoint backup path with shared-mesh
// reservations. Shared mesh uses existing spare capacity only; when no
// disjoint overlay path exists the circuit proceeds unprotected (it will wait
// for DWDM-layer restoration of its pipes instead).
func (c *Controller) reserveSharedBackup(conn *Connection, a, b topo.NodeID) {
	avoid := map[otn.PipeID]bool{}
	for _, p := range conn.pipes {
		avoid[p.ID()] = true
	}
	backup, err := c.fabric.FindPath(a, b, 0, avoid)
	if err != nil {
		c.log(conn.ID, "no-backup", "no disjoint OTN path for shared mesh: %v", err)
		return
	}
	if err := otn.ReserveSharedPath(backup, string(conn.ID), conn.slots); err != nil {
		c.log(conn.ID, "no-backup", "shared reservation failed: %v", err)
		return
	}
	conn.backup = backup
}

// circuitProgramCmds is the OTN EMS batch for programming a circuit across
// nSwitches switches.
func (c *Controller) circuitProgramCmds(nSwitches int, parent obs.SpanRef) []ems.Command {
	cmds := make([]ems.Command, 0, nSwitches)
	for i := 0; i < nSwitches; i++ {
		cmds = append(cmds, ems.Command{
			Name: fmt.Sprintf("odu-xc:%d", i),
			Dur:  c.jit(c.lat.OTNProgramPerSwitch),
			Span: parent,
		})
	}
	return cmds
}

// circuitTeardownJob is the (fast, electronic) release choreography for an
// OTN circuit.
func (c *Controller) circuitTeardownJob(conn *Connection, parent obs.SpanRef) *sim.Job {
	bud := &opBudget{}
	return sim.NewSequence(c.k).
		ThenWait(c.jit(c.lat.TeardownController)).
		Then(func() *sim.Job {
			return c.retrying(parent, bud, func() *sim.Job {
				return c.otnEMS.SubmitBatch(c.circuitProgramCmds(len(conn.pipes)+1, parent))
			})
		}).
		Go()
}

// pendingKey canonicalizes a node pair.
func pendingKey(a, b topo.NodeID) string {
	if b < a {
		a, b = b, a
	}
	return string(a) + "|" + string(b)
}

// pendingPipe returns the in-flight build job for a node pair, if any.
func (c *Controller) pendingPipe(a, b topo.NodeID) *sim.Job {
	return c.pendingPipes[pendingKey(a, b)]
}

// startPipeBuild launches a pipe build and registers it so concurrent
// requests can wait on it.
func (c *Controller) startPipeBuild(a, b topo.NodeID, level otn.Level) *sim.Job {
	key := pendingKey(a, b)
	job := c.buildPipe(a, b, level)
	c.pendingPipes[key] = job
	job.OnDone(func(error) { delete(c.pendingPipes, key) })
	return job
}

// buildPipe lights a carrier-owned wavelength between two OTN switches and
// registers the resulting pipe in the overlay. The returned job completes
// when the pipe is usable.
func (c *Controller) buildPipe(a, b topo.NodeID, level otn.Level) *sim.Job {
	rate := level.ClientRate()
	carrier := &Connection{
		ID:          c.newConnID(),
		Customer:    CarrierCustomer,
		Rate:        rate,
		Layer:       LayerDWDM,
		Protect:     Restore,
		State:       StatePending,
		RequestedAt: c.k.Now(),
		Internal:    true,
	}
	out := c.k.NewJob()
	// The carrier's own admission and claim ride one transaction: a routing
	// failure below hands both back in LIFO order.
	adm := inventory.NewTxn()
	if err := adm.Do(
		func() error { return c.ledger.Admit(CarrierCustomer, rate) },
		func() { c.ledger.Discharge(CarrierCustomer, rate) }, //lint:allow errcheck undoing our own admit
	); err != nil {
		out.Complete(err)
		return out
	}
	if err := adm.Do(
		func() error { return c.ledger.Claim(CarrierCustomer, connKey(carrier.ID)) },
		func() { c.ledger.Release(CarrierCustomer, connKey(carrier.ID)) }, //lint:allow errcheck undoing our own claim
	); err != nil {
		adm.Rollback()
		out.Complete(err)
		return out
	}
	// In a sharded control plane pipe capacity between a node pair is shared
	// fabric: claim one unit from the coordinator inside the same txn so a
	// routing failure below hands it back with the admit and the claim.
	var pipeToken string
	if co := c.shard.Coordinator; co != nil {
		if err := adm.Do(
			func() error {
				t, err := co.ClaimPipe(c.shard.Index, a, b)
				pipeToken = t
				return err
			},
			func() { co.ReleasePipe(c.shard.Index, pipeToken) },
		); err != nil {
			adm.Rollback()
			out.Complete(err)
			return out
		}
	}
	carrier.opSpan = c.tr.Start(obs.SpanRef{}, "op:pipe-build")
	carrier.opSpan.SetConn(string(carrier.ID), string(CarrierCustomer), LayerDWDM.String())

	// Carrier wavelengths terminate on OTN switch line cards, not on
	// customer FXC client ports, so no FXC pair is taken.
	lp, err := c.reserveLightpath(carrier.ID, a, b, rate, carrier.Protect, nil, nil, false, carrier.opSpan)
	if err != nil {
		carrier.opSpan.EndErr(err)
		adm.Rollback()
		out.Complete(fmt.Errorf("core: cannot light pipe %s-%s: %w", a, b, err))
		return out
	}
	adm.Commit()
	carrier.path = lp
	c.conns[carrier.ID] = carrier
	c.log(carrier.ID, "request", "carrier pipe wavelength %s->%s %v", a, b, rate)

	c.lightpathSetupJob(lp, carrier.opSpan).OnDone(func(err error) {
		c.finishSetup(carrier, err)
		if err != nil {
			// The admission txn committed before the optical bring-up; the
			// cross-shard capacity unit goes back by hand on this path.
			if co := c.shard.Coordinator; co != nil && pipeToken != "" {
				co.ReleasePipe(c.shard.Index, pipeToken)
			}
			out.Complete(err)
			return
		}
		pipe, perr := c.fabric.AddPipe(a, b, level)
		if perr != nil {
			if co := c.shard.Coordinator; co != nil && pipeToken != "" {
				co.ReleasePipe(c.shard.Index, pipeToken)
			}
			out.Complete(perr)
			return
		}
		c.pipeCarrier[pipe.ID()] = carrier.ID
		if pipeToken != "" {
			c.pipeTokens[pipe.ID()] = pipeToken
		}
		carrier.carries = pipe.ID()
		c.log(carrier.ID, "pipe-up", "pipe %s in service (%v, %d slots)", pipe.ID(), level, pipe.TotalSlots())
		c.journalCommit(commitSet{reason: "pipe-up", conns: []*Connection{carrier}, pipes: []*otn.Pipe{pipe}})
		out.Complete(nil)
	})
	return out
}

// EnsurePipe pre-builds OTN overlay capacity between two PoPs — used to
// pre-groom the network before load experiments and by operators planning
// ahead (paper §4, network resource planning). The job completes when the
// pipe is in service.
func (c *Controller) EnsurePipe(a, b topo.NodeID, level otn.Level) (*sim.Job, error) {
	if !c.fabric.HasSwitch(a) {
		return nil, fmt.Errorf("core: no OTN switch at PoP %s", a)
	}
	if !c.fabric.HasSwitch(b) {
		return nil, fmt.Errorf("core: no OTN switch at PoP %s", b)
	}
	return c.buildPipe(a, b, level), nil
}

// PipeCarrier returns the internal connection carrying a pipe ("" if none).
func (c *Controller) PipeCarrier(id otn.PipeID) ConnID { return c.pipeCarrier[id] }

// ReclaimIdlePipes retires every pipe that carries no circuits and holds no
// shared-mesh reservations, tearing down its carrier wavelength so the
// transponders and spectrum return to the shared pool (the carrier-side
// "intelligent re-use of the pool of resources", paper §1). It returns a job
// completing when the teardowns finish and the number of pipes reclaimed.
func (c *Controller) ReclaimIdlePipes() (*sim.Job, int) {
	var jobs []*sim.Job
	n := 0
	for _, pipe := range c.fabric.Pipes() {
		if pipe.UsedSlots() > 0 || len(pipe.SharedOwners()) > 0 || !pipe.Up() {
			continue
		}
		carrierID := c.pipeCarrier[pipe.ID()]
		carrier := c.conns[carrierID]
		if carrier == nil || carrier.State != StateActive {
			continue
		}
		if err := c.fabric.RemovePipe(pipe.ID()); err != nil {
			continue
		}
		delete(c.pipeCarrier, pipe.ID())
		if token, ok := c.pipeTokens[pipe.ID()]; ok {
			c.shard.Coordinator.ReleasePipe(c.shard.Index, token)
			delete(c.pipeTokens, pipe.ID())
		}
		carrier.carries = ""
		c.log(carrierID, "pipe-retire", "pipe %s idle, reclaiming its wavelength", pipe.ID())
		c.journalCommit(commitSet{reason: "pipe-retire", conns: []*Connection{carrier}, delPipes: []otn.PipeID{pipe.ID()}})
		job, err := c.Disconnect(CarrierCustomer, carrierID)
		if err != nil {
			continue
		}
		jobs = append(jobs, job)
		n++
	}
	return sim.All(c.k, jobs...), n
}

// circuitsOnPipe returns non-released OTN circuits riding the pipe.
func (c *Controller) circuitsOnPipe(id otn.PipeID) []*Connection {
	var out []*Connection
	for _, conn := range c.Connections() {
		if conn.Layer != LayerOTN || conn.State == StateReleased {
			continue
		}
		for _, p := range conn.pipes {
			if p.ID() == id {
				out = append(out, conn)
				break
			}
		}
	}
	return out
}
