package core

import (
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/otn"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func newTestbedGraph() *topo.Graph { return topo.Testbed() }

func mustSite(id, home string, gbps float64) topo.Site {
	return topo.Site{ID: topo.SiteID(id), Home: topo.NodeID(home), AccessGbps: gbps}
}

func topoNode(s string) topo.NodeID { return topo.NodeID(s) }

func TestConnectCircuitBuildsPipeOnDemand(t *testing.T) {
	k, c := newTestbed(t, 20)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})

	if conn.Layer != LayerOTN {
		t.Fatalf("layer = %v", conn.Layer)
	}
	// The empty overlay forced a pipe build: setup includes a full
	// wavelength establishment, so it lands in the minutes range, not
	// seconds — but still "a few minutes" per the paper's vision.
	if conn.SetupTime() < 60*time.Second || conn.SetupTime() > 3*time.Minute {
		t.Errorf("first-circuit setup = %v", conn.SetupTime())
	}
	if len(conn.pipes) != 1 {
		t.Fatalf("pipes = %d", len(conn.pipes))
	}
	pipe := conn.pipes[0]
	if pipe.UsedSlots() != 1 {
		t.Errorf("pipe used slots = %d, want 1 (ODU0)", pipe.UsedSlots())
	}
	// The pipe is carried by an internal wavelength.
	carrier := c.Conn(c.PipeCarrier(pipe.ID()))
	if carrier == nil || !carrier.Internal || carrier.State != StateActive {
		t.Fatal("pipe carrier wavelength missing or not active")
	}
	if carrier.Customer != CarrierCustomer {
		t.Errorf("carrier customer = %s", carrier.Customer)
	}
}

func TestSecondCircuitGroomsIntoExistingPipe(t *testing.T) {
	k, c := newTestbed(t, 21)
	first := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	second := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate2G5})

	// Grooming: both circuits share the single pipe.
	if len(c.Fabric().Pipes()) != 1 {
		t.Fatalf("pipes = %d, want 1 (groomed)", len(c.Fabric().Pipes()))
	}
	if second.pipes[0] != first.pipes[0] {
		t.Error("second circuit not groomed into the same pipe")
	}
	// ODU0(1) + ODU1(2) slots.
	if got := first.pipes[0].UsedSlots(); got != 3 {
		t.Errorf("used slots = %d, want 3", got)
	}
	// The electronic-only setup is orders of magnitude faster than the
	// first (which had to light a wavelength).
	if second.SetupTime() > 10*time.Second {
		t.Errorf("groomed setup = %v, want seconds", second.SetupTime())
	}
	if second.SetupTime() >= first.SetupTime()/5 {
		t.Errorf("groomed setup %v vs pipe-building %v: no speedup", second.SetupTime(), first.SetupTime())
	}
}

func TestCompositeTwelveGig(t *testing.T) {
	k, c := newTestbed(t, 22)
	conns, job, err := c.ConnectComposite(Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: 12 * bw.Gbps})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	// Paper §2.2: 12G = one 10G wavelength + two 1G OTN circuits.
	if len(conns) != 3 {
		t.Fatalf("components = %d", len(conns))
	}
	var dwdm, otnCount int
	var total bw.Rate
	for _, conn := range conns {
		if conn.State != StateActive {
			t.Errorf("component %s state %v", conn.ID, conn.State)
		}
		total += conn.Rate
		switch conn.Layer {
		case LayerDWDM:
			dwdm++
		case LayerOTN:
			otnCount++
		}
	}
	if dwdm != 1 || otnCount != 2 {
		t.Errorf("composition = %d dwdm + %d otn, want 1+2", dwdm, otnCount)
	}
	if total != 12*bw.Gbps {
		t.Errorf("total rate = %v", total)
	}
	// Only ONE wavelength serves the 10G part; the OTN circuits share a
	// second (pipe) wavelength — not a second customer 10G.
	if got := c.Snapshot().InternalConns; got != 1 {
		t.Errorf("internal conns = %d, want 1 pipe carrier", got)
	}
}

func TestCompositeFailureUnwindsSiblings(t *testing.T) {
	k := sim.NewKernel(23)
	cfg := Config{}
	cfg.Optics.Channels = 80
	cfg.Optics.ReachKM = 2500
	cfg.Optics.OTsPerNode = 2 // only one wavelength can terminate per node pair
	c, err := New(k, newTestbedGraph(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 30G composite = 3x10G wavelengths; the third cannot get OTs (two
	// OTs per node).
	_, _, err = c.ConnectComposite(Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: 30 * bw.Gbps})
	if err == nil {
		t.Fatal("composite beyond OT pool accepted")
	}
	k.Run()
	s := c.Snapshot()
	if s.OTsInUse != 0 || s.ChannelsInUse != 0 {
		t.Errorf("composite failure leaked: %+v", s)
	}
	if c.AccessUsed("DC-A") != 0 {
		t.Errorf("access leaked: %v", c.AccessUsed("DC-A"))
	}
}

func TestEnsurePipe(t *testing.T) {
	k, c := newTestbed(t, 24)
	job, err := c.EnsurePipe("I", "III", otn.ODU3)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	pipes := c.Fabric().Pipes()
	if len(pipes) != 1 || pipes[0].TotalSlots() != 32 {
		t.Fatalf("pipes = %v", pipes)
	}
	if _, err := c.EnsurePipe("I", "II", otn.ODU2); err == nil {
		t.Error("pipe to OTN-less PoP accepted")
	}
	if _, err := c.EnsurePipe("II", "I", otn.ODU2); err == nil {
		t.Error("pipe from OTN-less PoP accepted")
	}
}

func TestCircuitToOTNLessPoPFails(t *testing.T) {
	k := sim.NewKernel(25)
	g := newTestbedGraph()
	// Add a site homed at II, which has no OTN switch.
	g.AddSite(mustSite("DC-X", "II", 40))
	c, err := New(k, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-X", Rate: bw.Rate1G}); err == nil {
		t.Error("OTN circuit to a PoP without an OTN switch accepted")
	}
	// A wavelength to the same site works fine.
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-X", Rate: bw.Rate10G})
}

func TestSharedMeshBackupReservedWhenPossible(t *testing.T) {
	k, c := newTestbed(t, 26)
	// Pre-build a triangle of pipes so a disjoint backup path exists.
	for _, pair := range [][2]string{{"I", "III"}, {"III", "IV"}, {"I", "IV"}} {
		job, err := c.EnsurePipe(topoNode(pair[0]), topoNode(pair[1]), otn.ODU2)
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		if job.Err() != nil {
			t.Fatal(job.Err())
		}
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if conn.Protect != SharedMesh {
		t.Fatalf("protect = %v", conn.Protect)
	}
	if len(conn.backup) == 0 {
		t.Fatal("no shared-mesh backup despite a disjoint overlay path")
	}
	// Backup holds shared reservations, not real slots.
	for _, p := range conn.backup {
		if p.UsedSlots() != 0 {
			t.Error("backup pipe has real slots allocated")
		}
		if len(p.SharedOwners()) == 0 {
			t.Error("backup pipe lacks shared reservation")
		}
	}
}

func TestCircuitTeardownFreesSlots(t *testing.T) {
	k, c := newTestbed(t, 27)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate2G5})
	pipe := conn.pipes[0]
	job, err := c.Disconnect("x", conn.ID)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if pipe.UsedSlots() != 0 {
		t.Errorf("slots leaked: %d", pipe.UsedSlots())
	}
	// Teardown of an electronic circuit is fast.
	if job.Elapsed() > 5*time.Second {
		t.Errorf("circuit teardown = %v", job.Elapsed())
	}
	// The pipe itself survives for future circuits.
	if len(c.Fabric().Pipes()) != 1 {
		t.Error("pipe retired with the circuit")
	}
}

func TestMultiHopCircuitOverTwoPipes(t *testing.T) {
	k, c := newTestbed(t, 28)
	// Pipes I-III and III-IV exist; none direct I-IV. A circuit DC-A
	// (home I) -> DC-C (home IV) must ride both pipes through the OTN
	// switch at III.
	for _, pair := range [][2]topo.NodeID{{"I", "III"}, {"III", "IV"}} {
		job, err := c.EnsurePipe(pair[0], pair[1], otn.ODU2)
		if err != nil {
			t.Fatal(err)
		}
		k.Run()
		if job.Err() != nil {
			t.Fatal(job.Err())
		}
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate2G5})
	if len(conn.pipes) != 2 {
		t.Fatalf("pipes = %d, want 2 (groomed through III)", len(conn.pipes))
	}
	for _, p := range conn.pipes {
		if p.UsedSlots() != 2 {
			t.Errorf("pipe %s slots = %d, want 2", p.ID(), p.UsedSlots())
		}
	}
	// The two-pipe circuit programs three switches; still seconds.
	if conn.SetupTime() > 10*time.Second {
		t.Errorf("multi-hop groomed setup = %v", conn.SetupTime())
	}
	// Failure of the middle: cut the fiber under pipe I-III.
	carrier := c.Conn(c.PipeCarrier(conn.pipes[0].ID()))
	c.CutFiber(carrier.Route().Links[0])
	if conn.State != StateDown {
		t.Fatalf("state = %v after mid-pipe loss", conn.State)
	}
	k.Run()
	// Carrier restoration revives the pipe and the circuit.
	if conn.State != StateActive {
		t.Errorf("state = %v after carrier restoration", conn.State)
	}
	// Teardown releases slots on both pipes.
	c.Disconnect("x", conn.ID)
	k.Run()
	for _, p := range conn.pipes {
		_ = p
	}
	if s := c.Snapshot(); s.SlotsInUse != 0 {
		t.Errorf("slots leaked: %+v", s)
	}
}
