package core

import (
	"griphon/internal/ems"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// PreArm sizes the speculative warm pools (Config.PreArm). Pre-arming spends
// idle EMS capacity ahead of demand so the setup critical path can skip its
// slowest steps: a pre-opened EMS session removes the session-establishment
// wait, and a spare transponder already tuned to a likely wavelength removes
// (half of) the laser-tune wait per warm end. The zero value disables
// pre-arming.
type PreArm struct {
	// WarmOTsPerNode is how many spare transponders each PoP keeps
	// pre-tuned.
	WarmOTsPerNode int
	// WarmSessions is how many ROADM-EMS sessions are kept open and idle.
	WarmSessions int
}

func (p PreArm) enabled() bool { return p.WarmOTsPerNode > 0 || p.WarmSessions > 0 }

// prearmPools is the controller's soft warm-pool state. It is deliberately
// NOT journaled: warm counts are a performance hint, not a resource
// reservation (no bank OT is held by the pool), so recovery simply
// reinitializes the pools full — the worst case after a crash is one setup
// paying full price. AuditInvariants is unaffected for the same reason.
type prearmPools struct {
	cfg      PreArm
	warmOTs  map[topo.NodeID]int
	sessions int
}

// warmClaim is what one lightpath setup managed to grab from the pools.
type warmClaim struct {
	// session: an open EMS session was claimed; the choreography skips
	// session establishment.
	session bool
	// warmEnds counts terminating PoPs (0–2) that supplied a pre-tuned
	// spare transponder; each halves the laser-tune work.
	warmEnds int
}

func newPrearmPools(cfg PreArm, g *topo.Graph) *prearmPools {
	p := &prearmPools{cfg: cfg, warmOTs: make(map[topo.NodeID]int)}
	// Pools deploy warm: the carrier pre-arms during turn-up, before the
	// first request arrives.
	p.sessions = cfg.WarmSessions
	for _, n := range g.Nodes() {
		p.warmOTs[n.ID] = cfg.WarmOTsPerNode
	}
	return p
}

// claimWarm grabs whatever the pools can supply for a setup terminating at a
// and b, and immediately starts background re-arming to refill what was
// taken. With pre-arming disabled it returns the zero claim.
func (c *Controller) claimWarm(a, b topo.NodeID) warmClaim {
	if c.prearm == nil {
		return warmClaim{}
	}
	var claim warmClaim
	if c.prearm.sessions > 0 {
		c.prearm.sessions--
		claim.session = true
		c.ins.prearmClaimsSession.Inc()
		c.rearmSession()
	}
	for _, n := range [2]topo.NodeID{a, b} {
		if c.prearm.warmOTs[n] > 0 {
			c.prearm.warmOTs[n]--
			claim.warmEnds++
			c.ins.prearmClaimsOT.Inc()
			c.rearmOT(n)
		}
	}
	return claim
}

// rearmSession re-opens one EMS session in the background: a real command on
// the ROADM EMS's session lane, under the retry policy. Bounded — on retry
// exhaustion the refill is abandoned (the pool just runs one short), so
// re-arming can never keep the event loop alive indefinitely.
func (c *Controller) rearmSession() {
	sp := c.tr.Start(obs.SpanRef{}, "op:prearm")
	bud := &opBudget{}
	job := c.retrying(sp, bud, func() *sim.Job {
		return c.roadmEMS.Submit(ems.Command{
			Name: "prearm:session",
			Elem: "session",
			Dur:  c.jit(c.lat.EMSSession),
			Span: sp,
		})
	})
	job.OnDone(func(err error) {
		sp.EndErr(err)
		if err != nil {
			c.ins.prearmRearmFailed.Inc()
			return
		}
		c.ins.prearmRearmOK.Inc()
		if c.prearm.sessions < c.prearm.cfg.WarmSessions {
			c.prearm.sessions++
		}
	})
}

// rearmOT re-tunes one spare transponder at n in the background. The spare is
// a separate physical device from the in-path transponders, so it gets its
// own per-node lane and never contends with a live setup's laser-tune.
func (c *Controller) rearmOT(n topo.NodeID) {
	sp := c.tr.Start(obs.SpanRef{}, "op:prearm")
	bud := &opBudget{}
	job := c.retrying(sp, bud, func() *sim.Job {
		return c.roadmEMS.Submit(ems.Command{
			Name: "prearm:tune:" + string(n),
			Elem: "prearm:" + string(n),
			Dur:  c.jit(c.lat.LaserTune),
			Span: sp,
		})
	})
	job.OnDone(func(err error) {
		sp.EndErr(err)
		if err != nil {
			c.ins.prearmRearmFailed.Inc()
			return
		}
		c.ins.prearmRearmOK.Inc()
		if c.prearm.warmOTs[n] < c.prearm.cfg.WarmOTsPerNode {
			c.prearm.warmOTs[n]++
		}
	})
}

// WarmSessions returns the current warm-session pool level (0 when
// pre-arming is disabled). Exposed for tests.
func (c *Controller) WarmSessions() int {
	if c.prearm == nil {
		return 0
	}
	return c.prearm.sessions
}

// WarmOTs returns the current warm-transponder pool level at a PoP.
func (c *Controller) WarmOTs(n topo.NodeID) int {
	if c.prearm == nil {
		return 0
	}
	return c.prearm.warmOTs[n]
}
