package core

import (
	"fmt"
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// TestRandomOperationsInvariants is a model-checking style test: for several
// seeds, it fires a long random sequence of operations (connect, disconnect,
// adjust, cut, repair, roll, regroom, defrag, reclaim, time advance) at the
// controller and checks global resource invariants after every step. Any
// accounting drift anywhere in the stack fails here even if no targeted unit
// test covers that exact interleaving.
func TestRandomOperationsInvariants(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runRandomOps(t, seed, 200)
		})
	}
}

func runRandomOps(t *testing.T, seed int64, steps int) {
	t.Helper()
	k := sim.NewKernel(seed)
	c, err := New(k, topo.Testbed(), Config{AutoRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := k.Rand()
	sites := []topo.SiteID{"DC-A", "DC-B", "DC-C"}
	rates := []bw.Rate{bw.Rate1G, bw.Rate2G5, bw.Rate10G}
	protects := []Protection{Restore, Unprotected, OnePlusOne, Restore}
	var live []*Connection

	for step := 0; step < steps; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // connect
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			if a == b {
				break
			}
			rate := rates[rng.Intn(len(rates))]
			p := protects[rng.Intn(len(protects))]
			if layerFor(rate) == LayerOTN && p == OnePlusOne {
				p = Restore
			}
			conn, _, err := c.Connect(Request{
				Customer: "fuzz", From: a, To: b, Rate: rate, Protect: p,
			})
			if err == nil {
				live = append(live, conn)
			}
		case 3, 4: // disconnect a random live connection
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			conn := live[i]
			if conn.State == StateActive || conn.State == StateDown {
				c.Disconnect("fuzz", conn.ID) //lint:allow errcheck may race with teardown
			}
			live = append(live[:i], live[i+1:]...)
		case 5: // adjust a random OTN circuit
			for _, conn := range live {
				if conn.Layer == LayerOTN && conn.State == StateActive {
					target := rates[rng.Intn(2)]          // 1G or 2.5G
					c.AdjustRate("fuzz", conn.ID, target) //lint:allow errcheck may be blocked
					break
				}
			}
		case 6: // cut a random healthy link
			links := c.Graph().Links()
			l := links[rng.Intn(len(links))]
			if c.Plant().LinkUp(l.ID) {
				c.CutFiber(l.ID) //lint:allow errcheck verified up
			}
		case 7: // roll or regroom a random wavelength
			for _, conn := range live {
				if conn.Layer == LayerDWDM && conn.State == StateActive && conn.Protect != OnePlusOne {
					if rng.Intn(2) == 0 {
						c.BridgeAndRoll("fuzz", conn.ID, nil) //lint:allow errcheck may lack disjoint path
					} else {
						c.Regroom("fuzz", conn.ID) //lint:allow errcheck may be optimal already
					}
					break
				}
			}
		case 8: // housekeeping
			if rng.Intn(2) == 0 {
				c.DefragmentSpectrum()
			} else {
				c.ReclaimIdlePipes()
			}
		case 9: // let time pass
			k.RunFor(time.Duration(rng.Intn(120)) * time.Minute)
		}
		checkInvariants(t, c, step)
		if t.Failed() {
			t.Fatalf("seed %d failed at step %d", seed, step)
		}
	}
	// Drain and final check.
	k.Run()
	checkInvariants(t, c, steps)
}

// checkInvariants verifies cross-layer resource accounting at one instant,
// via the controller's own auditor (which the chaos soak also runs).
func checkInvariants(t *testing.T, c *Controller, step int) {
	t.Helper()
	for _, f := range c.AuditInvariants() {
		t.Errorf("step %d: %s", step, f)
	}
}
