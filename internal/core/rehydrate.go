package core

import (
	"errors"
	"fmt"
	"strings"

	"griphon/internal/bw"
	"griphon/internal/fxc"
	"griphon/internal/inventory"
	"griphon/internal/otn"
	"griphon/internal/sim"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// Rehydrate rebuilds a controller from a journal's recovered contents: the
// last snapshot folded with every intact WAL record. The kernel must be fresh
// (its clock is fast-forwarded to the journaled time), and cfg.Journal must be
// the store the state was recovered from — it stays attached, so the rebuilt
// controller keeps journaling where the crashed one stopped.
//
// Recovery restores exactly the committed state: every connection at its last
// stable lifecycle state with its exact resources (spectrum channels,
// transponders and regens by ID, ROADM segments, FXC cross-connects, OTN
// slots, access capacity, ledger claims), every pipe, every booking with its
// timers re-armed. Operations that were mid-flight at the crash (a Pending
// setup, a restoration being provisioned, a bridge being built) are rolled
// back by construction: their resources were never journaled. Billing meters
// and outage clocks restart at the recovery instant — usage continuity is
// traded for a byte-comparable state representation (see persist.go).
//
// After rebuilding, AuditInvariants must come back clean; any finding is
// returned as an error because it means the journal and the replay disagree
// about resource ownership — exactly the corruption durability exists to
// prevent.
func Rehydrate(k *sim.Kernel, g *topo.Graph, cfg Config) (*Controller, error) {
	if cfg.Journal == nil {
		return nil, fmt.Errorf("core: Rehydrate needs cfg.Journal")
	}
	snapshot, entries := cfg.Journal.Recovered()
	st, err := foldState(snapshot, entries)
	if err != nil {
		return nil, err
	}

	// The journaled clock is where virtual time resumes; RunUntil on a fresh
	// kernel just advances the clock (no events are pending yet).
	if now := sim.Time(st.Now); now.After(k.Now()) {
		//lint:allow loopblock boot-time fast-forward on a fresh kernel before any event runs
		k.RunUntil(now)
	}

	c, err := New(k, g, cfg)
	if err != nil {
		return nil, err
	}
	// Detach the journal while rebuilding: applying recovered state must not
	// append recovered state back to the WAL.
	jrnl := c.jrnl
	c.jrnl = nil
	defer func() { c.jrnl = jrnl }()

	for _, q := range st.Quotas {
		c.ledger.SetQuota(inventory.Customer(q.Customer), inventory.Quota{
			MaxConnections: q.MaxConnections,
			MaxBandwidth:   bw.Rate(q.MaxBandwidth),
		})
	}

	for _, l := range st.DownLinks {
		link := topo.LinkID(l)
		if c.g.Link(link) == nil {
			return nil, fmt.Errorf("core: journaled down link %s is not in the topology", link)
		}
		c.plant.SetLinkUp(link, false)
		if c.autoRepair {
			// The crashed controller's crew ETA is gone with its event queue;
			// dispatch a fresh crew.
			c.repairing[link] = true
			crew := c.lat.FiberRepair(c.k.Rand())
			c.log("", "repair-dispatch", "crew for %s after recovery, ETA %v", link, crew)
			c.k.After(crew, func() { c.RepairFiber(link) }) //lint:allow errcheck best-effort auto repair
		}
	}

	c.nextConn = st.NextConn
	c.lpSeq = st.LpSeq
	c.nextBooking = st.NextBooking
	c.fabric.SetNextID(st.NextPipe)

	// Pipes come back up=true regardless of their journaled flag so the slot
	// re-reservations below succeed (Reserve refuses down pipes, but committed
	// circuits legitimately hold slots on down pipes); the recorded flags are
	// applied once every connection has its slots back.
	for _, r := range st.Pipes {
		p, err := otn.RestorePipe(otn.PipeID(r.ID), topo.NodeID(r.A), topo.NodeID(r.B), otn.Level(r.Level), true)
		if err != nil {
			return nil, fmt.Errorf("core: rebuilding pipe %s: %w", r.ID, err)
		}
		if err := c.fabric.RestorePipe(p); err != nil {
			return nil, fmt.Errorf("core: rebuilding pipe %s: %w", r.ID, err)
		}
		if r.Carrier != "" {
			c.pipeCarrier[otn.PipeID(r.ID)] = ConnID(r.Carrier)
		}
		// Cross-shard pipe tokens are derived state: re-claim fresh ones
		// rather than journaling them. (Spectrum claims re-register through
		// the broker gate as restoreConn replays each reservation.)
		if co := c.shard.Coordinator; co != nil {
			token, err := co.ClaimPipe(c.shard.Index, topo.NodeID(r.A), topo.NodeID(r.B))
			if err != nil {
				return nil, fmt.Errorf("core: re-claiming pipe capacity for %s: %w", r.ID, err)
			}
			c.pipeTokens[otn.PipeID(r.ID)] = token
		}
	}

	for _, r := range st.Conns {
		if err := c.restoreConn(r); err != nil {
			return nil, fmt.Errorf("core: rebuilding connection %s: %w", r.ID, err)
		}
	}

	for _, r := range st.Pipes {
		if !r.Up {
			c.fabric.Pipe(otn.PipeID(r.ID)).SetUp(false)
		}
	}

	for _, r := range st.Bookings {
		if err := c.restoreBooking(r); err != nil {
			return nil, fmt.Errorf("core: rebuilding booking %d: %w", r.ID, err)
		}
	}

	if findings := c.AuditInvariants(); len(findings) > 0 {
		msgs := make([]string, len(findings))
		for i, f := range findings {
			msgs[i] = f.String()
		}
		return nil, fmt.Errorf("core: recovered state fails invariant audit: %s", strings.Join(msgs, "; "))
	}
	c.log("", "recovered", "journal replay: %d connections, %d pipes, %d bookings",
		len(st.Conns), len(st.Pipes), len(st.Bookings))
	return c, nil
}

// restoreConn rebuilds one connection from its record, re-reserving every
// resource the committed state says it holds.
func (c *Controller) restoreConn(r connRec) error {
	conn := &Connection{
		ID:           ConnID(r.ID),
		Customer:     inventory.Customer(r.Customer),
		From:         topo.SiteID(r.From),
		To:           topo.SiteID(r.To),
		Rate:         bw.Rate(r.Rate),
		Layer:        Layer(r.Layer),
		Protect:      Protection(r.Protect),
		State:        State(r.State),
		stable:       State(r.State),
		Internal:     r.Internal,
		Degraded:     r.Degraded,
		carries:      otn.PipeID(r.Carries),
		onProtect:    r.OnProtect,
		slots:        r.Slots,
		RequestedAt:  sim.Time(r.RequestedAt),
		ActiveAt:     sim.Time(r.ActiveAt),
		ReleasedAt:   sim.Time(r.ReleasedAt),
		Restorations: r.Restorations,
		Rolls:        r.Rolls,
	}
	c.conns[conn.ID] = conn
	if conn.State == StateReleased {
		return nil
	}

	if err := c.ledger.Admit(conn.Customer, conn.Rate); err != nil {
		return fmt.Errorf("re-admitting: %w", err)
	}
	if err := c.ledger.Claim(conn.Customer, connKey(conn.ID)); err != nil {
		return fmt.Errorf("re-claiming: %w", err)
	}
	if !conn.Internal {
		siteA, siteB := c.g.Site(conn.From), c.g.Site(conn.To)
		if siteA == nil || siteB == nil {
			return fmt.Errorf("sites %s/%s not in topology", conn.From, conn.To)
		}
		if err := c.reserveAccess(siteA, siteB, conn.Rate); err != nil {
			return err
		}
	}

	var err error
	if conn.path, err = c.restoreLightpath(r.Path, conn.ID); err != nil {
		return err
	}
	if conn.protect, err = c.restoreLightpath(r.ProtectPath, conn.ID); err != nil {
		return err
	}

	if len(r.Pipes) > 0 {
		pipes, err := c.resolvePipes(r.Pipes)
		if err != nil {
			return err
		}
		if err := otn.ReservePath(pipes, r.ID, r.Slots); err != nil {
			return fmt.Errorf("re-reserving slots: %w", err)
		}
		conn.pipes = pipes
	}
	if len(r.Backup) > 0 {
		backup, err := c.resolvePipes(r.Backup)
		if err != nil {
			return err
		}
		if err := otn.ReserveSharedPath(backup, r.ID, r.Slots); err != nil {
			return fmt.Errorf("re-reserving shared backup: %w", err)
		}
		conn.backup = backup
	}

	// Meters and outage clocks restart at the recovery instant (persist.go
	// excludes them from the durable state). The SLA ledger restarts with
	// them: downtime that straddles a restart is attributed to the recovery
	// instant, never left unexplained.
	switch conn.State {
	case StateActive:
		conn.metering = true
		conn.meterAt = c.k.Now()
		c.sla.Activate(string(conn.ID), string(conn.Customer), c.k.Now(), conn.Degraded, conn.Internal)
	case StateDown:
		conn.metering = true
		conn.meterAt = c.k.Now()
		c.sla.Activate(string(conn.ID), string(conn.Customer), c.k.Now(), conn.Degraded, conn.Internal)
		c.sla.Down(string(conn.ID), c.k.Now(), slo.CauseRecovery, "", "outage clock restarted at recovery", "repair-wait")
		conn.inOutage = true
		conn.outageStart = c.k.Now()
	}
	return nil
}

// restoreLightpath re-reserves a journaled lightpath: the exact transponders
// and regens by ID, the exact spectrum channels, the recorded ROADM segment
// owners, and the recorded FXC cross-connects.
func (c *Controller) restoreLightpath(r *lightpathRec, id ConnID) (*lightpath, error) {
	if r == nil {
		return nil, nil
	}
	route := r.Route
	a, b := route.Path.Src(), route.Path.Dst()
	lp := &lightpath{route: route}

	for i, node := range [2]topo.NodeID{a, b} {
		if r.OTs[i] == "" {
			continue
		}
		ot, err := c.plant.OTs(node).Take(r.OTs[i])
		if err != nil {
			return nil, err
		}
		lp.ots[i] = ot
	}
	if len(r.Regens) != len(route.Plan.RegenNodes) {
		return nil, fmt.Errorf("lightpath record has %d regens for %d regen nodes", len(r.Regens), len(route.Plan.RegenNodes))
	}
	for i, rn := range route.Plan.RegenNodes {
		rg, err := c.plant.Regens(rn).Take(r.Regens[i])
		if err != nil {
			return nil, err
		}
		lp.regens = append(lp.regens, rg)
	}

	for i, seg := range route.Plan.Segments {
		ch := route.Channels[i]
		for _, link := range seg.Links {
			if err := c.plant.Spectrum(link).Reserve(ch, string(id)); err != nil {
				return nil, fmt.Errorf("re-reserving channel %d on %s: %w", ch, link, err)
			}
		}
	}

	lp.segNodes = segmentNodes(route.Path, route.Plan)
	if len(r.SegOwners) != len(route.Plan.Segments) {
		return nil, fmt.Errorf("lightpath record has %d segment owners for %d segments", len(r.SegOwners), len(route.Plan.Segments))
	}
	for i := range route.Plan.Segments {
		owner := r.SegOwners[i]
		if err := c.roadms.ConfigureSegment(lp.segNodes[i], route.Plan.Segments[i].Links, route.Channels[i], owner); err != nil {
			return nil, fmt.Errorf("reconfiguring ROADM segment %d: %w", i, err)
		}
		lp.segOwners = append(lp.segOwners, owner)
	}

	if r.PortsA[0] != "" {
		if err := c.fxcs[a].Connect(fxc.PortID(r.PortsA[0]), fxc.PortID(r.PortsA[1]), string(id)); err != nil {
			return nil, fmt.Errorf("reconnecting FXC at %s: %w", a, err)
		}
		lp.portsA = [2]fxc.PortID{fxc.PortID(r.PortsA[0]), fxc.PortID(r.PortsA[1])}
	}
	if r.PortsB[0] != "" {
		if err := c.fxcs[b].Connect(fxc.PortID(r.PortsB[0]), fxc.PortID(r.PortsB[1]), string(id)); err != nil {
			return nil, fmt.Errorf("reconnecting FXC at %s: %w", b, err)
		}
		lp.portsB = [2]fxc.PortID{fxc.PortID(r.PortsB[0]), fxc.PortID(r.PortsB[1])}
	}
	return lp, nil
}

func (c *Controller) resolvePipes(ids []string) ([]*otn.Pipe, error) {
	out := make([]*otn.Pipe, 0, len(ids))
	for _, id := range ids {
		p := c.fabric.Pipe(otn.PipeID(id))
		if p == nil {
			return nil, fmt.Errorf("journaled pipe %s was not rebuilt", id)
		}
		out = append(out, p)
	}
	return out, nil
}

// restoreBooking rebuilds one booking and re-arms its lifecycle timers. The
// exact open/close instants are journaled, so a recovered controller keeps the
// calendar; windows whose time passed while the controller was down fire
// immediately.
func (c *Controller) restoreBooking(r bookingRec) error {
	b := &Booking{
		ID: r.ID,
		Req: Request{
			Customer: inventory.Customer(r.Customer),
			From:     topo.SiteID(r.From),
			To:       topo.SiteID(r.To),
			Rate:     bw.Rate(r.Rate),
			Protect:  Protection(r.Protect),
		},
		At:      sim.Time(r.At),
		Hold:    sim.Duration(r.Hold),
		phase:   r.Phase,
		closeAt: sim.Time(r.CloseAt),
	}
	if r.SetupErr != "" {
		b.SetupErr = errors.New(r.SetupErr)
	}
	if r.CloseErr != "" {
		b.CloseErr = errors.New(r.CloseErr)
	}
	for _, id := range r.Conns {
		conn := c.conns[ConnID(id)]
		if conn == nil {
			return fmt.Errorf("component %s was not rebuilt", id)
		}
		b.Conns = append(b.Conns, conn)
	}
	c.bookings[b.ID] = b

	switch b.phase {
	case bookingPending:
		b.Done = c.k.NewJob()
		c.scheduleOpen(b)
	case bookingOpen:
		b.Done = c.k.NewJob()
		if b.closeAt.After(c.k.Now()) {
			c.k.At(b.closeAt, func() { c.closeBooking(b) })
		} else {
			c.k.Defer(func() { c.closeBooking(b) })
		}
	case bookingClosed:
		b.Done = c.k.CompletedJob(b.CloseErr)
	case bookingFailed:
		b.Done = c.k.CompletedJob(b.SetupErr)
	default:
		return fmt.Errorf("unknown phase %d", b.phase)
	}
	return nil
}
