package core

import (
	"time"

	"griphon/internal/faults"
	"griphon/internal/obs"
	"griphon/internal/sim"
)

// RetryPolicy bounds how the controller resubmits EMS work after transient
// faults (vendor timeouts, spurious NACKs — faults.Transient). Persistent
// faults and plain errors are never retried: resubmitting a rejected
// configuration wastes the EMS's serial queue, so those propagate to the
// degradation ladder instead.
type RetryPolicy struct {
	// MaxAttempts is the total tries per EMS step, first included.
	// 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; it doubles each
	// attempt, capped at MaxBackoff.
	BaseBackoff sim.Duration
	// MaxBackoff caps a single backoff wait.
	MaxBackoff sim.Duration
	// Budget caps the cumulative backoff spent across all steps of one EMS
	// choreography (a lightpath setup leg, a teardown, a circuit program),
	// so retries cannot stretch an operation without bound.
	Budget sim.Duration
}

// DefaultRetryPolicy is calibrated against the latency table: a setup runs
// ~60-70 s, so four attempts with 2 s/4 s/8 s backoffs and a 90 s budget keep
// a retried setup within about double its nominal time.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 2 * time.Second,
		MaxBackoff:  30 * time.Second,
		Budget:      90 * time.Second,
	}
}

// opBudget accumulates the backoff one operation has spent across its steps.
type opBudget struct {
	spent sim.Duration
}

// retrying runs the step produced by mk and, when it fails with a transient
// fault, backs off exponentially and resubmits it — up to the policy's
// attempt and budget bounds. The returned job completes with the final
// attempt's result. Each wait is traced as a "retry" span under parent and
// counted in griphon_ems_retries_total.
//
// mk must be safe to call repeatedly: the EMS choreographies it wraps are
// pure-latency command batches (no Apply functions), so resubmitting them
// re-runs the vendor dialogue without double-mutating device state.
func (c *Controller) retrying(parent obs.SpanRef, bud *opBudget, mk func() *sim.Job) *sim.Job {
	out := c.k.NewJob()
	c.retryAttempt(parent, bud, mk, 1, c.retry.BaseBackoff, out)
	return out
}

func (c *Controller) retryAttempt(parent obs.SpanRef, bud *opBudget, mk func() *sim.Job, attempt int, backoff sim.Duration, out *sim.Job) {
	mk().OnDone(func(err error) {
		if err == nil || !faults.IsTransient(err) ||
			attempt >= c.retry.MaxAttempts || bud.spent+backoff > c.retry.Budget {
			out.Complete(err)
			return
		}
		bud.spent += backoff
		c.ins.emsRetries.Inc()
		sp := c.tr.Start(parent, "retry")
		next := 2 * backoff
		if next > c.retry.MaxBackoff {
			next = c.retry.MaxBackoff
		}
		c.k.After(backoff, func() {
			sp.End()
			c.retryAttempt(parent, bud, mk, attempt+1, next, out)
		})
	})
}
