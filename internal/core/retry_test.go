package core

import (
	"strings"
	"testing"

	"griphon/internal/bw"
	"griphon/internal/faults"
)

// metricValue sums every point of the named metric whose rendered label block
// contains labelSub ("" matches all children).
func metricValue(t *testing.T, c *Controller, name, labelSub string) float64 {
	t.Helper()
	total := 0.0
	for _, p := range c.Metrics().Snapshot() {
		if p.Name == name && strings.Contains(p.Labels, labelSub) {
			total += p.Value
		}
	}
	return total
}

func auditClean(t *testing.T, c *Controller) {
	t.Helper()
	for _, f := range c.AuditInvariants() {
		t.Errorf("audit: %s", f)
	}
}

// TestSetupRetriesTransientFailure is the acceptance case for the retry
// policy: a single transient EMS fault used to hard-fail the whole setup;
// now the failed step is resubmitted after a backoff and the connection
// comes up on its original path.
func TestSetupRetriesTransientFailure(t *testing.T) {
	k, c := newTestbed(t, 301)
	c.ROADMEMS().InjectFailures(1, &faults.Error{
		EMS: "roadm-ems", Cmd: "ems-session", Class: faults.Transient, Reason: "vendor-timeout",
	})
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if conn.Layer != LayerDWDM || conn.Degraded {
		t.Errorf("retried setup should stay a plain wavelength; layer=%v degraded=%v", conn.Layer, conn.Degraded)
	}
	if got := metricValue(t, c, "griphon_ems_retries_total", ""); got < 1 {
		t.Errorf("griphon_ems_retries_total = %v, want >= 1", got)
	}
	if got := metricValue(t, c, "griphon_setup_degraded_total", ""); got != 0 {
		t.Errorf("degraded metric = %v, want 0 (retry alone should recover)", got)
	}
	auditClean(t, c)
}

// TestPersistentFaultFallsBackToAlternateRoute: a path that keeps rejecting
// configuration is abandoned for the next candidate route instead of failing
// the request.
func TestPersistentFaultFallsBackToAlternateRoute(t *testing.T) {
	k, c := newTestbed(t, 302)
	c.ROADMEMS().InjectFailures(1, &faults.Error{
		EMS: "roadm-ems", Cmd: "add-drop", Class: faults.Persistent, Reason: "config-rejected",
	})
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if got := metricValue(t, c, "griphon_setup_degraded_total", `mode="reroute"`); got != 1 {
		t.Errorf("reroute metric = %v, want 1", got)
	}
	// DC-A/DC-C home PoPs are I and IV; the direct I-IV hop failed, so the
	// connection must ride an alternate.
	if r := conn.Route().String(); r == "I-IV" {
		t.Errorf("route = %s; expected an alternate after the persistent fault", r)
	}
	if got := metricValue(t, c, "griphon_ems_retries_total", ""); got != 0 {
		t.Errorf("retries = %v; persistent faults must not be resubmitted", got)
	}
	auditClean(t, c)
}

// TestPersistentFaultsExhaustAllRoutes: when every candidate route fails and
// degradation is off, the request fails cleanly with nothing leaked.
func TestPersistentFaultsExhaustAllRoutes(t *testing.T) {
	k, c := newTestbed(t, 303)
	c.ROADMEMS().InjectFailures(1000, &faults.Error{
		EMS: "roadm-ems", Cmd: "add-drop", Class: faults.Persistent, Reason: "config-rejected",
	})
	_, job, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() == nil {
		t.Fatal("setup succeeded despite persistent faults on every route")
	}
	// Cumulative avoidance: after I-IV and I-III-IV fail, every remaining
	// candidate reuses a poisoned link, so only one reroute is possible —
	// NOT wavelengthAlternates, which would mean revisiting failed links.
	if got := metricValue(t, c, "griphon_setup_degraded_total", `mode="reroute"`); got != 1 {
		t.Errorf("reroute metric = %v, want 1 (cumulative avoid exhausts candidates)", got)
	}
	auditClean(t, c)
}

// TestTransientFaultsExhaustRetryBudget: a step that keeps timing out stops
// being retried once the policy's attempts are spent, and the error then
// walks the ladder like any other fault.
func TestTransientFaultsExhaustRetryBudget(t *testing.T) {
	k, c := newTestbed(t, 304)
	c.ROADMEMS().InjectFailures(1000, &faults.Error{
		EMS: "roadm-ems", Cmd: "ems-session", Class: faults.Transient, Reason: "vendor-timeout",
	})
	conn, job, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() == nil {
		t.Fatal("setup succeeded despite unbounded transient faults")
	}
	if conn.State != StateReleased {
		t.Errorf("state = %v, want released", conn.State)
	}
	// Each failing ROADM step burns MaxAttempts-1 retries; the initial path
	// plus the single link-disjoint alternate each hit one failing step
	// (cumulative avoidance leaves no third candidate).
	want := float64((c.Retry().MaxAttempts - 1) * 2)
	if got := metricValue(t, c, "griphon_ems_retries_total", ""); got != want {
		t.Errorf("retries = %v, want %v", got, want)
	}
	auditClean(t, c)
}

// TestRerouteAvoidAccumulates pins the cumulative-avoidance fix: the avoid
// set must carry across the ladder's rungs, so a path that failed on an
// earlier attempt is never revisited just because a LATER attempt failed on
// different links. Pre-fix, attempt 3 avoided only attempt 2's links and
// walked straight back onto the already-poisoned direct path.
func TestRerouteAvoidAccumulates(t *testing.T) {
	k, c := newTestbed(t, 305)
	c.ROADMEMS().InjectFailures(1000, &faults.Error{
		EMS: "roadm-ems", Cmd: "add-drop", Class: faults.Persistent, Reason: "config-rejected",
	})
	_, job, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() == nil {
		t.Fatal("setup succeeded despite persistent faults on every route")
	}
	// Every attempted path shows up as one setup-fallback event; with
	// cumulative avoidance no path can be attempted twice.
	seen := map[string]int{}
	for _, e := range c.Events() {
		if e.Kind == "setup-fallback" {
			seen[e.Text]++
		}
	}
	for path, n := range seen {
		if n > 1 {
			t.Errorf("path attempted %d times (%s); failed links must stay avoided across rungs", n, path)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no setup-fallback events recorded; the ladder never ran")
	}
	auditClean(t, c)
}
