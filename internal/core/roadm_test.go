package core

import (
	"testing"

	"griphon/internal/bw"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func TestROADMStateTracksLightpaths(t *testing.T) {
	k, c := newTestbed(t, 70)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	// DC-A home I, DC-B home III: route I-III (1 hop): terminations at
	// both ends, no expresses.
	if got := c.ROADMs().Node("I").AddDropUsed(); got != 1 {
		t.Errorf("I add/drop used = %d", got)
	}
	if got := c.ROADMs().Node("III").AddDropUsed(); got != 1 {
		t.Errorf("III add/drop used = %d", got)
	}
	ch := conn.Channels()[0]
	link := conn.Route().Links[0]
	if owner := c.ROADMs().Node("I").OwnerAt(ch, link); owner == "" {
		t.Error("no termination owner at I")
	}
	c.Disconnect("x", conn.ID)
	k.Run()
	if c.ROADMs().Node("I").AddDropUsed() != 0 || c.ROADMs().Node("III").AddDropUsed() != 0 {
		t.Error("ROADM state leaked after disconnect")
	}
}

func TestROADMExpressOnMultiHop(t *testing.T) {
	k, c := newTestbed(t, 71)
	c.Plant().SetLinkUp("I-IV", false)
	c.Plant().SetLinkUp("I-III", false)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if conn.Route().String() != "I-II-III-IV" {
		t.Fatalf("route = %s", conn.Route())
	}
	ch := conn.Channels()[0]
	if got := c.ROADMs().Node("II").ExpressedBy(ch, "I-II", "II-III"); got == "" {
		t.Error("no express at II")
	}
	if got := c.ROADMs().Node("III").ExpressedBy(ch, "II-III", "III-IV"); got == "" {
		t.Error("no express at III")
	}
	if c.ROADMs().Node("II").AddDropUsed() != 0 {
		t.Error("express consumed add/drop at II")
	}
}

func TestAddDropExhaustionBlocks(t *testing.T) {
	k := sim.NewKernel(72)
	cfg := Config{AddDropPorts: 1}
	c, err := New(k, topo.Testbed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	// A second wavelength terminating at I needs a second add/drop port.
	if _, _, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G}); err == nil {
		t.Error("connect beyond the add/drop bank accepted")
	}
	// Failure must not leak partial ROADM state.
	if used := c.ROADMs().Node("I").AddDropUsed(); used != 1 {
		t.Errorf("I add/drop used = %d after blocked request", used)
	}
	s := c.Snapshot()
	if s.OTsInUse != 2 {
		t.Errorf("OTs in use = %d, want 2 (only the first connection)", s.OTsInUse)
	}
}

func TestRegenUsesTwoSegmentTerminations(t *testing.T) {
	k := sim.NewKernel(73)
	cfg := Config{}
	cfg.Optics.Channels = 80
	cfg.Optics.ReachKM = 3000
	cfg.Optics.OTsPerNode = 8
	cfg.Optics.RegensPerNode = 4
	c, err := New(k, topo.Backbone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-SEA", To: "DC-NYC", Rate: bw.Rate10G})
	if len(conn.path.regens) == 0 {
		t.Skip("no regens on this route")
	}
	rn := conn.path.regens[0].Node
	// The regen node terminates both adjacent segments: two ports.
	if got := c.ROADMs().Node(rn).AddDropUsed(); got != 2 {
		t.Errorf("regen node %s add/drop used = %d, want 2", rn, got)
	}
	c.Disconnect("x", conn.ID)
	k.Run()
	if got := c.ROADMs().Node(rn).AddDropUsed(); got != 0 {
		t.Errorf("regen node state leaked: %d", got)
	}
}

func TestBridgeAndRollReleasesOldROADMState(t *testing.T) {
	k, c := newTestbed(t, 74)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	oldRoute := conn.Route()
	job, err := c.BridgeAndRoll("x", conn.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	// Total add/drop usage across the layer: exactly 2 (the two ends of
	// the one live path).
	total := 0
	for _, n := range c.Graph().Nodes() {
		total += c.ROADMs().Node(n.ID).AddDropUsed()
	}
	if total != 2 {
		t.Errorf("layer-wide add/drop used = %d, want 2 after roll off %s", total, oldRoute)
	}
}
