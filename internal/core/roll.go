package core

import (
	"fmt"

	"griphon/internal/inventory"
	"griphon/internal/obs"
	"griphon/internal/rwa"
	"griphon/internal/sim"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// BridgeAndRoll moves an active wavelength connection onto a new,
// resource-disjoint path with almost no traffic hit (paper §2.2 and [34]):
// the full new path (the "bridge") is built while the original still carries
// traffic, then traffic "rolls" in one fast operation, then the old path is
// released. avoid lists links the new path must not use (the maintenance
// target, or nothing for re-grooming). The job completes when the roll is
// done and the old path released.
func (c *Controller) BridgeAndRoll(cust inventory.Customer, id ConnID, avoid map[topo.LinkID]bool) (*sim.Job, error) {
	conn := c.conns[id]
	if conn == nil {
		return nil, fmt.Errorf("core: unknown connection %s", id)
	}
	if err := c.ledger.Verify(cust, connKey(id)); err != nil {
		return nil, err
	}
	return c.bridgeAndRoll(conn, avoid)
}

func (c *Controller) bridgeAndRoll(conn *Connection, avoid map[topo.LinkID]bool) (*sim.Job, error) {
	if conn.Layer != LayerDWDM {
		return nil, fmt.Errorf("core: bridge-and-roll applies to wavelength connections; %s is %v", conn.ID, conn.Layer)
	}
	if conn.State != StateActive {
		return nil, fmt.Errorf("core: connection %s is %v; bridge-and-roll needs an active connection", conn.ID, conn.State)
	}
	old := conn.working()

	// Paper constraint: the new wavelength path must be resource-disjoint
	// from the old one.
	merged := map[topo.LinkID]bool{}
	for l := range avoid {
		merged[l] = true
	}
	for _, l := range old.route.Path.Links {
		merged[l] = true
	}
	rollSp := c.tr.Start(obs.SpanRef{}, "op:roll")
	rollSp.SetConn(string(conn.ID), string(conn.Customer), conn.Layer.String())
	a, b := old.route.Path.Src(), old.route.Path.Dst()
	bridge, err := c.reserveLightpath(conn.ID, a, b, conn.Rate, conn.Protect, merged, old, false, rollSp)
	if err != nil {
		rollSp.EndErr(err)
		return nil, fmt.Errorf("core: no disjoint bridge path for %s: %w", conn.ID, err)
	}
	c.log(conn.ID, "roll-bridge", "building bridge on %s", bridge.route.Path)

	out := c.k.NewJob()
	out.OnDone(func(err error) { rollSp.EndErr(err) })
	c.lightpathSetupJob(bridge, rollSp).OnDone(func(err error) {
		if conn.State != StateActive {
			// Failed or torn down while bridging; abandon the bridge.
			c.releaseLightpathMiddle(bridge)
			out.Complete(fmt.Errorf("core: connection %s became %v during bridge", conn.ID, conn.State))
			return
		}
		if err != nil {
			c.releaseLightpathMiddle(bridge)
			out.Complete(err)
			return
		}
		// Roll: an almost-hitless switch of traffic onto the bridge.
		hit := c.jit(c.lat.RollHit)
		hitSp := c.tr.Start(rollSp, "roll:hit")
		c.connDown(conn, slo.CauseRoll, "", "bridge-and-roll traffic hit", "hit")
		c.k.After(hit, func() {
			c.connUp(conn, "roll-done")
			hitSp.End()
			oldWorking := conn.working()
			c.releaseLightpathMiddle(oldWorking)
			conn.path = bridge
			conn.onProtect = false
			conn.Rolls++
			c.ins.rolls.Inc()
			c.ins.rollHitSecs.ObserveDuration(hit)
			c.log(conn.ID, "roll-done", "traffic on %s (hit %v)", bridge.route.Path, hit)
			c.journalCommit(commitSet{reason: "roll", conns: []*Connection{conn}})
			out.Complete(nil)
		})
	})
	return out, nil
}

// Maintenance is a planned work window on one link.
type Maintenance struct {
	Link     topo.LinkID
	Window   sim.Duration
	Rolled   []ConnID
	Unmoved  []ConnID
	Finished bool
}

// ScheduleMaintenance plans work on a link at a future time: when the window
// opens, every active wavelength connection using the link is bridge-and-
// rolled off it; the link is then taken out of service for the window and
// returned afterwards. Connections that cannot be moved (no disjoint path)
// ride through the hit like an unplanned failure — exactly the impact
// GRIPhoN's automation is designed to avoid. The returned job completes when
// the link is back; the Maintenance record reports what was moved.
func (c *Controller) ScheduleMaintenance(link topo.LinkID, at sim.Time, window sim.Duration) (*Maintenance, *sim.Job, error) {
	if c.g.Link(link) == nil {
		return nil, nil, fmt.Errorf("core: unknown link %s", link)
	}
	if window <= 0 {
		return nil, nil, fmt.Errorf("core: non-positive maintenance window %v", window)
	}
	m := &Maintenance{Link: link, Window: window}
	out := c.k.NewJob()
	c.k.At(at, func() {
		c.log("", "maintenance-start", "link %s window %v", link, window)
		var rolls []*sim.Job
		for _, conn := range c.Connections() {
			if conn.Layer != LayerDWDM || conn.State != StateActive {
				continue
			}
			lp := conn.working()
			if lp == nil || !lp.route.Path.HasLink(link) {
				continue
			}
			job, err := c.bridgeAndRoll(conn, map[topo.LinkID]bool{link: true})
			if err != nil {
				m.Unmoved = append(m.Unmoved, conn.ID)
				c.log(conn.ID, "maintenance-hit", "cannot move off %s: %v", link, err)
				continue
			}
			m.Rolled = append(m.Rolled, conn.ID)
			rolls = append(rolls, job)
		}
		sim.All(c.k, rolls...).OnDone(func(error) {
			// Work starts once the moves are done (moved or not).
			c.startMaintenanceWindow(m, out)
		})
	})
	return m, out, nil
}

func (c *Controller) startMaintenanceWindow(m *Maintenance, out *sim.Job) {
	link := m.Link
	if c.plant.LinkUp(link) {
		// Anything still on the link takes an unplanned-style hit — but the
		// SLA ledger attributes it to planned work, not a plant failure.
		// Attribution happens synchronously inside CutFiber, so the marker
		// can be cleared immediately.
		c.maint[link] = true
		c.CutFiber(link) //lint:allow errcheck link verified at scheduling
		delete(c.maint, link)
	}
	c.k.After(m.Window, func() {
		if !c.plant.LinkUp(link) {
			c.RepairFiber(link) //lint:allow errcheck symmetric with cut
		}
		m.Finished = true
		c.log("", "maintenance-done", "link %s returned to service", link)
		out.Complete(nil)
	})
}

// Regroom re-provisions a connection onto the currently best route when that
// improves its path weight (paper §4: re-grooming after new routes are added
// reduces latency and off-loads original paths), using bridge-and-roll so the
// customer barely notices. It reports whether a move was made.
func (c *Controller) Regroom(cust inventory.Customer, id ConnID) (bool, *sim.Job, error) {
	conn := c.conns[id]
	if conn == nil {
		return false, nil, fmt.Errorf("core: unknown connection %s", id)
	}
	if err := c.ledger.Verify(cust, connKey(id)); err != nil {
		return false, nil, err
	}
	return c.regroom(conn)
}

// regroom moves conn onto a better disjoint path when one exists.
func (c *Controller) regroom(conn *Connection) (bool, *sim.Job, error) {
	if conn.Layer != LayerDWDM || conn.State != StateActive {
		return false, nil, fmt.Errorf("core: re-grooming needs an active wavelength connection")
	}
	old := conn.working()
	a, b := old.route.Path.Src(), old.route.Path.Dst()

	// Bridge-and-roll requires a disjoint new path, so the re-grooming
	// candidate is the best route that avoids the current links; move only
	// when that candidate actually improves the path weight.
	opt := c.rwaOpt
	avoid := map[topo.LinkID]bool{}
	for l := range opt.Constraints.AvoidLinks {
		avoid[l] = true
	}
	for _, l := range old.route.Path.Links {
		avoid[l] = true
	}
	opt.Constraints.AvoidLinks = avoid
	cand, err := rwa.FindRoute(c.plant, a, b, opt)
	if err != nil {
		return false, c.k.CompletedJob(nil), nil // no disjoint path: nothing to do
	}
	m := c.rwaOpt.Metric
	curW := rwa.PathWeight(c.g, old.route.Path, m)
	newW := rwa.PathWeight(c.g, cand.Path, m)
	if newW >= curW {
		return false, c.k.CompletedJob(nil), nil
	}
	job, err := c.bridgeAndRoll(conn, nil)
	if err != nil {
		return false, nil, err
	}
	c.log(conn.ID, "regroom", "weight %.0f -> %.0f (%v)", curW, newW, m)
	return true, job, nil
}

// RevertProtect switches a 1+1 connection's traffic back to its working leg
// after repair (fast tail-end switch, no bridge needed).
func (c *Controller) RevertProtect(cust inventory.Customer, id ConnID) (*sim.Job, error) {
	conn := c.conns[id]
	if conn == nil {
		return nil, fmt.Errorf("core: unknown connection %s", id)
	}
	if err := c.ledger.Verify(cust, connKey(id)); err != nil {
		return nil, err
	}
	if conn.Protect != OnePlusOne || !conn.onProtect {
		return nil, fmt.Errorf("core: connection %s is not riding its protect leg", id)
	}
	if conn.State != StateActive {
		return nil, fmt.Errorf("core: connection %s is %v", id, conn.State)
	}
	if conn.path == nil || !c.plant.PathUp(conn.path.route.Path) {
		return nil, fmt.Errorf("core: working leg of %s is not healthy", id)
	}
	out := c.k.NewJob()
	hit := c.jit(c.lat.ProtectionSwitch)
	c.connDown(conn, slo.CauseRoll, "", "revert to repaired working leg", "hit")
	c.k.After(hit, func() {
		c.connUp(conn, "revert-done")
		conn.onProtect = false
		c.log(id, "revert", "traffic back on working leg (hit %v)", hit)
		c.journalCommit(commitSet{reason: "revert-protect", conns: []*Connection{conn}})
		out.Complete(nil)
	})
	return out, nil
}
