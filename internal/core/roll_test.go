package core

import (
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func TestBridgeAndRollNearHitless(t *testing.T) {
	k, c := newTestbed(t, 50)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	oldRoute := conn.Route()
	outageBefore := conn.TotalOutage

	job, err := c.BridgeAndRoll("x", conn.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if conn.Route().Equal(oldRoute) {
		t.Error("route unchanged after roll")
	}
	if !conn.Route().LinkDisjoint(oldRoute) {
		t.Errorf("new route %s shares links with old %s (paper requires disjoint)", conn.Route(), oldRoute)
	}
	if conn.Rolls != 1 {
		t.Errorf("rolls = %d", conn.Rolls)
	}
	// The hit is the ~25 ms roll, nothing more.
	hit := conn.TotalOutage - outageBefore
	if hit <= 0 || hit > 100*time.Millisecond {
		t.Errorf("roll hit = %v, want ~25 ms (almost hitless)", hit)
	}
	// Old path resources released: only the new route's links hold spectrum.
	used := 0
	for _, l := range c.Graph().Links() {
		used += c.Plant().Spectrum(l.ID).Used()
	}
	if used != conn.Route().Hops() {
		t.Errorf("spectrum on %d links, want %d", used, conn.Route().Hops())
	}
	// The terminating OTs were reused, not doubled.
	if got := c.Snapshot().OTsInUse; got != 2 {
		t.Errorf("OTs in use = %d, want 2", got)
	}
}

func TestBridgeAndRollChecks(t *testing.T) {
	k, c := newTestbed(t, 51)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if _, err := c.BridgeAndRoll("y", conn.ID, nil); err == nil {
		t.Error("cross-customer roll accepted")
	}
	if _, err := c.BridgeAndRoll("x", "C9999", nil); err == nil {
		t.Error("unknown connection roll accepted")
	}
	circuit := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if _, err := c.BridgeAndRoll("x", circuit.ID, nil); err == nil {
		t.Error("roll of an OTN circuit accepted")
	}
	c.CutFiber(conn.Route().Links[0])
	if _, err := c.BridgeAndRoll("x", conn.ID, nil); err == nil {
		t.Error("roll of a down connection accepted")
	}
	k.Run()
}

func TestBridgeAndRollNoDisjointPath(t *testing.T) {
	k := sim.NewKernel(52)
	g := topo.New()
	g.AddNode(topo.Node{ID: "A", HasOTN: true})
	g.AddNode(topo.Node{ID: "B", HasOTN: true})
	g.AddLink(topo.Link{ID: "A-B", A: "A", B: "B", KM: 100})
	g.AddSite(topo.Site{ID: "S1", Home: "A", AccessGbps: 40})
	g.AddSite(topo.Site{ID: "S2", Home: "B", AccessGbps: 40})
	c, err := New(k, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "S1", To: "S2", Rate: bw.Rate10G})
	if _, err := c.BridgeAndRoll("x", conn.ID, nil); err == nil {
		t.Error("roll without a disjoint path accepted")
	}
}

func TestScheduledMaintenanceMovesTraffic(t *testing.T) {
	k, c := newTestbed(t, 53)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if conn.Route().String() != "I-IV" {
		t.Fatalf("route = %s", conn.Route())
	}
	outageBefore := conn.TotalOutage

	m, job, err := c.ScheduleMaintenance("I-IV", k.Now().Add(time.Hour), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if !m.Finished {
		t.Error("maintenance not finished")
	}
	if len(m.Rolled) != 1 || m.Rolled[0] != conn.ID {
		t.Errorf("rolled = %v", m.Rolled)
	}
	if len(m.Unmoved) != 0 {
		t.Errorf("unmoved = %v", m.Unmoved)
	}
	// The connection survived with only the roll hit, despite a 2-hour
	// link outage — that is the paper's "minimal impact during
	// maintenance".
	hit := conn.TotalOutage - outageBefore
	if hit > 100*time.Millisecond {
		t.Errorf("maintenance impact = %v, want ~25 ms", hit)
	}
	if conn.State != StateActive {
		t.Errorf("state = %v", conn.State)
	}
	// The link is back in service afterwards.
	if !c.Plant().LinkUp("I-IV") {
		t.Error("link not returned to service")
	}
}

func TestMaintenanceValidation(t *testing.T) {
	k, c := newTestbed(t, 54)
	if _, _, err := c.ScheduleMaintenance("nope", k.Now(), time.Hour); err == nil {
		t.Error("unknown link maintenance accepted")
	}
	if _, _, err := c.ScheduleMaintenance("I-IV", k.Now(), 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestMaintenanceHitsUnmovableConnection(t *testing.T) {
	k := sim.NewKernel(55)
	// Line topology: the connection cannot be moved off A-B.
	g := topo.New()
	g.AddNode(topo.Node{ID: "A", HasOTN: true})
	g.AddNode(topo.Node{ID: "B", HasOTN: true})
	g.AddLink(topo.Link{ID: "A-B", A: "A", B: "B", KM: 100})
	g.AddSite(topo.Site{ID: "S1", Home: "A", AccessGbps: 40})
	g.AddSite(topo.Site{ID: "S2", Home: "B", AccessGbps: 40})
	c, err := New(k, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "S1", To: "S2", Rate: bw.Rate10G})
	m, job, err := c.ScheduleMaintenance("A-B", k.Now().Add(time.Minute), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if len(m.Unmoved) != 1 || m.Unmoved[0] != conn.ID {
		t.Errorf("unmoved = %v", m.Unmoved)
	}
	// The unmovable connection took roughly the whole window as outage.
	if conn.TotalOutage < 30*time.Minute {
		t.Errorf("unmovable outage = %v, want ~1 h window", conn.TotalOutage)
	}
	if conn.State != StateActive {
		t.Errorf("state after window = %v", conn.State)
	}
}

func TestRegroomImprovesPath(t *testing.T) {
	k, c := newTestbed(t, 56)
	// Force the long 3-hop path by downing the better links, then repair
	// them: the connection stays on the long path until re-groomed — the
	// paper's "new routes become available" scenario.
	c.Plant().SetLinkUp("I-IV", false)
	c.Plant().SetLinkUp("I-III", false)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if conn.Route().Hops() != 3 {
		t.Fatalf("route = %s", conn.Route())
	}
	c.Plant().SetLinkUp("I-IV", true)
	c.Plant().SetLinkUp("I-III", true)

	moved, job, err := c.Regroom("x", conn.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("regroom did not move despite a better path")
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if conn.Route().Hops() != 1 {
		t.Errorf("route after regroom = %s, want I-IV", conn.Route())
	}
	// Second regroom is a no-op: already optimal.
	moved, job, err = c.Regroom("x", conn.ID)
	if err != nil || moved {
		t.Errorf("second regroom moved=%v err=%v", moved, err)
	}
	k.Run()
	if job.Err() != nil {
		t.Error(job.Err())
	}
}

func TestRegroomChecks(t *testing.T) {
	k, c := newTestbed(t, 57)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if _, _, err := c.Regroom("y", conn.ID); err == nil {
		t.Error("cross-customer regroom accepted")
	}
	if _, _, err := c.Regroom("x", "C9999"); err == nil {
		t.Error("unknown connection regroom accepted")
	}
	circuit := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
	if _, _, err := c.Regroom("x", circuit.ID); err == nil {
		t.Error("regroom of OTN circuit accepted")
	}
}

func TestRollDuringCutAborts(t *testing.T) {
	k, c := newTestbed(t, 58)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	job, err := c.BridgeAndRoll("x", conn.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the WORKING path mid-bridge: the roll must abort and
	// restoration takes over.
	k.RunFor(10 * time.Second)
	c.CutFiber(conn.Route().Links[0])
	k.Run()
	if job.Err() == nil {
		t.Error("roll job succeeded despite the connection going down")
	}
	if conn.State != StateActive {
		t.Errorf("state = %v, want active after restoration", conn.State)
	}
	if conn.Restorations != 1 {
		t.Errorf("restorations = %d", conn.Restorations)
	}
	// No resource leaks from the abandoned bridge.
	used := 0
	for _, l := range c.Graph().Links() {
		used += c.Plant().Spectrum(l.ID).Used()
	}
	if used != conn.Route().Hops() {
		t.Errorf("spectrum on %d links, want %d", used, conn.Route().Hops())
	}
}

func TestSnapshotAndString(t *testing.T) {
	k, c := newTestbed(t, 59)
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	s := c.Snapshot()
	if s.Active != 1 {
		t.Errorf("active = %d", s.Active)
	}
	if s.ChannelsInUse != 1 || s.OTsInUse != 2 {
		t.Errorf("plant usage: %+v", s)
	}
	out := s.String()
	if !contains(out, "active") || !contains(out, "OTs") {
		t.Errorf("Stats.String = %q", out)
	}
	c.Plant().SetLinkUp("I-II", false)
	if got := c.Snapshot().DownLinks; len(got) != 1 || got[0] != "I-II" {
		t.Errorf("down links = %v", got)
	}
	if !contains(c.Snapshot().String(), "down links") {
		t.Error("String omits down links")
	}
}

func TestStateAndEnumStrings(t *testing.T) {
	for s, want := range map[State]string{
		StatePending: "pending", StateActive: "active", StateDown: "down",
		StateRestoring: "restoring", StateTearingDown: "tearing-down", StateReleased: "released",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
	if State(99).String() == "" || Layer(99).String() == "" || Protection(99).String() == "" {
		t.Error("unknown enum strings empty")
	}
	if LayerDWDM.String() != "dwdm" || LayerOTN.String() != "otn" {
		t.Error("layer strings")
	}
	for p, want := range map[Protection]string{
		Restore: "restore", OnePlusOne: "1+1", Unprotected: "unprotected", SharedMesh: "shared-mesh",
	} {
		if p.String() != want {
			t.Errorf("protection %d = %q", int(p), p.String())
		}
	}
}
