package core

import (
	"fmt"

	"griphon/internal/inventory"
	"griphon/internal/sim"
)

// Booking is a calendar reservation for future bandwidth: the BoD pattern the
// paper's motivating workload implies (nightly replication windows). At the
// booked time the controller provisions the service; after the hold it tears
// it down again. The carrier gains exactly the planning visibility §4 asks
// for.
type Booking struct {
	// ID is the controller-assigned booking number.
	ID   int
	Req  Request
	At   sim.Time
	Hold sim.Duration

	// Conns holds the provisioned components once setup starts.
	Conns []*Connection
	// SetupErr records a failed provisioning attempt.
	SetupErr error
	// CloseErr records the error (if any) hit while closing the window —
	// a component whose Disconnect kept failing after retries.
	CloseErr error
	// Done completes when every component has been released (or setup
	// failed).
	Done *sim.Job

	// phase tracks the booking through its lifecycle (persist.go).
	phase int
	// closing marks a close in flight (transient, never journaled): an
	// early cancel and the hold timer must not both tear the window down.
	closing bool
	// closeAt is when the window closes, fixed once setup completes.
	closeAt sim.Time
}

// ScheduleConnect books req for a window starting at `at` and lasting `hold`.
// Validation of sites/rate happens now; resource admission happens when the
// window opens (booked resources are not idle-reserved — the pool stays
// shared, which is the entire BoD economics).
func (c *Controller) ScheduleConnect(req Request, at sim.Time, hold sim.Duration) (*Booking, error) {
	if req.Customer == "" {
		return nil, fmt.Errorf("core: empty customer")
	}
	if _, err := PlaceRate(req.Rate); err != nil {
		return nil, err
	}
	if _, err := c.siteHome(req.From); err != nil {
		return nil, err
	}
	if _, err := c.siteHome(req.To); err != nil {
		return nil, err
	}
	if at.Before(c.k.Now()) {
		return nil, fmt.Errorf("core: booking time %v is in the past", at)
	}
	if hold <= 0 {
		return nil, fmt.Errorf("core: non-positive hold %v", hold)
	}

	b := &Booking{ID: c.nextBooking, Req: req, At: at, Hold: hold, Done: c.k.NewJob()}
	c.nextBooking++
	c.bookings[b.ID] = b
	c.scheduleOpen(b)
	c.log("", "booking", "%s %s->%s %v at %v for %v", req.Customer, req.From, req.To, req.Rate, at, hold)
	c.journalCommit(commitSet{reason: "booking", bookings: []*Booking{b}})
	return b, nil
}

// scheduleOpen arms the window-open timer; a booking whose start time has
// already passed (recovery after an outage spanning it) opens immediately.
func (c *Controller) scheduleOpen(b *Booking) {
	if b.At.Before(c.k.Now()) {
		c.k.Defer(func() { c.openBooking(b) })
		return
	}
	c.k.At(b.At, func() { c.openBooking(b) })
}

func (c *Controller) openBooking(b *Booking) {
	if b.phase != bookingPending {
		return // cancelled before the window opened; the timer is a no-op
	}
	conns, job, err := c.ConnectComposite(b.Req)
	if err != nil {
		b.SetupErr = err
		b.phase = bookingFailed
		c.log("", "booking-blocked", "%s %s->%s %v: %v", b.Req.Customer, b.Req.From, b.Req.To, b.Req.Rate, err)
		c.journalCommit(commitSet{reason: "booking-blocked", bookings: []*Booking{b}})
		b.Done.Complete(err)
		return
	}
	b.Conns = conns
	job.OnDone(func(err error) {
		if err != nil {
			b.SetupErr = err
			// One component failing must not strand the siblings that did
			// come up: the window is dead, so release everything still
			// holding resources before reporting the failure.
			var tds []*sim.Job
			for _, conn := range b.Conns {
				if conn.State == StateReleased || conn.State == StateTearingDown {
					continue
				}
				if j, derr := c.Disconnect(b.Req.Customer, conn.ID); derr == nil {
					tds = append(tds, j)
				}
			}
			sim.All(c.k, tds...).OnDone(func(error) {
				b.phase = bookingFailed
				c.log("", "booking-failed", "%s: setup failed, %d components released: %v",
					b.Req.Customer, len(tds), err)
				c.journalCommit(commitSet{reason: "booking-failed", bookings: []*Booking{b}})
				b.Done.Complete(err)
			})
			return
		}
		b.phase = bookingOpen
		b.closeAt = c.k.Now().Add(b.Hold)
		c.journalCommit(commitSet{reason: "booking-open", bookings: []*Booking{b}})
		c.k.After(b.Hold, func() { c.closeBooking(b) })
	})
}

// CancelBooking ends cust's booking early: a pending window is descheduled
// before it opens, an open one has its components released now. Ownership is
// verified the same way Booking is, so a guessed ID belonging to another
// tenant reads as unknown. The returned job completes when every component is
// released (immediately for a pending booking).
func (c *Controller) CancelBooking(cust inventory.Customer, id int) (*sim.Job, error) {
	b, err := c.Booking(cust, id)
	if err != nil {
		return nil, err
	}
	switch b.phase {
	case bookingPending:
		b.phase = bookingClosed
		c.log("", "booking-cancel", "%s cancelled booking %d before its window", cust, id)
		c.journalCommit(commitSet{reason: "booking-cancel", bookings: []*Booking{b}})
		b.Done.Complete(nil)
		return b.Done, nil
	case bookingOpen:
		c.log("", "booking-cancel", "%s closing booking %d early", cust, id)
		c.closeBooking(b)
		return b.Done, nil
	default:
		return nil, fmt.Errorf("core: booking %d already finished", id)
	}
}

func (c *Controller) closeBooking(b *Booking) {
	if b.phase != bookingOpen || b.closing {
		return // cancelled, closing, or closed; the hold timer is a no-op
	}
	b.closing = true
	var jobs []*sim.Job
	for _, conn := range b.Conns {
		if conn.State == StateReleased || conn.State == StateTearingDown {
			continue // already gone, or another teardown owns it
		}
		jobs = append(jobs, c.closeBookingConn(b, conn))
	}
	sim.All(c.k, jobs...).OnDone(func(err error) {
		b.phase = bookingClosed
		b.CloseErr = err
		if err != nil {
			c.log("", "booking-close-failed", "%s: %v", b.Req.Customer, err)
		}
		c.journalCommit(commitSet{reason: "booking-close", bookings: []*Booking{b}})
		b.Done.Complete(err)
	})
}

// closeBookingConn releases one booking component, retrying synchronous
// Disconnect refusals on the retry policy's backoff schedule. Every refusal
// is counted and logged; if the policy is exhausted the error is surfaced
// through the booking instead of being swallowed — a leaked connection bills
// the customer for capacity they no longer want.
func (c *Controller) closeBookingConn(b *Booking, conn *Connection) *sim.Job {
	out := c.k.NewJob()
	c.tryCloseBookingConn(b, conn, 1, c.retry.BaseBackoff, out)
	return out
}

func (c *Controller) tryCloseBookingConn(b *Booking, conn *Connection, attempt int, backoff sim.Duration, out *sim.Job) {
	if conn.State == StateReleased || conn.State == StateTearingDown {
		out.Complete(nil) // released (or releasing) between attempts
		return
	}
	job, err := c.Disconnect(b.Req.Customer, conn.ID)
	if err == nil {
		job.OnDone(func(err error) { out.Complete(err) })
		return
	}
	c.ins.bookingCloseErrs.Inc()
	c.log(conn.ID, "booking-close-error", "attempt %d: %v", attempt, err)
	if attempt >= c.retry.MaxAttempts {
		out.Complete(fmt.Errorf("core: closing booking %d component %s: %w", b.ID, conn.ID, err))
		return
	}
	next := backoff * 2
	if next > c.retry.MaxBackoff {
		next = c.retry.MaxBackoff
	}
	c.k.After(backoff, func() { c.tryCloseBookingConn(b, conn, attempt+1, next, out) })
}
