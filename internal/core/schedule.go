package core

import (
	"fmt"

	"griphon/internal/sim"
)

// Booking is a calendar reservation for future bandwidth: the BoD pattern the
// paper's motivating workload implies (nightly replication windows). At the
// booked time the controller provisions the service; after the hold it tears
// it down again. The carrier gains exactly the planning visibility §4 asks
// for.
type Booking struct {
	Req  Request
	At   sim.Time
	Hold sim.Duration

	// Conns holds the provisioned components once setup starts.
	Conns []*Connection
	// SetupErr records a failed provisioning attempt.
	SetupErr error
	// Done completes when every component has been released (or setup
	// failed).
	Done *sim.Job
}

// ScheduleConnect books req for a window starting at `at` and lasting `hold`.
// Validation of sites/rate happens now; resource admission happens when the
// window opens (booked resources are not idle-reserved — the pool stays
// shared, which is the entire BoD economics).
func (c *Controller) ScheduleConnect(req Request, at sim.Time, hold sim.Duration) (*Booking, error) {
	if req.Customer == "" {
		return nil, fmt.Errorf("core: empty customer")
	}
	if _, err := PlaceRate(req.Rate); err != nil {
		return nil, err
	}
	if _, err := c.siteHome(req.From); err != nil {
		return nil, err
	}
	if _, err := c.siteHome(req.To); err != nil {
		return nil, err
	}
	if at.Before(c.k.Now()) {
		return nil, fmt.Errorf("core: booking time %v is in the past", at)
	}
	if hold <= 0 {
		return nil, fmt.Errorf("core: non-positive hold %v", hold)
	}

	b := &Booking{Req: req, At: at, Hold: hold, Done: c.k.NewJob()}
	c.k.At(at, func() { c.openBooking(b) })
	c.log("", "booking", "%s %s->%s %v at %v for %v", req.Customer, req.From, req.To, req.Rate, at, hold)
	return b, nil
}

func (c *Controller) openBooking(b *Booking) {
	conns, job, err := c.ConnectComposite(b.Req)
	if err != nil {
		b.SetupErr = err
		c.log("", "booking-blocked", "%s %s->%s %v: %v", b.Req.Customer, b.Req.From, b.Req.To, b.Req.Rate, err)
		b.Done.Complete(err)
		return
	}
	b.Conns = conns
	job.OnDone(func(err error) {
		if err != nil {
			b.SetupErr = err
			b.Done.Complete(err)
			return
		}
		c.k.After(b.Hold, func() { c.closeBooking(b) })
	})
}

func (c *Controller) closeBooking(b *Booking) {
	var jobs []*sim.Job
	for _, conn := range b.Conns {
		if conn.State != StateActive && conn.State != StateDown {
			continue
		}
		job, err := c.Disconnect(b.Req.Customer, conn.ID)
		if err != nil {
			continue
		}
		jobs = append(jobs, job)
	}
	sim.All(c.k, jobs...).OnDone(func(err error) { b.Done.Complete(err) })
}
