package core

import (
	"errors"
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func TestScheduleConnectWindow(t *testing.T) {
	k, c := newTestbed(t, 80)
	at := k.Now().Add(10 * time.Hour)
	b, err := c.ScheduleConnect(Request{
		Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G,
	}, at, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing is provisioned before the window.
	k.RunUntil(at.Add(-time.Minute))
	if len(b.Conns) != 0 {
		t.Fatal("booking provisioned early")
	}
	if got := c.Snapshot().Active; got != 0 {
		t.Fatalf("active before window = %d", got)
	}
	// Inside the window it is up.
	k.RunUntil(at.Add(time.Hour))
	if len(b.Conns) != 1 || b.Conns[0].State != StateActive {
		t.Fatalf("booking not active inside window: %+v", b.Conns)
	}
	// After the hold it is gone and everything is released.
	k.Run()
	if !b.Done.Done() || b.Done.Err() != nil {
		t.Fatalf("booking done=%v err=%v", b.Done.Done(), b.Done.Err())
	}
	if b.Conns[0].State != StateReleased {
		t.Errorf("state after window = %v", b.Conns[0].State)
	}
	s := c.Snapshot()
	if s.ChannelsInUse != 0 || s.OTsInUse != 0 {
		t.Errorf("booking leaked: %+v", s)
	}
	// The hold ran from activation, roughly 6 h of uptime.
	up := b.Conns[0].ReleasedAt.Sub(b.Conns[0].ActiveAt)
	if up < 6*time.Hour || up > 6*time.Hour+time.Minute {
		t.Errorf("uptime = %v, want ~6 h", up)
	}
}

func TestScheduleConnectComposite(t *testing.T) {
	k, c := newTestbed(t, 81)
	b, err := c.ScheduleConnect(Request{
		Customer: "x", From: "DC-A", To: "DC-B", Rate: 12 * bw.Gbps,
	}, k.Now().Add(time.Hour), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if b.Done.Err() != nil {
		t.Fatal(b.Done.Err())
	}
	if len(b.Conns) != 3 {
		t.Errorf("components = %d", len(b.Conns))
	}
	// Customer resources are gone; only the carrier's groomable pipe (one
	// wavelength + its OTs) deliberately survives for future circuits.
	s := c.Snapshot()
	if s.SlotsInUse != 0 {
		t.Errorf("ODU slots leaked: %+v", s)
	}
	if s.Pipes != 1 || s.InternalConns != 1 {
		t.Errorf("pipe should survive the booking: %+v", s)
	}
	// Reclaiming idle pipes returns the wavelength too.
	job, n := c.ReclaimIdlePipes()
	if n != 1 {
		t.Fatalf("reclaimed %d pipes, want 1", n)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	s = c.Snapshot()
	if s.Pipes != 0 || s.ChannelsInUse != 0 || s.OTsInUse != 0 {
		t.Errorf("reclaim incomplete: %+v", s)
	}
}

func TestScheduleConnectValidation(t *testing.T) {
	k, c := newTestbed(t, 82)
	good := Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G}
	if _, err := c.ScheduleConnect(Request{From: "DC-A", To: "DC-C", Rate: bw.Rate10G}, k.Now().Add(time.Hour), time.Hour); err == nil {
		t.Error("empty customer accepted")
	}
	bad := good
	bad.Rate = 500 * bw.Mbps
	if _, err := c.ScheduleConnect(bad, k.Now().Add(time.Hour), time.Hour); err == nil {
		t.Error("sub-1G booking accepted")
	}
	bad = good
	bad.From = "DC-Z"
	if _, err := c.ScheduleConnect(bad, k.Now().Add(time.Hour), time.Hour); err == nil {
		t.Error("unknown site accepted")
	}
	k.RunFor(time.Hour)
	if _, err := c.ScheduleConnect(good, sim.Time(0), time.Hour); err == nil {
		t.Error("past booking accepted")
	}
	if _, err := c.ScheduleConnect(good, k.Now().Add(time.Hour), 0); err == nil {
		t.Error("zero hold accepted")
	}
}

func TestScheduleConnectBlockedWindow(t *testing.T) {
	k := sim.NewKernel(83)
	cfg := Config{}
	cfg.Optics.Channels = 80
	cfg.Optics.ReachKM = 2500
	cfg.Optics.OTsPerNode = 2
	c, err := New(k, topo.Testbed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy all OTs at I before the window opens.
	mustConnect(t, k, c, Request{Customer: "hog", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	mustConnect(t, k, c, Request{Customer: "hog", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})

	b, err := c.ScheduleConnect(Request{
		Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G,
	}, k.Now().Add(time.Hour), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if b.SetupErr == nil || b.Done.Err() == nil {
		t.Error("blocked booking reported success")
	}
}

func TestAutoRevertAfterRepair(t *testing.T) {
	k := sim.NewKernel(84)
	c, err := New(k, topo.Testbed(), Config{AutoRevert: true})
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if conn.Route().String() != "I-IV" {
		t.Fatalf("route = %s", conn.Route())
	}
	c.CutFiber("I-IV")
	k.Run()
	if conn.Route().String() == "I-IV" || conn.Restorations != 1 {
		t.Fatalf("restoration missing: route=%s restores=%d", conn.Route(), conn.Restorations)
	}
	// Repair: auto-revert moves it back almost hitlessly.
	outageBefore := conn.TotalOutage
	c.RepairFiber("I-IV")
	k.Run()
	if conn.Route().String() != "I-IV" {
		t.Errorf("route after repair = %s, want reverted to I-IV", conn.Route())
	}
	if conn.Rolls != 1 {
		t.Errorf("rolls = %d, want 1 (the reversion)", conn.Rolls)
	}
	hit := conn.TotalOutage - outageBefore
	if hit > 100*time.Millisecond {
		t.Errorf("reversion hit = %v", hit)
	}
}

func TestNoAutoRevertByDefault(t *testing.T) {
	k, c := newTestbed(t, 85)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	c.CutFiber("I-IV")
	k.Run()
	restored := conn.Route().String()
	c.RepairFiber("I-IV")
	k.Run()
	if conn.Route().String() != restored {
		t.Errorf("route moved without AutoRevert: %s -> %s", restored, conn.Route())
	}
}

func TestEMSFailureUnwindsSetup(t *testing.T) {
	k, c := newTestbed(t, 86)
	boom := errors.New("vendor EMS timeout")
	c.ROADMEMS().InjectFailures(1, boom)
	conn, job, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() == nil {
		t.Fatal("setup succeeded despite EMS failure")
	}
	if conn.State != StateReleased {
		t.Errorf("state = %v, want released", conn.State)
	}
	s := c.Snapshot()
	if s.ChannelsInUse != 0 || s.OTsInUse != 0 {
		t.Errorf("EMS failure leaked resources: %+v", s)
	}
	if c.AccessUsed("DC-A") != 0 {
		t.Error("access leaked")
	}
	if u := c.Ledger().UsageOf("x"); u.Connections != 0 {
		t.Errorf("ledger leaked: %+v", u)
	}
	// ROADM layer clean too.
	total := 0
	for _, n := range c.Graph().Nodes() {
		total += c.ROADMs().Node(n.ID).AddDropUsed()
	}
	if total != 0 {
		t.Errorf("ROADM state leaked: %d terminations", total)
	}
	// The next attempt (no injection) succeeds.
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
}

func TestEMSFailureDuringRestorationLeavesConnDown(t *testing.T) {
	k, c := newTestbed(t, 87)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	// Fail the restoration's EMS batch.
	c.CutFiber(conn.Route().Links[0])
	c.ROADMEMS().InjectFailures(20, errors.New("EMS down"))
	k.Run()
	if conn.State != StateDown {
		t.Fatalf("state = %v, want down after failed restoration", conn.State)
	}
	// Repair revives it on the original path.
	c.ROADMEMS().InjectFailures(0, nil)
	c.RepairFiber(conn.Route().Links[0])
	k.Run()
	if conn.State != StateActive {
		t.Errorf("state after repair = %v", conn.State)
	}
}
