package core

import (
	"fmt"

	"griphon/internal/bw"
	"griphon/internal/faults"
	"griphon/internal/fxc"
	"griphon/internal/inventory"
	"griphon/internal/obs"
	"griphon/internal/optics"
	"griphon/internal/otn"
	"griphon/internal/rwa"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// CarrierCustomer owns internal connections (OTN pipe carriers).
const CarrierCustomer inventory.Customer = "carrier"

// Request asks for one connection between two data-center sites.
type Request struct {
	Customer inventory.Customer
	From, To topo.SiteID
	Rate     bw.Rate
	// Protect defaults to Restore for wavelengths; OTN circuits get
	// SharedMesh (their native scheme) unless explicitly Unprotected.
	Protect Protection
}

// ErrUseComposite is returned by Connect for rates that need both layers;
// callers should use ConnectComposite (or the service layer does).
var ErrUseComposite = fmt.Errorf("core: rate needs a composite (multi-connection) service")

// PlaceRate implements the Fig. 2 service placement: where a guaranteed-
// bandwidth request of the given rate lands. It returns the component rates
// of the decomposition (a single element when one connection suffices).
// Requests below 1G belong to the IP/EVC layer, which GRIPhoN does not carry.
func PlaceRate(rate bw.Rate) ([]bw.Rate, error) {
	switch {
	case rate <= 0:
		return nil, fmt.Errorf("core: non-positive rate %v", rate)
	case rate < bw.Rate1G:
		return nil, fmt.Errorf("core: rate %v belongs to the IP/EVC layer (below 1G)", rate)
	case rate < bw.Rate10G:
		return []bw.Rate{rate}, nil // single OTN circuit
	case rate == bw.Rate10G || rate == bw.Rate40G:
		return []bw.Rate{rate}, nil // single wavelength
	}
	// Composite: whole wavelengths greedily, then 1G OTN circuits for the
	// remainder (paper §2.2's example: 12G = one 10G wavelength + 2x1G).
	var parts []bw.Rate
	rem := rate
	for rem >= bw.Rate40G {
		parts = append(parts, bw.Rate40G)
		rem -= bw.Rate40G
	}
	for rem >= bw.Rate10G {
		parts = append(parts, bw.Rate10G)
		rem -= bw.Rate10G
	}
	for rem > 0 {
		parts = append(parts, bw.Rate1G)
		rem -= bw.Rate1G
	}
	return parts, nil
}

// layerFor returns the realization layer for a single component rate.
func layerFor(rate bw.Rate) Layer {
	if rate == bw.Rate10G || rate == bw.Rate40G {
		return LayerDWDM
	}
	return LayerOTN
}

// Connect provisions a single connection. It performs admission and resource
// reservation synchronously — a blocked request fails immediately, with
// nothing leaked — and returns the pending connection plus the job that
// completes when EMS configuration finishes and the connection is Active.
func (c *Controller) Connect(req Request) (*Connection, *sim.Job, error) {
	if req.Customer == "" {
		return nil, nil, fmt.Errorf("core: empty customer")
	}
	parts, err := PlaceRate(req.Rate)
	if err != nil {
		return nil, nil, err
	}
	if len(parts) > 1 {
		return nil, nil, fmt.Errorf("%w: %v -> %v", ErrUseComposite, req.Rate, parts)
	}
	siteA, err := c.siteHome(req.From)
	if err != nil {
		return nil, nil, err
	}
	siteB, err := c.siteHome(req.To)
	if err != nil {
		return nil, nil, err
	}
	if siteA.ID == siteB.ID {
		return nil, nil, fmt.Errorf("core: source and destination site are both %s", siteA.ID)
	}
	if siteA.Home == siteB.Home {
		return nil, nil, fmt.Errorf("core: sites %s and %s share home PoP %s; no core connection needed", siteA.ID, siteB.ID, siteA.Home)
	}

	layer := layerFor(req.Rate)
	protect := req.Protect
	switch layer {
	case LayerDWDM:
		if protect == SharedMesh {
			return nil, nil, fmt.Errorf("core: shared-mesh protection is an OTN-layer scheme")
		}
	case LayerOTN:
		switch protect {
		case Restore:
			protect = SharedMesh // the OTN layer's native restoration
		case OnePlusOne:
			return nil, nil, fmt.Errorf("core: 1+1 protection is not offered on OTN circuits")
		}
	}

	// Admission: quota, access pipes and the connection claim accumulate in
	// one transaction, so any later failure returns them in LIFO order.
	adm := inventory.NewTxn()
	if err := adm.Do(
		func() error { return c.ledger.Admit(req.Customer, req.Rate) },
		func() { c.ledger.Discharge(req.Customer, req.Rate) }, //lint:allow errcheck undoing our own admit
	); err != nil {
		adm.Rollback()
		c.ins.blockedAdmission.Inc()
		return nil, nil, err
	}
	if err := adm.Do(
		func() error { return c.reserveAccess(siteA, siteB, req.Rate) },
		func() { c.releaseAccess(siteA.ID, siteB.ID, req.Rate) },
	); err != nil {
		adm.Rollback()
		c.ins.blockedAdmission.Inc()
		return nil, nil, err
	}

	conn := &Connection{
		ID:          c.newConnID(),
		Customer:    req.Customer,
		From:        siteA.ID,
		To:          siteB.ID,
		Rate:        req.Rate,
		Layer:       layer,
		Protect:     protect,
		State:       StatePending,
		RequestedAt: c.k.Now(),
	}
	if err := adm.Do(
		func() error { return c.ledger.Claim(req.Customer, connKey(conn.ID)) },
		func() { c.ledger.Release(req.Customer, connKey(conn.ID)) }, //lint:allow errcheck undoing our own claim
	); err != nil {
		adm.Rollback()
		return nil, nil, err
	}
	conn.opSpan = c.tr.Start(obs.SpanRef{}, "op:setup")
	conn.opSpan.SetConn(string(conn.ID), string(conn.Customer), layer.String())

	var job *sim.Job
	switch layer {
	case LayerDWDM:
		job, err = c.connectWavelength(conn, siteA.Home, siteB.Home)
	case LayerOTN:
		job, err = c.connectCircuit(conn, siteA.Home, siteB.Home)
	}
	if err != nil {
		conn.opSpan.EndErr(err)
		c.ins.blockedRoute.Inc()
		adm.Rollback()
		return nil, nil, err
	}
	adm.Commit()
	c.conns[conn.ID] = conn
	c.log(conn.ID, "request", "%s %s->%s %v %v %v", conn.Customer, conn.From, conn.To, conn.Rate, conn.Layer, conn.Protect)
	return conn, job, nil
}

func connKey(id ConnID) string { return "conn:" + string(id) }

// wavelengthAlternates bounds how many alternate routes a setup tries after a
// path-level EMS failure before degrading to the OTN layer or giving up.
const wavelengthAlternates = 2

// connectWavelength reserves and configures a DWDM-layer connection, walking
// the degradation ladder when the network will not cooperate: transient EMS
// faults are retried inside the setup job; a path that keeps failing is
// abandoned for the next candidate route; and when every route is exhausted
// (or none exists to begin with), a 10G request may be delivered as a groomed
// OTN circuit instead of hard-blocking (Config.DegradeToOTN).
func (c *Controller) connectWavelength(conn *Connection, a, b topo.NodeID) (*sim.Job, error) {
	lp, err := c.reserveLightpath(conn.ID, a, b, conn.Rate, conn.Protect, nil, nil, true, conn.opSpan)
	if err != nil {
		// No route or wavelength at admission: the ladder's last rung.
		if job, derr := c.degradeToGroomed(conn, a, b, err); derr == nil {
			return job, nil
		}
		return nil, err
	}

	if conn.Protect == OnePlusOne {
		conn.path = lp
		avoid := map[topo.LinkID]bool{}
		for _, l := range lp.route.Path.Links {
			avoid[l] = true
		}
		plp, err := c.reserveLightpath(conn.ID, a, b, conn.Rate, conn.Protect, avoid, nil, false, conn.opSpan)
		if err != nil {
			c.releaseLightpath(conn.ID, lp)
			conn.path = nil
			return nil, fmt.Errorf("core: no disjoint protect path: %w", err)
		}
		conn.protect = plp
		// 1+1 legs stand or fall together — a failed leg means the paid-for
		// protection cannot be delivered, so no ladder here.
		job := sim.All(c.k, c.lightpathSetupJob(lp, conn.opSpan), c.lightpathSetupJob(plp, conn.opSpan))
		job.OnDone(func(err error) { c.finishSetup(conn, err) })
		return job, nil
	}

	out := c.k.NewJob()
	c.attemptWavelengthSetup(conn, a, b, lp, nil, wavelengthAlternates, out)
	return out, nil
}

// attemptWavelengthSetup runs the EMS choreography for one candidate
// lightpath and, when it fails while the connection is still pending, drops
// one rung down the ladder: release the path, reserve the next candidate
// avoiding every link that failed on ANY earlier attempt (avoid accumulates
// across the ladder's rungs — an earlier rung's poisoned links must not be
// revisited just because a different path failed since), and try again — up
// to `alternates` reroutes, then the OTN grooming fallback.
func (c *Controller) attemptWavelengthSetup(conn *Connection, a, b topo.NodeID, lp *lightpath, avoid map[topo.LinkID]bool, alternates int, out *sim.Job) {
	conn.path = lp
	c.lightpathSetupJob(lp, conn.opSpan).OnDone(func(err error) {
		if err == nil || conn.State != StatePending || !faults.IsFault(err) {
			// Success, torn down mid-setup, or a plain (non-fault-model)
			// error — those signal controller logic problems, and papering
			// over them with a reroute would hide real bugs.
			c.finishSetup(conn, err)
			out.Complete(err)
			return
		}
		// Path-level EMS fault; transient faults were already retried
		// inside the setup job, so this path is not worth more attempts.
		c.log(conn.ID, "setup-fallback", "path %s failed: %v", lp.route.Path, err)
		c.releaseLightpath(conn.ID, lp)
		conn.path = nil
		if avoid == nil {
			avoid = map[topo.LinkID]bool{}
		}
		for _, l := range lp.route.Path.Links {
			avoid[l] = true
		}
		if alternates > 0 {
			if alt, rerr := c.reserveLightpath(conn.ID, a, b, conn.Rate, conn.Protect, avoid, nil, true, conn.opSpan); rerr == nil {
				c.ins.setupRerouted.Inc()
				c.log(conn.ID, "setup-reroute", "retrying on candidate %s", alt.route.Path)
				c.attemptWavelengthSetup(conn, a, b, alt, avoid, alternates-1, out)
				return
			}
		}
		if job, derr := c.degradeToGroomed(conn, a, b, err); derr == nil {
			job.OnDone(func(err error) { out.Complete(err) })
			return
		}
		c.finishSetup(conn, err)
		out.Complete(err)
	})
}

// degradeToGroomed delivers a blocked or persistently-failing 10G wavelength
// request as a groomed OTN circuit — the ladder's last rung: sub-wavelength
// service on the paper's Fig. 2 placement, pressed into duty when the DWDM
// layer cannot deliver a whole wavelength. It returns the original cause when
// degradation is off or inapplicable: 40G cannot degrade (pipes are ODU2 —
// 8 tributary slots — and a 40G circuit needs an ODU3), and 1+1 requests
// never do (the paid-for dedicated protection has no OTN equivalent).
func (c *Controller) degradeToGroomed(conn *Connection, a, b topo.NodeID, cause error) (*sim.Job, error) {
	if !c.degradeToOTN || conn.Internal || conn.Rate != bw.Rate10G || conn.Protect == OnePlusOne {
		return nil, cause
	}
	prevLayer, prevProtect := conn.Layer, conn.Protect
	conn.Layer = LayerOTN
	if conn.Protect == Restore {
		conn.Protect = SharedMesh // the OTN layer's native scheme
	}
	job, err := c.connectCircuit(conn, a, b)
	if err != nil {
		conn.Layer, conn.Protect = prevLayer, prevProtect
		return nil, cause
	}
	conn.Degraded = true
	c.ins.setupGroomed.Inc()
	c.log(conn.ID, "setup-degraded", "wavelength unavailable (%v); degrading to a groomed OTN circuit", cause)
	return job, nil
}

// finishSetup transitions a pending connection to Active (or unwinds it on an
// EMS failure).
func (c *Controller) finishSetup(conn *Connection, err error) {
	if conn.State != StatePending {
		return // torn down mid-setup
	}
	if err != nil {
		conn.opSpan.EndErr(err)
		c.ins.setupFailed[conn.Layer].Inc()
		c.log(conn.ID, "setup-failed", "%v", err)
		pipes := touchedPipes(conn)
		c.releaseConnResources(conn)
		conn.State = StateReleased
		conn.stable = StateReleased
		conn.ReleasedAt = c.k.Now()
		c.journalCommit(commitSet{reason: "setup-failed", conns: []*Connection{conn}, pipes: pipes})
		return
	}
	conn.State = StateActive
	conn.stable = StateActive
	conn.ActiveAt = c.k.Now()
	conn.metering = true
	conn.meterAt = c.k.Now()
	c.sla.Activate(string(conn.ID), string(conn.Customer), c.k.Now(), conn.Degraded, conn.Internal)
	conn.opSpan.End()
	if conn.Internal {
		c.ins.pipeBuilds.Inc()
	} else {
		c.ins.setupOK[conn.Layer].Inc()
		c.ins.setupSecs[conn.Layer].ObserveDuration(conn.SetupTime())
	}
	c.log(conn.ID, "active", "setup took %v", conn.SetupTime())
	c.journalCommit(commitSet{reason: "setup", conns: []*Connection{conn}, pipes: touchedPipes(conn)})
}

// touchedPipes snapshots the pipes a connection's commit record must carry
// alongside it (working path and shared backup), captured before any release
// nils the slices.
func touchedPipes(conn *Connection) []*otn.Pipe {
	out := append([]*otn.Pipe(nil), conn.pipes...)
	return append(out, conn.backup...)
}

// reserveLightpath finds a route and atomically reserves everything it needs.
// reuse, when non-nil, supplies the terminating OTs and FXC ports of an
// existing lightpath (restoration and bridge-and-roll keep the ends, only the
// middle changes). withFXC selects whether FXC client/line ports are part of
// this lightpath (the 1+1 protect leg bridges inside the NTE instead).
//
// With Config.PathCache on, unconstrained requests (no caller avoid set, no
// reuse — the common cold-start and repeat-customer shape) are answered from
// the path cache when possible, skipping the K-shortest search and
// regeneration planning; the lightpath is marked cached so the choreography
// charges the reduced controller overhead. A cached route that can no longer
// be reserved (spectrum filled up meanwhile) falls through to the full
// search.
func (c *Controller) reserveLightpath(id ConnID, a, b topo.NodeID, rate bw.Rate, protect Protection, avoid map[topo.LinkID]bool, reuse *lightpath, withFXC bool, parent obs.SpanRef) (*lightpath, error) {
	cacheable := c.pcache != nil && len(avoid) == 0 && reuse == nil
	if cacheable {
		key := pathKey{a: a, b: b, rate: rate, protect: protect}
		if route, ok := c.pcacheLookup(key); ok {
			c.ins.pathcacheHits.Inc()
			sp := c.tr.Start(parent, "rwa:cache-hit")
			lp, err := c.reserveOnRoute(id, route, rate, reuse, withFXC)
			sp.EndErr(err)
			if err == nil {
				lp.cached = true
				return lp, nil
			}
			// Fall through to the full search below.
		} else {
			c.ins.pathcacheMisses.Inc()
		}
	}

	opt := c.rwaOpt
	opt.Rate = rate
	merged := map[topo.LinkID]bool{}
	for l := range opt.Constraints.AvoidLinks {
		merged[l] = true
	}
	for l := range avoid {
		merged[l] = true
	}
	opt.Constraints.AvoidLinks = merged

	sp := c.tr.Start(parent, "rwa:search")
	route, err := rwa.FindRoute(c.plant, a, b, opt)
	sp.EndErr(err)
	if err != nil {
		return nil, err
	}
	rsp := c.tr.Start(parent, "reserve")
	lp, err := c.reserveOnRoute(id, route, rate, reuse, withFXC)
	rsp.EndErr(err)
	if err == nil && cacheable {
		c.pcacheStore(pathKey{a: a, b: b, rate: rate, protect: protect}, route)
	}
	return lp, err
}

// reserveOnRoute reserves devices, spectrum and ports for an already chosen
// route, atomically.
func (c *Controller) reserveOnRoute(id ConnID, route rwa.Route, rate bw.Rate, reuse *lightpath, withFXC bool) (*lightpath, error) {
	a, b := route.Path.Src(), route.Path.Dst()
	lp := &lightpath{route: route}
	txn := inventory.NewTxn()
	defer txn.Rollback()

	if reuse != nil {
		lp.ots = reuse.ots
		lp.portsA = reuse.portsA
		lp.portsB = reuse.portsB
	} else {
		otA, err := inventory.Reserve(txn,
			func() (*optics.OT, error) { return c.plant.OTs(a).Alloc(rate) },
			func(ot *optics.OT) { c.plant.OTs(a).Release(ot) }) //lint:allow errcheck rollback
		if err != nil {
			return nil, err
		}
		otB, err := inventory.Reserve(txn,
			func() (*optics.OT, error) { return c.plant.OTs(b).Alloc(rate) },
			func(ot *optics.OT) { c.plant.OTs(b).Release(ot) }) //lint:allow errcheck rollback
		if err != nil {
			return nil, err
		}
		lp.ots = [2]*optics.OT{otA, otB}
	}

	for _, rn := range route.Plan.RegenNodes {
		rn := rn
		rg, err := inventory.Reserve(txn,
			func() (*optics.Regen, error) { return c.plant.Regens(rn).Alloc(rate) },
			func(rg *optics.Regen) { c.plant.Regens(rn).Release(rg) }) //lint:allow errcheck rollback
		if err != nil {
			return nil, err
		}
		lp.regens = append(lp.regens, rg)
	}

	for i, seg := range route.Plan.Segments {
		ch := route.Channels[i]
		for _, link := range seg.Links {
			link, ch := link, ch
			sp := c.plant.Spectrum(link)
			if err := txn.Do(
				func() error { return sp.Reserve(ch, string(id)) },
				func() { sp.Release(ch) }, //lint:allow errcheck rollback
			); err != nil {
				return nil, err
			}
		}
	}

	// Program the ROADM layer: terminate at each segment's ends, express
	// through its intermediates. Each segment gets a distinct owner key —
	// including a per-lightpath nonce, because during restoration or
	// bridge-and-roll the same connection briefly holds TWO lightpaths
	// that share end nodes, and releasing one must not disturb the other.
	lp.segNodes = segmentNodes(route.Path, route.Plan)
	c.lpSeq++
	for i := range route.Plan.Segments {
		i := i
		owner := fmt.Sprintf("%s#lp%d.seg%d", id, c.lpSeq, i)
		nodes := lp.segNodes[i]
		links := route.Plan.Segments[i].Links
		ch := route.Channels[i]
		if err := txn.Do(
			func() error { return c.roadms.ConfigureSegment(nodes, links, ch, owner) },
			func() { c.roadms.ReleaseSegment(nodes, owner) },
		); err != nil {
			return nil, err
		}
		lp.segOwners = append(lp.segOwners, owner)
	}

	if withFXC && reuse == nil {
		pa, err := c.reserveFXCPair(txn, a, id)
		if err != nil {
			return nil, err
		}
		pb, err := c.reserveFXCPair(txn, b, id)
		if err != nil {
			return nil, err
		}
		lp.portsA, lp.portsB = pa, pb
	}

	txn.Commit()
	return lp, nil
}

// reserveFXCPair takes a free client and line port on the node's FXC and
// cross-connects them, all under the transaction.
func (c *Controller) reserveFXCPair(txn *inventory.Txn, node topo.NodeID, id ConnID) ([2]fxc.PortID, error) {
	sw := c.fxcs[node]
	var pair [2]fxc.PortID
	err := txn.Do(func() error {
		cp, err := sw.FreePort(fxc.Client)
		if err != nil {
			return err
		}
		lnp, err := sw.FreePort(fxc.Line)
		if err != nil {
			return err
		}
		if err := sw.Connect(cp, lnp, string(id)); err != nil {
			return err
		}
		pair = [2]fxc.PortID{cp, lnp}
		return nil
	}, func() {
		if pair[0] != "" {
			sw.Disconnect(pair[0]) //lint:allow errcheck rollback
		}
	})
	return pair, err
}

// releaseLightpath returns every resource of a lightpath. ownsEnds=false
// variants (restoration legs reusing terminating equipment) release only
// spectrum and regens.
func (c *Controller) releaseLightpath(id ConnID, lp *lightpath) {
	c.releaseLightpathMiddle(lp)
	if lp.ots[0] != nil {
		c.plant.OTs(lp.ots[0].Node).Release(lp.ots[0]) //lint:allow errcheck owned
	}
	if lp.ots[1] != nil {
		c.plant.OTs(lp.ots[1].Node).Release(lp.ots[1]) //lint:allow errcheck owned
	}
	if lp.portsA[0] != "" {
		c.fxcs[lp.route.Path.Src()].Disconnect(lp.portsA[0]) //lint:allow errcheck owned
	}
	if lp.portsB[0] != "" {
		c.fxcs[lp.route.Path.Dst()].Disconnect(lp.portsB[0]) //lint:allow errcheck owned
	}
	_ = id
}

// releaseLightpathMiddle frees spectrum, ROADM switching state and
// regenerators (everything except the terminating OTs and FXC ports).
func (c *Controller) releaseLightpathMiddle(lp *lightpath) {
	for i, seg := range lp.route.Plan.Segments {
		ch := lp.route.Channels[i]
		for _, link := range seg.Links {
			c.plant.Spectrum(link).Release(ch) //lint:allow errcheck owned
		}
	}
	for i, owner := range lp.segOwners {
		c.roadms.ReleaseSegment(lp.segNodes[i], owner)
	}
	lp.segOwners = nil
	lp.segNodes = nil
	for _, rg := range lp.regens {
		c.plant.Regens(rg.Node).Release(rg) //lint:allow errcheck owned
	}
	lp.regens = nil
}

// segmentNodes splits a path's node sequence by its regeneration plan:
// segment i covers the nodes spanning its links, with regen nodes appearing
// as the last node of one segment and the first of the next.
func segmentNodes(path topo.Path, plan optics.RegenPlan) [][]topo.NodeID {
	out := make([][]topo.NodeID, len(plan.Segments))
	idx := 0
	for i, seg := range plan.Segments {
		n := len(seg.Links)
		out[i] = append([]topo.NodeID(nil), path.Nodes[idx:idx+n+1]...)
		idx += n
	}
	return out
}

// Disconnect tears a connection down on behalf of its owner. Resources are
// released when the teardown EMS work completes.
func (c *Controller) Disconnect(cust inventory.Customer, id ConnID) (*sim.Job, error) {
	conn := c.conns[id]
	if conn == nil {
		return nil, fmt.Errorf("core: unknown connection %s", id)
	}
	if err := c.ledger.Verify(cust, connKey(id)); err != nil {
		return nil, err
	}
	switch conn.State {
	case StateActive, StateDown, StateRestoring:
		// A customer may cancel even mid-restoration; the in-flight
		// restoration job notices the state change and returns its
		// resources.
	default:
		return nil, fmt.Errorf("core: connection %s is %v; cannot disconnect", id, conn.State)
	}
	conn.settleUsage(c.k.Now())
	conn.State = StateTearingDown
	// Cancel any open restoration spans before tracing the teardown.
	conn.phaseSpan.EndOutcome("cancelled")
	conn.opSpan.EndOutcome("cancelled")
	conn.opSpan = c.tr.Start(obs.SpanRef{}, "op:teardown")
	conn.opSpan.SetConn(string(conn.ID), string(conn.Customer), conn.Layer.String())
	c.log(id, "teardown", "requested by %s", cust)

	var job *sim.Job
	switch conn.Layer {
	case LayerDWDM:
		job = c.lightpathTeardownJob(conn.working(), conn.opSpan)
	case LayerOTN:
		job = c.circuitTeardownJob(conn, conn.opSpan)
	}
	job.OnDone(func(err error) {
		conn.opSpan.EndErr(err)
		c.ins.teardowns.Inc()
		c.ins.teardownSecs.ObserveDuration(job.Elapsed())
		pipes := touchedPipes(conn)
		c.releaseConnResources(conn)
		c.connUp(conn, "released")
		c.sla.Release(string(conn.ID), c.k.Now())
		conn.State = StateReleased
		conn.stable = StateReleased
		conn.ReleasedAt = c.k.Now()
		c.log(id, "released", "teardown took %v", job.Elapsed())
		c.journalCommit(commitSet{reason: "teardown", conns: []*Connection{conn}, pipes: pipes})
	})
	return job, nil
}

// releaseConnResources returns everything a connection holds: lightpaths or
// OTN slots, access capacity, quota, claims.
func (c *Controller) releaseConnResources(conn *Connection) {
	if conn.path != nil {
		c.releaseLightpath(conn.ID, conn.path)
		conn.path = nil
	}
	if conn.protect != nil {
		c.releaseLightpath(conn.ID, conn.protect)
		conn.protect = nil
	}
	if len(conn.pipes) > 0 {
		otn.ReleasePath(conn.pipes, string(conn.ID)) //lint:allow errcheck owned
		conn.pipes = nil
	}
	if len(conn.backup) > 0 {
		for _, p := range conn.backup {
			p.ReleaseShared(string(conn.ID)) //lint:allow errcheck may already be activated
		}
		conn.backup = nil
	}
	if !conn.Internal {
		c.releaseAccess(conn.From, conn.To, conn.Rate)
	}
	c.ledger.Discharge(conn.Customer, conn.Rate)      //lint:allow errcheck symmetric with admit
	c.ledger.Release(conn.Customer, connKey(conn.ID)) //lint:allow errcheck symmetric with claim
}

// ConnectComposite provisions a >wavelength-granularity service as multiple
// component connections per PlaceRate (e.g. 12G = 10G DWDM + 2x1G OTN). It
// returns the components and a job completing when all are active. Components
// that fail admission cause the whole request to fail with nothing retained.
func (c *Controller) ConnectComposite(req Request) ([]*Connection, *sim.Job, error) {
	parts, err := PlaceRate(req.Rate)
	if err != nil {
		return nil, nil, err
	}
	var conns []*Connection
	var jobs []*sim.Job
	for _, rate := range parts {
		sub := req
		sub.Rate = rate
		sub.Protect = req.Protect
		if layerFor(rate) == LayerOTN && req.Protect == OnePlusOne {
			sub.Protect = SharedMesh
		}
		if layerFor(rate) == LayerDWDM && req.Protect == SharedMesh {
			sub.Protect = Restore
		}
		conn, job, err := c.Connect(sub)
		if err != nil {
			// Unwind the components already launched.
			var pipes []*otn.Pipe
			for _, done := range conns {
				done.State = StateTearingDown
				pipes = append(pipes, touchedPipes(done)...)
				c.releaseConnResources(done)
				done.State = StateReleased
				done.stable = StateReleased
				done.ReleasedAt = c.k.Now()
				c.log(done.ID, "released", "composite sibling failed")
			}
			if len(conns) > 0 {
				c.journalCommit(commitSet{reason: "composite-unwind", conns: conns, pipes: pipes})
			}
			return nil, nil, fmt.Errorf("core: composite %v component %v: %w", req.Rate, rate, err)
		}
		conns = append(conns, conn)
		jobs = append(jobs, job)
	}
	return conns, sim.All(c.k, jobs...), nil
}
