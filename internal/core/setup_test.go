package core

import (
	"errors"
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/inventory"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

func newTestbed(t *testing.T, seed int64) (*sim.Kernel, *Controller) {
	t.Helper()
	k := sim.NewKernel(seed)
	c, err := New(k, topo.Testbed(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return k, c
}

func newBackbone(t *testing.T, seed int64) (*sim.Kernel, *Controller) {
	t.Helper()
	k := sim.NewKernel(seed)
	c, err := New(k, topo.Backbone(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return k, c
}

// mustConnect requests a connection and runs the kernel until it is active.
func mustConnect(t *testing.T, k *sim.Kernel, c *Controller, req Request) *Connection {
	t.Helper()
	conn, job, err := c.Connect(req)
	if err != nil {
		t.Fatalf("Connect(%+v): %v", req, err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatalf("setup job: %v", job.Err())
	}
	if conn.State != StateActive {
		t.Fatalf("connection %s state = %v, want active", conn.ID, conn.State)
	}
	return conn
}

func TestConnectWavelengthSetupTime(t *testing.T) {
	k, c := newTestbed(t, 1)
	conn := mustConnect(t, k, c, Request{Customer: "csp1", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})

	if conn.Layer != LayerDWDM {
		t.Errorf("layer = %v", conn.Layer)
	}
	// DC-A home I, DC-C home IV: shortest path is the 1-hop I-IV, and
	// Table 2 says 1-hop establishment lands around 62 s.
	if conn.Route().String() != "I-IV" {
		t.Errorf("route = %s", conn.Route())
	}
	st := conn.SetupTime()
	if st < 55*time.Second || st > 70*time.Second {
		t.Errorf("setup time = %v, want ~62 s", st)
	}
	chs := conn.Channels()
	if len(chs) != 1 {
		t.Fatalf("channels = %v", chs)
	}
	// The spectrum on I-IV must carry the reservation.
	if got := c.Plant().Spectrum("I-IV").Owner(chs[0]); got != string(conn.ID) {
		t.Errorf("spectrum owner = %q", got)
	}
	// One OT allocated at each end.
	if c.Plant().OTs("I").InUse() != 1 || c.Plant().OTs("IV").InUse() != 1 {
		t.Error("OTs not allocated at both ends")
	}
	// FXC client/line pair connected at both ends.
	if c.FXC("I").Connections() != 1 || c.FXC("IV").Connections() != 1 {
		t.Error("FXC cross-connects missing")
	}
}

func TestSetupTimeGrowsWithHops(t *testing.T) {
	// Force the 3-hop path by failing the others; setup must take longer
	// than the 1-hop case, reproducing Table 2's trend.
	k1, c1 := newTestbed(t, 7)
	conn1 := mustConnect(t, k1, c1, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})

	k3, c3 := newTestbed(t, 7)
	c3.Plant().SetLinkUp("I-IV", false)
	c3.Plant().SetLinkUp("I-III", false)
	conn3 := mustConnect(t, k3, c3, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})

	if conn3.Route().Hops() != 3 {
		t.Fatalf("forced route = %s", conn3.Route())
	}
	if conn3.SetupTime() <= conn1.SetupTime() {
		t.Errorf("3-hop setup (%v) not slower than 1-hop (%v)", conn3.SetupTime(), conn1.SetupTime())
	}
	diff := conn3.SetupTime() - conn1.SetupTime()
	if diff < 4*time.Second || diff > 14*time.Second {
		t.Errorf("hop penalty = %v, want roughly 8.4 s (2 extra hops)", diff)
	}
}

func TestDisconnectReleasesEverything(t *testing.T) {
	k, c := newTestbed(t, 2)
	conn := mustConnect(t, k, c, Request{Customer: "csp1", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})

	job, err := c.Disconnect("csp1", conn.ID)
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if job.Err() != nil {
		t.Fatal(job.Err())
	}
	if conn.State != StateReleased {
		t.Errorf("state = %v", conn.State)
	}
	// Teardown is around 10 seconds (paper §3).
	if job.Elapsed() < 7*time.Second || job.Elapsed() > 14*time.Second {
		t.Errorf("teardown = %v, want ~10 s", job.Elapsed())
	}
	s := c.Snapshot()
	if s.ChannelsInUse != 0 || s.OTsInUse != 0 {
		t.Errorf("leaked resources: %+v", s)
	}
	if c.FXC("I").Connections() != 0 || c.FXC("III").Connections() != 0 {
		t.Error("FXC ports leaked")
	}
	if c.AccessUsed("DC-A") != 0 || c.AccessUsed("DC-B") != 0 {
		t.Error("access capacity leaked")
	}
	if u := c.Ledger().UsageOf("csp1"); u.Connections != 0 || u.Bandwidth != 0 {
		t.Errorf("ledger leaked: %+v", u)
	}
}

func TestDisconnectAuthorization(t *testing.T) {
	k, c := newTestbed(t, 3)
	conn := mustConnect(t, k, c, Request{Customer: "csp1", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	if _, err := c.Disconnect("csp2", conn.ID); err == nil {
		t.Error("cross-customer disconnect accepted — isolation broken")
	}
	if _, err := c.Disconnect("csp1", "C9999"); err == nil {
		t.Error("unknown connection disconnect accepted")
	}
	if _, err := c.Disconnect("csp1", conn.ID); err != nil {
		t.Errorf("owner disconnect rejected: %v", err)
	}
	// Double disconnect (already tearing down).
	if _, err := c.Disconnect("csp1", conn.ID); err == nil {
		t.Error("disconnect of tearing-down connection accepted")
	}
}

func TestConnectValidation(t *testing.T) {
	_, c := newTestbed(t, 4)
	cases := []struct {
		name string
		req  Request
	}{
		{"empty customer", Request{From: "DC-A", To: "DC-B", Rate: bw.Rate10G}},
		{"unknown from", Request{Customer: "x", From: "DC-Z", To: "DC-B", Rate: bw.Rate10G}},
		{"unknown to", Request{Customer: "x", From: "DC-A", To: "DC-Z", Rate: bw.Rate10G}},
		{"same site", Request{Customer: "x", From: "DC-A", To: "DC-A", Rate: bw.Rate10G}},
		{"zero rate", Request{Customer: "x", From: "DC-A", To: "DC-B"}},
		{"sub-1G", Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: 500 * bw.Mbps}},
		{"composite rate via Connect", Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: 12 * bw.Gbps}},
		{"shared mesh on wavelength", Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G, Protect: SharedMesh}},
		{"1+1 on OTN", Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate1G, Protect: OnePlusOne}},
	}
	for _, tc := range cases {
		if _, _, err := c.Connect(tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Nothing may leak from rejected requests.
	if u := c.Ledger().UsageOf("x"); u.Connections != 0 || u.Bandwidth != 0 {
		t.Errorf("rejected requests leaked ledger usage: %+v", u)
	}
	if c.AccessUsed("DC-A") != 0 {
		t.Error("rejected requests leaked access capacity")
	}
}

func TestPlaceRate(t *testing.T) {
	cases := []struct {
		rate bw.Rate
		want []bw.Rate
	}{
		{bw.Rate1G, []bw.Rate{bw.Rate1G}},
		{bw.Rate2G5, []bw.Rate{bw.Rate2G5}},
		{5 * bw.Gbps, []bw.Rate{5 * bw.Gbps}},
		{bw.Rate10G, []bw.Rate{bw.Rate10G}},
		{bw.Rate40G, []bw.Rate{bw.Rate40G}},
		// The paper's example: 12G = 10G wavelength + 2x1G OTN.
		{12 * bw.Gbps, []bw.Rate{bw.Rate10G, bw.Rate1G, bw.Rate1G}},
		{25 * bw.Gbps, []bw.Rate{bw.Rate10G, bw.Rate10G, bw.Rate1G, bw.Rate1G, bw.Rate1G, bw.Rate1G, bw.Rate1G}},
		{50 * bw.Gbps, []bw.Rate{bw.Rate40G, bw.Rate10G}},
		{80 * bw.Gbps, []bw.Rate{bw.Rate40G, bw.Rate40G}},
	}
	for _, c := range cases {
		got, err := PlaceRate(c.rate)
		if err != nil {
			t.Errorf("PlaceRate(%v): %v", c.rate, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("PlaceRate(%v) = %v, want %v", c.rate, got, c.want)
			continue
		}
		var sum bw.Rate
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PlaceRate(%v)[%d] = %v, want %v", c.rate, i, got[i], c.want[i])
			}
			sum += got[i]
		}
		if sum < c.rate {
			t.Errorf("PlaceRate(%v) sums to %v < request", c.rate, sum)
		}
	}
	for _, bad := range []bw.Rate{0, -1, 500 * bw.Mbps} {
		if _, err := PlaceRate(bad); err == nil {
			t.Errorf("PlaceRate(%v) accepted", bad)
		}
	}
}

func TestQuotaEnforcedAtConnect(t *testing.T) {
	k, c := newTestbed(t, 5)
	c.Ledger().SetQuota("csp1", inventory.Quota{MaxConnections: 1})
	mustConnect(t, k, c, Request{Customer: "csp1", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	if _, _, err := c.Connect(Request{Customer: "csp1", From: "DC-A", To: "DC-C", Rate: bw.Rate10G}); !errors.Is(err, inventory.ErrQuota) {
		t.Errorf("second connect err = %v, want quota error", err)
	}
}

func TestAccessPipeExhaustion(t *testing.T) {
	k, c := newTestbed(t, 6)
	// The testbed access pipes are 40G.
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate40G})
	if _, _, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G}); err == nil {
		t.Error("connect over a full access pipe accepted")
	}
	// The uninvolved site's pipe is untouched.
	if used := c.AccessUsed("DC-C"); used != 0 {
		t.Errorf("DC-C access used = %v, want 0", used)
	}
	if used := c.AccessUsed("DC-A"); used != bw.Rate40G {
		t.Errorf("DC-A access used = %v, want 40G", used)
	}
}

func TestWavelengthBlockingWhenOTsExhausted(t *testing.T) {
	k := sim.NewKernel(9)
	cfg := Config{}
	cfg.Optics.Channels = 80
	cfg.Optics.ReachKM = 2500
	cfg.Optics.OTsPerNode = 2
	c, err := New(k, topo.Testbed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 OTs per node: I can terminate exactly 2 wavelengths.
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if _, _, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G}); err == nil {
		t.Error("connect with exhausted OT pool accepted")
	}
	// Blocking must not leak: everything still consistent.
	s := c.Snapshot()
	if s.OTsInUse != 4 {
		t.Errorf("OTs in use = %d, want 4", s.OTsInUse)
	}
}

func TestConnectOnePlusOneReservesDisjointPair(t *testing.T) {
	k, c := newTestbed(t, 10)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: OnePlusOne})
	if conn.protect == nil {
		t.Fatal("no protect leg")
	}
	if !conn.path.route.Path.LinkDisjoint(conn.protect.route.Path) {
		t.Errorf("legs not disjoint: %s / %s", conn.path.route.Path, conn.protect.route.Path)
	}
	// 1+1 burns two OT pairs: that is its cost (paper Table 1).
	if got := c.Snapshot().OTsInUse; got != 4 {
		t.Errorf("OTs in use = %d, want 4 for 1+1", got)
	}
}

func TestConnectOnePlusOneImpossible(t *testing.T) {
	k := sim.NewKernel(11)
	// A line topology has no disjoint pair.
	g := topo.New()
	g.AddNode(topo.Node{ID: "A", HasOTN: true})
	g.AddNode(topo.Node{ID: "B", HasOTN: true})
	g.AddLink(topo.Link{ID: "A-B", A: "A", B: "B", KM: 100})
	g.AddSite(topo.Site{ID: "S1", Home: "A", AccessGbps: 40})
	g.AddSite(topo.Site{ID: "S2", Home: "B", AccessGbps: 40})
	c, err := New(k, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Connect(Request{Customer: "x", From: "S1", To: "S2", Rate: bw.Rate10G, Protect: OnePlusOne}); err == nil {
		t.Error("1+1 without a disjoint path accepted")
	}
	// The failed request must leak nothing.
	s := c.Snapshot()
	if s.OTsInUse != 0 || s.ChannelsInUse != 0 {
		t.Errorf("leak after failed 1+1: %+v", s)
	}
}

func TestSameHomePoPRejected(t *testing.T) {
	k := sim.NewKernel(12)
	g := topo.Testbed()
	g.AddSite(topo.Site{ID: "DC-A2", Home: "I", AccessGbps: 40})
	c, err := New(k, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-A2", Rate: bw.Rate10G}); err == nil {
		t.Error("same-home-PoP connection accepted")
	}
}

func TestEventsLog(t *testing.T) {
	k, c := newTestbed(t, 13)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	evs := c.EventsFor(conn.ID)
	if len(evs) < 2 {
		t.Fatalf("events = %d, want request+active", len(evs))
	}
	if evs[0].Kind != "request" || evs[len(evs)-1].Kind != "active" {
		t.Errorf("event kinds = %v", evs)
	}
	if len(c.Events()) < len(evs) {
		t.Error("global log shorter than per-conn log")
	}
}

func TestDeterministicSetupTimes(t *testing.T) {
	run := func() time.Duration {
		k, c := newTestbed(t, 99)
		conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
		return conn.SetupTime()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different setup times: %v vs %v", a, b)
	}
}

func TestConcurrentSetupsQueueOnEMS(t *testing.T) {
	k, c := newTestbed(t, 14)
	// Two simultaneous requests share the single ROADM EMS; the second
	// setup must take longer end-to-end than the first.
	c1, j1, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
	if err != nil {
		t.Fatal(err)
	}
	c2, j2, err := c.Connect(Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if j1.Err() != nil || j2.Err() != nil {
		t.Fatal(j1.Err(), j2.Err())
	}
	if c2.SetupTime() <= c1.SetupTime() {
		t.Errorf("queued setup (%v) not slower than first (%v)", c2.SetupTime(), c1.SetupTime())
	}
}

func TestBackboneLongHaulUsesRegens(t *testing.T) {
	k := sim.NewKernel(15)
	cfg := Config{}
	cfg.Optics.Channels = 80
	cfg.Optics.ReachKM = 3000
	cfg.Optics.OTsPerNode = 8
	cfg.Optics.RegensPerNode = 4
	c, err := New(k, topo.Backbone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-SEA", To: "DC-NYC", Rate: bw.Rate10G})
	if conn.Route().KM(c.Graph()) > 3000 && len(conn.path.regens) == 0 {
		t.Error("long-haul connection without regens")
	}
	if len(conn.path.regens) == 0 {
		t.Fatalf("expected a regenerated path, got %s (%.0f km)", conn.Route(), conn.Route().KM(c.Graph()))
	}
	if c.Snapshot().RegensInUse != len(conn.path.regens) {
		t.Error("regen accounting mismatch")
	}
	// Teardown returns the regens.
	c.Disconnect("x", conn.ID)
	k.Run()
	if c.Snapshot().RegensInUse != 0 {
		t.Error("regens leaked")
	}
}
