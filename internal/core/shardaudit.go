package core

// Cross-shard invariant auditing. Each shard's own AuditInvariants covers its
// slice of the books; the sweeps here cover what only the set can see — that
// the shards' views of the shared plant agree with the coordinator's, and
// that no customer's state leaked onto a shard that doesn't own them.

import (
	"fmt"
	"sort"
	"strings"
)

// AuditInvariants audits every shard's books plus the cross-shard invariants:
//
//   - every per-shard finding, its detail prefixed with the shard;
//   - xshard-spectrum: every channel a shard's plant has lit on a shared
//     fiber is backed by that shard's coordinator claim;
//   - xshard-leak: every coordinator claim a shard holds is backed by a
//     shard-local reservation (a lit channel, a live pipe token) — the
//     converse direction, catching claims that outlive their resource;
//   - xshard-pipe: each shard holds exactly one pipe token per live pipe;
//   - tenant-leak: every customer with state on a shard actually hashes to
//     that shard;
//   - xshard-violation: release/claim inconsistencies the coordinator
//     recorded as they happened.
//
// Empty means every shard's books balance and the shards agree with the
// coordinator. Read-only, safe between events like the per-shard audit.
func (s *ShardSet) AuditInvariants() []Finding {
	var out []Finding
	report := func(kind, format string, args ...any) {
		out = append(out, Finding{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}

	for i, sh := range s.shards {
		for _, f := range sh.Ctrl.AuditInvariants() {
			out = append(out, Finding{Kind: f.Kind, Detail: fmt.Sprintf("shard-%d: %s", i, f.Detail)})
		}
	}
	if s.coord == nil {
		return out
	}

	for i, sh := range s.shards {
		c := sh.Ctrl

		// Shard-side resources the leak sweep matches claims against.
		litChannels := map[string]bool{} // "link:ch"
		for _, l := range c.g.Links() {
			sp := c.plant.Spectrum(l.ID)
			for _, ch := range sp.UsedChannels() {
				litChannels[fmt.Sprintf("%s:%d", l.ID, ch)] = true
				if !s.coord.ownsChannel(i, l.ID, ch) {
					report("xshard-spectrum", "shard-%d lit channel %d on %s without a coordinator claim (owner %q)",
						i, ch, l.ID, sp.Owner(ch))
				}
			}
		}
		tokens := map[string]bool{}
		for _, token := range c.pipeTokens {
			tokens[token] = true
		}

		for _, key := range s.coord.shardClaims(i) {
			switch {
			case strings.HasPrefix(key, "spectrum:"):
				if !litChannels[strings.TrimPrefix(key, "spectrum:")] {
					report("xshard-leak", "shard-%d claim %q has no lit channel behind it", i, key)
				}
			case strings.HasPrefix(key, "pipe:"):
				if !tokens[key] {
					report("xshard-leak", "shard-%d claim %q has no live pipe token behind it", i, key)
				}
			}
		}

		if got, want := len(c.pipeTokens), len(c.fabric.Pipes()); got != want {
			report("xshard-pipe", "shard-%d holds %d pipe tokens for %d live pipes", i, got, want)
		}

		// Customer-owned state must live on the owning shard. The carrier's
		// internal conns and the coordinator's synthetic customers are
		// shard-local by construction and exempt.
		ids := make([]string, 0, len(c.conns))
		for id := range c.conns {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			conn := c.conns[ConnID(id)]
			if conn.Internal || conn.State == StateReleased {
				continue
			}
			if want := s.ShardFor(conn.Customer); want != i {
				report("tenant-leak", "connection %s of %s lives on shard-%d, owner is shard-%d",
					conn.ID, conn.Customer, i, want)
			}
		}
		for _, b := range c.AllBookings() {
			if want := s.ShardFor(b.Req.Customer); want != i {
				report("tenant-leak", "booking %d of %s lives on shard-%d, owner is shard-%d",
					b.ID, b.Req.Customer, i, want)
			}
		}
	}

	for _, v := range s.coord.Violations() {
		report("xshard-violation", "%s", v)
	}
	return out
}
