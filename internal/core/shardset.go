package core

// ShardSet partitions the control plane by customer. Each shard is a full
// Controller — its own event loop (sim.Kernel), its own journal, its own
// replica of the photonic plant and device pools — serving the customers that
// hash to it. The only state shared between shards is the Coordinator
// (spectrum on shared fibers, OTN pipe capacity per node pair) and the merged
// operator event/alarm logs, all mutex-guarded and never blocking on the
// simulation.
//
// Two drive modes:
//
//   - Lockstep (Step/Await/Advance/Drain): the globally earliest pending
//     event executes next, ties broken by shard index. Fully deterministic —
//     the mode every test and the serial facade use. A single-shard set
//     degenerates to exactly the pre-sharding controller: no coordinator, no
//     broker gates, plain connection IDs, byte-identical journals.
//
//   - Parallel (DrainParallel/AdvanceParallel): one goroutine per shard, for
//     the multi-tenant throughput benchmark. Shard clocks advance
//     independently; cross-shard effects serialize only on the coordinator's
//     mutex.
//
// Shard ownership rules: connections, bookings, quotas, SLA ledgers, alarm
// streams and billing are wholly owned by the customer's shard. Fiber state
// is replicated (cuts and repairs fan out to every shard so each restores its
// own customers). Spectrum and pipe capacity are claimed through the
// Coordinator before any shard-local reservation sticks.

import (
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"sync"

	"griphon/internal/alarms"
	"griphon/internal/inventory"
	"griphon/internal/journal"
	"griphon/internal/obs"
	"griphon/internal/optics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// ShardSetConfig assembles a ShardSet.
type ShardSetConfig struct {
	// Shards is the number of shards (values < 1 mean 1).
	Shards int
	// Seed seeds shard i's kernel with Seed+i.
	Seed int64
	// Core is the per-shard controller template. Journal, Metrics, Tracer
	// and Shard are managed per shard; everything else applies verbatim.
	Core Config
	// StateDir, when non-empty, makes every shard durable: shard i journals
	// under StateDir/shard-<i>, except a single-shard set which uses
	// StateDir itself (the historical layout).
	StateDir string
	// Fsync syncs every journal append (with StateDir).
	Fsync bool
	// SegmentSize bounds each shard's WAL segments in bytes (with StateDir):
	// 0 means the journal's default, negative disables rotation.
	SegmentSize int64
	// Tracing gives every shard a span tracer on its own kernel.
	Tracing bool
	// MaxPipesPerPair caps live OTN pipes per node pair across all shards
	// (0 = unlimited). Ignored for a single shard.
	MaxPipesPerPair int
}

// Shard is one slice of the sharded control plane.
type Shard struct {
	Kernel *sim.Kernel
	Ctrl   *Controller
	Store  *journal.Store // nil without StateDir
}

// ShardSet is a sharded control plane: N shards plus the cross-shard
// coordinator. See the package comment on drive modes and ownership rules.
type ShardSet struct {
	shards []*Shard
	coord  *Coordinator // nil for a single shard

	// mu guards the merged logs, which observers append to from whichever
	// shard (and, under parallel drive, whichever goroutine) produced them.
	mu       sync.Mutex
	events   []Event
	alarmLog *alarms.Log
}

// NewShardSet builds (or, with StateDir holding prior state, rehydrates)
// every shard.
func NewShardSet(g *topo.Graph, cfg ShardSetConfig) (*ShardSet, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	s := &ShardSet{}
	if n > 1 {
		ch := cfg.Core.Optics.Channels
		if ch <= 0 {
			ch = optics.DefaultConfig().Channels
		}
		s.coord = NewCoordinator(ch, cfg.MaxPipesPerPair)
		s.alarmLog = alarms.NewLog(512 * n)
	}
	for i := 0; i < n; i++ {
		k := sim.NewKernel(cfg.Seed + int64(i))
		gi := g
		if i > 0 {
			// Each shard clones the topology: Graph.Index lazily builds a
			// compiled cache, which would race under parallel drive.
			gi = g.Clone()
		}
		ccfg := cfg.Core
		ccfg.Shard = ShardInfo{Index: i, Count: n, Coordinator: s.coord}
		if n > 1 {
			ccfg.Metrics = nil // per-shard registries; merged at render time
		}
		if cfg.Tracing {
			ccfg.Tracer = obs.NewTracer(k)
		}
		var store *journal.Store
		if cfg.StateDir != "" {
			dir := cfg.StateDir
			if n > 1 {
				dir = filepath.Join(cfg.StateDir, fmt.Sprintf("shard-%d", i))
			}
			var err error
			store, err = journal.Open(dir, journal.Options{Fsync: cfg.Fsync, SegmentSize: cfg.SegmentSize})
			if err != nil {
				s.Close() //lint:allow errcheck construction already failed
				return nil, err
			}
			ccfg.Journal = store
		}
		var ctrl *Controller
		var err error
		if store != nil && store.HasState() {
			ctrl, err = Rehydrate(k, gi, ccfg)
		} else {
			ctrl, err = New(k, gi, ccfg)
		}
		if err != nil {
			if store != nil {
				_ = store.Close() // construction already failed; surface that error
			}
			s.Close() //lint:allow errcheck construction already failed
			return nil, err
		}
		s.shards = append(s.shards, &Shard{Kernel: k, Ctrl: ctrl, Store: store})
	}
	if n > 1 {
		s.attachObservers()
	}
	return s, nil
}

// attachObservers wires every shard's event and alarm streams into the
// merged operator logs.
func (s *ShardSet) attachObservers() {
	for _, sh := range s.shards {
		sh.Ctrl.SetOnEvent(func(e Event) {
			s.mu.Lock()
			s.events = append(s.events, e)
			s.mu.Unlock()
		})
		sh.Ctrl.SetOnAlarmGroup(func(g alarms.Group) {
			s.mu.Lock()
			s.alarmLog.Append(g)
			s.mu.Unlock()
		})
	}
}

// Len returns the shard count.
func (s *ShardSet) Len() int { return len(s.shards) }

// Shard returns shard i.
func (s *ShardSet) Shard(i int) *Shard { return s.shards[i] }

// Shards returns every shard, in index order.
func (s *ShardSet) Shards() []*Shard { return s.shards }

// Coordinator returns the cross-shard coordinator (nil for a single shard).
func (s *ShardSet) Coordinator() *Coordinator { return s.coord }

// ShardFor returns the index of the shard owning a customer.
func (s *ShardSet) ShardFor(cust inventory.Customer) int {
	if len(s.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(cust)) //lint:allow errcheck fnv never fails
	return int(h.Sum32() % uint32(len(s.shards)))
}

// For returns the controller owning a customer's state.
func (s *ShardSet) For(cust inventory.Customer) *Controller {
	return s.shards[s.ShardFor(cust)].Ctrl
}

// SetQuota routes a quota change to exactly the owning shard, where it is
// journaled alongside that shard's admission state. Quota must never live on
// the coordinator: admission happens inside the owning shard's event loop,
// and a coordinator-held quota would race setups in flight on other shards.
func (s *ShardSet) SetQuota(cust inventory.Customer, q inventory.Quota) {
	s.For(cust).SetQuota(cust, q)
}

// earliest returns the shard holding the globally earliest pending event
// (ties to the lowest index).
func (s *ShardSet) earliest() (idx int, at sim.Time, ok bool) {
	for i, sh := range s.shards {
		t, has := sh.Kernel.NextAt()
		if !has {
			continue
		}
		if !ok || t.Before(at) {
			idx, at, ok = i, t, true
		}
	}
	return idx, at, ok
}

// Step executes the globally earliest pending event. It reports false when
// every shard is drained.
func (s *ShardSet) Step() bool {
	i, _, ok := s.earliest()
	if !ok {
		return false
	}
	return s.shards[i].Kernel.Step()
}

// Await drives the set in lockstep until the job completes.
func (s *ShardSet) Await(job *sim.Job) error {
	for !job.Done() {
		if !s.Step() {
			return fmt.Errorf("core: simulation stalled waiting for job")
		}
	}
	return job.Err()
}

// Now returns the latest shard clock — the set's notion of current time.
func (s *ShardSet) Now() sim.Time {
	var now sim.Time
	for _, sh := range s.shards {
		if t := sh.Kernel.Now(); t.After(now) {
			now = t
		}
	}
	return now
}

// Advance runs the set in lockstep for d of virtual time, then aligns every
// shard clock on the target instant.
func (s *ShardSet) Advance(d sim.Duration) {
	target := s.Now().Add(d)
	for {
		i, at, ok := s.earliest()
		if !ok || at.After(target) {
			break
		}
		s.shards[i].Kernel.Step()
	}
	for _, sh := range s.shards {
		sh.Kernel.RunUntil(target)
	}
}

// Drain runs the set in lockstep until no shard has pending events.
func (s *ShardSet) Drain() {
	for s.Step() {
	}
}

// DrainParallel drains every shard concurrently, one goroutine per shard —
// the throughput mode of the multi-tenant benchmark. Determinism is traded
// for wall-clock scaling: shard clocks advance independently and merged-log
// order follows goroutine scheduling.
func (s *ShardSet) DrainParallel() {
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			sh.Kernel.Run()
		}(sh)
	}
	wg.Wait()
}

// AdvanceParallel runs every shard concurrently until each clock reaches
// now+d.
func (s *ShardSet) AdvanceParallel(d sim.Duration) {
	target := s.Now().Add(d)
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			sh.Kernel.RunUntil(target)
		}(sh)
	}
	wg.Wait()
}

// Events returns the operator's merged audit log: arrival order across
// shards under lockstep drive (deterministic), goroutine order under
// parallel drive. A single-shard set reads the controller's log directly.
func (s *ShardSet) Events() []Event {
	if len(s.shards) == 1 {
		return s.shards[0].Ctrl.Events()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// EventsFor returns the merged audit entries mentioning a connection.
func (s *ShardSet) EventsFor(id ConnID) []Event {
	if len(s.shards) == 1 {
		return s.shards[0].Ctrl.EventsFor(id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	for _, e := range s.events {
		if e.Conn == id {
			out = append(out, e)
		}
	}
	return out
}

// EventsSince returns merged audit entries from index cursor on, plus the
// cursor to resume from.
func (s *ShardSet) EventsSince(cursor int) ([]Event, int) {
	if len(s.shards) == 1 {
		return s.shards[0].Ctrl.EventsSince(cursor)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(s.events) {
		cursor = len(s.events)
	}
	return append([]Event(nil), s.events[cursor:]...), len(s.events)
}

// AlarmsSince returns alarm groups after the seq cursor. A customer query
// routes to the owning shard (cursors live in that shard's seq space); the
// operator view ("") reads the merged log.
func (s *ShardSet) AlarmsSince(seq uint64, customer string) ([]alarms.Group, uint64) {
	if len(s.shards) == 1 {
		return s.shards[0].Ctrl.AlarmsSince(seq, customer)
	}
	if customer != "" {
		return s.For(inventory.Customer(customer)).AlarmsSince(seq, customer)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var groups []alarms.Group
	for _, g := range s.alarmLog.Since(seq) {
		if v, ok := g.ForCustomer(""); ok {
			groups = append(groups, v)
		}
	}
	return groups, s.alarmLog.NextSeq() - 1
}

// Conn finds a connection by ID across every shard.
func (s *ShardSet) Conn(id ConnID) *Connection {
	for _, sh := range s.shards {
		if conn := sh.Ctrl.Conn(id); conn != nil {
			return conn
		}
	}
	return nil
}

// Snapshot aggregates per-shard statistics. Counters sum (each shard's
// device pools are its own inventory allocation); DownLinks come from shard
// 0, whose fiber state every shard replicates.
func (s *ShardSet) Snapshot() Stats {
	if len(s.shards) == 1 {
		return s.shards[0].Ctrl.Snapshot()
	}
	var out Stats
	for i, sh := range s.shards {
		st := sh.Ctrl.Snapshot()
		out.Pending += st.Pending
		out.Active += st.Active
		out.Down += st.Down
		out.Restoring += st.Restoring
		out.Released += st.Released
		out.InternalConns += st.InternalConns
		out.ChannelsInUse += st.ChannelsInUse
		out.OTsInUse += st.OTsInUse
		out.OTsTotal += st.OTsTotal
		out.RegensInUse += st.RegensInUse
		out.RegensTotal += st.RegensTotal
		out.Pipes += st.Pipes
		out.SlotsInUse += st.SlotsInUse
		out.SlotsTotal += st.SlotsTotal
		out.Events += st.Events
		if i == 0 {
			out.DownLinks = st.DownLinks
		}
	}
	return out
}

// WriteMetrics renders the set's instruments in Prometheus text format: one
// shard's registry verbatim for a single-shard set (byte-compatible with the
// unsharded controller), the per-shard registries merged under an injected
// shard label otherwise.
func (s *ShardSet) WriteMetrics(w io.Writer) error {
	if len(s.shards) == 1 {
		return s.shards[0].Ctrl.Metrics().WritePrometheus(w)
	}
	regs := make([]*obs.Registry, len(s.shards))
	labels := make([]string, len(s.shards))
	for i, sh := range s.shards {
		regs[i] = sh.Ctrl.Metrics()
		labels[i] = fmt.Sprintf("%d", i)
	}
	return obs.WriteMergedPrometheus(w, "shard", labels, regs)
}

// CutFiber fails a fiber on every shard's plant replica; each shard restores
// its own customers. It fails only if every shard refused (the replicas can
// drift on repair state when auto-repair crews finish at different virtual
// times).
func (s *ShardSet) CutFiber(link topo.LinkID) error {
	return s.eachPlant(func(c *Controller) error { return c.CutFiber(link) })
}

// RepairFiber returns a fiber to service on every shard's plant replica.
func (s *ShardSet) RepairFiber(link topo.LinkID) error {
	return s.eachPlant(func(c *Controller) error { return c.RepairFiber(link) })
}

// eachPlant applies a fiber-state mutation to every shard, succeeding if any
// shard accepted it.
func (s *ShardSet) eachPlant(op func(*Controller) error) error {
	var firstErr error
	okAny := false
	for _, sh := range s.shards {
		if err := op(sh.Ctrl); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			okAny = true
		}
	}
	if okAny {
		return nil
	}
	return firstErr
}

// Close releases every shard's journal.
func (s *ShardSet) Close() error {
	var firstErr error
	for _, sh := range s.shards {
		if sh.Store == nil {
			continue
		}
		if err := sh.Store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
