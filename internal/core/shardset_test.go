package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/inventory"
	"griphon/internal/journal"
	"griphon/internal/optics"
	"griphon/internal/topo"
)

func newShardSet(t *testing.T, shards int, cfg ShardSetConfig) *ShardSet {
	t.Helper()
	cfg.Shards = shards
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	s, err := NewShardSet(topo.Testbed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// shardConnect provisions via the owning shard and drives the set in
// lockstep until the connection is active.
func shardConnect(t *testing.T, s *ShardSet, cust, from, to string, rate bw.Rate) *Connection {
	t.Helper()
	c := s.For(inventory.Customer(cust))
	conn, job, err := c.Connect(Request{
		Customer: inventory.Customer(cust),
		From:     topo.SiteID(from),
		To:       topo.SiteID(to),
		Rate:     rate,
	})
	if err != nil {
		t.Fatalf("Connect(%s %s->%s): %v", cust, from, to, err)
	}
	if err := s.Await(job); err != nil {
		t.Fatalf("setup job for %s: %v", cust, err)
	}
	if conn.State != StateActive {
		t.Fatalf("connection %s state = %v, want active", conn.ID, conn.State)
	}
	return conn
}

// twoShardCustomers returns one customer per given shard index, derived by
// probing the hash — the test stays correct if the hash function changes.
func shardCustomers(t *testing.T, s *ShardSet, perShard int) [][]string {
	t.Helper()
	out := make([][]string, s.Len())
	filled := 0
	for i := 0; filled < s.Len(); i++ {
		if i > 10000 {
			t.Fatal("could not find customers for every shard")
		}
		cust := fmt.Sprintf("cust-%d", i)
		sh := s.ShardFor(inventory.Customer(cust))
		if len(out[sh]) < perShard {
			out[sh] = append(out[sh], cust)
			if len(out[sh]) == perShard {
				filled++
			}
		}
	}
	return out
}

func auditSetClean(t *testing.T, s *ShardSet) {
	t.Helper()
	for _, f := range s.AuditInvariants() {
		t.Errorf("audit: %s", f)
	}
}

// TestBookingScopedToCustomer pins the tenant-isolation fix: a booking ID is
// only addressable by the customer that owns it. Before the fix Booking(id)
// returned any tenant's booking to any caller.
func TestBookingScopedToCustomer(t *testing.T) {
	k, c := newTestbed(t, 1)
	at := k.Now().Add(time.Hour)
	b, err := c.ScheduleConnect(Request{Customer: "csp1", From: "DC-A", To: "DC-C", Rate: bw.Rate10G}, at, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	if got, err := c.Booking("csp1", b.ID); err != nil || got != b {
		t.Fatalf("owner lookup = (%v, %v), want the booking", got, err)
	}
	if got, err := c.Booking("csp2", b.ID); err == nil {
		t.Fatalf("cross-tenant lookup returned %+v, want error", got)
	}
	if got := c.Bookings("csp2"); len(got) != 0 {
		t.Errorf("Bookings(csp2) = %d entries, want 0", len(got))
	}
	if got := c.Bookings("csp1"); len(got) != 1 {
		t.Errorf("Bookings(csp1) = %d entries, want 1", len(got))
	}
	if _, err := c.CancelBooking("csp2", b.ID); err == nil {
		t.Error("cross-tenant cancel succeeded, want error")
	}
	// The owner can still cancel; a pending window resolves immediately.
	job, err := c.CancelBooking("csp1", b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !job.Done() || job.Err() != nil {
		t.Errorf("pending-booking cancel: done=%v err=%v", job.Done(), job.Err())
	}
	// The descheduled window never opens.
	k.Run()
	if len(b.Conns) != 0 {
		t.Errorf("cancelled booking provisioned %d conns", len(b.Conns))
	}
	auditClean(t, c)
}

// TestShardSetRoutesAndIsolates: customers land on their hash shard, get
// shard-prefixed connection IDs, and both the per-shard and cross-shard
// audits stay clean.
func TestShardSetRoutesAndIsolates(t *testing.T) {
	s := newShardSet(t, 4, ShardSetConfig{})
	custs := shardCustomers(t, s, 1)
	conns := map[string]*Connection{}
	for sh, cc := range custs {
		for _, cust := range cc {
			conn := shardConnect(t, s, cust, "DC-A", "DC-C", bw.Rate10G)
			conns[cust] = conn
			if want := fmt.Sprintf("S%d.", sh); !strings.HasPrefix(string(conn.ID), want) {
				t.Errorf("conn ID %s for %s lacks shard prefix %s", conn.ID, cust, want)
			}
		}
	}
	// Cross-shard search finds every connection.
	for cust, conn := range conns {
		if got := s.Conn(conn.ID); got != conn {
			t.Errorf("Conn(%s) = %v, want %s's connection", conn.ID, got, cust)
		}
	}
	// The merged operator log saw every shard's setups.
	shardsSeen := map[string]bool{}
	for _, e := range s.Events() {
		if i := strings.IndexByte(string(e.Conn), '.'); i > 0 {
			shardsSeen[string(e.Conn)[:i]] = true
		}
	}
	if len(shardsSeen) != 4 {
		t.Errorf("merged events cover %d shards, want 4", len(shardsSeen))
	}
	st := s.Snapshot()
	if st.Active != len(conns) {
		t.Errorf("summed Active = %d, want %d", st.Active, len(conns))
	}
	auditSetClean(t, s)
}

// TestShardSetCoordinatesSpectrum: shards replicate the plant, so without
// the coordinator two shards' first-fit searches would light the same
// channel on the same fiber. With it, every lit (link, channel) is owned by
// exactly one shard.
func TestShardSetCoordinatesSpectrum(t *testing.T) {
	s := newShardSet(t, 2, ShardSetConfig{})
	custs := shardCustomers(t, s, 2)
	for _, cc := range custs {
		for _, cust := range cc {
			shardConnect(t, s, cust, "DC-A", "DC-C", bw.Rate10G)
		}
	}
	// Channel ownership is disjoint across shards on every link.
	for _, l := range topo.Testbed().Links() {
		used := map[optics.Channel]int{}
		for i := 0; i < s.Len(); i++ {
			sp := s.Shard(i).Ctrl.Plant().Spectrum(l.ID)
			for _, ch := range sp.UsedChannels() {
				if prev, clash := used[ch]; clash {
					t.Errorf("link %s channel %d lit by shard %d and shard %d", l.ID, ch, prev, i)
				}
				used[ch] = i
			}
		}
	}
	auditSetClean(t, s)
}

// TestShardSetAuditDetectsCrossLeaks: the cross-shard sweep catches both
// directions of drift — a lit channel with no coordinator claim behind it,
// and a coordinator claim with no lit channel behind it.
func TestShardSetAuditDetectsCrossLeaks(t *testing.T) {
	s := newShardSet(t, 2, ShardSetConfig{})

	// Leak 1: shard 1 lights a channel with the broker bypassed (the bug
	// this audit exists to catch: a reservation path that skips the gate).
	c1 := s.Shard(1).Ctrl
	c1.Plant().SetBroker(nil)
	if err := c1.Plant().Spectrum("I-IV").Reserve(7, "rogue"); err != nil {
		t.Fatal(err)
	}
	c1.Plant().SetBroker(s.Coordinator().Broker(1))

	// Leak 2: shard 0 claims a channel it never lights.
	if err := s.Coordinator().Broker(0).ClaimChannel("I-III", 9, "phantom"); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	for _, f := range s.AuditInvariants() {
		kinds = append(kinds, f.Kind)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "xshard-spectrum") {
		t.Errorf("audit missed the unclaimed lit channel: %v", kinds)
	}
	if !strings.Contains(joined, "xshard-leak") {
		t.Errorf("audit missed the unlit claim: %v", kinds)
	}
}

// TestShardSetLockstepDeterministic: equal seeds give byte-identical merged
// event logs, shard clocks included — the property the lockstep driver
// exists to preserve.
func TestShardSetLockstepDeterministic(t *testing.T) {
	run := func() []string {
		s := newShardSet(t, 3, ShardSetConfig{})
		custs := shardCustomers(t, s, 2)
		for _, cc := range custs {
			for _, cust := range cc {
				c := s.For(inventory.Customer(cust))
				if _, _, err := c.Connect(Request{
					Customer: inventory.Customer(cust), From: "DC-A", To: "DC-C", Rate: bw.Rate10G,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Drain()
		var lines []string
		for _, e := range s.Events() {
			lines = append(lines, fmt.Sprintf("%v %s %s %s", e.At, e.Conn, e.Kind, e.Text))
		}
		return lines
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// TestShardSetParallelDrain: the goroutine-per-shard drive mode reaches the
// same steady state (all setups active, audits clean) as lockstep.
func TestShardSetParallelDrain(t *testing.T) {
	s := newShardSet(t, 4, ShardSetConfig{})
	custs := shardCustomers(t, s, 2)
	var conns []*Connection
	for _, cc := range custs {
		for _, cust := range cc {
			c := s.For(inventory.Customer(cust))
			conn, _, err := c.Connect(Request{
				Customer: inventory.Customer(cust), From: "DC-A", To: "DC-C", Rate: bw.Rate10G,
			})
			if err != nil {
				t.Fatal(err)
			}
			conns = append(conns, conn)
		}
	}
	s.DrainParallel()
	for _, conn := range conns {
		if conn.State != StateActive {
			t.Errorf("connection %s state = %v after parallel drain, want active", conn.ID, conn.State)
		}
	}
	auditSetClean(t, s)
}

// TestShardSetQuotaLandsOnOwningShard pins the SetQuota routing fix: the
// quota is applied and journaled by exactly the customer's shard, is safe to
// change while another shard's choreography is in flight, and survives
// recovery from that shard's journal.
func TestShardSetQuotaLandsOnOwningShard(t *testing.T) {
	dir := t.TempDir()
	s := newShardSet(t, 2, ShardSetConfig{StateDir: dir})
	custs := shardCustomers(t, s, 1)
	custA, custB := custs[0][0], custs[1][0] // different shards by construction

	// custB's setup choreography is in flight on its shard...
	cB := s.For(inventory.Customer(custB))
	connB, jobB, err := cB.Connect(Request{
		Customer: inventory.Customer(custB), From: "DC-A", To: "DC-C", Rate: bw.Rate10G,
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...when custA's quota changes. It must land on custA's shard only.
	s.SetQuota(inventory.Customer(custA), inventory.Quota{MaxConnections: 1})
	if err := s.Await(jobB); err != nil {
		t.Fatalf("in-flight setup disturbed by quota change: %v", err)
	}
	if connB.State != StateActive {
		t.Fatalf("custB connection = %v, want active", connB.State)
	}

	// The quota binds on custA's shard: one connection fits, two don't.
	shardConnect(t, s, custA, "DC-A", "DC-B", bw.Rate1G)
	cA := s.For(inventory.Customer(custA))
	if _, _, err := cA.Connect(Request{
		Customer: inventory.Customer(custA), From: "DC-A", To: "DC-B", Rate: bw.Rate1G,
	}); err == nil {
		t.Fatal("second custA connection admitted past MaxConnections=1")
	}
	// custB is not subject to custA's quota.
	shardConnect(t, s, custB, "DC-A", "DC-B", bw.Rate1G)
	auditSetClean(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: the quota comes back from the owning shard's journal.
	s2 := newShardSet(t, 2, ShardSetConfig{StateDir: dir})
	defer s2.Close()
	cA2 := s2.For(inventory.Customer(custA))
	if _, _, err := cA2.Connect(Request{
		Customer: inventory.Customer(custA), From: "DC-A", To: "DC-B", Rate: bw.Rate1G,
	}); err == nil {
		t.Fatal("recovered shard forgot custA's quota")
	}
	auditSetClean(t, s2)
}

// TestShardSetRehydratesEveryShard: a sharded deployment closes and comes
// back with every shard's connections, spectrum claims and pipe tokens
// rebuilt from that shard's own journal.
func TestShardSetRehydratesEveryShard(t *testing.T) {
	dir := t.TempDir()
	s := newShardSet(t, 3, ShardSetConfig{StateDir: dir})
	custs := shardCustomers(t, s, 1)
	ids := map[string]ConnID{}
	for _, cc := range custs {
		for _, cust := range cc {
			ids[cust] = shardConnect(t, s, cust, "DC-A", "DC-C", bw.Rate10G).ID
		}
	}
	auditSetClean(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newShardSet(t, 3, ShardSetConfig{StateDir: dir})
	defer s2.Close()
	for cust, id := range ids {
		conn := s2.Conn(id)
		if conn == nil || conn.State != StateActive {
			t.Errorf("connection %s of %s not active after rehydration: %+v", id, cust, conn)
			continue
		}
		if got := s2.ShardFor(conn.Customer); !strings.HasPrefix(string(id), fmt.Sprintf("S%d.", got)) {
			t.Errorf("connection %s rehydrated on the wrong shard (owner %d)", id, got)
		}
	}
	// The coordinator's claims were rebuilt: audits (including xshard-leak
	// and xshard-pipe) balance.
	auditSetClean(t, s2)
}

// TestShardSetCrashRecoveryByteEqual: crash the set mid-choreography (setups
// in flight on every shard, nothing drained) and recover. Every shard must
// rehydrate from its own journal to a state byte-identical to the durable
// state the live shard held at the crash instant.
func TestShardSetCrashRecoveryByteEqual(t *testing.T) {
	dir := t.TempDir()
	s := newShardSet(t, 3, ShardSetConfig{StateDir: dir})
	// Shadow each shard's durable state at every journal append: the ground
	// truth recovery must land on is the state at the last commit, not the
	// crash instant (meters and in-flight work are lost by design).
	want := make([][]byte, s.Len())
	for i := 0; i < s.Len(); i++ {
		i, ctrl := i, s.Shard(i).Ctrl
		s.Shard(i).Store.SetOnAppend(func(journal.Entry) {
			st, err := ctrl.DurableState()
			if err != nil {
				t.Errorf("shard %d: %v", i, err)
				return
			}
			want[i] = st
		})
	}
	// First wave completes and commits on every shard...
	custs := shardCustomers(t, s, 2)
	for _, cc := range custs {
		shardConnect(t, s, cc[0], "DC-A", "DC-C", bw.Rate10G)
	}
	// ...then a second wave is mid-choreography when the "process" dies
	// (wavelength setups take ~60 s; we crash 30 s in).
	for _, cc := range custs {
		c := s.For(inventory.Customer(cc[1]))
		if _, _, err := c.Connect(Request{
			Customer: inventory.Customer(cc[1]), From: "DC-A", To: "DC-B", Rate: bw.Rate10G,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Advance(30 * time.Second)
	for i, w := range want {
		if w == nil {
			t.Fatalf("shard %d journaled nothing before the crash", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newShardSet(t, 3, ShardSetConfig{StateDir: dir})
	defer s2.Close()
	for i := 0; i < s2.Len(); i++ {
		got, err := s2.Shard(i).Ctrl.DurableState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("shard %d rehydrated state diverges from its pre-crash durable state", i)
		}
	}
	// The recovered books balance, including the coordinator's rebuilt
	// spectrum and pipe claims.
	auditSetClean(t, s2)
}

// TestSingleShardSetMatchesController: a 1-shard set is byte-compatible with
// the plain controller — no coordinator, no ID prefixes, same journal layout.
func TestSingleShardSetMatchesController(t *testing.T) {
	s := newShardSet(t, 1, ShardSetConfig{})
	if s.Coordinator() != nil {
		t.Error("single-shard set built a coordinator")
	}
	conn := shardConnect(t, s, "acme", "DC-A", "DC-C", bw.Rate10G)
	if strings.Contains(string(conn.ID), ".") {
		t.Errorf("unsharded conn ID %s carries a shard prefix", conn.ID)
	}
	auditSetClean(t, s)
}
