package core

// Customer fault visibility (paper §2.2: the GUI promises "per-customer
// connection management + fault visibility"). The controller feeds three
// surfaces from its existing commit points:
//
//   - the SLA availability ledger (internal/slo): every beginOutage/endOutage
//     transition goes through connDown/connUp below, so the ledger's
//     attributed intervals equal Connection.Outage to the virtual nanosecond;
//   - the customer alarm stream: correlated batches are grouped (one fiber
//     cut -> one root alarm owning its per-circuit children) and appended to
//     a bounded, seq-cursored log;
//   - the flight recorder: bounded rings of recent events, commit records and
//     alarm groups, dumped to JSON when an invariant audit or the chaos soak
//     trips.

import (
	"griphon/internal/alarms"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// SLA returns the availability ledger (always non-nil).
func (c *Controller) SLA() *slo.Ledger { return c.sla }

// SLAReport assembles one customer's availability report as of now. Empty
// customer is the operator view (every non-internal connection).
func (c *Controller) SLAReport(customer string) slo.CustomerReport {
	return c.sla.Report(customer, c.k.Now())
}

// AlarmLog returns the correlated alarm-group log (always non-nil).
func (c *Controller) AlarmLog() *alarms.Log { return c.alarmLog }

// AlarmsSince returns alarm groups after the seq cursor, projected onto one
// customer's view ("" = operator). The returned next cursor resumes the
// stream with no gaps or repeats.
func (c *Controller) AlarmsSince(seq uint64, customer string) (groups []alarms.Group, next uint64) {
	for _, g := range c.alarmLog.Since(seq) {
		if v, ok := g.ForCustomer(customer); ok {
			groups = append(groups, v)
		}
	}
	return groups, c.alarmLog.NextSeq() - 1
}

// FlightRecorder returns the flight recorder (nil unless Config.FlightRecorder
// enabled it).
func (c *Controller) FlightRecorder() *slo.FlightRecorder { return c.flight }

// DumpFlight snapshots the flight recorder, folding audit findings (or soak
// failure lines) into the dump. ok is false when no recorder is attached.
func (c *Controller) DumpFlight(reason string, findings []string) (slo.Dump, bool) {
	if c.flight == nil {
		return slo.Dump{}, false
	}
	return c.flight.Snapshot(reason, c.k.Now(), findings), true
}

// connDown opens the connection's outage clock AND its ledger interval in one
// step, so the two accountings can never drift. The first attribution wins:
// a second hit landing mid-outage does not re-attribute it.
func (c *Controller) connDown(conn *Connection, cause slo.Cause, link topo.LinkID, detail, phase string) {
	if !conn.inOutage {
		c.sla.Down(string(conn.ID), c.k.Now(), cause, link, detail, phase)
	}
	conn.beginOutage(c.k.Now())
}

// connUp closes the outage clock and the ledger interval together.
func (c *Controller) connUp(conn *Connection, resolution string) {
	if conn.inOutage {
		c.sla.Up(string(conn.ID), c.k.Now(), resolution)
	}
	conn.endOutage(c.k.Now())
}

// slaPhase records a phase transition inside the open outage, mirroring the
// restore span children so closed phases tile the interval exactly.
func (c *Controller) slaPhase(conn *Connection, name string) {
	c.sla.Phase(string(conn.ID), c.k.Now(), name)
}

// slaBlock records a blocked restoration attempt inside the open outage.
func (c *Controller) slaBlock(conn *Connection, reason string) {
	c.sla.Block(string(conn.ID), c.k.Now(), reason)
}

// cutCause attributes a link failure: fiber cuts inside a maintenance window
// are planned work, not plant failures.
func (c *Controller) cutCause(link topo.LinkID) slo.Cause {
	if c.maint[link] {
		return slo.CauseMaintenance
	}
	return slo.CauseFiberCut
}

// recordAlarmBatch groups one correlated batch, appends the groups to the
// alarm log, counts them, and feeds the flight recorder.
func (c *Controller) recordAlarmBatch(batch []alarms.Alarm, suspects []topo.LinkID) []alarms.Group {
	for _, a := range batch {
		if ctr := c.ins.alarmsObserved[a.Type]; ctr != nil {
			ctr.Inc()
		}
	}
	groups := c.alarmLog.GroupAndAppend(c.k.Now(), batch, suspects)
	for _, g := range groups {
		if ctr := c.ins.alarmGroups[g.Kind]; ctr != nil {
			ctr.Inc()
		}
		if c.flight != nil {
			c.flight.AlarmGroup(g)
		}
		if c.onAlarmGroup != nil {
			c.onAlarmGroup(g)
		}
	}
	return groups
}

// spanTail exports the tracer's most recent spans for a flight dump.
func (c *Controller) spanTail(n int) []slo.SpanRecord {
	if c.tr == nil {
		return nil
	}
	spans := c.tr.Spans()
	if len(spans) > n {
		spans = spans[len(spans)-n:]
	}
	out := make([]slo.SpanRecord, len(spans))
	for i, s := range spans {
		out[i] = slo.SpanRecord{Name: s.Name, Start: s.Start, End: s.End, Conn: s.Conn, Outcome: s.Outcome}
	}
	return out
}
