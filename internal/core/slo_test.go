package core

import (
	"strings"
	"testing"
	"time"

	"griphon/internal/bw"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// requirePhaseTiling asserts the closed phases of an outage are contiguous
// (each starts where the previous ended) starting at the outage start.
func requirePhaseTiling(t *testing.T, o slo.Outage) {
	t.Helper()
	cursor := o.Start
	for i, p := range o.Phases {
		if p.Open {
			if i != len(o.Phases)-1 {
				t.Fatalf("open phase %q is not last", p.Name)
			}
			break
		}
		if p.Start != cursor {
			t.Errorf("phase %q starts at %v, want %v (gap in tiling)", p.Name, p.Start, cursor)
		}
		cursor = p.End
	}
}

func TestSLALedgerMatchesRestorationOutage(t *testing.T) {
	k, c := newTestbed(t, 31)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if conn.State != StateActive {
		t.Fatalf("state = %v after restoration", conn.State)
	}
	k.RunFor(time.Hour) // accrue some post-restore uptime

	// The ledger and the connection's own outage clock move through the same
	// connDown/connUp chokepoint, so they must agree to the nanosecond.
	if got, want := c.SLA().Downtime(string(conn.ID), k.Now()), conn.Outage(k.Now()); got != want {
		t.Errorf("ledger downtime = %v, connection outage = %v", got, want)
	}

	outages := c.SLA().Outages(string(conn.ID))
	if len(outages) != 1 {
		t.Fatalf("outages = %d, want 1", len(outages))
	}
	o := outages[0]
	if o.Open {
		t.Fatal("outage still open after restoration")
	}
	if o.Cause != slo.CauseFiberCut {
		t.Errorf("cause = %v, want fiber-cut", o.Cause)
	}
	if o.Link != "I-IV" {
		t.Errorf("link = %s, want I-IV", o.Link)
	}
	if o.Customer != "x" {
		t.Errorf("customer = %q", o.Customer)
	}
	if o.Resolution != "restored" {
		t.Errorf("resolution = %q, want restored", o.Resolution)
	}

	// Phases mirror the restoration choreography and tile the interval.
	var names []string
	var sum sim.Duration
	for _, p := range o.Phases {
		if p.Open {
			t.Errorf("phase %q still open in a closed outage", p.Name)
		}
		names = append(names, p.Name)
		sum += p.Duration()
	}
	if got := strings.Join(names, ","); got != "detect,localize,provision" {
		t.Errorf("phases = %s, want detect,localize,provision", got)
	}
	requirePhaseTiling(t, o)
	if want := o.End.Sub(o.Start); sum != want {
		t.Errorf("phases sum to %v but the outage spans %v", sum, want)
	}

	// The customer report rolls it up.
	rep := c.SLAReport("x")
	if rep.OutageCount != 1 || rep.Unattributed != 0 {
		t.Errorf("report outages = %d unattributed = %d", rep.OutageCount, rep.Unattributed)
	}
	if rep.Availability >= 1 || rep.Availability <= 0 {
		t.Errorf("availability = %v, want (0,1) with downtime recorded", rep.Availability)
	}
	if len(rep.Conns) != 1 || rep.Conns[0].Conn != string(conn.ID) {
		t.Fatalf("report conns = %+v", rep.Conns)
	}
}

func TestSLAMaintenanceAttribution(t *testing.T) {
	k := sim.NewKernel(61)
	// Line topology: the connection cannot be rolled off A-B, so it rides
	// the maintenance hit — attributed to planned work, not a fiber cut.
	g := topo.New()
	g.AddNode(topo.Node{ID: "A", HasOTN: true})
	g.AddNode(topo.Node{ID: "B", HasOTN: true})
	g.AddLink(topo.Link{ID: "A-B", A: "A", B: "B", KM: 100})
	g.AddSite(topo.Site{ID: "S1", Home: "A", AccessGbps: 40})
	g.AddSite(topo.Site{ID: "S2", Home: "B", AccessGbps: 40})
	c, err := New(k, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "S1", To: "S2", Rate: bw.Rate10G})
	if _, _, err := c.ScheduleMaintenance("A-B", k.Now().Add(time.Minute), time.Hour); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if conn.State != StateActive {
		t.Fatalf("state after window = %v", conn.State)
	}
	outages := c.SLA().Outages(string(conn.ID))
	if len(outages) != 1 {
		t.Fatalf("outages = %d, want 1", len(outages))
	}
	o := outages[0]
	if o.Cause != slo.CauseMaintenance {
		t.Errorf("cause = %v, want maintenance", o.Cause)
	}
	if o.Link != "A-B" {
		t.Errorf("link = %s", o.Link)
	}
	if o.Resolution != "revived" {
		t.Errorf("resolution = %q, want revived", o.Resolution)
	}
	// The restoration attempt was blocked (no alternate path) and says so.
	if len(o.Blocks) == 0 {
		t.Error("no blocked-restoration record in a pathless outage")
	}
	if got, want := c.SLA().Downtime(string(conn.ID), k.Now()), conn.Outage(k.Now()); got != want {
		t.Errorf("ledger downtime = %v, connection outage = %v", got, want)
	}
}

func TestSLAPlannedHitCauses(t *testing.T) {
	k, c := newTestbed(t, 62)
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate40G})

	// A maintenance window the connection can be rolled off: the brief
	// bridge-and-roll hit is attributed to the roll, not the link work.
	if _, _, err := c.ScheduleMaintenance("I-IV", k.Now().Add(time.Hour), 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	k.Run()
	outages := c.SLA().Outages(string(conn.ID))
	if len(outages) == 0 {
		t.Fatal("no roll hit recorded")
	}
	roll := outages[0]
	if roll.Cause != slo.CauseRoll {
		t.Errorf("roll cause = %v, want roll", roll.Cause)
	}
	if roll.Resolution != "roll-done" {
		t.Errorf("roll resolution = %q", roll.Resolution)
	}

	// An in-place rate adjustment re-frames the line: a short attributed hit.
	before := len(outages)
	if _, err := c.AdjustRate("x", conn.ID, bw.Rate10G); err != nil {
		t.Fatalf("adjust: %v", err)
	}
	k.Run()
	outages = c.SLA().Outages(string(conn.ID))
	if len(outages) != before+1 {
		t.Fatalf("outages = %d after adjust, want %d", len(outages), before+1)
	}
	adj := outages[len(outages)-1]
	if adj.Cause != slo.CauseAdjust {
		t.Errorf("adjust cause = %v, want rate-adjust", adj.Cause)
	}
	if adj.Resolution != "adjust-done" {
		t.Errorf("adjust resolution = %q", adj.Resolution)
	}
	for _, o := range outages {
		if o.Cause == slo.CauseUnknown {
			t.Errorf("unattributed outage: %v", o)
		}
	}
	if got, want := c.SLA().Downtime(string(conn.ID), k.Now()), conn.Outage(k.Now()); got != want {
		t.Errorf("ledger downtime = %v, connection outage = %v", got, want)
	}
}

func TestAlarmStreamGroupsAndFilters(t *testing.T) {
	k, c := newTestbed(t, 63)
	connX := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	connY := mustConnect(t, k, c, Request{Customer: "y", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if connX.Route().String() != "I-IV" || connY.Route().String() != "I-IV" {
		t.Fatalf("routes = %s / %s, want both on I-IV", connX.Route(), connY.Route())
	}
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()

	// One cut, two tenants, four LOS alarms — one fiber-cut group.
	groups, next := c.AlarmsSince(0, "")
	if len(groups) != 1 {
		t.Fatalf("operator groups = %d, want 1", len(groups))
	}
	g := groups[0]
	if g.Kind.String() != "fiber-cut" || g.Link != "I-IV" {
		t.Errorf("group = kind %v link %s", g.Kind, g.Link)
	}
	if len(g.Children) != 4 {
		t.Errorf("children = %d, want 4 (two LOS per circuit)", len(g.Children))
	}
	if got := g.Customers(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("customers = %v", got)
	}

	// Per-tenant isolation: each customer sees only its own children.
	forX, _ := c.AlarmsSince(0, "x")
	if len(forX) != 1 || len(forX[0].Children) != 2 {
		t.Fatalf("customer x view = %+v", forX)
	}
	for _, a := range forX[0].Children {
		if a.Customer != "x" {
			t.Errorf("leaked alarm for %q into x's stream", a.Customer)
		}
	}
	forZ, _ := c.AlarmsSince(0, "z")
	if len(forZ) != 0 {
		t.Errorf("customer z sees %d groups, want 0", len(forZ))
	}

	// The cursor resumes with no repeats.
	again, _ := c.AlarmsSince(next, "")
	if len(again) != 0 {
		t.Errorf("resumed stream replayed %d groups", len(again))
	}
}

func TestEventsSinceCursor(t *testing.T) {
	k, c := newTestbed(t, 64)
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	all, next := c.EventsSince(0)
	if len(all) == 0 || len(all) != len(c.Events()) {
		t.Fatalf("EventsSince(0) = %d events, Events() = %d", len(all), len(c.Events()))
	}
	if next != len(all) {
		t.Errorf("next = %d, want %d", next, len(all))
	}
	// Nothing new yet.
	if more, _ := c.EventsSince(next); len(more) != 0 {
		t.Errorf("caught-up cursor returned %d events", len(more))
	}
	// New activity appears after the cursor only.
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	more, next2 := c.EventsSince(next)
	if len(more) == 0 {
		t.Fatal("no events after a cut+restore")
	}
	if next2 != next+len(more) {
		t.Errorf("next = %d, want %d", next2, next+len(more))
	}
	if more[0].Kind != "fiber-cut" {
		t.Errorf("first resumed event = %q, want fiber-cut", more[0].Kind)
	}
	// Out-of-range cursors clamp instead of panicking.
	if got, _ := c.EventsSince(1 << 30); len(got) != 0 {
		t.Errorf("huge cursor returned %d events", len(got))
	}
	if got, _ := c.EventsSince(-5); len(got) != len(c.Events()) {
		t.Errorf("negative cursor returned %d events", len(got))
	}
}

func TestFlightRecorderCapturesAndDumps(t *testing.T) {
	k := sim.NewKernel(65)
	tr := obs.NewTracer(k)
	c, err := New(k, topo.Testbed(), Config{Tracer: tr, FlightRecorder: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.FlightRecorder() == nil {
		t.Fatal("flight recorder not attached")
	}
	mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()

	dump, ok := c.DumpFlight("test-trip", []string{"synthetic finding"})
	if !ok {
		t.Fatal("DumpFlight reported no recorder")
	}
	if dump.Reason != "test-trip" || len(dump.Findings) != 1 {
		t.Errorf("dump header = %q / %v", dump.Reason, dump.Findings)
	}
	if len(dump.Events) == 0 || len(dump.Events) > 8 {
		t.Errorf("dump events = %d, want 1..8 (bounded ring)", len(dump.Events))
	}
	if len(dump.Commits) == 0 || len(dump.Commits) > 8 {
		t.Errorf("dump commits = %d, want 1..8", len(dump.Commits))
	}
	if len(dump.Alarms) == 0 {
		t.Error("dump has no alarm groups after a fiber cut")
	}
	if len(dump.Spans) == 0 || len(dump.Spans) > 8 {
		t.Errorf("dump spans = %d, want 1..8", len(dump.Spans))
	}
	// Closed outage: not in the open-outage section.
	if len(dump.Outages) != 0 {
		t.Errorf("open outages = %d after restoration", len(dump.Outages))
	}

	// Without the config knob there is no recorder and DumpFlight says so.
	k2, c2 := newTestbed(t, 66)
	_ = k2
	if _, ok := c2.DumpFlight("x", nil); ok {
		t.Error("DumpFlight succeeded without a recorder")
	}
}

// TestRestoreSpanTilingSecondCut (the discriminating case): a second cut kills
// the restoration path while it is being provisioned. The op:restore span must
// close as blocked and its phase children must still tile it exactly, and the
// ledger's open outage must agree with the connection's own clock.
func TestRestoreSpanTilingSecondCut(t *testing.T) {
	k := sim.NewKernel(67)
	tr := obs.NewTracer(k)
	c, err := New(k, topo.Testbed(), Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	conn := mustConnect(t, k, c, Request{Customer: "x", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err := c.CutFiber("I-IV"); err != nil {
		t.Fatal(err)
	}
	// Walk virtual time until the restoration setup is in flight.
	for i := 0; i < 600 && conn.State != StateRestoring; i++ {
		k.RunFor(time.Second)
	}
	if conn.State != StateRestoring {
		t.Fatalf("state = %v, restoration never started", conn.State)
	}
	// Every route into node IV needs I-IV or III-IV; the first is already
	// dark, so this kills the path being provisioned.
	if err := c.CutFiber("III-IV"); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if conn.State != StateDown {
		t.Fatalf("state = %v, want down after the second cut", conn.State)
	}

	restores := tr.SpansNamed("op:restore")
	if len(restores) != 1 {
		t.Fatalf("op:restore spans = %d, want 1", len(restores))
	}
	restore := restores[0]
	if restore.Outcome != "blocked" {
		t.Errorf("op:restore outcome = %q, want blocked", restore.Outcome)
	}
	var sum sim.Duration
	var names []string
	for _, ph := range tr.Children(restore.ID) {
		names = append(names, ph.Name)
		sum += ph.Duration()
	}
	if got := strings.Join(names, ","); got != "restore:detect,restore:localize,restore:provision" {
		t.Errorf("phase spans = %s", got)
	}
	// One virtual clock: the children tile the parent exactly, even though
	// the operation died mid-provision.
	if sum != restore.Duration() {
		t.Errorf("phase spans sum to %v but op:restore spans %v", sum, restore.Duration())
	}

	// The ledger mirrors the same story: an open fiber-cut outage whose
	// closed phases tile up to the blocked instant, then repair-wait.
	outages := c.SLA().Outages(string(conn.ID))
	if len(outages) != 1 {
		t.Fatalf("outages = %d, want 1", len(outages))
	}
	o := outages[0]
	if !o.Open {
		t.Fatal("outage closed while the connection is down")
	}
	if o.Cause != slo.CauseFiberCut || o.Link != "I-IV" {
		t.Errorf("attribution = %v on %s, want fiber-cut on I-IV", o.Cause, o.Link)
	}
	requirePhaseTiling(t, o)
	last := o.Phases[len(o.Phases)-1]
	if !last.Open || last.Name != "repair-wait" {
		t.Errorf("last phase = %+v, want open repair-wait", last)
	}
	if len(o.Blocks) == 0 {
		t.Error("no block record for the failed restoration")
	} else if got := o.Blocks[len(o.Blocks)-1].Reason; !contains(got, "restoration path failed") {
		t.Errorf("block reason = %q", got)
	}
	// The closed phases cover exactly [start of outage, start of repair-wait],
	// which is the op:restore interval.
	if o.Start != restore.Start || last.Start != restore.End {
		t.Errorf("ledger phases [%v..%v] disagree with op:restore [%v..%v]",
			o.Start, last.Start, restore.Start, restore.End)
	}
	if got, want := c.SLA().Downtime(string(conn.ID), k.Now()), conn.Outage(k.Now()); got != want {
		t.Errorf("ledger downtime = %v, connection outage = %v", got, want)
	}
	for _, f := range c.AuditInvariants() {
		t.Errorf("audit: %s", f)
	}
}
