package core

import (
	"fmt"
	"strings"

	"griphon/internal/topo"
)

// Stats is a point-in-time snapshot of controller and network state, feeding
// the customer GUI, the HTTP API and the benchmark harness.
type Stats struct {
	// Connection counts by state (customer connections only).
	Pending, Active, Down, Restoring, Released int
	// InternalConns counts carrier-owned pipe wavelengths.
	InternalConns int
	// ChannelsInUse is the total number of (link, wavelength) pairs
	// occupied across the plant.
	ChannelsInUse int
	// OTsInUse / OTsTotal pool occupancy across all nodes.
	OTsInUse, OTsTotal int
	// RegensInUse / RegensTotal pool occupancy.
	RegensInUse, RegensTotal int
	// Pipes and OTN slot occupancy.
	Pipes, SlotsInUse, SlotsTotal int
	// DownLinks lists failed fibers.
	DownLinks []topo.LinkID
	// Events is the audit log length.
	Events int
}

// Snapshot computes current statistics.
func (c *Controller) Snapshot() Stats {
	var s Stats
	for _, conn := range c.conns {
		if conn.Internal {
			s.InternalConns++
			continue
		}
		switch conn.State {
		case StatePending:
			s.Pending++
		case StateActive:
			s.Active++
		case StateDown:
			s.Down++
		case StateRestoring:
			s.Restoring++
		case StateReleased:
			s.Released++
		}
	}
	for _, l := range c.g.Links() {
		s.ChannelsInUse += c.plant.Spectrum(l.ID).Used()
	}
	for _, n := range c.g.Nodes() {
		s.OTsInUse += c.plant.OTs(n.ID).InUse()
		s.OTsTotal += c.plant.OTs(n.ID).Total()
		s.RegensInUse += c.plant.Regens(n.ID).InUse()
		s.RegensTotal += c.plant.Regens(n.ID).Total()
	}
	for _, p := range c.fabric.Pipes() {
		s.Pipes++
		s.SlotsInUse += p.UsedSlots()
		s.SlotsTotal += p.TotalSlots()
	}
	s.DownLinks = c.plant.DownLinks()
	s.Events = len(c.events)
	return s
}

func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conns: %d active, %d pending, %d down, %d restoring, %d released (%d internal)\n",
		s.Active, s.Pending, s.Down, s.Restoring, s.Released, s.InternalConns)
	fmt.Fprintf(&b, "plant: %d channel-links, OTs %d/%d, regens %d/%d\n",
		s.ChannelsInUse, s.OTsInUse, s.OTsTotal, s.RegensInUse, s.RegensTotal)
	fmt.Fprintf(&b, "otn: %d pipes, slots %d/%d\n", s.Pipes, s.SlotsInUse, s.SlotsTotal)
	if len(s.DownLinks) > 0 {
		fmt.Fprintf(&b, "down links: %v\n", s.DownLinks)
	}
	return b.String()
}
