package core

import (
	"fmt"
	"strings"

	"griphon/internal/topo"
)

// Stats is a point-in-time snapshot of controller and network state, feeding
// the customer GUI, the HTTP API and the benchmark harness.
type Stats struct {
	// Connection counts by state (customer connections only).
	Pending, Active, Down, Restoring, Released int
	// InternalConns counts carrier-owned pipe wavelengths.
	InternalConns int
	// ChannelsInUse is the total number of (link, wavelength) pairs
	// occupied across the plant.
	ChannelsInUse int
	// OTsInUse / OTsTotal pool occupancy across all nodes.
	OTsInUse, OTsTotal int
	// RegensInUse / RegensTotal pool occupancy.
	RegensInUse, RegensTotal int
	// Pipes and OTN slot occupancy.
	Pipes, SlotsInUse, SlotsTotal int
	// DownLinks lists failed fibers.
	DownLinks []topo.LinkID
	// Events is the audit log length.
	Events int
}

// Snapshot computes current statistics.
func (c *Controller) Snapshot() Stats {
	var s Stats
	for _, conn := range c.conns {
		if conn.Internal {
			s.InternalConns++
			continue
		}
		switch conn.State {
		case StatePending:
			s.Pending++
		case StateActive:
			s.Active++
		case StateDown:
			s.Down++
		case StateRestoring:
			s.Restoring++
		case StateReleased:
			s.Released++
		}
	}
	// Topology elements added after plant construction carry no devices yet;
	// the plant accessors return nil for them.
	for _, l := range c.g.Links() {
		if sp := c.plant.Spectrum(l.ID); sp != nil {
			s.ChannelsInUse += sp.Used()
		}
	}
	for _, n := range c.g.Nodes() {
		if b := c.plant.OTs(n.ID); b != nil {
			s.OTsInUse += b.InUse()
			s.OTsTotal += b.Total()
		}
		if b := c.plant.Regens(n.ID); b != nil {
			s.RegensInUse += b.InUse()
			s.RegensTotal += b.Total()
		}
	}
	for _, p := range c.fabric.Pipes() {
		s.Pipes++
		s.SlotsInUse += p.UsedSlots()
		s.SlotsTotal += p.TotalSlots()
	}
	s.DownLinks = c.plant.DownLinks()
	s.Events = len(c.events)
	return s
}

func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conns: %d active, %d pending, %d down, %d restoring, %d released (%d internal)\n",
		s.Active, s.Pending, s.Down, s.Restoring, s.Released, s.InternalConns)
	fmt.Fprintf(&b, "plant: %d channel-links, OTs %d/%d, regens %d/%d\n",
		s.ChannelsInUse, s.OTsInUse, s.OTsTotal, s.RegensInUse, s.RegensTotal)
	fmt.Fprintf(&b, "otn: %d pipes, slots %d/%d\n", s.Pipes, s.SlotsInUse, s.SlotsTotal)
	if len(s.DownLinks) > 0 {
		fmt.Fprintf(&b, "down links: %v\n", s.DownLinks)
	}
	return b.String()
}
