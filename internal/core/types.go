// Package core implements the GRIPhoN controller (paper §2.2): connection
// establishment and release across the FXC, OTN and ROADM layers via their
// EMSes, the resource/inventory database, failure detection, localization and
// automated restoration, bridge-and-roll for planned maintenance and
// reversion, and network re-grooming.
package core

import (
	"fmt"

	"griphon/internal/bw"
	"griphon/internal/fxc"
	"griphon/internal/inventory"
	"griphon/internal/obs"
	"griphon/internal/optics"
	"griphon/internal/otn"
	"griphon/internal/rwa"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// ConnID identifies one connection managed by the controller.
type ConnID string

// State is a connection's lifecycle state.
type State int

const (
	// StatePending: resources reserved, EMS configuration in progress.
	StatePending State = iota
	// StateActive: carrying traffic.
	StateActive
	// StateDown: failed and awaiting restoration or repair.
	StateDown
	// StateRestoring: restoration path being configured.
	StateRestoring
	// StateTearingDown: release in progress.
	StateTearingDown
	// StateReleased: gone; kept for history.
	StateReleased
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateActive:
		return "active"
	case StateDown:
		return "down"
	case StateRestoring:
		return "restoring"
	case StateTearingDown:
		return "tearing-down"
	case StateReleased:
		return "released"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Layer records which network layer realizes a connection (paper Fig. 2).
type Layer int

const (
	// LayerDWDM is a full-wavelength connection switched by ROADMs.
	LayerDWDM Layer = iota
	// LayerOTN is a sub-wavelength circuit groomed by OTN switches.
	LayerOTN
)

func (l Layer) String() string {
	switch l {
	case LayerDWDM:
		return "dwdm"
	case LayerOTN:
		return "otn"
	}
	return fmt.Sprintf("Layer(%d)", int(l))
}

// Protection selects a connection's survivability scheme (paper Table 1).
type Protection int

const (
	// Restore is GRIPhoN's default for wavelengths: automated failure
	// detection and dynamic re-provisioning — far faster than repair,
	// far cheaper than 1+1.
	Restore Protection = iota
	// OnePlusOne pre-provisions a disjoint hot-standby path (expensive;
	// tail-end switch in ~50 ms).
	OnePlusOne
	// Unprotected waits for the fiber to be repaired (today's reality for
	// wavelength services: 4–12 h outages).
	Unprotected
	// SharedMesh is the OTN layer's sub-second shared-mesh restoration;
	// only valid for LayerOTN circuits.
	SharedMesh
)

func (p Protection) String() string {
	switch p {
	case Restore:
		return "restore"
	case OnePlusOne:
		return "1+1"
	case Unprotected:
		return "unprotected"
	case SharedMesh:
		return "shared-mesh"
	}
	return fmt.Sprintf("Protection(%d)", int(p))
}

// lightpath is the resource record of one provisioned wavelength path.
type lightpath struct {
	route  rwa.Route
	ots    [2]*optics.OT
	regens []*optics.Regen
	// fxc client/line port pairs at each terminating PoP.
	portsA, portsB [2]fxc.PortID
	// segNodes and segOwners record the ROADM-layer configuration per
	// transparent segment, for symmetric release.
	segNodes  [][]topo.NodeID
	segOwners []string
	// cached marks a route answered from the path cache; the setup
	// choreography then charges the reduced cached controller overhead.
	cached bool
}

// Connection is the controller's record of one customer connection.
type Connection struct {
	ID       ConnID
	Customer inventory.Customer
	From, To topo.SiteID
	Rate     bw.Rate
	Layer    Layer
	Protect  Protection
	State    State

	// stable is the last committed lifecycle state — what the journal
	// records while State is transiently Pending/Restoring/TearingDown.
	// Maintained at every commit point (see persist.go).
	stable State

	// DWDM realization.
	path *lightpath
	// protect is the 1+1 standby lightpath.
	protect *lightpath
	// onProtect records that traffic currently rides the protect path.
	onProtect bool

	// OTN realization.
	pipes  []*otn.Pipe
	slots  int
	backup []*otn.Pipe

	// Internal marks carrier-owned connections (OTN pipe carriers) that
	// are not customer-visible.
	Internal bool
	// Degraded marks a wavelength request delivered as a groomed OTN
	// circuit because the DWDM layer could not carry it (the last rung of
	// the setup degradation ladder).
	Degraded bool
	// carries is the pipe this internal wavelength transports.
	carries otn.PipeID

	// Timing and accounting.
	RequestedAt  sim.Time
	ActiveAt     sim.Time
	ReleasedAt   sim.Time
	outageStart  sim.Time
	inOutage     bool
	TotalOutage  sim.Duration
	Restorations int
	Rolls        int

	// Usage metering: BoD bills for delivered gigabit-hours, not for the
	// calendar month — and outages are not billed, which is the carrier's
	// skin in the restoration game.
	usageGbHours float64
	meterAt      sim.Time
	metering     bool

	// opSpan traces the operation currently driving this connection
	// (op:setup, op:restore, op:teardown); phaseSpan is the open phase
	// within a restoration (detect, localize, provision). Both are inert
	// zero values when tracing is off.
	opSpan    obs.SpanRef
	phaseSpan obs.SpanRef
}

// SetupTime returns how long establishment took (Table 2's measurement).
// Zero until the connection first becomes active.
func (c *Connection) SetupTime() sim.Duration {
	if c.ActiveAt == 0 && c.State == StatePending {
		return 0
	}
	return c.ActiveAt.Sub(c.RequestedAt)
}

// Route returns the current working fiber path (empty for OTN circuits).
func (c *Connection) Route() topo.Path {
	lp := c.working()
	if lp == nil {
		return topo.Path{}
	}
	return lp.route.Path
}

// Channels returns the working path's per-segment wavelengths.
func (c *Connection) Channels() []optics.Channel {
	lp := c.working()
	if lp == nil {
		return nil
	}
	return append([]optics.Channel(nil), lp.route.Channels...)
}

// PipeIDs returns the OTN pipes a sub-wavelength circuit rides, in order.
func (c *Connection) PipeIDs() []otn.PipeID {
	out := make([]otn.PipeID, len(c.pipes))
	for i, p := range c.pipes {
		out[i] = p.ID()
	}
	return out
}

func (c *Connection) working() *lightpath {
	if c.onProtect {
		return c.protect
	}
	return c.path
}

// Outage returns the cumulative downtime, including a still-open outage.
func (c *Connection) Outage(now sim.Time) sim.Duration {
	total := c.TotalOutage
	if c.inOutage {
		total += now.Sub(c.outageStart)
	}
	return total
}

func (c *Connection) beginOutage(now sim.Time) {
	if !c.inOutage {
		c.settleUsage(now)
		c.inOutage = true
		c.outageStart = now
	}
}

func (c *Connection) endOutage(now sim.Time) {
	if c.inOutage {
		c.settleUsage(now)
		c.TotalOutage += now.Sub(c.outageStart)
		c.inOutage = false
	}
}

// billing reports whether usage accrues right now: traffic flows only on an
// active, outage-free connection.
func (c *Connection) billing() bool {
	return c.metering && c.State == StateActive && !c.inOutage
}

// settleUsage accrues gigabit-hours up to now at the current rate and resets
// the meter. Call it BEFORE any transition that changes billing state (state,
// outage, or rate).
func (c *Connection) settleUsage(now sim.Time) {
	if c.billing() {
		c.usageGbHours += c.Rate.Gbps() * now.Sub(c.meterAt).Hours()
	}
	c.meterAt = now
}

// UsageGbHours returns the delivered gigabit-hours as of now (live segment
// included).
func (c *Connection) UsageGbHours(now sim.Time) float64 {
	total := c.usageGbHours
	if c.billing() {
		total += c.Rate.Gbps() * now.Sub(c.meterAt).Hours()
	}
	return total
}

// Event is one entry of the controller's audit log, which feeds the customer
// GUI's connection/fault views.
type Event struct {
	At   sim.Time
	Conn ConnID
	Kind string
	Text string
}

func (e Event) String() string {
	return fmt.Sprintf("[%v] %s %s: %s", e.At, e.Conn, e.Kind, e.Text)
}
