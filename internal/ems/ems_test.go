package ems

import (
	"errors"
	"testing"
	"time"

	"griphon/internal/faults"
	"griphon/internal/sim"
)

func TestManagerSerialExecution(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("roadm-ems", k)
	var done []sim.Time
	for i := 0; i < 3; i++ {
		m.Submit(Command{Name: "step", Dur: 10 * time.Second, Apply: func() error {
			done = append(done, k.Now())
			return nil
		}})
	}
	if m.QueueLen() != 2 {
		t.Errorf("queue = %d, want 2 (one in flight)", m.QueueLen())
	}
	k.Run()
	want := []sim.Time{sim.Time(10 * time.Second), sim.Time(20 * time.Second), sim.Time(30 * time.Second)}
	if len(done) != 3 {
		t.Fatalf("completed %d commands", len(done))
	}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("command %d finished at %v, want %v (serial)", i, done[i], want[i])
		}
	}
	if m.Served() != 3 {
		t.Errorf("Served = %d", m.Served())
	}
	if m.BusyTime() != 30*time.Second {
		t.Errorf("BusyTime = %v", m.BusyTime())
	}
	if m.Name() != "roadm-ems" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestManagerApplyErrorFailsJob(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	boom := errors.New("boom")
	j1 := m.Submit(Command{Name: "bad", Dur: time.Second, Apply: func() error { return boom }})
	j2 := m.Submit(Command{Name: "good", Dur: time.Second})
	k.Run()
	if j1.Err() != boom {
		t.Errorf("j1 err = %v", j1.Err())
	}
	if j2.Err() != nil || !j2.Done() {
		t.Error("command after a failing one did not run")
	}
}

func TestManagerNegativeDuration(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	j := m.Submit(Command{Name: "neg", Dur: -time.Second})
	k.Run()
	if j.Err() == nil {
		t.Error("negative duration accepted")
	}
}

func TestSubmitBatch(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	boom := errors.New("boom")
	n := 0
	batch := m.SubmitBatch([]Command{
		{Name: "a", Dur: time.Second, Apply: func() error { n++; return nil }},
		{Name: "b", Dur: time.Second, Apply: func() error { n++; return boom }},
		{Name: "c", Dur: time.Second, Apply: func() error { n++; return nil }},
	})
	k.Run()
	if !batch.Done() || batch.Err() != boom {
		t.Errorf("batch done=%v err=%v", batch.Done(), batch.Err())
	}
	if n != 3 {
		t.Errorf("batch executed %d commands, want all 3", n)
	}
	if batch.Elapsed() != 3*time.Second {
		t.Errorf("batch elapsed = %v", batch.Elapsed())
	}
	empty := m.SubmitBatch(nil)
	k.Run()
	if !empty.Done() || empty.Err() != nil {
		t.Error("empty batch should complete immediately")
	}
}

func TestManagerInterleavedSubmit(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	var order []string
	m.Submit(Command{Name: "first", Dur: 5 * time.Second, Apply: func() error {
		order = append(order, "first")
		// A command submitted mid-flight queues behind in-order work.
		m.Submit(Command{Name: "third", Dur: time.Second, Apply: func() error {
			order = append(order, "third")
			return nil
		}})
		return nil
	}})
	m.Submit(Command{Name: "second", Dur: time.Second, Apply: func() error {
		order = append(order, "second")
		return nil
	}})
	k.Run()
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Errorf("order = %v", order)
	}
}

func TestWavelengthSetupMeanMatchesTable2(t *testing.T) {
	lat := Default()
	// Paper Table 2: 62.48 s / 65.67 s / 70.94 s for 1/2/3 hops. The
	// calibrated model must land within a second or two of each.
	cases := []struct {
		hops int
		min  time.Duration
		max  time.Duration
	}{
		{1, 60 * time.Second, 65 * time.Second},
		{2, 63 * time.Second, 69 * time.Second},
		{3, 68 * time.Second, 74 * time.Second},
	}
	var prev time.Duration
	for _, c := range cases {
		got := lat.WavelengthSetupMean(c.hops, 0)
		if got < c.min || got > c.max {
			t.Errorf("setup(%d hops) = %v, want in [%v, %v]", c.hops, got, c.min, c.max)
		}
		if got <= prev {
			t.Errorf("setup time not increasing with hops at %d", c.hops)
		}
		prev = got
	}
	if lat.WavelengthSetupMean(0, 0) != 0 {
		t.Error("0 hops should cost nothing")
	}
	// Regens add time.
	if lat.WavelengthSetupMean(3, 1) <= lat.WavelengthSetupMean(3, 0) {
		t.Error("regen did not add setup time")
	}
}

func TestWavelengthTeardownMeanNear10s(t *testing.T) {
	got := Default().WavelengthTeardownMean()
	if got < 8*time.Second || got > 12*time.Second {
		t.Errorf("teardown = %v, want ~10 s (paper §3)", got)
	}
}

func TestJitterAndRepair(t *testing.T) {
	lat := Default()
	rng := sim.NewRand(1)
	base := 10 * time.Second
	varied := false
	for i := 0; i < 50; i++ {
		d := lat.Jitter(rng, base)
		if d <= 0 {
			t.Fatal("jittered duration non-positive")
		}
		if d != base {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never varied")
	}
	lat.JitterRel = 0
	if lat.Jitter(rng, base) != base {
		t.Error("zero jitter changed duration")
	}
	lat = Default()
	for i := 0; i < 100; i++ {
		r := lat.FiberRepair(rng)
		if r < lat.FiberRepairMin || r >= lat.FiberRepairMax {
			t.Fatalf("repair %v outside [%v,%v)", r, lat.FiberRepairMin, lat.FiberRepairMax)
		}
	}
}

func TestOTNRestoreBudgetSubSecond(t *testing.T) {
	lat := Default()
	// Detection + localization-free activation across a 5-switch path
	// must stay sub-second (paper §2.1: "automatic sub-second shared-mesh
	// restoration similar to today's SONET layer").
	total := lat.OTNDetect + 5*lat.OTNActivatePerSwitch
	if total >= time.Second {
		t.Errorf("OTN restore budget %v is not sub-second", total)
	}
	if lat.ProtectionSwitch > 100*time.Millisecond {
		t.Errorf("1+1 switch %v too slow", lat.ProtectionSwitch)
	}
}

func TestInjectFailures(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	boom := errors.New("vendor timeout")
	m.InjectFailures(2, boom)
	j1 := m.Submit(Command{Name: "a", Dur: time.Second})
	j2 := m.Submit(Command{Name: "b", Dur: time.Second})
	j3 := m.Submit(Command{Name: "c", Dur: time.Second})
	k.Run()
	if j1.Err() != boom || j2.Err() != boom {
		t.Errorf("injected failures missing: %v, %v", j1.Err(), j2.Err())
	}
	if j3.Err() != nil {
		t.Errorf("third command failed: %v", j3.Err())
	}
	// Injection with nil error synthesizes one.
	m.InjectFailures(1, nil)
	j4 := m.Submit(Command{Name: "d", Dur: time.Second})
	k.Run()
	if j4.Err() == nil {
		t.Error("nil-error injection did not fail the command")
	}
	// Clearing the injection.
	m.InjectFailures(3, boom)
	m.InjectFailures(0, nil)
	j5 := m.Submit(Command{Name: "e", Dur: time.Second})
	k.Run()
	if j5.Err() != nil {
		t.Errorf("cleared injection still fired: %v", j5.Err())
	}
	// Injected failures skip Apply entirely.
	m.InjectFailures(1, boom)
	applied := false
	j6 := m.Submit(Command{Name: "f", Dur: time.Second, Apply: func() error {
		applied = true
		return nil
	}})
	k.Run()
	if j6.Err() != boom || applied {
		t.Errorf("err=%v applied=%v", j6.Err(), applied)
	}
}

// TestBusyTimeAccruesAtCompletion is the regression test for BusyTime
// over-reporting: with a 10 s command halfway through execution, BusyTime must
// still read zero — it counts only completed work.
func TestBusyTimeAccruesAtCompletion(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	m.Submit(Command{Name: "slow", Dur: 10 * time.Second})
	k.RunFor(5 * time.Second)
	if got := m.BusyTime(); got != 0 {
		t.Errorf("BusyTime mid-flight = %v, want 0", got)
	}
	k.Run()
	if got := m.BusyTime(); got != 10*time.Second {
		t.Errorf("BusyTime after completion = %v, want 10s", got)
	}
}

// TestFaultModelOnManager wires a faults.Model in and checks the three
// behaviors the manager must honor: classified failures, skipped Apply, and
// latency inflation reflected in both the completion time and BusyTime.
func TestFaultModelOnManager(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("roadm-ems", k)
	m.SetFaults(faults.NewModel(k, faults.Profile{Transient: 1}))
	applied := false
	j := m.Submit(Command{Name: "laser-tune", Dur: time.Second, Apply: func() error {
		applied = true
		return nil
	}})
	k.Run()
	if !faults.IsTransient(j.Err()) {
		t.Fatalf("err = %v, want a transient fault", j.Err())
	}
	if applied {
		t.Error("Apply ran on a failed command")
	}

	// Latency inflation: every command takes 2-4x nominal, and BusyTime
	// accounts the inflated duration.
	m2 := NewManager("slow-ems", k)
	m2.SetFaults(faults.NewModel(k, faults.Profile{Slow: 1, SlowMax: 4}))
	start := k.Now()
	j2 := m2.Submit(Command{Name: "verify", Dur: time.Second})
	k.Run()
	took := j2.End().Sub(start)
	if took < time.Second || took > 4*time.Second {
		t.Errorf("inflated command took %v, want within [1s, 4s]", took)
	}
	if m2.BusyTime() != took {
		t.Errorf("BusyTime = %v, want the inflated %v", m2.BusyTime(), took)
	}
}

// TestInjectFailuresPrecedence pins the interleaving contract between the
// deterministic test hook and the probabilistic model: while injections are
// pending the model is not consulted; once they are exhausted or cleared, the
// model rules again.
func TestInjectFailuresPrecedence(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	model := faults.NewModel(k, faults.Profile{Transient: 1}) // would fail everything
	m.SetFaults(model)
	boom := errors.New("injected")
	m.InjectFailures(1, boom)

	applied := false
	j1 := m.Submit(Command{Name: "a", Dur: time.Second, Apply: func() error {
		applied = true
		return nil
	}})
	k.Run()
	if j1.Err() != boom {
		t.Fatalf("err = %v, want the injected error (injection takes precedence)", j1.Err())
	}
	if applied {
		t.Error("Apply ran on an injected failure")
	}
	if model.Stats().Decisions != 0 {
		t.Errorf("fault model consulted %d times during injection, want 0", model.Stats().Decisions)
	}

	// Injection exhausted: the model rules again.
	j2 := m.Submit(Command{Name: "b", Dur: time.Second})
	k.Run()
	if !faults.IsTransient(j2.Err()) {
		t.Errorf("post-injection err = %v, want a model fault", j2.Err())
	}

	// Clearing a pending injection also hands control back to the model.
	m.InjectFailures(5, boom)
	m.InjectFailures(0, nil)
	j3 := m.Submit(Command{Name: "c", Dur: time.Second})
	k.Run()
	if !faults.IsTransient(j3.Err()) {
		t.Errorf("post-clear err = %v, want a model fault, not %v", j3.Err(), boom)
	}
}

func TestManagerElementLanesConcurrent(t *testing.T) {
	// Three commands on three distinct element lanes finish at max(dur),
	// not sum(dur); BusyTime still accrues the sum.
	k := sim.NewKernel(1)
	m := NewManager("roadm-ems", k)
	var done []sim.Time
	for _, c := range []struct {
		elem string
		dur  sim.Duration
	}{{"roadm:a", 7 * time.Second}, {"roadm:b", 7 * time.Second}, {"roadm:n", 1 * time.Second}} {
		c := c
		m.Submit(Command{Name: "cfg", Elem: c.elem, Dur: c.dur, Apply: func() error {
			done = append(done, k.Now())
			return nil
		}})
	}
	k.Run()
	if len(done) != 3 {
		t.Fatalf("completed %d commands", len(done))
	}
	last := done[0]
	for _, d := range done[1:] {
		if d > last {
			last = d
		}
	}
	if want := sim.Time(7 * time.Second); last != want {
		t.Errorf("last lane command finished at %v, want %v (concurrent lanes)", last, want)
	}
	if m.BusyTime() != 15*time.Second {
		t.Errorf("BusyTime = %v, want 15s (sum across lanes)", m.BusyTime())
	}
}

func TestManagerSameLaneSerializes(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	var done []sim.Time
	for i := 0; i < 2; i++ {
		m.Submit(Command{Name: "cfg", Elem: "roadm:a", Dur: 4 * time.Second, Apply: func() error {
			done = append(done, k.Now())
			return nil
		}})
	}
	if m.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1 (one in flight on the lane)", m.QueueLen())
	}
	k.Run()
	want := []sim.Time{sim.Time(4 * time.Second), sim.Time(8 * time.Second)}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("command %d finished at %v, want %v (same lane serializes)", i, done[i], want[i])
		}
	}
}

func TestManagerBatchAcrossLanes(t *testing.T) {
	// A batch spanning distinct lanes completes at the slowest lane, and a
	// later submission on one of those lanes waits behind the batch's
	// command on that lane.
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	batch := m.SubmitBatch([]Command{
		{Name: "add-drop:a", Elem: "roadm:a", Dur: 7 * time.Second},
		{Name: "add-drop:b", Elem: "roadm:b", Dur: 7 * time.Second},
		{Name: "express:n", Elem: "roadm:n", Dur: 1 * time.Second},
	})
	var lateDone sim.Time
	m.Submit(Command{Name: "late", Elem: "roadm:a", Dur: 1 * time.Second, Apply: func() error {
		lateDone = k.Now()
		return nil
	}})
	k.Run()
	if batch.Err() != nil {
		t.Fatalf("batch failed: %v", batch.Err())
	}
	if want := 7 * time.Second; batch.Elapsed() != want {
		t.Errorf("batch took %v, want %v (lanes concurrent)", batch.Elapsed(), want)
	}
	if want := sim.Time(8 * time.Second); lateDone != want {
		t.Errorf("late command finished at %v, want %v (queued behind batch on its lane)", lateDone, want)
	}
}

func TestManagerDefaultLaneUnchanged(t *testing.T) {
	// Commands without Elem share the single default lane: fully serialized,
	// exactly the paper-measured behavior.
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	j := m.SubmitBatch([]Command{
		{Name: "s1", Dur: 3 * time.Second},
		{Name: "s2", Dur: 4 * time.Second},
	})
	k.Run()
	if want := 7 * time.Second; j.Elapsed() != want {
		t.Errorf("default-lane batch took %v, want %v (serial)", j.Elapsed(), want)
	}
}

func TestInjectFailuresGlobalAcrossLanes(t *testing.T) {
	// failNext counts commands in dequeue order across all lanes.
	k := sim.NewKernel(1)
	m := NewManager("e", k)
	boom := errors.New("boom")
	m.InjectFailures(2, boom)
	j1 := m.Submit(Command{Name: "a", Elem: "la", Dur: time.Second})
	j2 := m.Submit(Command{Name: "b", Elem: "lb", Dur: time.Second})
	j3 := m.Submit(Command{Name: "c", Elem: "lc", Dur: time.Second})
	k.Run()
	if j1.Err() != boom || j2.Err() != boom {
		t.Errorf("first two commands: errs %v, %v, want injected failure", j1.Err(), j2.Err())
	}
	if j3.Err() != nil {
		t.Errorf("third command failed: %v", j3.Err())
	}
}
