// Package ems models the vendor Element Management Systems through which the
// GRIPhoN controller drives all hardware (paper §2.2: "The GRIPhoN controller
// communicates with the network elements via the appropriate vendor-supplied
// EMS"). Each manager executes commands strictly in order, one at a time,
// with per-step latencies — the paper attributes its 60–70 s wavelength setup
// times to exactly these EMS configuration steps plus optical tasks, and
// notes they reflect "a lack of current carrier requirements for speed", not
// physics.
package ems

import (
	"time"

	"griphon/internal/sim"
)

// Latencies is the calibrated per-step latency table. The wavelength-setup
// constants are fitted to paper Table 2 (establishment ~62.5 s at 1 hop,
// ~65.7 s at 2, ~70.9 s at 3; teardown ~10 s): a least-squares line through
// Table 2 gives ~57.9 s fixed cost + ~4.2 s per hop, which the table below
// decomposes into the steps the paper names.
type Latencies struct {
	// --- wavelength (DWDM layer) connection setup, paper §3 ---

	// ControllerOverhead covers request admission, path computation and
	// resource-database updates in the GRIPhoN controller.
	ControllerOverhead time.Duration
	// ControllerOverheadCached is the controller overhead when the route
	// came from the path cache (no fresh K-shortest search or regeneration
	// planning). Zero falls back to ControllerOverhead.
	ControllerOverheadCached time.Duration
	// EMSSession is the overhead of establishing vendor-EMS sessions and
	// dispatching the command batch for one connection.
	EMSSession time.Duration
	// FXCConnect is one fiber cross-connect port-mapping operation (one
	// end; a connection does two).
	FXCConnect time.Duration
	// ROADMAddDrop configures a colorless/directionless add-drop port at
	// one terminating ROADM (done at both ends).
	ROADMAddDrop time.Duration
	// ROADMExpress configures the express path through one intermediate
	// ROADM.
	ROADMExpress time.Duration
	// LaserTune covers tuning the transponder lasers to the assigned
	// wavelength (both ends, sequential EMS steps).
	LaserTune time.Duration
	// PowerBalancePerHop is per-span optical power balancing.
	PowerBalancePerHop time.Duration
	// LinkEqualize is end-to-end link equalization.
	LinkEqualize time.Duration
	// VerifyEndToEnd is the final light-level / client-signal check
	// before the connection is handed to the customer.
	VerifyEndToEnd time.Duration

	// --- wavelength teardown (paper §3: "around 10 seconds") ---

	// TeardownController is the controller-side release bookkeeping.
	TeardownController time.Duration
	// TeardownEMSSession is the EMS dispatch overhead of a teardown batch.
	TeardownEMSSession time.Duration
	// FXCDisconnect is one FXC unmapping (two per connection).
	FXCDisconnect time.Duration
	// ROADMRelease releases one terminating ROADM's add/drop port.
	ROADMRelease time.Duration

	// --- regeneration ---

	// RegenConfig configures one intermediate regenerator (patching it in
	// via the local FXC and tuning its lasers).
	RegenConfig time.Duration

	// --- OTN (sub-wavelength) operations, paper §2.1 ---

	// OTNProgramPerSwitch is one electronic cross-connect update; these
	// are why "this is achievable today at low data rates".
	OTNProgramPerSwitch time.Duration
	// OTNDetect is failure detection at the OTN layer.
	OTNDetect time.Duration
	// OTNActivatePerSwitch reprograms one switch during shared-mesh
	// restoration; the total stays sub-second like today's SONET layer.
	OTNActivatePerSwitch time.Duration

	// --- failure handling and maintenance ---

	// AlarmLatency is how long a LOS alarm takes to reach the controller.
	AlarmLatency time.Duration
	// Localize is alarm correlation and fault localization in the
	// controller.
	Localize time.Duration
	// ProtectionSwitch is a 1+1 tail-end protection switch.
	ProtectionSwitch time.Duration
	// RollHit is the traffic hit of the bridge-and-roll "roll" step
	// ("almost hitless").
	RollHit time.Duration
	// FiberRepairMin/Max bound the time a crew needs to fix a cut; the
	// paper quotes 4–12 h outages when restoration is manual.
	FiberRepairMin time.Duration
	FiberRepairMax time.Duration

	// JitterRel is the relative standard deviation applied to every step.
	JitterRel float64
}

// Default returns the latency table calibrated against the paper.
func Default() Latencies {
	return Latencies{
		ControllerOverhead:       2 * time.Second,
		ControllerOverheadCached: 500 * time.Millisecond,
		EMSSession:               10 * time.Second,
		FXCConnect:               1500 * time.Millisecond,
		ROADMAddDrop:             7 * time.Second,
		ROADMExpress:             1 * time.Second,
		LaserTune:                13 * time.Second,
		PowerBalancePerHop:       3200 * time.Millisecond,
		LinkEqualize:             9 * time.Second,
		VerifyEndToEnd:           8 * time.Second,

		TeardownController: 1 * time.Second,
		TeardownEMSSession: 2 * time.Second,
		FXCDisconnect:      1500 * time.Millisecond,
		ROADMRelease:       2 * time.Second,

		RegenConfig: 9 * time.Second,

		OTNProgramPerSwitch:  400 * time.Millisecond,
		OTNDetect:            50 * time.Millisecond,
		OTNActivatePerSwitch: 120 * time.Millisecond,

		AlarmLatency:     500 * time.Millisecond,
		Localize:         2 * time.Second,
		ProtectionSwitch: 50 * time.Millisecond,
		RollHit:          25 * time.Millisecond,
		FiberRepairMin:   4 * time.Hour,
		FiberRepairMax:   12 * time.Hour,

		JitterRel: 0.03,
	}
}

// WavelengthSetupMean returns the deterministic (jitter-free) total setup
// time for a wavelength connection over the given hop count with the given
// number of regenerations — the quantity paper Table 2 reports. Exposed so
// benches can compare measured distributions against the model.
func (l Latencies) WavelengthSetupMean(hops, regens int) time.Duration {
	if hops < 1 {
		return 0
	}
	d := l.ControllerOverhead + l.EMSSession +
		2*l.FXCConnect +
		2*l.ROADMAddDrop +
		time.Duration(hops-1)*l.ROADMExpress +
		l.LaserTune +
		time.Duration(hops)*l.PowerBalancePerHop +
		l.LinkEqualize +
		l.VerifyEndToEnd
	d += time.Duration(regens) * l.RegenConfig
	return d
}

// WavelengthSetupGraphMean returns the deterministic total setup time for
// the dependency-graph choreography on an uncontended network: FXC connects
// run concurrently with EMS-session establishment, per-element ROADM
// configuration runs concurrently across elements (and with laser tuning),
// and only power-balance → link-equalize → verify stay ordered. Per-hop
// power balancing is serialized within the optical lane, so it still scales
// with hops.
func (l Latencies) WavelengthSetupGraphMean(hops, regens int) time.Duration {
	if hops < 1 {
		return 0
	}
	// Element configuration: the slowest of the concurrent per-element
	// commands (terminating add-drops, intermediate expresses, regens).
	elem := l.ROADMAddDrop
	if hops > 1 && l.ROADMExpress > elem {
		elem = l.ROADMExpress
	}
	if regens > 0 && l.RegenConfig > elem {
		elem = l.RegenConfig
	}
	// Laser tuning overlaps element configuration; both wait on the session.
	par := elem
	if l.LaserTune > par {
		par = l.LaserTune
	}
	// verify waits on the optical chain AND both FXC connects; the FXC leg
	// binds only if longer than the whole EMS-side path (it never is with
	// realistic tables, but keep the model honest).
	pre := l.ControllerOverhead + l.EMSSession + par +
		time.Duration(hops)*l.PowerBalancePerHop + l.LinkEqualize
	if fxc := l.ControllerOverhead + l.FXCConnect; fxc > pre {
		pre = fxc
	}
	return pre + l.VerifyEndToEnd
}

// WavelengthTeardownMean returns the deterministic total teardown time.
func (l Latencies) WavelengthTeardownMean() time.Duration {
	return l.TeardownController + l.TeardownEMSSession + 2*l.FXCDisconnect + 2*l.ROADMRelease
}

// Jitter applies the table's relative jitter to a step duration.
func (l Latencies) Jitter(rng *sim.Rand, d time.Duration) time.Duration {
	if l.JitterRel <= 0 || rng == nil {
		return d
	}
	return rng.Jitter(d, l.JitterRel)
}

// FiberRepair draws a repair-crew duration.
func (l Latencies) FiberRepair(rng *sim.Rand) time.Duration {
	return rng.UniformDuration(l.FiberRepairMin, l.FiberRepairMax)
}
