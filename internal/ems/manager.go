package ems

import (
	"fmt"

	"griphon/internal/obs"
	"griphon/internal/sim"
)

// Command is one unit of EMS work: a named step with a latency and an
// optional apply function that mutates device state when the step completes.
type Command struct {
	// Name describes the step for logs and traces.
	Name string
	// Dur is the step's latency (already jittered by the caller if
	// desired).
	Dur sim.Duration
	// Elem optionally names the element lane the command occupies (a
	// specific ROADM, a laser controller). Commands sharing a lane execute
	// strictly in order; commands on different lanes run concurrently —
	// vendor EMSes can drive independent elements in parallel sessions
	// even though each element accepts one configuration at a time. The
	// empty Elem is the default lane, giving exactly the fully serialized
	// behavior the paper measured.
	Elem string
	// Apply mutates device state at completion; a nil Apply is pure
	// latency. An Apply error fails the command's job.
	Apply func() error
	// Span is the parent trace span the command executes under (the
	// controller operation that submitted it). The zero SpanRef is fine.
	Span obs.SpanRef
}

// lane is one element's serial command stream: at most one command in flight,
// the rest queued in submission order.
type lane struct {
	busy  bool
	queue []*queued
}

// Manager is one vendor EMS (or element controller): a set of strictly serial
// per-element command lanes. Commands targeting the same element (Command.
// Elem) execute one at a time in submission order — an element accepts a
// single configuration dialogue — while commands for different elements run
// concurrently. Callers that never set Elem get a single serial lane, which
// is the paper's measured behavior: one EMS session processing one
// configuration step at a time, a real contributor to its 60–70 s
// provisioning times.
type Manager struct {
	name    string
	k       *sim.Kernel
	lanes   map[string]*lane
	served  uint64
	busyFor sim.Duration
	tracer  *obs.Tracer

	// Fault injection: failNext commands (counting from the next one to
	// execute, across all lanes) fail with failErr. Used by tests and
	// failure-injection experiments to exercise controller rollback paths.
	failNext int
	failErr  error

	// faults, when non-nil, is the probabilistic fault model consulted for
	// every command at dequeue. Deterministic injection (failNext) takes
	// precedence: the model is not consulted while injections are pending.
	faults Injector
}

// Injector decides the fate of a command about to execute — the hook the
// fault model (internal/faults) plugs in through. It returns the duration the
// command should take (possibly inflated past the nominal d) and a non-nil
// error to fail it. A failing command still occupies its lane for the
// returned duration: a vendor timeout burns its window before reporting
// failure.
type Injector interface {
	Decide(ems, cmd string, d sim.Duration) (sim.Duration, error)
}

// SetFaults attaches (or, with nil, detaches) a probabilistic fault model.
func (m *Manager) SetFaults(f Injector) { m.faults = f }

type queued struct {
	cmd       Command
	job       *sim.Job
	submitted sim.Time
}

// NewManager returns an idle EMS with the given display name.
func NewManager(name string, k *sim.Kernel) *Manager {
	return &Manager{name: name, k: k, lanes: make(map[string]*lane)}
}

// Name returns the EMS's display name.
func (m *Manager) Name() string { return m.name }

// SetTracer attaches the observability plane: each executed command gets a
// span on this manager's track, recording its queue wait and outcome. A nil
// tracer (the default) disables tracing at zero cost.
func (m *Manager) SetTracer(t *obs.Tracer) { m.tracer = t }

// QueueLen returns the number of commands waiting across all lanes (not
// counting the ones in flight).
func (m *Manager) QueueLen() int {
	n := 0
	for _, l := range m.lanes {
		n += len(l.queue)
	}
	return n
}

// Served returns the number of commands completed.
func (m *Manager) Served() uint64 { return m.served }

// BusyTime returns the cumulative virtual time spent executing completed
// commands, summed across lanes (concurrent lanes can make this exceed
// elapsed time). Work still in flight is not counted until it finishes.
func (m *Manager) BusyTime() sim.Duration { return m.busyFor }

// InjectFailures makes the next n commands fail with err when they execute
// (vendor EMS timeouts, rejected configurations). Passing n <= 0 clears any
// pending injection.
func (m *Manager) InjectFailures(n int, err error) {
	if n <= 0 {
		m.failNext = 0
		m.failErr = nil
		return
	}
	if err == nil {
		err = fmt.Errorf("ems: %s: injected failure", m.name)
	}
	m.failNext = n
	m.failErr = err
}

// Submit enqueues a command on its element's lane and returns the job that
// completes when the command has executed. Commands on one lane run in
// submission order.
func (m *Manager) Submit(cmd Command) *sim.Job {
	if cmd.Dur < 0 {
		return m.k.CompletedJob(fmt.Errorf("ems: %s: negative duration for %q", m.name, cmd.Name))
	}
	l := m.lanes[cmd.Elem]
	if l == nil {
		l = &lane{}
		m.lanes[cmd.Elem] = l
	}
	q := &queued{cmd: cmd, job: m.k.NewJob(), submitted: m.k.Now()}
	l.queue = append(l.queue, q)
	if !l.busy {
		m.runNext(l)
	}
	return q.job
}

// SubmitBatch enqueues the commands in order and returns a job that completes
// when the last one does (failing with the first command error in batch
// order, but still executing the rest — an EMS does not abort a batch
// midway). Commands with distinct Elems land on distinct lanes, so a batch
// over independent elements executes concurrently while staying atomic at
// enqueue: no other submission can interleave into the lanes between the
// batch's own commands.
func (m *Manager) SubmitBatch(cmds []Command) *sim.Job {
	if len(cmds) == 0 {
		return m.k.CompletedJob(nil)
	}
	jobs := make([]*sim.Job, len(cmds))
	for i, c := range cmds {
		jobs[i] = m.Submit(c)
	}
	return sim.All(m.k, jobs...)
}

func (m *Manager) runNext(l *lane) {
	if len(l.queue) == 0 {
		l.busy = false
		return
	}
	l.busy = true
	q := l.queue[0]
	l.queue = l.queue[1:]

	// The command's fate is fixed at dequeue. Deterministic injection takes
	// precedence over the fault model, which may also inflate the duration.
	dur, fail := q.cmd.Dur, error(nil)
	if m.failNext > 0 {
		m.failNext--
		fail = m.failErr
		if m.failNext == 0 {
			m.failErr = nil
		}
	} else if m.faults != nil {
		dur, fail = m.faults.Decide(m.name, q.cmd.Name, dur)
	}

	sp := m.tracer.StartTrack(q.cmd.Span, q.cmd.Name, m.name)
	sp.SetWait(m.k.Now().Sub(q.submitted))
	m.k.After(dur, func() {
		err := fail
		if err == nil && q.cmd.Apply != nil {
			err = q.cmd.Apply()
		}
		m.served++
		// Accrued at completion, not dequeue, so BusyTime never counts
		// in-flight work it has not yet spent.
		m.busyFor += dur
		sp.EndErr(err)
		q.job.Complete(err)
		m.runNext(l)
	})
}
