package experiments

import (
	"fmt"
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/inventory"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
	"griphon/internal/traffic"
)

// Blocking sweeps offered load and measures request-blocking probability for
// two transponder-pooling designs: GRIPhoN's shared pool (any customer may
// use any OT, paper §1 "intelligent re-use of the pool of resources across
// multiple customers") versus dedicated per-customer partitions. The shared
// pool blocks less at every load — the classic trunking gain, and the
// paper's §4 resource-planning argument.
func Blocking(seed int64) (Result, error) {
	res := Result{ID: "blocking", Paper: "§4 resource planning (ablation)"}
	const (
		customers = 4
		otsTotal  = 8
		holdMean  = 4 * time.Hour
		horizon   = 30 * 24 * time.Hour
	)
	loads := []float64{1, 2, 4, 6, 8, 12} // mean concurrent requests (erlangs)

	shared := &metrics.Series{Name: "blocking probability: shared OT pool"}
	dedicated := &metrics.Series{Name: "blocking probability: dedicated per-customer OTs"}
	tb := metrics.NewTable("Blocking probability vs offered load (10G requests, backbone, 30 days)",
		"Offered load (erlangs)", "Shared pool", "Dedicated pools", "Pooling gain")

	for _, load := range loads {
		pShared, err := blockingRun(seed, load, holdMean, horizon, otsTotal, 1)
		if err != nil {
			return Result{}, err
		}
		// Dedicated: each of the 4 customers owns otsTotal/customers OTs
		// and receives 1/customers of the load.
		pDed, err := blockingRun(seed+1, load/customers, holdMean, horizon, otsTotal/customers, customers)
		if err != nil {
			return Result{}, err
		}
		shared.Point(load, pShared)
		dedicated.Point(load, pDed)
		gain := "-"
		if pShared > 0 {
			gain = fmt.Sprintf("%.1fx", pDed/pShared)
		} else if pDed > 0 {
			gain = "inf"
		}
		tb.Row(load, pShared, pDed, gain)
		res.value(fmt.Sprintf("shared_%.0f", load), pShared)
		res.value(fmt.Sprintf("dedicated_%.0f", load), pDed)
	}
	res.Tables = append(res.Tables, tb)
	res.Series = append(res.Series, shared, dedicated)
	res.notef("sharing the OT pool across customers lowers blocking at every load (trunking gain)")
	return res, nil
}

// bigAccessBackbone clones the backbone with oversized access pipes so the
// transponder pool is the only bottleneck in the ablation (otherwise the
// dedicated runs would quietly get replicas x the access capacity too).
func bigAccessBackbone() *topo.Graph {
	src := topo.Backbone()
	g := topo.New()
	for _, n := range src.Nodes() {
		g.AddNode(*n) //lint:allow errcheck copying a valid graph
	}
	for _, l := range src.Links() {
		g.AddLink(*l) //lint:allow errcheck copying a valid graph
	}
	for _, s := range src.Sites() {
		c := *s
		c.AccessGbps = 4000
		g.AddSite(c) //lint:allow errcheck copying a valid graph
	}
	return g
}

// blockingRun simulates Poisson 10G requests between random backbone site
// pairs at the given load and returns the fraction blocked. replicas > 1
// runs independent dedicated partitions and averages them.
func blockingRun(seed int64, erlangs float64, holdMean, horizon time.Duration, otsPerNode int, replicas int) (float64, error) {
	var blocked, total int
	for rep := 0; rep < replicas; rep++ {
		k := sim.NewKernel(seed + int64(rep)*15485863)
		cfg := core.Config{}
		cfg.Optics.Channels = 80
		cfg.Optics.ReachKM = 4500 // keep regens out of this ablation
		cfg.Optics.OTsPerNode = otsPerNode
		cfg.Optics.RegensPerNode = 2
		ctrl, err := core.New(k, bigAccessBackbone(), cfg)
		if err != nil {
			return 0, err
		}
		sites := ctrl.Graph().Sites()
		interMean := time.Duration(float64(holdMean) / erlangs)
		cust := inventory.Customer(fmt.Sprintf("csp%d", rep))

		traffic.PoissonArrivals(k, interMean, sim.Time(horizon), func(i int) {
			a := sites[k.Rand().Intn(len(sites))]
			b := sites[k.Rand().Intn(len(sites))]
			for b.ID == a.ID {
				b = sites[k.Rand().Intn(len(sites))]
			}
			total++
			conn, job, err := ctrl.Connect(core.Request{
				Customer: cust, From: a.ID, To: b.ID, Rate: bw.Rate10G,
			})
			if err != nil {
				blocked++
				return
			}
			// Hold starts once the connection is up; setup failures
			// release themselves.
			job.OnDone(func(err error) {
				if err != nil {
					return
				}
				hold := k.Rand().ExpDuration(holdMean)
				k.After(hold, func() {
					ctrl.Disconnect(cust, conn.ID) //lint:allow errcheck ends naturally
				})
			})
		})
		k.Run()
	}
	if total == 0 {
		return 0, nil
	}
	return float64(blocked) / float64(total), nil
}
