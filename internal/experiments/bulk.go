package experiments

import (
	"time"

	"griphon/internal/baseline"
	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
	"griphon/internal/traffic"
)

// Bulk compares completion times for a large inter-DC replication job under
// four regimes: a GRIPhoN BoD wavelength requested just for the transfer, an
// already-provisioned static 10G circuit's leftover capacity, a NetStitcher-
// style store-and-forward schedule over the same leftovers, and ordering a
// new static circuit today (weeks of lead time). This quantifies the paper's
// §1 motivation against its cited related work [22].
func Bulk(seed int64) (Result, error) {
	res := Result{ID: "bulk", Paper: "§1 motivation, NetStitcher comparison"}
	const sizeTB = 50.0
	sizeBytes := sizeTB * traffic.TB

	// --- GRIPhoN BoD: request a 40G wavelength, transfer, release ---
	k := sim.NewKernel(seed)
	ctrl, err := core.New(k, topo.Backbone(), core.Config{})
	if err != nil {
		return Result{}, err
	}
	conn, job, err := ctrl.Connect(core.Request{
		Customer: "bench", From: "DC-SEA", To: "DC-NYC", Rate: bw.Rate40G,
	})
	if err != nil {
		return Result{}, err
	}
	flow, err := traffic.NewFlow(k, "bulk", sizeBytes)
	if err != nil {
		return Result{}, err
	}
	job.OnDone(func(err error) {
		if err == nil {
			flow.SetRate(conn.Rate)
		}
	})
	k.Run()
	if !flow.Completed() {
		return Result{}, job.Err()
	}
	bodTime := flow.Elapsed()

	// --- The static alternative: a 10G circuit chain SEA->CHI->NYC whose
	// leftover capacity follows diurnal interactive load (peak 80% busy,
	// trough 20%), with a time-zone phase shift between the two hops ---
	leftover := func(hop, slot int) float64 {
		t := sim.Time(slot) * sim.Time(time.Hour)
		frac := 1 - (0.2 + 0.6*traffic.Diurnal(t, 14+float64(hop)*6, 0)) // 0.2..0.8 busy
		return frac * float64(bw.Rate10G) * 3600                         // bits per hour-slot
	}
	chain := baseline.StoreForward{SlotLen: time.Hour, Hops: 2, Leftover: leftover, MaxSlots: 100000}

	// Direct end-to-end over the chain: only the simultaneous minimum of
	// both hops' leftovers is usable each hour.
	dres, err := chain.DirectOnly(sizeBytes)
	if err != nil {
		return Result{}, err
	}

	// Store-and-forward: buffer at the relay DC so each hop's leftovers
	// are used whenever they appear (NetStitcher's gain).
	sres, err := chain.Schedule(sizeBytes)
	if err != nil {
		return Result{}, err
	}

	// --- Ordering a new static circuit today ---
	static := baseline.OrderStatic(0, bw.Rate10G)
	stTime, err := static.TransferTime(0, sizeBytes)
	if err != nil {
		return Result{}, err
	}

	tb := metrics.NewTable("50 TB replication SEA->NYC: completion time by approach",
		"Approach", "Completion", "Notes")
	tb.Row("GRIPhoN BoD 40G wavelength", bodTime.Round(time.Minute).String(),
		"setup ~1 min, dedicated 40G, released after")
	tb.Row("static 10G chain, direct end-to-end leftovers", dres.Duration.String(),
		"only simultaneous free capacity on both hops counts")
	tb.Row("store-and-forward via relay DC (NetStitcher-style)", sres.Duration.String(),
		"buffers at the relay to use phase-shifted leftovers")
	tb.Row("order new static 10G today", stTime.Round(time.Hour).String(),
		"three-week provisioning lead time dominates")
	res.Tables = append(res.Tables, tb)

	res.value("bod_s", bodTime.Seconds())
	res.value("leftover_s", dres.Duration.Seconds())
	res.value("storeforward_s", sres.Duration.Seconds())
	res.value("static_order_s", stTime.Seconds())
	res.notef("BoD completes in hours; leftover/store-and-forward in days; new static line in weeks")
	return res, nil
}

// Regroom measures the re-grooming win of paper §4: a connection provisioned
// when only a long route existed is moved, almost hitlessly, onto a newly
// available short route, cutting propagation latency.
func Regroom(seed int64) (Result, error) {
	res := Result{ID: "regroom", Paper: "§4 network re-grooming"}

	k := sim.NewKernel(seed)
	ctrl, err := core.New(k, topo.Testbed(), core.Config{})
	if err != nil {
		return Result{}, err
	}
	// Only the long route exists at provisioning time.
	ctrl.Plant().SetLinkUp("I-IV", false)
	ctrl.Plant().SetLinkUp("I-III", false)
	conn, job, err := ctrl.Connect(core.Request{Customer: "bench", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		return Result{}, err
	}
	k.Run()
	if job.Err() != nil {
		return Result{}, job.Err()
	}
	beforePath := conn.Route()
	beforeKM := beforePath.KM(ctrl.Graph())

	// New routes become available (the network grew).
	ctrl.Plant().SetLinkUp("I-IV", true)
	ctrl.Plant().SetLinkUp("I-III", true)

	moved, rjob, err := ctrl.Regroom("bench", conn.ID)
	if err != nil {
		return Result{}, err
	}
	k.Run()
	if rjob.Err() != nil {
		return Result{}, rjob.Err()
	}
	afterPath := conn.Route()
	afterKM := afterPath.KM(ctrl.Graph())

	tb := metrics.NewTable("Re-grooming a 10G wavelength after a new route appears",
		"Metric", "Before", "After")
	tb.Row("path", beforePath.String(), afterPath.String())
	tb.Row("hops", beforePath.Hops(), afterPath.Hops())
	tb.Row("distance (km)", beforeKM, afterKM)
	tb.Row("propagation delay (ms)", beforeKM*4.9e-3, afterKM*4.9e-3)
	tb.Row("traffic hit", "-", conn.TotalOutage.Round(time.Millisecond).String())
	res.Tables = append(res.Tables, tb)

	res.value("moved", b2f(moved))
	res.value("before_hops", float64(beforePath.Hops()))
	res.value("after_hops", float64(afterPath.Hops()))
	res.value("hit_s", conn.TotalOutage.Seconds())
	res.notef("re-grooming uses bridge-and-roll, so the move costs ~25 ms, not a re-provisioning outage")
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
