package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/faults"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/slo"
	"griphon/internal/topo"
)

// Chaos is the chaos soak: a long randomized workload of setups, teardowns,
// rate adjustments, fiber cuts, rolls, re-grooms and housekeeping runs on the
// testbed with the probabilistic EMS fault model switched on — vendor
// timeouts, rejected configurations, latency inflation and brownout windows —
// and the controller's invariant auditor sweeps the whole resource database
// after every operation. The paper's pitch is an automated controller that
// operators can trust against a hostile field (§2.2, §3); this experiment is
// that claim under test: whatever interleaving of faults, retries, reroutes
// and degradations occurs, the books must balance at every instant.
func Chaos(seed int64) (Result, error) { return ChaosN(seed, 500) }

// ChaosN runs the soak for a configurable number of operations (the short CI
// mode uses fewer).
func ChaosN(seed int64, steps int) (Result, error) {
	res := Result{ID: "chaos", Paper: "§2.2/§3 extension: fault-model soak with invariant audit"}
	k := sim.NewKernel(seed)
	prof := faults.DefaultProfile()
	ctrl, err := core.New(k, topo.Testbed(), core.Config{
		AutoRepair:   true,
		Faults:       &prof,
		DegradeToOTN: true,
		// PR 6 fast-setup machinery rides the soak too: the graph executor,
		// path cache and pre-arm re-arming must all hold up under the fault
		// model with the same silent audit.
		Choreography: core.ChoreoGraph,
		PathCache:    true,
		PreArm:       core.PreArm{WarmOTsPerNode: 1, WarmSessions: 2},
		// Keep the flight recorder rolling so a tripped audit or SLA check
		// can dump the last events/commits/alarm groups for post-mortem.
		FlightRecorder: 256,
	})
	if err != nil {
		return Result{}, err
	}
	rng := k.Rand()
	sites := []topo.SiteID{"DC-A", "DC-B", "DC-C"}
	rates := []bw.Rate{bw.Rate1G, bw.Rate2G5, bw.Rate10G}
	protects := []core.Protection{core.Restore, core.Unprotected, core.OnePlusOne, core.Restore}

	findings := 0
	audit := func(step int, op string) {
		for _, f := range ctrl.AuditInvariants() {
			findings++
			res.notef("AUDIT step %d after %s: %s", step, op, f)
		}
	}

	var live []*core.Connection
	cuts := map[topo.LinkID][]sim.Time{}
	connects, blocked := 0, 0
	for step := 0; step < steps; step++ {
		op := "noop"
		switch rng.Intn(10) {
		case 0, 1, 2: // connect
			op = "connect"
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			if a == b {
				break
			}
			rate := rates[rng.Intn(len(rates))]
			p := protects[rng.Intn(len(protects))]
			if rate < bw.Rate10G && p == core.OnePlusOne {
				p = core.Restore
			}
			conn, _, err := ctrl.Connect(core.Request{
				Customer: "chaos", From: a, To: b, Rate: rate, Protect: p,
			})
			if err != nil {
				blocked++
				break
			}
			connects++
			live = append(live, conn)
		case 3, 4: // disconnect
			op = "disconnect"
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			conn := live[i]
			if conn.State == core.StateActive || conn.State == core.StateDown {
				ctrl.Disconnect("chaos", conn.ID) //lint:allow errcheck may race with teardown
			}
			live = append(live[:i], live[i+1:]...)
		case 5: // adjust a live OTN circuit
			op = "adjust"
			for _, conn := range live {
				if conn.Layer == core.LayerOTN && conn.State == core.StateActive {
					ctrl.AdjustRate("chaos", conn.ID, rates[rng.Intn(2)]) //lint:allow errcheck may be blocked
					break
				}
			}
		case 6: // cut a healthy fiber
			op = "cut"
			links := ctrl.Graph().Links()
			l := links[rng.Intn(len(links))]
			if ctrl.Plant().LinkUp(l.ID) {
				// Record the injection instant: the SLA pass below requires
				// every fiber-cut outage to anchor to one of these.
				cuts[l.ID] = append(cuts[l.ID], k.Now())
				ctrl.CutFiber(l.ID) //lint:allow errcheck verified up
			}
		case 7: // roll or regroom a wavelength
			op = "roll"
			for _, conn := range live {
				if conn.Layer == core.LayerDWDM && conn.State == core.StateActive && conn.Protect != core.OnePlusOne {
					if rng.Intn(2) == 0 {
						ctrl.BridgeAndRoll("chaos", conn.ID, nil) //lint:allow errcheck may lack disjoint path
					} else {
						ctrl.Regroom("chaos", conn.ID) //lint:allow errcheck may be optimal already
					}
					break
				}
			}
		case 8: // housekeeping
			op = "housekeeping"
			if rng.Intn(2) == 0 {
				ctrl.DefragmentSpectrum()
			} else {
				ctrl.ReclaimIdlePipes()
			}
		case 9: // let time pass (EMS queues drain, crews repair, brownouts roll)
			op = "advance"
			k.RunFor(time.Duration(rng.Intn(120)) * time.Minute)
		}
		audit(step, op)
	}
	k.Run()
	audit(steps, "final drain")

	// Close the fault-visibility loop: with every event drained, the SLA
	// ledger's attributed intervals must tile the injected failure windows in
	// virtual time — zero unattributed downtime, and the ledger's accounting
	// byte-identical to the controller's own outage clocks.
	slaBad := verifySLA(ctrl, k.Now(), cuts)
	for _, line := range slaBad {
		res.notef("SLA %s", line)
	}

	stats := ctrl.FaultModel().Stats()
	snap := ctrl.Snapshot()
	mv := func(name, labelSub string) float64 {
		total := 0.0
		for _, p := range ctrl.Metrics().Snapshot() {
			if p.Name == name && strings.Contains(p.Labels, labelSub) {
				total += p.Value
			}
		}
		return total
	}

	tb := metrics.NewTable("Chaos soak: randomized ops under the EMS fault model",
		"Quantity", "Value")
	tb.Row("operations", float64(steps))
	tb.Row("connects", float64(connects))
	tb.Row("connects blocked at admission", float64(blocked))
	tb.Row("EMS command decisions", float64(stats.Decisions))
	tb.Row("transient faults", float64(stats.Transients))
	tb.Row("persistent faults", float64(stats.Persistents))
	tb.Row("slowed commands", float64(stats.Slowed))
	tb.Row("brownout windows", float64(stats.Brownouts))
	tb.Row("EMS retries", mv("griphon_ems_retries_total", ""))
	tb.Row("setups rerouted", mv("griphon_setup_degraded_total", `mode="reroute"`))
	tb.Row("setups groomed", mv("griphon_setup_degraded_total", `mode="groomed"`))
	tb.Row("restorations", mv("griphon_restorations_total", `outcome="restored"`))
	tb.Row("SLA outages attributed", mv("griphon_sla_outages_total", ""))
	tb.Row("SLA unattributed outages", mv("griphon_sla_unattributed_total", ""))
	tb.Row("SLA findings", float64(len(slaBad)))
	tb.Row("audit findings", float64(findings))
	res.Tables = append(res.Tables, tb)

	res.value("ops", float64(steps))
	res.value("connects", float64(connects))
	res.value("decisions", float64(stats.Decisions))
	res.value("transient_faults", float64(stats.Transients))
	res.value("persistent_faults", float64(stats.Persistents))
	res.value("retries", mv("griphon_ems_retries_total", ""))
	res.value("rerouted", mv("griphon_setup_degraded_total", `mode="reroute"`))
	res.value("groomed", mv("griphon_setup_degraded_total", `mode="groomed"`))
	res.value("audit_findings", float64(findings))
	res.value("sla_findings", float64(len(slaBad)))
	res.value("sla_outages", mv("griphon_sla_outages_total", ""))
	res.value("unattributed", mv("griphon_sla_unattributed_total", ""))
	res.value("final_active", float64(snap.Active))
	if findings+len(slaBad) > 0 {
		// Something tripped: dump the flight recorder so the failure carries
		// its own post-mortem (recent events, commits, alarm groups, spans).
		if dump, ok := ctrl.DumpFlight("chaos-soak", append([]string(nil), res.Notes...)); ok {
			var buf bytes.Buffer
			if err := dump.WriteJSON(&buf); err == nil {
				res.artifact("flight.json", buf.Bytes())
			}
		}
	}
	if findings == 0 && len(slaBad) == 0 {
		res.notef("books balanced after every one of %d operations under %d injected faults; "+
			"SLA ledger tiles all %d injected cut windows with zero unattributed downtime",
			steps, stats.Transients+stats.Persistents, len(cuts))
	} else {
		res.notef("VIOLATIONS: %d audit findings, %d SLA findings — see notes above", findings, len(slaBad))
	}
	return res, nil
}

// verifySLA sweeps the availability ledger after the soak's final drain and
// returns one line per violation of the fault-visibility contract:
//
//   - ledger downtime equals Connection.Outage to the virtual nanosecond;
//   - no outage interval is still open once every event has drained;
//   - every interval carries a root cause (never CauseUnknown);
//   - every fiber-cut interval starts at one of the recorded injection
//     instants on its named link;
//   - closed phases tile each interval contiguously from start to end.
func verifySLA(ctrl *core.Controller, now sim.Time, cuts map[topo.LinkID][]sim.Time) []string {
	var bad []string
	oops := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }
	led := ctrl.SLA()
	for _, id := range led.Conns() {
		conn := ctrl.Conn(core.ConnID(id))
		if conn == nil {
			oops("conn %s: ledger tracks a connection the controller does not know", id)
			continue
		}
		if got, want := led.Downtime(id, now), conn.Outage(now); got != want {
			oops("conn %s: ledger downtime %v != controller outage %v", id, got, want)
		}
		for i, o := range led.Outages(id) {
			if o.Open {
				oops("conn %s outage %d: still open after final drain (%v)", id, i, o)
			}
			if o.Cause == slo.CauseUnknown {
				oops("conn %s outage %d: unattributed (%v)", id, i, o)
			}
			if o.Cause == slo.CauseFiberCut && !cutAt(cuts[o.Link], o.Start) {
				oops("conn %s outage %d: fiber-cut start %v matches no injected cut on %s",
					id, i, o.Start, o.Link)
			}
			at := o.Start
			for j, p := range o.Phases {
				if p.Open {
					oops("conn %s outage %d: phase %q still open in a closed interval", id, i, p.Name)
					break
				}
				if p.Start != at {
					oops("conn %s outage %d phase %d (%q): starts at %v, previous ended at %v",
						id, i, j, p.Name, p.Start, at)
				}
				at = p.End
			}
			if len(o.Phases) > 0 && !o.Open && at != o.End {
				oops("conn %s outage %d: phases end at %v, interval at %v", id, i, at, o.End)
			}
		}
	}
	return bad
}

// cutAt reports whether at is one of the recorded injection instants.
func cutAt(times []sim.Time, at sim.Time) bool {
	for _, t := range times {
		if t == at {
			return true
		}
	}
	return false
}
