package experiments

import "testing"

// TestChaosSoak runs the randomized fault-injection soak across several seeds
// and requires the invariant auditor to stay silent throughout. Short mode
// (CI's quick lane) trims the op count and seed set.
func TestChaosSoak(t *testing.T) {
	steps, seeds := 500, []int64{1, 2, 3}
	if testing.Short() {
		steps, seeds = 150, []int64{1}
	}
	for _, seed := range seeds {
		res, err := ChaosN(seed, steps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := res.Values["audit_findings"]; got != 0 {
			for _, n := range res.Notes {
				t.Log(n)
			}
			t.Fatalf("seed %d: %v invariant findings after %d ops", seed, got, steps)
		}
		if got := res.Values["sla_findings"]; got != 0 {
			for _, n := range res.Notes {
				t.Log(n)
			}
			t.Fatalf("seed %d: %v SLA ledger findings after %d ops", seed, got, steps)
		}
		if got := res.Values["unattributed"]; got != 0 {
			t.Errorf("seed %d: %v unattributed outages — every interval must carry a root cause", seed, got)
		}
		if res.Values["sla_outages"] == 0 {
			t.Errorf("seed %d: ledger closed no outages; SLA soak saw no failures", seed)
		}
		if res.Values["decisions"] == 0 {
			t.Errorf("seed %d: fault model saw no EMS commands; soak misconfigured", seed)
		}
		if res.Values["connects"] == 0 {
			t.Errorf("seed %d: no successful connects; workload misconfigured", seed)
		}
	}
}
