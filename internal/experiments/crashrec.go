package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/faults"
	"griphon/internal/journal"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// crashSegmentSize keeps WAL segments tiny so the workload rotates many
// times and the cut space includes plenty of segment boundaries — the
// mid-rotation kill points.
const crashSegmentSize = 1024

// crashArchiveSeq is the sequence number at which the soak photographs the
// live WAL directory; segments compacted away after that point are re-added
// in the mid-compaction trials.
const crashArchiveSeq = 60

// CrashRec is the crash-recovery soak: a journaled controller runs the chaos
// workload under the EMS fault model while a shadow copy of the durable state
// is captured at every WAL sequence point; then the segmented WAL — treated
// as one logical byte stream — is cut at random offsets and at every segment
// boundary (a crash mid-rotation), and covered segments a crashed compactor
// would have left behind are re-injected. Recovery must (a) discard the torn
// tail whole, (b) rehydrate to a state that passes the invariant audit, and
// (c) land byte-identically on the shadow captured at the surviving sequence
// number. A single half-applied operation anywhere breaks (c); a leaked
// resource breaks (b).
func CrashRec(seed int64) (Result, error) { return CrashRecN(seed, 25) }

// walPart is one WAL file's contribution to the logical byte stream.
type walPart struct {
	name string
	data []byte
}

// CrashRecN runs the soak with a configurable number of random-cut trials
// (boundary and compaction trials ride on top).
func CrashRecN(seed int64, trials int) (Result, error) {
	res := Result{ID: "crashrec", Paper: "§2.2 extension: WAL crash injection with shadow-state diff"}
	dir, err := os.MkdirTemp("", "griphon-crashrec-*")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)

	liveDir := filepath.Join(dir, "live")
	store, err := journal.Open(liveDir, journal.Options{SegmentSize: crashSegmentSize})
	if err != nil {
		return Result{}, err
	}
	k := sim.NewKernel(seed)
	prof := faults.DefaultProfile()
	ctrl, err := core.New(k, topo.Testbed(), core.Config{
		AutoRepair:    true,
		Faults:        &prof,
		Journal:       store,
		SnapshotEvery: 24,
	})
	if err != nil {
		return Result{}, err
	}

	// Shadow every committed state: after each durable append the live
	// controller's serialized state is the ground truth for that sequence
	// number. shadows[0] is the empty pre-workload state. At crashArchiveSeq
	// the WAL directory is photographed for the mid-compaction trials.
	shadows := map[uint64][]byte{}
	empty, err := core.ReplayDurable(nil, nil)
	if err != nil {
		return Result{}, err
	}
	shadows[0] = empty
	archive := map[string][]byte{}
	var hookErr error
	store.SetOnAppend(func(e journal.Entry) {
		st, err := ctrl.DurableState()
		if err != nil && hookErr == nil {
			hookErr = err
		}
		shadows[e.Seq] = st
		if e.Seq == crashArchiveSeq {
			paths, err := journal.WALFiles(liveDir)
			if err != nil {
				return
			}
			for _, p := range paths {
				// A racing compactor may unlink files mid-listing; whatever
				// survives the read is the photograph.
				if b, err := os.ReadFile(p); err == nil {
					archive[filepath.Base(p)] = b
				}
			}
		}
	})

	steps := crashWorkload(k, ctrl)
	// Deliberately no final drain: the crash lands mid-workload, with
	// setups, teardowns and repairs still in flight.
	if hookErr != nil {
		return Result{}, hookErr
	}
	if err := store.Close(); err != nil {
		return Result{}, err
	}

	paths, err := journal.WALFiles(liveDir)
	if err != nil {
		return Result{}, err
	}
	var parts []walPart
	total := 0
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return Result{}, err
		}
		parts = append(parts, walPart{name: filepath.Base(p), data: b})
		total += len(b)
	}
	snap, _ := os.ReadFile(filepath.Join(liveDir, "snapshot.db")) //lint:allow errcheck may not exist

	// makeTrialDir lays out a crash at byte offset cut of the logical stream:
	// files wholly below the cut survive intact, the file holding the cut is
	// torn there, and files after it never existed yet.
	makeTrialDir := func(trialDir string, cut int) error {
		if err := os.MkdirAll(trialDir, 0o755); err != nil {
			return err
		}
		if snap != nil {
			if err := os.WriteFile(filepath.Join(trialDir, "snapshot.db"), snap, 0o644); err != nil {
				return err
			}
		}
		rem := cut
		for _, p := range parts {
			if rem <= 0 {
				break
			}
			n := len(p.data)
			if rem < n {
				n = rem
			}
			if err := os.WriteFile(filepath.Join(trialDir, p.name), p.data[:n], 0o644); err != nil {
				return err
			}
			rem -= n
		}
		return nil
	}

	// Cut points: the requested number of random offsets, plus every segment
	// boundary — a crash landing exactly between sealing one segment and
	// writing the first frame of the next.
	rng := sim.NewRand(seed*7 + 13)
	cuts := make([]int, 0, trials+len(parts))
	for trial := 0; trial < trials; trial++ {
		cuts = append(cuts, rng.Intn(total+1))
	}
	boundary := 0
	for _, p := range parts {
		boundary += len(p.data)
		cuts = append(cuts, boundary)
	}

	findings := 0
	tornTotal := int64(0)
	minSeq, maxSeq := uint64(1<<63), uint64(0)
	for trial, cut := range cuts {
		trialDir := filepath.Join(dir, fmt.Sprintf("trial%d", trial))
		if err := makeTrialDir(trialDir, cut); err != nil {
			return Result{}, err
		}

		tstore, err := journal.Open(trialDir, journal.Options{SegmentSize: crashSegmentSize})
		if err != nil {
			findings++
			res.notef("trial %d (cut %d): reopen failed: %v", trial, cut, err)
			continue
		}
		tornTotal += tstore.Stats().TornBytes
		seq := tstore.Seq()
		if seq < minSeq {
			minSeq = seq
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		want, ok := shadows[seq]
		if !ok {
			findings++
			res.notef("trial %d (cut %d): recovered seq %d has no shadow", trial, cut, seq)
			tstore.Close()
			continue
		}
		replayed, err := core.ReplayDurable(tstore.Recovered())
		if err != nil {
			findings++
			res.notef("trial %d (cut %d): replay failed: %v", trial, cut, err)
			tstore.Close()
			continue
		}
		if !bytes.Equal(replayed, want) {
			findings++
			res.notef("trial %d (cut %d): replay of seq %d diverges from shadow", trial, cut, seq)
			tstore.Close()
			continue
		}
		k2 := sim.NewKernel(seed + int64(trial) + 1000)
		ctrl2, err := core.Rehydrate(k2, topo.Testbed(), core.Config{
			AutoRepair: true, Journal: tstore, SnapshotEvery: 24,
		})
		if err != nil {
			// Rehydrate audits the rebuilt state internally; a failure here is
			// a recovery that leaked or double-booked resources.
			findings++
			res.notef("trial %d (cut %d): rehydrate seq %d: %v", trial, cut, seq, err)
			tstore.Close()
			continue
		}
		got, err := ctrl2.DurableState()
		if err != nil {
			return Result{}, err
		}
		if !bytes.Equal(got, want) {
			findings++
			res.notef("trial %d (cut %d): rehydrated state at seq %d diverges from shadow", trial, cut, seq)
		}
		tstore.Close()
	}

	// Mid-compaction kill points: the final snapshot and WAL tail, plus the
	// covered segments a crashed compactor had not yet unlinked (recovered
	// from the archive photograph). Open must skip every covered frame,
	// finish the compaction, and land on the same state.
	finalNames := map[string]bool{}
	for _, p := range parts {
		finalNames[p.name] = true
	}
	compactTrials, staleSegs := 0, 0
	if len(archive) > 0 {
		trialDir := filepath.Join(dir, "compaction")
		if err := makeTrialDir(trialDir, total); err != nil {
			return Result{}, err
		}
		for name, b := range archive {
			if finalNames[name] {
				continue // still live at crash; the cut layout already has it
			}
			staleSegs++
			if err := os.WriteFile(filepath.Join(trialDir, name), b, 0o644); err != nil {
				return Result{}, err
			}
		}
		compactTrials = 1
		tstore, err := journal.Open(trialDir, journal.Options{SegmentSize: crashSegmentSize})
		if err != nil {
			findings++
			res.notef("compaction trial: reopen failed: %v", err)
		} else {
			seq := tstore.Seq()
			replayed, rerr := core.ReplayDurable(tstore.Recovered())
			switch {
			case rerr != nil:
				findings++
				res.notef("compaction trial: replay failed: %v", rerr)
			case !bytes.Equal(replayed, shadows[seq]):
				findings++
				res.notef("compaction trial: replay of seq %d diverges from shadow (%d stale segments present)", seq, staleSegs)
			default:
				tstore.CompactWait()
				left, lerr := journal.WALFiles(trialDir)
				if lerr == nil && len(left) > len(parts) {
					findings++
					res.notef("compaction trial: %d stale segments survived recovery", len(left)-len(parts))
				}
			}
			tstore.Close()
		}
	}

	tb := metrics.NewTable("Crash injection: random WAL truncation, recover, audit, diff",
		"Quantity", "Value")
	tb.Row("workload operations", float64(steps))
	tb.Row("commits journaled", float64(len(shadows)-1))
	tb.Row("WAL bytes at crash", float64(total))
	tb.Row("WAL segments at crash", float64(len(parts)))
	tb.Row("random truncation trials", float64(trials))
	tb.Row("segment-boundary trials", float64(len(parts)))
	tb.Row("mid-compaction trials", float64(compactTrials))
	tb.Row("stale segments re-injected", float64(staleSegs))
	tb.Row("torn bytes discarded", float64(tornTotal))
	tb.Row("lowest surviving seq", float64(minSeq))
	tb.Row("highest surviving seq", float64(maxSeq))
	tb.Row("findings", float64(findings))
	res.Tables = append(res.Tables, tb)

	allTrials := len(cuts) + compactTrials
	res.value("ops", float64(steps))
	res.value("commits", float64(len(shadows)-1))
	res.value("trials", float64(allTrials))
	res.value("segments", float64(len(parts)))
	res.value("torn_bytes", float64(tornTotal))
	res.value("findings", float64(findings))
	if findings == 0 {
		res.notef("%d kill points recovered exactly (%d random, %d segment-boundary, %d mid-compaction): every torn tail discarded whole, every recovery audit-clean and byte-identical to its shadow", allTrials, trials, len(parts), compactTrials)
	} else {
		res.notef("RECOVERY FAILURES: %d of %d trials — see notes above", findings, allTrials)
	}
	return res, nil
}

// crashWorkload drives the chaos operation mix against a journaled controller
// and returns the number of steps taken.
func crashWorkload(k *sim.Kernel, ctrl *core.Controller) int {
	const steps = 120
	rng := k.Rand()
	sites := []topo.SiteID{"DC-A", "DC-B", "DC-C"}
	rates := []bw.Rate{bw.Rate1G, bw.Rate2G5, bw.Rate10G}
	protects := []core.Protection{core.Restore, core.Unprotected, core.OnePlusOne, core.Restore}
	var live []*core.Connection
	for step := 0; step < steps; step++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			if a == b {
				break
			}
			rate := rates[rng.Intn(len(rates))]
			p := protects[rng.Intn(len(protects))]
			if rate < bw.Rate10G && p == core.OnePlusOne {
				p = core.Restore
			}
			conn, _, err := ctrl.Connect(core.Request{Customer: "crash", From: a, To: b, Rate: rate, Protect: p})
			if err == nil {
				live = append(live, conn)
			}
		case 3, 4:
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			conn := live[i]
			if conn.State == core.StateActive || conn.State == core.StateDown {
				ctrl.Disconnect("crash", conn.ID) //lint:allow errcheck may race with teardown
			}
			live = append(live[:i], live[i+1:]...)
		case 5:
			for _, conn := range live {
				if conn.Layer == core.LayerOTN && conn.State == core.StateActive {
					ctrl.AdjustRate("crash", conn.ID, rates[rng.Intn(2)]) //lint:allow errcheck may be blocked
					break
				}
			}
		case 6:
			links := ctrl.Graph().Links()
			l := links[rng.Intn(len(links))]
			if ctrl.Plant().LinkUp(l.ID) {
				ctrl.CutFiber(l.ID) //lint:allow errcheck verified up
			}
		case 7:
			for _, conn := range live {
				if conn.Layer == core.LayerDWDM && conn.State == core.StateActive && conn.Protect != core.OnePlusOne {
					ctrl.BridgeAndRoll("crash", conn.ID, nil) //lint:allow errcheck may lack disjoint path
					break
				}
			}
		case 8:
			if rng.Intn(2) == 0 {
				ctrl.DefragmentSpectrum()
			} else {
				ctrl.ReclaimIdlePipes()
			}
		case 9:
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			if a == b {
				break
			}
			at := k.Now().Add(time.Duration(rng.Intn(90)) * time.Minute)
			hold := time.Duration(1+rng.Intn(120)) * time.Minute
			ctrl.ScheduleConnect(core.Request{Customer: "crash", From: a, To: b, Rate: rates[rng.Intn(len(rates))]}, at, hold) //lint:allow errcheck may be blocked
		case 10, 11:
			k.RunFor(time.Duration(rng.Intn(100)) * time.Minute)
		}
	}
	return steps
}
