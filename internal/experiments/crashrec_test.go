package experiments

import (
	"fmt"
	"testing"
)

// TestCrashRecovery sweeps the crash-injection soak across seeds: every
// random WAL truncation must recover audit-clean and byte-identical to the
// shadow state captured at the surviving sequence number. Short mode trims
// seeds and trials for CI; the full sweep covers 20 seeds.
func TestCrashRecovery(t *testing.T) {
	seeds, trials := 20, 15
	if testing.Short() {
		seeds, trials = 6, 8
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := CrashRecN(int64(seed), trials)
			if err != nil {
				t.Fatal(err)
			}
			if res.Values["findings"] != 0 {
				for _, n := range res.Notes {
					t.Log(n)
				}
				t.Fatalf("crash soak found %v recovery failures", res.Values["findings"])
			}
			if res.Values["commits"] == 0 {
				t.Fatal("workload journaled nothing; the soak tested nothing")
			}
		})
	}
}
