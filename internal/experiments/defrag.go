package experiments

import (
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
	"griphon/internal/traffic"
)

// Defrag runs months of connection churn on a narrow spectrum, then measures
// how spectrum defragmentation (retuning survivors to the lowest channels)
// restores first-fit packing: highest channel in use before/after, and
// whether a batch of probe demands fits before/after. An operational
// extension in the spirit of the paper's §4 re-grooming challenge.
func Defrag(seed int64) (Result, error) {
	res := Result{ID: "defrag", Paper: "§4 extension: spectrum defragmentation"}
	const channels = 12

	k := sim.NewKernel(seed)
	cfg := core.Config{}
	cfg.Optics.Channels = channels
	cfg.Optics.ReachKM = 4500
	cfg.Optics.OTsPerNode = 16
	cfg.Optics.RegensPerNode = 2
	ctrl, err := core.New(k, topo.Backbone(), cfg)
	if err != nil {
		return Result{}, err
	}
	sites := ctrl.Graph().Sites()

	// Churn: Poisson 10G arrivals with exponential holds for 60 days.
	traffic.PoissonArrivals(k, 2*time.Hour, sim.Time(60*24*time.Hour), func(int) {
		a := sites[k.Rand().Intn(len(sites))]
		b := sites[k.Rand().Intn(len(sites))]
		if a.ID == b.ID {
			return
		}
		conn, job, err := ctrl.Connect(core.Request{Customer: "churn", From: a.ID, To: b.ID, Rate: bw.Rate10G})
		if err != nil {
			return
		}
		job.OnDone(func(err error) {
			if err != nil {
				return
			}
			k.After(k.Rand().ExpDuration(12*time.Hour), func() {
				ctrl.Disconnect("churn", conn.ID) //lint:allow errcheck natural end
			})
		})
	})
	// Stop mid-life: survivors are still up, sitting on whatever channels
	// churn left them.
	k.RunUntil(sim.Time(60 * 24 * time.Hour))

	before := ctrl.MaxChannelInUse()
	beforeFit := probeFit(ctrl)

	// Defragment: resource state moves synchronously; measure before the
	// survivors' own eventual teardowns drain the network.
	job, moved := ctrl.DefragmentSpectrum()
	after := ctrl.MaxChannelInUse()
	afterFit := probeFit(ctrl)
	k.RunFor(time.Hour) // let the retune EMS jobs finish
	if !job.Done() || job.Err() != nil {
		return Result{}, job.Err()
	}

	tb := metrics.NewTable("Spectrum defragmentation after 60 days of churn (12-channel backbone)",
		"Metric", "Before", "After")
	tb.Row("highest channel in use", before, after)
	tb.Row("survivors retuned", "-", moved)
	tb.Row("probe demands assignable (of 10)", beforeFit, afterFit)
	res.Tables = append(res.Tables, tb)
	res.value("before_max", float64(before))
	res.value("after_max", float64(after))
	res.value("moved", float64(moved))
	res.value("before_fit", float64(beforeFit))
	res.value("after_fit", float64(afterFit))
	res.notef("each retune costs only a ~50 ms hit on the moved connection")
	return res, nil
}

// probeFit counts how many of ten standard probe demands could currently be
// wavelength-assigned (without committing them).
func probeFit(ctrl *core.Controller) int {
	sites := ctrl.Graph().Sites()
	fit := 0
	for i := 0; i < 10; i++ {
		a := sites[i%len(sites)]
		b := sites[(i+1+i/len(sites))%len(sites)]
		if a.ID == b.ID {
			continue
		}
		if _, err := ctrl.ProbeRoute(a.Home, b.Home, bw.Rate10G); err == nil {
			fit++
		}
	}
	return fit
}
