// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the extension/ablation studies listed in DESIGN.md §4.
// Each experiment is a pure function of a seed, returning printable tables
// and series together with structured values the benchmark suite asserts on.
// The cmd/griphon-bench binary prints them; bench_test.go times them.
package experiments

import (
	"fmt"
	"sort"

	"griphon/internal/metrics"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier (DESIGN.md §4).
	ID string
	// Paper names the artifact reproduced ("Table 2", "Fig. 3", ...).
	Paper string
	// Tables and Series are the printable outputs.
	Tables []*metrics.Table
	Series []*metrics.Series
	// Notes hold free-form commentary (paper-vs-measured).
	Notes []string
	// Values exposes named scalar results for programmatic checks.
	Values map[string]float64
	// Artifacts holds named file payloads an experiment produces on failure
	// (e.g. the chaos soak's flight-recorder dump); cmd/griphon-bench writes
	// them to disk.
	Artifacts map[string][]byte
}

func (r *Result) value(name string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[name] = v
}

func (r *Result) artifact(name string, b []byte) {
	if r.Artifacts == nil {
		r.Artifacts = map[string][]byte{}
	}
	r.Artifacts[name] = b
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the full experiment output.
func (r Result) String() string {
	s := fmt.Sprintf("=== %s (%s) ===\n", r.ID, r.Paper)
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	for _, se := range r.Series {
		s += se.String() + "\n"
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Spec describes a runnable experiment.
type Spec struct {
	ID    string
	Paper string
	Run   func(seed int64) (Result, error)
}

// All lists every experiment in DESIGN.md §4 order.
var All = []Spec{
	{ID: "table2", Paper: "Table 2: establishment time vs path length", Run: Table2},
	{ID: "table1", Paper: "Table 1: BoD vision vs today vs GRIPhoN", Run: Table1},
	{ID: "setup-teardown", Paper: "§3: setup 60-70 s, teardown ~10 s", Run: SetupTeardown},
	{ID: "fig1", Paper: "Fig. 1: current services & network layers", Run: Fig1},
	{ID: "fig2", Paper: "Fig. 2: future services & rate placement", Run: Fig2},
	{ID: "fig3", Paper: "Fig. 3: BoD architecture / composite bandwidth", Run: Fig3},
	{ID: "fig4", Paper: "Fig. 4: GRIPhoN testbed", Run: Fig4},
	{ID: "restoration", Paper: "extension: restoration outage by scheme", Run: Restoration},
	{ID: "bridge-roll", Paper: "extension: bridge-and-roll vs unplanned hit", Run: BridgeRoll},
	{ID: "blocking", Paper: "ablation: blocking vs load, shared vs dedicated OTs", Run: Blocking},
	{ID: "bulk", Paper: "extension: bulk transfer completion by approach", Run: Bulk},
	{ID: "otn-restore", Paper: "extension: OTN shared mesh vs wavelength restoration", Run: OTNRestore},
	{ID: "regroom", Paper: "extension: re-grooming gains", Run: Regroom},
	{ID: "rwa-ablation", Paper: "ablation: wavelength assignment policies", Run: RWAAblation},
	{ID: "planning", Paper: "§4 resource planning: Erlang-B pool sizing, validated by simulation", Run: Planning},
	{ID: "defrag", Paper: "§4 extension: spectrum defragmentation after churn", Run: Defrag},
	{ID: "trace", Paper: "extension: restoration timeline rebuilt from the span recorder", Run: Trace},
	{ID: "scale", Paper: "§1 carrier scale: 64-node grid, a month of churn + failure storm", Run: Scale},
	{ID: "latency", Paper: "PR 6: setup-latency war — graph choreography, path cache, pre-arming", Run: Latency},
	{ID: "tenants", Paper: "PR 9: sharded multi-tenant control plane scaling", Run: Tenants},
	{ID: "serve", Paper: "PR 10: journal & API hot paths — group commit, pooled encoding, GET cache", Run: Serve},
	{ID: "chaos", Paper: "§2.2/§3 extension: fault-model soak with invariant audit", Run: Chaos},
	{ID: "crashrec", Paper: "§2.2 extension: WAL crash injection with shadow-state diff", Run: CrashRec},
}

// Find returns the spec with the given ID.
func Find(id string) (Spec, error) {
	for _, s := range All {
		if s.ID == id {
			return s, nil
		}
	}
	var ids []string
	for _, s := range All {
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	return Spec{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
