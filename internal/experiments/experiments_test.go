package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every registered experiment once and checks
// it produces printable output.
func TestAllExperimentsRun(t *testing.T) {
	for _, spec := range All {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			res, err := spec.Run(1)
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if len(res.Tables) == 0 && len(res.Series) == 0 {
				t.Fatalf("%s produced no output", spec.ID)
			}
			out := res.String()
			if !strings.Contains(out, res.ID) {
				t.Errorf("%s output missing ID header", spec.ID)
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	s, err := Find("table2")
	if err != nil || s.ID != "table2" {
		t.Fatalf("Find(table2) = %+v, %v", s, err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown experiment found")
	}
}

// TestTable2MatchesPaperShape is the headline reproduction check: measured
// means within ~3 s of the paper's values and strictly increasing with hops.
func TestTable2MatchesPaperShape(t *testing.T) {
	res, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	paper := map[int]float64{1: 62.48, 2: 65.67, 3: 70.94}
	prev := 0.0
	for hops := 1; hops <= 3; hops++ {
		got := res.Values[key("hops%d_mean_s", hops)]
		want := paper[hops]
		if math.Abs(got-want) > 3 {
			t.Errorf("hops=%d measured %.2f s, paper %.2f s (>3 s off)", hops, got, want)
		}
		if got <= prev {
			t.Errorf("setup time not increasing at %d hops", hops)
		}
		prev = got
	}
}

func TestSetupTeardownShape(t *testing.T) {
	res, err := SetupTeardown(1)
	if err != nil {
		t.Fatal(err)
	}
	setup := res.Values["setup_mean_s"]
	teardown := res.Values["teardown_mean_s"]
	if setup < 58 || setup > 74 {
		t.Errorf("setup mean = %.1f s, paper says 60-70 s", setup)
	}
	if teardown < 8 || teardown > 12 {
		t.Errorf("teardown mean = %.1f s, paper says ~10 s", teardown)
	}
}

func TestTable1Ordering(t *testing.T) {
	res, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	// 1+1 (ms) < automated restoration (min) < manual (hours).
	if !(v["oneplusone_outage_s"] < v["restore_outage_s"] && v["restore_outage_s"] < v["manual_outage_s"]) {
		t.Errorf("outage ordering broken: %+v", v)
	}
	if v["oneplusone_outage_s"] > 0.2 {
		t.Errorf("1+1 outage %.3f s, want ms", v["oneplusone_outage_s"])
	}
	if v["restore_outage_s"] < 30 || v["restore_outage_s"] > 300 {
		t.Errorf("restoration outage %.1f s, want minutes", v["restore_outage_s"])
	}
	if v["manual_outage_s"] < 4*3600 || v["manual_outage_s"] > 12*3600 {
		t.Errorf("manual outage %.0f s, want 4-12 h", v["manual_outage_s"])
	}
	// Maintenance: bridge-and-roll ms vs window hours.
	if v["roll_hit_s"] > 0.2 || v["window_hit_s"] < 3600 {
		t.Errorf("maintenance impact: roll %.3f s vs window %.0f s", v["roll_hit_s"], v["window_hit_s"])
	}
	// Setup minutes vs weeks.
	if v["setup_s"] > 120 {
		t.Errorf("setup %.0f s", v["setup_s"])
	}
}

func TestFig2PlacementCounts(t *testing.T) {
	res, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["rejected"] != 1 {
		t.Errorf("rejected = %v, want 1 (the 500M request)", res.Values["rejected"])
	}
	if res.Values["composite"] < 2 {
		t.Errorf("composite = %v, want >=2 (12G, 25G, 50G)", res.Values["composite"])
	}
	if res.Values["otn_only"] < 3 || res.Values["dwdm_only"] < 2 {
		t.Errorf("placement counts: %+v", res.Values)
	}
}

func TestFig3CompositeSavesWavelengths(t *testing.T) {
	res, err := Fig3(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["composite_channel_links"] > res.Values["naive_channel_links"] {
		t.Errorf("composite used more channel-links (%v) than naive (%v)",
			res.Values["composite_channel_links"], res.Values["naive_channel_links"])
	}
}

func TestFig4TestbedShape(t *testing.T) {
	res, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["deg3"] != 2 || res.Values["deg2"] != 2 {
		t.Errorf("ROADM degrees: %+v", res.Values)
	}
	if res.Values["pairs_connected"] != 3 {
		t.Errorf("pairs connected = %v, want 3", res.Values["pairs_connected"])
	}
}

func TestRestorationShape(t *testing.T) {
	res, err := Restoration(1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	manual := v["unprotected (manual repair)_mean_s"]
	auto := v["GRIPhoN automated restoration_mean_s"]
	oneone := v["1+1 protection_mean_s"]
	if !(oneone < auto && auto < manual) {
		t.Errorf("restoration ordering broken: 1+1=%.2f auto=%.2f manual=%.2f", oneone, auto, manual)
	}
	// Factors: manual is ~hundreds of times slower than automated
	// restoration, which is ~thousands of times slower than 1+1.
	if manual/auto < 50 {
		t.Errorf("manual/auto = %.1f, want >>1", manual/auto)
	}
	if auto/oneone < 100 {
		t.Errorf("auto/1+1 = %.1f, want >>1", auto/oneone)
	}
}

func TestBridgeRollShape(t *testing.T) {
	res, err := BridgeRoll(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["roll_hit_s"] > 0.1 {
		t.Errorf("roll hit %.3f s, want ~25 ms", res.Values["roll_hit_s"])
	}
	if res.Values["unplanned_hit_s"] < 30 {
		t.Errorf("unplanned hit %.1f s, want minutes", res.Values["unplanned_hit_s"])
	}
}

func TestBlockingPoolingGain(t *testing.T) {
	res, err := Blocking(1)
	if err != nil {
		t.Fatal(err)
	}
	// At every load, shared <= dedicated (trunking gain), and blocking is
	// monotone-ish in load for each design: check endpoints.
	for _, load := range []string{"1", "4", "8", "12"} {
		s := res.Values["shared_"+load]
		d := res.Values["dedicated_"+load]
		if s > d+0.02 {
			t.Errorf("load %s: shared blocking %.3f > dedicated %.3f", load, s, d)
		}
	}
	if res.Values["shared_12"] <= res.Values["shared_1"] {
		t.Errorf("shared blocking not increasing with load: %v vs %v",
			res.Values["shared_1"], res.Values["shared_12"])
	}
}

func TestBulkOrdering(t *testing.T) {
	res, err := Bulk(1)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Values
	if !(v["bod_s"] < v["storeforward_s"] && v["storeforward_s"] <= v["leftover_s"]+3600 && v["leftover_s"] < v["static_order_s"]) {
		t.Errorf("bulk ordering broken: %+v", v)
	}
	// Store-and-forward must beat direct end-to-end by a useful margin
	// when the hops' free windows are phase-shifted.
	if v["storeforward_s"] >= v["leftover_s"] {
		t.Errorf("store-and-forward (%v s) did not beat direct (%v s)", v["storeforward_s"], v["leftover_s"])
	}
	// BoD: 50 TB at 40G is ~2.8 h plus a minute of setup.
	if v["bod_s"] < 9000 || v["bod_s"] > 12000 {
		t.Errorf("BoD completion %.0f s, want ~10100 s", v["bod_s"])
	}
	// Static order: dominated by three weeks.
	if v["static_order_s"] < 21*24*3600 {
		t.Errorf("static order %.0f s, want > 3 weeks", v["static_order_s"])
	}
}

func TestOTNRestoreShape(t *testing.T) {
	res, err := OTNRestore(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["otn_mean_s"] >= 1 {
		t.Errorf("OTN shared-mesh mean %.3f s, want sub-second", res.Values["otn_mean_s"])
	}
	if res.Values["dwdm_mean_s"] < 30 {
		t.Errorf("DWDM restoration mean %.1f s, want minutes", res.Values["dwdm_mean_s"])
	}
}

func TestRegroomShape(t *testing.T) {
	res, err := Regroom(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["moved"] != 1 {
		t.Error("regroom did not move")
	}
	if res.Values["after_hops"] >= res.Values["before_hops"] {
		t.Errorf("regroom did not shorten the path: %v -> %v",
			res.Values["before_hops"], res.Values["after_hops"])
	}
	if res.Values["hit_s"] > 0.1 {
		t.Errorf("regroom hit %.3f s", res.Values["hit_s"])
	}
}

func TestRWAAblationShape(t *testing.T) {
	res, err := RWAAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	// Every policy/k combination must carry a healthy number of demands;
	// relative ordering between k values is a finding, not an invariant
	// (detours burn spectrum under saturation).
	for _, pol := range []string{"first-fit", "most-used", "least-used", "random"} {
		for _, kk := range []string{"_k1", "_k4"} {
			if res.Values[pol+kk] < 20 {
				t.Errorf("%s%s carried only %v demands", pol, kk, res.Values[pol+kk])
			}
		}
	}
	// Packing gain: first-fit beats random assignment at k=1.
	if res.Values["first-fit_k1"] < res.Values["random_k1"] {
		t.Errorf("first-fit (%v) carried less than random (%v)",
			res.Values["first-fit_k1"], res.Values["random_k1"])
	}
}

func key(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func TestPlanningMeetsTarget(t *testing.T) {
	res, err := Planning(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["measured_blocking"] > res.Values["target"]*2 {
		t.Errorf("measured blocking %.4f far exceeds target %.4f",
			res.Values["measured_blocking"], res.Values["target"])
	}
	// Sub-linear pool growth: doubling demand twice should need less than
	// 4x the transponders.
	if res.Values["ots_y4"] >= 4*res.Values["ots_y0"] {
		t.Errorf("pool growth not sub-linear: %v -> %v", res.Values["ots_y0"], res.Values["ots_y4"])
	}
	if res.Values["ots_y4"] <= res.Values["ots_y0"] {
		t.Error("pool did not grow with demand")
	}
}

func TestDefragPacksSpectrum(t *testing.T) {
	res, err := Defrag(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["moved"] < 1 {
		t.Error("defrag moved nothing; churn did not fragment?")
	}
	if res.Values["after_max"] > res.Values["before_max"] {
		t.Errorf("defrag raised the max channel: %v -> %v",
			res.Values["before_max"], res.Values["after_max"])
	}
	if res.Values["after_fit"] < res.Values["before_fit"] {
		t.Errorf("defrag reduced probe fit: %v -> %v",
			res.Values["before_fit"], res.Values["after_fit"])
	}
}

// TestTraceTimeline is the tracing subsystem's acceptance check: the
// restoration phases reconstructed from the trace must tile the outage, so
// their durations sum (exactly — one virtual clock, no rounding) to both the
// op:restore span and the end-to-end restoration latency the connection
// record reports.
func TestTraceTimeline(t *testing.T) {
	res, err := Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Values["restore_total_s"]
	sum := res.Values["phase_sum_s"]
	outage := res.Values["outage_s"]
	if total <= 0 {
		t.Fatalf("op:restore duration = %v s", total)
	}
	const eps = 1e-9 // one virtual nanosecond
	if diff := sum - total; diff > eps || diff < -eps {
		t.Errorf("phases sum to %v s but op:restore spans %v s", sum, total)
	}
	if diff := total - outage; diff > eps || diff < -eps {
		t.Errorf("op:restore spans %v s but the connection saw %v s of outage", total, outage)
	}
	// DWDM restoration lands in the minutes range (localization + full
	// lightpath re-setup), as the restoration experiment also reports.
	if total < 30 || total > 600 {
		t.Errorf("restoration latency = %v s, want minutes", total)
	}
	if res.Values["spans"] < 20 {
		t.Errorf("spans = %v, want a full setup+restore choreography", res.Values["spans"])
	}
}

func TestScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scale experiment in -short mode")
	}
	res, err := Scale(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["completed"] < 500 {
		t.Errorf("completed = %v, want a month of churn", res.Values["completed"])
	}
	if res.Values["restored"] < 1 {
		t.Error("no automated restorations during the storm")
	}
	if res.Values["stranded"] != 0 {
		t.Errorf("stranded = %v after repairs", res.Values["stranded"])
	}
	// Grid paths are long; setup still lands in minutes, scaling with
	// hop count as Table 2 predicts.
	if res.Values["mean_setup_s"] < 70 || res.Values["mean_setup_s"] > 150 {
		t.Errorf("mean setup = %v s", res.Values["mean_setup_s"])
	}
}
