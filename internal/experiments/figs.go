package experiments

import (
	"fmt"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Fig1 renders the paper's Fig. 1: how today's service categories map onto
// the W-DCS / SONET / DWDM / fiber technology stack (§2.1). This is the
// model the simulator's "today" baselines implement.
func Fig1(seed int64) (Result, error) {
	res := Result{ID: "fig1", Paper: "Fig. 1"}
	tb := metrics.NewTable("Carrier's view of current services & network layers (paper §2.1)",
		"Layer (bottom-up)", "Elements", "Services carried", "BoD today?")
	tb.Row("Fiber", "fiber-optic cables, conduits", "-", "no (very static)")
	tb.Row("DWDM", "40-100 wavelength systems, ROADMs, OTs, muxponders", "wavelength private lines (10-100G)", "no (weeks to provision)")
	tb.Row("SONET", "broadband DCS, ADMs (STS-1..OC-192)", "TDM + Ethernet private lines (52M-10G)", "yes, <=622M")
	tb.Row("W-DCS", "DCS-3/1 (>DS0, <DS3)", "nxDS1 TDM (1.5M)", "yes")
	res.Tables = append(res.Tables, tb)
	res.notef("BoD exists today only at the SONET layer and below (max well under wavelength rate)")
	return res, nil
}

// Fig2 reproduces the paper's Fig. 2 service placement: sweep request rates
// and show which future-network layer carries each (IP/EVC below 1G, OTN
// sub-wavelength from 1G, DWDM at wavelength rates, composites between).
func Fig2(seed int64) (Result, error) {
	res := Result{ID: "fig2", Paper: "Fig. 2"}
	tb := metrics.NewTable("Future service placement by requested rate (paper Fig. 2)",
		"Requested", "Placement", "Components")

	sweep := []bw.Rate{
		500 * bw.Mbps, bw.Rate1G, bw.Rate2G5, 5 * bw.Gbps, bw.Rate10G,
		12 * bw.Gbps, 25 * bw.Gbps, bw.Rate40G, 50 * bw.Gbps, 80 * bw.Gbps,
	}
	var otnOnly, dwdmOnly, composite, rejected int
	for _, r := range sweep {
		parts, err := core.PlaceRate(r)
		if err != nil {
			tb.Row(r.String(), "IP/EVC layer (out of GRIPhoN scope)", "-")
			rejected++
			continue
		}
		var otn, dwdm int
		desc := ""
		for i, p := range parts {
			if i > 0 {
				desc += " + "
			}
			desc += p.String()
			if p == bw.Rate10G || p == bw.Rate40G {
				dwdm++
			} else {
				otn++
			}
		}
		switch {
		case otn > 0 && dwdm > 0:
			tb.Row(r.String(), "composite (OTN + DWDM)", desc)
			composite++
		case dwdm > 1:
			tb.Row(r.String(), "multiple DWDM wavelengths", desc)
			dwdmOnly++
		case dwdm == 1:
			tb.Row(r.String(), "DWDM wavelength", desc)
			dwdmOnly++
		default:
			tb.Row(r.String(), "OTN sub-wavelength", desc)
			otnOnly++
		}
	}
	res.Tables = append(res.Tables, tb)
	res.value("otn_only", float64(otnOnly))
	res.value("dwdm_only", float64(dwdmOnly))
	res.value("composite", float64(composite))
	res.value("rejected", float64(rejected))
	return res, nil
}

// Fig3 demonstrates the paper's composite-bandwidth example on a live
// controller: 12G provisioned as one 10G wavelength plus two 1G OTN
// circuits, instead of burning a second 10G wavelength. It reports the
// wavelength count both ways.
func Fig3(seed int64) (Result, error) {
	res := Result{ID: "fig3", Paper: "Fig. 3"}

	// Composite path.
	k := sim.NewKernel(seed)
	ctrl, err := core.New(k, topo.Testbed(), core.Config{})
	if err != nil {
		return Result{}, err
	}
	conns, job, err := ctrl.ConnectComposite(core.Request{
		Customer: "bench", From: "DC-A", To: "DC-B", Rate: 12 * bw.Gbps,
	})
	if err != nil {
		return Result{}, err
	}
	k.Run()
	if job.Err() != nil {
		return Result{}, job.Err()
	}
	snap := ctrl.Snapshot()
	compositeWavelengths := snap.ChannelsInUse // channel-links; 1-hop paths here so = wavelengths
	compositeOTs := snap.OTsInUse

	// Naive path: two whole 10G wavelengths for 12G of demand.
	k2 := sim.NewKernel(seed + 1)
	ctrl2, err := core.New(k2, topo.Testbed(), core.Config{})
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < 2; i++ {
		_, job, err := ctrl2.Connect(core.Request{Customer: "bench", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
		if err != nil {
			return Result{}, err
		}
		k2.Run()
		if job.Err() != nil {
			return Result{}, job.Err()
		}
	}
	naive := ctrl2.Snapshot()

	tb := metrics.NewTable("12G inter-DC demand: composite vs second wavelength (paper §2.2 example)",
		"Approach", "Wavelengths lit", "OTs used", "Delivered", "Stranded capacity")
	tb.Row("2 x 10G wavelengths", naive.ChannelsInUse, naive.OTsInUse, "20G usable", "8G")
	tb.Row("10G + 2x1G OTN (GRIPhoN)", compositeWavelengths, compositeOTs,
		fmt.Sprintf("12G exact (%d conns)", len(conns)), "ODU slots reusable by others")
	res.Tables = append(res.Tables, tb)
	res.value("composite_channel_links", float64(compositeWavelengths))
	res.value("naive_channel_links", float64(naive.ChannelsInUse))
	res.notef("the OTN pipe's remaining %d slots stay poolable across customers", 8-2)
	return res, nil
}

// Fig4 validates the Fig. 4 testbed model: ROADM degrees, customer premises,
// Table 2 paths, and full connectivity between every site pair.
func Fig4(seed int64) (Result, error) {
	res := Result{ID: "fig4", Paper: "Fig. 4"}
	g := topo.Testbed()

	tb := metrics.NewTable("GRIPhoN testbed (paper Fig. 4)",
		"ROADM", "Degree", "OTN switch", "Customer premises")
	for _, n := range g.Nodes() {
		site := "-"
		for _, s := range g.Sites() {
			if s.Home == n.ID {
				site = string(s.ID)
			}
		}
		otn := "no"
		if n.HasOTN {
			otn = "yes"
		}
		tb.Row(string(n.ID), g.Degree(n.ID), otn, site)
	}
	res.Tables = append(res.Tables, tb)

	// Connection matrix: every site pair must be connectable.
	mt := metrics.NewTable("10G connectivity matrix (measured setup seconds)",
		"From", "To", "Path", "Setup (s)")
	sites := g.Sites()
	ok := 0
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			k := sim.NewKernel(seed + int64(i*10+j))
			ctrl, err := core.New(k, topo.Testbed(), core.Config{})
			if err != nil {
				return Result{}, err
			}
			conn, job, err := ctrl.Connect(core.Request{
				Customer: "bench", From: sites[i].ID, To: sites[j].ID, Rate: bw.Rate10G,
			})
			if err != nil {
				return Result{}, err
			}
			k.Run()
			if job.Err() != nil {
				return Result{}, job.Err()
			}
			ok++
			mt.Row(string(sites[i].ID), string(sites[j].ID), conn.Route().String(), conn.SetupTime().Seconds())
		}
	}
	res.Tables = append(res.Tables, mt)
	res.value("pairs_connected", float64(ok))

	// Degree census: two 3-degree and two 2-degree ROADMs, as built.
	deg3, deg2 := 0, 0
	for _, n := range g.Nodes() {
		switch g.Degree(n.ID) {
		case 3:
			deg3++
		case 2:
			deg2++
		}
	}
	res.value("deg3", float64(deg3))
	res.value("deg2", float64(deg2))
	res.notef("two 3-degree (I, III) and two 2-degree (II, IV) ROADMs, three premises — as in Fig. 4")
	return res, nil
}
