package experiments

import (
	"fmt"
	"sort"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Latency is the PR 6 setup-latency war: the same repeat-customer workload is
// run twice per service class — once on the paper-faithful serial choreography
// (the seed's Table 2 behavior) and once with the dependency-graph
// choreography, path cache and speculative pre-arming switched on — and the
// before/after setup-time distributions are reported as p50/p95/p99. The
// acceptance bar is a >= 2x reduction in median unprotected setup latency.
func Latency(seed int64) (Result, error) { return LatencyN(seed, 120) }

// LatencyStats summarizes one mode's setup-time distribution in seconds.
type LatencyStats struct {
	P50  float64 `json:"p50_s"`
	P95  float64 `json:"p95_s"`
	P99  float64 `json:"p99_s"`
	Mean float64 `json:"mean_s"`
}

// LatencyClass pairs the baseline and fast distributions for one service
// class.
type LatencyClass struct {
	Baseline   LatencyStats `json:"baseline"`
	Fast       LatencyStats `json:"fast"`
	SpeedupP50 float64      `json:"speedup_p50"`
}

// LatencyReport is the JSON artifact (BENCH_PR6.json) the CI latency gate
// compares against.
type LatencyReport struct {
	PR      int                     `json:"pr"`
	Seed    int64                   `json:"seed"`
	Iters   int                     `json:"iters"`
	Classes map[string]LatencyClass `json:"classes"`
}

// latencyClasses defines the measured service classes in report order.
var latencyClasses = []struct {
	Name    string
	Rate    bw.Rate
	Protect core.Protection
	// Groomed classes pre-establish a persistent connection per site pair so
	// OTN pipes exist and stay alive across the measured churn.
	Groomed bool
}{
	{Name: "unprotected", Rate: bw.Rate10G, Protect: core.Unprotected},
	{Name: "oneplusone", Rate: bw.Rate10G, Protect: core.OnePlusOne},
	{Name: "groomed", Rate: bw.Rate1G, Protect: core.Restore, Groomed: true},
}

var latencyPairs = [][2]topo.SiteID{
	{"DC-A", "DC-B"},
	{"DC-A", "DC-C"},
	{"DC-B", "DC-C"},
}

// fastSetupConfig is the PR 6 "after" configuration: dependency-graph
// choreography, path caching, and a warm pool of two pre-tuned transponders
// per node plus two pre-opened EMS sessions.
func fastSetupConfig() core.Config {
	return core.Config{
		Choreography: core.ChoreoGraph,
		PathCache:    true,
		PreArm:       core.PreArm{WarmOTsPerNode: 2, WarmSessions: 2},
	}
}

// LatencyBench measures the setup-time distributions and returns the raw
// report; LatencyN wraps it into a printable experiment Result.
func LatencyBench(seed int64, iters int) (LatencyReport, error) {
	rep := LatencyReport{PR: 6, Seed: seed, Iters: iters, Classes: map[string]LatencyClass{}}
	for _, cl := range latencyClasses {
		base, err := latencyRun(seed, iters, cl.Rate, cl.Protect, cl.Groomed, core.Config{})
		if err != nil {
			return LatencyReport{}, fmt.Errorf("latency %s baseline: %w", cl.Name, err)
		}
		fast, err := latencyRun(seed, iters, cl.Rate, cl.Protect, cl.Groomed, fastSetupConfig())
		if err != nil {
			return LatencyReport{}, fmt.Errorf("latency %s fast: %w", cl.Name, err)
		}
		c := LatencyClass{Baseline: summarize(base), Fast: summarize(fast)}
		if c.Fast.P50 > 0 {
			c.SpeedupP50 = c.Baseline.P50 / c.Fast.P50
		}
		rep.Classes[cl.Name] = c
	}
	return rep, nil
}

// LatencyN runs the benchmark and renders the before/after table.
func LatencyN(seed int64, iters int) (Result, error) {
	res := Result{ID: "latency", Paper: "PR 6: setup-latency war — graph choreography, path cache, pre-arming"}
	rep, err := LatencyBench(seed, iters)
	if err != nil {
		return Result{}, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Setup latency before/after (%d setups per class per mode, seconds)", iters),
		"class", "mode", "p50", "p95", "p99", "mean")
	for _, cl := range latencyClasses {
		c := rep.Classes[cl.Name]
		tb.Row(cl.Name, "serial", fmt.Sprintf("%.1f", c.Baseline.P50), fmt.Sprintf("%.1f", c.Baseline.P95),
			fmt.Sprintf("%.1f", c.Baseline.P99), fmt.Sprintf("%.1f", c.Baseline.Mean))
		tb.Row(cl.Name, "fast", fmt.Sprintf("%.1f", c.Fast.P50), fmt.Sprintf("%.1f", c.Fast.P95),
			fmt.Sprintf("%.1f", c.Fast.P99), fmt.Sprintf("%.1f", c.Fast.Mean))
		res.value(cl.Name+"_baseline_p50_s", c.Baseline.P50)
		res.value(cl.Name+"_fast_p50_s", c.Fast.P50)
		res.value(cl.Name+"_fast_p95_s", c.Fast.P95)
		res.value(cl.Name+"_speedup_p50", c.SpeedupP50)
	}
	res.Tables = append(res.Tables, tb)
	up := rep.Classes["unprotected"]
	res.notef("unprotected median %.1f s -> %.1f s (%.2fx); fast mode = graph choreography + path cache + pre-arm(2,2)",
		up.Baseline.P50, up.Fast.P50, up.SpeedupP50)
	return res, nil
}

// latencyRun provisions and releases iters connections of one class on a
// fresh testbed controller and returns each setup time in seconds.
func latencyRun(seed int64, iters int, rate bw.Rate, protect core.Protection, groomed bool, cfg core.Config) ([]float64, error) {
	k := sim.NewKernel(seed)
	ctrl, err := core.New(k, topo.Testbed(), cfg)
	if err != nil {
		return nil, err
	}
	if groomed {
		// Persistent warm-up circuits keep one OTN pipe per pair alive, so the
		// measured setups ride existing overlay capacity — the steady-state
		// repeat-customer case grooming is for.
		for _, p := range latencyPairs {
			_, job, err := ctrl.Connect(core.Request{
				Customer: "warmup", From: p[0], To: p[1], Rate: rate, Protect: protect,
			})
			if err != nil {
				return nil, err
			}
			k.Run()
			if job.Err() != nil {
				return nil, job.Err()
			}
		}
	}
	samples := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		p := latencyPairs[i%len(latencyPairs)]
		conn, job, err := ctrl.Connect(core.Request{
			Customer: "bench", From: p[0], To: p[1], Rate: rate, Protect: protect,
		})
		if err != nil {
			return nil, err
		}
		k.Run()
		if job.Err() != nil {
			return nil, job.Err()
		}
		samples = append(samples, conn.SetupTime().Seconds())
		if _, err := ctrl.Disconnect("bench", conn.ID); err != nil {
			return nil, err
		}
		k.Run()
	}
	return samples, nil
}

// summarize computes nearest-rank percentiles and the mean.
func summarize(samples []float64) LatencyStats {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return LatencyStats{
		P50:  nearestRank(s, 50),
		P95:  nearestRank(s, 95),
		P99:  nearestRank(s, 99),
		Mean: sum / float64(len(s)),
	}
}

// nearestRank returns the p-th percentile of sorted samples by the
// nearest-rank method.
func nearestRank(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
