package experiments

import "testing"

// TestLatencyMeetsSpeedupBar is PR 6's acceptance check: the fast
// configuration (graph choreography + path cache + pre-arm) must at least
// halve the median unprotected setup latency, and must never be slower than
// the serial baseline in any class.
func TestLatencyMeetsSpeedupBar(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 21
	}
	rep, err := LatencyBench(1, iters)
	if err != nil {
		t.Fatal(err)
	}
	up, ok := rep.Classes["unprotected"]
	if !ok {
		t.Fatal("no unprotected class in the report")
	}
	if up.SpeedupP50 < 2.0 {
		t.Errorf("unprotected p50 speedup = %.2fx, want >= 2x (%.1fs -> %.1fs)",
			up.SpeedupP50, up.Baseline.P50, up.Fast.P50)
	}
	for name, c := range rep.Classes {
		if c.Fast.P50 > c.Baseline.P50 {
			t.Errorf("%s: fast p50 %.1fs slower than baseline %.1fs", name, c.Fast.P50, c.Baseline.P50)
		}
		if c.Fast.P95 == 0 || c.Baseline.P95 == 0 {
			t.Errorf("%s: empty distribution (baseline p95 %.1f, fast p95 %.1f)", name, c.Baseline.P95, c.Fast.P95)
		}
	}
	// The distributions must be ordered: p50 <= p95 <= p99.
	for name, c := range rep.Classes {
		for _, s := range []LatencyStats{c.Baseline, c.Fast} {
			if s.P50 > s.P95 || s.P95 > s.P99 {
				t.Errorf("%s: percentiles out of order: p50 %.1f p95 %.1f p99 %.1f", name, s.P50, s.P95, s.P99)
			}
		}
	}
}
