package experiments

import (
	"fmt"
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/optics"
	"griphon/internal/planner"
	"griphon/internal/sim"
	"griphon/internal/topo"
	"griphon/internal/traffic"
)

// Planning exercises paper §4's resource-planning challenge end to end: an
// Erlang-B planner sizes each PoP's transponder pool for a demand forecast
// and a 2% blocking target, the same demand is then offered to the simulator
// with the recommended pools installed, and measured blocking is compared to
// the target. A second table shows the pools needed when the Forrester
// forecast the paper cites (demand doubling in ~2 years) comes true.
func Planning(seed int64) (Result, error) {
	res := Result{ID: "planning", Paper: "§4 network resource planning"}
	const (
		target   = 0.02
		holdMean = 4 * time.Hour
		horizon  = 60 * 24 * time.Hour
	)

	g := topo.Testbed()
	demand := planner.Demand{}
	demand.Set("DC-A", "DC-B", 3)
	demand.Set("DC-A", "DC-C", 2)
	demand.Set("DC-B", "DC-C", 1.5)

	plans, err := planner.PlanOTs(g, demand, target, 0.25)
	if err != nil {
		return Result{}, err
	}
	tb := metrics.NewTable(
		fmt.Sprintf("Transponder pools for a %.1f-erlang forecast, %.0f%% blocking target", demand.Total(), target*100),
		"PoP", "Offered (erl)", "Working OTs", "Restoration OTs", "Predicted blocking")
	override := map[topo.NodeID]int{}
	for _, p := range plans {
		tb.Row(string(p.Node), p.OfferedErlangs, p.WorkingOTs, p.RestorationOTs, p.Blocking)
		override[p.Node] = p.Total()
	}
	res.Tables = append(res.Tables, tb)

	// Validate by simulation: offer the same demand with the recommended
	// pools and measure blocking.
	measured, err := planValidate(seed, g, demand, override, holdMean, horizon)
	if err != nil {
		return Result{}, err
	}
	vt := metrics.NewTable("Planner validation by simulation (60 days of offered demand)",
		"Quantity", "Value")
	vt.Row("target blocking", target)
	vt.Row("measured blocking", measured)
	res.Tables = append(res.Tables, vt)
	res.value("target", target)
	res.value("measured_blocking", measured)

	// Growth outlook (paper §1: Forrester projects demand to double or
	// triple in two to four years).
	gt := metrics.NewTable("Pool growth if demand doubles every 2 years (Forrester projection)",
		"Horizon", "Total forecast (erl)", "Total working OTs")
	for _, years := range []float64{0, 2, 4} {
		grown := demand.Grow(years, 2)
		plans, err := planner.PlanOTs(g, grown, target, 0.25)
		if err != nil {
			return Result{}, err
		}
		total := 0
		for _, p := range plans {
			total += p.WorkingOTs
		}
		gt.Row(fmt.Sprintf("+%.0f years", years), grown.Total(), total)
		res.value(fmt.Sprintf("ots_y%.0f", years), float64(total))
	}
	res.Tables = append(res.Tables, gt)
	res.notef("pooled planning grows sub-linearly with demand (economies of scale in trunking)")
	return res, nil
}

// planValidate offers Poisson demand per pair and measures blocking with the
// planned pools installed.
func planValidate(seed int64, g *topo.Graph, demand planner.Demand, pools map[topo.NodeID]int, holdMean, horizon time.Duration) (float64, error) {
	k := sim.NewKernel(seed)
	cfg := core.Config{}
	cfg.Optics = optics.DefaultConfig()
	cfg.Optics.OTOverride = pools
	cfg.Optics.OTsPerNode = 0 // nodes without forecast demand get no OTs
	// Size add/drop banks above the largest pool so the planned OT count
	// is the constraint under test.
	maxPool := 0
	for _, n := range pools {
		if n > maxPool {
			maxPool = n
		}
	}
	cfg.AddDropPorts = maxPool + 8
	// Give every site plenty of access so OTs are the tested constraint.
	big := topo.New()
	for _, n := range g.Nodes() {
		big.AddNode(*n) //lint:allow errcheck copying a valid graph
	}
	for _, l := range g.Links() {
		big.AddLink(*l) //lint:allow errcheck copying a valid graph
	}
	for _, s := range g.Sites() {
		c := *s
		c.AccessGbps = 4000
		big.AddSite(c) //lint:allow errcheck copying a valid graph
	}
	ctrl, err := core.New(k, big, cfg)
	if err != nil {
		return 0, err
	}

	var blocked, total int
	for pair, erl := range demand {
		if erl <= 0 {
			continue
		}
		pair := pair
		interMean := time.Duration(float64(holdMean) / erl)
		traffic.PoissonArrivals(k, interMean, sim.Time(horizon), func(int) {
			total++
			conn, job, err := ctrl.Connect(core.Request{
				Customer: "csp", From: pair[0], To: pair[1], Rate: bw.Rate10G,
			})
			if err != nil {
				blocked++
				return
			}
			job.OnDone(func(err error) {
				if err != nil {
					return
				}
				k.After(k.Rand().ExpDuration(holdMean), func() {
					ctrl.Disconnect("csp", conn.ID) //lint:allow errcheck natural end
				})
			})
		})
	}
	k.Run()
	if total == 0 {
		return 0, fmt.Errorf("experiments: no demand offered")
	}
	return float64(blocked) / float64(total), nil
}
