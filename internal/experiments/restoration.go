package experiments

import (
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/otn"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Restoration measures outage distributions after fiber cuts on the backbone
// for the three wavelength survivability schemes, over many independent cut
// events. This quantifies paper Table 1's "reduced outage time" row.
func Restoration(seed int64) (Result, error) {
	res := Result{ID: "restoration", Paper: "Table 1 (outage rows), §1"}
	const trials = 20

	schemes := []struct {
		name       string
		p          core.Protection
		autoRepair bool
	}{
		{"unprotected (manual repair)", core.Unprotected, true},
		{"GRIPhoN automated restoration", core.Restore, false},
		{"1+1 protection", core.OnePlusOne, false},
	}

	tb := metrics.NewTable("Outage after a fiber cut, by survivability scheme (20 cuts each, backbone)",
		"Scheme", "Mean outage", "p50", "p95", "Extra cost vs unprotected")
	cost := map[string]string{
		"unprotected (manual repair)":   "1.0x",
		"GRIPhoN automated restoration": "~1.25x (shared pool)",
		"1+1 protection":                ">=2x (dedicated standby)",
	}

	for _, sc := range schemes {
		var outage metrics.Sample
		for trial := 0; trial < trials; trial++ {
			k := sim.NewKernel(seed + int64(trial)*7919)
			ctrl, err := core.New(k, topo.Backbone(), core.Config{AutoRepair: sc.autoRepair})
			if err != nil {
				return Result{}, err
			}
			conn, job, err := ctrl.Connect(core.Request{
				Customer: "bench", From: "DC-SEA", To: "DC-NYC", Rate: bw.Rate10G, Protect: sc.p,
			})
			if err != nil {
				return Result{}, err
			}
			k.Run()
			if job.Err() != nil {
				return Result{}, job.Err()
			}
			// Cut a link of the working path, varying per trial.
			links := conn.Route().Links
			if err := ctrl.CutFiber(links[trial%len(links)]); err != nil {
				return Result{}, err
			}
			k.Run()
			outage.AddDuration(conn.TotalOutage)
		}
		tb.Row(sc.name,
			outage.MeanDuration().Round(time.Millisecond).String(),
			(time.Duration(outage.Percentile(50) * float64(time.Second))).Round(time.Millisecond).String(),
			(time.Duration(outage.Percentile(95) * float64(time.Second))).Round(time.Millisecond).String(),
			cost[sc.name])
		res.value(sc.name+"_mean_s", outage.Mean())
	}
	res.Tables = append(res.Tables, tb)
	res.notef("shape matches the paper: milliseconds (1+1) << minutes (GRIPhoN) << hours (manual)")
	return res, nil
}

// BridgeRoll compares the traffic hit of planned maintenance with
// bridge-and-roll against an unplanned hit for the same work, and reports
// roll latencies (extension of paper §2.2).
func BridgeRoll(seed int64) (Result, error) {
	res := Result{ID: "bridge-roll", Paper: "§2.2 bridge-and-roll"}
	const trials = 10

	var rollHits, rollDur metrics.Sample
	for trial := 0; trial < trials; trial++ {
		k := sim.NewKernel(seed + int64(trial)*104729)
		ctrl, err := core.New(k, topo.Testbed(), core.Config{})
		if err != nil {
			return Result{}, err
		}
		conn, job, err := ctrl.Connect(core.Request{Customer: "bench", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
		if err != nil {
			return Result{}, err
		}
		k.Run()
		if job.Err() != nil {
			return Result{}, job.Err()
		}
		roll, err := ctrl.BridgeAndRoll("bench", conn.ID, nil)
		if err != nil {
			return Result{}, err
		}
		k.Run()
		if roll.Err() != nil {
			return Result{}, roll.Err()
		}
		rollHits.AddDuration(conn.TotalOutage)
		rollDur.AddDuration(roll.Elapsed())
	}

	// Unplanned comparison: cutting the same link instead of rolling.
	k := sim.NewKernel(seed + 31337)
	ctrl, err := core.New(k, topo.Testbed(), core.Config{})
	if err != nil {
		return Result{}, err
	}
	conn, job, err := ctrl.Connect(core.Request{Customer: "bench", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		return Result{}, err
	}
	k.Run()
	if job.Err() != nil {
		return Result{}, job.Err()
	}
	ctrl.CutFiber(conn.Route().Links[0]) //lint:allow errcheck link exists
	k.Run()
	unplanned := conn.TotalOutage

	tb := metrics.NewTable("Traffic impact of moving a live wavelength (10 rolls)",
		"Method", "Traffic hit (mean)", "End-to-end duration")
	tb.Row("bridge-and-roll (planned)",
		rollHits.MeanDuration().Round(time.Millisecond).String(),
		rollDur.MeanDuration().Round(time.Second).String()+" (hitless except the roll)")
	tb.Row("cut + automated restoration (unplanned)",
		unplanned.Round(time.Second).String(), unplanned.Round(time.Second).String())
	res.Tables = append(res.Tables, tb)
	res.value("roll_hit_s", rollHits.Mean())
	res.value("unplanned_hit_s", unplanned.Seconds())
	res.notef("bridge-and-roll turns a ~minute outage into a ~25 ms hit (%.0fx better)",
		unplanned.Seconds()/rollHits.Mean())
	return res, nil
}

// OTNRestore compares OTN shared-mesh restoration (sub-second) with
// DWDM-layer restoration (minutes) for the same fiber cut (paper §2.1).
func OTNRestore(seed int64) (Result, error) {
	res := Result{ID: "otn-restore", Paper: "§2.1 OTN shared mesh"}
	const trials = 10

	var otnOutage, dwdmOutage metrics.Sample
	for trial := 0; trial < trials; trial++ {
		k := sim.NewKernel(seed + int64(trial)*2741)
		ctrl, err := core.New(k, topo.Testbed(), core.Config{})
		if err != nil {
			return Result{}, err
		}
		// Pre-build a pipe triangle so shared mesh has a disjoint
		// backup.
		for _, pair := range [][2]topo.NodeID{{"I", "III"}, {"III", "IV"}, {"I", "IV"}} {
			job, err := ctrl.EnsurePipe(pair[0], pair[1], otn.ODU2)
			if err != nil {
				return Result{}, err
			}
			k.Run()
			if job.Err() != nil {
				return Result{}, job.Err()
			}
		}
		// One OTN circuit (shared mesh) and one wavelength (restore).
		circuit, cjob, err := ctrl.Connect(core.Request{Customer: "bench", From: "DC-A", To: "DC-B", Rate: bw.Rate1G})
		if err != nil {
			return Result{}, err
		}
		wave, wjob, err := ctrl.Connect(core.Request{Customer: "bench", From: "DC-A", To: "DC-B", Rate: bw.Rate10G})
		if err != nil {
			return Result{}, err
		}
		k.Run()
		if cjob.Err() != nil || wjob.Err() != nil {
			return Result{}, cjob.Err()
		}
		if len(circuit.PipeIDs()) == 0 {
			continue
		}
		carrier := ctrl.Conn(ctrl.PipeCarrier(circuit.PipeIDs()[0]))
		link := carrier.Route().Links[0]
		if !wave.Route().HasLink(link) {
			// Make sure the wavelength shares the cut fate; if not,
			// cut its first link too in the same window.
			ctrl.CutFiber(wave.Route().Links[0]) //lint:allow errcheck exists
		}
		if ctrl.Plant().LinkUp(link) {
			ctrl.CutFiber(link) //lint:allow errcheck exists
		}
		k.Run()
		otnOutage.AddDuration(circuit.TotalOutage)
		dwdmOutage.AddDuration(wave.TotalOutage)
	}

	tb := metrics.NewTable("Restoration speed by layer for the same cut (10 trials)",
		"Layer / scheme", "Mean outage", "p95")
	tb.Row("OTN shared-mesh (1G circuit)",
		otnOutage.MeanDuration().Round(time.Millisecond).String(),
		(time.Duration(otnOutage.Percentile(95) * float64(time.Second))).Round(time.Millisecond).String())
	tb.Row("DWDM dynamic restoration (10G wavelength)",
		dwdmOutage.MeanDuration().Round(time.Second).String(),
		(time.Duration(dwdmOutage.Percentile(95) * float64(time.Second))).Round(time.Second).String())
	res.Tables = append(res.Tables, tb)
	res.value("otn_mean_s", otnOutage.Mean())
	res.value("dwdm_mean_s", dwdmOutage.Mean())
	res.notef("OTN restoration is sub-second 'similar to today's SONET layer' while wavelengths take minutes")
	return res, nil
}
