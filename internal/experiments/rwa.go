package experiments

import (
	"fmt"

	"griphon/internal/metrics"
	"griphon/internal/optics"
	"griphon/internal/rwa"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// RWAAblation compares wavelength-assignment policies and path-search depth
// on the backbone: how many 10G lightpaths between random PoP pairs can be
// established before the first wavelength-blocked request, with a small
// channel grid so spectrum (not transponders) is the bottleneck. This is the
// DESIGN.md design-choice ablation for the RWA module.
func RWAAblation(seed int64) (Result, error) {
	res := Result{ID: "rwa-ablation", Paper: "design ablation"}
	const channels = 8
	const demands = 400

	policies := []rwa.AssignPolicy{rwa.FirstFit, rwa.MostUsed, rwa.LeastUsed, rwa.RandomFit}
	ks := []int{1, 4}

	tb := metrics.NewTable(
		fmt.Sprintf("Lightpaths carried on an %d-channel backbone before/among %d random demands", channels, demands),
		"Policy", "k=1 carried", "k=4 carried")

	for _, pol := range policies {
		row := []any{pol.String()}
		for _, kPaths := range ks {
			carried, err := rwaRun(seed, channels, demands, pol, kPaths)
			if err != nil {
				return Result{}, err
			}
			row = append(row, carried)
			res.value(fmt.Sprintf("%s_k%d", pol, kPaths), float64(carried))
		}
		tb.Row(row...)
	}
	res.Tables = append(res.Tables, tb)
	res.notef("k>1 lets a blocked demand detour, but detours burn extra spectrum: under saturation k=1 can carry MORE total demands — a real provisioning trade-off")
	res.notef("first-fit packs the spectrum better than random assignment")
	return res, nil
}

// rwaRun routes random demands (no holding-time churn: pure packing) and
// counts how many could be assigned a wavelength.
func rwaRun(seed int64, channels, demands int, pol rwa.AssignPolicy, kPaths int) (int, error) {
	rng := sim.NewRand(seed)
	g := topo.Backbone()
	cfg := optics.DefaultConfig()
	cfg.Channels = channels
	cfg.ReachKM = 10000 // keep regens out of the ablation
	plant, err := optics.NewPlant(g, cfg)
	if err != nil {
		return 0, err
	}
	nodes := g.Nodes()
	carried := 0
	for i := 0; i < demands; i++ {
		a := nodes[rng.Intn(len(nodes))].ID
		b := nodes[rng.Intn(len(nodes))].ID
		for b == a {
			b = nodes[rng.Intn(len(nodes))].ID
		}
		route, err := rwa.FindRoute(plant, a, b, rwa.Options{
			K: kPaths, Policy: pol, Rand: rng,
		})
		if err != nil {
			continue // blocked
		}
		// Commit the assignment.
		for si, seg := range route.Plan.Segments {
			for _, l := range seg.Links {
				if err := plant.Spectrum(l).Reserve(route.Channels[si], fmt.Sprintf("d%d", i)); err != nil {
					return 0, err
				}
			}
		}
		carried++
	}
	return carried, nil
}
