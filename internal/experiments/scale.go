package experiments

import (
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
	"griphon/internal/traffic"
)

// Scale exercises the controller at the "eventual scale that must be
// managed" the paper contrasts against research testbeds (§1, comparison to
// CANARIE/CHEETAH/DRAGON): a 64-node grid backbone, thirty days of BoD
// churn, then a failure storm. It verifies the control-plane behaviours hold
// at scale and reports the simulator's wall-clock efficiency.
func Scale(seed int64) (Result, error) {
	res := Result{ID: "scale", Paper: "§1 carrier scale (extension)"}

	start := time.Now()
	k := sim.NewKernel(seed)
	g, err := topo.Grid(8, 8, 300)
	if err != nil {
		return Result{}, err
	}
	cfg := core.Config{AutoRepair: true}
	cfg.Optics.Channels = 80
	cfg.Optics.ReachKM = 2500
	cfg.Optics.OTsPerNode = 16
	cfg.Optics.RegensPerNode = 4
	ctrl, err := core.New(k, g, cfg)
	if err != nil {
		return Result{}, err
	}
	sites := g.Sites()

	var setup metrics.Sample
	completed, blocked := 0, 0
	traffic.PoissonArrivals(k, 30*time.Minute, sim.Time(30*24*time.Hour), func(int) {
		a := sites[k.Rand().Intn(len(sites))]
		b := sites[k.Rand().Intn(len(sites))]
		if a.ID == b.ID {
			return
		}
		conn, job, err := ctrl.Connect(core.Request{Customer: "csp", From: a.ID, To: b.ID, Rate: bw.Rate10G})
		if err != nil {
			blocked++
			return
		}
		job.OnDone(func(err error) {
			if err != nil {
				return
			}
			completed++
			setup.AddDuration(conn.SetupTime())
			k.After(k.Rand().ExpDuration(8*time.Hour), func() {
				ctrl.Disconnect("csp", conn.ID) //nolint:errcheck // natural end
			})
		})
	})
	// A mid-month failure storm: one of the two access-side links at
	// three of the four data-center corners (the other corner link keeps
	// a restoration path available).
	cuts := []topo.LinkID{"G0000-G0001", "G0607-G0707", "G0700-G0701"}
	k.At(sim.Time(15*24*time.Hour), func() {
		for _, l := range cuts {
			ctrl.CutFiber(l) //nolint:errcheck // exists in an 8x8 grid
		}
	})
	k.Run()

	wall := time.Since(start)
	snap := ctrl.Snapshot()
	restored := 0
	for _, conn := range ctrl.Connections() {
		restored += conn.Restorations
	}

	tb := metrics.NewTable("30 days of BoD churn + failure storm on a 64-node grid",
		"Metric", "Value")
	tb.Row("connections completed", completed)
	tb.Row("requests blocked", blocked)
	tb.Row("mean setup (s)", setup.Mean())
	tb.Row("automated restorations", restored)
	tb.Row("connections stranded at end", snap.Down+snap.Restoring)
	tb.Row("simulated events", int(k.Processed()))
	tb.Row("wall time", wall.Round(time.Millisecond).String())
	tb.Row("events/sec (wall)", float64(k.Processed())/wall.Seconds())
	res.Tables = append(res.Tables, tb)

	res.value("completed", float64(completed))
	res.value("blocked", float64(blocked))
	res.value("mean_setup_s", setup.Mean())
	res.value("restored", float64(restored))
	res.value("stranded", float64(snap.Down+snap.Restoring))
	res.notef("a simulated month on a 64-node mesh runs in seconds of wall time")
	return res, nil
}
