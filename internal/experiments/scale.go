package experiments

import (
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/topo"
	"griphon/internal/traffic"
)

// metricIndex keys a registry snapshot by name+labels (e.g.
// `griphon_blocked_total{reason="route"}`) for direct lookup.
func metricIndex(points []obs.MetricPoint) map[string]obs.MetricPoint {
	out := make(map[string]obs.MetricPoint, len(points))
	for _, p := range points {
		out[p.Name+p.Labels] = p
	}
	return out
}

// Scale exercises the controller at the "eventual scale that must be
// managed" the paper contrasts against research testbeds (§1, comparison to
// CANARIE/CHEETAH/DRAGON): a 64-node grid backbone, thirty days of BoD
// churn, then a failure storm. It verifies the control-plane behaviours hold
// at scale and reports the simulator's wall-clock efficiency.
func Scale(seed int64) (Result, error) {
	res := Result{ID: "scale", Paper: "§1 carrier scale (extension)"}

	sw := sim.NewStopwatch()
	k := sim.NewKernel(seed)
	g, err := topo.Grid(8, 8, 300)
	if err != nil {
		return Result{}, err
	}
	cfg := core.Config{AutoRepair: true}
	cfg.Optics.Channels = 80
	cfg.Optics.ReachKM = 2500
	cfg.Optics.OTsPerNode = 16
	cfg.Optics.RegensPerNode = 4
	ctrl, err := core.New(k, g, cfg)
	if err != nil {
		return Result{}, err
	}
	sites := g.Sites()

	traffic.PoissonArrivals(k, 30*time.Minute, sim.Time(30*24*time.Hour), func(int) {
		a := sites[k.Rand().Intn(len(sites))]
		b := sites[k.Rand().Intn(len(sites))]
		if a.ID == b.ID {
			return
		}
		// Outcome tallies live in the controller's instrument registry
		// (griphon_setups_total, griphon_blocked_total, ...), read below.
		conn, job, err := ctrl.Connect(core.Request{Customer: "csp", From: a.ID, To: b.ID, Rate: bw.Rate10G})
		if err != nil {
			return
		}
		job.OnDone(func(err error) {
			if err != nil {
				return
			}
			k.After(k.Rand().ExpDuration(8*time.Hour), func() {
				ctrl.Disconnect("csp", conn.ID) //lint:allow errcheck natural end
			})
		})
	})
	// A mid-month failure storm: one of the two access-side links at
	// three of the four data-center corners (the other corner link keeps
	// a restoration path available).
	cuts := []topo.LinkID{"G0000-G0001", "G0607-G0707", "G0700-G0701"}
	k.At(sim.Time(15*24*time.Hour), func() {
		for _, l := range cuts {
			ctrl.CutFiber(l) //lint:allow errcheck exists in an 8x8 grid
		}
	})
	k.Run()

	wall := sw.Elapsed()
	snap := ctrl.Snapshot()
	// Every tally below comes from the controller's own instrument registry
	// — the same numbers GET /api/v1/metrics serves — instead of ad-hoc
	// counters threaded through the workload callbacks.
	points := metricIndex(ctrl.Metrics().Snapshot())
	completed := points[`griphon_setups_total{layer="dwdm",outcome="ok"}`].Value
	blocked := points[`griphon_blocked_total{reason="admission"}`].Value +
		points[`griphon_blocked_total{reason="route"}`].Value
	restored := points[`griphon_restorations_total{outcome="restored"}`].Value
	setups := points[`griphon_setup_seconds{layer="dwdm"}`]
	meanSetup := 0.0
	if setups.Count > 0 {
		meanSetup = setups.Value / float64(setups.Count)
	}
	emsCmds := points[`griphon_ems_commands_total{ems="roadm"}`].Value +
		points[`griphon_ems_commands_total{ems="otn"}`].Value +
		points[`griphon_ems_commands_total{ems="fxc"}`].Value

	tb := metrics.NewTable("30 days of BoD churn + failure storm on a 64-node grid",
		"Metric", "Value")
	tb.Row("connections completed", int(completed))
	tb.Row("requests blocked", int(blocked))
	tb.Row("mean setup (s)", meanSetup)
	tb.Row("automated restorations", int(restored))
	tb.Row("connections stranded at end", snap.Down+snap.Restoring)
	tb.Row("EMS commands executed", int(emsCmds))
	tb.Row("simulated events", int(k.Processed()))
	tb.Row("simulated time", k.Now().String())
	tb.Row("wall time", wall.Round(time.Millisecond).String())
	tb.Row("events/sec (wall)", float64(k.Processed())/wall.Seconds())
	res.Tables = append(res.Tables, tb)

	res.value("completed", completed)
	res.value("blocked", blocked)
	res.value("mean_setup_s", meanSetup)
	res.value("restored", restored)
	res.value("stranded", float64(snap.Down+snap.Restoring))
	res.value("ems_commands", emsCmds)
	res.notef("a simulated month on a 64-node mesh runs in seconds of wall time")
	return res, nil
}
