package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"

	"griphon"
	"griphon/internal/api"
	"griphon/internal/journal"
	"griphon/internal/metrics"
	"griphon/internal/sim"
)

// Serve is the PR 10 hot-path war: the same journal and API workloads are run
// twice — once on the original per-commit-fsync / allocate-per-response paths
// and once with group commit, pooled encoders and the GET response cache — and
// the sustained-throughput ratio is reported. Unlike the rest of the suite
// this measures wall time (through sim.Stopwatch, the sanctioned exception):
// the subject is the real fsync and real HTTP stack, not the simulation.

// ServeLat summarizes one HTTP mode: sustained ops/sec plus request-latency
// percentiles in milliseconds.
type ServeLat struct {
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// ServeJournal compares per-commit fsync (one sequential appender) against
// group commit (many concurrent committers sharing fsyncs), both durable.
type ServeJournal struct {
	PerCommitOpsPerSec float64 `json:"per_commit_ops_per_sec"`
	GroupOpsPerSec     float64 `json:"group_ops_per_sec"`
	Speedup            float64 `json:"speedup"`
	Appends            uint64  `json:"appends"`
	GroupFsyncs        uint64  `json:"group_fsyncs"`
	GroupCommits       uint64  `json:"group_commits"`
}

// ServeHTTP compares the legacy response path against the fast path over real
// HTTP. P99Ratio is fast p99 / legacy p99 — the "flat p99" check: the fast
// path must not buy throughput with tail latency.
type ServeHTTP struct {
	Legacy   ServeLat `json:"legacy"`
	Fast     ServeLat `json:"fast"`
	Speedup  float64  `json:"speedup"`
	P99Ratio float64  `json:"p99_ratio"`
}

// ServeReport is the JSON artifact (BENCH_PR10.json) the CI serve gate
// compares against.
type ServeReport struct {
	PR      int          `json:"pr"`
	Seed    int64        `json:"seed"`
	Iters   int          `json:"iters"`
	Clients int          `json:"clients"`
	Writers int          `json:"journal_writers"`
	Journal ServeJournal `json:"journal"`
	HTTP    ServeHTTP    `json:"http"`
}

const (
	serveClients        = 8   // concurrent HTTP clients
	serveJournalWriters = 64  // concurrent committers in group-commit mode
	serveAdvanceEvery   = 256 // one cache-invalidating POST per this many requests
)

// serveGETPaths is the GET mix one benchmark client cycles through; the
// queried customers exist because serveNetwork pre-provisions them.
var serveGETPaths = []string{
	"/api/v1/events",
	"/api/v1/connections?customer=tenant-0",
	"/api/v1/events",
	"/api/v1/topology",
	"/api/v1/events",
	"/api/v1/connections?customer=tenant-1",
	"/api/v1/events",
	"/api/v1/bill?customer=tenant-1",
	"/api/v1/events",
	"/api/v1/connections?customer=tenant-2",
	"/api/v1/events",
	"/api/v1/stats",
	"/api/v1/events",
	"/api/v1/connections?customer=tenant-3",
	"/api/v1/events",
	"/api/v1/bill?customer=tenant-2",
}

// ServeBench measures both comparisons and returns the raw report; ServeN
// wraps it into a printable experiment Result. iters is both the number of
// durable journal appends per mode and the number of HTTP requests per mode.
func ServeBench(seed int64, iters int) (ServeReport, error) {
	rep := ServeReport{PR: 10, Seed: seed, Iters: iters,
		Clients: serveClients, Writers: serveJournalWriters}

	perCommit, _, err := journalThroughput(iters, 1)
	if err != nil {
		return ServeReport{}, fmt.Errorf("serve journal per-commit: %w", err)
	}
	group, st, err := journalThroughput(iters, serveJournalWriters)
	if err != nil {
		return ServeReport{}, fmt.Errorf("serve journal group: %w", err)
	}
	rep.Journal = ServeJournal{
		PerCommitOpsPerSec: perCommit,
		GroupOpsPerSec:     group,
		Appends:            st.Appends,
		GroupFsyncs:        st.Fsyncs,
		GroupCommits:       st.GroupCommits,
	}
	if perCommit > 0 {
		rep.Journal.Speedup = group / perCommit
	}

	legacy, err := serveHTTPRun(seed, iters, api.WithLegacyEncoding())
	if err != nil {
		return ServeReport{}, fmt.Errorf("serve http legacy: %w", err)
	}
	fast, err := serveHTTPRun(seed, iters)
	if err != nil {
		return ServeReport{}, fmt.Errorf("serve http fast: %w", err)
	}
	rep.HTTP = ServeHTTP{Legacy: legacy, Fast: fast}
	if legacy.OpsPerSec > 0 {
		rep.HTTP.Speedup = fast.OpsPerSec / legacy.OpsPerSec
	}
	if legacy.P99Ms > 0 {
		rep.HTTP.P99Ratio = fast.P99Ms / legacy.P99Ms
	}
	return rep, nil
}

// ServeN runs the benchmark and renders the comparison tables.
func ServeN(seed int64, iters int) (Result, error) {
	res := Result{ID: "serve", Paper: "PR 10: journal & API hot paths — group commit, pooled encoding, GET cache"}
	rep, err := ServeBench(seed, iters)
	if err != nil {
		return Result{}, err
	}
	jt := metrics.NewTable(
		fmt.Sprintf("Durable journal appends (%d appends per mode, fsync on)", iters),
		"mode", "ops/sec", "fsyncs", "group commits")
	jt.Row("per-commit", fmt.Sprintf("%.0f", rep.Journal.PerCommitOpsPerSec), fmt.Sprintf("%d", iters), "0")
	jt.Row("group", fmt.Sprintf("%.0f", rep.Journal.GroupOpsPerSec),
		fmt.Sprintf("%d", rep.Journal.GroupFsyncs), fmt.Sprintf("%d", rep.Journal.GroupCommits))
	ht := metrics.NewTable(
		fmt.Sprintf("HTTP API sustained throughput (%d requests per mode, %d clients)", iters, rep.Clients),
		"mode", "ops/sec", "p50 ms", "p99 ms")
	ht.Row("legacy", fmt.Sprintf("%.0f", rep.HTTP.Legacy.OpsPerSec),
		fmt.Sprintf("%.3f", rep.HTTP.Legacy.P50Ms), fmt.Sprintf("%.3f", rep.HTTP.Legacy.P99Ms))
	ht.Row("fast", fmt.Sprintf("%.0f", rep.HTTP.Fast.OpsPerSec),
		fmt.Sprintf("%.3f", rep.HTTP.Fast.P50Ms), fmt.Sprintf("%.3f", rep.HTTP.Fast.P99Ms))
	res.Tables = append(res.Tables, jt, ht)
	res.value("journal_speedup", rep.Journal.Speedup)
	res.value("http_speedup", rep.HTTP.Speedup)
	res.value("http_p99_ratio", rep.HTTP.P99Ratio)
	res.notef("group commit %.1fx over per-commit fsync; fast HTTP path %.1fx over legacy (p99 ratio %.2f); wall-clock, varies by host",
		rep.Journal.Speedup, rep.HTTP.Speedup, rep.HTTP.P99Ratio)
	return res, nil
}

// Serve is the registered experiment entry point.
func Serve(seed int64) (Result, error) { return ServeN(seed, 800) }

// journalThroughput opens a durable store in a scratch directory and measures
// appends/sec with the given number of concurrent committers. One writer
// means every append pays its own fsync; more writers exercise group commit.
func journalThroughput(iters, writers int) (float64, journal.Stats, error) {
	dir, err := os.MkdirTemp("", "griphon-servebench-")
	if err != nil {
		return 0, journal.Stats{}, err
	}
	defer os.RemoveAll(dir)
	store, err := journal.Open(dir, journal.Options{Fsync: true})
	if err != nil {
		return 0, journal.Stats{}, err
	}
	payload := []byte(`{"op":"bench","pad":"` + strings.Repeat("x", 96) + `"}`)
	per := iters / writers
	if per == 0 {
		per = 1
	}
	total := per * writers
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	sw := sim.NewStopwatch()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := store.Append("commit", payload); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := sw.Elapsed()
	close(errs)
	if err := <-errs; err != nil {
		store.Close() //lint:allow errcheck already failing
		return 0, journal.Stats{}, err
	}
	st := store.Stats()
	if err := store.Close(); err != nil {
		return 0, journal.Stats{}, err
	}
	return float64(total) / elapsed.Seconds(), st, nil
}

// serveNetwork builds the benchmark network: the Fig. 4 testbed with four
// tenants' circuits provisioned, so the measured GET bodies carry real state.
func serveNetwork(seed int64) (*griphon.Network, error) {
	net, err := griphon.New(griphon.Testbed(), griphon.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	pairs := [][2]string{{"DC-A", "DC-B"}, {"DC-A", "DC-C"}, {"DC-B", "DC-C"}}
	for t := 0; t < 4; t++ {
		for _, p := range pairs {
			for i := 0; i < 5; i++ {
				if _, err := net.Connect(fmt.Sprintf("tenant-%d", t), p[0], p[1], griphon.Rate1G); err != nil {
					return nil, err
				}
			}
		}
	}
	net.Drain()
	return net, nil
}

// serveHTTPRun serves one mode over a real loopback listener and drives it
// with concurrent clients running a GET-heavy mix with periodic
// cache-invalidating POSTs. Per-request latencies come from per-request
// stopwatches; throughput from the whole run's wall time.
func serveHTTPRun(seed int64, iters int, opts ...api.Option) (ServeLat, error) {
	net, err := serveNetwork(seed)
	if err != nil {
		return ServeLat{}, err
	}
	srv := httptest.NewServer(api.NewServer(net, opts...).Handler())
	defer srv.Close()
	transport := &http.Transport{MaxIdleConns: serveClients * 2, MaxIdleConnsPerHost: serveClients * 2}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport}

	per := iters / serveClients
	if per == 0 {
		per = 1
	}
	total := per * serveClients
	samples := make([][]float64, serveClients)
	errs := make(chan error, serveClients)
	var wg sync.WaitGroup
	sw := sim.NewStopwatch()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]float64, 0, per)
			for i := 0; i < per; i++ {
				n := c*per + i
				var (
					resp *http.Response
					err  error
				)
				rsw := sim.NewStopwatch()
				if n%serveAdvanceEvery == 0 {
					resp, err = client.Post(srv.URL+"/api/v1/advance", "application/json",
						strings.NewReader(`{"duration":"1m"}`))
				} else {
					resp, err = client.Get(srv.URL + serveGETPaths[n%len(serveGETPaths)])
				}
				if err != nil {
					errs <- err
					return
				}
				_, err = io.Copy(io.Discard, resp.Body)
				resp.Body.Close() //lint:allow errcheck drained above
				lat = append(lat, float64(rsw.Elapsed().Microseconds())/1000.0)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("request %d: status %d", n, resp.StatusCode)
					return
				}
			}
			samples[c] = lat
		}(c)
	}
	wg.Wait()
	elapsed := sw.Elapsed()
	close(errs)
	if err := <-errs; err != nil {
		return ServeLat{}, err
	}
	var all []float64
	for _, s := range samples {
		all = append(all, s...)
	}
	st := summarize(all)
	return ServeLat{
		OpsPerSec: float64(total) / elapsed.Seconds(),
		P50Ms:     st.P50,
		P99Ms:     st.P99,
	}, nil
}
