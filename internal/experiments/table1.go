package experiments

import (
	"time"

	"griphon/internal/baseline"
	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Table1 quantifies the paper's Table 1: for each dimension of the BoD
// service vision, today's reality vs GRIPhoN, with today's numbers from the
// baseline models and GRIPhoN's numbers measured from the simulator.
func Table1(seed int64) (Result, error) {
	res := Result{ID: "table1", Paper: "Table 1"}

	// --- Rapid establishment: static lead time vs measured setup ---
	k := sim.NewKernel(seed)
	ctrl, err := core.New(k, topo.Testbed(), core.Config{})
	if err != nil {
		return Result{}, err
	}
	conn, job, err := ctrl.Connect(core.Request{Customer: "bench", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		return Result{}, err
	}
	k.Run()
	if job.Err() != nil {
		return Result{}, job.Err()
	}
	setup := conn.SetupTime()

	// --- Reduced outage: manual repair vs 1+1 vs GRIPhoN restoration ---
	manual, err := measureOutage(seed+1, core.Unprotected, true)
	if err != nil {
		return Result{}, err
	}
	onePlusOne, err := measureOutage(seed+2, core.OnePlusOne, false)
	if err != nil {
		return Result{}, err
	}
	restore, err := measureOutage(seed+3, core.Restore, false)
	if err != nil {
		return Result{}, err
	}

	// --- Maintenance impact: unmovable hit vs bridge-and-roll hit ---
	rollHit, windowHit, err := measureMaintenance(seed + 4)
	if err != nil {
		return Result{}, err
	}

	tb := metrics.NewTable("Table 1 quantified: BoD service vision, today's reality, GRIPhoN (measured)",
		"Dimension", "Today's reality", "GRIPhoN (measured)")
	tb.Row("Dynamic configurable rate", "max well below wavelength rate (<=622M BoD)",
		"1G-40G: OTN circuits + wavelengths + composites")
	tb.Row("Establish new connection", baseline.StaticLeadTime.String()+" (weeks)", setup.Round(time.Second).String())
	tb.Row("Outage: no protection", manual.Round(time.Minute).String()+" (wait for repair)", "-")
	tb.Row("Outage: 1+1 (expensive)", onePlusOne.Round(time.Millisecond).String(), onePlusOne.Round(time.Millisecond).String())
	tb.Row("Outage: automated restoration", "n/a (manual only)", restore.Round(time.Second).String())
	tb.Row("Maintenance impact", windowHit.Round(time.Minute).String()+" (hit for the window)", rollHit.Round(time.Millisecond).String()+" (bridge-and-roll)")
	res.Tables = append(res.Tables, tb)

	// Cost comparison for restoration options.
	costs := baseline.DefaultCosts()
	km := conn.Route().KM(ctrl.Graph())
	ct := metrics.NewTable("Relative monthly cost of survivability options (cost units)",
		"Scheme", "Cost", "Restores in")
	ct.Row("unprotected", costs.WavelengthMonthly(km, 0), manual.Round(time.Minute).String())
	ct.Row("GRIPhoN shared restoration", costs.SharedRestoreMonthly(km, 0, 0.25), restore.Round(time.Second).String())
	ct.Row("1+1 protection", costs.OnePlusOneMonthly(km, 0, km*2, 0), onePlusOne.Round(time.Millisecond).String())
	res.Tables = append(res.Tables, ct)

	res.value("setup_s", setup.Seconds())
	res.value("manual_outage_s", manual.Seconds())
	res.value("oneplusone_outage_s", onePlusOne.Seconds())
	res.value("restore_outage_s", restore.Seconds())
	res.value("roll_hit_s", rollHit.Seconds())
	res.value("window_hit_s", windowHit.Seconds())
	res.notef("ordering holds: 1+1 (ms) < restoration (min) < manual (hours); setup minutes vs weeks")
	return res, nil
}

// measureOutage provisions one testbed wavelength under the given scheme,
// cuts its first link and returns the resulting outage.
func measureOutage(seed int64, p core.Protection, autoRepair bool) (time.Duration, error) {
	k := sim.NewKernel(seed)
	ctrl, err := core.New(k, topo.Testbed(), core.Config{AutoRepair: autoRepair})
	if err != nil {
		return 0, err
	}
	conn, job, err := ctrl.Connect(core.Request{
		Customer: "bench", From: "DC-A", To: "DC-C", Rate: bw.Rate10G, Protect: p,
	})
	if err != nil {
		return 0, err
	}
	k.Run()
	if job.Err() != nil {
		return 0, job.Err()
	}
	if err := ctrl.CutFiber(conn.Route().Links[0]); err != nil {
		return 0, err
	}
	k.Run()
	return conn.TotalOutage, nil
}

// measureMaintenance returns the traffic hit of a maintenance window with
// bridge-and-roll (mesh testbed) and without it (line topology where the
// connection cannot move).
func measureMaintenance(seed int64) (rollHit, windowHit time.Duration, err error) {
	// With bridge-and-roll on the testbed.
	k := sim.NewKernel(seed)
	ctrl, err := core.New(k, topo.Testbed(), core.Config{})
	if err != nil {
		return 0, 0, err
	}
	conn, job, err := ctrl.Connect(core.Request{Customer: "bench", From: "DC-A", To: "DC-C", Rate: bw.Rate10G})
	if err != nil {
		return 0, 0, err
	}
	k.Run()
	if job.Err() != nil {
		return 0, 0, job.Err()
	}
	link := conn.Route().Links[0]
	if _, _, err := ctrl.ScheduleMaintenance(link, k.Now().Add(time.Minute), 2*time.Hour); err != nil {
		return 0, 0, err
	}
	k.Run()
	rollHit = conn.TotalOutage

	// Without a disjoint path (today's manual handling hits traffic for
	// the window).
	g := topo.New()
	g.AddNode(topo.Node{ID: "A", HasOTN: true}) //lint:allow errcheck fixed builder
	g.AddNode(topo.Node{ID: "B", HasOTN: true}) //lint:allow errcheck fixed builder
	g.AddLink(topo.Link{ID: "A-B", A: "A", B: "B", KM: 100})
	g.AddSite(topo.Site{ID: "S1", Home: "A", AccessGbps: 40})
	g.AddSite(topo.Site{ID: "S2", Home: "B", AccessGbps: 40})
	k2 := sim.NewKernel(seed + 1)
	ctrl2, err := core.New(k2, g, core.Config{})
	if err != nil {
		return 0, 0, err
	}
	conn2, job2, err := ctrl2.Connect(core.Request{Customer: "bench", From: "S1", To: "S2", Rate: bw.Rate10G})
	if err != nil {
		return 0, 0, err
	}
	k2.Run()
	if job2.Err() != nil {
		return 0, 0, job2.Err()
	}
	if _, _, err := ctrl2.ScheduleMaintenance("A-B", k2.Now().Add(time.Minute), 2*time.Hour); err != nil {
		return 0, 0, err
	}
	k2.Run()
	windowHit = conn2.TotalOutage
	return rollHit, windowHit, nil
}
