package experiments

import (
	"fmt"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// table2Iters matches the paper's "results over ten iterations".
const table2Iters = 10

// table2Paths are the measured paths of paper Table 2 (Fig. 4 notation) with
// the links that must be taken out of service to force each one.
var table2Paths = []struct {
	label string
	hops  int
	down  []topo.LinkID
	paper float64 // seconds reported by the paper
}{
	{"1 (I-IV)", 1, nil, 62.48},
	{"2 (I-III-IV)", 2, []topo.LinkID{"I-IV"}, 65.67},
	{"3 (I-II-III-IV)", 3, []topo.LinkID{"I-IV", "I-III"}, 70.94},
}

// Table2 reproduces the paper's headline measurement: mean wavelength
// connection establishment time on the Fig. 4 testbed for 1-, 2- and 3-hop
// paths, ten iterations each. Longer paths are forced the way a lab would
// force them — by taking the shorter fibers out of service first.
func Table2(seed int64) (Result, error) {
	res := Result{ID: "table2", Paper: "Table 2"}
	tb := metrics.NewTable("Wavelength connection establishment time vs path length (10 iterations)",
		"Path length (hops)", "Paper (s)", "Measured mean (s)", "Stddev (s)")

	for _, pc := range table2Paths {
		var sample metrics.Sample
		for iter := 0; iter < table2Iters; iter++ {
			k := sim.NewKernel(seed + int64(iter)*1009)
			ctrl, err := core.New(k, topo.Testbed(), core.Config{})
			if err != nil {
				return Result{}, err
			}
			for _, l := range pc.down {
				ctrl.Plant().SetLinkUp(l, false)
			}
			conn, job, err := ctrl.Connect(core.Request{
				Customer: "bench", From: "DC-A", To: "DC-C", Rate: bw.Rate10G,
			})
			if err != nil {
				return Result{}, err
			}
			k.Run()
			if job.Err() != nil {
				return Result{}, job.Err()
			}
			if got := conn.Route().Hops(); got != pc.hops {
				return Result{}, fmt.Errorf("experiments: forced path has %d hops, want %d", got, pc.hops)
			}
			sample.AddDuration(conn.SetupTime())
		}
		mean := sample.Mean()
		tb.Row(pc.label, pc.paper, mean, sample.Stddev())
		res.value(fmt.Sprintf("hops%d_mean_s", pc.hops), mean)
	}
	res.Tables = append(res.Tables, tb)
	res.notef("paper: EMS configuration steps + optical tasks dominate; times grow with hop count")
	return res, nil
}

// SetupTeardown reproduces the §3 text numbers: establishment 60-70 s across
// testbed site pairs, teardown around 10 s.
func SetupTeardown(seed int64) (Result, error) {
	res := Result{ID: "setup-teardown", Paper: "§3 text"}
	pairs := [][2]topo.SiteID{{"DC-A", "DC-B"}, {"DC-A", "DC-C"}, {"DC-B", "DC-C"}}

	var setup, teardown metrics.Sample
	for i, pair := range pairs {
		for iter := 0; iter < 5; iter++ {
			k := sim.NewKernel(seed + int64(i*100+iter))
			ctrl, err := core.New(k, topo.Testbed(), core.Config{})
			if err != nil {
				return Result{}, err
			}
			conn, job, err := ctrl.Connect(core.Request{
				Customer: "bench", From: pair[0], To: pair[1], Rate: bw.Rate10G,
			})
			if err != nil {
				return Result{}, err
			}
			k.Run()
			if job.Err() != nil {
				return Result{}, job.Err()
			}
			setup.AddDuration(conn.SetupTime())

			td, err := ctrl.Disconnect("bench", conn.ID)
			if err != nil {
				return Result{}, err
			}
			k.Run()
			teardown.AddDuration(td.Elapsed())
		}
	}
	tb := metrics.NewTable("Wavelength setup/teardown across testbed site pairs",
		"Operation", "Paper", "Measured mean (s)", "Min (s)", "Max (s)")
	tb.Row("establish", "60-70 s", setup.Mean(), setup.Min(), setup.Max())
	tb.Row("tear down", "~10 s", teardown.Mean(), teardown.Min(), teardown.Max())
	res.Tables = append(res.Tables, tb)
	res.value("setup_mean_s", setup.Mean())
	res.value("teardown_mean_s", teardown.Mean())
	res.notef("teardown is ~%.0fx faster than establishment", setup.Mean()/teardown.Mean())
	return res, nil
}
