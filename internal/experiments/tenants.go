package experiments

import (
	"fmt"
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/inventory"
	"griphon/internal/metrics"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// TenantsPoint is one shard count's measurement in the multi-tenant scaling
// benchmark: the cost of pushing the same tenant population through 1..N
// control-plane shards. Wall-clock numbers are informational (they depend on
// core count); the scaling claim is carried by the deterministic kernel-event
// accounting: EventsBottleneck is the work the busiest shard's event loop
// executes, which is what bounds wall time once each shard has a core, and
// ProjectedSpeedup = baseline events / bottleneck events. Near-linear scaling
// means ProjectedSpeedup tracks the shard count — the load partitions evenly
// AND the coordinator adds no super-linear cross-shard work.
type TenantsPoint struct {
	Shards           int     `json:"shards"`
	WallMS           float64 `json:"wall_ms"`
	CyclesPerSec     float64 `json:"cycles_per_sec"`
	EventsTotal      uint64  `json:"events_total"`
	EventsBottleneck uint64  `json:"events_bottleneck"`
	ProjectedSpeedup float64 `json:"projected_speedup"`
	Overhead         float64 `json:"overhead"`
	Failed           int     `json:"failed"`
	AuditFindings    int     `json:"audit_findings"`
}

// TenantsReport is the committed JSON baseline (BENCH_PR9.json) the CI
// throughput gate compares against.
type TenantsReport struct {
	Seed        int64          `json:"seed"`
	Tenants     int            `json:"tenants"`
	ShardCounts []int          `json:"shard_counts"`
	Points      []TenantsPoint `json:"points"`
	MaxSpeedup  float64        `json:"max_speedup"`
}

// tenantsWorkload pushes `tenants` customers through one full bandwidth
// calendar cycle each — a booked window that provisions, holds, and releases —
// on a control plane with the given shard count, and measures the wall-clock
// cost of draining it with the goroutine-per-shard driver. Windows are spaced
// per shard so admission never blocks: every tenant's cycle completes, and
// the comparison across shard counts is the same work divided N ways.
func tenantsWorkload(seed int64, tenants, shards int) (TenantsPoint, error) {
	set, err := core.NewShardSet(topo.Testbed(), core.ShardSetConfig{Shards: shards, Seed: seed})
	if err != nil {
		return TenantsPoint{}, err
	}
	defer set.Close()

	pairs := [][2]topo.SiteID{{"DC-A", "DC-C"}, {"DC-A", "DC-B"}, {"DC-B", "DC-C"}}
	next := make([]int, set.Len()) // per-shard window sequence
	bookings := make([]*core.Booking, 0, tenants)
	for i := 0; i < tenants; i++ {
		cust := inventory.Customer(fmt.Sprintf("tenant-%04d", i))
		sh := set.ShardFor(cust)
		slot := next[sh]
		next[sh]++
		rate := bw.Rate10G // even tenants take a wavelength...
		if i%2 == 1 {
			rate = bw.Rate1G // ...odd ones ride shared OTN pipes
		}
		p := pairs[i%len(pairs)]
		at := sim.Time(0).Add(time.Duration(slot)*10*time.Minute + time.Minute)
		b, err := set.For(cust).ScheduleConnect(core.Request{
			Customer: cust, From: p[0], To: p[1], Rate: rate,
		}, at, 5*time.Minute)
		if err != nil {
			return TenantsPoint{}, fmt.Errorf("tenant %d: %w", i, err)
		}
		bookings = append(bookings, b)
	}

	sw := sim.NewStopwatch()
	set.DrainParallel()
	wall := sw.Elapsed()

	pt := TenantsPoint{Shards: shards, WallMS: float64(wall.Microseconds()) / 1000}
	for _, b := range bookings {
		if b.SetupErr != nil || b.CloseErr != nil || !b.Done.Done() {
			pt.Failed++
		}
	}
	for i := 0; i < set.Len(); i++ {
		n := set.Shard(i).Kernel.Processed()
		pt.EventsTotal += n
		if n > pt.EventsBottleneck {
			pt.EventsBottleneck = n
		}
	}
	pt.AuditFindings = len(set.AuditInvariants())
	if wall > 0 {
		pt.CyclesPerSec = float64(tenants) / wall.Seconds()
	}
	return pt, nil
}

// TenantsBench measures the tenant workload at each shard count and reports
// speedups relative to the single-shard (serial) control plane.
func TenantsBench(seed int64, tenants int, shardCounts []int) (TenantsReport, error) {
	rep := TenantsReport{Seed: seed, Tenants: tenants, ShardCounts: shardCounts}
	var base uint64
	for _, n := range shardCounts {
		pt, err := tenantsWorkload(seed, tenants, n)
		if err != nil {
			return TenantsReport{}, fmt.Errorf("shards=%d: %w", n, err)
		}
		if base == 0 {
			base = pt.EventsTotal
		}
		if pt.EventsBottleneck > 0 {
			pt.ProjectedSpeedup = float64(base) / float64(pt.EventsBottleneck)
		}
		if base > 0 {
			pt.Overhead = float64(pt.EventsTotal) / float64(base)
		}
		if pt.ProjectedSpeedup > rep.MaxSpeedup {
			rep.MaxSpeedup = pt.ProjectedSpeedup
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// Tenants is the registered experiment: a reduced run of the scaling
// benchmark (the committed BENCH_PR9.json baseline uses -tenants 1000).
func Tenants(seed int64) (Result, error) {
	res := Result{ID: "tenants", Paper: "PR 9: sharded multi-tenant control plane"}
	rep, err := TenantsBench(seed, 120, []int{1, 2, 4})
	if err != nil {
		return Result{}, err
	}
	tb := metrics.NewTable("Multi-tenant scaling: one full booking cycle per tenant",
		"Shards", "Wall ms", "Cycles/s", "Proj speedup", "Overhead", "Failed", "Audit")
	failed, findings := 0, 0
	for _, pt := range rep.Points {
		tb.Row(fmt.Sprintf("%d", pt.Shards), pt.WallMS, pt.CyclesPerSec,
			pt.ProjectedSpeedup, pt.Overhead, float64(pt.Failed), float64(pt.AuditFindings))
		failed += pt.Failed
		findings += pt.AuditFindings
	}
	res.Tables = append(res.Tables, tb)
	res.value("tenants", float64(rep.Tenants))
	res.value("max_speedup", rep.MaxSpeedup)
	res.value("failed", float64(failed))
	res.value("audit_findings", float64(findings))
	res.notef("%d tenants per point; projected speedup is the deterministic event-partition "+
		"ratio (baseline events / bottleneck shard events), wall clock is hardware-dependent", rep.Tenants)
	return res, nil
}

// ChaosShardedN is the multi-tenant flavor of the chaos soak: randomized
// setups, teardowns, cuts and time jumps across many tenants spread over a
// sharded control plane, with the cross-shard invariant audit (per-shard
// books, coordinator claim/lit-channel balance, tenant→shard ownership)
// sweeping after every operation. With injectLeak a spectrum reservation is
// deliberately made behind the coordinator's back mid-soak, proving the
// cross-shard audit actually discriminates.
func ChaosShardedN(seed int64, steps, tenants, shards int, injectLeak bool) (Result, error) {
	res := Result{ID: "chaos-tenants", Paper: "PR 9: multi-tenant soak with cross-shard audit"}
	set, err := core.NewShardSet(topo.Testbed(), core.ShardSetConfig{Shards: shards, Seed: seed})
	if err != nil {
		return Result{}, err
	}
	defer set.Close()

	rng := sim.NewRand(seed)
	sites := []topo.SiteID{"DC-A", "DC-B", "DC-C"}
	rates := []bw.Rate{bw.Rate1G, bw.Rate2G5, bw.Rate10G}
	custs := make([]inventory.Customer, tenants)
	for i := range custs {
		custs[i] = inventory.Customer(fmt.Sprintf("tenant-%04d", i))
	}

	// The cross-shard sweep checks a quiescent invariant: a pipe is claimed
	// at the coordinator before its token exists (the claim protects the
	// choreography that creates it), so claims and tokens only balance once
	// in-flight work drains. Audit at drained checkpoints, not mid-flight.
	findings := 0
	audit := func(step int, op string) {
		set.Drain()
		for _, f := range set.AuditInvariants() {
			findings++
			res.notef("AUDIT step %d after %s: %s", step, op, f)
		}
	}

	var live []*core.Connection
	connects, blocked := 0, 0
	leaked := false
	for step := 0; step < steps; step++ {
		op := "noop"
		cust := custs[rng.Intn(len(custs))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // connect as a random tenant
			op = "connect"
			a := sites[rng.Intn(len(sites))]
			b := sites[rng.Intn(len(sites))]
			if a == b {
				break
			}
			conn, _, err := set.For(cust).Connect(core.Request{
				Customer: cust, From: a, To: b, Rate: rates[rng.Intn(len(rates))],
			})
			if err != nil {
				blocked++
				break
			}
			connects++
			live = append(live, conn)
		case 4, 5, 6: // disconnect one of the live connections
			op = "disconnect"
			if len(live) == 0 {
				break
			}
			i := rng.Intn(len(live))
			conn := live[i]
			if conn.State == core.StateActive || conn.State == core.StateDown {
				set.For(conn.Customer).Disconnect(conn.Customer, conn.ID) //lint:allow errcheck may race with teardown
			}
			live = append(live[:i], live[i+1:]...)
		case 7: // cut a healthy fiber (every shard sees it; crews repair)
			op = "cut"
			links := set.Shard(0).Ctrl.Graph().Links()
			l := links[rng.Intn(len(links))]
			if set.Shard(0).Ctrl.Plant().LinkUp(l.ID) {
				set.CutFiber(l.ID) //lint:allow errcheck verified up
				set.Drain()
				set.RepairFiber(l.ID) //lint:allow errcheck cut above
			}
		case 8, 9: // let time pass in lockstep across the shards
			op = "advance"
			set.Advance(time.Duration(rng.Intn(30)) * time.Minute)
		}
		if injectLeak && !leaked && step == steps/2 {
			// A buggy component lights a channel with the broker bypassed:
			// the per-shard books stay balanced, only the cross-shard sweep
			// can see the claim is missing.
			op = "leak"
			c := set.Shard(shards - 1).Ctrl
			broker := set.Coordinator().Broker(shards - 1)
			c.Plant().SetBroker(nil)
			if err := c.Plant().Spectrum("II-III").Reserve(79, "rogue"); err == nil {
				leaked = true
			}
			c.Plant().SetBroker(broker)
		}
		if step%10 == 9 {
			audit(step, op)
		}
	}
	audit(steps, "final drain")

	tb := metrics.NewTable("Multi-tenant chaos soak", "Quantity", "Value")
	tb.Row("operations", float64(steps))
	tb.Row("tenants", float64(tenants))
	tb.Row("shards", float64(shards))
	tb.Row("connects", float64(connects))
	tb.Row("connects blocked at admission", float64(blocked))
	tb.Row("audit findings", float64(findings))
	res.Tables = append(res.Tables, tb)
	res.value("ops", float64(steps))
	res.value("connects", float64(connects))
	res.value("audit_findings", float64(findings))
	if injectLeak {
		res.value("leak_injected", b2f(leaked))
	}
	if findings == 0 {
		res.notef("books balanced across %d shards after every one of %d multi-tenant operations", shards, steps)
	} else {
		res.notef("VIOLATIONS: %d audit findings — see notes above", findings)
	}
	return res, nil
}
