package experiments

import "testing"

// TestTenantsBenchCompletesEveryCycle: every tenant's booking cycle finishes
// and the books balance at every shard count.
func TestTenantsBenchCompletesEveryCycle(t *testing.T) {
	rep, err := TenantsBench(1, 48, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for _, pt := range rep.Points {
		if pt.Failed != 0 {
			t.Errorf("shards=%d: %d failed cycles", pt.Shards, pt.Failed)
		}
		if pt.AuditFindings != 0 {
			t.Errorf("shards=%d: %d audit findings", pt.Shards, pt.AuditFindings)
		}
	}
}

// TestChaosShardedCleanRun: the multi-tenant soak holds the cross-shard
// invariants through a randomized workload.
func TestChaosShardedCleanRun(t *testing.T) {
	res, err := ChaosShardedN(1, 120, 40, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["audit_findings"] != 0 {
		t.Errorf("clean soak reported %v findings:\n%s", res.Values["audit_findings"], res.String())
	}
}

// TestChaosShardedDetectsInjectedLeak: a component that lights spectrum
// behind the coordinator's back mid-soak is caught by the cross-shard audit —
// the soak is a real discriminator, not a rubber stamp.
func TestChaosShardedDetectsInjectedLeak(t *testing.T) {
	res, err := ChaosShardedN(1, 120, 40, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["leak_injected"] != 1 {
		t.Fatal("leak was not injected (channel already lit?); pick another channel")
	}
	if res.Values["audit_findings"] == 0 {
		t.Error("cross-shard audit missed the deliberately leaked channel")
	}
}
