package experiments

import (
	"fmt"
	"time"

	"griphon/internal/bw"
	"griphon/internal/core"
	"griphon/internal/metrics"
	"griphon/internal/obs"
	"griphon/internal/sim"
	"griphon/internal/topo"
)

// Trace runs the scripted setup -> cut -> restore scenario under the span
// recorder and rebuilds the restoration timeline from the trace alone: the
// op:restore span opens at the instant of the cut and its children
// (restore:detect -> restore:localize -> restore:provision) tile the outage
// exactly, so their durations sum to the end-to-end restoration latency the
// connection record reports. That equality is the acceptance check for the
// tracing subsystem; the table is the paper's Fig. 3-style step ladder in
// text form.
func Trace(seed int64) (Result, error) {
	res := Result{ID: "trace", Paper: "observability extension: restoration timeline from spans"}

	k := sim.NewKernel(seed)
	tr := obs.NewTracer(k)
	ctrl, err := core.New(k, topo.Testbed(), core.Config{Tracer: tr})
	if err != nil {
		return Result{}, err
	}
	conn, job, err := ctrl.Connect(core.Request{
		Customer: "bench", From: "DC-A", To: "DC-C", Rate: bw.Rate10G,
	})
	if err != nil {
		return Result{}, err
	}
	k.Run()
	if job.Err() != nil {
		return Result{}, job.Err()
	}
	if err := ctrl.CutFiber(conn.Route().Links[0]); err != nil {
		return Result{}, err
	}
	k.Run()

	restores := tr.SpansNamed("op:restore")
	if len(restores) != 1 {
		return Result{}, fmt.Errorf("trace: %d op:restore spans, want 1", len(restores))
	}
	restore := restores[0]

	tb := metrics.NewTable("Restoration timeline reconstructed from the trace",
		"Phase", "Starts at (offset)", "Duration")
	var phaseSum sim.Duration
	for _, ph := range tr.Children(restore.ID) {
		tb.Row(ph.Name,
			ph.Start.Sub(restore.Start).Round(time.Millisecond).String(),
			ph.Duration().Round(time.Millisecond).String())
		phaseSum += ph.Duration()
	}
	tb.Row("op:restore (total)", "0s", restore.Duration().Round(time.Millisecond).String())
	res.Tables = append(res.Tables, tb)

	// EMS-level visibility: every cross-connect and verify command the
	// restoration issued appears on its manager's track.
	byTrack := map[string]int{}
	for _, sp := range tr.Spans() {
		if sp.Track != obs.DefaultTrack {
			byTrack[sp.Track]++
		}
	}
	tbt := metrics.NewTable("Spans recorded per EMS track", "Track", "Spans")
	for _, track := range []string{"roadm-ems", "otn-ems"} {
		tbt.Row(track, byTrack[track])
	}
	res.Tables = append(res.Tables, tbt)

	res.value("spans", float64(tr.Len()))
	res.value("restore_total_s", restore.Duration().Seconds())
	res.value("phase_sum_s", phaseSum.Seconds())
	res.value("outage_s", conn.TotalOutage.Seconds())
	res.notef("detect + localize + provision tile the outage: phases sum to %.3f s, op:restore spans %.3f s, connection outage %.3f s",
		phaseSum.Seconds(), restore.Duration().Seconds(), conn.TotalOutage.Seconds())
	return res, nil
}
