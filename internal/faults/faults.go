// Package faults is a seeded, virtual-clock probabilistic fault model for the
// EMS layer. Real vendor element-management systems time out, reject valid
// configurations, and slow to a crawl during maintenance windows; the GRIPhoN
// prototype saw all three (paper §3 reports minutes-long provisioning steps
// dominated by EMS behavior). The model classifies each command's fate when it
// is dequeued for execution:
//
//   - transient failures — vendor timeouts and spurious NACKs that succeed on
//     resubmission. The controller's retry policy absorbs these.
//   - persistent failures — rejected configurations that will keep failing on
//     this path (a bad cross-connect, an incompatible port state). The
//     controller must fall back to another route or service layer.
//   - latency inflation — the command succeeds but takes a multiple of its
//     nominal duration ("vendor timeout then success").
//   - brownout windows — per-EMS intervals during which failure probabilities
//     and latencies spike, modeling EMS database sweeps and maintenance.
//
// Everything is driven by the kernel's seeded random source, so a chaos run is
// exactly reproducible from its seed.
package faults

import (
	"errors"
	"fmt"
	"time"

	"griphon/internal/sim"
)

// Class is a fault's failure class.
type Class int

const (
	// Transient faults succeed when the command is resubmitted.
	Transient Class = iota
	// Persistent faults keep failing on resubmission of the same work.
	Persistent
)

func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Persistent:
		return "persistent"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Error is a fault-model failure. Controllers classify EMS errors with
// errors.As on this type; anything else (including test-injected plain
// errors) is treated as persistent.
type Error struct {
	// EMS and Cmd identify the failed command.
	EMS, Cmd string
	// Class is the failure class.
	Class Class
	// Reason is a short operator-facing cause ("vendor-timeout",
	// "config-rejected", "brownout").
	Reason string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: %s: %q failed (%s, %s)", e.EMS, e.Cmd, e.Class, e.Reason)
}

// IsTransient reports whether err is a fault-model error of class Transient —
// the only errors a retry policy should resubmit for.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Class == Transient
}

// IsFault reports whether err is a fault-model error of any class. Controllers
// use this to separate environmental failures (worth rerouting around) from
// plain logic errors, which should propagate unchanged.
func IsFault(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Profile tunes the fault model. The zero Profile injects nothing; use
// DefaultProfile for a realistic mix.
type Profile struct {
	// Transient is the per-command probability of a transient failure.
	Transient float64
	// Persistent is the per-command probability of a persistent failure.
	Persistent float64
	// Slow is the per-command probability of latency inflation; the factor
	// is drawn uniformly from [1, SlowMax].
	Slow float64
	// SlowMax bounds the latency inflation factor (values <= 1 disable
	// inflation even when Slow fires).
	SlowMax float64
	// BrownoutEvery is the mean interval between brownout onsets per EMS
	// (exponentially distributed). Zero disables brownouts.
	BrownoutEvery sim.Duration
	// BrownoutFor is the mean brownout duration (exponential).
	BrownoutFor sim.Duration
	// BrownoutTransient replaces Transient while an EMS is browned out.
	BrownoutTransient float64
	// BrownoutSlowdown multiplies every command duration during a brownout
	// (values <= 1 leave durations unchanged).
	BrownoutSlowdown float64
}

// DefaultProfile returns the chaos-soak mix: a few percent of commands fail
// transiently, an order of magnitude fewer persistently, and each EMS browns
// out for minutes every few hours.
func DefaultProfile() Profile {
	return Profile{
		Transient:         0.04,
		Persistent:        0.004,
		Slow:              0.06,
		SlowMax:           5,
		BrownoutEvery:     6 * time.Hour,
		BrownoutFor:       10 * time.Minute,
		BrownoutTransient: 0.35,
		BrownoutSlowdown:  3,
	}
}

// Stats counts what the model has decided, for experiment reporting.
type Stats struct {
	// Decisions is the number of commands the model ruled on.
	Decisions uint64
	// Transients and Persistents count injected failures by class.
	Transients, Persistents uint64
	// Slowed counts commands whose latency was inflated.
	Slowed uint64
	// Brownouts counts brownout windows opened across all EMSes.
	Brownouts uint64
}

// emsState tracks one EMS's brownout schedule: the next window opens at
// nextAt and, once entered, runs until until. Windows are drawn lazily as
// virtual time passes, so idle EMSes cost nothing.
type emsState struct {
	nextAt sim.Time
	until  sim.Time
	primed bool
}

// Model decides the fate of EMS commands. It implements the ems.Injector
// contract structurally (Decide) without importing the ems package, keeping
// the dependency pointing from the device layer to the fault model's consumer
// (the controller) only.
type Model struct {
	k     *sim.Kernel
	p     Profile
	ems   map[string]*emsState
	stats Stats
}

// NewModel builds a fault model over the kernel's seeded random source.
func NewModel(k *sim.Kernel, p Profile) *Model {
	return &Model{k: k, p: p, ems: make(map[string]*emsState)}
}

// Profile returns the profile in force.
func (m *Model) Profile() Profile { return m.p }

// Stats returns decision counts so far.
func (m *Model) Stats() Stats { return m.stats }

// Decide rules on one command about to execute on the named EMS: it returns
// the (possibly inflated) duration the command should take and a non-nil
// error when the command must fail. The duration applies even to failing
// commands — a vendor timeout burns its full window before reporting failure.
func (m *Model) Decide(emsName, cmd string, d sim.Duration) (sim.Duration, error) {
	m.stats.Decisions++
	rng := m.k.Rand()

	pTransient := m.p.Transient
	slowdown := 1.0
	if m.brownedOut(emsName) {
		if m.p.BrownoutTransient > 0 {
			pTransient = m.p.BrownoutTransient
		}
		if m.p.BrownoutSlowdown > 1 {
			slowdown = m.p.BrownoutSlowdown
		}
	}

	if m.p.Slow > 0 && m.p.SlowMax > 1 && rng.Float64() < m.p.Slow {
		m.stats.Slowed++
		slowdown *= rng.Uniform(1, m.p.SlowMax)
	}
	d = sim.Duration(float64(d) * slowdown)

	switch {
	case m.p.Persistent > 0 && rng.Float64() < m.p.Persistent:
		m.stats.Persistents++
		return d, &Error{EMS: emsName, Cmd: cmd, Class: Persistent, Reason: "config-rejected"}
	case pTransient > 0 && rng.Float64() < pTransient:
		m.stats.Transients++
		return d, &Error{EMS: emsName, Cmd: cmd, Class: Transient, Reason: "vendor-timeout"}
	}
	return d, nil
}

// brownedOut advances the EMS's brownout schedule to the current virtual time
// and reports whether a window is open now.
func (m *Model) brownedOut(emsName string) bool {
	if m.p.BrownoutEvery <= 0 || m.p.BrownoutFor <= 0 {
		return false
	}
	s := m.ems[emsName]
	if s == nil {
		s = &emsState{}
		m.ems[emsName] = s
	}
	now := m.k.Now()
	rng := m.k.Rand()
	if !s.primed {
		// The first onset is drawn from the simulation epoch, not from the
		// EMS's first command, so an EMS that idles for hours still enters
		// (and leaves) the windows it would have had.
		s.primed = true
		s.nextAt = sim.Time(0).Add(rng.ExpDuration(m.p.BrownoutEvery))
	}
	for s.nextAt <= now {
		m.stats.Brownouts++
		s.until = s.nextAt.Add(rng.ExpDuration(m.p.BrownoutFor))
		s.nextAt = s.until.Add(rng.ExpDuration(m.p.BrownoutEvery))
	}
	return now < s.until && s.until > 0
}
