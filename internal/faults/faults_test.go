package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"griphon/internal/sim"
)

func TestZeroProfileInjectsNothing(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k, Profile{})
	for i := 0; i < 1000; i++ {
		d, err := m.Decide("roadm-ems", "laser-tune", time.Second)
		if err != nil {
			t.Fatalf("zero profile injected %v", err)
		}
		if d != time.Second {
			t.Fatalf("zero profile changed duration to %v", d)
		}
	}
	if s := m.Stats(); s.Transients != 0 || s.Persistents != 0 || s.Slowed != 0 || s.Brownouts != 0 {
		t.Errorf("zero profile stats = %+v", s)
	}
}

func TestTransientClassification(t *testing.T) {
	k := sim.NewKernel(2)
	m := NewModel(k, Profile{Transient: 1})
	d, err := m.Decide("roadm-ems", "verify", time.Second)
	if err == nil {
		t.Fatal("Transient=1 did not fail")
	}
	if !IsTransient(err) {
		t.Errorf("IsTransient(%v) = false", err)
	}
	if d != time.Second {
		t.Errorf("duration changed to %v with Slow=0", d)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.EMS != "roadm-ems" || fe.Cmd != "verify" {
		t.Errorf("error fields = %+v", fe)
	}
}

func TestPersistentOutranksTransient(t *testing.T) {
	k := sim.NewKernel(3)
	m := NewModel(k, Profile{Transient: 1, Persistent: 1})
	_, err := m.Decide("otn-ems", "odu-xc:0", time.Second)
	var fe *Error
	if !errors.As(err, &fe) || fe.Class != Persistent {
		t.Fatalf("err = %v, want persistent", err)
	}
	if IsTransient(err) {
		t.Error("IsTransient true for a persistent fault")
	}
}

func TestIsTransientRejectsPlainErrors(t *testing.T) {
	if IsTransient(errors.New("vendor timeout")) {
		t.Error("plain error classified transient")
	}
	if IsTransient(nil) {
		t.Error("nil classified transient")
	}
	wrapped := fmt.Errorf("setup: %w", &Error{EMS: "e", Cmd: "c", Class: Transient})
	if !IsTransient(wrapped) {
		t.Error("wrapped transient fault not recognized")
	}
}

func TestLatencyInflation(t *testing.T) {
	k := sim.NewKernel(4)
	m := NewModel(k, Profile{Slow: 1, SlowMax: 2})
	for i := 0; i < 100; i++ {
		d, err := m.Decide("roadm-ems", "power-balance:0", time.Second)
		if err != nil {
			t.Fatalf("unexpected failure: %v", err)
		}
		if d < time.Second || d > 2*time.Second {
			t.Fatalf("inflated duration %v outside [1s, 2s]", d)
		}
	}
	if m.Stats().Slowed != 100 {
		t.Errorf("Slowed = %d, want 100", m.Stats().Slowed)
	}
}

func TestBrownoutWindowSlowsCommands(t *testing.T) {
	k := sim.NewKernel(5)
	m := NewModel(k, Profile{
		BrownoutEvery:    time.Nanosecond, // first window opens ~immediately
		BrownoutFor:      1e6 * time.Hour, // and lasts practically forever
		BrownoutSlowdown: 4,
	})
	// The first onset is drawn from the epoch with mean 1 ns, so after an
	// hour of virtual time the (effectively endless) window is open.
	k.RunFor(time.Hour)
	d, err := m.Decide("roadm-ems", "verify", time.Second)
	if err != nil {
		t.Fatalf("unexpected failure: %v", err)
	}
	if d != 4*time.Second {
		t.Errorf("browned-out duration = %v, want 4s", d)
	}
	if m.Stats().Brownouts == 0 {
		t.Error("no brownout window recorded")
	}
}

func TestBrownoutRaisesTransientRate(t *testing.T) {
	k := sim.NewKernel(6)
	m := NewModel(k, Profile{
		BrownoutEvery:     time.Nanosecond,
		BrownoutFor:       1e6 * time.Hour,
		BrownoutTransient: 1,
	})
	k.RunFor(time.Hour)
	_, err := m.Decide("roadm-ems", "verify", time.Second)
	if !IsTransient(err) {
		t.Fatalf("browned-out command did not fail transiently: %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	decide := func(seed int64) []string {
		k := sim.NewKernel(seed)
		m := NewModel(k, DefaultProfile())
		var out []string
		for i := 0; i < 500; i++ {
			d, err := m.Decide("roadm-ems", "laser-tune", time.Second)
			out = append(out, fmt.Sprintf("%v/%v", d, err))
		}
		return out
	}
	a, b := decide(7), decide(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDefaultProfileRates(t *testing.T) {
	k := sim.NewKernel(8)
	m := NewModel(k, DefaultProfile())
	const n = 20000
	fails := 0
	for i := 0; i < n; i++ {
		if _, err := m.Decide("roadm-ems", "laser-tune", time.Second); err != nil {
			fails++
		}
	}
	// ~4.4% of commands should fail (transient + persistent); allow slack.
	if rate := float64(fails) / n; rate < 0.02 || rate > 0.09 {
		t.Errorf("default-profile failure rate %.3f outside [0.02, 0.09]", rate)
	}
	s := m.Stats()
	if s.Transients == 0 || s.Persistents == 0 || s.Slowed == 0 {
		t.Errorf("default profile never exercised some class: %+v", s)
	}
}
