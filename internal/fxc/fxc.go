// Package fxc models the client-side fiber cross-connect of paper §2.2: a
// low-cost, low-power photonic patch panel that steers a customer signal
// either directly to an optical transponder (full-wavelength service on the
// DWDM layer) or into an OTN switch port (sub-wavelength service). An FXC
// cannot groom traffic — it only maps ports one-to-one — which is exactly why
// the OTN layer exists.
package fxc

import (
	"fmt"
	"sort"

	"griphon/internal/topo"
)

// PortRole classifies what a port faces.
type PortRole int

const (
	// Client ports face the customer's NTE / access pipe.
	Client PortRole = iota
	// Line ports face optical transponders (DWDM layer).
	Line
	// Groom ports face the co-located OTN switch.
	Groom
)

func (r PortRole) String() string {
	switch r {
	case Client:
		return "client"
	case Line:
		return "line"
	case Groom:
		return "groom"
	}
	return fmt.Sprintf("PortRole(%d)", int(r))
}

// PortID identifies a port on one FXC.
type PortID string

// Port is a physical FXC port.
type Port struct {
	ID   PortID
	Role PortRole
}

// Switch is one fiber cross-connect. Connections are bidirectional
// one-to-one port mappings. The zero value is unusable; use New.
type Switch struct {
	node  topo.NodeID
	ports map[PortID]Port
	peer  map[PortID]PortID
	owner map[PortID]string
	// byRole holds each role's port IDs in sorted order, fixed at
	// construction, so FreePort is a scan instead of a collect-and-sort.
	byRole map[PortRole][]PortID
}

// New creates an FXC at the given node with the given ports.
func New(node topo.NodeID, ports []Port) (*Switch, error) {
	s := &Switch{
		node:   node,
		ports:  make(map[PortID]Port, len(ports)),
		peer:   make(map[PortID]PortID),
		owner:  make(map[PortID]string),
		byRole: make(map[PortRole][]PortID),
	}
	for _, p := range ports {
		if p.ID == "" {
			return nil, fmt.Errorf("fxc: empty port ID at %s", node)
		}
		if _, dup := s.ports[p.ID]; dup {
			return nil, fmt.Errorf("fxc: duplicate port %s at %s", p.ID, node)
		}
		s.ports[p.ID] = p
		s.byRole[p.Role] = append(s.byRole[p.Role], p.ID)
	}
	for _, ids := range s.byRole {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	return s, nil
}

// Standard builds the FXC used at every GRIPhoN PoP: nClient client ports,
// nLine transponder-facing ports and nGroom OTN-facing ports, with
// predictable IDs (C0.., L0.., G0..).
func Standard(node topo.NodeID, nClient, nLine, nGroom int) *Switch {
	var ports []Port
	for i := 0; i < nClient; i++ {
		ports = append(ports, Port{ID: PortID(fmt.Sprintf("C%d", i)), Role: Client})
	}
	for i := 0; i < nLine; i++ {
		ports = append(ports, Port{ID: PortID(fmt.Sprintf("L%d", i)), Role: Line})
	}
	for i := 0; i < nGroom; i++ {
		ports = append(ports, Port{ID: PortID(fmt.Sprintf("G%d", i)), Role: Groom})
	}
	s, err := New(node, ports)
	if err != nil {
		panic(err) // unreachable: generated IDs are unique and non-empty
	}
	return s
}

// Node returns the PoP this FXC lives at.
func (s *Switch) Node() topo.NodeID { return s.node }

// Connect maps ports a and b to each other on behalf of owner. Both ports
// must exist, be free, and have different roles: a client-to-client
// cross-connect would bypass the carrier network entirely and is rejected.
func (s *Switch) Connect(a, b PortID, owner string) error {
	if owner == "" {
		return fmt.Errorf("fxc: empty owner")
	}
	pa, ok := s.ports[a]
	if !ok {
		return fmt.Errorf("fxc: unknown port %s at %s", a, s.node)
	}
	pb, ok := s.ports[b]
	if !ok {
		return fmt.Errorf("fxc: unknown port %s at %s", b, s.node)
	}
	if a == b {
		return fmt.Errorf("fxc: cannot connect port %s to itself", a)
	}
	if pa.Role == Client && pb.Role == Client {
		return fmt.Errorf("fxc: client-to-client cross-connect %s-%s rejected", a, b)
	}
	if _, busy := s.peer[a]; busy {
		return fmt.Errorf("fxc: port %s already connected", a)
	}
	if _, busy := s.peer[b]; busy {
		return fmt.Errorf("fxc: port %s already connected", b)
	}
	s.peer[a], s.peer[b] = b, a
	s.owner[a], s.owner[b] = owner, owner
	return nil
}

// Disconnect removes the mapping involving port p (either end may be named).
func (s *Switch) Disconnect(p PortID) error {
	q, ok := s.peer[p]
	if !ok {
		return fmt.Errorf("fxc: port %s is not connected", p)
	}
	delete(s.peer, p)
	delete(s.peer, q)
	delete(s.owner, p)
	delete(s.owner, q)
	return nil
}

// PeerOf returns the port p is connected to, and whether it is connected.
func (s *Switch) PeerOf(p PortID) (PortID, bool) {
	q, ok := s.peer[p]
	return q, ok
}

// OwnerOf returns the owner of the connection involving p, or "".
func (s *Switch) OwnerOf(p PortID) string { return s.owner[p] }

// FreePort returns the lowest-ID free port with the given role, or an error
// when the bank of that role is exhausted.
func (s *Switch) FreePort(role PortRole) (PortID, error) {
	for _, id := range s.byRole[role] {
		if _, busy := s.peer[id]; !busy {
			return id, nil
		}
	}
	return "", fmt.Errorf("fxc: no free %v port at %s", role, s.node)
}

// Connections returns the number of active cross-connects.
func (s *Switch) Connections() int { return len(s.peer) / 2 }

// Owners returns the distinct owners of active cross-connects, sorted —
// the enumeration invariant auditors sweep.
func (s *Switch) Owners() []string {
	set := map[string]bool{}
	for _, o := range s.owner {
		set[o] = true
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// NumPorts returns the number of ports with the given role.
func (s *Switch) NumPorts(role PortRole) int { return len(s.byRole[role]) }
