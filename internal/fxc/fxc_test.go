package fxc

import (
	"testing"
	"testing/quick"
)

func std(t *testing.T) *Switch {
	t.Helper()
	return Standard("I", 4, 4, 2)
}

func TestNewValidation(t *testing.T) {
	if _, err := New("I", []Port{{ID: "", Role: Client}}); err == nil {
		t.Error("empty port ID accepted")
	}
	if _, err := New("I", []Port{{ID: "a", Role: Client}, {ID: "a", Role: Line}}); err == nil {
		t.Error("duplicate port ID accepted")
	}
}

func TestStandardShape(t *testing.T) {
	s := std(t)
	if s.Node() != "I" {
		t.Errorf("node = %s", s.Node())
	}
	if s.NumPorts(Client) != 4 || s.NumPorts(Line) != 4 || s.NumPorts(Groom) != 2 {
		t.Errorf("ports = %d/%d/%d", s.NumPorts(Client), s.NumPorts(Line), s.NumPorts(Groom))
	}
}

func TestConnectDisconnect(t *testing.T) {
	s := std(t)
	if err := s.Connect("C0", "L0", "conn1"); err != nil {
		t.Fatal(err)
	}
	if p, ok := s.PeerOf("C0"); !ok || p != "L0" {
		t.Errorf("PeerOf(C0) = %s,%v", p, ok)
	}
	if p, ok := s.PeerOf("L0"); !ok || p != "C0" {
		t.Errorf("PeerOf(L0) = %s,%v", p, ok)
	}
	if s.OwnerOf("C0") != "conn1" || s.OwnerOf("L0") != "conn1" {
		t.Error("owner not recorded on both ends")
	}
	if s.Connections() != 1 {
		t.Errorf("connections = %d", s.Connections())
	}
	if err := s.Disconnect("L0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.PeerOf("C0"); ok {
		t.Error("C0 still connected after disconnecting via peer")
	}
	if err := s.Disconnect("L0"); err == nil {
		t.Error("double disconnect accepted")
	}
}

func TestConnectRejections(t *testing.T) {
	s := std(t)
	cases := []struct {
		name string
		a, b PortID
	}{
		{"unknown a", "X9", "L0"},
		{"unknown b", "C0", "X9"},
		{"self", "C0", "C0"},
		{"client-client", "C0", "C1"},
	}
	for _, c := range cases {
		if err := s.Connect(c.a, c.b, "o"); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := s.Connect("C0", "L0", ""); err == nil {
		t.Error("empty owner accepted")
	}
	s.Connect("C0", "L0", "o1")
	if err := s.Connect("C0", "L1", "o2"); err == nil {
		t.Error("busy port a accepted")
	}
	if err := s.Connect("C1", "L0", "o2"); err == nil {
		t.Error("busy port b accepted")
	}
	// Line-to-groom is legal (OT handoff into the OTN switch).
	if err := s.Connect("L1", "G0", "o3"); err != nil {
		t.Errorf("line-groom rejected: %v", err)
	}
}

func TestFreePort(t *testing.T) {
	s := Standard("I", 2, 1, 0)
	p, err := s.FreePort(Client)
	if err != nil {
		t.Fatal(err)
	}
	if p != "C0" {
		t.Errorf("FreePort = %s, want C0 (lowest)", p)
	}
	s.Connect("C0", "L0", "o")
	p, err = s.FreePort(Client)
	if err != nil || p != "C1" {
		t.Errorf("FreePort = %s,%v want C1", p, err)
	}
	if _, err := s.FreePort(Line); err == nil {
		t.Error("exhausted line bank yielded a port")
	}
	if _, err := s.FreePort(Groom); err == nil {
		t.Error("empty groom bank yielded a port")
	}
}

// Property: connect/disconnect pairs keep peer symmetry and never lose or
// duplicate ports.
func TestConnectSymmetryProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		s := Standard("N", 8, 8, 0)
		for _, op := range ops {
			c := PortID([]string{"C0", "C1", "C2", "C3", "C4", "C5", "C6", "C7"}[op%8])
			l := PortID([]string{"L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7"}[(op/8)%8])
			if op%2 == 0 {
				s.Connect(c, l, "o")
			} else {
				s.Disconnect(c)
			}
			// Symmetry invariant.
			for _, p := range []PortID{c, l} {
				if q, ok := s.PeerOf(p); ok {
					if r, ok2 := s.PeerOf(q); !ok2 || r != p {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[PortRole]string{Client: "client", Line: "line", Groom: "groom"} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
	if PortRole(7).String() == "" {
		t.Error("unknown role string empty")
	}
}
