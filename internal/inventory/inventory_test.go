package inventory

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"griphon/internal/bw"
)

func TestTxnCommitKeepsSteps(t *testing.T) {
	txn := NewTxn()
	undone := 0
	for i := 0; i < 3; i++ {
		if err := txn.Do(func() error { return nil }, func() { undone++ }); err != nil {
			t.Fatal(err)
		}
	}
	if txn.Steps() != 3 {
		t.Errorf("steps = %d", txn.Steps())
	}
	txn.Commit()
	txn.Rollback() // no-op after commit
	if undone != 0 {
		t.Errorf("undos ran after commit: %d", undone)
	}
	if !txn.Finished() {
		t.Error("committed txn not finished")
	}
}

func TestTxnRollbackReverseOrder(t *testing.T) {
	txn := NewTxn()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		txn.Do(func() error { return nil }, func() { order = append(order, i) })
	}
	txn.Rollback()
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Errorf("rollback order = %v, want [2 1 0]", order)
	}
	txn.Rollback() // idempotent
	if len(order) != 3 {
		t.Error("second rollback re-ran undos")
	}
}

func TestTxnDoFailureRecordsNothing(t *testing.T) {
	txn := NewTxn()
	boom := errors.New("boom")
	ran := false
	if err := txn.Do(func() error { return boom }, func() { ran = true }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if txn.Steps() != 0 {
		t.Error("failed step recorded an undo")
	}
	txn.Rollback()
	if ran {
		t.Error("undo of failed step ran")
	}
}

func TestTxnLifecyclePanics(t *testing.T) {
	txn := NewTxn()
	txn.Commit()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Do after Commit did not panic")
			}
		}()
		txn.Do(func() error { return nil }, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Commit did not panic")
			}
		}()
		txn.Commit()
	}()
}

func TestReserveHelper(t *testing.T) {
	txn := NewTxn()
	pool := []string{"a", "b"}
	alloc := func() (string, error) {
		if len(pool) == 0 {
			return "", errors.New("empty")
		}
		v := pool[0]
		pool = pool[1:]
		return v, nil
	}
	release := func(v string) { pool = append(pool, v) }

	v, err := Reserve(txn, alloc, release)
	if err != nil || v != "a" {
		t.Fatalf("Reserve = %q, %v", v, err)
	}
	if len(pool) != 1 {
		t.Error("alloc did not take from pool")
	}
	txn.Rollback()
	if len(pool) != 2 {
		t.Error("rollback did not return the resource")
	}

	txn2 := NewTxn()
	pool = nil
	if _, err := Reserve(txn2, alloc, release); err == nil {
		t.Error("Reserve from empty pool succeeded")
	}
	if txn2.Steps() != 0 {
		t.Error("failed Reserve recorded an undo")
	}
}

// Property: a transaction that rolls back always returns a counter-style
// resource pool to its initial state, regardless of the op sequence.
func TestTxnBalanceProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		avail := 100
		txn := NewTxn()
		for _, op := range ops {
			n := int(op%5) + 1
			txn.Do(func() error {
				if avail < n {
					return errors.New("insufficient")
				}
				avail -= n
				return nil
			}, func() { avail += n })
		}
		txn.Rollback()
		return avail == 100
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLedgerQuotaAdmission(t *testing.T) {
	l := NewLedger()
	l.SetQuota("csp1", Quota{MaxConnections: 2, MaxBandwidth: bw.Rate40G})
	if err := l.Admit("csp1", bw.Rate10G); err != nil {
		t.Fatal(err)
	}
	if err := l.Admit("csp1", bw.Rate10G); err != nil {
		t.Fatal(err)
	}
	if err := l.Admit("csp1", bw.Rate1G); !errors.Is(err, ErrQuota) {
		t.Errorf("third connection err = %v, want quota error", err)
	}
	u := l.UsageOf("csp1")
	if u.Connections != 2 || u.Bandwidth != 20*bw.Gbps {
		t.Errorf("usage = %+v", u)
	}

	l.SetQuota("csp2", Quota{MaxBandwidth: bw.Rate10G})
	if err := l.Admit("csp2", bw.Rate40G); !errors.Is(err, ErrQuota) {
		t.Errorf("bandwidth quota err = %v", err)
	}
	if l.UsageOf("csp2").Connections != 0 {
		t.Error("failed admit recorded usage")
	}

	// Unlimited customer.
	for i := 0; i < 50; i++ {
		if err := l.Admit("csp3", bw.Rate40G); err != nil {
			t.Fatalf("unlimited admit %d: %v", i, err)
		}
	}
}

func TestLedgerAdmitValidation(t *testing.T) {
	l := NewLedger()
	if err := l.Admit("", bw.Rate1G); err == nil {
		t.Error("empty customer accepted")
	}
	if err := l.Admit("c", 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestLedgerDischarge(t *testing.T) {
	l := NewLedger()
	l.Admit("c", bw.Rate10G)
	if err := l.Discharge("c", bw.Rate10G); err != nil {
		t.Fatal(err)
	}
	u := l.UsageOf("c")
	if u.Connections != 0 || u.Bandwidth != 0 {
		t.Errorf("usage after discharge = %+v", u)
	}
	if err := l.Discharge("c", bw.Rate10G); err == nil {
		t.Error("discharge underflow accepted")
	}
}

func TestLedgerIsolation(t *testing.T) {
	l := NewLedger()
	if err := l.Claim("csp1", "ot:OT-I-00"); err != nil {
		t.Fatal(err)
	}
	if err := l.Claim("csp2", "ot:OT-I-00"); err == nil {
		t.Error("cross-customer claim accepted — isolation broken")
	}
	if err := l.Verify("csp1", "ot:OT-I-00"); err != nil {
		t.Errorf("owner verify failed: %v", err)
	}
	if err := l.Verify("csp2", "ot:OT-I-00"); err == nil {
		t.Error("non-owner verify passed")
	}
	if err := l.Verify("csp1", "ot:missing"); err == nil {
		t.Error("unknown resource verify passed")
	}
	if l.OwnerOf("ot:OT-I-00") != "csp1" {
		t.Errorf("OwnerOf = %s", l.OwnerOf("ot:OT-I-00"))
	}
	if err := l.Release("csp2", "ot:OT-I-00"); err == nil {
		t.Error("non-owner release accepted")
	}
	if err := l.Release("csp1", "ot:OT-I-00"); err != nil {
		t.Fatal(err)
	}
	if l.OwnerOf("ot:OT-I-00") != "" {
		t.Error("release did not clear owner")
	}
	if err := l.Claim("", "k"); err == nil {
		t.Error("empty customer claim accepted")
	}
	if err := l.Claim("c", ""); err == nil {
		t.Error("empty key claim accepted")
	}
}

func TestLedgerCustomers(t *testing.T) {
	l := NewLedger()
	l.SetQuota("b", Quota{})
	l.Admit("a", bw.Rate1G)
	got := l.Customers()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Customers = %v", got)
	}
}

// Property: admit/discharge sequences never drive usage negative and always
// sum correctly.
func TestLedgerAccountingProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		l := NewLedger()
		var conns int
		var total bw.Rate
		for i, op := range ops {
			c := Customer(fmt.Sprintf("c%d", op%3))
			r := bw.Rate(int64(op%4+1)) * bw.Gbps
			if op%2 == 0 {
				if l.Admit(c, r) == nil {
					conns++
					total += r
				}
			} else {
				if l.Discharge(c, r) == nil {
					conns--
					total -= r
				}
			}
			_ = i
			var gotConns int
			var gotTotal bw.Rate
			for _, cu := range l.Customers() {
				u := l.UsageOf(cu)
				if u.Connections < 0 || u.Bandwidth < 0 {
					return false
				}
				gotConns += u.Connections
				gotTotal += u.Bandwidth
			}
			if gotConns != conns || gotTotal != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
